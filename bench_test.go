package ucad

// Benchmarks regenerating every table and figure of the paper's
// evaluation (§6) at ScaleQuick, plus micro-benchmarks of the hot
// paths (attention forward/backward, tokenization, detection scoring,
// DBSCAN). Run `go test -bench=. -benchmem` for the full sweep or
// `cmd/ucad-experiments -all -scale demo` for the larger printed runs.

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"github.com/ucad/ucad/internal/core"
	"github.com/ucad/ucad/internal/experiments"
	"github.com/ucad/ucad/internal/feed"
	"github.com/ucad/ucad/internal/nn"
	"github.com/ucad/ucad/internal/preprocess"
	"github.com/ucad/ucad/internal/scorecache"
	"github.com/ucad/ucad/internal/serve"
	"github.com/ucad/ucad/internal/session"
	"github.com/ucad/ucad/internal/sqlnorm"
	"github.com/ucad/ucad/internal/tenant"
	"github.com/ucad/ucad/internal/tensor"
	"github.com/ucad/ucad/internal/transdas"
	"github.com/ucad/ucad/internal/workload"
)

func benchOpts() experiments.Options {
	return experiments.Options{Scale: experiments.ScaleQuick, Seed: 1}
}

// --- One benchmark per paper table/figure -------------------------------

func BenchmarkTable1DatasetStats(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Table1(benchOpts(), nil)
	}
}

func BenchmarkTable2MainComparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Table2(benchOpts(), nil)
		if len(res) != 2 {
			b.Fatal("missing scenario results")
		}
	}
}

func BenchmarkTable3Ablation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Table3(benchOpts(), nil)
		if len(res) != 2 {
			b.Fatal("missing scenario results")
		}
	}
}

func BenchmarkTable4HiddenDimSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts := experiments.Table4(benchOpts(), nil)
		if len(pts) < 2 {
			b.Fatal("sweep incomplete")
		}
	}
}

func BenchmarkTable5WindowSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts := experiments.Table5(benchOpts(), nil)
		if len(pts) < 2 {
			b.Fatal("sweep incomplete")
		}
	}
}

func BenchmarkTable6Transfer(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Table6(benchOpts(), nil)
		if len(res) != 3 {
			b.Fatal("missing datasets")
		}
	}
}

func BenchmarkFigure6Attention(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Figure6(benchOpts(), nil)
		if res.Weights == nil {
			b.Fatal("missing weights")
		}
	}
}

func BenchmarkFigure7Sensitivity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Figure7(benchOpts(), nil)
		if len(res) != 2 {
			b.Fatal("missing scenarios")
		}
	}
}

func BenchmarkFigure8Robustness(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Figure8(benchOpts(), nil)
		if len(res) != 2 {
			b.Fatal("missing scenarios")
		}
	}
}

// --- Ablation benches for DESIGN.md's design decisions ------------------

// BenchmarkAblationBlockDepth measures detection quality versus stack
// depth B — the over-smoothing effect documented in EXPERIMENTS.md.
func BenchmarkAblationBlockDepth(b *testing.B) {
	for _, blocks := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("B=%d", blocks), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				data := experiments.PrepareScenarioI(benchOpts())
				data.Cfg.Blocks = blocks
				d := core.NewDetector(data.Cfg)
				d.Fit(data.Train)
			}
		})
	}
}

// BenchmarkAblationStride measures training cost versus the sliding
// window stride (stride 1 is the paper's scheme; larger strides trade
// final-position coverage for speed).
func BenchmarkAblationStride(b *testing.B) {
	for _, stride := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("stride=%d", stride), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				data := experiments.PrepareScenarioI(benchOpts())
				data.Cfg.Stride = stride
				data.Cfg.Epochs = 3
				d := core.NewDetector(data.Cfg)
				d.Fit(data.Train)
			}
		})
	}
}

// --- Micro-benchmarks of hot paths ---------------------------------------

func BenchmarkAttentionForwardBackward(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	att := nn.NewMultiHeadAttention("att", 64, 8, nn.MaskBidirectionalExceptSelf, rng)
	x := tensor.NewParam("x", tensor.NewRandN(100, 64, 1, rng))
	params := append(att.Params(), x)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nn.ZeroGrads(params)
		tp := tensor.NewTape()
		out := att.Forward(tp, tp.Param(x))
		loss := tp.SumSquares(out)
		tp.Backward(loss)
	}
}

func BenchmarkTrainingWindow(b *testing.B) {
	cfg := transdas.DefaultConfig(100)
	cfg.Epochs = 1
	m := transdas.New(cfg)
	rng := rand.New(rand.NewSource(2))
	session := make([]int, 31)
	for i := range session {
		session[i] = 1 + rng.Intn(99)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Train([][]int{session}, nil)
	}
}

// BenchmarkTrainEpoch measures one full training epoch of the
// data-parallel trainer over a Scenario-I corpus across worker counts
// and mini-batch sizes. windows/sec is the headline metric; the
// workers=1/batch=1 cell is the paper's sequential SGD baseline the
// speedup is measured against. Worker counts above runtime.NumCPU()
// add no parallelism, so the sweep stops there.
func BenchmarkTrainEpoch(b *testing.B) {
	gen := workload.NewGenerator(workload.ScenarioI(), 1)
	sessions := gen.GenerateSessions(40)
	v := sqlnorm.NewVocabulary()
	keySeqs := make([][]int, len(sessions))
	for i, s := range sessions {
		keys := make([]int, len(s.Ops))
		for j := range s.Ops {
			keys[j] = v.Learn(s.Ops[j].SQL)
		}
		keySeqs[i] = keys
	}

	workerCounts := []int{1, 2}
	if n := runtime.NumCPU(); n > 2 {
		workerCounts = append(workerCounts, n)
	}
	for _, workers := range workerCounts {
		for _, batch := range []int{1, 16} {
			b.Run(fmt.Sprintf("workers=%d/batch=%d", workers, batch), func(b *testing.B) {
				cfg := transdas.DefaultConfig(v.Size())
				cfg.Epochs = 1
				cfg.TrainWorkers = workers
				cfg.BatchSize = batch
				m := transdas.New(cfg)
				b.ReportAllocs()
				b.ResetTimer()
				var windows int
				for i := 0; i < b.N; i++ {
					res := m.Train(keySeqs, nil)
					windows = res.Windows
				}
				if elapsed := b.Elapsed(); elapsed > 0 && windows > 0 {
					b.ReportMetric(float64(b.N)*float64(windows)/elapsed.Seconds(), "windows/sec")
				}
			})
		}
	}
}

func BenchmarkDetectionScore(b *testing.B) {
	cfg := transdas.DefaultConfig(600)
	cfg.Hidden, cfg.Heads = 64, 8
	m := transdas.New(cfg)
	ctx := make([]int, 30)
	for i := range ctx {
		ctx[i] = 1 + i
	}
	// The serving shape: one reused similarity buffer across the scan
	// loop, so the steady state allocates nothing per scored operation.
	var buf []float64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = m.ScoreNextInto(buf, ctx)
	}
}

// BenchmarkScoreCached measures the memoized scoring path across target
// hit rates on the BenchmarkScoreBatch model with the default cache
// size. hit0 is the pure-overhead floor (every lookup misses and pays
// hash + insert on top of the forward pass); hit95 approximates a
// steady OLTP workload where most contexts repeat. Compare ns/op
// against BenchmarkScoreBatch/batch1 for the memoization win.
func BenchmarkScoreCached(b *testing.B) {
	cfg := transdas.DefaultConfig(600)
	cfg.Hidden, cfg.Heads = 64, 8
	m := transdas.New(cfg)
	rng := rand.New(rand.NewSource(1))
	for _, hitPct := range []int{0, 50, 95} {
		b.Run(fmt.Sprintf("hit%d", hitPct), func(b *testing.B) {
			c := scorecache.New(4096)
			m.SetScoreCache(c)
			defer m.SetScoreCache(nil)
			// Warm working set, scored once so it is resident; the hit
			// schedule cycles over it (95% of traffic keeps it LRU-hot).
			warm := make([][]int, 64)
			for i := range warm {
				warm[i] = make([]int, 30)
				for j := range warm[i] {
					warm[i][j] = 1 + rng.Intn(cfg.Vocab-1)
				}
			}
			s := m.NewScorer()
			s.ScoreBatch(warm)
			// Misses replay one template mutated to a never-seen prefix, so
			// every miss is a distinct context no matter how long the run.
			missCtx := append([]int(nil), warm[0]...)
			missSeq := 0
			base := c.Stats()
			one := make([][]int, 1)
			var dst [][]float64
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if i%100 < hitPct {
					one[0] = warm[i%len(warm)]
				} else {
					missSeq++
					missCtx[0] = 1 + missSeq%(cfg.Vocab-1)
					missCtx[1] = 1 + (missSeq/(cfg.Vocab-1))%(cfg.Vocab-1)
					missCtx[2] = 1 + (missSeq/((cfg.Vocab-1)*(cfg.Vocab-1)))%(cfg.Vocab-1)
					one[0] = missCtx
				}
				dst = s.ScoreBatchInto(dst, one)
			}
			b.StopTimer()
			st := c.Stats()
			if total := float64(st.Hits - base.Hits + st.Misses - base.Misses); total > 0 {
				b.ReportMetric(100*float64(st.Hits-base.Hits)/total, "hit%")
			}
		})
	}
}

// BenchmarkScoreBatch32 is BenchmarkScoreBatch on the float32 scoring
// kernel (frozen single-precision weight snapshot, register-blocked
// float32 matmuls). Compare ns/op-scored against BenchmarkScoreBatch at
// the same batch size for the single-precision speedup.
func BenchmarkScoreBatch32(b *testing.B) {
	cfg := transdas.DefaultConfig(600)
	cfg.Hidden, cfg.Heads = 64, 8
	m := transdas.New(cfg)
	m.SetScorePrecision(transdas.PrecisionFloat32)
	rng := rand.New(rand.NewSource(1))
	for _, size := range []int{1, 16} {
		b.Run(fmt.Sprintf("batch%d", size), func(b *testing.B) {
			ctxs := make([][]int, size)
			for i := range ctxs {
				ctxs[i] = make([]int, 30)
				for j := range ctxs[i] {
					ctxs[i][j] = 1 + rng.Intn(cfg.Vocab-1)
				}
			}
			s := m.NewScorer()
			var dst [][]float64
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				dst = s.ScoreBatchInto(dst, ctxs)
			}
			elapsed := b.Elapsed()
			if elapsed > 0 {
				ops := float64(b.N) * float64(size)
				b.ReportMetric(ops/elapsed.Seconds(), "ops/s")
				b.ReportMetric(float64(elapsed.Nanoseconds())/ops, "ns/op-scored")
			}
		})
	}
}

// BenchmarkScoreBatch measures the batch-first Scorer across micro-batch
// sizes on the BenchmarkDetectionScore model. The ns/op-scored metric is
// the per-operation cost; compare it against BenchmarkDetectionScore and
// transdas's BenchmarkScoreSequentialTape (the tape-based per-op path
// the Scorer replaces) to see the fused-batch win.
func BenchmarkScoreBatch(b *testing.B) {
	cfg := transdas.DefaultConfig(600)
	cfg.Hidden, cfg.Heads = 64, 8
	m := transdas.New(cfg)
	rng := rand.New(rand.NewSource(1))
	for _, size := range []int{1, 4, 16, 64} {
		b.Run(fmt.Sprintf("batch%d", size), func(b *testing.B) {
			ctxs := make([][]int, size)
			for i := range ctxs {
				ctxs[i] = make([]int, 30)
				for j := range ctxs[i] {
					ctxs[i][j] = 1 + rng.Intn(cfg.Vocab-1)
				}
			}
			s := m.NewScorer()
			var dst [][]float64
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				dst = s.ScoreBatchInto(dst, ctxs)
			}
			elapsed := b.Elapsed()
			if elapsed > 0 {
				ops := float64(b.N) * float64(size)
				b.ReportMetric(ops/elapsed.Seconds(), "ops/s")
				b.ReportMetric(float64(elapsed.Nanoseconds())/ops, "ns/op-scored")
			}
		})
	}
}

func BenchmarkTokenizeStatement(b *testing.B) {
	const stmt = "SELECT * FROM t_cell_fp_3 WHERE pnci=12345 and gridId IN (17, 18, 19, 20, 21, 22)"
	v := sqlnorm.NewVocabulary()
	v.Learn(stmt)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if v.Key(stmt) == 0 {
			b.Fatal("tokenization failed")
		}
	}
}

func BenchmarkDBSCANSessions(b *testing.B) {
	gen := workload.NewGenerator(workload.ScenarioI(), 3)
	sessions := gen.GenerateSessions(150)
	v := sqlnorm.NewVocabulary()
	profiles := make([]map[string]struct{}, len(sessions))
	for i, s := range sessions {
		for j := range s.Ops {
			s.Ops[j].Key = v.Learn(s.Ops[j].SQL)
		}
		profiles[i] = preprocess.NGramSet(s.Keys(), 2)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		preprocess.DBSCAN(len(profiles), func(x, y int) float64 {
			return preprocess.JaccardDistance(profiles[x], profiles[y])
		}, 0.6, 3)
	}
}

// benchServeModel trains the tiny detector the serving benchmarks
// share, returning it with the statement pool it was trained on.
func benchServeModel(b *testing.B) (*core.UCAD, []string) {
	b.Helper()
	stmts := make([]string, 20)
	for i := range stmts {
		stmts[i] = fmt.Sprintf("SELECT * FROM t_bench_%d WHERE id = %d", i%8, i)
	}
	train := make([]*session.Session, 16)
	for i := range train {
		s := &session.Session{ID: fmt.Sprintf("t%d", i), User: "app"}
		for p := 0; p < 12; p++ {
			s.Ops = append(s.Ops, session.Operation{SQL: stmts[(i+p)%len(stmts)]})
		}
		train[i] = s
	}
	cfg := core.DefaultConfig()
	cfg.SkipClean = true
	cfg.Model.Hidden = 4
	cfg.Model.Heads = 2
	cfg.Model.Blocks = 1
	cfg.Model.Window = 8
	cfg.Model.Epochs = 2
	cfg.Model.Dropout = 0
	u, err := core.Train(cfg, train, nil)
	if err != nil {
		b.Fatal(err)
	}
	return u, stmts
}

// BenchmarkServeThroughput pushes a raw event stream through the full
// serving pipeline — per-client session assembly plus the concurrent
// scoring pool — and reports events/sec across ingest shard counts
// (the HTTP layer is bypassed). Ingest runs from GOMAXPROCS goroutines
// with disjoint client sets, so the shards dimension measures real
// cross-client parallelism: shards=1 serializes every append on one
// session-map mutex and one scoring queue, while shards=8 spreads
// clients across independent shard locks and queues.
func BenchmarkServeThroughput(b *testing.B) {
	u, stmts := benchServeModel(b)
	// Production serving runs with memoization on; the small template
	// pool here makes the cache hot, as a steady OLTP workload would.
	u.Model.SetScoreCache(scorecache.New(4096))

	const workers = 8
	for _, shards := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d/workers=%d", shards, workers), func(b *testing.B) {
			svc := serve.NewService(u, serve.Config{
				Workers:     workers,
				Shards:      shards,
				QueueSize:   8192,
				Batch:       16,
				IdleTimeout: time.Hour,
			})
			var nextG atomic.Int64
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				g := nextG.Add(1)
				const clients = 8
				ids := make([]string, clients)
				for c := range ids {
					ids[c] = fmt.Sprintf("bench-%d-client-%d", g, c)
				}
				i := 0
				for pb.Next() {
					ev := serve.Event{ClientID: ids[i%clients], User: "app", SQL: stmts[i%len(stmts)]}
					for svc.Ingest(ev) == serve.ErrBusy {
						runtime.Gosched() // backpressure: wait for the pool
					}
					i++
				}
			})
			svc.Drain()
			b.StopTimer()
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "events/sec")
			svc.Stop()
		})
	}
}

// BenchmarkServeThroughputMultiTenant drives the same stream through a
// tenant registry fanned across four tenants (each with its own model
// copy, pipeline, and single scoring worker) — the routed-ingest
// overhead on top of BenchmarkServeThroughput is the read-lock lookup
// plus the per-tenant metrics view.
func BenchmarkServeThroughputMultiTenant(b *testing.B) {
	u, stmts := benchServeModel(b)
	clone := func() *core.UCAD {
		var buf bytes.Buffer
		if err := u.Save(&buf); err != nil {
			b.Fatal(err)
		}
		c, err := core.Load(&buf)
		if err != nil {
			b.Fatal(err)
		}
		return c
	}

	const tenants = 4
	b.Run(fmt.Sprintf("tenants=%d/workers=1", tenants), func(b *testing.B) {
		reg := tenant.New(tenant.Options{Serve: serve.Config{
			Workers:     1,
			QueueSize:   4096,
			Batch:       16,
			IdleTimeout: time.Hour,
		}})
		defer reg.Close(context.Background())
		names := make([]string, tenants)
		ids := make([][]string, tenants)
		const clients = 32
		for i := range names {
			names[i] = fmt.Sprintf("bench%d", i)
			if _, err := reg.CreateFromModel(tenant.Spec{ID: names[i]}, clone()); err != nil {
				b.Fatal(err)
			}
			ids[i] = make([]string, clients)
			for c := range ids[i] {
				ids[i][c] = fmt.Sprintf("%s-client-%d", names[i], c)
			}
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			tn := i % tenants
			ev := serve.Event{
				Tenant:   names[tn],
				ClientID: ids[tn][(i/tenants)%clients],
				User:     "app",
				SQL:      stmts[i%len(stmts)],
			}
			for reg.Ingest(ev) == serve.ErrBusy {
				runtime.Gosched() // backpressure: wait for the pool
			}
		}
		for _, tn := range reg.List() {
			tn.Service().Drain()
		}
		b.StopTimer()
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "events/sec")
	})
}

func BenchmarkWorkloadGeneration(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		gen := workload.NewGenerator(workload.ScenarioI(), int64(i))
		gen.GenerateSessions(100)
	}
}

// BenchmarkFeedThroughput drives the streaming front door end to end:
// a pre-written JSONL audit log is tailed, parsed, sessionized, and
// delivered in batches (with per-batch offset checkpoints) into the
// full serving pipeline. Reports audit lines/sec through the whole
// chain.
func BenchmarkFeedThroughput(b *testing.B) {
	u, stmts := benchServeModel(b)
	dir := b.TempDir()
	logPath := filepath.Join(dir, "audit.jsonl")

	const clients = 32
	f, err := os.Create(logPath)
	if err != nil {
		b.Fatal(err)
	}
	w := bufio.NewWriterSize(f, 1<<20)
	enc := json.NewEncoder(w)
	for i := 0; i < b.N; i++ {
		op := session.Operation{
			User:      "app",
			Addr:      "10.0.0.1",
			SessionID: fmt.Sprintf("bench-client-%d", i%clients),
			SQL:       stmts[i%len(stmts)],
		}
		if err := enc.Encode(op); err != nil {
			b.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		b.Fatal(err)
	}
	f.Close()

	svc := serve.NewService(u, serve.Config{
		Workers:     4,
		QueueSize:   4096,
		Batch:       16,
		IdleTimeout: time.Hour,
	})
	defer svc.Stop()

	tailer, err := feed.NewTailer(feed.TailerConfig{Path: logPath, Poll: time.Millisecond})
	if err != nil {
		b.Fatal(err)
	}
	feeder, err := feed.NewFeeder(feed.FeederConfig{
		Source:         tailer,
		Deliver:        &feed.ServiceDeliverer{Svc: svc},
		CheckpointPath: filepath.Join(dir, "feed.ckpt"),
		BatchSize:      256,
		FlushInterval:  time.Millisecond,
	})
	if err != nil {
		b.Fatal(err)
	}

	b.ReportAllocs()
	b.ResetTimer()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- feeder.Run(ctx) }()
	for svc.Stats().EventsAccepted < int64(b.N) {
		runtime.Gosched()
	}
	cancel()
	<-done
	svc.Drain()
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "lines/sec")
}
