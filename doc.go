// Package ucad is the root of the UCAD reproduction: an unsupervised
// contextual anomaly detection system for database access logs
// (Li et al., SIGMOD 2022), implemented in pure Go.
//
// The public surface lives under internal/ packages wired together by
// the cmd/ binaries and examples/; see README.md for the architecture
// and DESIGN.md for the per-experiment reproduction index. The
// benchmarks in bench_test.go regenerate every table and figure of the
// paper's evaluation at a CI-friendly scale.
package ucad

// Version identifies the reproduction release.
const Version = "1.0.0"
