package scorecache

import (
	"fmt"
	"sync"
	"testing"
)

func ctxOf(keys ...int) []int { return keys }

func simsOf(n int, base float64) []float64 {
	s := make([]float64, n)
	for i := range s {
		s[i] = base + float64(i)
	}
	return s
}

func TestGetPutRoundTrip(t *testing.T) {
	c := New(8)
	keys := ctxOf(1, 2, 3)
	want := simsOf(5, 0.25)
	dst := make([]float64, 5)
	if c.GetInto(dst, keys) {
		t.Fatal("hit on empty cache")
	}
	c.Put(keys, want)
	if !c.GetInto(dst, keys) {
		t.Fatal("miss after Put")
	}
	for i := range want {
		if dst[i] != want[i] {
			t.Fatalf("dst[%d] = %v, want %v", i, dst[i], want[i])
		}
	}
	// The cache stores a copy: mutating the put slice must not bleed in.
	want[0] = -1
	if !c.GetInto(dst, keys) || dst[0] == -1 {
		t.Fatal("cache aliased the caller's sims slice")
	}
	st := c.Stats()
	if st.Hits != 2 || st.Misses != 1 || st.Entries != 1 {
		t.Fatalf("stats = %+v, want 2 hits, 1 miss, 1 entry", st)
	}
}

func TestExactKeyComparison(t *testing.T) {
	c := New(8)
	c.Put(ctxOf(1, 2, 3), simsOf(4, 1))
	dst := make([]float64, 4)
	// Same prefix, different length or trailing key: must miss.
	if c.GetInto(dst, ctxOf(1, 2)) {
		t.Fatal("prefix context hit")
	}
	if c.GetInto(dst, ctxOf(1, 2, 4)) {
		t.Fatal("different trailing key hit")
	}
	if !c.GetInto(dst, ctxOf(1, 2, 3)) {
		t.Fatal("exact context missed")
	}
}

func TestGenerationInvalidation(t *testing.T) {
	c := New(8)
	keys := ctxOf(7, 8)
	c.Put(keys, simsOf(3, 2))
	dst := make([]float64, 3)
	if !c.GetInto(dst, keys) {
		t.Fatal("miss before bump")
	}
	c.Bump()
	if c.GetInto(dst, keys) {
		t.Fatal("stale entry served after Bump")
	}
	if c.Len() != 0 {
		t.Fatalf("stale entry not dropped on probe: len = %d", c.Len())
	}
	// Re-put under the new generation serves again.
	c.Put(keys, simsOf(3, 9))
	if !c.GetInto(dst, keys) || dst[0] != 9 {
		t.Fatalf("post-bump rescore not served: %v", dst)
	}
}

func TestPutGenStaleNeverServed(t *testing.T) {
	c := New(8)
	keys := ctxOf(4, 5, 6)
	gen := c.Gen()
	c.Bump() // a swap lands between scoring and insertion
	c.PutGen(keys, simsOf(3, 1), gen)
	dst := make([]float64, 3)
	if c.GetInto(dst, keys) {
		t.Fatal("pre-bump score served after the bump")
	}
}

func TestLRUEviction(t *testing.T) {
	c := New(1) // forces 1 shard with capacity 1
	if c.Shards() != 1 || c.Cap() != 1 {
		t.Fatalf("cap-1 cache got %d shards cap %d", c.Shards(), c.Cap())
	}
	dst := make([]float64, 2)
	c.Put(ctxOf(1), simsOf(2, 1))
	c.Put(ctxOf(2), simsOf(2, 2))
	if c.GetInto(dst, ctxOf(1)) {
		t.Fatal("evicted entry still served")
	}
	if !c.GetInto(dst, ctxOf(2)) {
		t.Fatal("newest entry evicted instead of oldest")
	}
	st := c.Stats()
	if st.Evictions != 1 || st.Entries != 1 {
		t.Fatalf("stats = %+v, want 1 eviction, 1 entry", st)
	}
}

func TestLRUOrderWithinShard(t *testing.T) {
	// A dedicated single-shard cache of 2: touching the older entry
	// flips which one the next insert evicts.
	c := &Cache{shards: make([]shard, 1), mask: 0, perShard: 2}
	c.shards[0].m = make(map[uint64]*entry, 2)
	dst := make([]float64, 2)
	c.Put(ctxOf(1), simsOf(2, 1))
	c.Put(ctxOf(2), simsOf(2, 2))
	if !c.GetInto(dst, ctxOf(1)) { // 1 becomes most recent
		t.Fatal("entry 1 missing")
	}
	c.Put(ctxOf(3), simsOf(2, 3)) // must evict 2
	if c.GetInto(dst, ctxOf(2)) {
		t.Fatal("LRU evicted the recently used entry")
	}
	if !c.GetInto(dst, ctxOf(1)) || !c.GetInto(dst, ctxOf(3)) {
		t.Fatal("survivors missing after eviction")
	}
}

func TestOutOfRangeKeysNeverCached(t *testing.T) {
	c := New(8)
	huge := ctxOf(1 << 40)
	c.Put(huge, simsOf(2, 1))
	dst := make([]float64, 2)
	if c.GetInto(dst, huge) {
		t.Fatal("out-of-int32-range context was cached")
	}
	if c.Len() != 0 {
		t.Fatalf("len = %d after refusing an uncacheable context", c.Len())
	}
}

func TestConcurrentAccess(t *testing.T) {
	c := New(256)
	const goroutines = 16
	const iters = 2000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			dst := make([]float64, 4)
			for i := 0; i < iters; i++ {
				keys := ctxOf(g, i%64)
				if !c.GetInto(dst, keys) {
					c.Put(keys, simsOf(4, float64(g)))
				}
				if i%500 == 0 && g == 0 {
					c.Bump()
				}
			}
		}(g)
	}
	wg.Wait()
	st := c.Stats()
	if st.Hits+st.Misses != goroutines*iters {
		t.Fatalf("lookup accounting drifted: %+v over %d lookups", st, goroutines*iters)
	}
	if int(st.Entries) > c.Cap() {
		t.Fatalf("entries %d exceed capacity %d", st.Entries, c.Cap())
	}
}

func TestShardDistribution(t *testing.T) {
	c := New(1024)
	if c.Shards()&(c.Shards()-1) != 0 {
		t.Fatalf("shard count %d is not a power of two", c.Shards())
	}
	for i := 0; i < 512; i++ {
		c.Put(ctxOf(i, i+1, i*3), simsOf(2, float64(i)))
	}
	dst := make([]float64, 2)
	for i := 0; i < 512; i++ {
		if !c.GetInto(dst, ctxOf(i, i+1, i*3)) {
			t.Fatalf("context %d missing from an under-capacity cache", i)
		}
		if dst[0] != float64(i) {
			t.Fatalf("context %d returned the wrong row: %v", i, dst[0])
		}
	}
}

func TestHitRate(t *testing.T) {
	var s Stats
	if s.HitRate() != 0 {
		t.Fatal("zero stats should report rate 0")
	}
	s = Stats{Hits: 95, Misses: 5}
	if r := s.HitRate(); r != 0.95 {
		t.Fatalf("rate = %v, want 0.95", r)
	}
}

func BenchmarkCacheGetHit(b *testing.B) {
	c := New(4096)
	sims := simsOf(600, 0.5)
	dst := make([]float64, 600)
	keys := make([][]int, 64)
	for i := range keys {
		keys[i] = []int{i, i + 1, i + 2, i * 7 % 100}
		c.Put(keys[i], sims)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !c.GetInto(dst, keys[i%len(keys)]) {
			b.Fatal("unexpected miss")
		}
	}
}

func TestStatsString(t *testing.T) {
	// Exercise the struct's JSON-ish field layout indirectly — the serve
	// layer embeds these fields in /stats.
	st := Stats{Hits: 1, Misses: 2, Evictions: 3, Entries: 4}
	got := fmt.Sprintf("%d/%d/%d/%d", st.Hits, st.Misses, st.Evictions, st.Entries)
	if got != "1/2/3/4" {
		t.Fatal(got)
	}
}
