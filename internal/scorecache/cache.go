// Package scorecache memoizes Trans-DAS similarity vectors keyed by
// the scored context. Production SQL workloads come from a small task
// grammar, so the same (context → similarity row) pairs recur
// constantly; a cache hit replaces a full transformer forward pass with
// a hash, a shard-local map probe and one vector copy.
//
// Correctness under weight changes is generation-based: the cache owns
// a monotonically increasing generation counter, every entry is stamped
// with the generation it was scored under, and any weight mutation
// (fine-tune round, hot model swap) bumps the counter — entries from
// earlier generations fail validation on lookup and can never be
// served. Invalidation is therefore O(1) regardless of cache size; the
// stale entries are dropped lazily as they are probed or evicted.
//
// The cache is sharded by key hash across a power-of-two number of
// locks, so concurrent scoring goroutines on different contexts rarely
// contend. One Cache is intended per model (per tenant / per engine in
// the serving layer), keeping the shard-local hot path lock-cheap.
package scorecache

import (
	"math"
	"runtime"
	"sync"
	"sync/atomic"
)

// FNV-1a constants, applied per context key (not per byte): the key
// stream is short (≤ the model window) and the avalanche from the
// 64-bit multiply per element is plenty for shard + map distribution.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// maxShards bounds the lock striping; past this the shards outnumber
// any plausible scoring-goroutine count.
const maxShards = 64

// Stats is a point-in-time snapshot of the cache counters. Hits,
// Misses and Evictions are lifetime-monotonic (safe to export as
// Prometheus counters across model swaps); Entries is a gauge.
type Stats struct {
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
	Entries   int64  `json:"entries"`
}

// HitRate returns hits / (hits + misses), or 0 before any lookup.
func (s Stats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// entry is one cached similarity row with its exact key material:
// lookups compare the full context, so a 64-bit hash collision degrades
// to a miss (or an overwrite on Put), never a wrong score.
type entry struct {
	hash uint64
	keys []int32
	gen  uint64
	sims []float64

	// Intrusive LRU list links within the owning shard.
	prev, next *entry
}

// shard is one lock stripe: a hash-indexed map plus an LRU list whose
// head is the most recently used entry.
type shard struct {
	mu   sync.Mutex
	m    map[uint64]*entry
	head *entry
	tail *entry
	n    int
}

// Cache is a sharded, generation-validated LRU score cache. The zero
// value is not usable; construct with New. All methods are safe for
// concurrent use.
type Cache struct {
	shards    []shard
	mask      uint64
	perShard  int
	gen       atomic.Uint64
	hits      atomic.Uint64
	misses    atomic.Uint64
	evictions atomic.Uint64
	entries   atomic.Int64
}

// New builds a cache holding at most capacity entries, striped across a
// power-of-two shard count sized to the host's parallelism. A capacity
// < 1 is raised to 1.
func New(capacity int) *Cache {
	if capacity < 1 {
		capacity = 1
	}
	nshards := 1
	for nshards < runtime.GOMAXPROCS(0) && nshards < maxShards {
		nshards <<= 1
	}
	if nshards > capacity {
		nshards = 1
	}
	per := (capacity + nshards - 1) / nshards
	c := &Cache{
		shards:   make([]shard, nshards),
		mask:     uint64(nshards - 1),
		perShard: per,
	}
	for i := range c.shards {
		c.shards[i].m = make(map[uint64]*entry, per)
	}
	return c
}

// Cap returns the total entry capacity.
func (c *Cache) Cap() int { return c.perShard * len(c.shards) }

// Shards returns the lock-stripe count (always a power of two).
func (c *Cache) Shards() int { return len(c.shards) }

// Gen returns the current generation. Entries stored under an earlier
// generation never validate on lookup.
func (c *Cache) Gen() uint64 { return c.gen.Load() }

// Bump advances the generation, invalidating every cached score in
// O(1). Call it after any model weight mutation (fine-tune, hot swap).
func (c *Cache) Bump() { c.gen.Add(1) }

// Stats snapshots the counters.
func (c *Cache) Stats() Stats {
	return Stats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Evictions: c.evictions.Load(),
		Entries:   c.entries.Load(),
	}
}

// Len returns the live entry count (stale-generation entries included
// until they are probed or evicted).
func (c *Cache) Len() int { return int(c.entries.Load()) }

// hashKeys mixes the context keys FNV-1a style. ok is false when a key
// does not fit int32 — such contexts are never cached (the stored key
// material is int32, and a silent truncation could alias two different
// contexts).
func hashKeys(keys []int) (h uint64, ok bool) {
	h = fnvOffset64
	for _, k := range keys {
		if k < math.MinInt32 || k > math.MaxInt32 {
			return 0, false
		}
		h ^= uint64(uint32(int32(k)))
		h *= fnvPrime64
	}
	return h, true
}

// keysEqual compares the exact stored key material with a lookup
// context.
func keysEqual(stored []int32, keys []int) bool {
	if len(stored) != len(keys) {
		return false
	}
	for i, k := range keys {
		if stored[i] != int32(k) {
			return false
		}
	}
	return true
}

// GetInto looks keys up and, on a current-generation hit, copies the
// cached similarity row into dst (which must be sized by the caller)
// and returns true. A stale-generation entry is removed and counts as a
// miss.
func (c *Cache) GetInto(dst []float64, keys []int) bool {
	h, ok := hashKeys(keys)
	if !ok {
		c.misses.Add(1)
		return false
	}
	gen := c.gen.Load()
	sh := &c.shards[h&c.mask]
	sh.mu.Lock()
	e := sh.m[h]
	if e == nil || !keysEqual(e.keys, keys) {
		sh.mu.Unlock()
		c.misses.Add(1)
		return false
	}
	if e.gen != gen {
		// Superseded by a weight change: drop it so the slot is free for
		// the rescore.
		sh.remove(e)
		sh.mu.Unlock()
		c.entries.Add(-1)
		c.misses.Add(1)
		return false
	}
	sh.touch(e)
	copy(dst, e.sims)
	sh.mu.Unlock()
	c.hits.Add(1)
	return true
}

// Put stores a similarity row for keys under the current generation,
// copying both. Use PutGen with a generation captured before scoring
// when a concurrent Bump between scoring and insertion is possible.
func (c *Cache) Put(keys []int, sims []float64) {
	c.PutGen(keys, sims, c.gen.Load())
}

// PutGen stores a similarity row stamped with gen — the generation the
// caller read before running the forward pass. If the cache has been
// bumped since, the entry is stored already-stale and will never be
// served, so a score computed against pre-swap weights cannot leak past
// the swap.
func (c *Cache) PutGen(keys []int, sims []float64, gen uint64) {
	h, ok := hashKeys(keys)
	if !ok {
		return
	}
	sh := &c.shards[h&c.mask]
	sh.mu.Lock()
	if e := sh.m[h]; e != nil {
		// Same hash: refresh in place (covers both a rescore of the same
		// context and the rare collision, which simply adopts the new
		// context's key material).
		if cap(e.keys) >= len(keys) {
			e.keys = e.keys[:len(keys)]
		} else {
			e.keys = make([]int32, len(keys))
		}
		for i, k := range keys {
			e.keys[i] = int32(k)
		}
		if cap(e.sims) >= len(sims) {
			e.sims = e.sims[:len(sims)]
		} else {
			e.sims = make([]float64, len(sims))
		}
		copy(e.sims, sims)
		e.gen = gen
		sh.touch(e)
		sh.mu.Unlock()
		return
	}
	var evicted bool
	if sh.n >= c.perShard {
		sh.evictOldest()
		evicted = true
	}
	e := &entry{
		hash: h,
		keys: make([]int32, len(keys)),
		gen:  gen,
		sims: append([]float64(nil), sims...),
	}
	for i, k := range keys {
		e.keys[i] = int32(k)
	}
	sh.insert(e)
	sh.mu.Unlock()
	if evicted {
		c.evictions.Add(1)
	} else {
		c.entries.Add(1)
	}
}

// insert adds e at the LRU head. Caller holds the shard lock.
func (s *shard) insert(e *entry) {
	s.m[e.hash] = e
	e.prev = nil
	e.next = s.head
	if s.head != nil {
		s.head.prev = e
	}
	s.head = e
	if s.tail == nil {
		s.tail = e
	}
	s.n++
}

// remove unlinks e. Caller holds the shard lock.
func (s *shard) remove(e *entry) {
	delete(s.m, e.hash)
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		s.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		s.tail = e.prev
	}
	e.prev, e.next = nil, nil
	s.n--
}

// touch moves e to the LRU head. Caller holds the shard lock.
func (s *shard) touch(e *entry) {
	if s.head == e {
		return
	}
	if e.prev != nil {
		e.prev.next = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		s.tail = e.prev
	}
	e.prev = nil
	e.next = s.head
	if s.head != nil {
		s.head.prev = e
	}
	s.head = e
}

// evictOldest drops the LRU tail. Caller holds the shard lock.
func (s *shard) evictOldest() {
	if s.tail != nil {
		s.remove(s.tail)
	}
}
