//go:build amd64

#include "textflag.h"

// func QKScores8(dst, q, k []float32, stride int)
//
// dst[j] = Σ_{c<8} q[c]*k[j*stride+c]. The eight-wide query row stays
// resident in X0/X1; each key row is one strided load pair, multiplied
// and folded horizontally (0+4, 1+5, 2+6, 3+7, then pairwise).
TEXT ·QKScores8(SB), NOSPLIT, $0-80
	MOVQ	dst_base+0(FP), DI
	MOVQ	dst_len+8(FP), CX
	TESTQ	CX, CX
	JZ	qkdone
	MOVQ	q_base+24(FP), SI
	MOVQ	k_base+48(FP), R8
	MOVQ	stride+72(FP), R9
	SHLQ	$2, R9		// element stride -> byte stride
	MOVUPS	(SI), X0
	MOVUPS	16(SI), X1

qkloop:
	MOVUPS	(R8), X2
	MOVUPS	16(R8), X3
	MULPS	X0, X2
	MULPS	X1, X3
	ADDPS	X3, X2		// lanes: q0k0+q4k4, q1k1+q5k5, q2k2+q6k6, q3k3+q7k7
	MOVHLPS	X2, X3		// X3 low pair = X2 high pair
	ADDPS	X2, X3		// lane0 = l0+l2, lane1 = l1+l3
	MOVAPS	X3, X4
	SHUFPS	$0x55, X4, X4	// broadcast lane1
	ADDSS	X4, X3		// lane0 = l0+l2+l1+l3
	MOVSS	X3, (DI)

	ADDQ	R9, R8
	ADDQ	$4, DI
	DECQ	CX
	JNZ	qkloop

qkdone:
	RET

// func AttnV8(out, w, v []float32, stride int)
//
// out[0:8] += w[j]*v[j*stride : +8] for every j. The eight output
// lanes accumulate in X0/X1 across the whole weight row and store
// once, so per-lane add order matches the scalar loop exactly.
TEXT ·AttnV8(SB), NOSPLIT, $0-80
	MOVQ	w_base+24(FP), SI
	MOVQ	w_len+32(FP), CX
	TESTQ	CX, CX
	JZ	avdone
	MOVQ	out_base+0(FP), DI
	MOVQ	v_base+48(FP), R8
	MOVQ	stride+72(FP), R9
	SHLQ	$2, R9
	MOVUPS	(DI), X0
	MOVUPS	16(DI), X1

avloop:
	MOVSS	(SI), X2
	SHUFPS	$0x00, X2, X2
	MOVUPS	(R8), X3
	MOVUPS	16(R8), X4
	MULPS	X2, X3
	MULPS	X2, X4
	ADDPS	X3, X0
	ADDPS	X4, X1

	ADDQ	$4, SI
	ADDQ	R9, R8
	DECQ	CX
	JNZ	avloop

	MOVUPS	X0, (DI)
	MOVUPS	X1, 16(DI)

avdone:
	RET
