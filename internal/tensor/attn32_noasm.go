//go:build !amd64

package tensor

// QKScores8 computes dst[j] = Σ_{c<8} q[c] * k[j*stride+c] — one
// attention query row's raw scores against n strided key rows for the
// head width dk=8. Portable fallback for the packed-SSE amd64 kernel.
func QKScores8(dst, q, k []float32, stride int) {
	q = q[:8]
	for j := range dst {
		krow := k[j*stride : j*stride+8]
		var dot float32
		for c, qv := range q {
			dot += qv * krow[c]
		}
		dst[j] = dot
	}
}

// AttnV8 accumulates out[c] += w[j] * v[j*stride+c] for c < 8 over
// every weight — one attention output row's value mix for head width
// dk=8. Portable fallback for the packed-SSE amd64 kernel.
func AttnV8(out, w, v []float32, stride int) {
	out = out[:8]
	for j, wv := range w {
		vrow := v[j*stride : j*stride+8]
		for c, vv := range vrow {
			out[c] += wv * vv
		}
	}
}
