//go:build amd64

#include "textflag.h"

// func gemv4(dst, a, b []float32)
//
// dst[j] += a[0]*b0[j] + a[1]*b1[j] + a[2]*b2[j] + a[3]*b3[j] + ... for
// each successive quartet of a, where bk is row k of the len(a) x
// len(dst) row-major block b. Per element the adds run strictly left to
// right within a quartet and quartets ascend, so the result is bitwise
// identical to the generic Go kernel. The inner loop processes eight
// lanes per iteration with SSE2 packed single ops (amd64 baseline — no
// feature detection required); a scalar loop finishes the ragged lane
// tail, and all-zero quartets (padded or masked inputs) are skipped.
//
// Register use: DI dst base, CX lane count, SI a walk, R12 quartet
// count, R11 current quartet's first b row; per quartet R8/R9/R10/R14
// walk the four b rows and DX walks dst, with BX/AX as loop counters.
TEXT ·gemv4(SB), NOSPLIT, $0-72
	MOVQ	dst_base+0(FP), DI
	MOVQ	dst_len+8(FP), CX
	MOVQ	a_base+24(FP), SI
	MOVQ	a_len+32(FP), R12
	MOVQ	b_base+48(FP), R11
	SHRQ	$2, R12
	JZ	done
	TESTQ	CX, CX
	JZ	done

quartet:
	// X8 = [a0 a1 a2 a3]; skip the quartet when every lane == 0
	// (CMPPS matches the generic kernel's a==0 test, so -0 skips too).
	MOVUPS	(SI), X8
	XORPS	X9, X9
	CMPPS	X8, X9, $0
	MOVMSKPS X9, AX
	CMPL	AX, $15
	JEQ	nextq

	// Broadcast the four coefficients across all lanes.
	MOVAPS	X8, X0
	SHUFPS	$0x00, X0, X0
	MOVAPS	X8, X1
	SHUFPS	$0x55, X1, X1
	MOVAPS	X8, X2
	SHUFPS	$0xAA, X2, X2
	MOVAPS	X8, X3
	SHUFPS	$0xFF, X3, X3

	// The quartet's four b rows and the dst walk.
	MOVQ	R11, R8
	LEAQ	(R8)(CX*4), R9
	LEAQ	(R9)(CX*4), R10
	LEAQ	(R10)(CX*4), R14
	MOVQ	DI, DX

	MOVQ	CX, BX
	SHRQ	$3, BX
	JZ	tail

loop8:
	// t = b0*a0
	MOVUPS	(R8), X4
	MOVUPS	16(R8), X5
	MULPS	X0, X4
	MULPS	X0, X5
	// t += b1*a1
	MOVUPS	(R9), X6
	MOVUPS	16(R9), X7
	MULPS	X1, X6
	MULPS	X1, X7
	ADDPS	X6, X4
	ADDPS	X7, X5
	// t += b2*a2
	MOVUPS	(R10), X6
	MOVUPS	16(R10), X7
	MULPS	X2, X6
	MULPS	X2, X7
	ADDPS	X6, X4
	ADDPS	X7, X5
	// t += b3*a3
	MOVUPS	(R14), X6
	MOVUPS	16(R14), X7
	MULPS	X3, X6
	MULPS	X3, X7
	ADDPS	X6, X4
	ADDPS	X7, X5
	// dst += t (t + dst == dst + t bitwise for IEEE adds)
	MOVUPS	(DX), X6
	MOVUPS	16(DX), X7
	ADDPS	X6, X4
	ADDPS	X7, X5
	MOVUPS	X4, (DX)
	MOVUPS	X5, 16(DX)

	ADDQ	$32, R8
	ADDQ	$32, R9
	ADDQ	$32, R10
	ADDQ	$32, R14
	ADDQ	$32, DX
	DECQ	BX
	JNZ	loop8

tail:
	MOVQ	CX, AX
	ANDQ	$7, AX
	JZ	nextq

loop1:
	MOVSS	(R8), X4
	MULSS	X0, X4
	MOVSS	(R9), X5
	MULSS	X1, X5
	ADDSS	X5, X4
	MOVSS	(R10), X5
	MULSS	X2, X5
	ADDSS	X5, X4
	MOVSS	(R14), X5
	MULSS	X3, X5
	ADDSS	X5, X4
	MOVSS	(DX), X5
	ADDSS	X5, X4
	MOVSS	X4, (DX)

	ADDQ	$4, R8
	ADDQ	$4, R9
	ADDQ	$4, R10
	ADDQ	$4, R14
	ADDQ	$4, DX
	DECQ	AX
	JNZ	loop1

nextq:
	// Advance to the next quartet: b forward four rows, a by 16 bytes.
	MOVQ	CX, AX
	SHLQ	$4, AX
	ADDQ	AX, R11
	ADDQ	$16, SI
	DECQ	R12
	JNZ	quartet

done:
	RET
