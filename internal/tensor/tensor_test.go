package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMatrixBasics(t *testing.T) {
	m := NewMatrix(2, 3)
	m.Set(1, 2, 7)
	if got := m.At(1, 2); got != 7 {
		t.Fatalf("At(1,2) = %v, want 7", got)
	}
	if got := m.Row(1)[2]; got != 7 {
		t.Fatalf("Row view = %v, want 7", got)
	}
	c := m.Clone()
	c.Set(0, 0, 5)
	if m.At(0, 0) != 0 {
		t.Fatal("Clone must not alias the original")
	}
	m.Fill(3)
	for _, v := range m.Data {
		if v != 3 {
			t.Fatal("Fill failed")
		}
	}
	m.Zero()
	for _, v := range m.Data {
		if v != 0 {
			t.Fatal("Zero failed")
		}
	}
}

func TestFromSlicePanicsOnBadLength(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for mismatched data length")
		}
	}()
	FromSlice(2, 2, []float64{1, 2, 3})
}

func TestMatMulShapePanic(t *testing.T) {
	tp := NewTape()
	a := tp.Const(NewMatrix(2, 3))
	b := tp.Const(NewMatrix(2, 3))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for incompatible matmul shapes")
		}
	}()
	tp.MatMul(a, b)
}

func TestMatMulValues(t *testing.T) {
	tp := NewTape()
	a := tp.Const(FromSlice(2, 2, []float64{1, 2, 3, 4}))
	b := tp.Const(FromSlice(2, 2, []float64{5, 6, 7, 8}))
	out := tp.MatMul(a, b).Value
	want := []float64{19, 22, 43, 50}
	for i, w := range want {
		if out.Data[i] != w {
			t.Fatalf("matmul = %v, want %v", out.Data, want)
		}
	}
}

// Property: softmax rows are a probability distribution.
func TestSoftmaxRowsIsDistribution(t *testing.T) {
	f := func(vals [12]float64) bool {
		data := make([]float64, 12)
		for i, v := range vals {
			data[i] = math.Mod(v, 30) // keep exp() finite
			if math.IsNaN(data[i]) {
				data[i] = 0
			}
		}
		tp := NewTape()
		out := tp.SoftmaxRows(tp.Const(FromSlice(3, 4, data))).Value
		for r := 0; r < 3; r++ {
			var sum float64
			for _, p := range out.Row(r) {
				if p < 0 || p > 1 {
					return false
				}
				sum += p
			}
			if math.Abs(sum-1) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: transpose is an involution.
func TestTransposeInvolution(t *testing.T) {
	f := func(vals [6]float64) bool {
		data := vals[:]
		tp := NewTape()
		a := tp.Const(FromSlice(2, 3, append([]float64(nil), data...)))
		back := tp.Transpose(tp.Transpose(a)).Value
		for i := range data {
			if back.Data[i] != data[i] && !(math.IsNaN(back.Data[i]) && math.IsNaN(data[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: NormalizeRows output has ~zero mean and ~unit variance per row.
func TestNormalizeRowsMoments(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		tp := NewTape()
		a := tp.Const(NewRandN(4, 8, 3, rng))
		out := tp.NormalizeRows(a, 1e-8).Value
		for r := 0; r < out.Rows; r++ {
			var mu, v float64
			for _, x := range out.Row(r) {
				mu += x
			}
			mu /= float64(out.Cols)
			for _, x := range out.Row(r) {
				v += (x - mu) * (x - mu)
			}
			v /= float64(out.Cols)
			if math.Abs(mu) > 1e-8 || math.Abs(v-1) > 1e-4 {
				t.Fatalf("row %d moments mu=%g var=%g", r, mu, v)
			}
		}
	}
}

func TestDropoutEvalIsIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	tp := NewTape()
	a := tp.Const(NewRandN(3, 3, 1, rng))
	out := tp.Dropout(a, 0.5, false, rng)
	if out != a {
		t.Fatal("eval-mode dropout must be identity")
	}
}

func TestDropoutTrainScalesSurvivors(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	tp := NewTape()
	m := NewMatrix(100, 10)
	m.Fill(1)
	out := tp.Dropout(tp.Const(m), 0.3, true, rng).Value
	zeros, scaled := 0, 0
	for _, v := range out.Data {
		switch {
		case v == 0:
			zeros++
		case math.Abs(v-1/0.7) < 1e-12:
			scaled++
		default:
			t.Fatalf("unexpected dropout output %v", v)
		}
	}
	frac := float64(zeros) / float64(len(out.Data))
	if frac < 0.2 || frac > 0.4 {
		t.Fatalf("drop fraction %v far from rate 0.3", frac)
	}
	if scaled == 0 {
		t.Fatal("no survivors")
	}
}

func TestBackwardAccumulatesIntoParams(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	p := NewParam("p", NewRandN(2, 2, 1, rng))
	// Two uses of the same param in one graph: grads must add.
	tp := NewTape()
	n := tp.Param(p)
	out := tp.Sum(tp.Add(n, n))
	tp.Backward(out)
	for _, g := range p.Grad.Data {
		if g != 2 {
			t.Fatalf("grad = %v, want 2 (accumulated)", g)
		}
	}
	// Second backward pass accumulates again unless ZeroGrad is called.
	tp2 := NewTape()
	out2 := tp2.Sum(tp2.Param(p))
	tp2.Backward(out2)
	for _, g := range p.Grad.Data {
		if g != 3 {
			t.Fatalf("grad = %v, want 3 after second pass", g)
		}
	}
	p.ZeroGrad()
	for _, g := range p.Grad.Data {
		if g != 0 {
			t.Fatal("ZeroGrad failed")
		}
	}
}

func TestBackwardRejectsForeignRoot(t *testing.T) {
	tp1, tp2 := NewTape(), NewTape()
	n := tp1.Const(NewMatrix(1, 1))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for foreign root")
		}
	}()
	tp2.Backward(n)
}

func TestXavierRange(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	m := NewXavier(10, 20, rng)
	limit := math.Sqrt(6.0 / 30.0)
	for _, v := range m.Data {
		if v < -limit || v > limit {
			t.Fatalf("xavier value %v outside [-%v, %v]", v, limit, limit)
		}
	}
}

func TestCrossEntropyAllIgnored(t *testing.T) {
	tp := NewTape()
	logits := tp.Const(NewMatrix(2, 3))
	out := tp.CrossEntropyMean(logits, []int{-1, -1})
	if out.Value.Data[0] != 0 {
		t.Fatalf("loss = %v, want 0 for fully-masked targets", out.Value.Data[0])
	}
}
