package tensor

// Batched (block-diagonal) matrix products. A "batch" stacks B equal-size
// blocks along the row axis: an (B·r)×c node holds B independent r×c
// matrices. These ops multiply corresponding blocks only, so a batched
// attention pass costs exactly B times one sequence's flops — not the
// B² of a naive (B·r)×(B·r) product — while still being recorded as a
// single tape node.

// batchDims validates that a stacks batch equal blocks and returns the
// per-block row count.
func batchDims(a *Node, batch int) int {
	checkShape(batch > 0, "batch size %d", batch)
	checkShape(a.Value.Rows%batch == 0, "batched rows %d not divisible by batch %d", a.Value.Rows, batch)
	return a.Value.Rows / batch
}

// BatchMatMulNT computes, per block i, out_i = A_i·B_iᵀ. With A and B
// holding batch stacked ra×c and rb×c blocks, the result stacks batch
// ra×rb blocks. This is the batched attention-score product Q·Kᵀ; it
// replaces MatMul(q, Transpose(k)) without materializing transposes.
func (t *Tape) BatchMatMulNT(a, b *Node, batch int) *Node {
	checkSameTape(t, a, b)
	ra, rb := batchDims(a, batch), batchDims(b, batch)
	checkShape(a.Value.Cols == b.Value.Cols, "batched NT inner dim %d vs %d", a.Value.Cols, b.Value.Cols)
	out := NewMatrix(batch*ra, rb)
	for i := 0; i < batch; i++ {
		AddMatMulTransposeB(out.RowsView(i*ra, (i+1)*ra),
			a.Value.RowsView(i*ra, (i+1)*ra), b.Value.RowsView(i*rb, (i+1)*rb))
	}
	n := t.node(out, a.requiresGrad || b.requiresGrad, nil)
	n.back = func() {
		for i := 0; i < batch; i++ {
			g := n.Grad.RowsView(i*ra, (i+1)*ra)
			if a.requiresGrad {
				ensureGrad(a)
				// dA_i += dOut_i·B_i
				AddMatMul(a.Grad.RowsView(i*ra, (i+1)*ra), g, b.Value.RowsView(i*rb, (i+1)*rb))
			}
			if b.requiresGrad {
				ensureGrad(b)
				// dB_i += dOut_iᵀ·A_i
				AddMatMulTransposeA(b.Grad.RowsView(i*rb, (i+1)*rb), g, a.Value.RowsView(i*ra, (i+1)*ra))
			}
		}
	}
	return n
}

// BatchMatMulNN computes, per block i, out_i = W_i·V_i. With W stacking
// batch rw×c blocks and V stacking batch c×cv blocks, the result stacks
// batch rw×cv blocks. This is the batched attention read-out
// weights·values product.
func (t *Tape) BatchMatMulNN(w, v *Node, batch int) *Node {
	checkSameTape(t, w, v)
	rw, rv := batchDims(w, batch), batchDims(v, batch)
	checkShape(w.Value.Cols == rv, "batched NN inner dim %d vs block rows %d", w.Value.Cols, rv)
	out := NewMatrix(batch*rw, v.Value.Cols)
	for i := 0; i < batch; i++ {
		// MatMulInto zeroes the (freshly allocated) view and skips exact
		// zeros in W — the masked attention weights — for free.
		MatMulInto(out.RowsView(i*rw, (i+1)*rw),
			w.Value.RowsView(i*rw, (i+1)*rw), v.Value.RowsView(i*rv, (i+1)*rv))
	}
	n := t.node(out, w.requiresGrad || v.requiresGrad, nil)
	n.back = func() {
		for i := 0; i < batch; i++ {
			g := n.Grad.RowsView(i*rw, (i+1)*rw)
			if w.requiresGrad {
				ensureGrad(w)
				// dW_i += dOut_i·V_iᵀ
				AddMatMulTransposeB(w.Grad.RowsView(i*rw, (i+1)*rw), g, v.Value.RowsView(i*rv, (i+1)*rv))
			}
			if v.requiresGrad {
				ensureGrad(v)
				// dV_i += W_iᵀ·dOut_i
				AddMatMulTransposeA(v.Grad.RowsView(i*rv, (i+1)*rv), w.Value.RowsView(i*rw, (i+1)*rw), g)
			}
		}
	}
	return n
}
