//go:build !amd64

package tensor

// matMul32 falls back to the portable register-blocked kernel on
// targets without the packed-SSE axpy4 implementation.
func matMul32(dst, a, b *Matrix32) { matMul32Generic(dst, a, b) }
