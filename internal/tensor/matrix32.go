package tensor

import "fmt"

// Matrix32 is a dense, row-major float32 matrix — the storage type of
// the single-precision scoring fast path. It is inference-only: no
// tape, no gradients. float64 Matrix remains the training and reference
// type; Matrix32 halves the memory traffic of the scoring matmuls,
// which are bandwidth-bound at serving batch sizes (the weights stream
// from L2/L3 while the activation blocks are revisited per k-quartet).
type Matrix32 struct {
	Rows, Cols int
	Data       []float32
}

// NewMatrix32 returns a zero-initialized Rows x Cols float32 matrix.
func NewMatrix32(rows, cols int) *Matrix32 {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("tensor: invalid shape %dx%d", rows, cols))
	}
	return &Matrix32{Rows: rows, Cols: cols, Data: make([]float32, rows*cols)}
}

// Matrix32From converts a float64 matrix by value truncation — the
// once-per-checkpoint weight conversion of the float32 scoring path.
func Matrix32From(m *Matrix) *Matrix32 {
	out := NewMatrix32(m.Rows, m.Cols)
	for i, v := range m.Data {
		out.Data[i] = float32(v)
	}
	return out
}

// Row returns a view (shared backing array) of row r.
func (m *Matrix32) Row(r int) []float32 { return m.Data[r*m.Cols : (r+1)*m.Cols] }

// At returns the element at row r, column c.
func (m *Matrix32) At(r, c int) float32 { return m.Data[r*m.Cols+c] }

// Zero sets all elements to zero.
func (m *Matrix32) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// RowsView returns rows [from, to) as a matrix sharing m's backing
// array.
func (m *Matrix32) RowsView(from, to int) *Matrix32 {
	if from < 0 || from > to || to > m.Rows {
		panic(fmt.Sprintf("tensor: rows view [%d:%d) of %d rows", from, to, m.Rows))
	}
	return &Matrix32{Rows: to - from, Cols: m.Cols, Data: m.Data[from*m.Cols : to*m.Cols]}
}

// MatMulInto32 computes dst = a·b in float32. dst must not alias a or
// b. On amd64 the inner loop is a packed-SSE assembly kernel (4 lanes
// per instruction — the parallelism the scalar float64 path cannot
// reach); elsewhere it falls back to a register-blocked pure-Go kernel.
// Both walk k in quartets with identical left-to-right add order, so
// the two builds agree bitwise, and all-zero a-quartets (padded or
// masked inputs) are skipped exactly as in the float64 kernel.
func MatMulInto32(dst, a, b *Matrix32) {
	if a.Cols != b.Rows || dst.Rows != a.Rows || dst.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: matmul32 shape mismatch (%dx%d)·(%dx%d)->(%dx%d)",
			a.Rows, a.Cols, b.Rows, b.Cols, dst.Rows, dst.Cols))
	}
	dst.Zero()
	matMul32(dst, a, b)
}

// matMul32Generic is the portable kernel behind MatMulInto32,
// register-blocked 4 rows x 4 k-terms: each pass over a destination
// quartet reuses the four streamed b-rows across four output rows,
// quartering the b-matrix traffic. dst is pre-zeroed by the caller.
func matMul32Generic(dst, a, b *Matrix32) {
	n, bc := a.Cols, b.Cols
	i := 0
	for ; i+4 <= a.Rows; i += 4 {
		ar0 := a.Data[i*n : (i+1)*n]
		ar1 := a.Data[(i+1)*n : (i+2)*n]
		ar2 := a.Data[(i+2)*n : (i+3)*n]
		ar3 := a.Data[(i+3)*n : (i+4)*n]
		dr0 := dst.Data[i*bc : (i+1)*bc]
		dr1 := dst.Data[(i+1)*bc : (i+2)*bc]
		dr2 := dst.Data[(i+2)*bc : (i+3)*bc]
		dr3 := dst.Data[(i+3)*bc : (i+4)*bc]
		k := 0
		for ; k+4 <= n; k += 4 {
			a00, a01, a02, a03 := ar0[k], ar0[k+1], ar0[k+2], ar0[k+3]
			a10, a11, a12, a13 := ar1[k], ar1[k+1], ar1[k+2], ar1[k+3]
			a20, a21, a22, a23 := ar2[k], ar2[k+1], ar2[k+2], ar2[k+3]
			a30, a31, a32, a33 := ar3[k], ar3[k+1], ar3[k+2], ar3[k+3]
			if a00 == 0 && a01 == 0 && a02 == 0 && a03 == 0 &&
				a10 == 0 && a11 == 0 && a12 == 0 && a13 == 0 &&
				a20 == 0 && a21 == 0 && a22 == 0 && a23 == 0 &&
				a30 == 0 && a31 == 0 && a32 == 0 && a33 == 0 {
				continue
			}
			b0 := b.Data[k*bc : (k+1)*bc]
			b1 := b.Data[(k+1)*bc : (k+2)*bc]
			b2 := b.Data[(k+2)*bc : (k+3)*bc]
			b3 := b.Data[(k+3)*bc : (k+4)*bc : (k+4)*bc]
			for j := range b3 {
				v0, v1, v2, v3 := b0[j], b1[j], b2[j], b3[j]
				dr0[j] += a00*v0 + a01*v1 + a02*v2 + a03*v3
				dr1[j] += a10*v0 + a11*v1 + a12*v2 + a13*v3
				dr2[j] += a20*v0 + a21*v1 + a22*v2 + a23*v3
				dr3[j] += a30*v0 + a31*v1 + a32*v2 + a33*v3
			}
		}
		for ; k < n; k++ {
			a0v, a1v, a2v, a3v := ar0[k], ar1[k], ar2[k], ar3[k]
			if a0v == 0 && a1v == 0 && a2v == 0 && a3v == 0 {
				continue
			}
			brow := b.Data[k*bc : (k+1)*bc]
			for j, bv := range brow {
				dr0[j] += a0v * bv
				dr1[j] += a1v * bv
				dr2[j] += a2v * bv
				dr3[j] += a3v * bv
			}
		}
	}
	for ; i < a.Rows; i++ {
		arow := a.Data[i*n : (i+1)*n]
		drow := dst.Data[i*bc : (i+1)*bc]
		k := 0
		for ; k+4 <= n; k += 4 {
			a0, a1, a2, a3 := arow[k], arow[k+1], arow[k+2], arow[k+3]
			if a0 == 0 && a1 == 0 && a2 == 0 && a3 == 0 {
				continue
			}
			b0 := b.Data[k*bc : (k+1)*bc]
			b1 := b.Data[(k+1)*bc : (k+2)*bc]
			b2 := b.Data[(k+2)*bc : (k+3)*bc]
			b3 := b.Data[(k+3)*bc : (k+4)*bc : (k+4)*bc]
			for j := range b3 {
				drow[j] += a0*b0[j] + a1*b1[j] + a2*b2[j] + a3*b3[j]
			}
		}
		for ; k < n; k++ {
			av := arow[k]
			if av == 0 {
				continue
			}
			brow := b.Data[k*bc : (k+1)*bc]
			for j, bv := range brow {
				drow[j] += av * bv
			}
		}
	}
}

// BatchMatMulNT32 computes, per block i, out_i = A_i·B_iᵀ in float32 —
// the grad-free single-precision variant of the tape's BatchMatMulNT
// (batched attention-score product Q·Kᵀ without materializing
// transposes). A stacks batch ra×c blocks, B stacks batch rb×c blocks,
// dst stacks batch ra×rb blocks; all three must be pre-shaped.
func BatchMatMulNT32(dst, a, b *Matrix32, batch int) {
	if batch < 1 || a.Rows%batch != 0 || b.Rows%batch != 0 || dst.Rows%batch != 0 {
		panic(fmt.Sprintf("tensor: batched NT32 rows %d/%d/%d not divisible by batch %d",
			dst.Rows, a.Rows, b.Rows, batch))
	}
	ra, rb := a.Rows/batch, b.Rows/batch
	if a.Cols != b.Cols || dst.Rows/batch != ra || dst.Cols != rb {
		panic(fmt.Sprintf("tensor: batched NT32 shape mismatch (%dx%d)·(%dx%d)ᵀ->(%dx%d) batch %d",
			a.Rows, a.Cols, b.Rows, b.Cols, dst.Rows, dst.Cols, batch))
	}
	c := a.Cols
	for blk := 0; blk < batch; blk++ {
		for i := 0; i < ra; i++ {
			arow := a.Data[(blk*ra+i)*c : (blk*ra+i+1)*c]
			drow := dst.Data[(blk*ra+i)*rb : (blk*ra+i+1)*rb]
			for j := 0; j < rb; j++ {
				brow := b.Data[(blk*rb+j)*c : (blk*rb+j+1)*c]
				var s float32
				for k, av := range arow {
					s += av * brow[k]
				}
				drow[j] = s
			}
		}
	}
}
