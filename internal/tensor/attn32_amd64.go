//go:build amd64

package tensor

// QKScores8 computes dst[j] = Σ_{c<8} q[c] * k[j*stride+c] — one
// attention query row's raw scores against n strided key rows for the
// head width dk=8 (the paper model's h=64, m=8 shape). len(k) must be
// at least (len(dst)-1)*stride+8 and len(q) at least 8. The packed dot
// pairs lanes (0+4, 1+5, ...) before the horizontal fold, so the sum
// order differs from the scalar loop by O(1e-7) — inside the float32
// path's 1e-4 contract. Implemented in attn32_amd64.s.
//
//go:noescape
func QKScores8(dst, q, k []float32, stride int)

// AttnV8 accumulates out[c] += w[j] * v[j*stride+c] for c < 8 over
// every weight — one attention output row's value mix for head width
// dk=8. len(out) must be at least 8 and len(v) at least
// (len(w)-1)*stride+8. Per output lane the adds ascend j exactly like
// the scalar loop. Implemented in attn32_amd64.s.
//
//go:noescape
func AttnV8(out, w, v []float32, stride int)
