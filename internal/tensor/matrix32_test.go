package tensor

import (
	"math"
	"math/rand"
	"testing"
)

// randMat returns a float64 matrix with N(0,1) entries.
func randMat(rows, cols int, rng *rand.Rand) *Matrix {
	m := NewMatrix(rows, cols)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	return m
}

// maxRelDiff64v32 compares a float32 result against the float64
// reference, scaled by the reference magnitude.
func maxRelDiff64v32(ref *Matrix, got *Matrix32) float64 {
	var worst float64
	for i, v := range ref.Data {
		d := math.Abs(v - float64(got.Data[i]))
		scale := math.Max(1, math.Abs(v))
		if r := d / scale; r > worst {
			worst = r
		}
	}
	return worst
}

func TestMatrix32From(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := randMat(3, 5, rng)
	a32 := Matrix32From(a)
	if a32.Rows != 3 || a32.Cols != 5 {
		t.Fatalf("shape %dx%d", a32.Rows, a32.Cols)
	}
	for i, v := range a.Data {
		if a32.Data[i] != float32(v) {
			t.Fatalf("element %d: %v != float32(%v)", i, a32.Data[i], v)
		}
	}
}

func TestMatMulInto32MatchesFloat64(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	// Sweep shapes that exercise every blocking path: row remainders
	// 0..3 of the 4-row kernel and k remainders 0..3 of the quartet loop.
	for _, rows := range []int{1, 2, 3, 4, 5, 7, 8, 13} {
		for _, inner := range []int{1, 3, 4, 6, 8, 17} {
			for _, cols := range []int{1, 2, 5, 16} {
				a := randMat(rows, inner, rng)
				b := randMat(inner, cols, rng)
				ref := NewMatrix(rows, cols)
				MatMulInto(ref, a, b)
				got := NewMatrix32(rows, cols)
				MatMulInto32(got, Matrix32From(a), Matrix32From(b))
				if d := maxRelDiff64v32(ref, got); d > 1e-5 {
					t.Fatalf("(%dx%d)·(%dx%d): rel diff %g", rows, inner, inner, cols, d)
				}
			}
		}
	}
}

func TestMatMulInto32SkipsZeroRows(t *testing.T) {
	// Padded (all-zero) activation rows must produce exactly zero output
	// — the float32 kernel keeps the float64 kernel's zero-quartet skip.
	rng := rand.New(rand.NewSource(3))
	a := randMat(6, 8, rng)
	for k := 0; k < 8; k++ {
		a.Set(2, k, 0)
		a.Set(5, k, 0)
	}
	b := randMat(8, 4, rng)
	got := NewMatrix32(6, 4)
	MatMulInto32(got, Matrix32From(a), Matrix32From(b))
	for _, r := range []int{2, 5} {
		for _, v := range got.Row(r) {
			if v != 0 {
				t.Fatalf("zero input row %d produced nonzero output %v", r, v)
			}
		}
	}
}

func TestMatMulInto32OverwritesDst(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a, b := randMat(4, 4, rng), randMat(4, 4, rng)
	got := NewMatrix32(4, 4)
	for i := range got.Data {
		got.Data[i] = 42 // stale scratch contents
	}
	MatMulInto32(got, Matrix32From(a), Matrix32From(b))
	ref := NewMatrix(4, 4)
	MatMulInto(ref, a, b)
	if d := maxRelDiff64v32(ref, got); d > 1e-5 {
		t.Fatalf("stale dst leaked into result: rel diff %g", d)
	}
}

func TestBatchMatMulNT32MatchesTape(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	const batch, ra, rb, c = 3, 4, 5, 6
	a := randMat(batch*ra, c, rng)
	b := randMat(batch*rb, c, rng)

	tp := NewTape()
	ref := tp.BatchMatMulNT(tp.Const(a), tp.Const(b), batch)

	got := NewMatrix32(batch*ra, rb)
	BatchMatMulNT32(got, Matrix32From(a), Matrix32From(b), batch)
	if d := maxRelDiff64v32(ref.Value, got); d > 1e-5 {
		t.Fatalf("batched NT rel diff %g", d)
	}
}

func TestMatMul32ShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("shape mismatch did not panic")
		}
	}()
	MatMulInto32(NewMatrix32(2, 2), NewMatrix32(2, 3), NewMatrix32(2, 2))
}

func TestBatchMatMulNT32ShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("batch mismatch did not panic")
		}
	}()
	BatchMatMulNT32(NewMatrix32(3, 2), NewMatrix32(3, 4), NewMatrix32(2, 4), 2)
}

func TestRowsView32(t *testing.T) {
	m := NewMatrix32(4, 2)
	for i := range m.Data {
		m.Data[i] = float32(i)
	}
	v := m.RowsView(1, 3)
	if v.Rows != 2 || v.Cols != 2 || v.At(0, 0) != 2 || v.At(1, 1) != 5 {
		t.Fatalf("view contents wrong: %+v", v)
	}
	v.Data[0] = -1
	if m.At(1, 0) != -1 {
		t.Fatal("view does not share backing array")
	}
}

// TestMatMul32AsmMatchesGeneric pins the build-tagged assembly path to
// the portable kernel bitwise, across shapes that exercise the packed
// loop, the scalar tail, and the zero-quartet skip.
func TestMatMul32AsmMatchesGeneric(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, dims := range [][3]int{{1, 4, 8}, {3, 10, 30}, {5, 64, 192}, {7, 13, 9}, {16, 64, 64}, {2, 8, 1}} {
		ar, n, bc := dims[0], dims[1], dims[2]
		a := NewMatrix32(ar, n)
		b := NewMatrix32(n, bc)
		for i := range a.Data {
			a.Data[i] = float32(rng.NormFloat64())
		}
		// Zero a few full quartets to exercise the skip path.
		for k := 0; k+4 <= n; k += 8 {
			for _, row := range []int{0, ar - 1} {
				copy(a.Row(row)[k:k+4], make([]float32, 4))
			}
		}
		for i := range b.Data {
			b.Data[i] = float32(rng.NormFloat64())
		}
		got := NewMatrix32(ar, bc)
		MatMulInto32(got, a, b)
		want := NewMatrix32(ar, bc)
		matMul32Generic(want, a, b)
		for i := range want.Data {
			if got.Data[i] != want.Data[i] {
				t.Fatalf("%dx%dx%d: elem %d: asm %v != generic %v", ar, n, bc, i, got.Data[i], want.Data[i])
			}
		}
	}
}

// TestAttnKernels8 checks the packed per-row attention kernels against
// plain Go loops, over strides and row counts including the empty row.
func TestAttnKernels8(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, tc := range []struct{ n, stride int }{{0, 24}, {1, 8}, {7, 24}, {30, 192}, {13, 9}} {
		q := make([]float32, 8)
		for i := range q {
			q[i] = float32(rng.NormFloat64())
		}
		need := 8
		if tc.n > 0 {
			need = (tc.n-1)*tc.stride + 8
		}
		k := make([]float32, need)
		for i := range k {
			k[i] = float32(rng.NormFloat64())
		}
		got := make([]float32, tc.n)
		QKScores8(got, q, k, tc.stride)
		for j := 0; j < tc.n; j++ {
			var want float32
			for c := 0; c < 8; c++ {
				want += q[c] * k[j*tc.stride+c]
			}
			if diff := float64(got[j] - want); diff > 1e-5 || diff < -1e-5 {
				t.Fatalf("QKScores8 n=%d stride=%d j=%d: got %v want %v", tc.n, tc.stride, j, got[j], want)
			}
		}

		w := make([]float32, tc.n)
		for i := range w {
			w[i] = float32(rng.Float64())
		}
		out := make([]float32, 8)
		wantOut := make([]float32, 8)
		for i := range out {
			out[i] = float32(rng.NormFloat64())
			wantOut[i] = out[i]
		}
		AttnV8(out, w, k, tc.stride)
		for j, wv := range w {
			for c := 0; c < 8; c++ {
				wantOut[c] += wv * k[j*tc.stride+c]
			}
		}
		for c := range out {
			if out[c] != wantOut[c] {
				t.Fatalf("AttnV8 n=%d stride=%d lane=%d: got %v want %v", tc.n, tc.stride, c, out[c], wantOut[c])
			}
		}
	}
}
