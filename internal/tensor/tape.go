package tensor

import "fmt"

// Param is a trainable parameter: a value matrix plus an accumulated
// gradient. Params persist across forward passes; optimizers consume
// Grad and zero it between steps.
type Param struct {
	Name  string
	Value *Matrix
	Grad  *Matrix
}

// NewParam wraps value as a named trainable parameter.
func NewParam(name string, value *Matrix) *Param {
	return &Param{Name: name, Value: value, Grad: NewMatrix(value.Rows, value.Cols)}
}

// ZeroGrad clears the accumulated gradient.
func (p *Param) ZeroGrad() { p.Grad.Zero() }

// Node is one vertex in the computation graph recorded on a Tape.
// Value holds the forward result; Grad is allocated lazily during the
// backward pass; back propagates Grad into the node's inputs.
type Node struct {
	Value *Matrix
	Grad  *Matrix

	tape         *Tape
	requiresGrad bool
	back         func()
}

// RequiresGrad reports whether gradients flow through this node.
func (n *Node) RequiresGrad() bool { return n.requiresGrad }

// Tape records operations of one forward pass so they can be replayed in
// reverse for backpropagation. A Tape is single-goroutine; build a fresh
// Tape per training step.
type Tape struct {
	nodes []*Node
	sink  func(*Param) *Matrix
}

// NewTape returns an empty tape.
func NewTape() *Tape { return &Tape{} }

// SetGradSink redirects parameter-gradient accumulation: when set,
// Backward adds each parameter's gradient into sink(p) instead of
// p.Grad (a nil return falls back to p.Grad). This is how data-parallel
// training workers accumulate into private per-worker buffers while
// sharing the parameter values — set it before the first Param call of
// the forward pass.
func (t *Tape) SetGradSink(sink func(*Param) *Matrix) { t.sink = sink }

// node registers a new graph vertex on the tape.
func (t *Tape) node(v *Matrix, requiresGrad bool, back func()) *Node {
	n := &Node{Value: v, tape: t, requiresGrad: requiresGrad, back: back}
	t.nodes = append(t.nodes, n)
	return n
}

// Const wraps a matrix as a non-differentiable leaf.
func (t *Tape) Const(m *Matrix) *Node { return t.node(m, false, nil) }

// Param wraps a trainable parameter; gradients accumulate into p.Grad,
// or into the tape's gradient sink when one is set (see SetGradSink).
func (t *Tape) Param(p *Param) *Node {
	n := t.node(p.Value, true, nil)
	n.back = func() {
		dst := p.Grad
		if t.sink != nil {
			if s := t.sink(p); s != nil {
				dst = s
			}
		}
		for i, g := range n.Grad.Data {
			dst.Data[i] += g
		}
	}
	return n
}

// ensureGrad allocates n.Grad if needed.
func ensureGrad(n *Node) {
	if n.Grad == nil {
		n.Grad = NewMatrix(n.Value.Rows, n.Value.Cols)
	}
}

// Backward seeds the gradient of root with ones and propagates through
// the tape in reverse registration order. root is normally a 1x1 loss.
func (t *Tape) Backward(root *Node) {
	if root.tape != t {
		panic("tensor: Backward root from different tape")
	}
	ensureGrad(root)
	root.Grad.Fill(1)
	for i := len(t.nodes) - 1; i >= 0; i-- {
		n := t.nodes[i]
		if n.Grad == nil || n.back == nil || !n.requiresGrad {
			continue
		}
		n.back()
	}
}

func checkSameTape(t *Tape, ns ...*Node) {
	for _, n := range ns {
		if n.tape != t {
			panic("tensor: node from different tape")
		}
	}
}

func checkShape(cond bool, format string, args ...any) {
	if !cond {
		panic("tensor: " + fmt.Sprintf(format, args...))
	}
}
