package tensor

import (
	"math"
	"math/rand"
	"testing"
)

func TestBatchMatMulNTGrad(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const batch, ra, rb, c = 3, 4, 5, 2
	a := randParam("a", batch*ra, c, rng)
	b := randParam("b", batch*rb, c, rng)
	// Weight the sum so every output element carries a distinct gradient.
	w := NewRandN(batch*ra, rb, 1, rng)
	build := func(tp *Tape) *Node {
		return tp.Sum(tp.Mul(tp.BatchMatMulNT(tp.Param(a), tp.Param(b), batch), tp.Const(w)))
	}
	runScalar(build, a, b)
	ga, gb := a.Grad.Clone(), b.Grad.Clone()
	loss := func() float64 { return runScalar(build, a, b) }
	numericalCheck(t, "batchNT/a", a, loss, ga)
	numericalCheck(t, "batchNT/b", b, loss, gb)
}

func TestBatchMatMulNNGrad(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	const batch, rw, rv, cv = 3, 4, 5, 2
	w := randParam("w", batch*rw, rv, rng)
	v := randParam("v", batch*rv, cv, rng)
	mix := NewRandN(batch*rw, cv, 1, rng)
	build := func(tp *Tape) *Node {
		return tp.Sum(tp.Mul(tp.BatchMatMulNN(tp.Param(w), tp.Param(v), batch), tp.Const(mix)))
	}
	runScalar(build, w, v)
	gw, gv := w.Grad.Clone(), v.Grad.Clone()
	loss := func() float64 { return runScalar(build, w, v) }
	numericalCheck(t, "batchNN/w", w, loss, gw)
	numericalCheck(t, "batchNN/v", v, loss, gv)
}

// TestBatchMatMulMatchesUnbatched pins the batched ops to the composed
// single-sequence graph they replace: per block, NT equals
// MatMul(a, Transpose(b)) and NN equals MatMul(w, v), in both values and
// parameter gradients.
func TestBatchMatMulMatchesUnbatched(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	const batch, L, d = 4, 3, 5
	a := randParam("a", batch*L, d, rng)
	b := randParam("b", batch*L, d, rng)

	batched := runAttnProduct(t, a, b, func(tp *Tape, an, bn *Node) *Node {
		s := tp.BatchMatMulNT(an, bn, batch)
		return tp.BatchMatMulNN(tp.SoftmaxRows(s), bn, batch)
	})
	gaB, gbB := a.Grad.Clone(), b.Grad.Clone()

	sequential := runAttnProduct(t, a, b, func(tp *Tape, an, bn *Node) *Node {
		parts := make([]*Node, 0, batch)
		for i := 0; i < batch; i++ {
			ai := tp.SliceRows(an, i*L, (i+1)*L)
			bi := tp.SliceRows(bn, i*L, (i+1)*L)
			s := tp.MatMul(ai, tp.Transpose(bi))
			parts = append(parts, tp.MatMul(tp.SoftmaxRows(s), bi))
		}
		return stackRows(tp, parts)
	})
	gaS, gbS := a.Grad.Clone(), b.Grad.Clone()

	const tol = 1e-12
	if d := maxAbsDiff(batched, sequential); d > tol {
		t.Fatalf("batched vs sequential values differ by %g", d)
	}
	if d := maxAbsDiff(gaB, gaS); d > tol {
		t.Fatalf("grad(a) differs by %g", d)
	}
	if d := maxAbsDiff(gbB, gbS); d > tol {
		t.Fatalf("grad(b) differs by %g", d)
	}
}

// runAttnProduct runs forward+backward over f's output summed to a
// scalar and returns the forward value.
func runAttnProduct(t *testing.T, a, b *Param, f func(tp *Tape, an, bn *Node) *Node) *Matrix {
	t.Helper()
	a.ZeroGrad()
	b.ZeroGrad()
	tp := NewTape()
	out := f(tp, tp.Param(a), tp.Param(b))
	tp.Backward(tp.Sum(out))
	return out.Value.Clone()
}

// stackRows vertically concatenates equal-width nodes.
func stackRows(tp *Tape, parts []*Node) *Node {
	cols := parts[0].Value.Cols
	transposed := make([]*Node, len(parts))
	for i, p := range parts {
		transposed[i] = tp.Transpose(p)
	}
	_ = cols
	return tp.Transpose(tp.ConcatCols(transposed...))
}

func maxAbsDiff(a, b *Matrix) float64 {
	if !a.SameShape(b) {
		return math.Inf(1)
	}
	var worst float64
	for i, x := range a.Data {
		if d := math.Abs(x - b.Data[i]); d > worst {
			worst = d
		}
	}
	return worst
}
