package tensor

import (
	"math"
	"math/rand"
	"testing"
)

// numericalCheck compares the analytic gradient of loss w.r.t. p against
// central finite differences.
func numericalCheck(t *testing.T, name string, p *Param, loss func() float64, analytic *Matrix) {
	t.Helper()
	const h = 1e-5
	for i := range p.Value.Data {
		orig := p.Value.Data[i]
		p.Value.Data[i] = orig + h
		up := loss()
		p.Value.Data[i] = orig - h
		down := loss()
		p.Value.Data[i] = orig
		want := (up - down) / (2 * h)
		got := analytic.Data[i]
		if math.Abs(want-got) > 1e-4*(1+math.Abs(want)) {
			t.Errorf("%s: grad[%d] = %g, finite diff = %g", name, i, got, want)
		}
	}
}

// runScalar runs forward+backward for a scalar-producing graph and
// returns the loss value with gradients accumulated into the params.
func runScalar(build func(tp *Tape) *Node, params ...*Param) float64 {
	for _, p := range params {
		p.ZeroGrad()
	}
	tp := NewTape()
	out := build(tp)
	if out.Value.Rows != 1 || out.Value.Cols != 1 {
		panic("runScalar: non-scalar output")
	}
	tp.Backward(out)
	return out.Value.Data[0]
}

func randParam(name string, rows, cols int, rng *rand.Rand) *Param {
	return NewParam(name, NewRandN(rows, cols, 1, rng))
}

func TestMatMulGrad(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := randParam("a", 3, 4, rng)
	b := randParam("b", 4, 2, rng)
	build := func(tp *Tape) *Node { return tp.Sum(tp.MatMul(tp.Param(a), tp.Param(b))) }
	runScalar(build, a, b)
	ga, gb := a.Grad.Clone(), b.Grad.Clone()
	loss := func() float64 { return runScalar(build, a, b) }
	numericalCheck(t, "matmul/a", a, loss, ga)
	numericalCheck(t, "matmul/b", b, loss, gb)
}

func TestTransposeGrad(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := randParam("a", 3, 5, rng)
	w := NewRandN(5, 3, 1, rng)
	build := func(tp *Tape) *Node { return tp.Sum(tp.Mul(tp.Transpose(tp.Param(a)), tp.Const(w))) }
	runScalar(build, a)
	ga := a.Grad.Clone()
	numericalCheck(t, "transpose", a, func() float64 { return runScalar(build, a) }, ga)
}

func TestElementwiseGrads(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	cases := []struct {
		name string
		f    func(tp *Tape, x *Node) *Node
		pos  bool // restrict input to positive values (log)
	}{
		{"sigmoid", func(tp *Tape, x *Node) *Node { return tp.Sigmoid(x) }, false},
		{"tanh", func(tp *Tape, x *Node) *Node { return tp.Tanh(x) }, false},
		{"square", func(tp *Tape, x *Node) *Node { return tp.Square(x) }, false},
		{"scale", func(tp *Tape, x *Node) *Node { return tp.Scale(x, -2.5) }, false},
		{"addscalar", func(tp *Tape, x *Node) *Node { return tp.AddScalar(x, 3) }, false},
		{"log", func(tp *Tape, x *Node) *Node { return tp.Log(x) }, true},
	}
	for _, tc := range cases {
		a := randParam(tc.name, 2, 3, rng)
		if tc.pos {
			for i := range a.Value.Data {
				a.Value.Data[i] = math.Abs(a.Value.Data[i]) + 0.5
			}
		}
		build := func(tp *Tape) *Node { return tp.Sum(tc.f(tp, tp.Param(a))) }
		runScalar(build, a)
		ga := a.Grad.Clone()
		numericalCheck(t, tc.name, a, func() float64 { return runScalar(build, a) }, ga)
	}
}

func TestReLUGrad(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := randParam("a", 2, 4, rng)
	// Keep inputs away from the kink at 0 so finite differences are valid.
	for i := range a.Value.Data {
		if math.Abs(a.Value.Data[i]) < 0.1 {
			a.Value.Data[i] = 0.5
		}
	}
	build := func(tp *Tape) *Node { return tp.Sum(tp.ReLU(tp.Param(a))) }
	runScalar(build, a)
	ga := a.Grad.Clone()
	numericalCheck(t, "relu", a, func() float64 { return runScalar(build, a) }, ga)
}

func TestBinaryGrads(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	ops := []struct {
		name string
		f    func(tp *Tape, a, b *Node) *Node
	}{
		{"add", func(tp *Tape, a, b *Node) *Node { return tp.Add(a, b) }},
		{"sub", func(tp *Tape, a, b *Node) *Node { return tp.Sub(a, b) }},
		{"mul", func(tp *Tape, a, b *Node) *Node { return tp.Mul(a, b) }},
	}
	for _, op := range ops {
		a := randParam("a", 2, 3, rng)
		b := randParam("b", 2, 3, rng)
		build := func(tp *Tape) *Node { return tp.Sum(op.f(tp, tp.Param(a), tp.Param(b))) }
		runScalar(build, a, b)
		ga, gb := a.Grad.Clone(), b.Grad.Clone()
		loss := func() float64 { return runScalar(build, a, b) }
		numericalCheck(t, op.name+"/a", a, loss, ga)
		numericalCheck(t, op.name+"/b", b, loss, gb)
	}
}

func TestRowVecGrads(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	a := randParam("a", 3, 4, rng)
	v := randParam("v", 1, 4, rng)
	for _, tc := range []struct {
		name string
		f    func(tp *Tape, a, v *Node) *Node
	}{
		{"addrowvec", func(tp *Tape, a, v *Node) *Node { return tp.AddRowVec(a, v) }},
		{"mulrowvec", func(tp *Tape, a, v *Node) *Node { return tp.MulRowVec(a, v) }},
	} {
		build := func(tp *Tape) *Node { return tp.Sum(tp.Square(tc.f(tp, tp.Param(a), tp.Param(v)))) }
		runScalar(build, a, v)
		ga, gv := a.Grad.Clone(), v.Grad.Clone()
		loss := func() float64 { return runScalar(build, a, v) }
		numericalCheck(t, tc.name+"/a", a, loss, ga)
		numericalCheck(t, tc.name+"/v", v, loss, gv)
	}
}

func TestSoftmaxRowsGrad(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := randParam("a", 3, 5, rng)
	w := NewRandN(3, 5, 1, rng)
	build := func(tp *Tape) *Node { return tp.Sum(tp.Mul(tp.SoftmaxRows(tp.Param(a)), tp.Const(w))) }
	runScalar(build, a)
	ga := a.Grad.Clone()
	numericalCheck(t, "softmax", a, func() float64 { return runScalar(build, a) }, ga)
}

func TestNormalizeRowsGrad(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	a := randParam("a", 3, 6, rng)
	w := NewRandN(3, 6, 1, rng)
	build := func(tp *Tape) *Node {
		return tp.Sum(tp.Mul(tp.NormalizeRows(tp.Param(a), 1e-5), tp.Const(w)))
	}
	runScalar(build, a)
	ga := a.Grad.Clone()
	numericalCheck(t, "normalize", a, func() float64 { return runScalar(build, a) }, ga)
}

func TestGatherRowsGrad(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	emb := randParam("emb", 6, 4, rng)
	idx := []int{2, 0, 2, 5, -1} // repeated and padding indices
	build := func(tp *Tape) *Node { return tp.Sum(tp.Square(tp.GatherRows(tp.Param(emb), idx))) }
	runScalar(build, emb)
	g := emb.Grad.Clone()
	numericalCheck(t, "gather", emb, func() float64 { return runScalar(build, emb) }, g)
	// The padding row produced zeros and received no gradient anywhere.
	for c := 0; c < 4; c++ {
		if g.At(1, c) != 0 || g.At(3, c) != 0 || g.At(4, c) != 0 {
			t.Errorf("unused embedding rows must have zero grad, got %v", g)
			break
		}
	}
}

func TestConcatSliceGrads(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	a := randParam("a", 3, 2, rng)
	b := randParam("b", 3, 3, rng)
	build := func(tp *Tape) *Node {
		cat := tp.ConcatCols(tp.Param(a), tp.Param(b))
		mid := tp.SliceCols(cat, 1, 4)
		return tp.Sum(tp.Square(mid))
	}
	runScalar(build, a, b)
	ga, gb := a.Grad.Clone(), b.Grad.Clone()
	loss := func() float64 { return runScalar(build, a, b) }
	numericalCheck(t, "concat-slice/a", a, loss, ga)
	numericalCheck(t, "concat-slice/b", b, loss, gb)
}

func TestSliceRowsGrad(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	a := randParam("a", 5, 3, rng)
	build := func(tp *Tape) *Node { return tp.Sum(tp.Square(tp.SliceRows(tp.Param(a), 1, 4))) }
	runScalar(build, a)
	ga := a.Grad.Clone()
	numericalCheck(t, "slicerows", a, func() float64 { return runScalar(build, a) }, ga)
}

func TestReduceGrads(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	a := randParam("a", 3, 4, rng)
	for _, tc := range []struct {
		name string
		f    func(tp *Tape, x *Node) *Node
	}{
		{"mean", func(tp *Tape, x *Node) *Node { return tp.Mean(tp.Square(x)) }},
		{"sumrows", func(tp *Tape, x *Node) *Node { return tp.Sum(tp.Square(tp.SumRows(x))) }},
		{"sumsquares", func(tp *Tape, x *Node) *Node { return tp.SumSquares(x) }},
		{"rowdot", func(tp *Tape, x *Node) *Node { return tp.Sum(tp.RowDot(x, x)) }},
	} {
		build := func(tp *Tape) *Node { return tc.f(tp, tp.Param(a)) }
		runScalar(build, a)
		ga := a.Grad.Clone()
		numericalCheck(t, tc.name, a, func() float64 { return runScalar(build, a) }, ga)
	}
}

func TestCrossEntropyMeanGrad(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	logits := randParam("logits", 4, 5, rng)
	targets := []int{1, 4, -1, 0} // includes an ignored position
	build := func(tp *Tape) *Node { return tp.CrossEntropyMean(tp.Param(logits), targets) }
	runScalar(build, logits)
	g := logits.Grad.Clone()
	numericalCheck(t, "xent", logits, func() float64 { return runScalar(build, logits) }, g)
}
