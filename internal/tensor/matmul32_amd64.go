//go:build amd64

package tensor

// matMul32 computes one output row per gemv4 call: the assembly kernel
// walks the k-quartets and the packed j-lanes itself, so the Go side
// pays one call per row instead of one per k-quartet. SSE2 is part of
// the amd64 baseline, so no runtime feature detection is needed. The
// scalar k-tail keeps the same left-to-right add order as the kernel,
// so results match the generic build bitwise.
func matMul32(dst, a, b *Matrix32) {
	n, bc := a.Cols, b.Cols
	kq := n &^ 3
	for i := 0; i < a.Rows; i++ {
		arow := a.Data[i*n : (i+1)*n]
		drow := dst.Data[i*bc : (i+1)*bc]
		if kq > 0 {
			gemv4(drow, arow[:kq], b.Data[:kq*bc])
		}
		for k := kq; k < n; k++ {
			av := arow[k]
			if av == 0 {
				continue
			}
			brow := b.Data[k*bc : (k+1)*bc]
			for j, bv := range brow {
				drow[j] += av * bv
			}
		}
	}
}

// gemv4 computes dst[j] += Σ_k a[k]*b[k*len(dst)+j] over k-quartets:
// len(a) must be a multiple of 4 and len(b) >= len(a)*len(dst).
// All-zero a-quartets are skipped exactly as in the generic kernel.
// Implemented in gemv4_amd64.s.
//
//go:noescape
func gemv4(dst, a, b []float32)
