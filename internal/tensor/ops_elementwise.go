package tensor

import (
	"math"
	"math/rand"
)

// binary applies an elementwise op with per-element partial derivatives.
func (t *Tape) binary(a, b *Node, f func(x, y float64) float64,
	dfa func(x, y float64) float64, dfb func(x, y float64) float64) *Node {
	checkSameTape(t, a, b)
	checkShape(a.Value.SameShape(b.Value), "elementwise shape %dx%d vs %dx%d",
		a.Value.Rows, a.Value.Cols, b.Value.Rows, b.Value.Cols)
	out := NewMatrix(a.Value.Rows, a.Value.Cols)
	for i := range out.Data {
		out.Data[i] = f(a.Value.Data[i], b.Value.Data[i])
	}
	n := t.node(out, a.requiresGrad || b.requiresGrad, nil)
	n.back = func() {
		if a.requiresGrad {
			ensureGrad(a)
			for i, g := range n.Grad.Data {
				a.Grad.Data[i] += g * dfa(a.Value.Data[i], b.Value.Data[i])
			}
		}
		if b.requiresGrad {
			ensureGrad(b)
			for i, g := range n.Grad.Data {
				b.Grad.Data[i] += g * dfb(a.Value.Data[i], b.Value.Data[i])
			}
		}
	}
	return n
}

// unary applies an elementwise op whose derivative is expressed in terms
// of the input x and the output y.
func (t *Tape) unary(a *Node, f func(x float64) float64, df func(x, y float64) float64) *Node {
	checkSameTape(t, a)
	out := NewMatrix(a.Value.Rows, a.Value.Cols)
	for i, x := range a.Value.Data {
		out.Data[i] = f(x)
	}
	n := t.node(out, a.requiresGrad, nil)
	n.back = func() {
		if !a.requiresGrad {
			return
		}
		ensureGrad(a)
		for i, g := range n.Grad.Data {
			a.Grad.Data[i] += g * df(a.Value.Data[i], out.Data[i])
		}
	}
	return n
}

// Add returns a + b (same shape).
func (t *Tape) Add(a, b *Node) *Node {
	return t.binary(a, b,
		func(x, y float64) float64 { return x + y },
		func(x, y float64) float64 { return 1 },
		func(x, y float64) float64 { return 1 })
}

// Sub returns a - b (same shape).
func (t *Tape) Sub(a, b *Node) *Node {
	return t.binary(a, b,
		func(x, y float64) float64 { return x - y },
		func(x, y float64) float64 { return 1 },
		func(x, y float64) float64 { return -1 })
}

// Mul returns the Hadamard product a ⊙ b.
func (t *Tape) Mul(a, b *Node) *Node {
	return t.binary(a, b,
		func(x, y float64) float64 { return x * y },
		func(x, y float64) float64 { return y },
		func(x, y float64) float64 { return x })
}

// Scale returns s·a for a constant scalar s.
func (t *Tape) Scale(a *Node, s float64) *Node {
	return t.unary(a,
		func(x float64) float64 { return s * x },
		func(x, y float64) float64 { return s })
}

// AddScalar returns a + s for a constant scalar s.
func (t *Tape) AddScalar(a *Node, s float64) *Node {
	return t.unary(a,
		func(x float64) float64 { return x + s },
		func(x, y float64) float64 { return 1 })
}

// ReLU returns max(0, a) elementwise (Eq. 7's activation).
func (t *Tape) ReLU(a *Node) *Node {
	return t.unary(a,
		func(x float64) float64 { return math.Max(0, x) },
		func(x, y float64) float64 {
			if x > 0 {
				return 1
			}
			return 0
		})
}

// Sigmoid returns 1/(1+e^-a) elementwise (Eq. 10's squashing).
func (t *Tape) Sigmoid(a *Node) *Node {
	return t.unary(a,
		func(x float64) float64 { return 1 / (1 + math.Exp(-x)) },
		func(x, y float64) float64 { return y * (1 - y) })
}

// Tanh returns tanh(a) elementwise.
func (t *Tape) Tanh(a *Node) *Node {
	return t.unary(a, math.Tanh,
		func(x, y float64) float64 { return 1 - y*y })
}

// Log returns ln(a) elementwise with a small clamp to avoid -Inf.
func (t *Tape) Log(a *Node) *Node {
	const eps = 1e-12
	return t.unary(a,
		func(x float64) float64 { return math.Log(math.Max(x, eps)) },
		func(x, y float64) float64 { return 1 / math.Max(x, eps) })
}

// Square returns a² elementwise.
func (t *Tape) Square(a *Node) *Node {
	return t.unary(a,
		func(x float64) float64 { return x * x },
		func(x, y float64) float64 { return 2 * x })
}

// AddRowVec broadcasts the 1 x Cols vector v over the rows of a.
func (t *Tape) AddRowVec(a, v *Node) *Node {
	checkSameTape(t, a, v)
	checkShape(v.Value.Rows == 1 && v.Value.Cols == a.Value.Cols,
		"row-vector broadcast %dx%d onto %dx%d", v.Value.Rows, v.Value.Cols, a.Value.Rows, a.Value.Cols)
	out := NewMatrix(a.Value.Rows, a.Value.Cols)
	for r := 0; r < a.Value.Rows; r++ {
		ar := a.Value.Row(r)
		or := out.Row(r)
		for c, x := range ar {
			or[c] = x + v.Value.Data[c]
		}
	}
	n := t.node(out, a.requiresGrad || v.requiresGrad, nil)
	n.back = func() {
		if a.requiresGrad {
			ensureGrad(a)
			for i, g := range n.Grad.Data {
				a.Grad.Data[i] += g
			}
		}
		if v.requiresGrad {
			ensureGrad(v)
			for r := 0; r < out.Rows; r++ {
				gr := n.Grad.Row(r)
				for c, g := range gr {
					v.Grad.Data[c] += g
				}
			}
		}
	}
	return n
}

// MulRowVec broadcasts an elementwise multiply of the 1 x Cols vector v
// over the rows of a (used by layer-norm gain).
func (t *Tape) MulRowVec(a, v *Node) *Node {
	checkSameTape(t, a, v)
	checkShape(v.Value.Rows == 1 && v.Value.Cols == a.Value.Cols,
		"row-vector broadcast %dx%d onto %dx%d", v.Value.Rows, v.Value.Cols, a.Value.Rows, a.Value.Cols)
	out := NewMatrix(a.Value.Rows, a.Value.Cols)
	for r := 0; r < a.Value.Rows; r++ {
		ar := a.Value.Row(r)
		or := out.Row(r)
		for c, x := range ar {
			or[c] = x * v.Value.Data[c]
		}
	}
	n := t.node(out, a.requiresGrad || v.requiresGrad, nil)
	n.back = func() {
		if a.requiresGrad {
			ensureGrad(a)
			for r := 0; r < out.Rows; r++ {
				gr := n.Grad.Row(r)
				dst := a.Grad.Row(r)
				for c, g := range gr {
					dst[c] += g * v.Value.Data[c]
				}
			}
		}
		if v.requiresGrad {
			ensureGrad(v)
			for r := 0; r < out.Rows; r++ {
				gr := n.Grad.Row(r)
				ar := a.Value.Row(r)
				for c, g := range gr {
					v.Grad.Data[c] += g * ar[c]
				}
			}
		}
	}
	return n
}

// Dropout zeroes each element with probability rate and scales the
// survivors by 1/(1-rate) (inverted dropout). With train=false or
// rate<=0 it is the identity.
func (t *Tape) Dropout(a *Node, rate float64, train bool, rng *rand.Rand) *Node {
	checkSameTape(t, a)
	if !train || rate <= 0 {
		return a
	}
	checkShape(rate < 1, "dropout rate %v must be < 1", rate)
	scale := 1 / (1 - rate)
	mask := make([]float64, len(a.Value.Data))
	out := NewMatrix(a.Value.Rows, a.Value.Cols)
	for i, x := range a.Value.Data {
		if rng.Float64() >= rate {
			mask[i] = scale
			out.Data[i] = x * scale
		}
	}
	n := t.node(out, a.requiresGrad, nil)
	n.back = func() {
		if !a.requiresGrad {
			return
		}
		ensureGrad(a)
		for i, g := range n.Grad.Data {
			a.Grad.Data[i] += g * mask[i]
		}
	}
	return n
}
