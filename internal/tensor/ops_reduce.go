package tensor

import "math"

// Sum reduces a to a 1x1 scalar node.
func (t *Tape) Sum(a *Node) *Node {
	checkSameTape(t, a)
	var s float64
	for _, x := range a.Value.Data {
		s += x
	}
	out := FromSlice(1, 1, []float64{s})
	n := t.node(out, a.requiresGrad, nil)
	n.back = func() {
		if !a.requiresGrad {
			return
		}
		ensureGrad(a)
		g := n.Grad.Data[0]
		for i := range a.Grad.Data {
			a.Grad.Data[i] += g
		}
	}
	return n
}

// Mean reduces a to its scalar mean.
func (t *Tape) Mean(a *Node) *Node {
	return t.Scale(t.Sum(a), 1/float64(len(a.Value.Data)))
}

// SumRows reduces each row of a to one value, producing a Rows x 1 node.
func (t *Tape) SumRows(a *Node) *Node {
	checkSameTape(t, a)
	out := NewMatrix(a.Value.Rows, 1)
	for r := 0; r < a.Value.Rows; r++ {
		var s float64
		for _, x := range a.Value.Row(r) {
			s += x
		}
		out.Data[r] = s
	}
	n := t.node(out, a.requiresGrad, nil)
	n.back = func() {
		if !a.requiresGrad {
			return
		}
		ensureGrad(a)
		for r := 0; r < a.Value.Rows; r++ {
			g := n.Grad.Data[r]
			dst := a.Grad.Row(r)
			for c := range dst {
				dst[c] += g
			}
		}
	}
	return n
}

// RowDot returns the per-row inner product of a and b as a Rows x 1 node.
// This is the similarity primitive of Eq. 10 before the sigmoid.
func (t *Tape) RowDot(a, b *Node) *Node {
	return t.SumRows(t.Mul(a, b))
}

// SumSquares returns sum(a²) as a 1x1 node; the L2 term of Eq. 11.
func (t *Tape) SumSquares(a *Node) *Node {
	return t.Sum(t.Square(a))
}

// SoftmaxRows applies a numerically-stable softmax along each row
// (Eq. 3's weight normalization).
func (t *Tape) SoftmaxRows(a *Node) *Node {
	checkSameTape(t, a)
	out := NewMatrix(a.Value.Rows, a.Value.Cols)
	for r := 0; r < a.Value.Rows; r++ {
		softmaxInto(out.Row(r), a.Value.Row(r))
	}
	n := t.node(out, a.requiresGrad, nil)
	n.back = func() {
		if !a.requiresGrad {
			return
		}
		ensureGrad(a)
		for r := 0; r < out.Rows; r++ {
			y := out.Row(r)
			g := n.Grad.Row(r)
			var dot float64
			for c := range y {
				dot += g[c] * y[c]
			}
			dst := a.Grad.Row(r)
			for c := range y {
				dst[c] += y[c] * (g[c] - dot)
			}
		}
	}
	return n
}

// SoftmaxInto writes a numerically-stable softmax(src) into dst (which
// may alias src). It is the tape-free counterpart of SoftmaxRows for
// inference kernels that manage their own buffers.
func SoftmaxInto(dst, src []float64) { softmaxInto(dst, src) }

// softmaxInto writes softmax(src) into dst (may alias).
func softmaxInto(dst, src []float64) {
	maxv := math.Inf(-1)
	for _, x := range src {
		if x > maxv {
			maxv = x
		}
	}
	var sum float64
	for i, x := range src {
		e := math.Exp(x - maxv)
		dst[i] = e
		sum += e
	}
	for i := range dst {
		dst[i] /= sum
	}
}

// NormalizeRows standardizes each row to zero mean and unit variance
// (the (x-μ)/√(σ²+ε) core of Eq. 6); gain and bias are applied by the
// caller via MulRowVec / AddRowVec.
func (t *Tape) NormalizeRows(a *Node, eps float64) *Node {
	checkSameTape(t, a)
	rows, cols := a.Value.Rows, a.Value.Cols
	out := NewMatrix(rows, cols)
	invStd := make([]float64, rows)
	for r := 0; r < rows; r++ {
		src := a.Value.Row(r)
		var mu float64
		for _, x := range src {
			mu += x
		}
		mu /= float64(cols)
		var v float64
		for _, x := range src {
			d := x - mu
			v += d * d
		}
		v /= float64(cols)
		inv := 1 / math.Sqrt(v+eps)
		invStd[r] = inv
		dst := out.Row(r)
		for c, x := range src {
			dst[c] = (x - mu) * inv
		}
	}
	n := t.node(out, a.requiresGrad, nil)
	n.back = func() {
		if !a.requiresGrad {
			return
		}
		ensureGrad(a)
		nf := float64(cols)
		for r := 0; r < rows; r++ {
			xhat := out.Row(r)
			g := n.Grad.Row(r)
			var sumG, sumGX float64
			for c := range g {
				sumG += g[c]
				sumGX += g[c] * xhat[c]
			}
			dst := a.Grad.Row(r)
			inv := invStd[r]
			for c := range g {
				dst[c] += inv * (g[c] - sumG/nf - xhat[c]*sumGX/nf)
			}
		}
	}
	return n
}

// CrossEntropyMean computes mean over positions of -log softmax(logits)[target].
// Positions with target < 0 are ignored (padding). This fused op is used
// by the DeepLog and base-transformer training objectives.
func (t *Tape) CrossEntropyMean(logits *Node, targets []int) *Node {
	checkSameTape(t, logits)
	checkShape(len(targets) == logits.Value.Rows, "cross-entropy targets %d vs rows %d",
		len(targets), logits.Value.Rows)
	probs := NewMatrix(logits.Value.Rows, logits.Value.Cols)
	var loss float64
	count := 0
	for r, tgt := range targets {
		softmaxInto(probs.Row(r), logits.Value.Row(r))
		if tgt < 0 {
			continue
		}
		checkShape(tgt < logits.Value.Cols, "cross-entropy target %d out of %d classes", tgt, logits.Value.Cols)
		loss -= math.Log(math.Max(probs.At(r, tgt), 1e-12))
		count++
	}
	if count > 0 {
		loss /= float64(count)
	}
	out := FromSlice(1, 1, []float64{loss})
	n := t.node(out, logits.requiresGrad, nil)
	n.back = func() {
		if !logits.requiresGrad || count == 0 {
			return
		}
		ensureGrad(logits)
		g := n.Grad.Data[0] / float64(count)
		for r, tgt := range targets {
			if tgt < 0 {
				continue
			}
			dst := logits.Grad.Row(r)
			p := probs.Row(r)
			for c := range dst {
				dst[c] += g * p[c]
			}
			dst[tgt] -= g
		}
	}
	return n
}
