// Package tensor provides a dense float64 matrix type and a tape-based
// reverse-mode automatic differentiation engine.
//
// It is the numeric substrate for the Trans-DAS transformer and the
// deep-learning baselines (DeepLog, USAD). The design favors clarity and
// determinism over raw speed: all state is explicit, no global RNG is
// used, and every differentiable operation is validated against finite
// differences in the test suite.
package tensor

import (
	"fmt"
	"math"
	"math/rand"
)

// Matrix is a dense, row-major float64 matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64
}

// NewMatrix returns a zero-initialized Rows x Cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("tensor: invalid shape %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// FromSlice builds a Rows x Cols matrix that takes ownership of data.
func FromSlice(rows, cols int, data []float64) *Matrix {
	if len(data) != rows*cols {
		panic(fmt.Sprintf("tensor: data length %d does not match shape %dx%d", len(data), rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: data}
}

// NewXavier returns a matrix with entries drawn uniformly from
// [-limit, limit] where limit = sqrt(6/(rows+cols)) (Glorot init).
func NewXavier(rows, cols int, rng *rand.Rand) *Matrix {
	m := NewMatrix(rows, cols)
	limit := math.Sqrt(6.0 / float64(rows+cols))
	for i := range m.Data {
		m.Data[i] = (rng.Float64()*2 - 1) * limit
	}
	return m
}

// NewRandN returns a matrix with entries drawn from N(0, std²).
func NewRandN(rows, cols int, std float64, rng *rand.Rand) *Matrix {
	m := NewMatrix(rows, cols)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64() * std
	}
	return m
}

// At returns the element at row r, column c.
func (m *Matrix) At(r, c int) float64 { return m.Data[r*m.Cols+c] }

// Set assigns the element at row r, column c.
func (m *Matrix) Set(r, c int, v float64) { m.Data[r*m.Cols+c] = v }

// Row returns a view (shared backing array) of row r.
func (m *Matrix) Row(r int) []float64 { return m.Data[r*m.Cols : (r+1)*m.Cols] }

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// Zero sets all elements to zero.
func (m *Matrix) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// Fill sets all elements to v.
func (m *Matrix) Fill(v float64) {
	for i := range m.Data {
		m.Data[i] = v
	}
}

// SameShape reports whether m and o have identical dimensions.
func (m *Matrix) SameShape(o *Matrix) bool { return m.Rows == o.Rows && m.Cols == o.Cols }

// AddInto accumulates dst += src element-wise. It is the gradient
// reduction primitive of the data-parallel trainer: per-worker
// accumulators are folded into the shared parameter gradient in a fixed
// order, so the floating-point sum is reproducible across runs.
func AddInto(dst, src *Matrix) {
	if !dst.SameShape(src) {
		panic(fmt.Sprintf("tensor: addinto shape mismatch %dx%d += %dx%d",
			dst.Rows, dst.Cols, src.Rows, src.Cols))
	}
	for i, v := range src.Data {
		dst.Data[i] += v
	}
}

// ScaleInto writes dst = s·src element-wise (dst may alias src for an
// in-place scale).
func ScaleInto(dst, src *Matrix, s float64) {
	if !dst.SameShape(src) {
		panic(fmt.Sprintf("tensor: scaleinto shape mismatch %dx%d = s*%dx%d",
			dst.Rows, dst.Cols, src.Rows, src.Cols))
	}
	for i, v := range src.Data {
		dst.Data[i] = s * v
	}
}

// RowsView returns rows [from, to) as a matrix sharing m's backing
// array. Writes through the view are visible in m; the view must not
// outlive reshapes of m.
func (m *Matrix) RowsView(from, to int) *Matrix {
	if from < 0 || from > to || to > m.Rows {
		panic(fmt.Sprintf("tensor: rows view [%d:%d) of %d rows", from, to, m.Rows))
	}
	return &Matrix{Rows: to - from, Cols: m.Cols, Data: m.Data[from*m.Cols : to*m.Cols]}
}

// String renders the matrix for debugging.
func (m *Matrix) String() string {
	s := fmt.Sprintf("Matrix(%dx%d)[", m.Rows, m.Cols)
	for r := 0; r < m.Rows; r++ {
		if r > 0 {
			s += "; "
		}
		for c := 0; c < m.Cols; c++ {
			if c > 0 {
				s += " "
			}
			s += fmt.Sprintf("%.4g", m.At(r, c))
		}
	}
	return s + "]"
}

// MatMulInto computes dst = a·b without autodiff. dst must not alias a
// or b. The inner loop processes four k-terms per pass over the output
// row, quartering the store traffic of a plain axpy walk; all-zero
// quartets (padded or masked inputs) are skipped.
func MatMulInto(dst, a, b *Matrix) {
	if a.Cols != b.Rows || dst.Rows != a.Rows || dst.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: matmul shape mismatch (%dx%d)·(%dx%d)->(%dx%d)",
			a.Rows, a.Cols, b.Rows, b.Cols, dst.Rows, dst.Cols))
	}
	dst.Zero()
	n, bc := a.Cols, b.Cols
	i := 0
	for ; i+2 <= a.Rows; i += 2 {
		ar0 := a.Data[i*n : (i+1)*n]
		ar1 := a.Data[(i+1)*n : (i+2)*n]
		dr0 := dst.Data[i*bc : (i+1)*bc]
		dr1 := dst.Data[(i+1)*bc : (i+2)*bc]
		k := 0
		for ; k+4 <= n; k += 4 {
			a00, a01, a02, a03 := ar0[k], ar0[k+1], ar0[k+2], ar0[k+3]
			a10, a11, a12, a13 := ar1[k], ar1[k+1], ar1[k+2], ar1[k+3]
			if a00 == 0 && a01 == 0 && a02 == 0 && a03 == 0 &&
				a10 == 0 && a11 == 0 && a12 == 0 && a13 == 0 {
				continue
			}
			b0 := b.Data[k*bc : (k+1)*bc]
			b1 := b.Data[(k+1)*bc : (k+2)*bc]
			b2 := b.Data[(k+2)*bc : (k+3)*bc]
			b3 := b.Data[(k+3)*bc : (k+4)*bc : (k+4)*bc]
			for j := range b3 {
				v0, v1, v2, v3 := b0[j], b1[j], b2[j], b3[j]
				dr0[j] += a00*v0 + a01*v1 + a02*v2 + a03*v3
				dr1[j] += a10*v0 + a11*v1 + a12*v2 + a13*v3
			}
		}
		for ; k < n; k++ {
			a0v, a1v := ar0[k], ar1[k]
			if a0v == 0 && a1v == 0 {
				continue
			}
			brow := b.Data[k*bc : (k+1)*bc]
			for j, bv := range brow {
				dr0[j] += a0v * bv
				dr1[j] += a1v * bv
			}
		}
	}
	for ; i < a.Rows; i++ {
		arow := a.Data[i*n : (i+1)*n]
		drow := dst.Data[i*bc : (i+1)*bc]
		k := 0
		for ; k+4 <= n; k += 4 {
			a0, a1, a2, a3 := arow[k], arow[k+1], arow[k+2], arow[k+3]
			if a0 == 0 && a1 == 0 && a2 == 0 && a3 == 0 {
				continue
			}
			b0 := b.Data[k*bc : (k+1)*bc]
			b1 := b.Data[(k+1)*bc : (k+2)*bc]
			b2 := b.Data[(k+2)*bc : (k+3)*bc]
			b3 := b.Data[(k+3)*bc : (k+4)*bc : (k+4)*bc]
			for j := range b3 {
				drow[j] += a0*b0[j] + a1*b1[j] + a2*b2[j] + a3*b3[j]
			}
		}
		for ; k < n; k++ {
			av := arow[k]
			if av == 0 {
				continue
			}
			brow := b.Data[k*bc : (k+1)*bc]
			for j, bv := range brow {
				drow[j] += av * bv
			}
		}
	}
}

// AddMatMul accumulates dst += a·b. Used by backward passes; each output
// element is a k-ascending dot product, matching the accumulation order
// of AddMatMulTransposeB so batched and unbatched backward passes agree.
func AddMatMul(dst, a, b *Matrix) {
	if a.Cols != b.Rows || dst.Rows != a.Rows || dst.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: addmatmul shape mismatch (%dx%d)·(%dx%d)->(%dx%d)",
			a.Rows, a.Cols, b.Rows, b.Cols, dst.Rows, dst.Cols))
	}
	for i := 0; i < a.Rows; i++ {
		arow := a.Data[i*a.Cols : (i+1)*a.Cols]
		drow := dst.Data[i*dst.Cols : (i+1)*dst.Cols]
		for j := 0; j < b.Cols; j++ {
			var s float64
			for k, av := range arow {
				s += av * b.Data[k*b.Cols+j]
			}
			drow[j] += s
		}
	}
}

// AddMatMulTransposeB accumulates dst += a·bᵀ. Used by backward passes.
func AddMatMulTransposeB(dst, a, b *Matrix) {
	if a.Cols != b.Cols || dst.Rows != a.Rows || dst.Cols != b.Rows {
		panic("tensor: addmatmulT shape mismatch")
	}
	for i := 0; i < a.Rows; i++ {
		arow := a.Data[i*a.Cols : (i+1)*a.Cols]
		drow := dst.Data[i*dst.Cols : (i+1)*dst.Cols]
		for j := 0; j < b.Rows; j++ {
			brow := b.Data[j*b.Cols : (j+1)*b.Cols]
			var s float64
			for k, av := range arow {
				s += av * brow[k]
			}
			drow[j] += s
		}
	}
}

// AddMatMulTransposeA accumulates dst += aᵀ·b. Used by backward passes.
func AddMatMulTransposeA(dst, a, b *Matrix) {
	if a.Rows != b.Rows || dst.Rows != a.Cols || dst.Cols != b.Cols {
		panic("tensor: addmatmulTA shape mismatch")
	}
	for k := 0; k < a.Rows; k++ {
		arow := a.Data[k*a.Cols : (k+1)*a.Cols]
		brow := b.Data[k*b.Cols : (k+1)*b.Cols]
		for i, av := range arow {
			if av == 0 {
				continue
			}
			drow := dst.Data[i*dst.Cols : (i+1)*dst.Cols]
			for j, bv := range brow {
				drow[j] += av * bv
			}
		}
	}
}
