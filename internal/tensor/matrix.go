// Package tensor provides a dense float64 matrix type and a tape-based
// reverse-mode automatic differentiation engine.
//
// It is the numeric substrate for the Trans-DAS transformer and the
// deep-learning baselines (DeepLog, USAD). The design favors clarity and
// determinism over raw speed: all state is explicit, no global RNG is
// used, and every differentiable operation is validated against finite
// differences in the test suite.
package tensor

import (
	"fmt"
	"math"
	"math/rand"
)

// Matrix is a dense, row-major float64 matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64
}

// NewMatrix returns a zero-initialized Rows x Cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("tensor: invalid shape %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// FromSlice builds a Rows x Cols matrix that takes ownership of data.
func FromSlice(rows, cols int, data []float64) *Matrix {
	if len(data) != rows*cols {
		panic(fmt.Sprintf("tensor: data length %d does not match shape %dx%d", len(data), rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: data}
}

// NewXavier returns a matrix with entries drawn uniformly from
// [-limit, limit] where limit = sqrt(6/(rows+cols)) (Glorot init).
func NewXavier(rows, cols int, rng *rand.Rand) *Matrix {
	m := NewMatrix(rows, cols)
	limit := math.Sqrt(6.0 / float64(rows+cols))
	for i := range m.Data {
		m.Data[i] = (rng.Float64()*2 - 1) * limit
	}
	return m
}

// NewRandN returns a matrix with entries drawn from N(0, std²).
func NewRandN(rows, cols int, std float64, rng *rand.Rand) *Matrix {
	m := NewMatrix(rows, cols)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64() * std
	}
	return m
}

// At returns the element at row r, column c.
func (m *Matrix) At(r, c int) float64 { return m.Data[r*m.Cols+c] }

// Set assigns the element at row r, column c.
func (m *Matrix) Set(r, c int, v float64) { m.Data[r*m.Cols+c] = v }

// Row returns a view (shared backing array) of row r.
func (m *Matrix) Row(r int) []float64 { return m.Data[r*m.Cols : (r+1)*m.Cols] }

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// Zero sets all elements to zero.
func (m *Matrix) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// Fill sets all elements to v.
func (m *Matrix) Fill(v float64) {
	for i := range m.Data {
		m.Data[i] = v
	}
}

// SameShape reports whether m and o have identical dimensions.
func (m *Matrix) SameShape(o *Matrix) bool { return m.Rows == o.Rows && m.Cols == o.Cols }

// String renders the matrix for debugging.
func (m *Matrix) String() string {
	s := fmt.Sprintf("Matrix(%dx%d)[", m.Rows, m.Cols)
	for r := 0; r < m.Rows; r++ {
		if r > 0 {
			s += "; "
		}
		for c := 0; c < m.Cols; c++ {
			if c > 0 {
				s += " "
			}
			s += fmt.Sprintf("%.4g", m.At(r, c))
		}
	}
	return s + "]"
}

// MatMulInto computes dst = a·b without autodiff. dst must not alias a or b.
func MatMulInto(dst, a, b *Matrix) {
	if a.Cols != b.Rows || dst.Rows != a.Rows || dst.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: matmul shape mismatch (%dx%d)·(%dx%d)->(%dx%d)",
			a.Rows, a.Cols, b.Rows, b.Cols, dst.Rows, dst.Cols))
	}
	dst.Zero()
	for i := 0; i < a.Rows; i++ {
		arow := a.Data[i*a.Cols : (i+1)*a.Cols]
		drow := dst.Data[i*dst.Cols : (i+1)*dst.Cols]
		for k, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.Data[k*b.Cols : (k+1)*b.Cols]
			for j, bv := range brow {
				drow[j] += av * bv
			}
		}
	}
}

// AddMatMulTransposeB accumulates dst += a·bᵀ. Used by backward passes.
func AddMatMulTransposeB(dst, a, b *Matrix) {
	if a.Cols != b.Cols || dst.Rows != a.Rows || dst.Cols != b.Rows {
		panic("tensor: addmatmulT shape mismatch")
	}
	for i := 0; i < a.Rows; i++ {
		arow := a.Data[i*a.Cols : (i+1)*a.Cols]
		drow := dst.Data[i*dst.Cols : (i+1)*dst.Cols]
		for j := 0; j < b.Rows; j++ {
			brow := b.Data[j*b.Cols : (j+1)*b.Cols]
			var s float64
			for k, av := range arow {
				s += av * brow[k]
			}
			drow[j] += s
		}
	}
}

// AddMatMulTransposeA accumulates dst += aᵀ·b. Used by backward passes.
func AddMatMulTransposeA(dst, a, b *Matrix) {
	if a.Rows != b.Rows || dst.Rows != a.Cols || dst.Cols != b.Cols {
		panic("tensor: addmatmulTA shape mismatch")
	}
	for k := 0; k < a.Rows; k++ {
		arow := a.Data[k*a.Cols : (k+1)*a.Cols]
		brow := b.Data[k*b.Cols : (k+1)*b.Cols]
		for i, av := range arow {
			if av == 0 {
				continue
			}
			drow := dst.Data[i*dst.Cols : (i+1)*dst.Cols]
			for j, bv := range brow {
				drow[j] += av * bv
			}
		}
	}
}
