package tensor

// MatMul returns a·b with gradients to both operands.
func (t *Tape) MatMul(a, b *Node) *Node {
	checkSameTape(t, a, b)
	checkShape(a.Value.Cols == b.Value.Rows, "matmul shape (%dx%d)·(%dx%d)",
		a.Value.Rows, a.Value.Cols, b.Value.Rows, b.Value.Cols)
	out := NewMatrix(a.Value.Rows, b.Value.Cols)
	MatMulInto(out, a.Value, b.Value)
	n := t.node(out, a.requiresGrad || b.requiresGrad, nil)
	n.back = func() {
		if a.requiresGrad {
			ensureGrad(a)
			AddMatMulTransposeB(a.Grad, n.Grad, b.Value) // dA += dOut·Bᵀ
		}
		if b.requiresGrad {
			ensureGrad(b)
			AddMatMulTransposeA(b.Grad, a.Value, n.Grad) // dB += Aᵀ·dOut
		}
	}
	return n
}

// Transpose returns aᵀ.
func (t *Tape) Transpose(a *Node) *Node {
	checkSameTape(t, a)
	av := a.Value
	out := NewMatrix(av.Cols, av.Rows)
	for r := 0; r < av.Rows; r++ {
		for c := 0; c < av.Cols; c++ {
			out.Set(c, r, av.At(r, c))
		}
	}
	n := t.node(out, a.requiresGrad, nil)
	n.back = func() {
		if !a.requiresGrad {
			return
		}
		ensureGrad(a)
		for r := 0; r < out.Rows; r++ {
			for c := 0; c < out.Cols; c++ {
				a.Grad.Data[c*a.Grad.Cols+r] += n.Grad.At(r, c)
			}
		}
	}
	return n
}

// GatherRows selects rows idx[i] of a into row i of the output. Used for
// embedding lookup; gradients scatter-add back into the gathered rows.
// Negative indices produce a zero row with no gradient (the paper's k0
// padding / unknown-key convention).
func (t *Tape) GatherRows(a *Node, idx []int) *Node {
	checkSameTape(t, a)
	out := NewMatrix(len(idx), a.Value.Cols)
	for i, id := range idx {
		if id < 0 {
			continue // zero row
		}
		checkShape(id < a.Value.Rows, "gather index %d out of %d rows", id, a.Value.Rows)
		copy(out.Row(i), a.Value.Row(id))
	}
	n := t.node(out, a.requiresGrad, nil)
	n.back = func() {
		if !a.requiresGrad {
			return
		}
		ensureGrad(a)
		for i, id := range idx {
			if id < 0 {
				continue
			}
			dst := a.Grad.Row(id)
			src := n.Grad.Row(i)
			for j, g := range src {
				dst[j] += g
			}
		}
	}
	return n
}

// ConcatCols concatenates nodes side by side (equal row counts).
func (t *Tape) ConcatCols(parts ...*Node) *Node {
	checkSameTape(t, parts...)
	checkShape(len(parts) > 0, "concat of zero parts")
	rows := parts[0].Value.Rows
	total := 0
	req := false
	for _, p := range parts {
		checkShape(p.Value.Rows == rows, "concat row mismatch %d vs %d", p.Value.Rows, rows)
		total += p.Value.Cols
		req = req || p.requiresGrad
	}
	out := NewMatrix(rows, total)
	off := 0
	for _, p := range parts {
		for r := 0; r < rows; r++ {
			copy(out.Data[r*total+off:r*total+off+p.Value.Cols], p.Value.Row(r))
		}
		off += p.Value.Cols
	}
	n := t.node(out, req, nil)
	n.back = func() {
		off := 0
		for _, p := range parts {
			if p.requiresGrad {
				ensureGrad(p)
				for r := 0; r < rows; r++ {
					dst := p.Grad.Row(r)
					src := n.Grad.Data[r*total+off : r*total+off+p.Value.Cols]
					for j, g := range src {
						dst[j] += g
					}
				}
			}
			off += p.Value.Cols
		}
	}
	return n
}

// SliceCols returns columns [from, to) of a.
func (t *Tape) SliceCols(a *Node, from, to int) *Node {
	checkSameTape(t, a)
	checkShape(0 <= from && from <= to && to <= a.Value.Cols, "slice [%d:%d) of %d cols", from, to, a.Value.Cols)
	rows, width := a.Value.Rows, to-from
	out := NewMatrix(rows, width)
	for r := 0; r < rows; r++ {
		copy(out.Row(r), a.Value.Row(r)[from:to])
	}
	n := t.node(out, a.requiresGrad, nil)
	n.back = func() {
		if !a.requiresGrad {
			return
		}
		ensureGrad(a)
		for r := 0; r < rows; r++ {
			dst := a.Grad.Row(r)[from:to]
			for j, g := range n.Grad.Row(r) {
				dst[j] += g
			}
		}
	}
	return n
}

// SliceRows returns rows [from, to) of a.
func (t *Tape) SliceRows(a *Node, from, to int) *Node {
	checkSameTape(t, a)
	checkShape(0 <= from && from <= to && to <= a.Value.Rows, "slice rows [%d:%d) of %d", from, to, a.Value.Rows)
	rows, cols := to-from, a.Value.Cols
	out := NewMatrix(rows, cols)
	copy(out.Data, a.Value.Data[from*cols:to*cols])
	n := t.node(out, a.requiresGrad, nil)
	n.back = func() {
		if !a.requiresGrad {
			return
		}
		ensureGrad(a)
		dst := a.Grad.Data[from*cols : to*cols]
		for i, g := range n.Grad.Data {
			dst[i] += g
		}
	}
	return n
}
