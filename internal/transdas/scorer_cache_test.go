package transdas

import (
	"math"
	"math/rand"
	"testing"

	"github.com/ucad/ucad/internal/scorecache"
)

// cacheTestContexts builds a deterministic mixed batch of contexts for
// cache round-trip tests.
func cacheTestContexts(rng *rand.Rand, m *Model, n int) [][]int {
	ctxs := make([][]int, n)
	for i := range ctxs {
		ctxs[i] = randomContext(rng, m.cfg.Vocab, 1+rng.Intn(m.cfg.Window))
	}
	return ctxs
}

// TestScoreCacheHitReturnsIdenticalRows: a warm cache must return
// byte-identical similarity rows to the forward pass that populated it,
// and the counters must account for every lookup.
func TestScoreCacheHitReturnsIdenticalRows(t *testing.T) {
	m := trainToy(t)
	c := scorecache.New(256)
	m.SetScoreCache(c)
	rng := rand.New(rand.NewSource(5))
	ctxs := cacheTestContexts(rng, m, 12)

	s := m.NewScorer()
	cold := s.ScoreBatch(ctxs)
	coldCopy := make([][]float64, len(cold))
	for i, row := range cold {
		coldCopy[i] = append([]float64(nil), row...)
	}
	st := c.Stats()
	if st.Hits != 0 || st.Misses != uint64(len(ctxs)) {
		t.Fatalf("cold pass stats = %+v, want 0 hits / %d misses", st, len(ctxs))
	}

	// A different scorer on the same model must hit the shared cache.
	warm := m.NewScorer().ScoreBatch(ctxs)
	for i := range warm {
		for k := range warm[i] {
			if warm[i][k] != coldCopy[i][k] {
				t.Fatalf("ctx %d key %d: cached %v != computed %v", i, k, warm[i][k], coldCopy[i][k])
			}
		}
	}
	st = c.Stats()
	if st.Hits != uint64(len(ctxs)) || st.Misses != uint64(len(ctxs)) {
		t.Fatalf("warm pass stats = %+v, want %d hits / %d misses", st, len(ctxs), len(ctxs))
	}
	if c.Len() == 0 {
		t.Fatal("cache empty after populated pass")
	}
}

// TestScoreCacheMixedHitMissBatch: a batch interleaving cached and
// novel contexts must produce exactly the uncached scores for both
// kinds — exercising the miss-compaction path in ScoreBatchInto.
func TestScoreCacheMixedHitMissBatch(t *testing.T) {
	m := trainToy(t)
	rng := rand.New(rand.NewSource(9))
	all := cacheTestContexts(rng, m, 10)

	// Reference: no cache attached.
	ref := make([][]float64, len(all))
	for i, row := range m.NewScorer().ScoreBatch(all) {
		ref[i] = append([]float64(nil), row...)
	}

	c := scorecache.New(256)
	m.SetScoreCache(c)
	defer m.SetScoreCache(nil)
	// Seed the cache with the even-index contexts only.
	even := make([][]int, 0, len(all)/2)
	for i := 0; i < len(all); i += 2 {
		even = append(even, all[i])
	}
	m.NewScorer().ScoreBatch(even)

	got := m.NewScorer().ScoreBatch(all)
	for i := range all {
		for k := range got[i] {
			if math.Abs(got[i][k]-ref[i][k]) > 1e-12 {
				t.Fatalf("ctx %d key %d: mixed batch %v != reference %v", i, k, got[i][k], ref[i][k])
			}
		}
	}
	st := c.Stats()
	if st.Hits != uint64(len(even)) {
		t.Fatalf("stats = %+v, want %d hits from the seeded contexts", st, len(even))
	}
}

// TestScoreCacheInvalidatedByFineTune: after a fine-tune round the
// cache must never serve pre-tune rows — fresh scores have to match an
// uncached computation on the updated weights.
func TestScoreCacheInvalidatedByFineTune(t *testing.T) {
	m := trainToy(t)
	c := scorecache.New(256)
	m.SetScoreCache(c)
	rng := rand.New(rand.NewSource(13))
	ctxs := cacheTestContexts(rng, m, 8)

	stale := make([][]float64, len(ctxs))
	for i, row := range m.NewScorer().ScoreBatch(ctxs) {
		stale[i] = append([]float64(nil), row...)
	}
	gen := c.Gen()
	m.FineTune(toySessions(10, rng), 3, nil)
	if c.Gen() == gen {
		t.Fatal("FineTune did not bump the attached cache generation")
	}

	got := m.NewScorer().ScoreBatch(ctxs)
	m.SetScoreCache(nil)
	ref := m.NewScorer().ScoreBatch(ctxs)
	changed := false
	for i := range ctxs {
		for k := range got[i] {
			if got[i][k] != ref[i][k] {
				t.Fatalf("ctx %d key %d: post-tune cached path %v != uncached %v", i, k, got[i][k], ref[i][k])
			}
			if math.Abs(got[i][k]-stale[i][k]) > 1e-12 {
				changed = true
			}
		}
	}
	if !changed {
		t.Fatal("fine-tune left every score identical; invalidation check is vacuous")
	}
}

// TestScoreCacheComposesWithFloat32: cache + float32 kernel together
// must return the float32 scores on miss and the same rows on hit.
func TestScoreCacheComposesWithFloat32(t *testing.T) {
	m := trainToy(t)
	rng := rand.New(rand.NewSource(17))
	ctxs := cacheTestContexts(rng, m, 6)

	m.SetScorePrecision(PrecisionFloat32)
	defer m.SetScorePrecision(PrecisionFloat64)
	ref := make([][]float64, len(ctxs))
	for i, row := range m.NewScorer().ScoreBatch(ctxs) {
		ref[i] = append([]float64(nil), row...)
	}

	c := scorecache.New(64)
	m.SetScoreCache(c)
	defer m.SetScoreCache(nil)
	cold := m.NewScorer().ScoreBatch(ctxs)
	for i := range cold {
		for k := range cold[i] {
			if cold[i][k] != ref[i][k] {
				t.Fatalf("ctx %d key %d: cached float32 miss %v != plain float32 %v", i, k, cold[i][k], ref[i][k])
			}
		}
	}
	warm := m.NewScorer().ScoreBatch(ctxs)
	for i := range warm {
		for k := range warm[i] {
			if warm[i][k] != ref[i][k] {
				t.Fatalf("ctx %d key %d: cached float32 hit %v != plain float32 %v", i, k, warm[i][k], ref[i][k])
			}
		}
	}
	if st := c.Stats(); st.Hits != uint64(len(ctxs)) {
		t.Fatalf("stats = %+v, want %d hits on the warm pass", st, len(ctxs))
	}
}

// TestRankBatchUsesCache: the rank path must flow through the same
// cache (RankBatchInto scores via ScoreBatchInto).
func TestRankBatchUsesCache(t *testing.T) {
	m := trainToy(t)
	c := scorecache.New(64)
	m.SetScoreCache(c)
	defer m.SetScoreCache(nil)
	rng := rand.New(rand.NewSource(21))
	ctxs := cacheTestContexts(rng, m, 5)
	keys := make([]int, len(ctxs))
	for i := range keys {
		keys[i] = 1 + rng.Intn(m.cfg.Vocab-1)
	}
	s := m.NewScorer()
	r1 := append([]int(nil), s.RankBatch(ctxs, keys)...)
	r2 := s.RankBatch(ctxs, keys)
	for i := range r1 {
		if r1[i] != r2[i] {
			t.Fatalf("rank %d changed across cached calls: %d vs %d", i, r1[i], r2[i])
		}
	}
	st := c.Stats()
	if st.Hits == 0 || st.Misses != uint64(len(ctxs)) {
		t.Fatalf("stats = %+v, want warm hits and exactly %d misses", st, len(ctxs))
	}
}

// TestScoreBatchWarmCacheAllocFree: with every context cached, the
// batch scoring path must not allocate — rows come from the scorer's
// arena and sims from the cache.
func TestScoreBatchWarmCacheAllocFree(t *testing.T) {
	m := trainToy(t)
	c := scorecache.New(64)
	m.SetScoreCache(c)
	defer m.SetScoreCache(nil)
	rng := rand.New(rand.NewSource(25))
	ctxs := cacheTestContexts(rng, m, 4)
	s := m.NewScorer()
	s.ScoreBatch(ctxs) // populate cache and arena
	avg := testing.AllocsPerRun(50, func() {
		s.ScoreBatch(ctxs)
	})
	if avg > 0 {
		t.Fatalf("warm cached ScoreBatch allocates %.1f times per call, want 0", avg)
	}
}
