package transdas

import (
	"math"
	"math/rand"
	"testing"

	"github.com/ucad/ucad/internal/nn"
)

// batchVariants covers the kernel-relevant configuration axes: the
// paper's default, every mask ablation, and the positional-embedding
// variant.
func batchVariants() map[string]Config {
	base := testConfig()
	full := testConfig()
	full.Mask = nn.MaskFull
	future := testConfig()
	future.Mask = nn.MaskFuture
	pos := testConfig()
	pos.Positional = true
	return map[string]Config{"default": base, "full-mask": full, "future-mask": future, "positional": pos}
}

// randomContext draws a context of the given length whose keys include
// the pad key 0 and out-of-vocabulary keys, exercising the zero-row
// embedding path.
func randomContext(rng *rand.Rand, vocab, length int) []int {
	ctx := make([]int, length)
	for i := range ctx {
		ctx[i] = rng.Intn(vocab+3) - 1 // [-1, vocab+1]
	}
	return ctx
}

// TestScoreBatchMatchesSequential is the batched-vs-sequential
// equivalence property (the PR's acceptance criterion): ScoreBatch over
// N random variable-length contexts must equal N sequential ScoreNext
// calls — and the tape-based reference forward — within 1e-9, including
// an empty context inside a batch, a context longer than Window, and a
// batch of one.
func TestScoreBatchMatchesSequential(t *testing.T) {
	for name, cfg := range batchVariants() {
		t.Run(name, func(t *testing.T) {
			m := New(cfg)
			s := m.NewScorer()
			rng := rand.New(rand.NewSource(99))
			for trial := 0; trial < 15; trial++ {
				var ctxs [][]int
				switch trial {
				case 0: // batch of one
					ctxs = [][]int{randomContext(rng, cfg.Vocab, 4)}
				case 1: // empty context inside a batch
					ctxs = [][]int{randomContext(rng, cfg.Vocab, 3), {}, randomContext(rng, cfg.Vocab, 7)}
				case 2: // context longer than Window
					ctxs = [][]int{randomContext(rng, cfg.Vocab, cfg.Window+9), randomContext(rng, cfg.Vocab, 1)}
				default:
					n := 1 + rng.Intn(8)
					ctxs = make([][]int, n)
					for i := range ctxs {
						ctxs[i] = randomContext(rng, cfg.Vocab, rng.Intn(cfg.Window+4))
					}
				}
				got := s.ScoreBatch(ctxs)
				for b, ctx := range ctxs {
					seq := m.ScoreNext(ctx)
					ref := m.scoreNextTape(nil, ctx)
					for k := range seq {
						if d := math.Abs(got[b][k] - seq[k]); d > 1e-9 {
							t.Fatalf("trial %d ctx %d key %d: batched %g vs sequential %g (diff %g)",
								trial, b, k, got[b][k], seq[k], d)
						}
						if d := math.Abs(got[b][k] - ref[k]); d > 1e-9 {
							t.Fatalf("trial %d ctx %d key %d: batched %g vs tape reference %g (diff %g)",
								trial, b, k, got[b][k], ref[k], d)
						}
					}
				}
			}
		})
	}
}

// TestScorerScratchReuse drives one Scorer through changing batch
// geometries (growing, shrinking, longer and shorter contexts) and
// checks each result against a fresh Scorer: stale scratch contents
// must never leak into a later batch.
func TestScorerScratchReuse(t *testing.T) {
	cfg := testConfig()
	m := New(cfg)
	warm := m.NewScorer()
	rng := rand.New(rand.NewSource(5))
	shapes := []struct{ n, l int }{{8, 3}, {2, 10}, {5, 1}, {1, 7}, {16, 10}, {3, 2}}
	for _, sh := range shapes {
		ctxs := make([][]int, sh.n)
		for i := range ctxs {
			ctxs[i] = randomContext(rng, cfg.Vocab, sh.l)
		}
		got := warm.ScoreBatch(ctxs)
		want := m.NewScorer().ScoreBatch(ctxs)
		for b := range ctxs {
			for k := range want[b] {
				if got[b][k] != want[b][k] {
					t.Fatalf("shape %+v ctx %d key %d: warm %g vs fresh %g", sh, b, k, got[b][k], want[b][k])
				}
			}
		}
	}
}

// TestRankBatchMatchesRankOf pins the batched rank surface to the
// single-item wrapper, including the worst-rank convention for PadKey
// and out-of-vocabulary keys and the rank-1 convention for empty
// contexts.
func TestRankBatchMatchesRankOf(t *testing.T) {
	cfg := testConfig()
	m := New(cfg)
	s := m.NewScorer()
	rng := rand.New(rand.NewSource(17))
	ctxs := [][]int{
		randomContext(rng, cfg.Vocab, 5),
		{},
		randomContext(rng, cfg.Vocab, cfg.Window+3),
		randomContext(rng, cfg.Vocab, 1),
		randomContext(rng, cfg.Vocab, 8),
	}
	keys := []int{3, 2, 0, cfg.Vocab + 5, -1}
	ranks := s.RankBatch(ctxs, keys)
	for b := range ctxs {
		want := m.RankOf(ctxs[b], keys[b])
		if ranks[b] != want {
			t.Fatalf("ctx %d key %d: RankBatch %d vs RankOf %d", b, keys[b], ranks[b], want)
		}
	}
	if ranks[1] != 1 {
		t.Fatalf("empty context rank = %d, want 1", ranks[1])
	}
	if ranks[2] != cfg.Vocab || ranks[3] != cfg.Vocab || ranks[4] != cfg.Vocab {
		t.Fatalf("invalid keys ranked %v, want worst rank %d", ranks[2:], cfg.Vocab)
	}
}

// TestTopKeysIntoMatchesTopKeys checks the buffer-reusing variant
// returns identical keys without allocating once buffers are warm.
func TestTopKeysIntoMatchesTopKeys(t *testing.T) {
	cfg := testConfig()
	m := New(cfg)
	ctx := []int{1, 2, 3, 4}
	want := m.TopKeys(ctx, 5)
	keyBuf := make([]int, 0, cfg.Vocab)
	simBuf := make([]float64, cfg.Vocab)
	got := m.TopKeysInto(keyBuf, simBuf, ctx, 5)
	if len(got) != len(want) {
		t.Fatalf("TopKeysInto returned %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("TopKeysInto[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

// benchModel mirrors the root-level BenchmarkDetectionScore
// configuration (Scenario-II-sized vocabulary and width).
func benchModel() (*Model, []int) {
	cfg := DefaultConfig(600)
	cfg.Hidden, cfg.Heads = 64, 8
	m := New(cfg)
	ctx := make([]int, 30)
	for i := range ctx {
		ctx[i] = 1 + i
	}
	return m, ctx
}

// BenchmarkScoreSequentialTape measures the tape-based per-op reference
// path the batch-first Scorer replaces; compare against the root-level
// BenchmarkScoreBatch to see the fused-batch win.
func BenchmarkScoreSequentialTape(b *testing.B) {
	m, ctx := benchModel()
	buf := make([]float64, m.cfg.Vocab)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.scoreNextTape(buf, ctx)
	}
}
