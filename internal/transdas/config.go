// Package transdas implements the paper's Trans-DAS model (§4): a
// transformer for data-access semantics with an order-free embedding
// layer, a bidirectional-except-self attention mask and a triplet +
// one-class cross-entropy training objective (Eq. 11). It also exposes
// the ablation variants of Table 3 (positional embedding, full/future
// masks, cross-entropy-only objective) through configuration.
package transdas

import (
	"fmt"
	"runtime"

	"github.com/ucad/ucad/internal/nn"
)

// Objective selects the training loss.
type Objective int

const (
	// ObjectiveTripletCE is the paper's Eq. 11: triplet hinge with
	// negative sampling plus one-class cross-entropy plus L2.
	ObjectiveTripletCE Objective = iota
	// ObjectiveCEOnly drops the triplet term (the "Base Transformer" and
	// non-objective variants of Table 3).
	ObjectiveCEOnly
)

// String implements fmt.Stringer.
func (o Objective) String() string {
	switch o {
	case ObjectiveTripletCE:
		return "triplet+ce"
	case ObjectiveCEOnly:
		return "ce-only"
	default:
		return "unknown"
	}
}

// Config holds the Trans-DAS hyper-parameters. Field names follow the
// paper's notation (§6.1).
type Config struct {
	// Vocab is the number of statement keys including the reserved k0.
	Vocab int
	// Hidden is h, the latent dimension of the embedding layer.
	Hidden int
	// Heads is m, the number of attention heads per block.
	Heads int
	// Blocks is B, the number of stacked attention blocks.
	Blocks int
	// Window is L, the input sequence size.
	Window int
	// Margin is g, the triplet-loss margin.
	Margin float64
	// TopP is p: an operation is normal when its similarity rank is
	// within the top p keys (§5.3).
	TopP int

	// Dropout rate inside Eq. 5's regularization.
	Dropout float64
	// LR is the SGD learning rate; Momentum its momentum term.
	LR       float64
	Momentum float64
	// WeightDecay implements Eq. 11's L2 term as decoupled decay.
	WeightDecay float64
	// Epochs is the number of training passes over the session set.
	Epochs int
	// Stride is the sliding-window step when extracting training
	// windows from a session; 0 means 1 (the paper's sliding window).
	// Detection reads the final output position, which attends to pure
	// history; stride 1 ensures every transition trains that
	// configuration. Larger strides trade detection quality for
	// training speed.
	Stride int
	// ClipNorm caps the global gradient norm per step (0 disables).
	ClipNorm float64
	// NegSamples is the number of negative keys drawn per position per
	// step (§5.2 chooses negatives "iteratively"; 0 means 1).
	NegSamples int
	// MinContext is the number of preceding operations required before
	// an operation is judged during detection.
	MinContext int

	// BatchSize is the number of windows per optimizer step: gradients
	// of a mini-batch are summed across windows (and workers) before a
	// single SGD step. ≤0 means 1 — one step per window, the paper's
	// sequential SGD trajectory.
	BatchSize int
	// TrainWorkers is the data-parallel training worker count: windows
	// of each mini-batch are sharded across this many goroutines, each
	// with a private tape, gradient accumulators and negative-sampling
	// RNG stream, and the per-worker gradients are reduced in a fixed
	// param/worker order before the step. ≤0 means GOMAXPROCS. A given
	// (Seed, BatchSize, TrainWorkers) is bit-reproducible across runs;
	// TrainWorkers=1 with BatchSize=1 reproduces the sequential
	// trajectory exactly (it trains on the model's own RNG stream).
	TrainWorkers int

	// Mask selects the attention mask (ablation: §4.3).
	Mask nn.MaskKind
	// Positional enables a learnable position embedding (ablation: the
	// original transformer keeps order information; Trans-DAS removes it).
	Positional bool
	// Objective selects the loss (ablation: §5.2).
	Objective Objective

	// Seed drives all model randomness (init, negative sampling,
	// dropout); same seed + same data = identical model.
	Seed int64
}

// DefaultConfig returns the paper's Scenario-I defaults for a given
// vocabulary size: L=30, p=5, g=0.5, h=10 (rounded up to a multiple of
// heads), m=2, B=6.
func DefaultConfig(vocab int) Config {
	return Config{
		Vocab:       vocab,
		Hidden:      10,
		Heads:       2,
		Blocks:      6,
		Window:      30,
		Margin:      0.5,
		TopP:        5,
		Dropout:     0.1,
		LR:          0.05,
		Momentum:    0.9,
		WeightDecay: 1e-4,
		Epochs:      30,
		ClipNorm:    5,
		NegSamples:  3,
		MinContext:  2,
		Mask:        nn.MaskBidirectionalExceptSelf,
		Positional:  false,
		Objective:   ObjectiveTripletCE,
		Seed:        1,
		// Paper-faithful sequential SGD by default so every experiment
		// reproduction keeps its exact trajectory; opt in to
		// data-parallel training by raising these (or clearing them to
		// ≤0 for GOMAXPROCS workers).
		BatchSize:    1,
		TrainWorkers: 1,
	}
}

// ScenarioIIConfig returns the paper's Scenario-II defaults:
// L=100, p=10, g=0.5, h=64, m=8, B=6.
func ScenarioIIConfig(vocab int) Config {
	c := DefaultConfig(vocab)
	c.Hidden = 64
	c.Heads = 8
	c.Window = 100
	c.TopP = 10
	return c
}

// Validate reports configuration errors before any allocation happens.
func (c Config) Validate() error {
	switch {
	case c.Vocab < 2:
		return fmt.Errorf("transdas: vocab %d must include k0 and at least one key", c.Vocab)
	case c.Hidden <= 0:
		return fmt.Errorf("transdas: hidden dim %d must be positive", c.Hidden)
	case c.Heads <= 0 || c.Hidden%c.Heads != 0:
		return fmt.Errorf("transdas: hidden %d not divisible by heads %d", c.Hidden, c.Heads)
	case c.Blocks <= 0:
		return fmt.Errorf("transdas: blocks %d must be positive", c.Blocks)
	case c.Window < 2:
		return fmt.Errorf("transdas: window %d must be at least 2", c.Window)
	case c.TopP < 1:
		return fmt.Errorf("transdas: top-p %d must be at least 1", c.TopP)
	case c.Margin < 0:
		return fmt.Errorf("transdas: margin %v must be non-negative", c.Margin)
	case c.Dropout < 0 || c.Dropout >= 1:
		return fmt.Errorf("transdas: dropout %v outside [0, 1)", c.Dropout)
	}
	return nil
}

// stride returns the effective sliding-window stride.
func (c Config) stride() int {
	if c.Stride > 0 {
		return c.Stride
	}
	return 1
}

// EffectiveTrainWorkers resolves TrainWorkers: ≤0 means GOMAXPROCS.
// Exported so instrumentation (the ucad_train_workers gauge) reports
// the worker count training actually uses.
func (c Config) EffectiveTrainWorkers() int {
	if c.TrainWorkers > 0 {
		return c.TrainWorkers
	}
	return runtime.GOMAXPROCS(0)
}

// effectiveBatchSize resolves BatchSize: ≤0 means 1.
func (c Config) effectiveBatchSize() int {
	if c.BatchSize > 0 {
		return c.BatchSize
	}
	return 1
}
