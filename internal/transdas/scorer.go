package transdas

import (
	"math"

	"github.com/ucad/ucad/internal/nn"
	"github.com/ucad/ucad/internal/tensor"
)

// Scorer is the batch-first scoring surface of Trans-DAS: it pads a
// micro-batch of variable-length contexts to the batch maximum with the
// PadKey, runs one masked forward pass through stacked matrices, and
// reads out one similarity row per context (Eq. 10).
//
// The kernel is tape-free: it records no autodiff graph and reuses a
// set of scratch matrices across calls, so a warm Scorer performs zero
// heap allocations per batch beyond result rows the caller did not
// provide. Padded positions embed to the zero vector and are excluded
// from attention by an additive -1e9 mask, whose softmax terms
// underflow to exactly 0.0 in float64 — so every context's scores are
// bit-independent of batch composition and padding length, and agree
// with the tape-based reference forward to float64 round-off.
//
// A Scorer is not safe for concurrent use; create one per goroutine
// (they share the model's parameters, which the Scorer reads on every
// call, so a Scorer remains valid across in-place fine-tuning as long
// as scoring and training are externally serialized, e.g. by
// detect.Online's lock).
type Scorer struct {
	m *Model

	// kind mask, cached per padded length: session scans score growing
	// prefixes whose padded length changes chunk to chunk, so a
	// single-length cache would rebuild the mask almost every pass.
	// Bounded by cfg.Window distinct lengths.
	mask  *tensor.Matrix
	masks map[int]*tensor.Matrix

	// Per-pass geometry: kernel slot -> batch index, and each slot's
	// real (truncated) context.
	slots []int
	ctxs  [][]int
	lens  []int

	// Scratch matrices, grown on demand and reused across calls.
	x      *tensor.Matrix // activations, (B·L) x h
	wqkv   *tensor.Matrix // fused projection weights, h x 3h
	qkv    *tensor.Matrix // fused Q|K|V projections, (B·L) x 3h
	att    *tensor.Matrix // concatenated head outputs, (B·L) x h
	sub    *tensor.Matrix // sub-layer output (attention proj / FFN), (B·L) x h
	ffnH   *tensor.Matrix // FFN inner activations, (B·L) x h
	scores []float64      // one L x L attention-score block

	// Compact last-block scratch, one row per sequence (B x h): the
	// read-out consumes only each sequence's final position, so the last
	// block computes queries, FFN and norms for those rows alone.
	attL *tensor.Matrix
	subL *tensor.Matrix
	ffnL *tensor.Matrix
	outL *tensor.Matrix

	// Single-precision scratch, allocated only when the model scores
	// through the float32 kernel (see scorer32.go).
	x32, qkv32, att32, sub32, ffnH32 *tensor.Matrix32
	scores32                         []float32
	attL32, subL32, ffnL32, outL32   *tensor.Matrix32

	// rank scratch and single-item wrapper headers. sims rows are carved
	// from simsSlab — one arena the rank paths reuse call over call, so
	// a warm RankBatch allocates nothing for its similarity rows.
	sims     [][]float64
	simsSlab []float64
	ranks    []int
	oneCtx   [1][]int
	oneOut   [1][]float64
}

// NewScorer returns a Scorer over the model's current parameters.
func (m *Model) NewScorer() *Scorer { return &Scorer{m: m} }

// scorer fetches a pooled Scorer for the single-item wrapper API.
func (m *Model) scorer() *Scorer { return m.scorers.Get().(*Scorer) }

// ScoreBatch scores every context in one batched forward pass and
// returns one cfg.Vocab-length similarity row per context, in order:
// row b holds sim[k] = sigmoid(O_last · M(k)) for context b (Eq. 10),
// with sim[0] (the k0 slot) always 0. Contexts longer than cfg.Window
// are truncated to their most recent Window keys; an empty context
// yields an all-zero row (no contextual intent to compare against).
//
// The returned rows are carved from the Scorer's scratch arena: they
// are valid until the next call on this Scorer. Callers that retain
// rows across calls must use ScoreBatchInto with their own buffers.
func (s *Scorer) ScoreBatch(contexts [][]int) [][]float64 {
	return s.ScoreBatchInto(s.arenaSims(len(contexts)), contexts)
}

// arenaSims sizes s.sims to n rows of cfg.Vocab floats carved from the
// Scorer's flat arena slab, reusing it call over call. Rows handed out
// this way are owned by the Scorer — safe for the rank paths and for
// ScoreBatch, whose results are consumed before the next call; the
// pooled single-item wrappers (ScoreNextInto with a nil buffer) must
// keep allocating because their row outlives the pooled Scorer.
func (s *Scorer) arenaSims(n int) [][]float64 {
	vocab := s.m.cfg.Vocab
	need := n * vocab
	if cap(s.simsSlab) < need {
		s.simsSlab = make([]float64, need)
	}
	slab := s.simsSlab[:need]
	if cap(s.sims) >= n {
		s.sims = s.sims[:n]
	} else {
		s.sims = make([][]float64, n)
	}
	for i := range s.sims {
		s.sims[i] = slab[i*vocab : (i+1)*vocab : (i+1)*vocab]
	}
	return s.sims
}

// ScoreBatchInto is ScoreBatch writing into dst: it reuses dst's
// backing array and any row with capacity >= cfg.Vocab, allocating only
// what is missing, and returns dst resized to len(contexts).
func (s *Scorer) ScoreBatchInto(dst [][]float64, contexts [][]int) [][]float64 {
	vocab := s.m.cfg.Vocab
	if cap(dst) >= len(contexts) {
		dst = dst[:len(contexts)]
	} else {
		dst = append(dst[:0], make([][]float64, len(contexts))...)
	}
	for b := range dst {
		if cap(dst[b]) >= vocab {
			dst[b] = dst[b][:vocab]
			for i := range dst[b] {
				dst[b][i] = 0
			}
		} else {
			dst[b] = make([]float64, vocab)
		}
	}

	// Truncate to the window, drop empty contexts from the kernel (their
	// rows stay all-zero) and find the padded length.
	window := s.m.cfg.Window
	s.slots, s.ctxs, s.lens = s.slots[:0], s.ctxs[:0], s.lens[:0]
	maxLen := 0
	for b, ctx := range contexts {
		if len(ctx) > window {
			ctx = ctx[len(ctx)-window:]
		}
		if len(ctx) == 0 {
			continue
		}
		s.slots = append(s.slots, b)
		s.ctxs = append(s.ctxs, ctx)
		s.lens = append(s.lens, len(ctx))
		if len(ctx) > maxLen {
			maxLen = len(ctx)
		}
	}
	if len(s.slots) == 0 {
		return dst
	}

	// Score-cache lookup: hits copy their memoized row straight into dst
	// and leave the kernel; the remaining misses are compacted in place
	// so the forward pass pads only to the widest *miss*. The generation
	// is captured before scoring — if a weight change lands mid-batch
	// (impossible under detect.Online's lock, but cheap to defend
	// against), the insertions below are stamped already-stale and can
	// never be served.
	cache := s.m.scoreCache.Load()
	var cacheGen uint64
	if cache != nil {
		cacheGen = cache.Gen()
		w := 0
		maxLen = 0
		for i := range s.slots {
			if cache.GetInto(dst[s.slots[i]], s.ctxs[i]) {
				continue
			}
			s.slots[w], s.ctxs[w], s.lens[w] = s.slots[i], s.ctxs[i], s.lens[i]
			if s.lens[w] > maxLen {
				maxLen = s.lens[w]
			}
			w++
		}
		s.slots, s.ctxs, s.lens = s.slots[:w], s.ctxs[:w], s.lens[:w]
		if w == 0 {
			return dst
		}
	}

	// Cache misses run the forward pass — double or single precision
	// per the model's scoring-kernel setting.
	if s.m.prec32.Load() {
		sn := s.m.snapshot32()
		out := s.forward32(sn, maxLen)
		for i, b := range s.slots {
			last := out.Row(i)
			sims := dst[b]
			for k := 1; k < vocab; k++ {
				row := sn.emb.Row(k)
				var dot float32
				for j, v := range last {
					dot += v * row[j]
				}
				sims[k] = 1 / (1 + math.Exp(-float64(dot)))
			}
		}
	} else {
		out := s.forward(maxLen)

		// Eq. 10 read-out: one row per context (forward returns each
		// sequence's last real position, already compacted).
		table := s.m.emb.Table.Value
		for i, b := range s.slots {
			last := out.Row(i)
			sims := dst[b]
			for k := 1; k < vocab; k++ {
				row := table.Row(k)
				var dot float64
				for j, v := range last {
					dot += v * row[j]
				}
				sims[k] = 1 / (1 + math.Exp(-dot))
			}
		}
	}
	if cache != nil {
		for i, b := range s.slots {
			cache.PutGen(s.ctxs[i], dst[b], cacheGen)
		}
	}
	return dst
}

// RankBatch returns, for each (contexts[b], keys[b]) pair, the 1-based
// similarity rank of keys[b] given its context — the batched RankOf. A
// PadKey or out-of-vocabulary key ranks last (Vocab).
func (s *Scorer) RankBatch(contexts [][]int, keys []int) []int {
	return s.RankBatchInto(nil, contexts, keys)
}

// RankBatchInto is RankBatch writing ranks into dst (grown as needed).
// len(keys) must equal len(contexts).
func (s *Scorer) RankBatchInto(dst []int, contexts [][]int, keys []int) []int {
	if len(keys) != len(contexts) {
		panic("transdas: RankBatch contexts and keys length mismatch")
	}
	if cap(dst) >= len(contexts) {
		dst = dst[:len(contexts)]
	} else {
		dst = append(dst[:0], make([]int, len(contexts))...)
	}
	sims := s.ScoreBatchInto(s.arenaSims(len(contexts)), contexts)
	for b, row := range sims {
		dst[b] = rankIn(row, keys[b])
	}
	return dst
}

// rankIn computes the 1-based rank of key within sims (see RankOf).
func rankIn(sims []float64, key int) int {
	if key <= 0 || key >= len(sims) {
		return len(sims)
	}
	target := sims[key]
	rank := 1
	for k := 1; k < len(sims); k++ {
		if k != key && sims[k] > target {
			rank++
		}
	}
	return rank
}

// forward runs the tape-free stacked forward pass over the slotted
// contexts padded to L keys each and returns a compact B x h matrix
// whose row i is the final block's output at sequence i's last real
// position — the only row Eq. 10's read-out consumes.
func (s *Scorer) forward(L int) *tensor.Matrix {
	m := s.m
	h := m.cfg.Hidden
	B := len(s.slots)
	rows := B * L

	s.x = ensureMat(s.x, rows, h)
	s.wqkv = ensureMat(s.wqkv, h, 3*h)
	s.qkv = ensureMat(s.qkv, rows, 3*h)
	s.att = ensureMat(s.att, rows, h)
	s.sub = ensureMat(s.sub, rows, h)
	s.ffnH = ensureMat(s.ffnH, rows, h)
	if cap(s.scores) < L*L {
		s.scores = make([]float64, L*L)
	}
	s.scores = s.scores[:L*L]
	s.mask = s.maskFor(L)

	// Embedding (Eq. 1): PadKey, negative and out-of-vocabulary keys map
	// to the zero vector, exactly as nn.Embedding.Lookup; padded tail
	// positions are zero too.
	table := m.emb.Table.Value
	pad := m.emb.PadKey
	for i, ctx := range s.ctxs {
		for t := 0; t < L; t++ {
			row := s.x.Row(i*L + t)
			if t >= len(ctx) {
				zeroRow(row)
				continue
			}
			key := ctx[t]
			if key == pad || key < 0 || key >= table.Rows {
				zeroRow(row)
			} else {
				copy(row, table.Row(key))
			}
		}
	}
	if m.pos != nil {
		// Positional ablation variant: add position t's embedding to
		// every sequence's row t.
		for i := 0; i < B; i++ {
			for t := 0; t < L; t++ {
				row := s.x.Row(i*L + t)
				for c, p := range m.pos.Value.Row(t) {
					row[c] += p
				}
			}
		}
	}

	for _, blk := range m.blocks[:len(m.blocks)-1] {
		s.attention(blk.att, B, L, false)
		// Eq. 5 around attention: x = LN1(x + MH(x)); dropout is the
		// identity at inference.
		addInPlace(s.x, s.sub)
		layerNormInPlace(s.x, blk.ln1)
		// Eq. 7 FFN, then Eq. 5 again: x = LN2(x + FFN(x)).
		tensor.MatMulInto(s.ffnH, s.x, blk.ffn.L1.W.Value)
		biasReLUInPlace(s.ffnH, blk.ffn.L1.B.Value)
		tensor.MatMulInto(s.sub, s.ffnH, blk.ffn.L2.W.Value)
		addBiasInPlace(s.sub, blk.ffn.L2.B.Value)
		addInPlace(s.x, s.sub)
		layerNormInPlace(s.x, blk.ln2)
	}

	// Last block, compact: every position still contributes keys and
	// values, but only each sequence's last real position is queried,
	// normalized and fed through the FFN — the rest would be discarded
	// by the read-out.
	blk := m.blocks[len(m.blocks)-1]
	s.attL = ensureMat(s.attL, B, h)
	s.subL = ensureMat(s.subL, B, h)
	s.ffnL = ensureMat(s.ffnL, B, h)
	s.outL = ensureMat(s.outL, B, h)
	s.attention(blk.att, B, L, true)
	for i := 0; i < B; i++ {
		lastRow := s.x.Row(i*L + s.lens[i] - 1)
		out := s.outL.Row(i)
		sub := s.subL.Row(i)
		for c := range out {
			out[c] = lastRow[c] + sub[c]
		}
	}
	layerNormInPlace(s.outL, blk.ln1)
	tensor.MatMulInto(s.ffnL, s.outL, blk.ffn.L1.W.Value)
	biasReLUInPlace(s.ffnL, blk.ffn.L1.B.Value)
	tensor.MatMulInto(s.subL, s.ffnL, blk.ffn.L2.W.Value)
	addBiasInPlace(s.subL, blk.ffn.L2.B.Value)
	addInPlace(s.outL, s.subL)
	layerNormInPlace(s.outL, blk.ln2)
	return s.outL
}

// attention computes one masked multi-head attention layer (Eqs. 2–4)
// over the B stacked L-row sequences in s.x, leaving the projected
// output in s.sub. Scores never cross sequence boundaries, and key
// columns beyond a sequence's real length get exactly zero weight.
// With last set, only each sequence's final real position is queried
// (all positions still serve as keys and values) and the projected
// B x h output lands in s.subL instead.
func (s *Scorer) attention(a *nn.MultiHeadAttention, B, L int, last bool) {
	h := a.WQ.Value.Rows
	dk := h / a.Heads
	scale := 1 / math.Sqrt(float64(h))

	// One fused projection pass: Q, K and V share the input, so
	// concatenating their weights column-wise computes all three with a
	// single sweep over the activations. Each output element is the same
	// k-ascending dot product as three separate matmuls.
	for r := 0; r < h; r++ {
		row := s.wqkv.Row(r)
		copy(row[:h], a.WQ.Value.Row(r))
		copy(row[h:2*h], a.WK.Value.Row(r))
		copy(row[2*h:], a.WV.Value.Row(r))
	}
	tensor.MatMulInto(s.qkv, s.x, s.wqkv)
	heads := s.att
	if last {
		heads = s.attL
	}
	heads.Zero()

	for head := 0; head < a.Heads; head++ {
		qlo := head * dk
		klo, vlo := h+qlo, 2*h+qlo
		for b := 0; b < B; b++ {
			base := b * L
			n := s.lens[b]
			// Score block: scaled dot products plus the kind mask, with
			// padded key columns forced to -1e9. Kind-masked pairs skip
			// the dot entirely: their softmax term underflows to zero
			// either way.
			lo := 0
			if last {
				lo = n - 1
			}
			for i := lo; i < n || (!last && i < L); i++ {
				qrow := s.qkv.Row(base + i)[qlo : qlo+dk]
				srow := s.scores[i*L : (i+1)*L]
				mrow := s.mask.Row(i)
				for j := 0; j < n; j++ {
					if mrow[j] != 0 {
						srow[j] = nn.MaskedScore
						continue
					}
					krow := s.qkv.Row(base+j)[klo : klo+dk]
					var dot float64
					for c, qv := range qrow {
						dot += qv * krow[c]
					}
					srow[j] = dot * scale
				}
				for j := n; j < L; j++ {
					srow[j] = nn.MaskedScore
				}
				tensor.SoftmaxInto(srow, srow)
				// Weighted read-out into this head's output stripe; the
				// masked weights are exactly zero and skipped.
				var out []float64
				if last {
					out = heads.Row(b)[qlo : qlo+dk]
				} else {
					out = heads.Row(base + i)[qlo : qlo+dk]
				}
				for j, w := range srow {
					if w == 0 {
						continue
					}
					vrow := s.qkv.Row(base+j)[vlo : vlo+dk]
					for c, vv := range vrow {
						out[c] += w * vv
					}
				}
			}
		}
	}
	if last {
		tensor.MatMulInto(s.subL, heads, a.WO.Value)
	} else {
		tensor.MatMulInto(s.sub, heads, a.WO.Value)
	}
}

// maskFor returns the kind mask for padded length L, built once per
// distinct length and cached: session scans alternate padded lengths
// chunk to chunk, and the masks are pure functions of (kind, L).
func (s *Scorer) maskFor(L int) *tensor.Matrix {
	if m, ok := s.masks[L]; ok {
		return m
	}
	if s.masks == nil {
		s.masks = make(map[int]*tensor.Matrix)
	}
	m := nn.BuildMask(s.m.cfg.Mask, L)
	s.masks[L] = m
	return m
}

// ensureMat resizes m to rows x cols, reusing its backing array when
// large enough. Contents are unspecified; callers overwrite fully.
func ensureMat(m *tensor.Matrix, rows, cols int) *tensor.Matrix {
	need := rows * cols
	if m == nil || cap(m.Data) < need {
		return tensor.NewMatrix(rows, cols)
	}
	m.Data = m.Data[:need]
	m.Rows, m.Cols = rows, cols
	return m
}

func zeroRow(row []float64) {
	for i := range row {
		row[i] = 0
	}
}

// addInPlace accumulates dst += src elementwise.
func addInPlace(dst, src *tensor.Matrix) {
	for i, v := range src.Data {
		dst.Data[i] += v
	}
}

// layerNormInPlace applies Eq. 6 row-wise: x = g ⊙ (x-μ)/√(σ²+ε) + b,
// with the same operation order as the tape path (NormalizeRows, gain,
// bias) so results match to the bit.
func layerNormInPlace(x *tensor.Matrix, ln *nn.LayerNorm) {
	gain, bias := ln.Gain.Value.Data, ln.Bias.Value.Data
	nf := float64(x.Cols)
	for r := 0; r < x.Rows; r++ {
		row := x.Row(r)
		var mu float64
		for _, v := range row {
			mu += v
		}
		mu /= nf
		var va float64
		for _, v := range row {
			d := v - mu
			va += d * d
		}
		va /= nf
		inv := 1 / math.Sqrt(va+ln.Eps)
		for c, v := range row {
			row[c] = (v-mu)*inv*gain[c] + bias[c]
		}
	}
}

// biasReLUInPlace applies x = max(0, x + b) row-wise (Eq. 7's first
// stage after the matmul).
func biasReLUInPlace(x *tensor.Matrix, b *tensor.Matrix) {
	for r := 0; r < x.Rows; r++ {
		row := x.Row(r)
		for c := range row {
			row[c] = math.Max(0, row[c]+b.Data[c])
		}
	}
}

// addBiasInPlace applies x = x + b row-wise.
func addBiasInPlace(x *tensor.Matrix, b *tensor.Matrix) {
	for r := 0; r < x.Rows; r++ {
		row := x.Row(r)
		for c := range row {
			row[c] += b.Data[c]
		}
	}
}
