package transdas

import (
	"encoding/gob"
	"fmt"
	"io"

	"github.com/ucad/ucad/internal/nn"
)

// Save serializes the configuration and all trained parameters.
func (m *Model) Save(w io.Writer) error {
	if err := gob.NewEncoder(w).Encode(m.cfg); err != nil {
		return fmt.Errorf("transdas: encode config: %w", err)
	}
	return nn.SaveParams(w, m.params)
}

// Load reconstructs a model saved by Save.
func Load(r io.Reader) (*Model, error) {
	var cfg Config
	if err := gob.NewDecoder(r).Decode(&cfg); err != nil {
		return nil, fmt.Errorf("transdas: decode config: %w", err)
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	m := New(cfg)
	if err := nn.LoadParams(r, m.params); err != nil {
		return nil, err
	}
	return m, nil
}
