package transdas

import (
	"bufio"
	"encoding/gob"
	"fmt"
	"io"

	"github.com/ucad/ucad/internal/nn"
)

// Save serializes the configuration and all trained parameters.
func (m *Model) Save(w io.Writer) error {
	if err := gob.NewEncoder(w).Encode(m.cfg); err != nil {
		return fmt.Errorf("transdas: encode config: %w", err)
	}
	return nn.SaveParams(w, m.params)
}

// Load reconstructs a model saved by Save.
//
// The stream holds several consecutive gob messages; unless r reads
// byte-exact (implements io.ByteReader), each gob.Decoder would buffer
// past its own messages and misalign the next section, so wrap once.
func Load(r io.Reader) (*Model, error) {
	if _, ok := r.(io.ByteReader); !ok {
		r = bufio.NewReader(r)
	}
	var cfg Config
	if err := gob.NewDecoder(r).Decode(&cfg); err != nil {
		return nil, fmt.Errorf("transdas: decode config: %w", err)
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	m := New(cfg)
	if err := nn.LoadParams(r, m.params); err != nil {
		return nil, err
	}
	return m, nil
}
