package transdas

import (
	"math"
	"math/rand"
	"testing"

	"github.com/ucad/ucad/internal/tensor"
)

// cloneSessions builds a fixed toy corpus for the equivalence suite.
func parallelTestSessions() [][]int {
	return toySessions(12, rand.New(rand.NewSource(21)))
}

// paramsBitEqual reports the first parameter where the two models'
// values differ bit-for-bit ("" when identical).
func paramsBitEqual(a, b *Model) string {
	for i, pa := range a.params {
		pb := b.params[i]
		for j, v := range pa.Value.Data {
			if v != pb.Value.Data[j] {
				return pa.Name
			}
		}
	}
	return ""
}

// TestParallelMatchesSequentialBitExact: the data-parallel engine with
// TrainWorkers=1 and BatchSize=1 must replay the sequential reference
// trajectory bit-for-bit — per-epoch losses and every trained weight —
// so pre-parallel experiment reproductions stay valid.
func TestParallelMatchesSequentialBitExact(t *testing.T) {
	sessions := parallelTestSessions()
	cfg := testConfig()
	cfg.Epochs = 4
	cfg.Dropout = 0.1 // exercise the dropout RNG stream too
	cfg.TrainWorkers = 1
	cfg.BatchSize = 1

	seq := New(cfg)
	seqRes := seq.trainSequential(seq.collectWindows(sessions), cfg.Epochs, cfg.LR, nil)

	par := New(cfg)
	parRes := par.Train(sessions, nil)

	if len(seqRes.EpochLoss) != len(parRes.EpochLoss) {
		t.Fatalf("epoch count %d != %d", len(parRes.EpochLoss), len(seqRes.EpochLoss))
	}
	for e := range seqRes.EpochLoss {
		if seqRes.EpochLoss[e] != parRes.EpochLoss[e] {
			t.Fatalf("epoch %d loss %x != sequential %x", e, parRes.EpochLoss[e], seqRes.EpochLoss[e])
		}
	}
	if name := paramsBitEqual(seq, par); name != "" {
		t.Fatalf("parameter %s diverged from the sequential trajectory", name)
	}
}

// TestParallelTrainingReproducible: a fixed (seed, BatchSize,
// TrainWorkers) must be bit-reproducible across runs — the window
// sharding is positional and every worker has its own seeded RNG
// stream, so goroutine scheduling cannot leak into the result.
func TestParallelTrainingReproducible(t *testing.T) {
	sessions := parallelTestSessions()
	build := func() (*Model, TrainResult) {
		cfg := testConfig()
		cfg.Epochs = 3
		cfg.Dropout = 0.1
		cfg.TrainWorkers = 4
		cfg.BatchSize = 8
		m := New(cfg)
		return m, m.Train(sessions, nil)
	}
	m1, r1 := build()
	m2, r2 := build()
	for e := range r1.EpochLoss {
		if r1.EpochLoss[e] != r2.EpochLoss[e] {
			t.Fatalf("epoch %d loss not reproducible: %x vs %x", e, r1.EpochLoss[e], r2.EpochLoss[e])
		}
	}
	if name := paramsBitEqual(m1, m2); name != "" {
		t.Fatalf("parameter %s not reproducible across runs", name)
	}
}

// TestMiniBatchGradEquivalence: the reduced mini-batch gradient must
// equal the sum of per-window tape gradients. The config pins every
// source of randomness out of the gradients (CE-only objective so the
// unused negative draws cannot matter, zero dropout) and strips decay,
// clipping and momentum with LR=1, so after one single-batch epoch
// reference_param - trained_param IS the reduced gradient.
func TestMiniBatchGradEquivalence(t *testing.T) {
	sessions := parallelTestSessions()
	cfg := testConfig()
	cfg.Objective = ObjectiveCEOnly
	cfg.Dropout = 0
	cfg.WeightDecay = 0
	cfg.ClipNorm = 0
	cfg.Momentum = 0
	cfg.LR = 1
	cfg.Epochs = 1
	cfg.TrainWorkers = 4

	ref := New(cfg)
	windows := ref.collectWindows(sessions)
	cfg.BatchSize = len(windows) // the whole epoch is one mini-batch

	trained := New(cfg)
	trained.Train(sessions, nil)

	// Sum of independent per-window tape gradients on the untouched
	// reference weights (ref and trained start bit-identical).
	var neg []int
	rng := rand.New(rand.NewSource(99))
	for _, w := range windows {
		tp := tensor.NewTape()
		l, _, n := ref.windowLoss(tp, w, true, rng, neg)
		neg = n
		if l == nil {
			continue
		}
		tp.Backward(l)
	}

	for i, p := range ref.params {
		tp := trained.params[i]
		for j, g := range p.Grad.Data {
			got := p.Value.Data[j] - tp.Value.Data[j] // LR=1 step
			if math.Abs(got-g) > 1e-9 {
				t.Fatalf("param %s[%d]: batch grad %v, per-window sum %v", p.Name, j, got, g)
			}
		}
	}
}

// TestDegenerateVocabFallsBackToCE: a two-key vocabulary (k0 plus one
// key) has no negative-sample candidates; the 20-attempt loops would
// silently emit -1 everywhere and train the triplet term against the
// zero embedding. The trainer must fall back to the CE objective and
// still make progress.
func TestDegenerateVocabFallsBackToCE(t *testing.T) {
	cfg := DefaultConfig(2)
	cfg.Hidden = 4
	cfg.Heads = 2
	cfg.Blocks = 1
	cfg.Window = 4
	cfg.Epochs = 2
	cfg.Dropout = 0
	m := New(cfg)
	res := m.Train([][]int{{1, 1, 1, 1, 1}, {1, 1, 1}}, nil)
	if !m.degenerateVocab.Load() {
		t.Fatal("degenerate vocabulary did not trigger the CE-only fallback")
	}
	for e, l := range res.EpochLoss {
		if math.IsNaN(l) || math.IsInf(l, 0) {
			t.Fatalf("epoch %d loss %v not finite", e, l)
		}
	}
}

// TestParallelTrainingRace exercises the data-parallel trainer at four
// workers with concurrent scoring so `make check` (race detector)
// covers the worker barrier, the per-worker gradient sinks and the
// read-only forward sharing of parameter values.
func TestParallelTrainingRace(t *testing.T) {
	cfg := testConfig()
	cfg.Epochs = 2
	cfg.Dropout = 0.1
	cfg.TrainWorkers = 4
	cfg.BatchSize = 4
	m := New(cfg)
	res := m.Train(parallelTestSessions(), nil)
	if len(res.EpochLoss) != cfg.Epochs || res.Windows == 0 {
		t.Fatalf("parallel training did not run: %+v", res)
	}
	for _, l := range res.EpochLoss {
		if math.IsNaN(l) || math.IsInf(l, 0) {
			t.Fatalf("loss %v not finite", l)
		}
	}
}
