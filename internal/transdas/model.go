package transdas

import (
	"math/rand"
	"sync"
	"sync/atomic"

	"github.com/ucad/ucad/internal/nn"
	"github.com/ucad/ucad/internal/scorecache"
	"github.com/ucad/ucad/internal/tensor"
)

// block is one attention block (Fig. 3b): masked multi-head attention
// and a point-wise feed-forward layer, each wrapped in Eq. 5's
// residual + dropout + layer-norm regularization.
type block struct {
	att      *nn.MultiHeadAttention
	ln1, ln2 *nn.LayerNorm
	ffn      *nn.FeedForward
}

func (b *block) forward(tp *tensor.Tape, x *tensor.Node, batch int, mask *tensor.Matrix, dropout float64, train bool, rng *rand.Rand) *tensor.Node {
	x = nn.Residual(tp, b.ln1, x, b.att.ForwardBatch(tp, x, batch, mask), dropout, train, rng)
	x = nn.Residual(tp, b.ln2, x, b.ffn.Forward(tp, x), dropout, train, rng)
	return x
}

func (b *block) params() []*tensor.Param {
	return nn.CollectParams(b.att, b.ln1, b.ln2, b.ffn)
}

// Model is a Trans-DAS instance.
type Model struct {
	cfg    Config
	emb    *nn.Embedding
	pos    *tensor.Param // nil unless cfg.Positional
	blocks []*block
	params []*tensor.Param
	rng    *rand.Rand

	// scorers pools tape-free Scorers for the single-item wrapper API
	// (ScoreNext, RankOf, DetectSession, ...), so concurrent detection
	// reuses warm scratch buffers instead of allocating per call.
	scorers sync.Pool

	// negWarn fires the degenerate-vocabulary warning once per model;
	// degenerateVocab records that it fired (training fell back to the
	// CE-only objective because no negative key exists to sample).
	negWarn         sync.Once
	degenerateVocab atomic.Bool

	// Inference fast-path state (see scorer32.go and scorecache):
	// scoreCache memoizes similarity rows by context (nil = disabled),
	// prec32 selects the float32 scoring kernel, weightGen counts weight
	// mutations (every train/fine-tune round bumps it), and snap32 holds
	// the frozen single-precision weight snapshot for the current
	// generation, rebuilt lazily under snapMu after a weight change.
	scoreCache atomic.Pointer[scorecache.Cache]
	prec32     atomic.Bool
	weightGen  atomic.Uint64
	snap32     atomic.Pointer[snapshot32]
	snapMu     sync.Mutex
}

// New builds a model from the configuration. It panics on an invalid
// configuration; call cfg.Validate first when the values are untrusted.
func New(cfg Config) *Model {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	m := &Model{
		cfg: cfg,
		emb: nn.NewEmbedding("transdas.emb", cfg.Vocab, cfg.Hidden, rng),
		rng: rng,
	}
	if cfg.Positional {
		m.pos = tensor.NewParam("transdas.pos", tensor.NewRandN(cfg.Window, cfg.Hidden, 0.1, rng))
	}
	for i := 0; i < cfg.Blocks; i++ {
		name := "transdas.block" + itoa(i)
		m.blocks = append(m.blocks, &block{
			att: nn.NewMultiHeadAttention(name+".att", cfg.Hidden, cfg.Heads, cfg.Mask, rng),
			ln1: nn.NewLayerNorm(name+".ln1", cfg.Hidden),
			ln2: nn.NewLayerNorm(name+".ln2", cfg.Hidden),
			ffn: nn.NewFeedForward(name+".ffn", cfg.Hidden, cfg.Hidden, rng),
		})
	}
	m.params = m.emb.Params()
	if m.pos != nil {
		m.params = append(m.params, m.pos)
	}
	for _, b := range m.blocks {
		m.params = append(m.params, b.params()...)
	}
	m.scorers.New = func() any { return m.NewScorer() }
	return m
}

// Config returns a copy of the model's configuration.
func (m *Model) Config() Config { return m.cfg }

// SetTrainParallelism overrides the training mini-batch size and
// data-parallel worker count — the serving layer applies its flags to a
// loaded model with this before the first fine-tune (the persisted
// configuration keeps whatever the model was trained with). It must not
// be called concurrently with Train/FineTune.
func (m *Model) SetTrainParallelism(workers, batchSize int) {
	m.cfg.TrainWorkers = workers
	m.cfg.BatchSize = batchSize
}

// Params returns the trainable parameters (implements nn.Module).
func (m *Model) Params() []*tensor.Param { return m.params }

// SetScoreCache attaches (or, with nil, detaches) a similarity-row
// cache consulted by every Scorer before the forward pass. The cache
// must be bumped on every weight change; Train/FineTune do so
// automatically for the attached cache, and detect.Online.SwapModel
// carries the old model's cache (bumped) onto its replacement so the
// lifetime hit/miss counters stay monotonic across hot swaps.
func (m *Model) SetScoreCache(c *scorecache.Cache) { m.scoreCache.Store(c) }

// ScoreCache returns the attached score cache (nil when disabled).
func (m *Model) ScoreCache() *scorecache.Cache { return m.scoreCache.Load() }

// SetScorePrecision selects the scoring kernel: PrecisionFloat64 (the
// default — the training/reference path, exact to 1e-9 against the tape
// forward) or PrecisionFloat32 (the single-precision fast path, within
// 1e-4 of the reference and rank-stable on the paper's workloads).
// Training always runs in float64 regardless of this setting.
func (m *Model) SetScorePrecision(p Precision) { m.prec32.Store(p == PrecisionFloat32) }

// ScorePrecision reports the active scoring kernel precision.
func (m *Model) ScorePrecision() Precision {
	if m.prec32.Load() {
		return PrecisionFloat32
	}
	return PrecisionFloat64
}

// bumpWeightGen records a weight mutation: the float32 snapshot is
// invalidated (rebuilt lazily on the next float32 score) and every
// cached similarity row becomes stale. Called by train() after each
// Train/FineTune round, under whatever lock serializes training against
// scoring (detect.Online's model write-lock in the serving layer).
func (m *Model) bumpWeightGen() {
	m.weightGen.Add(1)
	if c := m.scoreCache.Load(); c != nil {
		c.Bump()
	}
}

// forward runs the stacked attention blocks over a key window of length
// ≤ cfg.Window and returns the L x h output O^(B) (Eqs. 8–9). Dropout
// (train=true only) draws from the model's own RNG stream.
func (m *Model) forward(tp *tensor.Tape, keys []int, train bool) *tensor.Node {
	return m.forwardRNG(tp, keys, train, m.rng)
}

// forwardRNG is forward with an explicit dropout RNG, so data-parallel
// training workers draw from private per-worker streams instead of
// racing on the model's.
func (m *Model) forwardRNG(tp *tensor.Tape, keys []int, train bool, rng *rand.Rand) *tensor.Node {
	return m.forwardBatch(tp, keys, 1, nil, train, rng)
}

// forwardBatch runs the stacked attention blocks over batch key windows
// right-padded to a common length L and concatenated into keys
// (len(keys) == batch·L). lengths gives each window's real length (nil
// means all windows fill L); padded positions carry PadKey and are
// excluded from attention by the padding mask, so row b·L+i of the
// output equals row i of an unbatched forward over window b alone.
func (m *Model) forwardBatch(tp *tensor.Tape, keys []int, batch int, lengths []int, train bool, rng *rand.Rand) *tensor.Node {
	L := len(keys) / batch
	x := m.emb.Lookup(tp, keys)
	if m.pos != nil {
		// Learnable position embedding for the ablation variant; rows
		// align with each window's positions 0..L-1.
		var p *tensor.Node
		if batch == 1 {
			p = tp.SliceRows(tp.Param(m.pos), 0, L)
		} else {
			idx := make([]int, len(keys))
			for i := range idx {
				idx[i] = i % L
			}
			p = tp.GatherRows(tp.Param(m.pos), idx)
		}
		x = tp.Add(x, p)
	}
	mask := nn.BuildBatchMask(m.cfg.Mask, batch, L, lengths)
	for _, b := range m.blocks {
		x = b.forward(tp, x, batch, mask, m.cfg.Dropout, train, rng)
	}
	return x
}

// AttentionWeights runs a forward pass over keys and returns the
// post-softmax attention weights of attention block blockIdx, one
// len(keys) x len(keys) matrix per head. This reproduces the paper's
// Figure 6 introspection. It must not run concurrently with other
// uses of the model (it temporarily enables weight capture).
func (m *Model) AttentionWeights(keys []int, blockIdx int) []*tensor.Matrix {
	if blockIdx < 0 || blockIdx >= len(m.blocks) {
		return nil
	}
	att := m.blocks[blockIdx].att
	att.Capture = true
	defer func() { att.Capture = false }()
	tp := tensor.NewTape()
	m.forward(tp, keys, false)
	return att.LastWeights()
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
