package transdas

import (
	"math"
	"math/rand"
	"testing"
)

// float32Tol is the score tolerance contract of the single-precision
// kernel: every similarity agrees with the float64 reference within
// 1e-4. The float64 kernel itself stays pinned to the tape forward at
// 1e-9 by the property tests — this suite never relaxes those.
const float32Tol = 1e-4

// rankBand computes the [low, high] rank interval consistent with the
// float64 similarities under the tolerance: any kernel whose scores sit
// within tol of the reference must rank key inside this band. Verdict
// checks use the band against TopP, so genuine near-ties at the
// boundary cannot flake the suite while real rank instability fails it.
func rankBand(sims []float64, key int, tol float64) (low, high int) {
	if key <= 0 || key >= len(sims) {
		return len(sims), len(sims)
	}
	target := sims[key]
	low, high = 1, 1
	for k := 1; k < len(sims); k++ {
		if k == key {
			continue
		}
		if sims[k] > target+2*tol {
			low++
		}
		if sims[k] > target-2*tol {
			high++
		}
	}
	return low, high
}

// assertFloat32Equivalence scores every context through both kernels on
// the same model and asserts the tolerance contract, rank stability and
// verdict agreement.
func assertFloat32Equivalence(t *testing.T, m *Model, ctxs [][]int, keys []int) {
	t.Helper()
	if m.ScorePrecision() != PrecisionFloat64 {
		t.Fatal("model must start on the float64 reference path")
	}
	s64 := m.NewScorer()
	ref := make([][]float64, len(ctxs))
	for i := range ref {
		ref[i] = make([]float64, m.cfg.Vocab)
	}
	ref = s64.ScoreBatchInto(ref, ctxs)

	m.SetScorePrecision(PrecisionFloat32)
	defer m.SetScorePrecision(PrecisionFloat64)
	s32 := m.NewScorer()
	got := make([][]float64, len(ctxs))
	for i := range got {
		got[i] = make([]float64, m.cfg.Vocab)
	}
	got = s32.ScoreBatchInto(got, ctxs)
	ranks32 := s32.RankBatch(ctxs, keys)

	for b := range ctxs {
		for k := range ref[b] {
			if d := math.Abs(ref[b][k] - got[b][k]); d > float32Tol {
				t.Fatalf("ctx %d key %d: float64 %.9f vs float32 %.9f (diff %g > %g)",
					b, k, ref[b][k], got[b][k], d, float32Tol)
			}
		}
		low, high := rankBand(ref[b], keys[b], float32Tol)
		if ranks32[b] < low || ranks32[b] > high {
			t.Fatalf("ctx %d key %d: float32 rank %d outside the reference band [%d, %d]",
				b, keys[b], ranks32[b], low, high)
		}
		// Verdict agreement: outside the boundary band the top-p verdict
		// must be identical in both precisions.
		p := m.cfg.TopP
		anom32 := ranks32[b] > p
		if high <= p && anom32 {
			t.Fatalf("ctx %d key %d: float32 flags (rank %d) where float64 cannot (band [%d,%d], p=%d)",
				b, keys[b], ranks32[b], low, high, p)
		}
		if low > p && !anom32 {
			t.Fatalf("ctx %d key %d: float32 passes (rank %d) where float64 cannot (band [%d,%d], p=%d)",
				b, keys[b], ranks32[b], low, high, p)
		}
	}
}

// equivContexts draws a mixed batch: normal role-consistent contexts,
// an empty context, an over-window context and pad/OOV keys to rank.
func equivContexts(rng *rand.Rand, vocab, window, n int) (ctxs [][]int, keys []int) {
	ctxs = make([][]int, n)
	keys = make([]int, n)
	for i := range ctxs {
		switch i {
		case 0:
			ctxs[i] = nil
			keys[i] = 1
		case 1:
			ctxs[i] = randomContext(rng, vocab, window+7)
			keys[i] = 0 // PadKey ranks last in both precisions
		default:
			ctxs[i] = randomContext(rng, vocab, 1+rng.Intn(window))
			keys[i] = 1 + rng.Intn(vocab-1)
		}
	}
	return ctxs, keys
}

// TestFloat32EquivalenceScenarioI runs the equivalence contract on the
// Scenario-I-shaped toy model (h=10-class width, trained role grammar).
func TestFloat32EquivalenceScenarioI(t *testing.T) {
	m := trainToy(t)
	rng := rand.New(rand.NewSource(31))
	ctxs, keys := equivContexts(rng, m.cfg.Vocab, m.cfg.Window, 24)
	// Include genuine role sessions, where the trained structure (and
	// the anomaly verdicts) live.
	for i, s := range toySessions(6, rng) {
		ctxs = append(ctxs, s[:4+i])
		keys = append(keys, s[4+i])
	}
	assertFloat32Equivalence(t, m, ctxs, keys)
}

// TestFloat32EquivalenceScenarioIIShape runs the contract at the
// paper's Scenario-II width (h=64, m=8 heads) where float32 rounding
// has the most room to compound across the deeper dot products.
func TestFloat32EquivalenceScenarioIIShape(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a Scenario-II-width model")
	}
	cfg := DefaultConfig(80)
	cfg.Hidden, cfg.Heads, cfg.Blocks = 64, 8, 2
	cfg.Window, cfg.TopP = 30, 10
	cfg.Epochs = 3
	cfg.Dropout = 0
	cfg.MinContext = 2
	cfg.Seed = 11
	m := New(cfg)
	rng := rand.New(rand.NewSource(23))
	sessions := make([][]int, 40)
	for i := range sessions {
		s := make([]int, 24)
		base := 1 + (i%4)*18
		for j := range s {
			s[j] = base + rng.Intn(18)
		}
		sessions[i] = s
	}
	m.Train(sessions, nil)
	ctxs, keys := equivContexts(rng, cfg.Vocab, cfg.Window, 20)
	for i := 0; i < 6; i++ {
		s := sessions[i*5]
		ctxs = append(ctxs, s[:6+i])
		keys = append(keys, s[6+i])
	}
	assertFloat32Equivalence(t, m, ctxs, keys)
}

// TestFloat32SnapshotTracksFineTune pins the generation machinery: a
// fine-tune round must invalidate the frozen float32 snapshot, so
// float32 scores keep agreeing with the *current* float64 weights, not
// the ones the snapshot was first built from.
func TestFloat32SnapshotTracksFineTune(t *testing.T) {
	m := trainToy(t)
	rng := rand.New(rand.NewSource(41))
	ctx := toySessions(1, rng)[0][:6]

	m.SetScorePrecision(PrecisionFloat32)
	before := append([]float64(nil), m.ScoreNext(ctx)...)

	m.SetScorePrecision(PrecisionFloat64)
	m.FineTune(toySessions(10, rng), 3, nil)
	after64 := append([]float64(nil), m.ScoreNext(ctx)...)

	m.SetScorePrecision(PrecisionFloat32)
	after32 := m.ScoreNext(ctx)
	m.SetScorePrecision(PrecisionFloat64)

	for k := range after64 {
		if d := math.Abs(after64[k] - after32[k]); d > float32Tol {
			t.Fatalf("key %d: post-finetune float32 %.9f vs float64 %.9f (diff %g) — stale snapshot?",
				k, after32[k], after64[k], d)
		}
	}
	// Sanity: the fine-tune actually moved the scores, otherwise the
	// staleness assertion above is vacuous.
	moved := false
	for k := range before {
		if math.Abs(before[k]-after32[k]) > 1e-6 {
			moved = true
			break
		}
	}
	if !moved {
		t.Fatal("fine-tune did not change any score; staleness check is vacuous")
	}
}

// TestParsePrecision covers the flag surface.
func TestParsePrecision(t *testing.T) {
	for _, in := range []string{"", "float64", "f64", "64"} {
		if p, err := ParsePrecision(in); err != nil || p != PrecisionFloat64 {
			t.Fatalf("ParsePrecision(%q) = %v, %v", in, p, err)
		}
	}
	for _, in := range []string{"float32", "f32", "32"} {
		if p, err := ParsePrecision(in); err != nil || p != PrecisionFloat32 {
			t.Fatalf("ParsePrecision(%q) = %v, %v", in, p, err)
		}
	}
	if _, err := ParsePrecision("bf16"); err == nil {
		t.Fatal("unknown precision accepted")
	}
	if PrecisionFloat32.String() != "float32" || PrecisionFloat64.String() != "float64" {
		t.Fatal("Precision.String mismatch")
	}
}
