package transdas

import (
	"math"
	"sort"

	"github.com/ucad/ucad/internal/tensor"
)

// ScoreNext feeds the (up to L most recent) preceding keys through the
// model and returns sim[k] = sigmoid(O_last · M(k)) for every statement
// key (Eq. 10); sim[0] (the k0 slot) is always 0. The returned slice has
// cfg.Vocab entries. An empty context yields all-zero similarities: with
// no preceding operations there is no contextual intent to compare
// against.
func (m *Model) ScoreNext(preceding []int) []float64 {
	return m.ScoreNextInto(nil, preceding)
}

// ScoreNextInto is ScoreNext writing into buf when cap(buf) >= cfg.Vocab,
// allocating only otherwise. Serving hot paths call it in a loop with one
// reused buffer so scoring an operation costs zero heap allocations for
// the similarity vector.
func (m *Model) ScoreNextInto(buf []float64, preceding []int) []float64 {
	var sims []float64
	if cap(buf) >= m.cfg.Vocab {
		sims = buf[:m.cfg.Vocab]
		for i := range sims {
			sims[i] = 0
		}
	} else {
		sims = make([]float64, m.cfg.Vocab)
	}
	if len(preceding) == 0 {
		return sims
	}
	if len(preceding) > m.cfg.Window {
		preceding = preceding[len(preceding)-m.cfg.Window:]
	}
	tp := tensor.NewTape()
	out := m.forward(tp, preceding, false)
	last := out.Value.Row(out.Value.Rows - 1)

	table := m.emb.Table.Value
	for k := 1; k < m.cfg.Vocab; k++ {
		row := table.Row(k)
		var dot float64
		for j, v := range last {
			dot += v * row[j]
		}
		sims[k] = 1 / (1 + math.Exp(-dot))
	}
	return sims
}

// RankOf returns the 1-based similarity rank of key among all keys given
// the preceding context (rank 1 = most similar to the predicted intent).
// A PadKey or out-of-vocabulary key ranks last (Vocab). With an empty
// context every in-vocabulary key ranks 1 (no evidence of anomaly).
func (m *Model) RankOf(preceding []int, key int) int {
	return m.RankOfInto(nil, preceding, key)
}

// RankOfInto is RankOf with a caller-supplied similarity buffer (see
// ScoreNextInto).
func (m *Model) RankOfInto(buf []float64, preceding []int, key int) int {
	sims := m.ScoreNextInto(buf, preceding)
	if key <= 0 || key >= len(sims) {
		return len(sims)
	}
	target := sims[key]
	rank := 1
	for k := 1; k < len(sims); k++ {
		if k != key && sims[k] > target {
			rank++
		}
	}
	return rank
}

// TopKeys returns the p statement keys most similar to the predicted
// contextual intent, in descending similarity order.
func (m *Model) TopKeys(preceding []int, p int) []int {
	sims := m.ScoreNext(preceding)
	keys := make([]int, 0, len(sims)-1)
	for k := 1; k < len(sims); k++ {
		keys = append(keys, k)
	}
	sort.SliceStable(keys, func(i, j int) bool { return sims[keys[i]] > sims[keys[j]] })
	if p > len(keys) {
		p = len(keys)
	}
	return keys[:p]
}

// DetectSession applies the top-p strategy (§5.3) to every operation of
// a session that has at least MinContext preceding operations. It
// returns the indices of operations whose key does not rank within the
// top p (anomalies). Unknown statements (PadKey) are always anomalous.
func (m *Model) DetectSession(keys []int) []int {
	var anomalies []int
	buf := make([]float64, m.cfg.Vocab)
	for t := m.cfg.MinContext; t < len(keys); t++ {
		if m.RankOfInto(buf, keys[:t], keys[t]) > m.cfg.TopP {
			anomalies = append(anomalies, t)
		}
	}
	return anomalies
}

// IsAnomalous reports whether any operation in the session fails the
// top-p test — the session-level flag used for the paper's metrics.
func (m *Model) IsAnomalous(keys []int) bool {
	buf := make([]float64, m.cfg.Vocab)
	for t := m.cfg.MinContext; t < len(keys); t++ {
		if m.RankOfInto(buf, keys[:t], keys[t]) > m.cfg.TopP {
			return true
		}
	}
	return false
}
