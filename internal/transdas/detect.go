package transdas

import (
	"math"
	"sort"

	"github.com/ucad/ucad/internal/tensor"
)

// The single-item API below is a thin wrapper family over the
// batch-first Scorer: every call borrows a pooled Scorer and runs a
// batch of one. Callers scoring more than one context at a time should
// hold a Scorer and use ScoreBatch / RankBatch directly — one stacked
// forward pass amortizes far better than a loop over these wrappers.

// detectChunk bounds how many contexts a session scan stacks into one
// forward pass: large enough to amortize the pass, small enough to keep
// the padded (chunk·Window) x Hidden scratch modest.
const detectChunk = 32

// ScoreNext feeds the (up to L most recent) preceding keys through the
// model and returns sim[k] = sigmoid(O_last · M(k)) for every statement
// key (Eq. 10); sim[0] (the k0 slot) is always 0. The returned slice has
// cfg.Vocab entries. An empty context yields all-zero similarities: with
// no preceding operations there is no contextual intent to compare
// against. It is a batch-of-one wrapper over Scorer.ScoreBatch.
func (m *Model) ScoreNext(preceding []int) []float64 {
	return m.ScoreNextInto(nil, preceding)
}

// ScoreNextInto is ScoreNext writing into buf when cap(buf) >= cfg.Vocab,
// allocating only otherwise. Serving hot paths call it in a loop with one
// reused buffer so scoring an operation costs zero heap allocations for
// the similarity vector.
func (m *Model) ScoreNextInto(buf []float64, preceding []int) []float64 {
	s := m.scorer()
	s.oneCtx[0] = preceding
	s.oneOut[0] = buf
	out := s.ScoreBatchInto(s.oneOut[:1], s.oneCtx[:1])[0]
	s.oneCtx[0], s.oneOut[0] = nil, nil
	m.scorers.Put(s)
	return out
}

// scoreNextTape is the tape-based reference implementation of
// ScoreNext: it builds a fresh autodiff graph per call, exactly as
// training does. The property tests pin the Scorer kernel to this path,
// and the in-package benchmark measures the per-op cost the batch-first
// API replaces.
func (m *Model) scoreNextTape(buf []float64, preceding []int) []float64 {
	var sims []float64
	if cap(buf) >= m.cfg.Vocab {
		sims = buf[:m.cfg.Vocab]
		for i := range sims {
			sims[i] = 0
		}
	} else {
		sims = make([]float64, m.cfg.Vocab)
	}
	if len(preceding) == 0 {
		return sims
	}
	if len(preceding) > m.cfg.Window {
		preceding = preceding[len(preceding)-m.cfg.Window:]
	}
	tp := tensor.NewTape()
	out := m.forward(tp, preceding, false)
	last := out.Value.Row(out.Value.Rows - 1)

	table := m.emb.Table.Value
	for k := 1; k < m.cfg.Vocab; k++ {
		row := table.Row(k)
		var dot float64
		for j, v := range last {
			dot += v * row[j]
		}
		sims[k] = 1 / (1 + math.Exp(-dot))
	}
	return sims
}

// RankOf returns the 1-based similarity rank of key among all keys given
// the preceding context (rank 1 = most similar to the predicted intent).
// A PadKey or out-of-vocabulary key ranks last (Vocab). With an empty
// context every in-vocabulary key ranks 1 (no evidence of anomaly). It
// is a batch-of-one wrapper over Scorer.RankBatch.
func (m *Model) RankOf(preceding []int, key int) int {
	return m.RankOfInto(nil, preceding, key)
}

// RankOfInto is RankOf with a caller-supplied similarity buffer (see
// ScoreNextInto).
func (m *Model) RankOfInto(buf []float64, preceding []int, key int) int {
	return rankIn(m.ScoreNextInto(buf, preceding), key)
}

// TopKeys returns the p statement keys most similar to the predicted
// contextual intent, in descending similarity order.
func (m *Model) TopKeys(preceding []int, p int) []int {
	return m.TopKeysInto(nil, nil, preceding, p)
}

// TopKeysInto is TopKeys with caller-reusable buffers: simBuf backs the
// similarity vector (see ScoreNextInto) and keyBuf the returned key
// slice, so a scan loop allocates nothing once both are warm.
func (m *Model) TopKeysInto(keyBuf []int, simBuf []float64, preceding []int, p int) []int {
	sims := m.ScoreNextInto(simBuf, preceding)
	keys := keyBuf[:0]
	for k := 1; k < len(sims); k++ {
		keys = append(keys, k)
	}
	sort.SliceStable(keys, func(i, j int) bool { return sims[keys[i]] > sims[keys[j]] })
	if p > len(keys) {
		p = len(keys)
	}
	return keys[:p]
}

// DetectSession applies the top-p strategy (§5.3) to every operation of
// a session that has at least MinContext preceding operations. It
// returns the indices of operations whose key does not rank within the
// top p (anomalies). Unknown statements (PadKey) are always anomalous.
// The scan is internally batched: growing context prefixes are scored
// in chunks of one stacked forward pass each.
func (m *Model) DetectSession(keys []int) []int {
	var anomalies []int
	m.scanSession(keys, func(t int) bool {
		anomalies = append(anomalies, t)
		return true
	})
	return anomalies
}

// IsAnomalous reports whether any operation in the session fails the
// top-p test — the session-level flag used for the paper's metrics. It
// stops at the first failing chunk instead of scanning the whole
// session.
func (m *Model) IsAnomalous(keys []int) bool {
	anomalous := false
	m.scanSession(keys, func(int) bool {
		anomalous = true
		return false
	})
	return anomalous
}

// scanSession runs the top-p test over every scorable position of a
// session in detectChunk-sized batches, invoking onAnomaly with each
// failing position. Returning false from onAnomaly stops the scan.
func (m *Model) scanSession(keys []int, onAnomaly func(t int) bool) {
	if len(keys) <= m.cfg.MinContext {
		return
	}
	s := m.scorer()
	defer m.scorers.Put(s)
	ctxs := make([][]int, 0, detectChunk)
	targets := make([]int, 0, detectChunk)
	for t0 := m.cfg.MinContext; t0 < len(keys); t0 += detectChunk {
		hi := min(t0+detectChunk, len(keys))
		ctxs, targets = ctxs[:0], targets[:0]
		for t := t0; t < hi; t++ {
			ctxs = append(ctxs, keys[:t])
			targets = append(targets, keys[t])
		}
		s.ranks = s.RankBatchInto(s.ranks, ctxs, targets)
		for i, r := range s.ranks {
			if r > m.cfg.TopP && !onAnomaly(t0+i) {
				return
			}
		}
	}
}
