package transdas

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"github.com/ucad/ucad/internal/nn"
)

func testConfig() Config {
	cfg := DefaultConfig(14)
	cfg.Hidden = 8
	cfg.Heads = 2
	cfg.Blocks = 2
	cfg.Window = 10
	cfg.TopP = 6
	cfg.Epochs = 25
	cfg.Dropout = 0
	cfg.MinContext = 2
	return cfg
}

// toySessions mimics the paper's heterogeneous access patterns with two
// user roles: type-A sessions interleave tasks over keys 1–6, type-B
// sessions tasks over keys 7–12. Key 13 never appears during training.
// An anomaly is a key from the *other* role injected mid-session — in
// isolation a perfectly normal statement, exactly the stealthy case the
// paper targets.
func toySessions(n int, rng *rand.Rand) [][]int {
	tasksA := [][]int{{1, 2, 3}, {4, 5, 6}, {1, 5}}
	tasksB := [][]int{{7, 8}, {9, 10, 11}, {12, 7}}
	var out [][]int
	for i := 0; i < n; i++ {
		tasks := tasksA
		if i%2 == 1 {
			tasks = tasksB
		}
		var s []int
		for len(s) < 14 {
			s = append(s, tasks[rng.Intn(len(tasks))]...)
		}
		out = append(out, s)
	}
	return out
}

// injectForeign inserts a key from the other role family at position
// pos of session i (type alternates with index parity).
func injectForeign(s []int, i, pos int) []int {
	inj := 9
	if i%2 == 1 {
		inj = 4
	}
	out := append([]int(nil), s[:pos]...)
	out = append(out, inj)
	return append(out, s[pos:]...)
}

func trainToy(t *testing.T) *Model {
	t.Helper()
	m := New(testConfig())
	rng := rand.New(rand.NewSource(7))
	res := m.Train(toySessions(40, rng), nil)
	first, last := res.EpochLoss[0], res.EpochLoss[len(res.EpochLoss)-1]
	if last >= first {
		t.Fatalf("training loss did not decrease: %v -> %v", first, last)
	}
	return m
}

func TestExtractWindows(t *testing.T) {
	keys := []int{1, 2, 3, 4, 5, 6, 7, 8}
	ws := extractWindows(keys, 3, 1)
	// One window per transition: ends at t = 0..6.
	if len(ws) != 7 {
		t.Fatalf("got %d windows, want 7", len(ws))
	}
	// First window is the length-1 prefix [1] with target [2].
	if len(ws[0].keys) != 1 || ws[0].keys[0] != 1 || ws[0].targets[0] != 2 {
		t.Fatalf("window 0 = %+v", ws[0])
	}
	// A full window ending at t=4: input [3 4 5], targets [4 5 6].
	w4 := ws[4]
	if len(w4.keys) != 3 || w4.keys[0] != 3 || w4.keys[2] != 5 {
		t.Fatalf("window 4 keys %v", w4.keys)
	}
	if w4.targets[0] != 4 || w4.targets[2] != 6 {
		t.Fatalf("window 4 targets %v", w4.targets)
	}
	// Every transition appears exactly once as a final-position target.
	finals := map[int]int{}
	for _, w := range ws {
		finals[w.targets[len(w.targets)-1]]++
	}
	for k := 2; k <= 8; k++ {
		if finals[k] != 1 {
			t.Fatalf("final target %d covered %d times: %v", k, finals[k], finals)
		}
	}
	// Stride skips window ends.
	if got := len(extractWindows(keys, 3, 3)); got != 3 {
		t.Fatalf("stride-3 windows = %d, want 3", got)
	}
}

func TestExtractWindowsShortSession(t *testing.T) {
	if ws := extractWindows([]int{1}, 5, 5); ws != nil {
		t.Fatalf("singleton session should give no windows, got %v", ws)
	}
	ws := extractWindows([]int{1, 2}, 5, 5)
	if len(ws) != 1 || len(ws[0].keys) != 1 || ws[0].targets[0] != 2 {
		t.Fatalf("windows = %+v", ws)
	}
}

func TestConfigValidate(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.Vocab = 1 },
		func(c *Config) { c.Hidden = 0 },
		func(c *Config) { c.Heads = 3 }, // 8 % 3 != 0
		func(c *Config) { c.Blocks = 0 },
		func(c *Config) { c.Window = 1 },
		func(c *Config) { c.TopP = 0 },
		func(c *Config) { c.Margin = -1 },
		func(c *Config) { c.Dropout = 1 },
	}
	for i, mutate := range bad {
		cfg := testConfig()
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
	if err := testConfig().Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
}

func TestTrainAndDetectToyGrammar(t *testing.T) {
	m := trainToy(t)
	rng := rand.New(rand.NewSource(99))

	normalFlags, abnormalFlags := 0, 0
	const trials = 20
	normals := toySessions(trials, rng)
	for i, normal := range normals {
		if m.IsAnomalous(normal) {
			normalFlags++
		}
		// Credential-stealing style anomaly: a statement that is normal
		// for the other role, injected mid-session.
		pos := 4 + rng.Intn(len(normal)-5)
		if m.IsAnomalous(injectForeign(normal, i, pos)) {
			abnormalFlags++
		}
	}
	if normalFlags > trials/4 {
		t.Errorf("false positives: %d/%d normal sessions flagged", normalFlags, trials)
	}
	if abnormalFlags < trials*3/4 {
		t.Errorf("false negatives: only %d/%d abnormal sessions flagged", abnormalFlags, trials)
	}
}

func TestDetectSessionReportsPositions(t *testing.T) {
	m := trainToy(t)
	// Family-B key 9 injected at position 5 of a type-A session.
	s := []int{1, 2, 3, 4, 5, 9, 6, 1, 2, 3}
	anoms := m.DetectSession(s)
	found := false
	for _, idx := range anoms {
		if idx == 5 {
			found = true
		}
	}
	if !found {
		t.Fatalf("expected anomaly at index 5, got %v", anoms)
	}
}

func TestUnknownStatementIsAnomalous(t *testing.T) {
	m := trainToy(t)
	// PadKey (0) models a statement template never seen in training.
	s := []int{1, 2, 3, 0, 1, 2, 3}
	if !m.IsAnomalous(s) {
		t.Fatal("session containing an unknown statement must be flagged")
	}
	if rank := m.RankOf([]int{1, 2}, 0); rank != m.cfg.Vocab {
		t.Fatalf("PadKey rank = %d, want worst rank %d", rank, m.cfg.Vocab)
	}
}

func TestScoreNextShapeAndRange(t *testing.T) {
	m := New(testConfig())
	sims := m.ScoreNext([]int{1, 2, 3})
	if len(sims) != m.cfg.Vocab {
		t.Fatalf("len(sims) = %d, want %d", len(sims), m.cfg.Vocab)
	}
	if sims[0] != 0 {
		t.Fatal("k0 similarity must be 0")
	}
	for _, s := range sims[1:] {
		if s <= 0 || s >= 1 {
			t.Fatalf("similarity %v outside (0,1)", s)
		}
	}
}

func TestScoreNextTruncatesLongContext(t *testing.T) {
	m := New(testConfig())
	long := make([]int, 50)
	for i := range long {
		long[i] = 1 + i%5
	}
	short := long[len(long)-m.cfg.Window:]
	a := m.ScoreNext(long)
	b := m.ScoreNext(short)
	for k := range a {
		if math.Abs(a[k]-b[k]) > 1e-12 {
			t.Fatal("context beyond the window must be ignored")
		}
	}
}

func TestTopKeysOrderedAndRankConsistent(t *testing.T) {
	m := trainToy(t)
	ctx := []int{1, 2, 3, 4}
	sims := m.ScoreNext(ctx)
	top := m.TopKeys(ctx, 3)
	if len(top) != 3 {
		t.Fatalf("TopKeys returned %d keys", len(top))
	}
	for i := 1; i < len(top); i++ {
		if sims[top[i-1]] < sims[top[i]] {
			t.Fatal("TopKeys not in descending similarity order")
		}
	}
	if r := m.RankOf(ctx, top[0]); r != 1 {
		t.Fatalf("best key rank = %d, want 1", r)
	}
}

func TestDeterministicTraining(t *testing.T) {
	build := func() []float64 {
		m := New(testConfig())
		rng := rand.New(rand.NewSource(7))
		m.Train(toySessions(10, rng), nil)
		return m.ScoreNext([]int{1, 2, 3})
	}
	a, b := build(), build()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed must give identical models")
		}
	}
}

func TestSaveLoadPreservesScores(t *testing.T) {
	m := trainToy(t)
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	ctx := []int{1, 2, 3, 4, 5}
	a, b := m.ScoreNext(ctx), loaded.ScoreNext(ctx)
	for i := range a {
		if math.Abs(a[i]-b[i]) > 1e-12 {
			t.Fatal("loaded model scores differ")
		}
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("junk"))); err == nil {
		t.Fatal("expected decode error")
	}
}

func TestFineTuneAdaptsToNewPattern(t *testing.T) {
	m := trainToy(t)
	// A new normal statement (key 13) appears after deployment
	// (concept drift) inside type-A sessions.
	driftRng := rand.New(rand.NewSource(5))
	var drift [][]int
	for i := 0; i < 30; i++ {
		s := toySessions(1, driftRng)[0]
		s = append(s, 13, 13, 13, 13)
		drift = append(drift, s)
	}
	// Judge the drifted key in a context shaped like the drifted
	// sessions: a type-A prefix followed by the new statement.
	ctx := append(toySessions(1, rand.New(rand.NewSource(11)))[0], 13, 13)
	beforeRank := m.RankOf(ctx, 13)
	beforeSim := m.ScoreNext(ctx)[13]
	m.FineTune(drift, 15, nil)
	afterRank := m.RankOf(ctx, 13)
	afterSim := m.ScoreNext(ctx)[13]
	if afterRank > beforeRank {
		t.Fatalf("fine-tuning should not worsen the drifted key's rank: %d -> %d", beforeRank, afterRank)
	}
	// The drifted key must join the high-similarity block of plausible
	// next operations (the family now has 7 members, so its rank can be
	// at most 7 but its similarity must be near the top of the block).
	if afterSim < 0.9 {
		t.Fatalf("drifted key similarity %v -> %v; expected > 0.9 after fine-tune", beforeSim, afterSim)
	}
}

func TestVariantsConstruct(t *testing.T) {
	for _, v := range []struct {
		name string
		mut  func(*Config)
	}{
		{"base", func(c *Config) { c.Positional = true; c.Mask = nn.MaskFuture; c.Objective = ObjectiveCEOnly }},
		{"embedding", func(c *Config) { c.Mask = nn.MaskFuture; c.Objective = ObjectiveCEOnly }},
		{"masking", func(c *Config) { c.Positional = true; c.Objective = ObjectiveCEOnly }},
		{"objective", func(c *Config) { c.Positional = true; c.Mask = nn.MaskFuture }},
		{"full-attention", func(c *Config) { c.Mask = nn.MaskFull }},
	} {
		cfg := testConfig()
		cfg.Epochs = 2
		v.mut(&cfg)
		m := New(cfg)
		rng := rand.New(rand.NewSource(1))
		res := m.Train(toySessions(5, rng), nil)
		if res.Windows == 0 {
			t.Errorf("%s: no training windows", v.name)
		}
		if m.IsAnomalous([]int{1, 2, 3}) {
			// Not asserting detection quality here, just that the
			// variant runs end to end.
			_ = v
		}
	}
}

func TestAttentionWeightsShape(t *testing.T) {
	m := New(testConfig())
	ws := m.AttentionWeights([]int{1, 2, 3, 4}, 0)
	if len(ws) != m.cfg.Heads {
		t.Fatalf("got %d head matrices, want %d", len(ws), m.cfg.Heads)
	}
	if ws[0].Rows != 4 || ws[0].Cols != 4 {
		t.Fatalf("weights shape %dx%d, want 4x4", ws[0].Rows, ws[0].Cols)
	}
	if m.AttentionWeights([]int{1, 2}, 99) != nil {
		t.Fatal("out-of-range block index must return nil")
	}
}

func TestProgressCallback(t *testing.T) {
	cfg := testConfig()
	cfg.Epochs = 3
	m := New(cfg)
	rng := rand.New(rand.NewSource(2))
	calls := 0
	m.Train(toySessions(3, rng), func(epoch int, loss float64) { calls++ })
	if calls != 3 {
		t.Fatalf("progress called %d times, want 3", calls)
	}
}
