package transdas

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

// propModel is a tiny untrained model shared by the property tests;
// the invariants below must hold regardless of training state.
func propModel() *Model {
	cfg := testConfig()
	cfg.Epochs = 1
	return New(cfg)
}

func randKeys(raw []uint8, vocab int) []int {
	keys := make([]int, 0, len(raw))
	for _, r := range raw {
		keys = append(keys, int(r)%vocab) // includes PadKey 0
	}
	return keys
}

// Property: similarities are probabilities and k0 scores zero.
func TestScoreNextBounds(t *testing.T) {
	m := propModel()
	f := func(raw []uint8) bool {
		keys := randKeys(raw, m.cfg.Vocab)
		if len(keys) == 0 {
			keys = []int{1}
		}
		sims := m.ScoreNext(keys)
		if len(sims) != m.cfg.Vocab || sims[0] != 0 {
			return false
		}
		for _, s := range sims[1:] {
			if s <= 0 || s >= 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: RankOf is consistent with ScoreNext's ordering and ranks
// form a permutation prefix (1..V-1 for valid keys).
func TestRankOfConsistency(t *testing.T) {
	m := propModel()
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(10)
		ctx := make([]int, n)
		for i := range ctx {
			ctx[i] = 1 + rng.Intn(m.cfg.Vocab-1)
		}
		sims := m.ScoreNext(ctx)
		type kv struct {
			k int
			s float64
		}
		var all []kv
		for k := 1; k < len(sims); k++ {
			all = append(all, kv{k, sims[k]})
		}
		sort.SliceStable(all, func(i, j int) bool { return all[i].s > all[j].s })
		for want, item := range all {
			got := m.RankOf(ctx, item.k)
			// Ties may permute ranks; the similarity at the reported
			// rank position must match.
			if got != want+1 && sims[item.k] != all[got-1].s {
				t.Fatalf("rank of key %d = %d, expected %d (sim %v)", item.k, got, want+1, item.s)
			}
		}
	}
}

// Property: DetectSession reports sorted in-range indices, never before
// MinContext, and IsAnomalous agrees with it.
func TestDetectSessionIndexInvariants(t *testing.T) {
	m := propModel()
	f := func(raw []uint8) bool {
		keys := randKeys(raw, m.cfg.Vocab)
		anoms := m.DetectSession(keys)
		for i, idx := range anoms {
			if idx < m.cfg.MinContext || idx >= len(keys) {
				return false
			}
			if i > 0 && anoms[i-1] >= idx {
				return false
			}
		}
		return m.IsAnomalous(keys) == (len(anoms) > 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: extractWindows covers every transition as a final-position
// target exactly once at stride 1, windows never exceed L, and inputs
// are always contiguous subsequences ending right before their final
// target.
func TestExtractWindowsProperties(t *testing.T) {
	f := func(raw []uint8, l8 uint8) bool {
		keys := randKeys(raw, 50)
		L := 2 + int(l8)%12
		ws := extractWindows(keys, L, 1)
		if len(keys) < 2 {
			return ws == nil
		}
		if len(ws) != len(keys)-1 {
			return false
		}
		for t, w := range ws {
			if len(w.keys) > L || len(w.keys) != len(w.targets) {
				return false
			}
			// Window t ends at position t with final target keys[t+1].
			if w.keys[len(w.keys)-1] != keys[t] || w.targets[len(w.targets)-1] != keys[t+1] {
				return false
			}
			for j, tk := range w.targets {
				start := t - len(w.keys) + 1
				if keys[start+j] != w.keys[j] || keys[start+j+1] != tk {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: training on arbitrary (valid-key) sessions never panics and
// always returns as many epoch losses as configured.
func TestTrainTotal(t *testing.T) {
	f := func(raw [][]uint8) bool {
		cfg := testConfig()
		cfg.Epochs = 1
		m := New(cfg)
		var sessions [][]int
		for _, r := range raw {
			if len(r) > 16 {
				r = r[:16]
			}
			sessions = append(sessions, randKeys(r, cfg.Vocab))
		}
		res := m.Train(sessions, nil)
		return len(res.EpochLoss) <= cfg.Epochs
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// Property: negative samples never collide with the target and are
// valid keys (or -1 for no-target positions).
func TestSampleNegativesInvariant(t *testing.T) {
	m := propModel()
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(12)
		keys := make([]int, n)
		for i := range keys {
			keys[i] = 1 + rng.Intn(m.cfg.Vocab-1)
		}
		for _, w := range extractWindows(keys, m.cfg.Window, 1) {
			neg := m.sampleNegativesInto(nil, w, m.rng)
			for i, nk := range neg {
				if w.targets[i] < 0 {
					if nk != -1 {
						t.Fatal("no-target position must have no negative")
					}
					continue
				}
				if nk == w.targets[i] {
					t.Fatal("negative equals target")
				}
				if nk < -1 || nk == 0 || nk >= m.cfg.Vocab {
					t.Fatalf("invalid negative %d", nk)
				}
			}
		}
	}
}

// Detection must be safe for concurrent use: ScoreNext and
// DetectSession are read-only after training.
func TestConcurrentDetection(t *testing.T) {
	m := trainToy(t)
	sessions := toySessions(8, rand.New(rand.NewSource(17)))
	done := make(chan bool, 4)
	for w := 0; w < 4; w++ {
		go func(w int) {
			ok := true
			for i := 0; i < 10; i++ {
				s := sessions[(w+i)%len(sessions)]
				m.ScoreNext(s[:3])
				m.DetectSession(s)
			}
			done <- ok
		}(w)
	}
	for w := 0; w < 4; w++ {
		if !<-done {
			t.Fatal("concurrent detection failed")
		}
	}
}
