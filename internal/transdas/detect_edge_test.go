package transdas

import (
	"math/rand"
	"testing"
)

// Edge cases of the detection API: empty preceding context, p beyond the
// vocabulary, out-of-vocabulary keys and sessions shorter than
// MinContext. These are the inputs a live serving layer feeds the model
// before a session has accumulated history.

func TestScoreNextEmptyContext(t *testing.T) {
	m := New(testConfig())
	sims := m.ScoreNext(nil)
	if len(sims) != m.cfg.Vocab {
		t.Fatalf("sims length = %d, want %d", len(sims), m.cfg.Vocab)
	}
	for k, s := range sims {
		if s != 0 {
			t.Fatalf("sim[%d] = %v, want 0 for empty context", k, s)
		}
	}
}

func TestRankOfEmptyContext(t *testing.T) {
	m := New(testConfig())
	if got := m.RankOf(nil, 1); got != 1 {
		t.Fatalf("in-vocab key with empty context ranks %d, want 1", got)
	}
	if got := m.RankOf([]int{}, m.cfg.Vocab-1); got != 1 {
		t.Fatalf("in-vocab key with empty context ranks %d, want 1", got)
	}
}

func TestRankOfOutOfVocabulary(t *testing.T) {
	m := trainToy(t)
	ctx := []int{1, 2, 3}
	for _, key := range []int{0, -3, m.cfg.Vocab, m.cfg.Vocab + 7} {
		if got := m.RankOf(ctx, key); got != m.cfg.Vocab {
			t.Fatalf("RankOf(ctx, %d) = %d, want last rank %d", key, got, m.cfg.Vocab)
		}
	}
}

func TestTopKeysPBeyondVocab(t *testing.T) {
	m := trainToy(t)
	ctx := []int{1, 2, 3}
	keys := m.TopKeys(ctx, m.cfg.Vocab+10)
	// All valid statement keys, each exactly once.
	if len(keys) != m.cfg.Vocab-1 {
		t.Fatalf("got %d keys, want all %d", len(keys), m.cfg.Vocab-1)
	}
	seen := make(map[int]bool)
	for _, k := range keys {
		if k < 1 || k >= m.cfg.Vocab || seen[k] {
			t.Fatalf("invalid or duplicate key %d in %v", k, keys)
		}
		seen[k] = true
	}
}

func TestDetectSessionShorterThanMinContext(t *testing.T) {
	m := New(testConfig()) // MinContext = 2
	for _, keys := range [][]int{nil, {}, {1}, {1, 2}} {
		if got := m.DetectSession(keys); len(got) != 0 {
			t.Fatalf("DetectSession(%v) = %v, want none", keys, got)
		}
	}
	if m.IsAnomalous([]int{1}) {
		t.Fatal("single-op session must not be anomalous")
	}
}

func TestDetectSessionZeroMinContext(t *testing.T) {
	cfg := testConfig()
	cfg.MinContext = 0
	m := New(cfg)
	// The first operation is judged against an empty context; it must
	// not panic, and an in-vocabulary first key ranks 1 (never flagged).
	if got := m.DetectSession([]int{1, 2}); len(got) > 2 {
		t.Fatalf("unexpected positions %v", got)
	}
	// An out-of-vocabulary first key still flags position 0.
	got := m.DetectSession([]int{0, 1})
	if len(got) == 0 || got[0] != 0 {
		t.Fatalf("OOV first op not flagged: %v", got)
	}
}

func TestScoreNextIntoReusesBuffer(t *testing.T) {
	m := trainToy(t)
	rng := rand.New(rand.NewSource(3))
	buf := make([]float64, m.cfg.Vocab)
	for trial := 0; trial < 5; trial++ {
		ctx := make([]int, 3+rng.Intn(6))
		for i := range ctx {
			ctx[i] = 1 + rng.Intn(m.cfg.Vocab-1)
		}
		want := m.ScoreNext(ctx)
		got := m.ScoreNextInto(buf, ctx)
		if &got[0] != &buf[0] {
			t.Fatal("ScoreNextInto did not reuse the supplied buffer")
		}
		for k := range want {
			if got[k] != want[k] {
				t.Fatalf("trial %d: sim[%d] = %v via buffer, %v allocating", trial, k, got[k], want[k])
			}
		}
		if m.RankOfInto(buf, ctx, 1) != m.RankOf(ctx, 1) {
			t.Fatal("RankOfInto disagrees with RankOf")
		}
	}
	// A too-small buffer must still work (allocating path).
	small := make([]float64, 1)
	if got := m.ScoreNextInto(small, []int{1, 2}); len(got) != m.cfg.Vocab {
		t.Fatalf("small-buffer path returned %d sims", len(got))
	}
}
