package transdas

import (
	"fmt"
	"math"

	"github.com/ucad/ucad/internal/tensor"
)

// Precision selects the scoring kernel data type. Training and the
// property-tested reference path are always float64; float32 is an
// opt-in inference fast path that halves the memory traffic of the
// scoring matmuls and, on amd64, runs them four lanes per instruction
// through packed-SSE kernels the scalar float64 path cannot use.
type Precision int

const (
	// PrecisionFloat64 scores through the double-precision kernel — the
	// reference path, pinned to the tape forward within 1e-9.
	PrecisionFloat64 Precision = iota
	// PrecisionFloat32 scores through the single-precision kernel built
	// from a frozen weight snapshot; scores agree with the reference
	// within 1e-4 and verdicts/ranks are stable on the paper's
	// workloads (see the float32 equivalence suite).
	PrecisionFloat32
)

// String implements fmt.Stringer.
func (p Precision) String() string {
	if p == PrecisionFloat32 {
		return "float32"
	}
	return "float64"
}

// ParsePrecision parses a -score-precision flag value. The empty
// string means the float64 default.
func ParsePrecision(s string) (Precision, error) {
	switch s {
	case "", "float64", "f64", "64":
		return PrecisionFloat64, nil
	case "float32", "f32", "32":
		return PrecisionFloat32, nil
	}
	return PrecisionFloat64, fmt.Errorf("transdas: unknown score precision %q (want float64 or float32)", s)
}

// snapshot32 is a frozen single-precision copy of the model weights,
// converted once per weight generation (checkpoint load, fine-tune
// round, hot swap) and shared read-only by every Scorer. Freezing the
// conversion keeps the per-batch cost at zero and precomputes the
// fused Q|K|V projection concat that the float64 path re-copies on
// every attention call.
type snapshot32 struct {
	gen uint64
	// emb doubles as the Eq. 1 embedding table and the Eq. 10 read-out
	// table.
	emb    *tensor.Matrix32
	pos    *tensor.Matrix32 // nil unless cfg.Positional
	blocks []snapBlock32
}

// snapBlock32 is one attention block's converted weights.
type snapBlock32 struct {
	wqkv *tensor.Matrix32 // h x 3h fused Q|K|V projection
	wo   *tensor.Matrix32
	ln1g, ln1b, ln2g, ln2b []float32
	ln1eps, ln2eps         float64
	w1                     *tensor.Matrix32
	b1                     []float32
	w2                     *tensor.Matrix32
	b2                     []float32
}

// snapshot32 returns the single-precision weight snapshot for the
// current weight generation, rebuilding it at most once per generation
// (double-checked under snapMu). Safe for concurrent scorers; callers
// must externally serialize against weight mutation exactly as float64
// scoring already is.
func (m *Model) snapshot32() *snapshot32 {
	gen := m.weightGen.Load()
	if s := m.snap32.Load(); s != nil && s.gen == gen {
		return s
	}
	m.snapMu.Lock()
	defer m.snapMu.Unlock()
	gen = m.weightGen.Load()
	if s := m.snap32.Load(); s != nil && s.gen == gen {
		return s
	}
	s := m.buildSnapshot32(gen)
	m.snap32.Store(s)
	return s
}

// buildSnapshot32 converts the current weights. Caller holds snapMu.
func (m *Model) buildSnapshot32(gen uint64) *snapshot32 {
	h := m.cfg.Hidden
	s := &snapshot32{gen: gen, emb: tensor.Matrix32From(m.emb.Table.Value)}
	if m.pos != nil {
		s.pos = tensor.Matrix32From(m.pos.Value)
	}
	s.blocks = make([]snapBlock32, len(m.blocks))
	for i, blk := range m.blocks {
		b := &s.blocks[i]
		b.wqkv = tensor.NewMatrix32(h, 3*h)
		wq, wk, wv := blk.att.WQ.Value, blk.att.WK.Value, blk.att.WV.Value
		for r := 0; r < h; r++ {
			row := b.wqkv.Row(r)
			for c, v := range wq.Row(r) {
				row[c] = float32(v)
			}
			for c, v := range wk.Row(r) {
				row[h+c] = float32(v)
			}
			for c, v := range wv.Row(r) {
				row[2*h+c] = float32(v)
			}
		}
		b.wo = tensor.Matrix32From(blk.att.WO.Value)
		b.ln1g = rowTo32(blk.ln1.Gain.Value.Data)
		b.ln1b = rowTo32(blk.ln1.Bias.Value.Data)
		b.ln1eps = blk.ln1.Eps
		b.ln2g = rowTo32(blk.ln2.Gain.Value.Data)
		b.ln2b = rowTo32(blk.ln2.Bias.Value.Data)
		b.ln2eps = blk.ln2.Eps
		b.w1 = tensor.Matrix32From(blk.ffn.L1.W.Value)
		b.b1 = rowTo32(blk.ffn.L1.B.Value.Data)
		b.w2 = tensor.Matrix32From(blk.ffn.L2.W.Value)
		b.b2 = rowTo32(blk.ffn.L2.B.Value.Data)
	}
	return s
}

func rowTo32(src []float64) []float32 {
	out := make([]float32, len(src))
	for i, v := range src {
		out[i] = float32(v)
	}
	return out
}

// forward32 is forward in single precision: the same tape-free stacked
// pass over the slotted contexts, reading the frozen snapshot instead
// of the live float64 weights, with the identical operation order —
// padded positions still embed to zero and masked softmax terms still
// underflow to exactly 0, so batch composition cannot perturb scores
// in either precision.
func (s *Scorer) forward32(sn *snapshot32, L int) *tensor.Matrix32 {
	m := s.m
	h := m.cfg.Hidden
	B := len(s.slots)
	rows := B * L

	s.x32 = ensureMat32(s.x32, rows, h)
	s.qkv32 = ensureMat32(s.qkv32, rows, 3*h)
	s.att32 = ensureMat32(s.att32, rows, h)
	s.sub32 = ensureMat32(s.sub32, rows, h)
	s.ffnH32 = ensureMat32(s.ffnH32, rows, h)
	if cap(s.scores32) < L*L {
		s.scores32 = make([]float32, L*L)
	}
	s.scores32 = s.scores32[:L*L]
	s.mask = s.maskFor(L)

	// Embedding (Eq. 1), zero rows for pad/OOV and padded tails.
	table := sn.emb
	pad := m.emb.PadKey
	for i, ctx := range s.ctxs {
		for t := 0; t < L; t++ {
			row := s.x32.Row(i*L + t)
			if t >= len(ctx) {
				zeroRow32(row)
				continue
			}
			key := ctx[t]
			if key == pad || key < 0 || key >= table.Rows {
				zeroRow32(row)
			} else {
				copy(row, table.Row(key))
			}
		}
	}
	if sn.pos != nil {
		for i := 0; i < B; i++ {
			for t := 0; t < L; t++ {
				row := s.x32.Row(i*L + t)
				for c, p := range sn.pos.Row(t) {
					row[c] += p
				}
			}
		}
	}

	for bi := 0; bi < len(sn.blocks)-1; bi++ {
		blk := &sn.blocks[bi]
		s.attention32(blk, B, L, false)
		add32InPlace(s.x32, s.sub32)
		layerNorm32InPlace(s.x32, blk.ln1g, blk.ln1b, blk.ln1eps)
		tensor.MatMulInto32(s.ffnH32, s.x32, blk.w1)
		biasReLU32InPlace(s.ffnH32, blk.b1)
		tensor.MatMulInto32(s.sub32, s.ffnH32, blk.w2)
		addBias32InPlace(s.sub32, blk.b2)
		add32InPlace(s.x32, s.sub32)
		layerNorm32InPlace(s.x32, blk.ln2g, blk.ln2b, blk.ln2eps)
	}

	// Compact last block (see forward): only each sequence's final real
	// position is queried, normalized and fed through the FFN.
	blk := &sn.blocks[len(sn.blocks)-1]
	s.attL32 = ensureMat32(s.attL32, B, h)
	s.subL32 = ensureMat32(s.subL32, B, h)
	s.ffnL32 = ensureMat32(s.ffnL32, B, h)
	s.outL32 = ensureMat32(s.outL32, B, h)
	s.attention32(blk, B, L, true)
	for i := 0; i < B; i++ {
		lastRow := s.x32.Row(i*L + s.lens[i] - 1)
		out := s.outL32.Row(i)
		sub := s.subL32.Row(i)
		for c := range out {
			out[c] = lastRow[c] + sub[c]
		}
	}
	layerNorm32InPlace(s.outL32, blk.ln1g, blk.ln1b, blk.ln1eps)
	tensor.MatMulInto32(s.ffnL32, s.outL32, blk.w1)
	biasReLU32InPlace(s.ffnL32, blk.b1)
	tensor.MatMulInto32(s.subL32, s.ffnL32, blk.w2)
	addBias32InPlace(s.subL32, blk.b2)
	add32InPlace(s.outL32, s.subL32)
	layerNorm32InPlace(s.outL32, blk.ln2g, blk.ln2b, blk.ln2eps)
	return s.outL32
}

// attention32 is attention in single precision, reading the snapshot's
// precomputed fused Q|K|V weights. The kind mask is shared with the
// float64 path (it is only consulted as zero/nonzero).
func (s *Scorer) attention32(blk *snapBlock32, B, L int, last bool) {
	h := blk.wo.Rows
	heads := s.m.cfg.Heads
	dk := h / heads
	scale := float32(1 / math.Sqrt(float64(h)))

	tensor.MatMulInto32(s.qkv32, s.x32, blk.wqkv)
	out2 := s.att32
	if last {
		out2 = s.attL32
	}
	out2.Zero()

	// dk=8 is the paper model's head width (h=64, m=8); it gets the
	// packed per-row score and value-mix kernels, other widths the
	// scalar loops.
	cols := s.qkv32.Cols
	fast := dk == 8
	for head := 0; head < heads; head++ {
		qlo := head * dk
		klo, vlo := h+qlo, 2*h+qlo
		for b := 0; b < B; b++ {
			base := b * L
			n := s.lens[b]
			lo := 0
			if last {
				lo = n - 1
			}
			for i := lo; i < n || (!last && i < L); i++ {
				qrow := s.qkv32.Row(base + i)[qlo : qlo+dk]
				srow := s.scores32[i*L : (i+1)*L]
				mrow := s.mask.Row(i)
				if fast {
					tensor.QKScores8(srow[:n], qrow, s.qkv32.Data[base*cols+klo:], cols)
					for j := 0; j < n; j++ {
						if mrow[j] != 0 {
							srow[j] = maskedScore32
						} else {
							srow[j] *= scale
						}
					}
				} else {
					for j := 0; j < n; j++ {
						if mrow[j] != 0 {
							srow[j] = maskedScore32
							continue
						}
						krow := s.qkv32.Row(base+j)[klo : klo+dk]
						var dot float32
						for c, qv := range qrow {
							dot += qv * krow[c]
						}
						srow[j] = dot * scale
					}
				}
				for j := n; j < L; j++ {
					srow[j] = maskedScore32
				}
				softmax32Into(srow)
				var out []float32
				if last {
					out = out2.Row(b)[qlo : qlo+dk]
				} else {
					out = out2.Row(base + i)[qlo : qlo+dk]
				}
				if fast {
					// Weights past n are exactly 0 after the masked
					// softmax; srow[:n] drops them up front.
					tensor.AttnV8(out, srow[:n], s.qkv32.Data[base*cols+vlo:], cols)
				} else {
					for j, w := range srow {
						if w == 0 {
							continue
						}
						vrow := s.qkv32.Row(base+j)[vlo : vlo+dk]
						for c, vv := range vrow {
							out[c] += w * vv
						}
					}
				}
			}
		}
	}
	if last {
		tensor.MatMulInto32(s.subL32, out2, blk.wo)
	} else {
		tensor.MatMulInto32(s.sub32, out2, blk.wo)
	}
}

// maskedScore32 is nn.MaskedScore in float32: exp(-1e9 - max)
// underflows to exactly 0 in this precision too.
const maskedScore32 = float32(-1e9)

// softmax32Into normalizes srow in place with the max-subtraction
// trick; the exponential runs in float64 (one libm call either way)
// so masked terms underflow to exactly 0 as in the reference kernel.
func softmax32Into(srow []float32) {
	maxv := float32(math.Inf(-1))
	for _, x := range srow {
		if x > maxv {
			maxv = x
		}
	}
	var sum float32
	for i, x := range srow {
		e := float32(math.Exp(float64(x - maxv)))
		srow[i] = e
		sum += e
	}
	inv := 1 / sum
	for i := range srow {
		srow[i] *= inv
	}
}

// ensureMat32 resizes m to rows x cols, reusing its backing array when
// large enough. Contents are unspecified; callers overwrite fully.
func ensureMat32(m *tensor.Matrix32, rows, cols int) *tensor.Matrix32 {
	need := rows * cols
	if m == nil || cap(m.Data) < need {
		return tensor.NewMatrix32(rows, cols)
	}
	m.Data = m.Data[:need]
	m.Rows, m.Cols = rows, cols
	return m
}

func zeroRow32(row []float32) {
	for i := range row {
		row[i] = 0
	}
}

// add32InPlace accumulates dst += src elementwise.
func add32InPlace(dst, src *tensor.Matrix32) {
	for i, v := range src.Data {
		dst.Data[i] += v
	}
}

// layerNorm32InPlace applies Eq. 6 row-wise with float64 mean/variance
// accumulation (the reductions are where float32 error would compound;
// the O(h) cost is negligible next to the matmuls).
func layerNorm32InPlace(x *tensor.Matrix32, gain, bias []float32, eps float64) {
	nf := float64(x.Cols)
	for r := 0; r < x.Rows; r++ {
		row := x.Row(r)
		var mu float64
		for _, v := range row {
			mu += float64(v)
		}
		mu /= nf
		var va float64
		for _, v := range row {
			d := float64(v) - mu
			va += d * d
		}
		va /= nf
		inv := float32(1 / math.Sqrt(va+eps))
		mu32 := float32(mu)
		for c, v := range row {
			row[c] = (v-mu32)*inv*gain[c] + bias[c]
		}
	}
}

// biasReLU32InPlace applies x = max(0, x + b) row-wise.
func biasReLU32InPlace(x *tensor.Matrix32, b []float32) {
	for r := 0; r < x.Rows; r++ {
		row := x.Row(r)
		for c := range row {
			v := row[c] + b[c]
			if v < 0 {
				v = 0
			}
			row[c] = v
		}
	}
}

// addBias32InPlace applies x = x + b row-wise.
func addBias32InPlace(x *tensor.Matrix32, b []float32) {
	for r := 0; r < x.Rows; r++ {
		row := x.Row(r)
		for c := range row {
			row[c] += b[c]
		}
	}
}
