package transdas

import (
	"log"
	"math/rand"

	"github.com/ucad/ucad/internal/nn"
	"github.com/ucad/ucad/internal/tensor"
)

// window is one training example extracted by the sliding window
// (§5.2): keys are the inputs, targets the forward-shifted desired
// outputs (-1 marks positions with no target).
type window struct {
	keys    []int
	targets []int
	// sessionKeys is the set of keys appearing in the source session;
	// negative samples are drawn from its complement (§5.2's negative
	// sampling rule). All windows of one session share the same set.
	sessionKeys map[int]bool
}

// extractWindows slices a session's key sequence into training windows:
// for the window ending at position t, the input is (x_{t-L+1}, …, x_t)
// and the desired output its forward shift (x_{t-L+2}, …, x_{t+1})
// (§5.2). The window end slides over every transition (step = stride),
// so each next-operation prediction is trained in the same
// pure-history configuration that online detection reads from the
// final output position. Early windows are shorter than L.
//
// The window count is known up front, so the slice and one flat target
// buffer are allocated exactly once; keys are sub-slices of the session
// and every window shares the single per-session key set.
func extractWindows(keys []int, L, stride int) []window {
	if len(keys) < 2 {
		return nil
	}
	set := make(map[int]bool, len(keys))
	for _, k := range keys {
		set[k] = true
	}
	n := ((len(keys) - 2) / stride) + 1 // window ends t = 0, stride, … < len-1
	out := make([]window, 0, n)
	flatLen := 0
	for t := 0; t < len(keys)-1; t += stride {
		start := t - L + 1
		if start < 0 {
			start = 0
		}
		flatLen += t + 1 - start
	}
	flat := make([]int, 0, flatLen)
	for t := 0; t < len(keys)-1; t += stride {
		start := t - L + 1
		if start < 0 {
			start = 0
		}
		in := keys[start : t+1]
		from := len(flat)
		flat = append(flat, keys[start+1:t+2]...)
		out = append(out, window{keys: in, targets: flat[from:len(flat):len(flat)], sessionKeys: set})
	}
	return out
}

// sampleNegativesInto draws, for each position, a key that never appears
// in the session (falling back to any non-target key when the session
// covers nearly the whole vocabulary), writing into dst (grown as
// needed) and returning it. Draws come from rng so each data-parallel
// worker samples from its own deterministic stream.
func (m *Model) sampleNegativesInto(dst []int, w window, rng *rand.Rand) []int {
	if cap(dst) < len(w.targets) {
		dst = make([]int, len(w.targets))
	}
	neg := dst[:len(w.targets)]
	vocab := m.cfg.Vocab
	for i, tgt := range w.targets {
		if tgt < 0 {
			neg[i] = -1
			continue
		}
		neg[i] = -1
		for attempt := 0; attempt < 20; attempt++ {
			k := 1 + rng.Intn(vocab-1)
			if !w.sessionKeys[k] {
				neg[i] = k
				break
			}
		}
		if neg[i] < 0 { // dense session: any key except the target
			for attempt := 0; attempt < 20; attempt++ {
				k := 1 + rng.Intn(vocab-1)
				if k != tgt {
					neg[i] = k
					break
				}
			}
		}
	}
	return neg
}

// windowLoss builds Eq. 11 for one window on the tape:
//
//	Σ_i max(z_i^- - z_i^+ + g, 0) - log(z_i^+)
//
// averaged over valid positions. z_i^± = sigmoid(O_i · M(x_±)) (Eq. 10).
// The ‖θ‖₂ term is applied as decoupled weight decay in the SGD step.
//
// rng drives dropout and negative sampling (the caller's worker
// stream); negBuf is an optional reusable negative-sample buffer,
// returned (possibly grown) for the next call.
func (m *Model) windowLoss(tp *tensor.Tape, w window, train bool, rng *rand.Rand, negBuf []int) (*tensor.Node, int, []int) {
	out := m.forwardRNG(tp, w.keys, train, rng)

	// A vocabulary of k0 plus one key cannot yield a negative sample:
	// the 20-attempt loops would emit -1 for every position and the
	// triplet term would train against the constant zero embedding.
	// Fall back to the one-class CE objective for such windows.
	useTriplet := m.cfg.Objective == ObjectiveTripletCE
	if useTriplet && m.cfg.Vocab <= 2 {
		useTriplet = false
		m.warnDegenerateVocab()
	} else {
		// One round of negatives is drawn here regardless of objective
		// (the CE-only ablation consumes but ignores it), preserving the
		// exact RNG order of the pre-parallel trainer.
		negBuf = m.sampleNegativesInto(negBuf, w, rng)
	}

	valid := 0
	maskData := make([]float64, len(w.targets))
	for i, tgt := range w.targets {
		if tgt > 0 { // skip no-target and PadKey targets
			maskData[i] = 1
			valid++
		}
	}
	if valid == 0 {
		return nil, 0, negBuf
	}
	mask := tp.Const(tensor.FromSlice(len(w.targets), 1, maskData))

	table := tp.Param(m.emb.Table)
	posEmb := tp.GatherRows(table, clampIdx(w.targets, m.cfg.Vocab))
	zpos := tp.Sigmoid(tp.RowDot(out, posEmb))

	ce := tp.Scale(tp.Log(zpos), -1)
	perPos := ce
	if useTriplet {
		negRounds := m.cfg.NegSamples
		if negRounds <= 0 {
			negRounds = 1
		}
		for r := 0; r < negRounds; r++ {
			if r > 0 {
				negBuf = m.sampleNegativesInto(negBuf, w, rng)
			}
			negEmb := tp.GatherRows(table, clampIdx(negBuf, m.cfg.Vocab))
			zneg := tp.Sigmoid(tp.RowDot(out, negEmb))
			hinge := tp.ReLU(tp.AddScalar(tp.Sub(zneg, zpos), m.cfg.Margin))
			perPos = tp.Add(perPos, tp.Scale(hinge, 1/float64(negRounds)))
		}
	}
	loss := tp.Scale(tp.Sum(tp.Mul(perPos, mask)), 1/float64(valid))
	return loss, valid, negBuf
}

// warnDegenerateVocab records (once per model, with a log line) that the
// triplet objective was disabled because the vocabulary has no key to
// sample negatives from.
func (m *Model) warnDegenerateVocab() {
	m.negWarn.Do(func() {
		m.degenerateVocab.Store(true)
		log.Printf("transdas: vocab %d has no negative-sample candidates; training with the CE-only objective", m.cfg.Vocab)
	})
}

// clampIdx maps invalid or padding keys to -1 so GatherRows yields a
// zero (gradient-free) row for them. It must copy: GatherRows retains
// the index slice for the backward pass, while the caller's buffer is
// reused across sampling rounds.
func clampIdx(keys []int, vocab int) []int {
	out := make([]int, len(keys))
	for i, k := range keys {
		if k <= 0 || k >= vocab {
			out[i] = -1
		} else {
			out[i] = k
		}
	}
	return out
}

// TrainResult summarizes one training run.
type TrainResult struct {
	// EpochLoss is the mean per-position loss of each epoch.
	EpochLoss []float64
	// Windows is the number of training windows per epoch.
	Windows int
}

// Train fits the model on normal sessions (each a statement-key
// sequence) for cfg.Epochs epochs of SGD, shuffling windows each epoch.
// With cfg.BatchSize/cfg.TrainWorkers raised it trains data-parallel:
// each mini-batch's windows are sharded across workers and their
// gradients reduced into one SGD step (see train_parallel.go).
// progress, if non-nil, is called after every epoch.
func (m *Model) Train(sessions [][]int, progress func(epoch int, loss float64)) TrainResult {
	return m.train(sessions, m.cfg.Epochs, m.cfg.LR, progress)
}

// FineTune continues training on newly verified normal sessions at half
// the base learning rate — the paper's concept-drift strategy (§5.2):
// the model keeps its historical knowledge and absorbs the new normal
// patterns without retraining from scratch. progress, if non-nil, is
// called after every epoch (training instrumentation).
func (m *Model) FineTune(sessions [][]int, epochs int, progress func(epoch int, loss float64)) TrainResult {
	return m.train(sessions, epochs, m.cfg.LR*0.5, progress)
}

func (m *Model) train(sessions [][]int, epochs int, lr float64, progress func(int, float64)) TrainResult {
	windows := m.collectWindows(sessions)
	res := m.trainWindows(windows, epochs, lr, progress)
	// The weights changed (or conservatively may have): advance the
	// generation so the float32 snapshot rebuilds and every cached
	// similarity row goes stale. The serving layer holds the model
	// write-lock across this call, so no concurrent scorer can observe
	// half-updated weights under the old generation.
	m.bumpWeightGen()
	return res
}

// collectWindows extracts and concatenates the training windows of all
// sessions, sized exactly up front.
func (m *Model) collectWindows(sessions [][]int) []window {
	var windows []window
	for _, s := range sessions {
		ws := extractWindows(s, m.cfg.Window, m.cfg.stride())
		if windows == nil && len(ws) > 0 {
			windows = make([]window, 0, len(ws)*len(sessions))
		}
		windows = append(windows, ws...)
	}
	return windows
}

// trainSequential is the pre-parallel reference trajectory: one window,
// one tape, one SGD step, all randomness from the model's own stream.
// The data-parallel trainer with TrainWorkers=1 and BatchSize=1 is
// bit-identical to it (asserted by the equivalence tests); it is kept
// as the executable specification the tests compare against.
func (m *Model) trainSequential(windows []window, epochs int, lr float64, progress func(int, float64)) TrainResult {
	res := TrainResult{Windows: len(windows)}
	if len(windows) == 0 {
		return res
	}
	opt := nn.NewSGD(lr, m.cfg.Momentum)
	order := make([]int, len(windows))
	for i := range order {
		order[i] = i
	}
	var negBuf []int
	for epoch := 0; epoch < epochs; epoch++ {
		m.rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		var total float64
		var count int
		for _, wi := range order {
			tp := tensor.NewTape()
			var loss *tensor.Node
			var valid int
			loss, valid, negBuf = m.windowLoss(tp, windows[wi], true, m.rng, negBuf)
			if loss == nil {
				continue
			}
			tp.Backward(loss)
			m.applyStep(opt)
			total += loss.Value.Data[0] * float64(valid)
			count += valid
		}
		mean := 0.0
		if count > 0 {
			mean = total / float64(count)
		}
		res.EpochLoss = append(res.EpochLoss, mean)
		if progress != nil {
			progress(epoch, mean)
		}
	}
	return res
}

// applyStep finishes one optimizer step from the gradients accumulated
// in m.params: decoupled weight decay, global-norm clipping, SGD update.
func (m *Model) applyStep(opt *nn.SGD) {
	if m.cfg.WeightDecay > 0 {
		for _, p := range m.params {
			for i, v := range p.Value.Data {
				p.Grad.Data[i] += m.cfg.WeightDecay * v
			}
		}
	}
	if m.cfg.ClipNorm > 0 {
		nn.ClipGradNorm(m.params, m.cfg.ClipNorm)
	}
	opt.Step(m.params)
}
