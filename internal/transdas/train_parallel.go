package transdas

import (
	"math/rand"
	"sync"

	"github.com/ucad/ucad/internal/nn"
	"github.com/ucad/ucad/internal/tensor"
)

// Data-parallel mini-batch training.
//
// Each epoch partitions the shuffled window order into mini-batches of
// cfg.BatchSize. The windows of one mini-batch are sharded across
// cfg.TrainWorkers long-lived workers by stride (worker w takes batch
// positions w, w+W, …), each worker replays its share on a private tape
// whose parameter gradients are diverted into per-worker accumulators
// (tensor.Tape.SetGradSink), and the accumulators are reduced into the
// shared p.Grad in a fixed worker order before decoupled weight decay,
// gradient clipping and a single SGD step — the synchronous
// gradient-accumulation recipe of large-minibatch SGD.
//
// Determinism: the window-to-worker assignment is a pure function of
// (position, W), every worker draws dropout and negative samples from
// its own seeded stream, and the floating-point reduction order is
// fixed, so a given (Seed, BatchSize, TrainWorkers) is bit-reproducible
// across runs. With W=1 the single worker *is* the model's own RNG
// stream, so TrainWorkers=1, BatchSize=1 replays the sequential
// trajectory bit-for-bit (see trainSequential and the equivalence
// tests).

// trainWorker owns one worker's private training state: an RNG stream,
// one gradient accumulator per parameter (reused across batches), a
// negative-sampling buffer, and the shard's running loss.
type trainWorker struct {
	rng    *rand.Rand
	grads  []*tensor.Matrix
	sinkFn func(*tensor.Param) *tensor.Matrix
	neg    []int
	loss   float64 // Σ loss·valid over the current mini-batch shard
	valid  int
}

// newTrainWorker builds worker id of a pool of `workers`. A pool of one
// trains on the model's own RNG stream (the sequential trajectory);
// larger pools give every worker its own seeded stream.
func (m *Model) newTrainWorker(id, workers int) *trainWorker {
	w := &trainWorker{}
	if workers == 1 {
		w.rng = m.rng
	} else {
		w.rng = rand.New(rand.NewSource(workerSeed(m.cfg.Seed, id)))
	}
	w.grads = make([]*tensor.Matrix, len(m.params))
	sink := make(map[*tensor.Param]*tensor.Matrix, len(m.params))
	for i, p := range m.params {
		g := tensor.NewMatrix(p.Grad.Rows, p.Grad.Cols)
		w.grads[i] = g
		sink[p] = g
	}
	w.sinkFn = func(p *tensor.Param) *tensor.Matrix { return sink[p] }
	return w
}

// workerSeed derives worker id's RNG seed from the model seed
// (splitmix64 finalizer, so neighbouring ids land far apart).
func workerSeed(seed int64, id int) int64 {
	z := uint64(seed) + uint64(id+1)*0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return int64(z ^ (z >> 31))
}

// runShard trains worker w's share of the mini-batch order[lo:hi]:
// positions lo+offset, lo+offset+stride, … — one tape per window,
// gradients accumulated into the worker's private buffers.
func (m *Model) runShard(w *trainWorker, windows []window, order []int, lo, hi, stride, offset int) {
	for i := lo + offset; i < hi; i += stride {
		tp := tensor.NewTape()
		tp.SetGradSink(w.sinkFn)
		var loss *tensor.Node
		var valid int
		loss, valid, w.neg = m.windowLoss(tp, windows[order[i]], true, w.rng, w.neg)
		if loss == nil {
			continue
		}
		tp.Backward(loss)
		w.loss += loss.Value.Data[0] * float64(valid)
		w.valid += valid
	}
}

// trainWindows runs the mini-batch data-parallel training loop over the
// extracted windows. It is the single training engine: the sequential
// configuration (one worker, batch one) degenerates to exactly the
// per-window SGD of trainSequential.
func (m *Model) trainWindows(windows []window, epochs int, lr float64, progress func(int, float64)) TrainResult {
	res := TrainResult{Windows: len(windows)}
	if len(windows) == 0 {
		return res
	}
	workers := m.cfg.EffectiveTrainWorkers()
	batch := m.cfg.effectiveBatchSize()
	opt := nn.NewSGD(lr, m.cfg.Momentum)
	ws := make([]*trainWorker, workers)
	for i := range ws {
		ws[i] = m.newTrainWorker(i, workers)
	}
	order := make([]int, len(windows))
	for i := range order {
		order[i] = i
	}

	// Long-lived workers 1..W-1 block on their own task channel; the
	// main goroutine runs shard 0 itself, so a pool of W uses W-1 extra
	// goroutines and the barrier is one WaitGroup per mini-batch.
	type shard struct{ lo, hi int }
	var tasks []chan shard
	var wg sync.WaitGroup
	if workers > 1 {
		tasks = make([]chan shard, workers-1)
		for i := range tasks {
			tasks[i] = make(chan shard, 1)
			go func(offset int, ch chan shard) {
				w := ws[offset]
				for s := range ch {
					m.runShard(w, windows, order, s.lo, s.hi, workers, offset)
					wg.Done()
				}
			}(i+1, tasks[i])
		}
		defer func() {
			for _, ch := range tasks {
				close(ch)
			}
		}()
	}

	for epoch := 0; epoch < epochs; epoch++ {
		m.rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		var total float64
		var count int
		for lo := 0; lo < len(order); lo += batch {
			hi := lo + batch
			if hi > len(order) {
				hi = len(order)
			}
			if workers == 1 {
				m.runShard(ws[0], windows, order, lo, hi, 1, 0)
			} else {
				wg.Add(len(tasks))
				for _, ch := range tasks {
					ch <- shard{lo, hi}
				}
				m.runShard(ws[0], windows, order, lo, hi, workers, 0)
				wg.Wait()
			}
			batchValid := 0
			for _, w := range ws {
				batchValid += w.valid
			}
			if batchValid > 0 {
				// Reduce in fixed worker order (each fold walks the
				// params in index order), then take the one step. A
				// batch with no valid window skips the step entirely so
				// momentum velocity is not decayed by empty batches —
				// matching the sequential trainer's skip.
				for _, w := range ws {
					nn.AccumulateGrads(m.params, w.grads)
					for _, g := range w.grads {
						g.Zero()
					}
				}
				m.applyStep(opt)
			}
			for _, w := range ws {
				total += w.loss
				count += w.valid
				w.loss, w.valid = 0, 0
			}
		}
		mean := 0.0
		if count > 0 {
			mean = total / float64(count)
		}
		res.EpochLoss = append(res.EpochLoss, mean)
		if progress != nil {
			progress(epoch, mean)
		}
	}
	return res
}
