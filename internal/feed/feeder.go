package feed

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"time"

	"github.com/ucad/ucad/internal/serve"
	"github.com/ucad/ucad/internal/wal"
)

// Checkpoint is the feeder's durable resume state: the source position
// of the last acknowledged batch plus the sessionizer's sequence
// counters at that point. Both halves commit atomically in one file, so
// a restart replays the uncommitted suffix with the same sequence
// numbers it carried before the crash and the serving layer's dedupe
// absorbs the overlap — exactly-once sessions on top of at-least-once
// delivery.
type Checkpoint struct {
	Pos      Position              `json:"pos"`
	Sessions map[string]SessionSeq `json:"sessions,omitempty"`
	// Epoch is the sessionizer's last issued session epoch. It is
	// persisted separately from Sessions because the highest-epoch
	// session may already have been swept from the counters, and a
	// restart must never reissue an epoch the serving layer could still
	// hold open.
	Epoch int64 `json:"epoch,omitempty"`
}

// Position names the committed offset of a file-backed source. Kind
// guards against pointing an old checkpoint at a different source type.
type Position struct {
	Kind string  `json:"kind"` // "file" for tailer sources, "none" otherwise
	File FilePos `json:"file,omitempty"`
}

// LoadCheckpoint reads a checkpoint file; a missing file returns the
// zero checkpoint (fresh start) with ok=false.
func LoadCheckpoint(path string) (Checkpoint, bool, error) {
	var cp Checkpoint
	b, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return cp, false, nil
	}
	if err != nil {
		return cp, false, fmt.Errorf("feed: read checkpoint: %w", err)
	}
	if err := json.Unmarshal(b, &cp); err != nil {
		return cp, false, fmt.Errorf("feed: decode checkpoint %s: %w", path, err)
	}
	return cp, true, nil
}

// FeederConfig wires one source to one deliverer.
type FeederConfig struct {
	// Source supplies audit operations.
	Source Source
	// Deliver hands batches to the serving layer.
	Deliver Deliverer
	// Tenant stamps every event (optional; the deliverer may also
	// route by header).
	Tenant string
	// CheckpointPath is where resume state commits after each
	// acknowledged batch ("" disables checkpointing).
	CheckpointPath string
	// BatchSize caps events per delivery (<= 0 means 64).
	BatchSize int
	// FlushInterval bounds how long a partial batch waits for more
	// input before delivering anyway (<= 0 means 200ms).
	FlushInterval time.Duration
	// Idle is the sessionization cut-off (<= 0 means 10 minutes). It
	// should not exceed the server's session idle timeout, and
	// checkpoint lag must stay inside it for dedupe to hold.
	Idle time.Duration
	// Metrics is the per-source instrument view (nil drops metrics).
	Metrics *SourceMetrics

	// now is a test hook for the sessionizer clock (nil means
	// time.Now).
	now func() time.Time
}

// Feeder pumps a source into the serving layer: read, sessionize,
// deliver in batches, commit the checkpoint. Run is the whole
// lifecycle.
type Feeder struct {
	cfg  FeederConfig
	sess *Sessionizer
}

// NewFeeder validates the wiring.
func NewFeeder(cfg FeederConfig) (*Feeder, error) {
	if cfg.Source == nil {
		return nil, errors.New("feed: feeder needs a source")
	}
	if cfg.Deliver == nil {
		return nil, errors.New("feed: feeder needs a deliverer")
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 64
	}
	if cfg.FlushInterval <= 0 {
		cfg.FlushInterval = 200 * time.Millisecond
	}
	return &Feeder{cfg: cfg, sess: NewSessionizer(cfg.Idle, cfg.now)}, nil
}

// Run restores the checkpoint, then streams until ctx is cancelled or a
// finite source reports io.EOF (which flushes the tail and returns
// nil). On cancellation the in-flight batch is abandoned undelivered —
// it was never checkpointed, so the next run re-reads it.
func (f *Feeder) Run(ctx context.Context) error {
	if err := f.restore(); err != nil {
		return err
	}
	batch := make([]serve.Event, 0, f.cfg.BatchSize)
	for {
		// A pending partial batch bounds the wait so slow sources
		// still see their events delivered within FlushInterval.
		rctx, cancel := ctx, context.CancelFunc(func() {})
		if len(batch) > 0 {
			rctx, cancel = context.WithTimeout(ctx, f.cfg.FlushInterval)
		}
		op, err := f.cfg.Source.Next(rctx)
		cancel()
		switch {
		case err == nil:
			batch = append(batch, f.sess.Event(f.cfg.Tenant, op))
			if len(batch) < f.cfg.BatchSize {
				continue
			}
		case errors.Is(err, io.EOF):
			if ferr := f.flush(ctx, batch); ferr != nil {
				return ferr
			}
			return nil
		case errors.Is(err, context.DeadlineExceeded) && ctx.Err() == nil:
			// Flush-interval tick on a partial batch; fall through.
		default:
			return err
		}
		if len(batch) > 0 {
			if ferr := f.flush(ctx, batch); ferr != nil {
				return ferr
			}
			batch = batch[:0]
		}
		if ctx.Err() != nil {
			return ctx.Err()
		}
	}
}

// restore loads the checkpoint and rewinds the source to it.
func (f *Feeder) restore() error {
	if f.cfg.CheckpointPath == "" {
		return nil
	}
	cp, ok, err := LoadCheckpoint(f.cfg.CheckpointPath)
	if err != nil || !ok {
		return err
	}
	f.sess.Restore(cp.Sessions)
	f.sess.SetEpoch(cp.Epoch)
	if p, isPos := f.cfg.Source.(positioned); isPos && cp.Pos.Kind == "file" {
		if err := p.SeekTo(cp.Pos.File); err != nil {
			return fmt.Errorf("feed: seek to checkpoint: %w", err)
		}
	}
	return nil
}

// flush delivers the batch and, once acknowledged, commits the
// checkpoint.
func (f *Feeder) flush(ctx context.Context, batch []serve.Event) error {
	if len(batch) == 0 {
		return nil
	}
	start := time.Now()
	if err := f.cfg.Deliver.Deliver(ctx, batch); err != nil {
		return err
	}
	f.cfg.Metrics.observeDelivery(time.Since(start).Seconds())
	return f.commit()
}

// commit writes the checkpoint atomically (write-then-rename with
// fsync) so a crash leaves either the old state or the new one, never a
// torn file.
func (f *Feeder) commit() error {
	f.sess.Sweep()
	if f.cfg.CheckpointPath == "" {
		return nil
	}
	cp := Checkpoint{Pos: Position{Kind: "none"}, Sessions: f.sess.Export(), Epoch: f.sess.Epoch()}
	if p, isPos := f.cfg.Source.(positioned); isPos {
		cp.Pos = Position{Kind: "file", File: p.Pos()}
	}
	b, err := json.Marshal(cp)
	if err != nil {
		return fmt.Errorf("feed: encode checkpoint: %w", err)
	}
	if err := wal.WriteAtomic(f.cfg.CheckpointPath, func(w io.Writer) error {
		_, werr := w.Write(b)
		return werr
	}); err != nil {
		return fmt.Errorf("feed: commit checkpoint: %w", err)
	}
	f.cfg.Metrics.checkpointed()
	return nil
}
