package feed

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"time"

	"github.com/ucad/ucad/internal/serve"
	"github.com/ucad/ucad/internal/wal"
)

// Checkpoint is the feeder's durable resume state: the source position
// of the last acknowledged batch plus the sessionizer's sequence
// counters at that point. Both halves commit atomically in one file, so
// a restart replays the uncommitted suffix with the same sequence
// numbers it carried before the crash and the serving layer's dedupe
// absorbs the overlap — exactly-once sessions on top of at-least-once
// delivery.
type Checkpoint struct {
	Pos      Position              `json:"pos"`
	Sessions map[string]SessionSeq `json:"sessions,omitempty"`
	// Epoch is the sessionizer's last issued session epoch. It is
	// persisted separately from Sessions because the highest-epoch
	// session may already have been swept from the counters, and a
	// restart must never reissue an epoch the serving layer could still
	// hold open.
	Epoch int64 `json:"epoch,omitempty"`
	// Failover retains the older resume states the failover rewind
	// falls back to (present only when FeederConfig.FailoverRewind is
	// enabled), so a crash between a failover and the next commit still
	// resumes behind the replication lag window.
	Failover *FailoverState `json:"failover,omitempty"`
}

// FailoverPoint is one retained resume state: a past (position,
// sessionizer counters) pair the feeder can rewind to. Replaying the
// stream from a point reproduces the exact (epoch, seq) labels the
// first pass issued — sessionization is deterministic given the
// counters — so redelivery dedupes at the server instead of forking
// sessions.
type FailoverPoint struct {
	Pos      Position              `json:"pos"`
	Sessions map[string]SessionSeq `json:"sessions,omitempty"`
	Epoch    int64                 `json:"epoch,omitempty"`
	// At is the wall-clock capture time; a point older than the
	// FailoverRewind window is one whose delivered prefix has had time
	// to replicate to any standby.
	At time.Time `json:"at"`
}

// FailoverState is the two-bucket retention of failover points: Active
// is the rewind target (at least one rewind window old, once the feeder
// has run that long), Pending is the candidate that replaces it when it
// ages past the window. Active's age is thus bounded to roughly
// [window, 2×window] — old enough that its prefix replicated, young
// enough that a rewind stays inside the server's session idle timeout.
type FailoverState struct {
	Active  *FailoverPoint `json:"active,omitempty"`
	Pending *FailoverPoint `json:"pending,omitempty"`
}

// Position names the committed offset of a file-backed source. Kind
// guards against pointing an old checkpoint at a different source type.
type Position struct {
	Kind string  `json:"kind"` // "file" for tailer sources, "none" otherwise
	File FilePos `json:"file,omitempty"`
}

// LoadCheckpoint reads a checkpoint file; a missing file returns the
// zero checkpoint (fresh start) with ok=false.
func LoadCheckpoint(path string) (Checkpoint, bool, error) {
	var cp Checkpoint
	b, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return cp, false, nil
	}
	if err != nil {
		return cp, false, fmt.Errorf("feed: read checkpoint: %w", err)
	}
	if err := json.Unmarshal(b, &cp); err != nil {
		return cp, false, fmt.Errorf("feed: decode checkpoint %s: %w", path, err)
	}
	return cp, true, nil
}

// FeederConfig wires one source to one deliverer.
type FeederConfig struct {
	// Source supplies audit operations.
	Source Source
	// Deliver hands batches to the serving layer.
	Deliver Deliverer
	// Tenant stamps every event (optional; the deliverer may also
	// route by header).
	Tenant string
	// CheckpointPath is where resume state commits after each
	// acknowledged batch ("" disables checkpointing).
	CheckpointPath string
	// BatchSize caps events per delivery (<= 0 means 64).
	BatchSize int
	// FlushInterval bounds how long a partial batch waits for more
	// input before delivering anyway (<= 0 means 200ms).
	FlushInterval time.Duration
	// Idle is the sessionization cut-off (<= 0 means 10 minutes). It
	// should not exceed the server's session idle timeout, and
	// checkpoint lag must stay inside it for dedupe to hold.
	Idle time.Duration
	// FailoverRewind, when > 0, is the replication-lag bound the feeder
	// assumes when delivery fails over to a standby server (the
	// deliverer reports it via Failovers, e.g. HTTPDeliverer with a URL
	// list): anything delivered within the last FailoverRewind may not
	// have replicated yet, so on failover the feeder rewinds the source
	// and its sessionizer counters to a retained point at least that old
	// and redelivers the suffix. The standby dedupes the part it already
	// replayed from the primary's WAL and appends the missing tail —
	// exactly-once sessions across the failover. Set it comfortably
	// above the primary's snapshot/ship cadence but below the server's
	// session idle timeout. Requires a rewindable source (Tailer); other
	// sources fail over without rewinding.
	FailoverRewind time.Duration
	// Metrics is the per-source instrument view (nil drops metrics).
	Metrics *SourceMetrics

	// now is a test hook for the sessionizer clock (nil means
	// time.Now).
	now func() time.Time
}

// Feeder pumps a source into the serving layer: read, sessionize,
// deliver in batches, commit the checkpoint. Run is the whole
// lifecycle.
type Feeder struct {
	cfg  FeederConfig
	sess *Sessionizer

	// Failover-rewind state (used only when canRewind).
	canRewind bool
	fo        failoverCounter
	seenFail  int64
	active    *FailoverPoint
	pending   *FailoverPoint
}

// failoverCounter is the deliverer half of the failover handshake: a
// monotonic count of acknowledged-server changes (HTTPDeliverer with a
// URL list implements it).
type failoverCounter interface{ Failovers() int64 }

// rewindable is the source half: mid-run re-seek to an earlier
// committed position (Tailer implements it).
type rewindable interface{ Rewind(pos FilePos) error }

// NewFeeder validates the wiring.
func NewFeeder(cfg FeederConfig) (*Feeder, error) {
	if cfg.Source == nil {
		return nil, errors.New("feed: feeder needs a source")
	}
	if cfg.Deliver == nil {
		return nil, errors.New("feed: feeder needs a deliverer")
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 64
	}
	if cfg.FlushInterval <= 0 {
		cfg.FlushInterval = 200 * time.Millisecond
	}
	if cfg.now == nil {
		cfg.now = time.Now
	}
	f := &Feeder{cfg: cfg, sess: NewSessionizer(cfg.Idle, cfg.now)}
	if cfg.FailoverRewind > 0 {
		fo, hasFo := cfg.Deliver.(failoverCounter)
		_, canSeek := cfg.Source.(rewindable)
		_, hasPos := cfg.Source.(positioned)
		if hasFo && canSeek && hasPos {
			f.canRewind, f.fo = true, fo
		}
	}
	return f, nil
}

// Run restores the checkpoint, then streams until ctx is cancelled or a
// finite source reports io.EOF (which flushes the tail and returns
// nil). On cancellation the in-flight batch is abandoned undelivered —
// it was never checkpointed, so the next run re-reads it.
func (f *Feeder) Run(ctx context.Context) error {
	if err := f.restore(); err != nil {
		return err
	}
	if f.canRewind {
		f.seenFail = f.fo.Failovers()
		if f.active == nil {
			// Bootstrap rewind target: the state before anything streamed.
			// Until a commit ages past the rewind window this is the
			// oldest state there is, so a failover replays from the start
			// of the uncommitted era — never less.
			f.active = f.point(f.sess.Export(), f.sess.Epoch())
		}
	}
	batch := make([]serve.Event, 0, f.cfg.BatchSize)
	for {
		// A pending partial batch bounds the wait so slow sources
		// still see their events delivered within FlushInterval.
		rctx, cancel := ctx, context.CancelFunc(func() {})
		if len(batch) > 0 {
			rctx, cancel = context.WithTimeout(ctx, f.cfg.FlushInterval)
		}
		op, err := f.cfg.Source.Next(rctx)
		cancel()
		switch {
		case err == nil:
			batch = append(batch, f.sess.Event(f.cfg.Tenant, op))
			if len(batch) < f.cfg.BatchSize {
				continue
			}
		case errors.Is(err, io.EOF):
			if ferr := f.flush(ctx, batch); ferr != nil {
				return ferr
			}
			return nil
		case errors.Is(err, context.DeadlineExceeded) && ctx.Err() == nil:
			// Flush-interval tick on a partial batch; fall through.
		default:
			return err
		}
		if len(batch) > 0 {
			if ferr := f.flush(ctx, batch); ferr != nil {
				return ferr
			}
			batch = batch[:0]
		}
		if ctx.Err() != nil {
			return ctx.Err()
		}
	}
}

// restore loads the checkpoint and rewinds the source to it.
func (f *Feeder) restore() error {
	if f.cfg.CheckpointPath == "" {
		return nil
	}
	cp, ok, err := LoadCheckpoint(f.cfg.CheckpointPath)
	if err != nil || !ok {
		return err
	}
	f.sess.Restore(cp.Sessions)
	f.sess.SetEpoch(cp.Epoch)
	if p, isPos := f.cfg.Source.(positioned); isPos && cp.Pos.Kind == "file" {
		if err := p.SeekTo(cp.Pos.File); err != nil {
			return fmt.Errorf("feed: seek to checkpoint: %w", err)
		}
	}
	if f.canRewind && cp.Failover != nil {
		f.active, f.pending = cp.Failover.Active, cp.Failover.Pending
	}
	return nil
}

// point captures the current source position with the given sessionizer
// counters as a failover point.
func (f *Feeder) point(sessions map[string]SessionSeq, epoch int64) *FailoverPoint {
	pt := &FailoverPoint{Pos: Position{Kind: "none"}, Sessions: sessions, Epoch: epoch, At: f.cfg.now()}
	if p, isPos := f.cfg.Source.(positioned); isPos {
		pt.Pos = Position{Kind: "file", File: p.Pos()}
	}
	return pt
}

// rewind rolls the stream back to the active failover point after
// delivery switched servers: the sessionizer counters are restored so
// re-sessionizing the replayed suffix reissues identical (epoch, seq)
// labels, the source re-seeks, and the point is committed as the new
// checkpoint so a crash mid-redelivery resumes behind the window too.
func (f *Feeder) rewind() error {
	pt := f.active
	f.sess = NewSessionizer(f.cfg.Idle, f.cfg.now)
	f.sess.Restore(pt.Sessions)
	f.sess.SetEpoch(pt.Epoch)
	if pt.Pos.Kind == "file" {
		if err := f.cfg.Source.(rewindable).Rewind(pt.Pos.File); err != nil {
			return fmt.Errorf("feed: failover rewind: %w", err)
		}
	}
	f.pending = nil
	f.cfg.Metrics.rewound()
	return f.writeCheckpoint(Checkpoint{
		Pos:      pt.Pos,
		Sessions: pt.Sessions,
		Epoch:    pt.Epoch,
		Failover: &FailoverState{Active: pt},
	})
}

// flush delivers the batch and, once acknowledged, commits the
// checkpoint. A deliverer reporting ErrFailover held the batch back
// because the serving side changed: the stream rewinds to the retained
// failover point (abandoning the batch — the rewound source re-produces
// it) so the new server's first events are the rewound prefix, not a
// mid-stream fragment. Without rewind support the same batch is simply
// redelivered to the new server.
func (f *Feeder) flush(ctx context.Context, batch []serve.Event) error {
	if len(batch) == 0 {
		return nil
	}
	start := time.Now()
	for {
		err := f.cfg.Deliver.Deliver(ctx, batch)
		if err == nil {
			break
		}
		if !errors.Is(err, ErrFailover) {
			return err
		}
		if f.canRewind {
			f.seenFail = f.fo.Failovers()
			return f.rewind()
		}
	}
	f.cfg.Metrics.observeDelivery(time.Since(start).Seconds())
	if f.canRewind {
		// Safety net for deliverers that switch servers without the
		// ErrFailover handshake: a changed count after an acknowledged
		// batch still forces the rewind.
		if n := f.fo.Failovers(); n != f.seenFail {
			f.seenFail = n
			return f.rewind()
		}
	}
	return f.commit()
}

// commit writes the checkpoint atomically (write-then-rename with
// fsync) so a crash leaves either the old state or the new one, never a
// torn file.
func (f *Feeder) commit() error {
	f.sess.Sweep()
	cp := Checkpoint{Pos: Position{Kind: "none"}, Sessions: f.sess.Export(), Epoch: f.sess.Epoch()}
	if p, isPos := f.cfg.Source.(positioned); isPos {
		cp.Pos = Position{Kind: "file", File: p.Pos()}
	}
	if f.canRewind {
		// Two-bucket aging: the pending point replaces the active one
		// once it is a full rewind window old, then the fresh state
		// becomes the new pending candidate.
		cur := &FailoverPoint{Pos: cp.Pos, Sessions: cp.Sessions, Epoch: cp.Epoch, At: f.cfg.now()}
		switch {
		case f.pending == nil:
			f.pending = cur
		case cur.At.Sub(f.pending.At) >= f.cfg.FailoverRewind:
			f.active, f.pending = f.pending, cur
		}
		cp.Failover = &FailoverState{Active: f.active, Pending: f.pending}
	}
	return f.writeCheckpoint(cp)
}

// writeCheckpoint persists one resume state ("" path disables).
func (f *Feeder) writeCheckpoint(cp Checkpoint) error {
	if f.cfg.CheckpointPath == "" {
		return nil
	}
	b, err := json.Marshal(cp)
	if err != nil {
		return fmt.Errorf("feed: encode checkpoint: %w", err)
	}
	if err := wal.WriteAtomic(f.cfg.CheckpointPath, func(w io.Writer) error {
		_, werr := w.Write(b)
		return werr
	}); err != nil {
		return fmt.Errorf("feed: commit checkpoint: %w", err)
	}
	f.cfg.Metrics.checkpointed()
	return nil
}
