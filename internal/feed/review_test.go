package feed

// Regression tests for the clock-domain, delivery-classification and
// shutdown races around the front door: stream-clock sweeping, epoch
// fencing, rotation-gap accounting and the DBSource Append/Close race.

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/ucad/ucad/internal/session"
)

// TestSessionizerBacklogSweepKeepsCounters pins the stream-clock sweep:
// a feeder catching up on records far older than the idle window (first
// start on an existing log, restart after downtime) must not have its
// live counters deleted by a wall-clock sweep at every commit.
func TestSessionizerBacklogSweepKeepsCounters(t *testing.T) {
	clk := newFakeClock()
	z := NewSessionizer(time.Minute, clk.Now)
	old := clk.Now().Add(-24 * time.Hour) // a day-old backlog

	ev1 := z.Event("", session.Operation{SessionID: "c1", SQL: "SELECT 1", Time: old})
	if ev1.Seq != 1 || ev1.Epoch == 0 {
		t.Fatalf("first op: %+v", ev1)
	}
	z.Sweep() // simulates the post-commit sweep mid-backlog
	ev2 := z.Event("", session.Operation{SessionID: "c1", SQL: "SELECT 1", Time: old.Add(time.Second)})
	if ev2.Seq != 2 || ev2.Epoch != ev1.Epoch {
		t.Fatalf("counters lost across sweep: %+v (want Seq 2, epoch %d)", ev2, ev1.Epoch)
	}

	// Clients genuinely idle in stream time do get swept once the stream
	// clock moves past their cut-off.
	z.Event("", session.Operation{SessionID: "c2", SQL: "SELECT 1", Time: old.Add(2 * time.Second)})
	z.Event("", session.Operation{SessionID: "c1", SQL: "SELECT 1", Time: old.Add(10 * time.Minute)})
	z.Sweep()
	if _, ok := z.state["c2"]; ok {
		t.Fatal("stream-idle client survived sweep")
	}
	if _, ok := z.state["c1"]; !ok {
		t.Fatal("stream-live client swept")
	}
}

// TestSessionizerEpochMonotonic pins epoch assignment: each idle cut
// starts a new epoch, and the counter round-trips the checkpoint so a
// restart never reissues an epoch the serving layer may still hold.
func TestSessionizerEpochMonotonic(t *testing.T) {
	clk := newFakeClock()
	z := NewSessionizer(time.Minute, clk.Now)
	base := clk.Now()

	e1 := z.Event("", session.Operation{SessionID: "c1", SQL: "q", Time: base})
	e2 := z.Event("", session.Operation{SessionID: "c1", SQL: "q", Time: base.Add(5 * time.Minute)})
	if e2.Epoch <= e1.Epoch || e2.Seq != 1 {
		t.Fatalf("idle cut did not bump epoch: %+v -> %+v", e1, e2)
	}

	snap, epoch := z.Export(), z.Epoch()
	z2 := NewSessionizer(time.Minute, clk.Now)
	z2.Restore(snap)
	z2.SetEpoch(epoch)
	cont := z2.Event("", session.Operation{SessionID: "c1", SQL: "q", Time: base.Add(5*time.Minute + time.Second)})
	if cont.Seq != 2 || cont.Epoch != e2.Epoch {
		t.Fatalf("restored continuation: %+v, want Seq 2 epoch %d", cont, e2.Epoch)
	}
	fresh := z2.Event("", session.Operation{SessionID: "c9", SQL: "q", Time: base.Add(5 * time.Minute)})
	if fresh.Epoch <= epoch {
		t.Fatalf("restart reissued epoch %d (counter was %d)", fresh.Epoch, epoch)
	}
}

// TestFeederBacklogEventTimeGapNoLoss is the reviewed loss scenario
// end-to-end: a backlog replay where the log's event-time gap exceeds
// the idle window while the server's wall clock barely moves. The
// feeder starts a new session (Seq back to 1) for the post-gap records;
// without epoch fencing the server treats every one of them as a
// redelivery of the still-open session and silently drops them.
func TestFeederBacklogEventTimeGapNoLoss(t *testing.T) {
	dir := t.TempDir()
	logPath := filepath.Join(dir, "audit.jsonl")

	clk := newFakeClock()
	base := clk.Now().Add(-2 * time.Hour) // backlog: records are old
	var lines []string
	for p := 0; p < 4; p++ {
		lines = append(lines, jsonOp(t, session.Operation{
			User: "app", SessionID: "c0", SQL: normalStatement(p), Time: base.Add(time.Duration(p) * time.Second),
		}))
	}
	for p := 0; p < 4; p++ { // > 10 min event-time gap: a new session
		lines = append(lines, jsonOp(t, session.Operation{
			User: "app", SessionID: "c0", SQL: normalStatement(p), Time: base.Add(30*time.Minute + time.Duration(p)*time.Second),
		}))
	}
	writeLines(t, logPath, lines...)

	svc := newTestService(t, clk)
	tl, err := NewTailer(TailerConfig{Path: logPath, Poll: 2 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	f, err := NewFeeder(FeederConfig{
		Source: tl, Deliver: &ServiceDeliverer{Svc: svc},
		CheckpointPath: filepath.Join(dir, "feed.ckpt"),
		BatchSize:      2, // commits (and sweeps) while still mid-backlog
		FlushInterval:  5 * time.Millisecond,
		now:            clk.Now,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- f.Run(ctx) }()
	deadline := time.Now().Add(10 * time.Second)
	for {
		st := svc.Stats()
		if st.EventsAccepted+st.DuplicateEvents >= 8 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("stalled: %+v", st)
		}
		time.Sleep(5 * time.Millisecond)
	}
	cancel()
	if err := <-done; err != nil && !errors.Is(err, context.Canceled) {
		t.Fatal(err)
	}

	st := svc.Stats()
	if st.EventsAccepted != 8 {
		t.Fatalf("EventsAccepted = %d, want 8 (post-gap session must not be swallowed as duplicates)", st.EventsAccepted)
	}
	if st.DuplicateEvents != 0 {
		t.Fatalf("DuplicateEvents = %d, want 0 (nothing was replayed)", st.DuplicateEvents)
	}
}

// TestDBSourceCloseDoesNotLoseAckedAppends races Append against Close:
// every Append that returned nil was acknowledged to the engine's audit
// path, so its operation must be drained before Next reports io.EOF.
func TestDBSourceCloseDoesNotLoseAckedAppends(t *testing.T) {
	for iter := 0; iter < 100; iter++ {
		s := NewDBSource(2)
		var acked atomic.Int64
		var wg sync.WaitGroup
		for p := 0; p < 4; p++ {
			wg.Add(1)
			go func(p int) {
				defer wg.Done()
				for i := 0; i < 8; i++ {
					if s.Append(session.Operation{SessionID: fmt.Sprintf("p%d", p), SQL: "q"}) == nil {
						acked.Add(1)
					}
				}
			}(p)
		}
		go s.Close()

		received := int64(0)
		for {
			_, err := s.Next(context.Background())
			if errors.Is(err, io.EOF) {
				break
			}
			if err != nil {
				t.Fatal(err)
			}
			received++
		}
		wg.Wait()
		if received != acked.Load() {
			t.Fatalf("iter %d: received %d ops but %d appends were acknowledged", iter, received, acked.Load())
		}
	}
}

// TestTailerDoubleRotationCountsGap: the tailer follows one rotation at
// a time; when the log rotates again before the first rotation finished
// draining, the skipped generation must at least be counted.
func TestTailerDoubleRotationCountsGap(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "audit.jsonl")
	m := NewMetrics(nil)
	sm := m.Source("tail")
	tl, err := NewTailer(TailerConfig{Path: path, Poll: time.Millisecond, Metrics: sm})
	if err != nil {
		t.Fatal(err)
	}
	defer tl.Close()

	writeLines(t, path, jsonOp(t, session.Operation{SessionID: "c", SQL: "gen A"}))
	if op := mustNext(t, tl); op.SQL != "gen A" {
		t.Fatalf("first read: %+v", op)
	}

	// First rotation: A -> A.1, generation B becomes live.
	if err := os.Rename(path, path+".1"); err != nil {
		t.Fatal(err)
	}
	writeLines(t, path, jsonOp(t, session.Operation{SessionID: "c", SQL: "gen B"}))
	if _, err := tl.fill(); err != nil { // detects rotation, pins the expected generation
		t.Fatal(err)
	}

	// Second rotation while the grace polls are still running: B is
	// renamed away and generation C becomes live. B is never opened.
	if err := os.Rename(path, path+".2"); err != nil {
		t.Fatal(err)
	}
	writeLines(t, path, jsonOp(t, session.Operation{SessionID: "c", SQL: "gen C"}))

	if op := mustNext(t, tl); op.SQL != "gen C" {
		t.Fatalf("post-rotation read: %+v", op)
	}
	if got := sm.rotationGaps.Value(); got != 1 {
		t.Fatalf("rotation gaps = %d, want 1 (generation B was skipped)", got)
	}
}
