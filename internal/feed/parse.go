package feed

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"strings"
	"time"

	"github.com/ucad/ucad/internal/session"
)

// ParseJSONLine decodes one session.Operation wire-format record (the
// format session.ReadLog reads and minidb.AuditWriter writes).
func ParseJSONLine(line []byte) (session.Operation, error) {
	var op session.Operation
	if err := json.Unmarshal(line, &op); err != nil {
		return op, fmt.Errorf("feed: bad jsonl record: %w", err)
	}
	if op.SQL == "" {
		return op, fmt.Errorf("feed: jsonl record missing sql")
	}
	return op, nil
}

// ParseCSVLine decodes one CSV audit record with the column layout
//
//	ts,user,addr,session_id,sql
//
// ts is RFC 3339 (empty means unstamped); standard CSV quoting applies,
// so statements containing commas or quotes round-trip.
func ParseCSVLine(line []byte) (session.Operation, error) {
	var op session.Operation
	r := csv.NewReader(strings.NewReader(string(line)))
	r.FieldsPerRecord = 5
	fields, err := r.Read()
	if err != nil {
		return op, fmt.Errorf("feed: bad csv record: %w", err)
	}
	if fields[0] != "" {
		ts, err := time.Parse(time.RFC3339Nano, fields[0])
		if err != nil {
			return op, fmt.Errorf("feed: bad csv timestamp: %w", err)
		}
		op.Time = ts
	}
	op.User, op.Addr, op.SessionID, op.SQL = fields[1], fields[2], fields[3], fields[4]
	if op.SQL == "" {
		return op, fmt.Errorf("feed: csv record missing sql")
	}
	return op, nil
}
