// Package feed is the streaming SQL front door: it closes the loop from
// a raw DBMS audit trail to alerts. A pluggable Source yields executed
// operations (an in-process minidb hook, or a JSONL/CSV file tailer
// that follows log rotation), a Sessionizer groups them into
// per-connection sessions with an event-time idle cut-off and stamps
// each event with its 1-based sequence number and session epoch, and a
// Deliverer hands batches to the
// serving layer — direct serve.Service calls in-process, or an HTTP
// client with retry/backoff and tenant routing against a remote
// ucad-serve.
//
// Delivery is at-least-once: the Feeder commits its resume state (file
// position plus the sessionizer's sequence counters and epoch)
// atomically only after a batch is acknowledged, so a crash between
// read and commit replays the tail. The serving layer deduplicates
// replayed events by their (epoch, sequence) coordinates
// (serve.Event.Epoch, serve.Event.Seq), which turns at-least-once
// delivery into exactly-once sessions — the invariant the kill -9
// end-to-end test in cmd/ucad-feed pins down.
package feed

import (
	"context"

	"github.com/ucad/ucad/internal/session"
)

// Source yields executed operations in audit-log order.
type Source interface {
	// Next returns the next operation. It blocks until one is available,
	// the source is exhausted (io.EOF for finite sources), or ctx is
	// done (ctx.Err()). A tailer never returns io.EOF — it waits for the
	// writer.
	Next(ctx context.Context) (session.Operation, error)
	// Close releases the source.
	Close() error
}

// positioned is implemented by sources with a durable resume position
// (the file tailer). The Feeder persists the position in its checkpoint
// and seeds it back on restart.
type positioned interface {
	// Pos returns the source position after the last record Next
	// returned.
	Pos() FilePos
	// SeekTo resumes the source at a previously committed position.
	// It must be called before the first Next.
	SeekTo(FilePos) error
}

// FilePos identifies a byte position within a possibly-rotated log
// file: the inode pins the file identity so a rotation between commit
// and restart is detected instead of silently re-reading (or skipping)
// the new file.
type FilePos struct {
	Ino    uint64 `json:"ino"`
	Offset int64  `json:"offset"`
}
