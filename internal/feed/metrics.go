package feed

import "github.com/ucad/ucad/internal/obs"

// Metrics owns the feed subsystem's metric families, each partitioned
// by a "source" label so one ucad-feed process tailing several logs
// exports per-source series. Carve a source's view with Source.
type Metrics struct {
	// Registry carries the families; expose it with Registry.Handler().
	Registry *obs.Registry

	linesRead       *obs.CounterVec
	parseErrors     *obs.CounterVec
	lagBytes        *obs.GaugeVec
	deliveredEvents *obs.CounterVec
	droppedEvents   *obs.CounterVec
	deliveryRetries *obs.CounterVec
	checkpoints     *obs.CounterVec
	deliverySeconds *obs.HistogramVec
	rotationGaps    *obs.CounterVec
	failovers       *obs.CounterVec
	rewinds         *obs.CounterVec
}

// NewMetrics registers the feed families on reg (nil means a fresh
// private registry).
func NewMetrics(reg *obs.Registry) *Metrics {
	if reg == nil {
		reg = obs.NewRegistry()
	}
	return &Metrics{
		Registry: reg,
		linesRead: reg.CounterVec("ucad_feed_lines_read_total",
			"Lines consumed from the source (including unparsable ones).", "source"),
		parseErrors: reg.CounterVec("ucad_feed_parse_errors_total",
			"Lines that failed to parse as audit records (skipped).", "source"),
		lagBytes: reg.GaugeVec("ucad_feed_lag_bytes",
			"Bytes in the live log file not yet returned to the feeder.", "source"),
		deliveredEvents: reg.CounterVec("ucad_feed_delivered_events_total",
			"Events acknowledged by the serving layer.", "source"),
		droppedEvents: reg.CounterVec("ucad_feed_dropped_events_total",
			"Events dropped as permanently undeliverable (rejected as invalid by the server, or oversized).", "source"),
		deliveryRetries: reg.CounterVec("ucad_feed_delivery_retries_total",
			"Delivery attempts that were retried after backpressure or transport errors.", "source"),
		checkpoints: reg.CounterVec("ucad_feed_checkpoints_total",
			"Resume checkpoints committed after acknowledged batches.", "source"),
		deliverySeconds: reg.HistogramVec("ucad_feed_delivery_seconds",
			"Latency of delivering one batch to the serving layer (including retries).",
			obs.LatencyBuckets, "source"),
		rotationGaps: reg.CounterVec("ucad_feed_rotation_gaps_total",
			"Resume or rotation points where log data may have been skipped (multiple rotations between polls, or a checkpointed file no longer available).", "source"),
		failovers: reg.CounterVec("ucad_feed_failovers_total",
			"Deliveries acknowledged by a different server than the previous one (URL-list failover).", "source"),
		rewinds: reg.CounterVec("ucad_feed_rewinds_total",
			"Failover rewinds: the feeder re-read from a retained older position to redeliver the suffix a new server may be missing.", "source"),
	}
}

// Source carves the per-source child view for name.
func (m *Metrics) Source(name string) *SourceMetrics {
	return &SourceMetrics{
		linesRead:       m.linesRead.With(name),
		parseErrors:     m.parseErrors.With(name),
		lagBytes:        m.lagBytes.With(name),
		deliveredEvents: m.deliveredEvents.With(name),
		droppedEvents:   m.droppedEvents.With(name),
		deliveryRetries: m.deliveryRetries.With(name),
		checkpoints:     m.checkpoints.With(name),
		deliverySeconds: m.deliverySeconds.With(name),
		rotationGaps:    m.rotationGaps.With(name),
		failovers:       m.failovers.With(name),
		rewinds:         m.rewinds.With(name),
	}
}

// SourceMetrics is one source's bound instruments. The nil view is
// valid and drops every observation, so instrumentation is optional at
// every call site.
type SourceMetrics struct {
	linesRead       *obs.Counter
	parseErrors     *obs.Counter
	lagBytes        *obs.Gauge
	deliveredEvents *obs.Counter
	droppedEvents   *obs.Counter
	deliveryRetries *obs.Counter
	checkpoints     *obs.Counter
	deliverySeconds *obs.Histogram
	rotationGaps    *obs.Counter
	failovers       *obs.Counter
	rewinds         *obs.Counter
}

func (s *SourceMetrics) lineRead() {
	if s != nil {
		s.linesRead.Inc()
	}
}

func (s *SourceMetrics) parseError() {
	if s != nil {
		s.parseErrors.Inc()
	}
}

func (s *SourceMetrics) setLagBytes(v float64) {
	if s != nil {
		s.lagBytes.Set(v)
	}
}

func (s *SourceMetrics) delivered(n int) {
	if s != nil {
		s.deliveredEvents.Add(int64(n))
	}
}

func (s *SourceMetrics) dropped(n int) {
	if s != nil && n > 0 {
		s.droppedEvents.Add(int64(n))
	}
}

func (s *SourceMetrics) rotationGap() {
	if s != nil {
		s.rotationGaps.Inc()
	}
}

func (s *SourceMetrics) retried() {
	if s != nil {
		s.deliveryRetries.Inc()
	}
}

func (s *SourceMetrics) checkpointed() {
	if s != nil {
		s.checkpoints.Inc()
	}
}

func (s *SourceMetrics) observeDelivery(seconds float64) {
	if s != nil {
		s.deliverySeconds.Observe(seconds)
	}
}

func (s *SourceMetrics) failedOver() {
	if s != nil {
		s.failovers.Inc()
	}
}

func (s *SourceMetrics) rewound() {
	if s != nil {
		s.rewinds.Inc()
	}
}
