package feed

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"github.com/ucad/ucad/internal/serve"
	"github.com/ucad/ucad/internal/tenant"
)

// Deliverer hands a batch of events to the serving layer. Deliver must
// be all-or-nothing from the feeder's point of view: it returns nil
// only when every deliverable event was acknowledged (invalid events —
// ones the server can never accept — are skipped, not failed), and it
// retries transient rejections internally until ctx is done. Redelivery
// after a partial failure is safe: events carry sequence numbers and
// the serving layer deduplicates.
type Deliverer interface {
	Deliver(ctx context.Context, events []serve.Event) error
}

// Backoff is a capped exponential retry schedule.
type Backoff struct {
	// Min is the first delay (default 50ms).
	Min time.Duration
	// Max caps the delay (default 5s).
	Max time.Duration
}

// delay returns the backoff for the given retry attempt (0-based).
func (b Backoff) delay(attempt int) time.Duration {
	min, max := b.Min, b.Max
	if min <= 0 {
		min = 50 * time.Millisecond
	}
	if max <= 0 {
		max = 5 * time.Second
	}
	d := min << uint(attempt)
	if d > max || d < min { // d < min catches shift overflow
		d = max
	}
	return d
}

// sleep waits out the delay or the context, whichever ends first.
func sleep(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// ServiceDeliverer ingests events directly into an in-process
// serve.Service (the single-binary wiring). Backpressure (ErrBusy) is
// retried with backoff; invalid events are skipped.
type ServiceDeliverer struct {
	Svc     *serve.Service
	Backoff Backoff
	Metrics *SourceMetrics
}

// Deliver implements Deliverer.
func (d *ServiceDeliverer) Deliver(ctx context.Context, events []serve.Event) error {
	for _, ev := range events {
		for attempt := 0; ; attempt++ {
			err := d.Svc.Ingest(ev)
			switch {
			case err == nil:
				d.Metrics.delivered(1)
			case errors.Is(err, serve.ErrInvalid):
				// The server can never accept it; dropping beats wedging
				// the stream.
			case errors.Is(err, serve.ErrBusy):
				d.Metrics.retried()
				if serr := sleep(ctx, d.Backoff.delay(attempt)); serr != nil {
					return serr
				}
				continue
			default:
				return fmt.Errorf("feed: ingest: %w", err)
			}
			break
		}
	}
	return nil
}

// HTTPDeliverer posts event batches to a ucad-serve (or multi-tenant
// router) /v1/events endpoint. Tenant routing follows the server's
// precedence: each event's body tenant field wins, the X-UCAD-Tenant
// header (set from Tenant) covers the rest. Backpressure (503, with
// Retry-After honored), 429 and transport errors are retried with
// capped exponential backoff until ctx is done; a replayed batch is
// safe because the server deduplicates by sequence number. Other 4xx
// responses mark events the server will never accept and are skipped.
type HTTPDeliverer struct {
	// URL is the server base, e.g. "http://127.0.0.1:8844".
	URL string
	// Tenant, when non-empty, is sent as the X-UCAD-Tenant header.
	Tenant string
	// Client is the HTTP client (nil means a 10s-timeout default).
	Client  *http.Client
	Backoff Backoff
	Metrics *SourceMetrics
}

// Deliver implements Deliverer.
func (d *HTTPDeliverer) Deliver(ctx context.Context, events []serve.Event) error {
	if len(events) == 0 {
		return nil
	}
	body, err := json.Marshal(events)
	if err != nil {
		return fmt.Errorf("feed: encode batch: %w", err)
	}
	client := d.Client
	if client == nil {
		client = &http.Client{Timeout: 10 * time.Second}
	}
	for attempt := 0; ; attempt++ {
		retryAfter, err := d.post(ctx, client, body)
		if err == nil {
			d.Metrics.delivered(len(events))
			return nil
		}
		if ctx.Err() != nil {
			return ctx.Err()
		}
		var perm *permanentError
		if errors.As(err, &perm) {
			return err
		}
		d.Metrics.retried()
		delay := d.Backoff.delay(attempt)
		if retryAfter > delay {
			delay = retryAfter
		}
		if serr := sleep(ctx, delay); serr != nil {
			return serr
		}
	}
}

// permanentError marks a response retrying cannot fix.
type permanentError struct{ err error }

func (e *permanentError) Error() string { return e.err.Error() }
func (e *permanentError) Unwrap() error { return e.err }

// post sends one batch and classifies the response. The returned
// duration is the server's Retry-After hint (zero if none).
func (d *HTTPDeliverer) post(ctx context.Context, client *http.Client, body []byte) (time.Duration, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, d.URL+"/v1/events", bytes.NewReader(body))
	if err != nil {
		return 0, &permanentError{fmt.Errorf("feed: build request: %w", err)}
	}
	req.Header.Set("Content-Type", "application/json")
	if d.Tenant != "" {
		req.Header.Set(tenant.TenantHeader, d.Tenant)
	}
	resp, err := client.Do(req)
	if err != nil {
		return 0, fmt.Errorf("feed: post events: %w", err)
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	switch {
	case resp.StatusCode >= 200 && resp.StatusCode < 300:
		return 0, nil
	case resp.StatusCode == http.StatusServiceUnavailable || resp.StatusCode == http.StatusTooManyRequests || resp.StatusCode >= 500:
		var after time.Duration
		if s := resp.Header.Get("Retry-After"); s != "" {
			if secs, err := strconv.Atoi(s); err == nil {
				after = time.Duration(secs) * time.Second
			}
		}
		return after, fmt.Errorf("feed: server busy: %s", resp.Status)
	case resp.StatusCode == http.StatusBadRequest:
		// Invalid events cannot become valid by retrying. The server
		// already absorbed the acceptable ones (batched ingestion is
		// per-event), so treat the batch as done.
		return 0, nil
	default:
		return 0, &permanentError{fmt.Errorf("feed: server rejected batch: %s", resp.Status)}
	}
}
