package feed

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"github.com/ucad/ucad/internal/serve"
	"github.com/ucad/ucad/internal/tenant"
)

// Deliverer hands a batch of events to the serving layer. Deliver must
// be all-or-nothing from the feeder's point of view: it returns nil
// only when every deliverable event was acknowledged (invalid events —
// ones the server can never accept — are skipped, not failed), and it
// retries transient rejections internally until ctx is done. Redelivery
// after a partial failure is safe: events carry sequence numbers and
// the serving layer deduplicates.
type Deliverer interface {
	Deliver(ctx context.Context, events []serve.Event) error
}

// Backoff is a capped exponential retry schedule.
type Backoff struct {
	// Min is the first delay (default 50ms).
	Min time.Duration
	// Max caps the delay (default 5s).
	Max time.Duration
}

// delay returns the backoff for the given retry attempt (0-based).
func (b Backoff) delay(attempt int) time.Duration {
	min, max := b.Min, b.Max
	if min <= 0 {
		min = 50 * time.Millisecond
	}
	if max <= 0 {
		max = 5 * time.Second
	}
	d := min << uint(attempt)
	if d > max || d < min { // d < min catches shift overflow
		d = max
	}
	return d
}

// sleep waits out the delay or the context, whichever ends first.
func sleep(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// ServiceDeliverer ingests events directly into an in-process
// serve.Service (the single-binary wiring). Backpressure (ErrBusy) is
// retried with backoff; invalid events are skipped.
type ServiceDeliverer struct {
	Svc     *serve.Service
	Backoff Backoff
	Metrics *SourceMetrics
}

// Deliver implements Deliverer.
func (d *ServiceDeliverer) Deliver(ctx context.Context, events []serve.Event) error {
	for _, ev := range events {
		for attempt := 0; ; attempt++ {
			err := d.Svc.Ingest(ev)
			switch {
			case err == nil:
				d.Metrics.delivered(1)
			case errors.Is(err, serve.ErrInvalid):
				// The server can never accept it; dropping beats wedging
				// the stream.
				d.Metrics.dropped(1)
			case errors.Is(err, serve.ErrBusy):
				d.Metrics.retried()
				if serr := sleep(ctx, d.Backoff.delay(attempt)); serr != nil {
					return serr
				}
				continue
			default:
				return fmt.Errorf("feed: ingest: %w", err)
			}
			break
		}
	}
	return nil
}

// HTTPDeliverer posts event batches to a ucad-serve (or multi-tenant
// router) /v1/events endpoint. Tenant routing follows the server's
// precedence: each event's body tenant field wins, the X-UCAD-Tenant
// header (set from Tenant) covers the rest.
//
// Error responses are classified by the structured error envelope
// ({"error":{"code","message","retryable"}}) when the server sends one:
// retryable errors (backpressure, shutdown, a draining tenant) are
// retried with capped exponential backoff and Retry-After honored; a
// non-retryable error with per-event statuses means the rejected events
// are permanently invalid and skipped (counted in the dropped metric)
// while the accepted ones are done; a non-retryable error without
// statuses (invalid body, unknown tenant) means nothing was absorbed,
// so it is a hard failure rather than silent loss. A replayed batch is
// always safe because the server deduplicates by sequence number.
//
// Responses without an envelope — pre-envelope servers and
// intermediaries — fall back to status-code classification: 503 (with
// Retry-After), 429, 502/504 and transport errors retry indefinitely;
// other 5xx statuses (501, 505, ... — usually a misconfigured endpoint,
// not load) retry a bounded number of times before failing; a 400 is
// trusted only when its body carries per-event statuses. Batches whose
// JSON encoding would exceed the server's request cap are split before
// posting.
//
// With a URL list (URLs) the deliverer fails over between servers, but
// never silently: events only ever post to the established server (the
// one that last acknowledged, initially the first URL). When that server
// becomes unreachable — a dead socket, or an envelope-less 5xx from a
// proxy fronting a dead backend — the others are health-probed
// (GET /healthz), and if one answers, Deliver returns ErrFailover
// WITHOUT delivering the batch: the new server must not see mid-stream
// events before the caller has rewound (a serving-layer dedupe fence
// would jump past the replication gap and the skipped operations could
// never land). The caller rewinds and redelivers; subsequent calls post
// to the new server. A live server's own retryable refusals — an
// envelope-carrying 503 from backpressure, a draining tenant, a standby
// awaiting promotion — are retried in place with backoff and never
// trigger a failover. Failovers() reports how many times the established
// server changed. The deliverer is not safe for concurrent use once URLs
// is set.
type HTTPDeliverer struct {
	// URL is the server base, e.g. "http://127.0.0.1:8844".
	URL string
	// URLs is the failover list of server bases in preference order
	// (primary first, then standbys). When non-empty it takes precedence
	// over URL.
	URLs []string
	// Tenant, when non-empty, is sent as the X-UCAD-Tenant header.
	Tenant string
	// Client is the HTTP client (nil means a 10s-timeout default).
	Client  *http.Client
	Backoff Backoff
	Metrics *SourceMetrics

	// cur indexes targets() at the established server — the only one
	// real events are posted to.
	cur       int
	failovers int64
}

// ErrFailover reports that the established server stopped answering and
// a different URL in the list is healthy. The pending batch was NOT
// delivered to the new server: the caller gets the chance to rewind its
// stream first (see FeederConfig.FailoverRewind), so the first events a
// freshly promoted standby sees are the rewound prefix rather than a
// mid-stream batch that would advance its dedupe fences past the
// replication gap. Calling Deliver again targets the new server.
var ErrFailover = errors.New("feed: delivery failing over to a different server")

// targets resolves the effective URL list.
func (d *HTTPDeliverer) targets() []string {
	if len(d.URLs) > 0 {
		return d.URLs
	}
	return []string{d.URL}
}

// Failovers counts how many times the established server changed. A
// caller that snapshots the count around a Deliver call can tell the
// serving side changed and rewind accordingly.
func (d *HTTPDeliverer) Failovers() int64 { return d.failovers }

// maxBatchBytes bounds one marshalled POST body. The server rejects
// request bodies over 8 MiB outright (serve.DecodeEvents), and that
// rejection is a decode-level 400 where nothing was absorbed — so the
// deliverer splits batches well below the cap instead of finding out.
const maxBatchBytes = 6 << 20

// maxCapped5xxAttempts bounds retries of 5xx statuses other than
// 502/503/504: a 501 or 505 is a misconfigured endpoint, not load, and
// retrying it forever would wedge the feeder instead of surfacing the
// configuration error.
const maxCapped5xxAttempts = 6

// Deliver implements Deliverer.
func (d *HTTPDeliverer) Deliver(ctx context.Context, events []serve.Event) error {
	if len(events) == 0 {
		return nil
	}
	client := d.Client
	if client == nil {
		client = &http.Client{Timeout: 10 * time.Second}
	}
	return d.deliver(ctx, client, events)
}

// deliver posts one batch, splitting it when its encoding would exceed
// the server's request cap.
func (d *HTTPDeliverer) deliver(ctx context.Context, client *http.Client, events []serve.Event) error {
	body, err := json.Marshal(events)
	if err != nil {
		return fmt.Errorf("feed: encode batch: %w", err)
	}
	if len(body) > maxBatchBytes {
		if len(events) == 1 {
			// A single event the server's request cap can never admit:
			// dropping beats wedging the stream, same as an invalid event.
			d.Metrics.dropped(1)
			return nil
		}
		mid := len(events) / 2
		if err := d.deliver(ctx, client, events[:mid]); err != nil {
			return err
		}
		return d.deliver(ctx, client, events[mid:])
	}
	urls := d.targets()
	capped := 0
	for attempt := 0; ; attempt++ {
		d.cur %= len(urls)
		res, err := d.post(ctx, client, urls[d.cur], body, len(events))
		if err == nil {
			d.Metrics.delivered(res.accepted)
			d.Metrics.dropped(res.rejected)
			return nil
		}
		if ctx.Err() != nil {
			return ctx.Err()
		}
		var perm *permanentError
		if errors.As(err, &perm) {
			return err
		}
		if res.cappedRetry {
			if capped++; capped >= maxCapped5xxAttempts {
				return &permanentError{fmt.Errorf("feed: giving up after %d attempts: %w", capped, err)}
			}
		}
		// An unreachable established server — dead socket, or an
		// envelope-less 5xx from a proxy fronting a dead backend — is the
		// failover trigger: probe the other URLs and hand control back
		// before any of them sees real events. A live server's own
		// envelope-carrying refusals (backpressure, draining, awaiting
		// promotion) are retried in place instead: busy is not dead.
		if len(urls) > 1 && !res.serverAlive {
			for next := (d.cur + 1) % len(urls); next != d.cur; next = (next + 1) % len(urls) {
				if d.probe(ctx, client, urls[next]) {
					d.cur = next
					d.failovers++
					d.Metrics.failedOver()
					return ErrFailover
				}
			}
		}
		d.Metrics.retried()
		delay := d.Backoff.delay(attempt)
		if res.retryAfter > delay {
			delay = res.retryAfter
		}
		if serr := sleep(ctx, delay); serr != nil {
			return serr
		}
	}
}

// probe asks url for liveness without sending it any events.
func (d *HTTPDeliverer) probe(ctx context.Context, client *http.Client, url string) bool {
	pctx, cancel := context.WithTimeout(ctx, 2*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(pctx, http.MethodGet, url+"/healthz", nil)
	if err != nil {
		return false
	}
	resp, err := client.Do(req)
	if err != nil {
		return false
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}

// permanentError marks a response retrying cannot fix.
type permanentError struct{ err error }

func (e *permanentError) Error() string { return e.err.Error() }
func (e *permanentError) Unwrap() error { return e.err }

// errorInfo mirrors the unified error envelope's payload
// (serve.ErrorInfo): code names the rejection, retryable tells the
// deliverer whether resending the identical batch can ever succeed.
type errorInfo struct {
	Code      string `json:"code"`
	Message   string `json:"message"`
	Retryable bool   `json:"retryable"`
}

// eventsResponse mirrors the /v1/events response shape shared by
// internal/serve's handler and internal/tenant's router. The top-level
// "error" key is the envelope object on current servers and a bare
// string on pre-envelope ones, so it is captured raw and decoded both
// ways.
type eventsResponse struct {
	Accepted int             `json:"accepted"`
	RawError json.RawMessage `json:"error,omitempty"`
	Events   []struct {
		Status    string `json:"status"`
		Error     string `json:"error,omitempty"`
		Code      string `json:"code,omitempty"`
		Retryable bool   `json:"retryable,omitempty"`
	} `json:"events,omitempty"`
}

// envelope decodes the structured error envelope, nil when the response
// carries none (2xx, a pre-envelope server, or a proxy error page).
func (er *eventsResponse) envelope() *errorInfo {
	if len(er.RawError) == 0 {
		return nil
	}
	var e errorInfo
	if json.Unmarshal(er.RawError, &e) != nil || e.Code == "" {
		return nil
	}
	return &e
}

// legacyError decodes the pre-envelope top-level error string ("" when
// absent or already an envelope object).
func (er *eventsResponse) legacyError() string {
	var s string
	if json.Unmarshal(er.RawError, &s) == nil {
		return s
	}
	return ""
}

// postResult classifies one POST attempt: how many events the server
// acknowledged or permanently refused, plus retry hints on failure.
type postResult struct {
	accepted    int
	rejected    int
	retryAfter  time.Duration
	cappedRetry bool // retryable, but only a bounded number of times
	// serverAlive marks a refusal that provably came from a live serving
	// process (it spoke the error envelope) — retry in place, never a
	// reason to fail over.
	serverAlive bool
}

// post sends one batch of n events to url and classifies the response.
func (d *HTTPDeliverer) post(ctx context.Context, client *http.Client, url string, body []byte, n int) (postResult, error) {
	var res postResult
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url+"/v1/events", bytes.NewReader(body))
	if err != nil {
		return res, &permanentError{fmt.Errorf("feed: build request: %w", err)}
	}
	req.Header.Set("Content-Type", "application/json")
	if d.Tenant != "" {
		req.Header.Set(tenant.TenantHeader, d.Tenant)
	}
	resp, err := client.Do(req)
	if err != nil {
		return res, fmt.Errorf("feed: post events: %w", err)
	}
	rbody, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	var er eventsResponse
	parsed := json.Unmarshal(rbody, &er) == nil

	if resp.StatusCode >= 200 && resp.StatusCode < 300 {
		// A 2xx batch code means no event was rejected, but trust the
		// per-event statuses when present (a lenient proxy could differ).
		res.accepted = n
		if parsed && len(er.Events) > 0 {
			res.accepted = er.Accepted
			res.rejected = n - er.Accepted
		}
		return res, nil
	}

	// Envelope-first: when the response carries the structured error
	// envelope, its retryable bit is authoritative — the server knows
	// whether resending this batch can succeed, which a status code
	// alone can't say (a 503 from a draining tenant and a 503 from a
	// broken proxy look identical on the wire).
	if parsed {
		if env := er.envelope(); env != nil {
			if env.Retryable {
				res.serverAlive = true
				if s := resp.Header.Get("Retry-After"); s != "" {
					if secs, err := strconv.Atoi(s); err == nil {
						res.retryAfter = time.Duration(secs) * time.Second
					}
				}
				return res, fmt.Errorf("feed: server busy (%s): %s", env.Code, resp.Status)
			}
			if len(er.Events) > 0 {
				// Per-event statuses with a non-retryable batch code: the
				// server attempted every event (retryable rejections would
				// have outranked these in the batch code), so the rejected
				// events can never become valid — skip them.
				res.accepted = er.Accepted
				res.rejected = n - er.Accepted
				return res, nil
			}
			// Non-retryable without per-event statuses (invalid_body,
			// unknown_tenant, ...): nothing was absorbed, so "done" would
			// be silent loss.
			return res, &permanentError{fmt.Errorf("feed: server rejected request (%s): %s: %.200s", env.Code, resp.Status, env.Message)}
		}
	}

	// No envelope (a pre-envelope server, a proxy error page, a truncated
	// body): fall back to classifying by status code.
	switch {
	case resp.StatusCode == http.StatusServiceUnavailable || resp.StatusCode == http.StatusTooManyRequests ||
		resp.StatusCode == http.StatusBadGateway || resp.StatusCode == http.StatusGatewayTimeout:
		if s := resp.Header.Get("Retry-After"); s != "" {
			if secs, err := strconv.Atoi(s); err == nil {
				res.retryAfter = time.Duration(secs) * time.Second
			}
		}
		return res, fmt.Errorf("feed: server busy: %s", resp.Status)
	case resp.StatusCode >= 500:
		res.cappedRetry = true
		return res, fmt.Errorf("feed: server error: %s", resp.Status)
	case resp.StatusCode == http.StatusBadRequest:
		if parsed && len(er.Events) > 0 {
			// Per-event statuses: the server attempted every event, and a
			// 400 batch code means none of the rejections are retryable
			// (backpressure would have outranked them to a 503) — the
			// rejected events can never become valid, so skip them.
			res.accepted = er.Accepted
			res.rejected = n - er.Accepted
			return res, nil
		}
		// Decode-level 400 (oversized body, proxy rejection, ...): the
		// server absorbed nothing, so "done" would be silent loss.
		reason := er.legacyError()
		if reason == "" {
			reason = string(rbody)
		}
		return res, &permanentError{fmt.Errorf("feed: server rejected request body: %s: %.200s", resp.Status, reason)}
	default:
		return res, &permanentError{fmt.Errorf("feed: server rejected batch: %s", resp.Status)}
	}
}
