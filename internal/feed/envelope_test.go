package feed

// Tests for envelope-aware response classification: when the server
// sends the unified {"error":{"code","message","retryable"}} envelope,
// its retryable bit outranks the status-code heuristics.

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
)

// TestHTTPDelivererEnvelopeRetryableOverridesCap: a retryable envelope
// keeps the deliverer retrying even on a status the legacy heuristic
// would give up on (a bare 500 is capped at maxCapped5xxAttempts).
func TestHTTPDelivererEnvelopeRetryableOverridesCap(t *testing.T) {
	var posts atomic.Int64
	failures := int64(maxCapped5xxAttempts + 2)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if posts.Add(1) <= failures {
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusInternalServerError)
			w.Write([]byte(`{"accepted":0,"error":{"code":"backpressure","message":"queue full","retryable":true}}`))
			return
		}
		w.WriteHeader(http.StatusAccepted)
		w.Write([]byte(`{"accepted":2}`))
	}))
	defer srv.Close()

	d := &HTTPDeliverer{URL: srv.URL, Backoff: fastBackoff()}
	if err := d.Deliver(context.Background(), smallEvents(2)); err != nil {
		t.Fatalf("retryable envelope gave up: %v", err)
	}
	if got := posts.Load(); got != failures+1 {
		t.Fatalf("posts = %d, want %d", got, failures+1)
	}
}

// TestHTTPDelivererEnvelopeNonRetryableFailsFast: a non-retryable
// envelope without per-event statuses is a hard failure on the first
// attempt, even on a 503 the legacy heuristic would retry forever.
func TestHTTPDelivererEnvelopeNonRetryableFailsFast(t *testing.T) {
	var posts atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		posts.Add(1)
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		w.Write([]byte(`{"accepted":0,"error":{"code":"unknown_tenant","message":"no tenant \"ghost\"","retryable":false}}`))
	}))
	defer srv.Close()

	d := &HTTPDeliverer{URL: srv.URL, Backoff: fastBackoff()}
	if err := d.Deliver(context.Background(), smallEvents(1)); err == nil {
		t.Fatal("non-retryable envelope reported as delivered")
	}
	if got := posts.Load(); got != 1 {
		t.Fatalf("posts = %d, want 1 (must not retry a non-retryable rejection)", got)
	}
}

// TestHTTPDelivererEnvelope404PerEventSkips: the multi-tenant router
// answers a mixed batch with 404 + envelope + per-event statuses. The
// legacy heuristic called any 404 permanent; the envelope's per-event
// statuses prove the server attempted every event, so the accepted ones
// are done and the rejected ones are skipped.
func TestHTTPDelivererEnvelope404PerEventSkips(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusNotFound)
		w.Write([]byte(`{"accepted":1,` +
			`"error":{"code":"unknown_tenant","message":"no tenant \"ghost\"","retryable":false},` +
			`"code":"unknown_tenant",` +
			`"events":[{"status":"accepted"},{"status":"rejected","error":"no tenant","code":"unknown_tenant"}]}`))
	}))
	defer srv.Close()

	sm := NewMetrics(nil).Source("t")
	d := &HTTPDeliverer{URL: srv.URL, Backoff: fastBackoff(), Metrics: sm}
	if err := d.Deliver(context.Background(), smallEvents(2)); err != nil {
		t.Fatalf("per-event envelope 404 should be done: %v", err)
	}
	if got := sm.deliveredEvents.Value(); got != 1 {
		t.Fatalf("delivered = %d, want 1", got)
	}
	if got := sm.droppedEvents.Value(); got != 1 {
		t.Fatalf("dropped = %d, want 1", got)
	}
}

// TestHTTPDelivererLegacyStringErrorStillParses: pre-envelope servers
// send a bare string under "error"; the deliverer must still decode the
// rest of the body (the per-event statuses) instead of treating the
// whole response as unparsable.
func TestHTTPDelivererLegacyStringErrorStillParses(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusBadRequest)
		w.Write([]byte(`{"accepted":1,"error":"serve: event missing sql",` +
			`"events":[{"status":"accepted"},{"status":"rejected","error":"serve: event missing sql"}]}`))
	}))
	defer srv.Close()

	sm := NewMetrics(nil).Source("t")
	d := &HTTPDeliverer{URL: srv.URL, Backoff: fastBackoff(), Metrics: sm}
	if err := d.Deliver(context.Background(), smallEvents(2)); err != nil {
		t.Fatalf("legacy per-event 400 should be done: %v", err)
	}
	if got, want := sm.deliveredEvents.Value(), int64(1); got != want {
		t.Fatalf("delivered = %d, want %d", got, want)
	}
}
