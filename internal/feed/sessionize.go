package feed

import (
	"time"

	"github.com/ucad/ucad/internal/serve"
	"github.com/ucad/ucad/internal/session"
)

// Sessionizer turns a stream of audit operations into serve events
// grouped by (client, connection): each operation is stamped with the
// session's next 1-based sequence number plus the session's epoch, and
// a client idle past the cut-off starts a fresh session under a new
// epoch. Idle gaps are measured in event time (the log's timestamps),
// and so is Sweep: the sessionizer keeps a stream clock — the maximum
// event timestamp seen — so catching up on a backlog of old records
// never mistakes live counters for stale ones the way a wall-clock
// sweep would. The epoch is what lets the serving layer tell a
// post-gap session (Seq restarting at 1 under a higher epoch) apart
// from a redelivery of the previous one.
//
// Its counters are part of the feeder's resume state: Export/Restore
// round-trip them through the checkpoint, so sequence numbers and
// epochs keep counting from the committed prefix after a restart and a
// replayed operation carries the same (Epoch, Seq) it did the first
// time — the property the serving layer's deduplication relies on.
type Sessionizer struct {
	idle  time.Duration
	now   func() time.Time
	state map[string]*SessionSeq
	// epoch is the last assigned session epoch: a monotonic counter
	// persisted in the checkpoint, so a session started after a restart
	// (or after its predecessor's counters were swept) never reuses an
	// epoch the serving layer may still hold open.
	epoch int64
	// stream is the stream clock: the max event timestamp seen.
	stream time.Time
}

// SessionSeq is one client's sessionization state.
type SessionSeq struct {
	// Epoch identifies this session generation (see Sessionizer.epoch).
	Epoch int64 `json:"epoch,omitempty"`
	// Seq is the sequence number of the session's last operation.
	Seq int64 `json:"seq"`
	// Last is the timestamp of the session's last operation.
	Last time.Time `json:"last"`
}

// NewSessionizer builds a sessionizer with the given idle cut-off
// (<= 0 means 10 minutes). now supplies the clock used when a record
// carries no timestamp (nil means time.Now).
func NewSessionizer(idle time.Duration, now func() time.Time) *Sessionizer {
	if idle <= 0 {
		idle = 10 * time.Minute
	}
	if now == nil {
		now = time.Now
	}
	return &Sessionizer{idle: idle, now: now, state: make(map[string]*SessionSeq)}
}

// clientOf mirrors serve.Event.Client: the connection id when the log
// records one, else user@addr.
func clientOf(op session.Operation) string {
	if op.SessionID != "" {
		return op.SessionID
	}
	return op.User + "@" + op.Addr
}

// Event stamps one operation into a serve event addressed to tenant.
func (z *Sessionizer) Event(tenant string, op session.Operation) serve.Event {
	ts := op.Time
	if ts.IsZero() {
		ts = z.now()
	}
	if ts.After(z.stream) {
		z.stream = ts
	}
	client := clientOf(op)
	st := z.state[client]
	if st == nil || ts.Sub(st.Last) > z.idle {
		z.epoch++
		st = &SessionSeq{Epoch: z.epoch}
		z.state[client] = st
	}
	st.Seq++
	st.Last = ts
	return serve.Event{
		Tenant:   tenant,
		ClientID: client,
		User:     op.User,
		Addr:     op.Addr,
		SQL:      op.SQL,
		Time:     op.Time,
		Seq:      st.Seq,
		Epoch:    st.Epoch,
	}
}

// Sweep drops state for clients idle past the cut-off (memory bound);
// their next operation starts a new session — under a fresh epoch, as
// it would have anyway. Idleness is judged against the stream clock,
// never the wall clock, so replaying a backlog of old records cannot
// sweep counters that are live in stream time.
func (z *Sessionizer) Sweep() {
	if z.stream.IsZero() {
		return
	}
	cutoff := z.stream.Add(-z.idle)
	for client, st := range z.state {
		if st.Last.Before(cutoff) {
			delete(z.state, client)
		}
	}
}

// Export snapshots the sequence counters for the checkpoint.
func (z *Sessionizer) Export() map[string]SessionSeq {
	out := make(map[string]SessionSeq, len(z.state))
	for client, st := range z.state {
		out[client] = *st
	}
	return out
}

// Restore installs checkpointed sequence counters (before streaming
// starts) and advances the stream clock and epoch counter past them.
func (z *Sessionizer) Restore(m map[string]SessionSeq) {
	for client, st := range m {
		cp := st
		z.state[client] = &cp
		if cp.Last.After(z.stream) {
			z.stream = cp.Last
		}
		if cp.Epoch > z.epoch {
			z.epoch = cp.Epoch
		}
	}
}

// Epoch returns the last assigned session epoch (checkpointed so a
// restart never reissues one).
func (z *Sessionizer) Epoch() int64 { return z.epoch }

// SetEpoch raises the epoch counter to at least n. It must cover every
// epoch ever issued — Restore alone is not enough, because the
// highest-epoch session may already have been swept from the counters.
func (z *Sessionizer) SetEpoch(n int64) {
	if n > z.epoch {
		z.epoch = n
	}
}
