package feed

import (
	"time"

	"github.com/ucad/ucad/internal/serve"
	"github.com/ucad/ucad/internal/session"
)

// Sessionizer turns a stream of audit operations into serve events
// grouped by (client, connection): each operation is stamped with the
// session's next 1-based sequence number, and a client idle past the
// cut-off starts a fresh session (mirroring the serving assembler's
// idle close-out, so both sides agree on session boundaries).
//
// Its counters are part of the feeder's resume state: Export/Restore
// round-trip them through the checkpoint, so sequence numbers keep
// counting from the committed prefix after a restart and a replayed
// operation carries the same Seq it did the first time — the property
// the serving layer's deduplication relies on.
type Sessionizer struct {
	idle  time.Duration
	now   func() time.Time
	state map[string]*SessionSeq
}

// SessionSeq is one client's sessionization state.
type SessionSeq struct {
	// Seq is the sequence number of the session's last operation.
	Seq int64 `json:"seq"`
	// Last is the timestamp of the session's last operation.
	Last time.Time `json:"last"`
}

// NewSessionizer builds a sessionizer with the given idle cut-off
// (<= 0 means 10 minutes). now supplies the clock used when a record
// carries no timestamp (nil means time.Now).
func NewSessionizer(idle time.Duration, now func() time.Time) *Sessionizer {
	if idle <= 0 {
		idle = 10 * time.Minute
	}
	if now == nil {
		now = time.Now
	}
	return &Sessionizer{idle: idle, now: now, state: make(map[string]*SessionSeq)}
}

// clientOf mirrors serve.Event.Client: the connection id when the log
// records one, else user@addr.
func clientOf(op session.Operation) string {
	if op.SessionID != "" {
		return op.SessionID
	}
	return op.User + "@" + op.Addr
}

// Event stamps one operation into a serve event addressed to tenant.
func (z *Sessionizer) Event(tenant string, op session.Operation) serve.Event {
	ts := op.Time
	if ts.IsZero() {
		ts = z.now()
	}
	client := clientOf(op)
	st := z.state[client]
	if st == nil || ts.Sub(st.Last) > z.idle {
		st = &SessionSeq{}
		z.state[client] = st
	}
	st.Seq++
	st.Last = ts
	return serve.Event{
		Tenant:   tenant,
		ClientID: client,
		User:     op.User,
		Addr:     op.Addr,
		SQL:      op.SQL,
		Time:     op.Time,
		Seq:      st.Seq,
	}
}

// Sweep drops state for clients idle past the cut-off (memory bound);
// their next operation starts a new session, as it would server-side.
func (z *Sessionizer) Sweep() {
	cutoff := z.now().Add(-z.idle)
	for client, st := range z.state {
		if st.Last.Before(cutoff) {
			delete(z.state, client)
		}
	}
}

// Export snapshots the sequence counters for the checkpoint.
func (z *Sessionizer) Export() map[string]SessionSeq {
	out := make(map[string]SessionSeq, len(z.state))
	for client, st := range z.state {
		out[client] = *st
	}
	return out
}

// Restore installs checkpointed sequence counters (before streaming
// starts).
func (z *Sessionizer) Restore(m map[string]SessionSeq) {
	for client, st := range m {
		cp := st
		z.state[client] = &cp
	}
}
