//go:build !unix

package feed

import "os"

// fileIno has no portable equivalent off unix; zero disables
// inode-based rotation detection and the tailer falls back to the
// size-shrink heuristic.
func fileIno(fi os.FileInfo) uint64 { return 0 }
