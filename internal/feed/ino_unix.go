//go:build unix

package feed

import (
	"os"
	"syscall"
)

// fileIno returns the file's inode number, the identity that survives a
// rename-style log rotation. Zero means "unknown" (non-unix stat).
func fileIno(fi os.FileInfo) uint64 {
	if st, ok := fi.Sys().(*syscall.Stat_t); ok {
		return uint64(st.Ino)
	}
	return 0
}
