package feed

// Tests for the HTTP deliverer's response classification: a 400 is only
// "done" when the body proves per-event handling, oversized batches are
// split below the server's request cap, and non-transient 5xx statuses
// cannot wedge the feeder forever.

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"github.com/ucad/ucad/internal/serve"
)

func fastBackoff() Backoff { return Backoff{Min: time.Millisecond, Max: 2 * time.Millisecond} }

func smallEvents(n int) []serve.Event {
	evs := make([]serve.Event, n)
	for i := range evs {
		evs[i] = serve.Event{ClientID: "c", User: "u", SQL: "SELECT 1", Seq: int64(i + 1), Epoch: 1}
	}
	return evs
}

// TestHTTPDelivererDecodeLevel400Fails: a 400 without per-event
// statuses means the server absorbed nothing (body over the request
// cap, proxy rejection); treating it as done would commit the
// checkpoint past data the server never saw.
func TestHTTPDelivererDecodeLevel400Fails(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusBadRequest)
		json.NewEncoder(w).Encode(map[string]string{"error": "invalid JSON body"})
	}))
	defer srv.Close()

	d := &HTTPDeliverer{URL: srv.URL, Backoff: fastBackoff()}
	if err := d.Deliver(context.Background(), smallEvents(2)); err == nil {
		t.Fatal("decode-level 400 reported as delivered")
	}
}

// TestHTTPDelivererPerEvent400SkipsRejected: a 400 whose body carries
// per-event statuses means the server attempted every event; the
// rejected ones are permanently invalid and skipped, and only the
// accepted ones count as delivered.
func TestHTTPDelivererPerEvent400SkipsRejected(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusBadRequest)
		w.Write([]byte(`{"accepted":1,"events":[{"status":"accepted"},{"status":"rejected","error":"serve: event missing sql"}]}`))
	}))
	defer srv.Close()

	sm := NewMetrics(nil).Source("t")
	d := &HTTPDeliverer{URL: srv.URL, Backoff: fastBackoff(), Metrics: sm}
	if err := d.Deliver(context.Background(), smallEvents(2)); err != nil {
		t.Fatalf("per-event 400 should be done: %v", err)
	}
	if got := sm.deliveredEvents.Value(); got != 1 {
		t.Fatalf("delivered = %d, want 1 (only the accepted event)", got)
	}
	if got := sm.droppedEvents.Value(); got != 1 {
		t.Fatalf("dropped = %d, want 1", got)
	}
}

// TestHTTPDelivererSplitsOversizedBatch: batches whose encoding would
// blow the server's 8 MiB request cap are split before posting instead
// of collecting a decode-level 400.
func TestHTTPDelivererSplitsOversizedBatch(t *testing.T) {
	var posts, decoded atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		events, _, err := serve.DecodeEvents(r)
		if err != nil {
			t.Errorf("server rejected a split batch: %v", err)
			w.WriteHeader(http.StatusBadRequest)
			return
		}
		posts.Add(1)
		decoded.Add(int64(len(events)))
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusAccepted)
		json.NewEncoder(w).Encode(map[string]int{"accepted": len(events)})
	}))
	defer srv.Close()

	big := strings.Repeat("a", 3<<20)
	evs := make([]serve.Event, 3)
	for i := range evs {
		evs[i] = serve.Event{ClientID: "c", User: "u", SQL: big, Seq: int64(i + 1), Epoch: 1}
	}
	sm := NewMetrics(nil).Source("t")
	d := &HTTPDeliverer{URL: srv.URL, Backoff: fastBackoff(), Metrics: sm}
	if err := d.Deliver(context.Background(), evs); err != nil {
		t.Fatal(err)
	}
	if decoded.Load() != 3 {
		t.Fatalf("server decoded %d events, want 3", decoded.Load())
	}
	if posts.Load() < 2 {
		t.Fatalf("posts = %d, want >= 2 (batch must have been split)", posts.Load())
	}
	if got := sm.deliveredEvents.Value(); got != 3 {
		t.Fatalf("delivered = %d, want 3", got)
	}
}

// TestHTTPDelivererDropsUndeliverableEvent: a single event too large
// for the server's request cap can never be accepted; it is dropped
// (and counted) rather than wedging the stream.
func TestHTTPDelivererDropsUndeliverableEvent(t *testing.T) {
	var posts atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		posts.Add(1)
		w.WriteHeader(http.StatusAccepted)
	}))
	defer srv.Close()

	sm := NewMetrics(nil).Source("t")
	d := &HTTPDeliverer{URL: srv.URL, Backoff: fastBackoff(), Metrics: sm}
	evs := []serve.Event{{ClientID: "c", User: "u", SQL: strings.Repeat("a", maxBatchBytes+1), Seq: 1, Epoch: 1}}
	if err := d.Deliver(context.Background(), evs); err != nil {
		t.Fatal(err)
	}
	if posts.Load() != 0 {
		t.Fatalf("posted %d oversized bodies", posts.Load())
	}
	if got := sm.droppedEvents.Value(); got != 1 {
		t.Fatalf("dropped = %d, want 1", got)
	}
}

// TestHTTPDeliverer501GivesUp: statuses like 501/505 signal a
// misconfigured endpoint, not load; the deliverer retries a bounded
// number of times and then surfaces the error instead of wedging.
func TestHTTPDeliverer501GivesUp(t *testing.T) {
	var posts atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		posts.Add(1)
		w.WriteHeader(http.StatusNotImplemented)
	}))
	defer srv.Close()

	d := &HTTPDeliverer{URL: srv.URL, Backoff: fastBackoff()}
	if err := d.Deliver(context.Background(), smallEvents(1)); err == nil {
		t.Fatal("perpetual 501 reported as delivered")
	}
	if got := posts.Load(); got != maxCapped5xxAttempts {
		t.Fatalf("posts = %d, want %d", got, maxCapped5xxAttempts)
	}
}
