package feed

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/ucad/ucad/internal/serve"
	"github.com/ucad/ucad/internal/session"
)

// captureServer is a /v1/events endpoint that records every accepted
// event keyed by (client, epoch, seq) — the serving layer's dedupe
// identity — and can be flipped into a hard-down state (plain 503, the
// shape of a dead load balancer backend).
type captureServer struct {
	down atomic.Bool

	mu        sync.Mutex
	events    map[string]serve.Event
	conflicts []string
}

func newCaptureServer() *captureServer {
	return &captureServer{events: make(map[string]serve.Event)}
}

func (c *captureServer) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if c.down.Load() {
		http.Error(w, "down", http.StatusServiceUnavailable)
		return
	}
	if r.URL.Path == "/healthz" {
		fmt.Fprintln(w, "ok")
		return
	}
	var events []serve.Event
	if err := json.NewDecoder(r.Body).Decode(&events); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	c.mu.Lock()
	for _, ev := range events {
		key := fmt.Sprintf("%s/%d/%d", ev.ClientID, ev.Epoch, ev.Seq)
		if prev, ok := c.events[key]; ok && prev.SQL != ev.SQL {
			c.conflicts = append(c.conflicts, key)
			continue
		}
		c.events[key] = ev
	}
	c.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintf(w, `{"accepted":%d}`, len(events))
}

func (c *captureServer) count() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.events)
}

func (c *captureServer) get(key string) (serve.Event, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	ev, ok := c.events[key]
	return ev, ok
}

// TestHTTPDelivererURLFailover drives the failover protocol: sticky on
// the established server, a dead server's batch is held back behind
// ErrFailover (the new server must not see mid-stream events before the
// caller rewinds), and the next Deliver targets the new server.
func TestHTTPDelivererURLFailover(t *testing.T) {
	primary, standby := newCaptureServer(), newCaptureServer()
	ps, ss := httptest.NewServer(primary), httptest.NewServer(standby)
	defer ps.Close()
	defer ss.Close()

	d := &HTTPDeliverer{
		URLs:    []string{ps.URL, ss.URL},
		Backoff: Backoff{Min: time.Millisecond, Max: 2 * time.Millisecond},
	}
	ctx := context.Background()
	ev := func(seq int64) []serve.Event {
		return []serve.Event{{ClientID: "c", Epoch: 1, Seq: seq, SQL: fmt.Sprintf("SELECT %d", seq)}}
	}

	if err := d.Deliver(ctx, ev(1)); err != nil {
		t.Fatal(err)
	}
	if d.Failovers() != 0 || primary.count() != 1 {
		t.Fatalf("first delivery: failovers=%d primary=%d", d.Failovers(), primary.count())
	}

	// Primary dies: the batch is NOT delivered anywhere — the caller is
	// told to rewind first.
	primary.down.Store(true)
	if err := d.Deliver(ctx, ev(2)); !errors.Is(err, ErrFailover) {
		t.Fatalf("dead primary: err=%v, want ErrFailover", err)
	}
	if d.Failovers() != 1 || standby.count() != 0 {
		t.Fatalf("failover handshake: failovers=%d standby=%d (no events may land before the rewind)",
			d.Failovers(), standby.count())
	}
	if err := d.Deliver(ctx, ev(2)); err != nil {
		t.Fatal(err)
	}
	if standby.count() != 1 {
		t.Fatalf("post-failover delivery: standby=%d", standby.count())
	}

	// Sticky: the standby keeps the stream even though the list prefers
	// the primary — no flapping probe back while it acknowledges.
	if err := d.Deliver(ctx, ev(3)); err != nil {
		t.Fatal(err)
	}
	if d.Failovers() != 1 || standby.count() != 2 {
		t.Fatalf("sticky delivery: failovers=%d standby=%d", d.Failovers(), standby.count())
	}

	// Standby dies, primary recovered: same handshake back.
	primary.down.Store(false)
	standby.down.Store(true)
	if err := d.Deliver(ctx, ev(4)); !errors.Is(err, ErrFailover) {
		t.Fatalf("dead standby: err=%v, want ErrFailover", err)
	}
	if err := d.Deliver(ctx, ev(4)); err != nil {
		t.Fatal(err)
	}
	if d.Failovers() != 2 || primary.count() != 2 {
		t.Fatalf("failback delivery: failovers=%d primary=%d", d.Failovers(), primary.count())
	}
}

// TestHTTPDelivererBusyIsNotDead pins the busy-vs-dead distinction: an
// envelope-carrying retryable refusal comes from a live server, so the
// deliverer retries in place instead of failing over.
func TestHTTPDelivererBusyIsNotDead(t *testing.T) {
	standby := newCaptureServer()
	ss := httptest.NewServer(standby)
	defer ss.Close()

	var busyHits atomic.Int64
	busy := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/healthz" {
			fmt.Fprintln(w, "ok")
			return
		}
		if busyHits.Add(1) < 3 {
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprint(w, `{"error":{"code":"busy","message":"queue full","retryable":true}}`)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprint(w, `{"accepted":1}`)
	}))
	defer busy.Close()

	d := &HTTPDeliverer{
		URLs:    []string{busy.URL, ss.URL},
		Backoff: Backoff{Min: time.Millisecond, Max: 2 * time.Millisecond},
	}
	if err := d.Deliver(context.Background(), []serve.Event{{ClientID: "c", Epoch: 1, Seq: 1, SQL: "SELECT 1"}}); err != nil {
		t.Fatal(err)
	}
	if d.Failovers() != 0 || standby.count() != 0 {
		t.Fatalf("backpressure caused a failover: failovers=%d standby=%d", d.Failovers(), standby.count())
	}
	if busyHits.Load() < 3 {
		t.Fatalf("busy server saw %d attempts, want the retries", busyHits.Load())
	}
}

// TestTailerRewind proves a mid-run rewind rereads the same records the
// first pass returned from the captured position onward.
func TestTailerRewind(t *testing.T) {
	path := filepath.Join(t.TempDir(), "audit.jsonl")
	var lines []string
	for i := 0; i < 6; i++ {
		lines = append(lines, jsonOp(t, session.Operation{User: "app", SessionID: "s1", SQL: fmt.Sprintf("SELECT %d", i)}))
	}
	writeLines(t, path, lines...)

	tl := newTestTailer(t, path)
	var mark FilePos
	var first []string
	for i := 0; i < 6; i++ {
		op := mustNext(t, tl)
		if i == 1 {
			mark = tl.Pos() // just past record 1
		}
		if i >= 2 {
			first = append(first, op.SQL)
		}
	}
	if err := tl.Rewind(mark); err != nil {
		t.Fatal(err)
	}
	for i, want := range first {
		if got := mustNext(t, tl).SQL; got != want {
			t.Fatalf("replayed record %d: got %q want %q", i, got, want)
		}
	}
}

// TestFeederFailoverRewindExactlyOnce is the feed half of the failover
// story: a feeder streaming to a primary/standby URL pair loses the
// primary mid-stream, rotates to the standby, rewinds to its retained
// failover point, and redelivers — the standby alone ends with every
// operation exactly once under the same (epoch, seq) labels the first
// pass issued.
func TestFeederFailoverRewindExactlyOnce(t *testing.T) {
	dir := t.TempDir()
	logPath := filepath.Join(dir, "audit.jsonl")
	ckptPath := filepath.Join(dir, "feed.ckpt")

	base := time.Date(2026, 8, 6, 12, 0, 0, 0, time.UTC)
	line := func(i int) string {
		return jsonOp(t, session.Operation{
			User: "app", SessionID: "s1",
			SQL:  fmt.Sprintf("SELECT %d", i),
			Time: base.Add(time.Duration(i) * time.Second),
		})
	}
	const total = 40
	for i := 0; i < total/2; i++ {
		writeLines(t, logPath, line(i))
	}

	primary, standby := newCaptureServer(), newCaptureServer()
	ps, ss := httptest.NewServer(primary), httptest.NewServer(standby)
	defer ps.Close()
	defer ss.Close()

	tl, err := NewTailer(TailerConfig{Path: logPath, Poll: 2 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer tl.Close()
	f, err := NewFeeder(FeederConfig{
		Source: tl,
		Deliver: &HTTPDeliverer{
			URLs:    []string{ps.URL, ss.URL},
			Backoff: Backoff{Min: time.Millisecond, Max: 2 * time.Millisecond},
		},
		CheckpointPath: ckptPath,
		BatchSize:      4,
		FlushInterval:  5 * time.Millisecond,
		// A huge window pins the rewind target at the stream's start, so
		// the standby must independently end up with the complete
		// session — the strongest form of the zero-loss claim.
		FailoverRewind: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- f.Run(ctx) }()

	waitFor := func(what string, cond func() bool) {
		t.Helper()
		deadline := time.Now().Add(10 * time.Second)
		for !cond() {
			if time.Now().After(deadline) {
				cancel()
				t.Fatalf("timed out waiting for %s (primary=%d standby=%d)",
					what, primary.count(), standby.count())
			}
			time.Sleep(2 * time.Millisecond)
		}
	}

	// Let the primary absorb the first half, then kill it and finish the
	// stream: delivery must rotate to the standby and rewind.
	waitFor("primary to absorb the first half", func() bool { return primary.count() >= total/2 })
	primary.down.Store(true)
	for i := total / 2; i < total; i++ {
		writeLines(t, logPath, line(i))
	}
	waitFor("standby to hold the full stream", func() bool { return standby.count() >= total })

	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("feeder exit: %v", err)
	}

	// Exactly once, same labels: one session, seq 1..total, each seq
	// carrying the SQL the first pass assigned it, no conflicting
	// duplicates anywhere.
	standby.mu.Lock()
	conflicts := append([]string(nil), standby.conflicts...)
	standby.mu.Unlock()
	if len(conflicts) != 0 {
		t.Fatalf("conflicting redeliveries at %v", conflicts)
	}
	if n := standby.count(); n != total {
		t.Fatalf("standby holds %d events, want %d", n, total)
	}
	for i := 0; i < total; i++ {
		key := fmt.Sprintf("s1/1/%d", i+1)
		ev, ok := standby.get(key)
		if !ok {
			t.Fatalf("standby missing %s", key)
		}
		if want := fmt.Sprintf("SELECT %d", i); ev.SQL != want {
			t.Fatalf("%s: got %q want %q", key, ev.SQL, want)
		}
	}

	// The rewind was committed: the checkpoint carries the retained
	// failover state so a crash mid-redelivery resumes behind the
	// window too.
	b, err := os.ReadFile(ckptPath)
	if err != nil {
		t.Fatal(err)
	}
	var cp Checkpoint
	if err := json.Unmarshal(b, &cp); err != nil {
		t.Fatal(err)
	}
	if cp.Failover == nil || cp.Failover.Active == nil {
		t.Fatalf("checkpoint lacks failover state: %s", b)
	}
}
