package feed

import (
	"context"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"github.com/ucad/ucad/internal/session"
)

// TailerConfig configures a file tailer.
type TailerConfig struct {
	// Path is the audit log file to follow.
	Path string
	// Format selects the line parser: "jsonl" (default; the
	// session.Operation wire format, one JSON object per line) or "csv"
	// (ts,user,addr,session_id,sql — see ParseCSVLine).
	Format string
	// Poll is how often the tailer re-checks the file for new bytes or
	// rotation once it has caught up (default 50ms).
	Poll time.Duration
	// Metrics receives per-source instrumentation (nil disables).
	Metrics *SourceMetrics
}

// Tailer follows an audit log file like tail -F: it returns complete
// records in order, waits at EOF for the writer, follows rotation
// (rename-and-recreate: the renamed file is drained to its end before
// the new one starts) and truncation (copytruncate: reading restarts at
// zero), and never returns a torn record — a trailing line without its
// newline is held until the writer finishes it, unless the file was
// rotated away, in which case the remnant is parsed as-is or counted as
// a parse error.
//
// Pos/SeekTo expose the byte position after the last returned record,
// pinned to the file's inode, so a Feeder checkpoint resumes exactly
// where delivery stopped even if the file rotated in between. The
// tailer follows one rotation at a time: if the log rotates more than
// once between polls (or while the feeder is down and the checkpointed
// file is gone), the skipped generations are counted in the
// ucad_feed_rotation_gaps_total metric rather than lost silently. Not
// safe for concurrent use.
type Tailer struct {
	cfg   TailerConfig
	parse func([]byte) (session.Operation, error)

	f        *os.File
	ino      uint64
	readOff  int64  // bytes consumed from f into the line queue
	retOff   int64  // offset just past the last line returned by Next
	queue    []tline
	partial  []byte
	draining bool // f is a rotated-away file; switch to cfg.Path at EOF

	// rotatePolls counts consecutive quiet polls since rotation was
	// detected; the old descriptor is only abandoned after rotateGrace
	// of them, because a writer holding the renamed file open may still
	// be finishing a half-written record (rotation mid-record).
	rotatePolls int

	// expectIno is the live file's inode observed when rotation was
	// first detected. If the file the tailer eventually reopens has a
	// different inode, the log rotated again in between and at least one
	// intermediate generation was skipped — counted as a rotation gap.
	expectIno uint64
}

// rotateGrace is how many quiet poll cycles the tailer keeps draining a
// rotated-away file before flushing its unterminated tail and moving on.
const rotateGrace = 2

// tline is one complete line and the file offset just past its newline.
type tline struct {
	text []byte
	end  int64
}

// NewTailer builds a tailer. The file may not exist yet; Next waits for
// it to appear.
func NewTailer(cfg TailerConfig) (*Tailer, error) {
	if cfg.Poll <= 0 {
		cfg.Poll = 50 * time.Millisecond
	}
	t := &Tailer{cfg: cfg}
	switch cfg.Format {
	case "", "jsonl":
		t.parse = ParseJSONLine
	case "csv":
		t.parse = ParseCSVLine
	default:
		return nil, fmt.Errorf("feed: unknown tail format %q (want jsonl or csv)", cfg.Format)
	}
	return t, nil
}

// Pos returns the resume position after the last returned record.
func (t *Tailer) Pos() FilePos { return FilePos{Ino: t.ino, Offset: t.retOff} }

// SeekTo resumes at a committed position. If the inode no longer
// belongs to cfg.Path (the log rotated while the feeder was down), the
// rotated file is located among its directory siblings and drained
// first; if it is gone entirely, reading restarts at the head of the
// current file (redelivery, which the serving layer deduplicates).
func (t *Tailer) SeekTo(pos FilePos) error {
	if t.f != nil {
		return fmt.Errorf("feed: SeekTo after reading started")
	}
	if pos.Ino == 0 {
		return nil
	}
	open := func(path string, off int64, draining bool) error {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		if _, err := f.Seek(off, io.SeekStart); err != nil {
			f.Close()
			return err
		}
		t.f, t.ino, t.readOff, t.retOff, t.draining = f, pos.Ino, off, off, draining
		return nil
	}
	if st, err := os.Stat(t.cfg.Path); err == nil && fileIno(st) == pos.Ino {
		if st.Size() >= pos.Offset {
			return open(t.cfg.Path, pos.Offset, false)
		}
		// Truncated below the checkpoint: whatever was committed past the
		// truncation point cannot be re-read — restart from scratch.
		t.cfg.Metrics.rotationGap()
		return nil
	}
	// The checkpointed inode is not at Path: look for the rotated file.
	matches, _ := filepath.Glob(t.cfg.Path + "*")
	for _, m := range matches {
		if st, err := os.Stat(m); err == nil && fileIno(st) == pos.Ino && st.Size() >= pos.Offset {
			return open(m, pos.Offset, true)
		}
	}
	// Rotated file deleted while the feeder was down: the tail of that
	// generation (and any intermediates) is unrecoverable — restart from
	// the current head.
	t.cfg.Metrics.rotationGap()
	return nil
}

// Rewind discards everything buffered and re-seeks to an earlier
// committed position, mid-run — the failover path: after delivery
// switches to a standby that may be missing the old primary's
// unreplicated tail, the feeder re-reads from a retained older position
// and the serving layer's sequence dedupe absorbs the overlap. The
// same rotation-loss rules as SeekTo apply: a position whose file is
// gone restarts at the head of the current file and counts a rotation
// gap.
func (t *Tailer) Rewind(pos FilePos) error {
	if t.f != nil {
		t.f.Close()
		t.f = nil
	}
	t.queue, t.partial = nil, nil
	t.ino, t.readOff, t.retOff = 0, 0, 0
	t.draining = false
	t.rotatePolls = 0
	t.expectIno = 0
	return t.SeekTo(pos)
}

// Next returns the next parsed record, blocking for the writer.
// Unparsable lines are counted (parse errors metric) and skipped.
func (t *Tailer) Next(ctx context.Context) (session.Operation, error) {
	for {
		if op, ok := t.popLine(); ok {
			return op, nil
		}
		progressed, err := t.fill()
		if err != nil {
			return session.Operation{}, err
		}
		if progressed {
			continue
		}
		select {
		case <-ctx.Done():
			return session.Operation{}, ctx.Err()
		case <-time.After(t.cfg.Poll):
		}
	}
}

// popLine parses queued complete lines until one yields a record.
func (t *Tailer) popLine() (session.Operation, bool) {
	for len(t.queue) > 0 {
		ln := t.queue[0]
		t.queue = t.queue[1:]
		t.retOff = ln.end
		t.cfg.Metrics.lineRead()
		op, err := t.parse(ln.text)
		if err != nil {
			t.cfg.Metrics.parseError()
			continue
		}
		return op, true
	}
	return session.Operation{}, false
}

// fill reads new bytes from the current file into the line queue, or
// reacts to rotation/truncation. It reports whether it made progress
// (the caller should retry immediately rather than poll-sleep).
func (t *Tailer) fill() (bool, error) {
	if t.f == nil {
		f, err := os.Open(t.cfg.Path)
		if err != nil {
			if os.IsNotExist(err) {
				return false, nil // wait for the writer to create it
			}
			return false, err
		}
		st, err := f.Stat()
		if err != nil {
			f.Close()
			return false, err
		}
		t.f, t.ino, t.readOff, t.retOff = f, fileIno(st), 0, 0
		if t.expectIno != 0 {
			if t.ino != t.expectIno {
				// The log rotated again while the old generation was
				// draining: whatever lived at Path in between is gone.
				t.cfg.Metrics.rotationGap()
			}
			t.expectIno = 0
		}
		return true, nil
	}

	var buf [64 * 1024]byte
	n, err := t.f.Read(buf[:])
	if n > 0 {
		t.rotatePolls = 0
		t.absorb(buf[:n])
		t.updateLag()
		return true, nil
	}
	if err != nil && err != io.EOF {
		return false, err
	}

	// At EOF: is the file we hold still the live one?
	st, serr := os.Stat(t.cfg.Path)
	switch {
	case t.draining || serr != nil || (t.ino != 0 && fileIno(st) != t.ino):
		// Rotated away (or we were already draining a rotated file and
		// hit its end). The writer may still finish a half-written
		// record through its old handle, so keep reading the old
		// descriptor for rotateGrace quiet polls before flushing the
		// remnant and switching to the new file.
		if serr != nil && !os.IsNotExist(serr) {
			return false, serr
		}
		if t.expectIno == 0 && serr == nil {
			t.expectIno = fileIno(st) // the generation we expect to open next
		}
		if t.rotatePolls < rotateGrace {
			t.rotatePolls++
			return false, nil
		}
		t.flushPartial()
		t.f.Close()
		t.f = nil // next fill opens cfg.Path fresh
		t.draining = false
		t.rotatePolls = 0
		return true, nil
	case st.Size() < t.readOff:
		// Truncated in place (copytruncate): restart from the head. The
		// partial tail belonged to the overwritten content.
		if _, err := t.f.Seek(0, io.SeekStart); err != nil {
			return false, err
		}
		t.partial = nil
		t.readOff, t.retOff = 0, 0
		return true, nil
	}
	t.updateLag()
	return false, nil
}

// absorb splits newly read bytes into complete lines plus a partial
// tail.
func (t *Tailer) absorb(b []byte) {
	t.partial = append(t.partial, b...)
	t.readOff += int64(len(b))
	base := t.readOff - int64(len(t.partial))
	start := 0
	for i := 0; i < len(t.partial); i++ {
		if t.partial[i] == '\n' {
			line := append([]byte(nil), t.partial[start:i]...)
			t.queue = append(t.queue, tline{text: line, end: base + int64(i) + 1})
			start = i + 1
		}
	}
	t.partial = append(t.partial[:0], t.partial[start:]...)
}

// flushPartial queues the unterminated tail of a rotated-away file as a
// final line. Reports whether anything was flushed.
func (t *Tailer) flushPartial() bool {
	if len(t.partial) == 0 {
		return false
	}
	t.queue = append(t.queue, tline{text: append([]byte(nil), t.partial...), end: t.readOff})
	t.partial = nil
	return true
}

// updateLag exports how many bytes the live file holds beyond what was
// returned to the consumer.
func (t *Tailer) updateLag() {
	if t.cfg.Metrics == nil {
		return
	}
	if st, err := os.Stat(t.cfg.Path); err == nil {
		lag := st.Size() - t.retOff
		if t.draining || fileIno(st) != t.ino {
			lag = st.Size() // everything in the new file is still ahead
		}
		if lag < 0 {
			lag = 0
		}
		t.cfg.Metrics.setLagBytes(float64(lag))
	}
}

// Close releases the tailed file.
func (t *Tailer) Close() error {
	if t.f == nil {
		return nil
	}
	err := t.f.Close()
	t.f = nil
	return err
}
