package feed

import (
	"context"
	"errors"
	"io"
	"sync"

	"github.com/ucad/ucad/internal/session"
)

// DBSource is an in-process source fed straight from a database engine's
// audit hook (it implements minidb.AuditSink). Operations buffer in a
// bounded channel; Append blocks when the feeder falls behind, which
// pushes backpressure into the database's statement path rather than
// dropping audit records.
//
// DBSource has no durable position — it is the single-binary wiring
// where the engine, feeder and detector share a process and restart
// together. Deployments that need resume-after-crash should log through
// minidb.AuditWriter and tail the file instead.
type DBSource struct {
	ch   chan session.Operation
	mu   sync.Mutex
	done chan struct{}
	// closed (under mu) rejects new Appends once Close has begun, and wg
	// tracks Appends already past that gate: the consumer waits out both
	// before concluding the buffer is final, so an Append that deposited
	// its operation concurrently with Close is always drained — never
	// acknowledged to the audit path and then dropped.
	closed bool
	wg     sync.WaitGroup
}

// NewDBSource builds a source with the given buffer depth (<= 0 means
// 1024).
func NewDBSource(depth int) *DBSource {
	if depth <= 0 {
		depth = 1024
	}
	return &DBSource{ch: make(chan session.Operation, depth), done: make(chan struct{})}
}

// ErrSourceClosed reports an Append after Close.
var ErrSourceClosed = errors.New("feed: source closed")

// Append implements minidb.AuditSink.
func (s *DBSource) Append(op session.Operation) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrSourceClosed
	}
	s.wg.Add(1)
	s.mu.Unlock()
	defer s.wg.Done()
	select {
	case s.ch <- op:
		return nil
	case <-s.done:
		return ErrSourceClosed
	}
}

// Next implements Source. After Close it drains the buffer, then
// reports io.EOF.
func (s *DBSource) Next(ctx context.Context) (session.Operation, error) {
	select {
	case op := <-s.ch:
		return op, nil
	default:
	}
	select {
	case op := <-s.ch:
		return op, nil
	case <-s.done:
		// Closed mid-wait. Appends that passed the closed-flag gate may
		// still be depositing into the buffer; wait them out (no new ones
		// can start) so an acknowledged operation is never left behind.
		s.wg.Wait()
		select {
		case op := <-s.ch:
			return op, nil
		default:
			return session.Operation{}, io.EOF
		}
	case <-ctx.Done():
		return session.Operation{}, ctx.Err()
	}
}

// Close implements Source; it unblocks waiting producers and consumers.
func (s *DBSource) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.closed {
		s.closed = true
		close(s.done)
	}
	return nil
}
