package feed

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"github.com/ucad/ucad/internal/core"
	"github.com/ucad/ucad/internal/serve"
	"github.com/ucad/ucad/internal/session"
)

// normalTemplates mirrors the serve package's deterministic test
// workload: 8 templates, and TopP = Vocab-1 during training means only
// out-of-vocabulary statements flag.
var normalTemplates = []func(i int) string{
	func(i int) string { return fmt.Sprintf("SELECT * FROM videos WHERE vid = %d", i) },
	func(i int) string { return fmt.Sprintf("SELECT * FROM users WHERE uid = %d", i) },
	func(i int) string { return fmt.Sprintf("INSERT INTO views (vid, uid) VALUES (%d, %d)", i, i+1) },
	func(i int) string { return fmt.Sprintf("UPDATE stats SET views = %d WHERE vid = %d", i, i) },
	func(i int) string { return fmt.Sprintf("SELECT * FROM comments WHERE vid = %d", i) },
	func(i int) string {
		return fmt.Sprintf("INSERT INTO comments (vid, uid, text) VALUES (%d, %d, 'c%d')", i, i, i)
	},
	func(i int) string { return fmt.Sprintf("DELETE FROM comments WHERE cid = %d", i) },
	func(i int) string { return fmt.Sprintf("SELECT * FROM stats WHERE vid = %d", i) },
}

const anomalySQL = "SELECT * FROM credit_cards WHERE uid = 7"

func normalStatement(pos int) string {
	return normalTemplates[pos%len(normalTemplates)](pos)
}

func testUCAD(tb testing.TB) *core.UCAD {
	tb.Helper()
	var sessions []*session.Session
	for i := 0; i < 16; i++ {
		s := &session.Session{ID: fmt.Sprintf("train-%d", i), User: "app"}
		for p := 0; p < 12; p++ {
			s.Ops = append(s.Ops, session.Operation{SQL: normalStatement(i + p)})
		}
		sessions = append(sessions, s)
	}
	cfg := core.DefaultConfig()
	cfg.SkipClean = true
	cfg.Model.Hidden = 4
	cfg.Model.Heads = 2
	cfg.Model.Blocks = 1
	cfg.Model.Window = 8
	cfg.Model.Epochs = 2
	cfg.Model.Dropout = 0
	cfg.Model.MinContext = 2
	cfg.Model.TopP = len(normalTemplates)
	u, err := core.Train(cfg, sessions, nil)
	if err != nil {
		tb.Fatal(err)
	}
	return u
}

// fakeClock is a settable clock shared by the service under test.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{now: time.Date(2026, 8, 7, 12, 0, 0, 0, time.UTC)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

func newTestService(tb testing.TB, clk *fakeClock) *serve.Service {
	tb.Helper()
	cfg := serve.DefaultConfig()
	cfg.Workers = 2
	cfg.SweepEvery = 0
	if clk != nil {
		cfg.Clock = clk.Now
	}
	svc := serve.NewService(testUCAD(tb), cfg)
	tb.Cleanup(svc.Stop)
	return svc
}

func writeLines(tb testing.TB, path string, lines ...string) {
	tb.Helper()
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		tb.Fatal(err)
	}
	defer f.Close()
	for _, ln := range lines {
		if _, err := f.WriteString(ln + "\n"); err != nil {
			tb.Fatal(err)
		}
	}
}

func jsonOp(tb testing.TB, op session.Operation) string {
	tb.Helper()
	b, err := json.Marshal(op)
	if err != nil {
		tb.Fatal(err)
	}
	return string(b)
}

func mustNext(tb testing.TB, t *Tailer) session.Operation {
	tb.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	op, err := t.Next(ctx)
	if err != nil {
		tb.Fatalf("Next: %v", err)
	}
	return op
}

func newTestTailer(tb testing.TB, path string) *Tailer {
	tb.Helper()
	t, err := NewTailer(TailerConfig{Path: path, Poll: 2 * time.Millisecond})
	if err != nil {
		tb.Fatal(err)
	}
	tb.Cleanup(func() { t.Close() })
	return t
}

func TestTailerReadsJSONLInOrder(t *testing.T) {
	path := filepath.Join(t.TempDir(), "audit.jsonl")
	var lines []string
	for i := 0; i < 5; i++ {
		lines = append(lines, jsonOp(t, session.Operation{User: "app", SessionID: "s1", SQL: normalStatement(i)}))
	}
	writeLines(t, path, lines...)

	tl := newTestTailer(t, path)
	for i := 0; i < 5; i++ {
		op := mustNext(t, tl)
		if op.SQL != normalStatement(i) {
			t.Fatalf("op %d: got %q, want %q", i, op.SQL, normalStatement(i))
		}
	}
	if pos := tl.Pos(); pos.Offset == 0 || pos.Ino == 0 {
		t.Fatalf("Pos after reading = %+v, want nonzero ino and offset", pos)
	}
	// Appended lines arrive without reopening.
	writeLines(t, path, jsonOp(t, session.Operation{User: "app", SessionID: "s1", SQL: normalStatement(5)}))
	if op := mustNext(t, tl); op.SQL != normalStatement(5) {
		t.Fatalf("appended op: got %q", op.SQL)
	}
}

func TestTailerSkipsUnparsableLines(t *testing.T) {
	path := filepath.Join(t.TempDir(), "audit.jsonl")
	writeLines(t, path,
		"{not json",
		jsonOp(t, session.Operation{User: "app", SQL: "SELECT 1"}),
		`{"user":"app"}`, // missing sql
		jsonOp(t, session.Operation{User: "app", SQL: "SELECT 2"}),
	)
	tl := newTestTailer(t, path)
	if op := mustNext(t, tl); op.SQL != "SELECT 1" {
		t.Fatalf("got %q, want SELECT 1", op.SQL)
	}
	if op := mustNext(t, tl); op.SQL != "SELECT 2" {
		t.Fatalf("got %q, want SELECT 2", op.SQL)
	}
}

// TestTailerRotationMidRecord renames the log while the writer is
// mid-line, finishes the record through the old handle, and starts a
// fresh file at the path. Every record must come through exactly once.
func TestTailerRotationMidRecord(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "audit.jsonl")
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	rec1 := jsonOp(t, session.Operation{User: "app", SQL: "SELECT 1"})
	rec2 := jsonOp(t, session.Operation{User: "app", SQL: "SELECT 2"})
	rec3 := jsonOp(t, session.Operation{User: "app", SQL: "SELECT 3"})

	half := len(rec2) / 2
	if _, err := f.WriteString(rec1 + "\n" + rec2[:half]); err != nil {
		t.Fatal(err)
	}

	tl := newTestTailer(t, path)
	if op := mustNext(t, tl); op.SQL != "SELECT 1" {
		t.Fatalf("got %q, want SELECT 1", op.SQL)
	}

	// Rotate while record 2 is torn, then finish it via the old handle.
	if err := os.Rename(path, path+".1"); err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(rec2[half:] + "\n"); err != nil {
		t.Fatal(err)
	}
	if op := mustNext(t, tl); op.SQL != "SELECT 2" {
		t.Fatalf("after rotation: got %q, want SELECT 2", op.SQL)
	}

	// New file at the path: the tailer must move over to it.
	writeLines(t, path, rec3)
	if op := mustNext(t, tl); op.SQL != "SELECT 3" {
		t.Fatalf("post-rotation file: got %q, want SELECT 3", op.SQL)
	}
}

// TestTailerResumeAcrossRotation checkpoints a position, rotates the
// file, and proves a fresh tailer drains the rotated file from the
// checkpoint before switching to the new one.
func TestTailerResumeAcrossRotation(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "audit.jsonl")
	recs := make([]string, 6)
	for i := range recs {
		recs[i] = jsonOp(t, session.Operation{User: "app", SQL: fmt.Sprintf("SELECT %d", i)})
	}
	writeLines(t, path, recs[:4]...)

	tl := newTestTailer(t, path)
	for i := 0; i < 2; i++ {
		mustNext(t, tl)
	}
	pos := tl.Pos()
	tl.Close()

	// Rotate, then append the rest to the new file.
	if err := os.Rename(path, path+".1"); err != nil {
		t.Fatal(err)
	}
	writeLines(t, path, recs[4:]...)

	tl2 := newTestTailer(t, path)
	if err := tl2.SeekTo(pos); err != nil {
		t.Fatal(err)
	}
	want := []string{"SELECT 2", "SELECT 3", "SELECT 4", "SELECT 5"}
	for i, w := range want {
		if op := mustNext(t, tl2); op.SQL != w {
			t.Fatalf("resumed op %d: got %q, want %q", i, op.SQL, w)
		}
	}
}

func TestTailerTruncationRestartsAtHead(t *testing.T) {
	path := filepath.Join(t.TempDir(), "audit.jsonl")
	writeLines(t, path,
		jsonOp(t, session.Operation{User: "app", SQL: "SELECT 1"}),
		jsonOp(t, session.Operation{User: "app", SQL: "SELECT 2"}),
	)
	tl := newTestTailer(t, path)
	mustNext(t, tl)
	mustNext(t, tl)

	// copytruncate: same inode, size drops to zero, new content follows.
	if err := os.Truncate(path, 0); err != nil {
		t.Fatal(err)
	}
	writeLines(t, path, jsonOp(t, session.Operation{User: "app", SQL: "SELECT 3"}))
	if op := mustNext(t, tl); op.SQL != "SELECT 3" {
		t.Fatalf("after truncation: got %q, want SELECT 3", op.SQL)
	}
	if pos := tl.Pos(); pos.Offset >= 100 {
		t.Fatalf("offset %d not reset by truncation", pos.Offset)
	}
}

func TestParseCSVLine(t *testing.T) {
	op, err := ParseCSVLine([]byte(`2026-08-07T12:00:00Z,alice,10.0.0.7,conn-1,"SELECT * FROM t WHERE a = 1, b = 2"`))
	if err != nil {
		t.Fatal(err)
	}
	if op.User != "alice" || op.Addr != "10.0.0.7" || op.SessionID != "conn-1" {
		t.Fatalf("bad fields: %+v", op)
	}
	if op.SQL != "SELECT * FROM t WHERE a = 1, b = 2" {
		t.Fatalf("bad sql: %q", op.SQL)
	}
	if op.Time.IsZero() {
		t.Fatal("timestamp not parsed")
	}
	if _, err := ParseCSVLine([]byte(`,u,a,s`)); err == nil {
		t.Fatal("want error for wrong field count")
	}
}

func TestDBSourceBuffersAndDrains(t *testing.T) {
	src := NewDBSource(4)
	for i := 0; i < 3; i++ {
		if err := src.Append(session.Operation{SQL: fmt.Sprintf("SELECT %d", i)}); err != nil {
			t.Fatal(err)
		}
	}
	src.Close()
	ctx := context.Background()
	for i := 0; i < 3; i++ {
		op, err := src.Next(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if op.SQL != fmt.Sprintf("SELECT %d", i) {
			t.Fatalf("op %d: %q", i, op.SQL)
		}
	}
	if _, err := src.Next(ctx); !errors.Is(err, io.EOF) {
		t.Fatalf("drained source: err = %v, want io.EOF", err)
	}
	if err := src.Append(session.Operation{SQL: "SELECT 9"}); !errors.Is(err, ErrSourceClosed) {
		t.Fatalf("append after close: %v", err)
	}
}

func TestSessionizerSeqAndIdleCut(t *testing.T) {
	clk := newFakeClock()
	z := NewSessionizer(time.Minute, clk.Now)
	opAt := func(client string, ts time.Time) serve.Event {
		return z.Event("", session.Operation{SessionID: client, SQL: "SELECT 1", Time: ts})
	}
	base := clk.Now()
	if ev := opAt("c1", base); ev.Seq != 1 {
		t.Fatalf("first op Seq = %d", ev.Seq)
	}
	if ev := opAt("c1", base.Add(time.Second)); ev.Seq != 2 {
		t.Fatalf("second op Seq = %d", ev.Seq)
	}
	if ev := opAt("c2", base.Add(time.Second)); ev.Seq != 1 {
		t.Fatalf("other client Seq = %d", ev.Seq)
	}
	// Past the idle cut-off: a new session starts at 1.
	if ev := opAt("c1", base.Add(5*time.Minute)); ev.Seq != 1 {
		t.Fatalf("post-idle Seq = %d", ev.Seq)
	}
	// Export/Restore round-trips the counters.
	snap := z.Export()
	z2 := NewSessionizer(time.Minute, clk.Now)
	z2.Restore(snap)
	if ev := z2.Event("", session.Operation{SessionID: "c1", SQL: "SELECT 1", Time: base.Add(5*time.Minute + time.Second)}); ev.Seq != 2 {
		t.Fatalf("restored Seq = %d, want 2", ev.Seq)
	}
}

// crashDeliverer delivers through the inner deliverer, then simulates a
// kill -9 in the window between delivery ack and checkpoint commit by
// failing after crashAfter batches.
type crashDeliverer struct {
	inner      Deliverer
	batches    int
	crashAfter int
	crashed    []serve.Event
}

var errCrash = errors.New("simulated crash before checkpoint commit")

func (d *crashDeliverer) Deliver(ctx context.Context, events []serve.Event) error {
	if err := d.inner.Deliver(ctx, events); err != nil {
		return err
	}
	d.batches++
	if d.batches == d.crashAfter {
		d.crashed = append([]serve.Event(nil), events...)
		return errCrash
	}
	return nil
}

// TestFeederCrashResumeExactlyOnce is the core resume guarantee: the
// feeder dies after a batch is delivered but before its checkpoint
// commits; the restarted feeder replays that batch from the committed
// offset, the serving layer deduplicates it, and every session is
// scored exactly once with no lost operations.
func TestFeederCrashResumeExactlyOnce(t *testing.T) {
	dir := t.TempDir()
	logPath := filepath.Join(dir, "audit.jsonl")
	ckptPath := filepath.Join(dir, "feed.ckpt")

	// 3 clients × 8 ops; client c1's op 5 is the OOV anomaly.
	const clients, opsPer = 3, 8
	var lines []string
	total := 0
	for c := 0; c < clients; c++ {
		for p := 0; p < opsPer; p++ {
			sql := normalStatement(c + p)
			if c == 1 && p == 5 {
				sql = anomalySQL
			}
			lines = append(lines, jsonOp(t, session.Operation{
				User: "app", SessionID: fmt.Sprintf("c%d", c), SQL: sql,
			}))
			total++
		}
	}
	writeLines(t, logPath, lines...)

	clk := newFakeClock()
	svc := newTestService(t, clk)

	newFeeder := func(d Deliverer) *Feeder {
		tl, err := NewTailer(TailerConfig{Path: logPath, Poll: 2 * time.Millisecond})
		if err != nil {
			t.Fatal(err)
		}
		f, err := NewFeeder(FeederConfig{
			Source:         tl,
			Deliver:        d,
			CheckpointPath: ckptPath,
			BatchSize:      4,
			FlushInterval:  5 * time.Millisecond,
			now:            clk.Now,
		})
		if err != nil {
			t.Fatal(err)
		}
		return f
	}

	// Run 1: crash after the 3rd delivered batch (12 events in, 8
	// checkpointed).
	crash := &crashDeliverer{inner: &ServiceDeliverer{Svc: svc}, crashAfter: 3}
	if err := newFeeder(crash).Run(context.Background()); !errors.Is(err, errCrash) {
		t.Fatalf("run 1: err = %v, want crash", err)
	}
	if len(crash.crashed) == 0 {
		t.Fatal("crash batch is empty")
	}

	// Run 2: a fresh feeder restores the checkpoint and replays the
	// uncommitted suffix. Stop it once the whole file is through.
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- newFeeder(&ServiceDeliverer{Svc: svc}).Run(ctx) }()
	deadline := time.Now().Add(10 * time.Second)
	for {
		st := svc.Stats()
		if st.EventsAccepted+st.DuplicateEvents >= int64(total)+int64(len(crash.crashed)) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for replay: %+v", st)
		}
		time.Sleep(5 * time.Millisecond)
	}
	cancel()
	if err := <-done; err != nil && !errors.Is(err, context.Canceled) {
		t.Fatalf("run 2: %v", err)
	}

	st := svc.Stats()
	if st.EventsAccepted != int64(total) {
		t.Fatalf("EventsAccepted = %d, want %d (no lost or double-counted ops)", st.EventsAccepted, total)
	}
	if st.DuplicateEvents != int64(len(crash.crashed)) {
		t.Fatalf("DuplicateEvents = %d, want %d (the crashed batch, replayed)", st.DuplicateEvents, len(crash.crashed))
	}
	if st.SessionsOpen != clients {
		t.Fatalf("SessionsOpen = %d, want %d", st.SessionsOpen, clients)
	}

	// Close out and verify each session was scored exactly once.
	svc.Drain()
	clk.Advance(time.Hour)
	svc.CloseIdleNow()
	svc.Drain()
	st = svc.Stats()
	if st.SessionsProcessed != clients {
		t.Fatalf("SessionsProcessed = %d, want %d", st.SessionsProcessed, clients)
	}
	if st.SessionsFlagged != 1 {
		t.Fatalf("SessionsFlagged = %d, want 1 (only the anomaly session)", st.SessionsFlagged)
	}
	if st.UnknownKeys != 1 {
		t.Fatalf("UnknownKeys = %d, want 1", st.UnknownKeys)
	}
	if len(svc.Alerts("open")) == 0 {
		t.Fatal("no alert raised for the anomaly session")
	}
}

// TestFeederReplayFromScratchIsIdempotent deletes the checkpoint
// entirely and re-feeds the whole log into the same service: with the
// sessionizer starting over, sequence numbers repeat from 1 and the
// assembler must absorb every event as a duplicate.
func TestFeederReplayFromScratchIsIdempotent(t *testing.T) {
	dir := t.TempDir()
	logPath := filepath.Join(dir, "audit.jsonl")

	const opsN = 6
	var lines []string
	for p := 0; p < opsN; p++ {
		lines = append(lines, jsonOp(t, session.Operation{User: "app", SessionID: "c0", SQL: normalStatement(p)}))
	}
	writeLines(t, logPath, lines...)

	clk := newFakeClock()
	svc := newTestService(t, clk)

	run := func(ckpt string, wantTotal int64) {
		tl, err := NewTailer(TailerConfig{Path: logPath, Poll: 2 * time.Millisecond})
		if err != nil {
			t.Fatal(err)
		}
		f, err := NewFeeder(FeederConfig{
			Source: tl, Deliver: &ServiceDeliverer{Svc: svc},
			CheckpointPath: ckpt, BatchSize: 3, FlushInterval: 5 * time.Millisecond,
			now: clk.Now,
		})
		if err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		done := make(chan error, 1)
		go func() { done <- f.Run(ctx) }()
		deadline := time.Now().Add(10 * time.Second)
		for {
			st := svc.Stats()
			if st.EventsAccepted+st.DuplicateEvents >= wantTotal {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("feeder stalled: %+v", st)
			}
			time.Sleep(5 * time.Millisecond)
		}
		cancel()
		if err := <-done; err != nil && !errors.Is(err, context.Canceled) {
			t.Fatal(err)
		}
	}

	run(filepath.Join(dir, "run1.ckpt"), opsN)
	run(filepath.Join(dir, "run2.ckpt"), 2*opsN) // fresh checkpoint: full replay

	st := svc.Stats()
	if st.EventsAccepted != opsN {
		t.Fatalf("EventsAccepted = %d, want %d", st.EventsAccepted, opsN)
	}
	if st.DuplicateEvents != opsN {
		t.Fatalf("DuplicateEvents = %d, want %d (second pass fully deduplicated)", st.DuplicateEvents, opsN)
	}
	clk.Advance(time.Hour)
	svc.CloseIdleNow()
	svc.Drain()
	if st := svc.Stats(); st.SessionsProcessed != 1 {
		t.Fatalf("SessionsProcessed = %d, want 1 (no session scored twice)", st.SessionsProcessed)
	}
}

func TestCheckpointRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "feed.ckpt")
	if _, ok, err := LoadCheckpoint(path); err != nil || ok {
		t.Fatalf("missing checkpoint: ok=%v err=%v", ok, err)
	}
	src := NewDBSource(1)
	defer src.Close()
	f, err := NewFeeder(FeederConfig{Source: src, Deliver: &ServiceDeliverer{}, CheckpointPath: path})
	if err != nil {
		t.Fatal(err)
	}
	f.sess.Event("t0", session.Operation{SessionID: "c1", SQL: "SELECT 1", Time: time.Now()})
	if err := f.commit(); err != nil {
		t.Fatal(err)
	}
	cp, ok, err := LoadCheckpoint(path)
	if err != nil || !ok {
		t.Fatalf("reload: ok=%v err=%v", ok, err)
	}
	if cp.Pos.Kind != "none" {
		t.Fatalf("Pos.Kind = %q for a non-positioned source", cp.Pos.Kind)
	}
	if cp.Sessions["c1"].Seq != 1 {
		t.Fatalf("sessions not checkpointed: %+v", cp.Sessions)
	}
}
