package metrics

import (
	"math"
	"testing"
	"testing/quick"
)

// thresholdDetector flags sessions containing a key above a threshold.
type thresholdDetector struct{ limit int }

func (d *thresholdDetector) Name() string      { return "threshold" }
func (d *thresholdDetector) Fit(train [][]int) {}
func (d *thresholdDetector) Flag(keys []int) bool {
	for _, k := range keys {
		if k > d.limit {
			return true
		}
	}
	return false
}

func TestConfusionMetrics(t *testing.T) {
	c := Confusion{TP: 8, FP: 2, TN: 18, FN: 2}
	if got := c.Precision(); math.Abs(got-0.8) > 1e-12 {
		t.Fatalf("precision = %v", got)
	}
	if got := c.Recall(); math.Abs(got-0.8) > 1e-12 {
		t.Fatalf("recall = %v", got)
	}
	if got := c.F1(); math.Abs(got-0.8) > 1e-12 {
		t.Fatalf("f1 = %v", got)
	}
	if got := c.FPR(); math.Abs(got-0.1) > 1e-12 {
		t.Fatalf("fpr = %v", got)
	}
	if got := c.FNR(); math.Abs(got-0.2) > 1e-12 {
		t.Fatalf("fnr = %v", got)
	}
}

func TestConfusionZeroDivision(t *testing.T) {
	var c Confusion
	if c.Precision() != 0 || c.Recall() != 0 || c.F1() != 0 || c.FPR() != 0 || c.FNR() != 0 {
		t.Fatal("empty confusion must yield zeros, not NaN")
	}
}

func TestEvaluate(t *testing.T) {
	d := &thresholdDetector{limit: 10}
	normal := map[string][][]int{
		"V1": {{1, 2}, {3, 4}, {99, 1}}, // one FP
		"V2": {{5, 6}},
	}
	abnormal := map[string][][]int{
		"A1": {{50, 1}, {2, 3}}, // one FN
	}
	ev := Evaluate(d, normal, abnormal)
	if math.Abs(ev.FPR["V1"]-1.0/3.0) > 1e-12 || ev.FPR["V2"] != 0 {
		t.Fatalf("FPR = %v", ev.FPR)
	}
	if math.Abs(ev.FNR["A1"]-0.5) > 1e-12 {
		t.Fatalf("FNR = %v", ev.FNR)
	}
	if ev.Confusion.TP != 1 || ev.Confusion.FP != 1 || ev.Confusion.TN != 3 || ev.Confusion.FN != 1 {
		t.Fatalf("confusion = %+v", ev.Confusion)
	}
	if math.Abs(ev.Precision-0.5) > 1e-12 || math.Abs(ev.Recall-0.5) > 1e-12 {
		t.Fatalf("P=%v R=%v", ev.Precision, ev.Recall)
	}
}

// Property: F1 is always between min and max of precision and recall,
// and all rates are in [0,1].
func TestMetricBounds(t *testing.T) {
	f := func(tp, fp, tn, fn uint8) bool {
		c := Confusion{TP: int(tp), FP: int(fp), TN: int(tn), FN: int(fn)}
		p, r, f1 := c.Precision(), c.Recall(), c.F1()
		inUnit := func(x float64) bool { return x >= 0 && x <= 1 }
		if !inUnit(p) || !inUnit(r) || !inUnit(f1) || !inUnit(c.FPR()) || !inUnit(c.FNR()) {
			return false
		}
		lo, hi := math.Min(p, r), math.Max(p, r)
		return f1 >= lo-1e-12 && f1 <= hi+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestPerfectDetector(t *testing.T) {
	d := &thresholdDetector{limit: 10}
	normal := map[string][][]int{"V1": {{1}, {2}}}
	abnormal := map[string][][]int{"A1": {{11}, {12}}}
	ev := Evaluate(d, normal, abnormal)
	if ev.F1 != 1 || ev.Precision != 1 || ev.Recall != 1 {
		t.Fatalf("perfect detector scored %+v", ev)
	}
}

func TestEvaluateParallelMatchesSequential(t *testing.T) {
	d := &thresholdDetector{limit: 10}
	normal := map[string][][]int{
		"V1": {{1, 2}, {3, 4}, {99, 1}, {5}, {12}},
		"V2": {{5, 6}, {7}, {42, 1}},
	}
	abnormal := map[string][][]int{
		"A1": {{50, 1}, {2, 3}, {11}, {4}},
	}
	seq := Evaluate(d, normal, abnormal)
	par := EvaluateParallel(d, normal, abnormal, 4)
	if seq.Confusion != par.Confusion {
		t.Fatalf("confusion differs: %+v vs %+v", seq.Confusion, par.Confusion)
	}
	for k, v := range seq.FPR {
		if par.FPR[k] != v {
			t.Fatalf("FPR[%s] differs", k)
		}
	}
	for k, v := range seq.FNR {
		if par.FNR[k] != v {
			t.Fatalf("FNR[%s] differs", k)
		}
	}
	if seq.F1 != par.F1 {
		t.Fatal("F1 differs")
	}
}
