// Package metrics implements the paper's evaluation protocol (§6.1):
// session-level detection with per-dataset false-positive/false-negative
// rates and aggregate precision, recall and F1 (abnormal = positive).
package metrics

import (
	"runtime"
	"sort"
	"sync"
)

// Detector is a session-level anomaly detector over statement-key
// sequences — the interface all baselines and UCAD satisfy.
type Detector interface {
	// Name identifies the method in reports.
	Name() string
	// Fit trains on normal sessions (unsupervised).
	Fit(train [][]int)
	// Flag reports whether the session is anomalous.
	Flag(keys []int) bool
}

// Confusion is a binary confusion matrix with abnormal as positive.
type Confusion struct {
	TP, FP, TN, FN int
}

// Precision is TP / (TP + FP); zero when undefined.
func (c Confusion) Precision() float64 { return safeDiv(c.TP, c.TP+c.FP) }

// Recall is TP / (TP + FN); zero when undefined.
func (c Confusion) Recall() float64 { return safeDiv(c.TP, c.TP+c.FN) }

// F1 is the harmonic mean of precision and recall.
func (c Confusion) F1() float64 {
	p, r := c.Precision(), c.Recall()
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

// FPR is FP / (FP + TN); zero when undefined.
func (c Confusion) FPR() float64 { return safeDiv(c.FP, c.FP+c.TN) }

// FNR is FN / (FN + TP); zero when undefined.
func (c Confusion) FNR() float64 { return safeDiv(c.FN, c.FN+c.TP) }

func safeDiv(a, b int) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}

// Evaluation is the paper's Table 2 row for one method: FPR per normal
// testing set, FNR per abnormal set, and aggregate P/R/F1.
type Evaluation struct {
	Method    string
	FPR       map[string]float64
	FNR       map[string]float64
	Confusion Confusion
	Precision float64
	Recall    float64
	F1        float64
}

// Evaluate runs a fitted detector over named normal and abnormal
// testing sets and aggregates the confusion counts across all of them.
func Evaluate(d Detector, normal, abnormal map[string][][]int) Evaluation {
	ev := Evaluation{
		Method: d.Name(),
		FPR:    make(map[string]float64, len(normal)),
		FNR:    make(map[string]float64, len(abnormal)),
	}
	for _, name := range sortedKeys(normal) {
		var c Confusion
		for _, s := range normal[name] {
			if d.Flag(s) {
				c.FP++
			} else {
				c.TN++
			}
		}
		ev.FPR[name] = c.FPR()
		ev.Confusion.FP += c.FP
		ev.Confusion.TN += c.TN
	}
	for _, name := range sortedKeys(abnormal) {
		var c Confusion
		for _, s := range abnormal[name] {
			if d.Flag(s) {
				c.TP++
			} else {
				c.FN++
			}
		}
		ev.FNR[name] = c.FNR()
		ev.Confusion.TP += c.TP
		ev.Confusion.FN += c.FN
	}
	ev.Precision = ev.Confusion.Precision()
	ev.Recall = ev.Confusion.Recall()
	ev.F1 = ev.Confusion.F1()
	return ev
}

func sortedKeys(m map[string][][]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// EvaluateParallel is Evaluate with session flagging fanned out over
// workers goroutines. The detector's Flag method must be safe for
// concurrent use after Fit (true for every detector in this module:
// inference is read-only). workers <= 0 selects GOMAXPROCS.
func EvaluateParallel(d Detector, normal, abnormal map[string][][]int, workers int) Evaluation {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	flagAll := func(sessions [][]int) []bool {
		out := make([]bool, len(sessions))
		var wg sync.WaitGroup
		jobs := make(chan int)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range jobs {
					out[i] = d.Flag(sessions[i])
				}
			}()
		}
		for i := range sessions {
			jobs <- i
		}
		close(jobs)
		wg.Wait()
		return out
	}
	ev := Evaluation{
		Method: d.Name(),
		FPR:    make(map[string]float64, len(normal)),
		FNR:    make(map[string]float64, len(abnormal)),
	}
	for _, name := range sortedKeys(normal) {
		var c Confusion
		for _, flagged := range flagAll(normal[name]) {
			if flagged {
				c.FP++
			} else {
				c.TN++
			}
		}
		ev.FPR[name] = c.FPR()
		ev.Confusion.FP += c.FP
		ev.Confusion.TN += c.TN
	}
	for _, name := range sortedKeys(abnormal) {
		var c Confusion
		for _, flagged := range flagAll(abnormal[name]) {
			if flagged {
				c.TP++
			} else {
				c.FN++
			}
		}
		ev.FNR[name] = c.FNR()
		ev.Confusion.TP += c.TP
		ev.Confusion.FN += c.FN
	}
	ev.Precision = ev.Confusion.Precision()
	ev.Recall = ev.Confusion.Recall()
	ev.F1 = ev.Confusion.F1()
	return ev
}
