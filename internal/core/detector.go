package core

import (
	"github.com/ucad/ucad/internal/metrics"
	"github.com/ucad/ucad/internal/scorecache"
	"github.com/ucad/ucad/internal/transdas"
)

// Detector adapts Trans-DAS to the metrics.Detector interface so the
// experiment harness evaluates UCAD alongside the baselines on
// already-tokenized key sequences.
type Detector struct {
	// Config is the Trans-DAS configuration; Vocab is derived from the
	// training data at Fit time.
	Config transdas.Config
	// DisplayName overrides Name() (used by ablation variants).
	DisplayName string

	// ScorePrecision selects the scoring kernel applied after Fit
	// (training always runs float64); ScoreCacheSize, when positive,
	// attaches a similarity-row cache of that capacity. Both default to
	// the reference path (float64, no cache).
	ScorePrecision transdas.Precision
	ScoreCacheSize int

	model *transdas.Model
}

// NewDetector wraps a Trans-DAS configuration.
func NewDetector(cfg transdas.Config) *Detector { return &Detector{Config: cfg} }

// Name implements metrics.Detector.
func (d *Detector) Name() string {
	if d.DisplayName != "" {
		return d.DisplayName
	}
	return "UCAD"
}

// Fit implements metrics.Detector.
func (d *Detector) Fit(train [][]int) {
	maxKey := 0
	for _, s := range train {
		for _, k := range s {
			if k > maxKey {
				maxKey = k
			}
		}
	}
	cfg := d.Config
	cfg.Vocab = maxKey + 1
	if cfg.Vocab < 2 {
		d.model = nil
		return
	}
	// A top-p covering the whole vocabulary would never flag anything;
	// clamp it so the test stays meaningful on small key spaces.
	if cfg.TopP >= cfg.Vocab-1 {
		cfg.TopP = cfg.Vocab - 2
		if cfg.TopP < 1 {
			cfg.TopP = 1
		}
	}
	d.model = transdas.New(cfg)
	d.model.Train(train, nil)
	d.model.SetScorePrecision(d.ScorePrecision)
	if d.ScoreCacheSize > 0 {
		d.model.SetScoreCache(scorecache.New(d.ScoreCacheSize))
	}
}

// Flag implements metrics.Detector.
func (d *Detector) Flag(keys []int) bool {
	if d.model == nil {
		return false
	}
	return d.model.IsAnomalous(keys)
}

// Model exposes the fitted Trans-DAS instance (nil before Fit).
func (d *Detector) Model() *transdas.Model { return d.model }

var _ metrics.Detector = (*Detector)(nil)
