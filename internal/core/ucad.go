// Package core assembles UCAD (Figure 2): the preprocessing module
// (tokenization, access-control filtering, clustering-based noise
// removal) feeding the anomaly detection module (a Trans-DAS instance
// with top-p contextual-intent comparison).
package core

import (
	"bufio"
	"encoding/gob"
	"fmt"
	"io"
	"math/rand"
	"time"

	"github.com/ucad/ucad/internal/preprocess"
	"github.com/ucad/ucad/internal/session"
	"github.com/ucad/ucad/internal/sqlnorm"
	"github.com/ucad/ucad/internal/transdas"
)

// Config configures a full UCAD training run.
type Config struct {
	// Model configures Trans-DAS; Model.Vocab is filled automatically
	// from the learned vocabulary. Model.TrainWorkers and
	// Model.BatchSize select data-parallel mini-batch training for both
	// the offline Train and every later FineTune round; the defaults
	// (1, 1) are the paper's sequential SGD trajectory.
	Model transdas.Config
	// Clean configures the clustering-based noise removal.
	Clean preprocess.CleanConfig
	// Policy optionally filters known attack patterns before training
	// and flags them outright during detection.
	Policy *preprocess.Policy
	// SkipClean disables noise removal (used by the preprocessing
	// ablation).
	SkipClean bool
	// DynamicVocab learns ADALog-style dynamic templates (variable-length
	// IN lists collapse to one key) instead of the paper's classic
	// one-placeholder-per-literal abstraction. The mode is persisted with
	// the vocabulary, so detection after Load keys statements the same
	// way training did.
	DynamicVocab bool
	// IdleGap splits raw logs into sessions when no session id is
	// recorded.
	IdleGap time.Duration
	// Seed drives preprocessing randomness (under-sampling).
	Seed int64
}

// DefaultConfig returns a Scenario-I-shaped configuration.
func DefaultConfig() Config {
	return Config{
		Model:   transdas.DefaultConfig(2), // vocab placeholder, filled in Train
		Clean:   preprocess.DefaultCleanConfig(),
		IdleGap: 10 * time.Minute,
		Seed:    1,
	}
}

// UCAD is a trained detector.
type UCAD struct {
	cfg    Config
	Vocab  *sqlnorm.Vocabulary
	Model  *transdas.Model
	Report preprocess.CleanReport
}

// Train runs the offline stage (Figure 4): policy filtering, vocabulary
// building, tokenization, noise removal and Trans-DAS training.
func Train(cfg Config, sessions []*session.Session, progress func(epoch int, loss float64)) (*UCAD, error) {
	if len(sessions) == 0 {
		return nil, fmt.Errorf("core: no training sessions")
	}
	if cfg.Policy != nil {
		sessions, _ = cfg.Policy.Filter(sessions)
		if len(sessions) == 0 {
			return nil, fmt.Errorf("core: access-control policy filtered out every session")
		}
	}
	vocab := sqlnorm.NewVocabulary()
	if cfg.DynamicVocab {
		vocab = sqlnorm.NewDynamicVocabulary()
	}
	session.TokenizeLearn(vocab, sessions)

	var report preprocess.CleanReport
	if !cfg.SkipClean {
		rng := rand.New(rand.NewSource(cfg.Seed))
		sessions, report = preprocess.Clean(sessions, cfg.Clean, rng)
		if len(sessions) == 0 {
			return nil, fmt.Errorf("core: noise removal dropped every session; relax Clean config")
		}
	}

	mcfg := cfg.Model
	mcfg.Vocab = vocab.Size()
	if err := mcfg.Validate(); err != nil {
		return nil, err
	}
	model := transdas.New(mcfg)
	keySeqs := make([][]int, len(sessions))
	for i, s := range sessions {
		keySeqs[i] = s.Keys()
	}
	model.Train(keySeqs, progress)
	return &UCAD{cfg: cfg, Vocab: vocab, Model: model, Report: report}, nil
}

// TrainFromLog reads a JSON-lines audit log, sessionizes it and trains.
func TrainFromLog(cfg Config, r io.Reader, progress func(int, float64)) (*UCAD, error) {
	ops, err := session.ReadLog(r)
	if err != nil {
		return nil, err
	}
	return Train(cfg, session.Sessionize(ops, cfg.IdleGap), progress)
}

// DetectSession tokenizes an active session with the trained vocabulary
// and returns the indices of operations violating the top-p test. A
// policy violation flags the whole session (index 0 by convention).
func (u *UCAD) DetectSession(s *session.Session) []int {
	if u.cfg.Policy != nil {
		if ok, _ := u.cfg.Policy.Evaluate(s); !ok {
			return []int{0}
		}
	}
	keys := make([]int, len(s.Ops))
	for i := range s.Ops {
		keys[i] = u.Vocab.Key(s.Ops[i].SQL)
	}
	return u.Model.DetectSession(keys)
}

// IsAnomalous reports the session-level flag used by the evaluation.
func (u *UCAD) IsAnomalous(s *session.Session) bool {
	return len(u.DetectSession(s)) > 0
}

// FineTune absorbs verified-normal sessions (concept drift, §5.2).
// progress, if non-nil, is called after every epoch; the returned
// TrainResult carries per-epoch losses and the window count for
// training instrumentation.
func (u *UCAD) FineTune(sessions []*session.Session, epochs int, progress func(epoch int, loss float64)) transdas.TrainResult {
	keySeqs := make([][]int, 0, len(sessions))
	for _, s := range sessions {
		keys := make([]int, len(s.Ops))
		for i := range s.Ops {
			keys[i] = u.Vocab.Key(s.Ops[i].SQL)
		}
		keySeqs = append(keySeqs, keys)
	}
	return u.Model.FineTune(keySeqs, epochs, progress)
}

// Save persists the vocabulary and model.
func (u *UCAD) Save(w io.Writer) error {
	if err := gob.NewEncoder(w).Encode(u.Vocab.Templates()); err != nil {
		return fmt.Errorf("core: encode vocabulary: %w", err)
	}
	return u.Model.Save(w)
}

// Load restores a detector saved by Save. The stream is a sequence of
// gob messages (vocabulary, model config, parameters), each read by its
// own decoder; a reader without byte-exact reads (io.ByteReader) must
// be wrapped once so no decoder buffers into the next section.
func Load(r io.Reader) (*UCAD, error) {
	if _, ok := r.(io.ByteReader); !ok {
		r = bufio.NewReader(r)
	}
	var templates []string
	if err := gob.NewDecoder(r).Decode(&templates); err != nil {
		return nil, fmt.Errorf("core: decode vocabulary: %w", err)
	}
	vocab, err := sqlnorm.FromTemplates(templates)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	model, err := transdas.Load(r)
	if err != nil {
		return nil, err
	}
	return &UCAD{Vocab: vocab, Model: model}, nil
}
