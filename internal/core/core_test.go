package core

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
	"time"

	"github.com/ucad/ucad/internal/nn"
	"github.com/ucad/ucad/internal/preprocess"
	"github.com/ucad/ucad/internal/session"
	"github.com/ucad/ucad/internal/transdas"
	"github.com/ucad/ucad/internal/workload"
)

// smallConfig keeps end-to-end training inside test budgets.
func smallConfig() Config {
	cfg := DefaultConfig()
	cfg.Model.Hidden = 10
	cfg.Model.Heads = 2
	cfg.Model.Blocks = 2
	cfg.Model.Window = 24
	cfg.Model.TopP = 8
	cfg.Model.Epochs = 8
	cfg.Model.Dropout = 0
	cfg.Model.MinContext = 3
	// The tiny training sets in tests make DBSCAN cleaning too eager.
	cfg.SkipClean = true
	return cfg
}

func trainSmall(t *testing.T) (*UCAD, *workload.Generator, *workload.Suite) {
	t.Helper()
	g := workload.NewGenerator(workload.ScenarioI(), 3)
	suite := g.BuildSuite(80)
	u, err := Train(smallConfig(), suite.Train, nil)
	if err != nil {
		t.Fatal(err)
	}
	return u, g, suite
}

func TestTrainAndDetectEndToEnd(t *testing.T) {
	u, _, suite := trainSmall(t)
	fp := 0
	for _, s := range suite.Normal["V1"] {
		if u.IsAnomalous(s) {
			fp++
		}
	}
	tp := 0
	for _, s := range suite.Abnormal["A2"] {
		if u.IsAnomalous(s) {
			tp++
		}
	}
	n := len(suite.Normal["V1"])
	if fp > n/2 {
		t.Errorf("FP = %d of %d normal sessions", fp, n)
	}
	if tp < len(suite.Abnormal["A2"])*6/10 {
		t.Errorf("TP = %d of %d A2 sessions", tp, len(suite.Abnormal["A2"]))
	}
}

func TestTrainErrors(t *testing.T) {
	if _, err := Train(smallConfig(), nil, nil); err == nil {
		t.Fatal("expected error for empty training set")
	}
	cfg := smallConfig()
	cfg.Policy = &preprocess.Policy{Rules: []preprocess.Rule{
		{Name: "deny-all", Effect: preprocess.Deny},
	}}
	g := workload.NewGenerator(workload.ScenarioI(), 4)
	if _, err := Train(cfg, g.GenerateSessions(5), nil); err == nil {
		t.Fatal("expected error when policy filters everything")
	}
	bad := smallConfig()
	bad.Model.Heads = 3 // 10 % 3 != 0
	if _, err := Train(bad, g.GenerateSessions(5), nil); err == nil {
		t.Fatal("expected model validation error")
	}
}

func TestPolicyViolationFlagsSession(t *testing.T) {
	cfg := smallConfig()
	cfg.Model.Epochs = 1
	cfg.Policy = &preprocess.Policy{Rules: []preprocess.Rule{
		{Name: "deny-evil-addr", Effect: preprocess.Deny, Addrs: []string{"6.6.6.6"}},
	}}
	g := workload.NewGenerator(workload.ScenarioI(), 5)
	u, err := Train(cfg, g.GenerateSessions(20), nil)
	if err != nil {
		t.Fatal(err)
	}
	bad := g.NewSession()
	bad.Addr = "6.6.6.6"
	for i := range bad.Ops {
		bad.Ops[i].Addr = bad.Addr
	}
	got := u.DetectSession(bad)
	if len(got) != 1 || got[0] != 0 {
		t.Fatalf("policy violation should flag index 0, got %v", got)
	}
}

func TestSaveLoadRoundtrip(t *testing.T) {
	u, g, _ := trainSmall(t)
	var buf bytes.Buffer
	if err := u.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	probe := g.NewSession()
	a, b := u.DetectSession(probe), loaded.DetectSession(probe)
	if len(a) != len(b) {
		t.Fatalf("loaded detector disagrees: %v vs %v", a, b)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("loaded detector disagrees: %v vs %v", a, b)
		}
	}
}

// TestSaveLoadThroughFile round-trips through a real file. Unlike
// bytes.Buffer, *os.File does not implement io.ByteReader, so this
// exercises the wrapped-reader path: without it each gob decoder
// buffers past its own section and the next one misaligns.
func TestSaveLoadThroughFile(t *testing.T) {
	u, g, _ := trainSmall(t)
	path := filepath.Join(t.TempDir(), "ucad.model")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := u.Save(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	rf, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer rf.Close()
	loaded, err := Load(rf)
	if err != nil {
		t.Fatal(err)
	}
	probe := g.NewSession()
	a, b := u.DetectSession(probe), loaded.DetectSession(probe)
	if len(a) != len(b) {
		t.Fatalf("file-loaded detector disagrees: %v vs %v", a, b)
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewBufferString("nope")); err == nil {
		t.Fatal("expected decode error")
	}
}

func TestTrainFromLog(t *testing.T) {
	g := workload.NewGenerator(workload.ScenarioI(), 6)
	sessions := g.GenerateSessions(30)
	var buf bytes.Buffer
	if err := session.WriteLog(&buf, session.Flatten(sessions)); err != nil {
		t.Fatal(err)
	}
	cfg := smallConfig()
	cfg.Model.Epochs = 1
	cfg.IdleGap = time.Hour
	u, err := TrainFromLog(cfg, &buf, nil)
	if err != nil {
		t.Fatal(err)
	}
	if u.Vocab.Size() < 10 {
		t.Fatalf("vocabulary too small: %d", u.Vocab.Size())
	}
}

func TestCleaningPipelineRuns(t *testing.T) {
	cfg := smallConfig()
	cfg.SkipClean = false
	cfg.Clean.MinPts = 2
	cfg.Clean.Eps = 0.9
	cfg.Model.Epochs = 1
	g := workload.NewGenerator(workload.ScenarioI(), 7)
	u, err := Train(cfg, g.GenerateSessions(40), nil)
	if err != nil {
		t.Fatal(err)
	}
	if u.Report.Input != 40 {
		t.Fatalf("clean report input = %d", u.Report.Input)
	}
	if u.Report.Output == 0 {
		t.Fatal("cleaning dropped everything")
	}
}

func TestDetectorAdapter(t *testing.T) {
	cfg := transdas.DefaultConfig(2)
	cfg.Hidden = 8
	cfg.Heads = 2
	cfg.Blocks = 2
	cfg.Window = 10
	cfg.TopP = 6
	cfg.Epochs = 10
	cfg.Dropout = 0
	d := NewDetector(cfg)
	if d.Name() != "UCAD" {
		t.Fatalf("name = %q", d.Name())
	}
	d.DisplayName = "Trans-DAS-variant"
	if d.Name() != "Trans-DAS-variant" {
		t.Fatal("display name override broken")
	}
	// Two role families so the clamped top-p (vocab-2 = 4) can separate
	// in-family keys from the rest.
	train := [][]int{
		{1, 2, 3, 1, 2, 3, 1, 2, 3},
		{4, 5, 4, 5, 4, 5, 4, 5},
		{2, 3, 1, 2, 3, 1, 2, 3, 1},
		{4, 5, 4, 5, 4, 5},
	}
	d.Fit(train)
	if d.Model() == nil {
		t.Fatal("model not fitted")
	}
	if d.Flag([]int{1, 2, 3, 1, 2, 3}) {
		t.Error("in-grammar session flagged")
	}
	if !d.Flag([]int{1, 2, 3, 0, 1, 2}) {
		t.Error("unknown key not flagged")
	}
	empty := NewDetector(cfg)
	empty.Fit(nil)
	if empty.Flag([]int{1, 2}) {
		t.Error("unfitted detector must not flag")
	}
}

func TestFineTune(t *testing.T) {
	u, g, _ := trainSmall(t)
	// Fine-tuning on fresh normal sessions must not explode FPR.
	fresh := g.GenerateSessions(10)
	u.FineTune(fresh, 2, nil)
	fp := 0
	for _, s := range g.GenerateSessions(10) {
		if u.IsAnomalous(s) {
			fp++
		}
	}
	if fp > 6 {
		t.Fatalf("post-finetune FP = %d of 10", fp)
	}
}

// Guard: ablation variants construct through the adapter.
func TestDetectorVariants(t *testing.T) {
	base := transdas.DefaultConfig(2)
	base.Hidden = 8
	base.Heads = 2
	base.Blocks = 1
	base.Window = 8
	base.Epochs = 2
	base.Dropout = 0
	variants := []transdas.Config{base}
	v := base
	v.Positional = true
	v.Mask = nn.MaskFuture
	v.Objective = transdas.ObjectiveCEOnly
	variants = append(variants, v)
	for i, cfg := range variants {
		d := NewDetector(cfg)
		d.Fit([][]int{{1, 2, 3, 1, 2, 3}})
		_ = d.Flag([]int{1, 2, 3})
		_ = i
	}
}
