// Package detect implements the online detection stage (§5.3 and
// Figure 5): active sessions stream through the trained detector,
// flagged sessions queue for expert diagnosis, and verified-normal
// sessions (including false alarms) feed the next fine-tuning round —
// the concept-drift loop of §5.2.
package detect

import (
	"sync"

	"github.com/ucad/ucad/internal/core"
	"github.com/ucad/ucad/internal/session"
)

// Alert is one flagged session awaiting expert review.
type Alert struct {
	Session *session.Session
	// Positions are the indices of the operations that violated the
	// top-p test (0 alone means a policy violation).
	Positions []int
}

// Online is the streaming detection loop. It is safe for concurrent
// Process calls; Retrain must not run concurrently with Process.
type Online struct {
	mu sync.Mutex

	ucad *core.UCAD
	// verified accumulates sessions confirmed normal since the last
	// retraining round.
	verified []*session.Session
	pending  []*Alert

	processed int
	flagged   int
}

// NewOnline wraps a trained detector.
func NewOnline(u *core.UCAD) *Online { return &Online{ucad: u} }

// Process evaluates one active session. Normal sessions join the
// verified pool immediately; anomalous ones return an Alert and wait in
// the pending queue for expert review.
func (o *Online) Process(s *session.Session) *Alert {
	positions := o.ucad.DetectSession(s)
	o.mu.Lock()
	defer o.mu.Unlock()
	o.processed++
	if len(positions) == 0 {
		o.verified = append(o.verified, s)
		return nil
	}
	o.flagged++
	a := &Alert{Session: s, Positions: positions}
	o.pending = append(o.pending, a)
	return a
}

// ResolveFalseAlarm records the expert verdict that an alert was
// normal; the session joins the verified pool for the next fine-tune.
func (o *Online) ResolveFalseAlarm(a *Alert) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.verified = append(o.verified, a.Session)
	o.removePending(a)
}

// ResolveConfirmed records the expert verdict that an alert was a true
// anomaly (it never enters the training pool).
func (o *Online) ResolveConfirmed(a *Alert) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.removePending(a)
}

func (o *Online) removePending(a *Alert) {
	for i, p := range o.pending {
		if p == a {
			o.pending = append(o.pending[:i], o.pending[i+1:]...)
			return
		}
	}
}

// Pending returns a snapshot of unresolved alerts.
func (o *Online) Pending() []*Alert {
	o.mu.Lock()
	defer o.mu.Unlock()
	return append([]*Alert(nil), o.pending...)
}

// Stats reports processed and flagged session counts.
func (o *Online) Stats() (processed, flagged int) {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.processed, o.flagged
}

// VerifiedCount reports the size of the pending fine-tune pool.
func (o *Online) VerifiedCount() int {
	o.mu.Lock()
	defer o.mu.Unlock()
	return len(o.verified)
}

// Retrain fine-tunes the model on the verified pool and clears it —
// one round of the paper's periodic training (§3). It returns the
// number of sessions absorbed.
func (o *Online) Retrain(epochs int) int {
	o.mu.Lock()
	pool := o.verified
	o.verified = nil
	o.mu.Unlock()
	if len(pool) == 0 {
		return 0
	}
	o.ucad.FineTune(pool, epochs)
	return len(pool)
}
