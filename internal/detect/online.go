// Package detect implements the online detection stage (§5.3 and
// Figure 5): active sessions stream through the trained detector,
// flagged sessions queue for expert diagnosis, and verified-normal
// sessions (including false alarms) feed the next fine-tuning round —
// the concept-drift loop of §5.2.
package detect

import (
	"io"
	"sync"
	"time"

	"github.com/ucad/ucad/internal/core"
	"github.com/ucad/ucad/internal/session"
	"github.com/ucad/ucad/internal/transdas"
)

// Alert is one flagged session awaiting expert review.
type Alert struct {
	Session *session.Session
	// Positions are the indices of the operations that violated the
	// top-p test (0 alone means a policy violation).
	Positions []int
}

// Online is the streaming detection loop. It is safe for concurrent
// use: Process and RankAt score under a read-lock while Retrain
// fine-tunes under the write-lock, so scoring and retraining may be
// issued from independent goroutines.
type Online struct {
	mu sync.Mutex
	// modelMu serializes model mutation (Retrain's fine-tune) against
	// model reads (Process, RankAt). Inference is read-only on the
	// weights, so concurrent readers are safe with each other.
	modelMu sync.RWMutex

	ucad *core.UCAD
	// scorers pools batch-first scorers for RankBatch; a pooled Scorer
	// stays valid across Retrain because fine-tuning updates the model
	// parameters in place under modelMu. SwapModel replaces the pool
	// wholesale (the old model's scorers must never rank for the new
	// one), so Get/Put happen under the model read-lock.
	scorers *sync.Pool
	// verified accumulates sessions confirmed normal since the last
	// retraining round.
	verified []*session.Session
	pending  []*Alert

	processed int
	flagged   int

	hooks TrainHooks
}

// RetrainStats summarizes one completed fine-tune round for
// instrumentation: how much was absorbed, how long it took, and where
// the loss landed.
type RetrainStats struct {
	// Sessions is the number of verified sessions absorbed.
	Sessions int
	// Windows is the number of training windows per epoch.
	Windows int
	// Epochs is the number of epochs actually run.
	Epochs int
	// FinalLoss is the last epoch's mean per-position loss (0 when no
	// window trained).
	FinalLoss float64
	// Duration is the wall-clock fine-tune time, model lock included.
	Duration time.Duration
}

// WindowsPerSecond is the training throughput of the round
// (windows × epochs / duration); 0 when the round was instantaneous.
func (s RetrainStats) WindowsPerSecond() float64 {
	if s.Duration <= 0 {
		return 0
	}
	return float64(s.Windows*s.Epochs) / s.Duration.Seconds()
}

// TrainHooks receives training progress from Retrain. Epoch fires after
// every fine-tune epoch with the epoch's mean loss and wall-clock
// duration (from the retraining goroutine, while the model lock is
// held — keep it cheap, e.g. a gauge store and histogram observe); Done
// fires once per completed round. Either may be nil.
type TrainHooks struct {
	Epoch func(epoch int, loss float64, took time.Duration)
	Done  func(RetrainStats)
}

// SetTrainHooks installs training instrumentation; call before the
// first Retrain.
func (o *Online) SetTrainHooks(h TrainHooks) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.hooks = h
}

// NewOnline wraps a trained detector.
func NewOnline(u *core.UCAD) *Online {
	return &Online{ucad: u, scorers: scorerPool(u)}
}

func scorerPool(u *core.UCAD) *sync.Pool {
	return &sync.Pool{New: func() any { return u.Model.NewScorer() }}
}

// SwapModel hot-replaces the wrapped detector under the model
// write-lock: in-flight scoring batches finish against the old model
// first, then every later read — Process, RankAt, RankBatch, Save —
// sees the new one. The scorer pool is replaced too, so no pooled
// scorer built on the old model can rank for the new one. The pending
// verified pool and alerts carry over — sessions already judged keep
// their verdicts and still feed the next fine-tune round.
//
// The old model's score cache (if any) is bumped and carried onto the
// replacement: the new weights are a new generation, so every cached
// similarity row goes stale atomically with the swap, while the
// lifetime hit/miss counters stay monotonic across hot swaps (the
// Prometheus contract for the ucad_score_cache_* families). A cache
// already attached to the incoming model is kept (and bumped) when the
// old model had none.
func (o *Online) SwapModel(u *core.UCAD) {
	o.modelMu.Lock()
	if oc := o.ucad.Model.ScoreCache(); oc != nil {
		oc.Bump()
		// Detach from the old model first: a straggler still holding the
		// old detector pointer may keep scoring it, and must not insert
		// old-weight rows into the cache the new model now owns.
		o.ucad.Model.SetScoreCache(nil)
		u.Model.SetScoreCache(oc)
	} else if nc := u.Model.ScoreCache(); nc != nil {
		nc.Bump()
	}
	o.ucad = u
	o.scorers = scorerPool(u)
	o.modelMu.Unlock()
}

// Process evaluates one active session. Normal sessions join the
// verified pool immediately; anomalous ones return an Alert and wait in
// the pending queue for expert review.
func (o *Online) Process(s *session.Session) *Alert {
	o.modelMu.RLock()
	positions := o.ucad.DetectSession(s)
	o.modelMu.RUnlock()
	o.mu.Lock()
	defer o.mu.Unlock()
	o.processed++
	if len(positions) == 0 {
		o.verified = append(o.verified, s)
		return nil
	}
	o.flagged++
	a := &Alert{Session: s, Positions: positions}
	o.pending = append(o.pending, a)
	return a
}

// ResolveFalseAlarm records the expert verdict that an alert was
// normal; the session joins the verified pool for the next fine-tune.
func (o *Online) ResolveFalseAlarm(a *Alert) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.verified = append(o.verified, a.Session)
	o.removePending(a)
}

// ResolveConfirmed records the expert verdict that an alert was a true
// anomaly (it never enters the training pool).
func (o *Online) ResolveConfirmed(a *Alert) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.removePending(a)
}

func (o *Online) removePending(a *Alert) {
	for i, p := range o.pending {
		if p == a {
			o.pending = append(o.pending[:i], o.pending[i+1:]...)
			return
		}
	}
}

// Pending returns a snapshot of unresolved alerts.
func (o *Online) Pending() []*Alert {
	o.mu.Lock()
	defer o.mu.Unlock()
	return append([]*Alert(nil), o.pending...)
}

// Stats reports processed and flagged session counts.
func (o *Online) Stats() (processed, flagged int) {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.processed, o.flagged
}

// VerifiedCount reports the size of the pending fine-tune pool.
func (o *Online) VerifiedCount() int {
	o.mu.Lock()
	defer o.mu.Unlock()
	return len(o.verified)
}

// Retrain fine-tunes the model on the verified pool and clears it —
// one round of the paper's periodic training (§3). It returns the
// number of sessions absorbed. Concurrent Process/RankAt calls block
// for the duration of the fine-tune and resume on the updated model.
// The fine-tune runs with the model's configured data-parallel
// training (TrainWorkers/BatchSize), shortening the write-locked
// window on multi-core hosts.
func (o *Online) Retrain(epochs int) int {
	o.mu.Lock()
	pool := o.verified
	o.verified = nil
	hooks := o.hooks
	o.mu.Unlock()
	if len(pool) == 0 {
		return 0
	}
	start := time.Now()
	var progress func(int, float64)
	if hooks.Epoch != nil {
		lastEpoch := start
		progress = func(epoch int, loss float64) {
			now := time.Now()
			hooks.Epoch(epoch, loss, now.Sub(lastEpoch))
			lastEpoch = now
		}
	}
	o.modelMu.Lock()
	res := o.ucad.FineTune(pool, epochs, progress)
	o.modelMu.Unlock()
	if hooks.Done != nil {
		st := RetrainStats{
			Sessions: len(pool),
			Windows:  res.Windows,
			Epochs:   len(res.EpochLoss),
			Duration: time.Since(start),
		}
		if n := len(res.EpochLoss); n > 0 {
			st.FinalLoss = res.EpochLoss[n-1]
		}
		hooks.Done(st)
	}
	return len(pool)
}

// RankAt scores one operation incrementally: the 1-based similarity
// rank of key given the preceding statement keys, read-locked against
// Retrain. buf is an optional reusable similarity buffer (see
// transdas.Model.ScoreNextInto); pass nil to allocate.
func (o *Online) RankAt(buf []float64, preceding []int, key int) int {
	o.modelMu.RLock()
	defer o.modelMu.RUnlock()
	return o.ucad.Model.RankOfInto(buf, preceding, key)
}

// RankBatch scores a micro-batch of operations in one stacked forward
// pass: dst[b] receives the 1-based similarity rank of keys[b] given
// contexts[b]. The whole batch is read-locked against Retrain as a
// unit, so every rank in it reflects the same model version. dst is
// grown as needed and returned; len(keys) must equal len(contexts).
func (o *Online) RankBatch(dst []int, contexts [][]int, keys []int) []int {
	o.modelMu.RLock()
	// Get/Put stay inside the lock: a SwapModel between them would hand
	// an old-model scorer back to the new model's pool.
	s := o.scorers.Get().(*transdas.Scorer)
	dst = s.RankBatchInto(dst, contexts, keys)
	o.scorers.Put(s)
	o.modelMu.RUnlock()
	return dst
}

// Detector returns the wrapped trained detector (vocabulary access for
// live tokenization; do not mutate the model directly). Read-locked so
// a concurrent SwapModel hands back either the old or new detector,
// never a torn pointer.
func (o *Online) Detector() *core.UCAD {
	o.modelMu.RLock()
	defer o.modelMu.RUnlock()
	return o.ucad
}

// Save persists the wrapped detector under the model read-lock, so a
// checkpoint written while serving (and between fine-tune rounds) is a
// consistent parameter snapshot, never a half-updated one.
func (o *Online) Save(w io.Writer) error {
	o.modelMu.RLock()
	defer o.modelMu.RUnlock()
	return o.ucad.Save(w)
}
