package detect

import (
	"testing"
	"time"

	"github.com/ucad/ucad/internal/core"
	"github.com/ucad/ucad/internal/workload"
)

func trainedUCAD(t *testing.T) (*core.UCAD, *workload.Generator) {
	t.Helper()
	cfg := core.DefaultConfig()
	cfg.Model.Hidden = 10
	cfg.Model.Heads = 2
	cfg.Model.Blocks = 2
	cfg.Model.Window = 24
	cfg.Model.TopP = 8
	cfg.Model.Epochs = 6
	cfg.Model.Dropout = 0
	cfg.Model.MinContext = 3
	cfg.SkipClean = true
	g := workload.NewGenerator(workload.ScenarioI(), 11)
	u, err := core.Train(cfg, g.GenerateSessions(60), nil)
	if err != nil {
		t.Fatal(err)
	}
	return u, g
}

func TestOnlineLoop(t *testing.T) {
	u, g := trainedUCAD(t)
	o := NewOnline(u)

	var alerts []*Alert
	normals, flagged := 0, 0
	for i := 0; i < 10; i++ {
		s := g.NewSession()
		if a := o.Process(s); a != nil {
			alerts = append(alerts, a)
			flagged++
		} else {
			normals++
		}
	}
	// Inject an A2 anomaly: it should usually be flagged.
	anom := g.StealCredential(g.NewSession())
	anomAlert := o.Process(anom)

	processed, flaggedCount := o.Stats()
	if processed != 11 {
		t.Fatalf("processed = %d", processed)
	}
	if anomAlert != nil && len(anomAlert.Positions) == 0 {
		t.Fatal("alert without positions")
	}
	if flaggedCount != len(o.Pending()) {
		t.Fatalf("flagged %d but pending %d", flaggedCount, len(o.Pending()))
	}

	// Expert reviews: false alarms rejoin the training pool; the true
	// anomaly does not.
	before := o.VerifiedCount()
	for _, a := range alerts {
		o.ResolveFalseAlarm(a)
	}
	if anomAlert != nil {
		o.ResolveConfirmed(anomAlert)
	}
	if len(o.Pending()) != 0 {
		t.Fatalf("pending not drained: %d", len(o.Pending()))
	}
	if o.VerifiedCount() != before+len(alerts) {
		t.Fatalf("verified pool = %d, want %d", o.VerifiedCount(), before+len(alerts))
	}
	if normals+len(alerts) != o.VerifiedCount() {
		t.Fatalf("verified pool %d != normals %d + false alarms %d",
			o.VerifiedCount(), normals, len(alerts))
	}

	absorbed := o.Retrain(1)
	if absorbed != normals+len(alerts) {
		t.Fatalf("retrain absorbed %d, want %d", absorbed, normals+len(alerts))
	}
	if o.VerifiedCount() != 0 {
		t.Fatal("verified pool must clear after retrain")
	}
	if o.Retrain(1) != 0 {
		t.Fatal("retrain with empty pool must be a no-op")
	}
}

// TestTrainHooksFireOnRetrain checks the training instrumentation
// contract: Epoch fires once per fine-tune epoch with the epoch loss,
// Done fires once per round with the absorbed pool size, window count
// and a positive wall-clock duration.
func TestTrainHooksFireOnRetrain(t *testing.T) {
	u, g := trainedUCAD(t)
	o := NewOnline(u)
	var epochs []float64
	var dones []RetrainStats
	o.SetTrainHooks(TrainHooks{
		Epoch: func(epoch int, loss float64, took time.Duration) { epochs = append(epochs, loss) },
		Done:  func(st RetrainStats) { dones = append(dones, st) },
	})

	// An empty pool must not fire Done.
	if o.Retrain(2) != 0 || len(dones) != 0 {
		t.Fatal("empty-pool retrain fired hooks")
	}

	for _, s := range g.GenerateSessions(4) {
		o.Process(s)
	}
	pool := o.VerifiedCount()
	if pool == 0 {
		t.Skip("every generated session was flagged; nothing to retrain")
	}
	if absorbed := o.Retrain(2); absorbed != pool {
		t.Fatalf("absorbed %d, want %d", absorbed, pool)
	}
	if len(epochs) != 2 {
		t.Fatalf("Epoch hook fired %d times, want 2", len(epochs))
	}
	if len(dones) != 1 {
		t.Fatalf("Done hook fired %d times, want 1", len(dones))
	}
	st := dones[0]
	if st.Sessions != pool || st.Epochs != 2 || st.Windows == 0 {
		t.Fatalf("RetrainStats %+v, want sessions=%d epochs=2 windows>0", st, pool)
	}
	if st.Duration <= 0 {
		t.Fatalf("duration %v, want > 0", st.Duration)
	}
	if st.FinalLoss != epochs[len(epochs)-1] {
		t.Fatalf("FinalLoss %v != last epoch loss %v", st.FinalLoss, epochs[len(epochs)-1])
	}
	if st.WindowsPerSecond() <= 0 {
		t.Fatalf("windows/sec %v, want > 0", st.WindowsPerSecond())
	}
}

// TestOnlineConcurrentProcessRetrain interleaves scoring and
// fine-tuning from independent goroutines; the model RWMutex must keep
// this race-free (run under -race).
func TestOnlineConcurrentProcessRetrain(t *testing.T) {
	u, g := trainedUCAD(t)
	o := NewOnline(u)
	// Seed the verified pool so the first Retrain has work.
	for _, s := range g.GenerateSessions(6) {
		o.Process(s)
	}
	sessions := g.GenerateSessions(8)
	done := make(chan struct{})
	for w := 0; w < 4; w++ {
		go func(w int) {
			defer func() { done <- struct{}{} }()
			buf := make([]float64, u.Model.Config().Vocab)
			for i := w; i < len(sessions); i += 4 {
				o.Process(sessions[i])
				keys := make([]int, len(sessions[i].Ops))
				for j, op := range sessions[i].Ops {
					keys[j] = u.Vocab.Key(op.SQL)
				}
				if len(keys) > 4 {
					o.RankAt(buf, keys[:3], keys[3])
					o.RankBatch(nil, [][]int{keys[:3], keys[:4]}, keys[3:5])
				}
			}
		}(w)
	}
	go func() {
		defer func() { done <- struct{}{} }()
		o.Retrain(1)
	}()
	for w := 0; w < 5; w++ {
		<-done
	}
	processed, _ := o.Stats()
	if processed != 14 {
		t.Fatalf("processed = %d, want 14", processed)
	}
}

// TestRankBatchMatchesRankAt pins the batched rank surface to the
// per-operation one: one stacked forward pass over a micro-batch must
// produce the same ranks as sequential RankAt calls, and the returned
// slice must reuse the caller's buffer when large enough.
func TestRankBatchMatchesRankAt(t *testing.T) {
	u, g := trainedUCAD(t)
	o := NewOnline(u)
	s := g.NewSession()
	keys := make([]int, len(s.Ops))
	for j, op := range s.Ops {
		keys[j] = u.Vocab.Key(op.SQL)
	}
	if len(keys) < 5 {
		t.Skip("session too short")
	}
	var ctxs [][]int
	var targets []int
	for i := 1; i < len(keys); i++ {
		ctxs = append(ctxs, keys[:i])
		targets = append(targets, keys[i])
	}
	dst := make([]int, 0, len(ctxs))
	got := o.RankBatch(dst, ctxs, targets)
	if &got[0] != &dst[:1][0] {
		t.Fatal("RankBatch did not reuse the caller's buffer")
	}
	buf := make([]float64, u.Model.Config().Vocab)
	for i := range ctxs {
		if want := o.RankAt(buf, ctxs[i], targets[i]); got[i] != want {
			t.Fatalf("position %d: RankBatch %d vs RankAt %d", i, got[i], want)
		}
	}
}

func TestOnlineConcurrentProcess(t *testing.T) {
	u, g := trainedUCAD(t)
	o := NewOnline(u)
	sessions := g.GenerateSessions(12)
	done := make(chan struct{})
	for w := 0; w < 4; w++ {
		go func(w int) {
			defer func() { done <- struct{}{} }()
			for i := w; i < len(sessions); i += 4 {
				o.Process(sessions[i])
			}
		}(w)
	}
	for w := 0; w < 4; w++ {
		<-done
	}
	processed, _ := o.Stats()
	if processed != 12 {
		t.Fatalf("processed = %d, want 12", processed)
	}
}
