package detect

import (
	"math"
	"sync"
	"testing"

	"github.com/ucad/ucad/internal/core"
	"github.com/ucad/ucad/internal/scorecache"
	"github.com/ucad/ucad/internal/workload"
)

// sentinelUCAD trains a small detector with a caller-chosen seed so two
// instances produce measurably different similarity rows — the swap
// tests tell "which model scored this" from the row itself.
func sentinelUCAD(t *testing.T, seed int64) (*core.UCAD, *workload.Generator) {
	t.Helper()
	cfg := core.DefaultConfig()
	cfg.Model.Hidden = 10
	cfg.Model.Heads = 2
	cfg.Model.Blocks = 2
	cfg.Model.Window = 24
	cfg.Model.TopP = 8
	cfg.Model.Epochs = 3
	cfg.Model.Dropout = 0
	cfg.Model.MinContext = 3
	cfg.Model.Seed = seed
	cfg.SkipClean = true
	g := workload.NewGenerator(workload.ScenarioI(), seed)
	u, err := core.Train(cfg, g.GenerateSessions(30), nil)
	if err != nil {
		t.Fatal(err)
	}
	return u, g
}

// refSims scores every context uncached (cache temporarily detached)
// and returns deep copies — the ground truth for one model's weights.
func refSims(u *core.UCAD, ctxs [][]int) [][]float64 {
	c := u.Model.ScoreCache()
	u.Model.SetScoreCache(nil)
	defer u.Model.SetScoreCache(c)
	out := make([][]float64, len(ctxs))
	for i, ctx := range ctxs {
		out[i] = append([]float64(nil), u.Model.ScoreNext(ctx)...)
	}
	return out
}

func rowsEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestSwapModelCarriesAndInvalidatesCache pins the hot-swap contract:
// the cache object (and its monotonic counters) survives the swap, the
// generation advances so no pre-swap row is ever served, and the old
// model is detached so stragglers cannot poison the carried cache.
func TestSwapModelCarriesAndInvalidatesCache(t *testing.T) {
	uA, g := sentinelUCAD(t, 11)
	uB, _ := sentinelUCAD(t, 37)
	c := scorecache.New(256)
	uA.Model.SetScoreCache(c)
	o := NewOnline(uA)

	s := g.NewSession()
	keys := make([]int, len(s.Ops))
	for j, op := range s.Ops {
		keys[j] = uA.Vocab.Key(op.SQL)
	}
	if len(keys) < 6 {
		t.Skip("session too short")
	}
	ctx := keys[:5]
	refA := refSims(uA, [][]int{ctx})[0]
	refB := refSims(uB, [][]int{ctx})[0]
	if rowsEqual(refA, refB) {
		t.Fatal("sentinel models score identically; swap test cannot discriminate")
	}

	// Warm the cache under model A.
	if got := o.Detector().Model.ScoreNext(ctx); !rowsEqual(got, refA) {
		t.Fatal("pre-swap score does not match model A reference")
	}
	preStats := c.Stats()
	gen := c.Gen()

	o.SwapModel(uB)

	if uB.Model.ScoreCache() != c {
		t.Fatal("cache was not carried onto the replacement model")
	}
	if uA.Model.ScoreCache() != nil {
		t.Fatal("old model still holds the carried cache")
	}
	if c.Gen() == gen {
		t.Fatal("swap did not advance the cache generation")
	}
	if got := o.Detector().Model.ScoreNext(ctx); !rowsEqual(got, refB) {
		t.Fatal("post-swap score served a stale (model A) row")
	}
	post := c.Stats()
	if post.Hits < preStats.Hits || post.Misses <= preStats.Misses {
		t.Fatalf("counters not monotonic across swap: %+v -> %+v", preStats, post)
	}
	// Swapping in a model that brings its own cache (old model has none)
	// must bump that cache instead.
	uC, _ := sentinelUCAD(t, 53)
	cc := scorecache.New(64)
	uC.Model.SetScoreCache(cc)
	o2 := NewOnline(uC)
	uD, _ := sentinelUCAD(t, 59)
	uC.Model.SetScoreCache(nil)
	uD.Model.SetScoreCache(cc)
	ccGen := cc.Gen()
	o2.SwapModel(uD)
	if cc.Gen() == ccGen {
		t.Fatal("incoming model's own cache was not bumped")
	}
}

// TestCachedScoringSwapRetrainRace hammers the cached scoring path from
// 16 goroutines while the model is hot-swapped between two sentinel
// builds and periodically fine-tuned. Every observed similarity row
// must exactly match the uncached reference of one of the legitimate
// weight states — a stale cached row from a previous generation fails
// the test. Run under -race.
func TestCachedScoringSwapRetrainRace(t *testing.T) {
	uA, g := sentinelUCAD(t, 11)
	uB, _ := sentinelUCAD(t, 37)
	c := scorecache.New(1024)
	uA.Model.SetScoreCache(c)
	o := NewOnline(uA)

	// Fixed contexts the scorers replay; references per model.
	var ctxs [][]int
	var targets []int
	for i := 0; i < 4; i++ {
		s := g.NewSession()
		keys := make([]int, len(s.Ops))
		for j, op := range s.Ops {
			keys[j] = uA.Vocab.Key(op.SQL)
		}
		if len(keys) < 6 {
			continue
		}
		ctxs = append(ctxs, keys[:4], keys[:5])
		targets = append(targets, keys[4], keys[5])
	}
	if len(ctxs) == 0 {
		t.Skip("no usable sessions generated")
	}
	refA := refSims(uA, ctxs)
	refB := refSims(uB, ctxs)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	errCh := make(chan string, 16)
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ranks := make([]int, 0, len(ctxs))
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				// The rank path must stay consistent under swaps: every
				// rank is within [1, Vocab] and the whole batch reflects
				// one model version (enforced by the read lock).
				ranks = o.RankBatch(ranks[:0], ctxs, targets)
				vocab := len(refA[0])
				for _, r := range ranks {
					if r < 1 || r > vocab {
						select {
						case errCh <- "rank out of range":
						default:
						}
						return
					}
				}
				// Between swaps (models frozen A/B), a scored row must be
				// byte-identical to the reference of the model that served
				// it — a stale or cross-model cached row fails here even if
				// it matches the *other* sentinel.
				d := o.Detector()
				want := refA
				if d == uB {
					want = refB
				}
				sims := d.Model.ScoreNext(ctxs[i%len(ctxs)])
				if !rowsEqual(sims, want[i%len(ctxs)]) {
					select {
					case errCh <- "scored row does not match the serving model's reference":
					default:
					}
					return
				}
			}
		}(w)
	}
	cur := uB
	for i := 0; i < 30; i++ {
		o.SwapModel(cur)
		if cur == uA {
			cur = uB
		} else {
			cur = uA
		}
	}
	close(stop)
	wg.Wait()
	select {
	case msg := <-errCh:
		t.Fatal(msg)
	default:
	}

	// Phase 2: retrain (fine-tune) under concurrent cached scoring. The
	// weights move, so rows are no longer pinnable mid-flight; afterwards
	// the cached path must agree exactly with an uncached recomputation.
	for _, s := range g.GenerateSessions(6) {
		o.Process(s)
	}
	stop2 := make(chan struct{})
	var wg2 sync.WaitGroup
	for w := 0; w < 16; w++ {
		wg2.Add(1)
		go func() {
			defer wg2.Done()
			ranks := make([]int, 0, len(ctxs))
			for {
				select {
				case <-stop2:
					return
				default:
					ranks = o.RankBatch(ranks[:0], ctxs, targets)
				}
			}
		}()
	}
	o.Retrain(1)
	close(stop2)
	wg2.Wait()

	final := o.Detector()
	gotCached := make([][]float64, len(ctxs))
	for i, ctx := range ctxs {
		gotCached[i] = append([]float64(nil), final.Model.ScoreNext(ctx)...)
	}
	ref := refSims(final, ctxs)
	for i := range ctxs {
		for k := range ref[i] {
			if math.Abs(gotCached[i][k]-ref[i][k]) != 0 {
				t.Fatalf("ctx %d key %d: post-retrain cached %v != uncached %v",
					i, k, gotCached[i][k], ref[i][k])
			}
		}
	}
	st := c.Stats()
	if st.Hits == 0 || st.Misses == 0 {
		t.Fatalf("race exercised no cache traffic: %+v", st)
	}
}
