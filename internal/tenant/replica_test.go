package tenant

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"reflect"
	"testing"

	"github.com/ucad/ucad/internal/replica"
	"github.com/ucad/ucad/internal/serve"
)

// TestReplicaFollowerPromoteFailover is the in-process failover loop:
// a durable two-tenant primary ships through a real HTTP shipper, a
// follower builds warm replica tenants in a second registry, promotion
// over the admin API flips them live, and a restart of the promoted
// standby proves its own WAL carried both eras.
func TestReplicaFollowerPromoteFailover(t *testing.T) {
	clk := newFakeClock()
	rootA, rootB := t.TempDir(), t.TempDir()

	optsA := durableOptions(clk, rootA)
	optsA.Durability.SegmentBytes = 256 // rotate early so history ships
	regA := New(optsA)
	modelA := filepath.Join(rootA, "a.model")
	modelB := filepath.Join(rootA, "b.model")
	saveModel(t, trainModel(t, "va"), modelA)
	saveModel(t, trainModel(t, "vb"), modelB)
	if err := regA.Boot([]Spec{
		{ID: "alpha", ModelPath: modelA},
		{ID: "beta", ModelPath: modelB},
	}); err != nil {
		t.Fatal(err)
	}
	ingestN(t, regA, "alpha", "a-c1", "va", 6)
	ingestN(t, regA, "alpha", "a-c2", "va", 4)
	ingestN(t, regA, "beta", "b-c1", "vb", 5)
	for _, tn := range regA.List() {
		tn.Service().Drain()
		// Seal the primaries' current state into shipped files: the
		// active-segment tail never replicates, a snapshot does.
		if err := tn.Service().SnapshotNow(); err != nil {
			t.Fatal(err)
		}
	}

	sh := &replica.Shipper{Root: filepath.Join(rootA, "tenants")}
	primary := httptest.NewServer(sh.Handler(""))
	defer primary.Close()

	optsB := durableOptions(clk, rootB)
	optsB.Durability.SegmentBytes = 256
	var follower *replica.Follower
	optsB.PrePromote = func() {
		follower.Stop()
		follower.SyncOnce(context.Background())
	}
	regB := New(optsB)
	f, err := replica.NewFollower(replica.FollowerConfig{
		PrimaryURL: primary.URL,
		Root:       rootB,
		OpenTarget: func(id, dir string) (replica.Target, error) {
			tn, err := regB.CreateReplica(id)
			if err != nil {
				return nil, err
			}
			return replica.ServiceTarget{Svc: tn.Service()}, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	follower = f
	if err := follower.SyncOnce(context.Background()); err != nil {
		t.Fatal(err)
	}

	for _, id := range []string{"alpha", "beta"} {
		tn, err := regB.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		if !tn.Replica() {
			t.Fatalf("tenant %s not in replica mode", id)
		}
		want := tenantByID(t, regA, id).Service().ExportSessions()
		got := tn.Service().ExportSessions()
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("replica %s diverges:\n got %+v\nwant %+v", id, got, want)
		}
	}
	if err := regB.Ingest(serve.Event{Tenant: "alpha", ClientID: "x", SQL: "SELECT 1"}); !errors.Is(err, serve.ErrNotReady) {
		t.Fatalf("replica ingest: %v, want ErrNotReady", err)
	}

	adminB := httptest.NewServer(regB.Handler())
	defer adminB.Close()
	res, err := http.Post(adminB.URL+"/v1/promote", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	var pr struct {
		Promoted []string `json:"promoted"`
	}
	if err := json.NewDecoder(res.Body).Decode(&pr); err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if res.StatusCode != http.StatusOK || !reflect.DeepEqual(pr.Promoted, []string{"alpha", "beta"}) {
		t.Fatalf("promote: %d %+v", res.StatusCode, pr)
	}
	res, err = http.Post(adminB.URL+"/v1/promote", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	var eb bytes.Buffer
	eb.ReadFrom(res.Body)
	res.Body.Close()
	if res.StatusCode != http.StatusConflict || !bytes.Contains(eb.Bytes(), []byte(CodeNotReplica)) {
		t.Fatalf("second promote: %d %s", res.StatusCode, eb.String())
	}

	// The promoted standby serves, durably, with session history intact.
	ingestN(t, regB, "alpha", "a-c1", "va", 3)
	ingestN(t, regB, "beta", "b-c2", "vb", 2)
	alphaB := tenantByID(t, regB, "alpha")
	alphaB.Service().Drain()
	tenantByID(t, regB, "beta").Service().Drain()
	wantAlpha := alphaB.Service().ExportSessions()
	if err := regB.Close(context.Background()); err != nil {
		t.Fatal(err)
	}

	regC := New(durableOptions(clk, rootB))
	if err := regC.Boot(nil); err != nil {
		t.Fatal(err)
	}
	defer regC.Close(context.Background())
	gotAlpha := tenantByID(t, regC, "alpha").Service().ExportSessions()
	if !reflect.DeepEqual(stripSessionTimes(gotAlpha), stripSessionTimes(wantAlpha)) {
		t.Fatalf("restarted promoted standby diverges:\n got %+v\nwant %+v", gotAlpha, wantAlpha)
	}
	if n := len(tenantByID(t, regC, "beta").Service().ExportSessions()); n != 2 {
		t.Fatalf("beta restored %d sessions, want 2", n)
	}
	if err := regA.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
}

func tenantByID(t *testing.T, r *Registry, id string) *Tenant {
	t.Helper()
	tn, err := r.Get(id)
	if err != nil {
		t.Fatal(err)
	}
	return tn
}

// stripSessionTimes zeroes wall-clock fields so restart comparisons
// check structure and keys, not timestamps.
func stripSessionTimes(ss []serve.SessionState) []serve.SessionState {
	out := make([]serve.SessionState, len(ss))
	for i, s := range ss {
		s.LastSeen = serve.SessionState{}.LastSeen
		for j := range s.Ops {
			s.Ops[j].Time = s.LastSeen
		}
		out[i] = s
	}
	return out
}
