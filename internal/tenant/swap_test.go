package tenant

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/ucad/ucad/internal/serve"
)

func putBody(t *testing.T, url string, body []byte) (int, string) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPut, url, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, string(b)
}

// TestHTTPModelHotSwap drives PUT /v1/tenants/{id}/model end to end:
// a valid upload swaps the serving model without dropping the tenant,
// the swap surfaces in stats and the tenant-labelled metric, and the
// failure modes answer the error envelope.
func TestHTTPModelHotSwap(t *testing.T) {
	clk := newFakeClock()
	root := t.TempDir()
	modelPath := filepath.Join(root, "a.model")
	saveModel(t, trainModel(t, "va"), modelPath)

	reg := New(durableOptions(clk, root))
	defer reg.Close(context.Background())
	ts := httptest.NewServer(reg.Handler())
	defer ts.Close()

	if resp, body := postJSON(t, ts.URL+"/v1/tenants", Spec{ID: "web", ModelPath: modelPath}); resp.StatusCode != http.StatusCreated {
		t.Fatalf("create = %d: %s", resp.StatusCode, body)
	}
	ev := func(prefix string, pos int) map[string]string {
		return map[string]string{"client_id": "c1", "user": "app", "sql": normalStatement(prefix, pos), "tenant": "web"}
	}
	if resp, body := postJSON(t, ts.URL+"/v1/events", ev("va", 0)); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("pre-swap ingest = %d: %s", resp.StatusCode, body)
	}

	// Swap in a model trained on a different workload.
	swapPath := filepath.Join(root, "b.model")
	saveModel(t, trainModel(t, "vb"), swapPath)
	swapBytes, err := os.ReadFile(swapPath)
	if err != nil {
		t.Fatal(err)
	}
	code, body := putBody(t, ts.URL+"/v1/tenants/web/model", swapBytes)
	if code != http.StatusOK {
		t.Fatalf("model swap = %d: %s", code, body)
	}
	var info Info
	if err := json.Unmarshal([]byte(body), &info); err != nil || info.ID != "web" {
		t.Fatalf("swap response: %s (err=%v)", body, err)
	}

	// The session survives the swap: the next event continues client c1's
	// open session against the new vocabulary.
	if resp, body := postJSON(t, ts.URL+"/v1/events", ev("vb", 1)); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("post-swap ingest = %d: %s", resp.StatusCode, body)
	}
	webT, _ := reg.Get("web")
	webT.Service().Drain()
	if st := webT.Stats(); st.ModelSwaps != 1 || st.EventsAccepted != 2 || st.SessionsOpen != 1 {
		t.Fatalf("post-swap stats: %+v", st)
	}

	// Stats JSON carries the swap counter and the retrain queue position.
	sresp, err := http.Get(ts.URL + "/v1/tenants/web/stats")
	if err != nil {
		t.Fatal(err)
	}
	sbody, _ := io.ReadAll(sresp.Body)
	sresp.Body.Close()
	var st struct {
		ModelSwaps           int64 `json:"model_swaps"`
		RetrainQueuePosition int   `json:"retrain_queue_position"`
	}
	if err := json.Unmarshal(sbody, &st); err != nil {
		t.Fatal(err)
	}
	if st.ModelSwaps != 1 || st.RetrainQueuePosition != 0 {
		t.Fatalf("stats: %s", sbody)
	}
	if !strings.Contains(string(sbody), "retrain_queue_position") {
		t.Fatalf("stats missing retrain_queue_position: %s", sbody)
	}

	// The swap counter is exported per tenant.
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mbody, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	if !strings.Contains(string(mbody), `ucad_model_swaps_total{tenant="web"} 1`) {
		t.Fatal("/metrics missing ucad_model_swaps_total for web")
	}

	// A body that is not a model must not disturb the serving model.
	code, body = putBody(t, ts.URL+"/v1/tenants/web/model", []byte("not a model"))
	if code != http.StatusBadRequest {
		t.Fatalf("garbage swap = %d: %s", code, body)
	}
	var eb tenantErrBody
	if err := json.Unmarshal([]byte(body), &eb); err != nil || eb.Error == nil {
		t.Fatalf("garbage swap envelope: %s", body)
	}
	if eb.Error.Code != CodeInvalidModel || eb.Error.Retryable || eb.Code != CodeInvalidModel {
		t.Fatalf("garbage swap envelope: %+v", eb)
	}
	if resp, _ := postJSON(t, ts.URL+"/v1/events", ev("vb", 2)); resp.StatusCode != http.StatusAccepted {
		t.Fatal("serving model was disturbed by a rejected upload")
	}
	if st := webT.Stats(); st.ModelSwaps != 1 {
		t.Fatalf("rejected upload bumped the swap counter: %d", st.ModelSwaps)
	}

	// Unknown tenant answers the structured 404.
	code, body = putBody(t, ts.URL+"/v1/tenants/ghost/model", swapBytes)
	if code != http.StatusNotFound || !strings.Contains(body, CodeUnknownTenant) {
		t.Fatalf("ghost swap = %d: %s", code, body)
	}

	// Draining: both ingest and swap answer the retryable envelope.
	if resp, _ := postJSON(t, ts.URL+"/v1/tenants/web/drain", struct{}{}); resp.StatusCode != http.StatusOK {
		t.Fatal("drain failed")
	}
	resp, ebody := postJSON(t, ts.URL+"/v1/events", ev("vb", 3))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("drained ingest = %d", resp.StatusCode)
	}
	var er struct {
		Err *serve.ErrorInfo `json:"error"`
	}
	if err := json.Unmarshal(ebody, &er); err != nil || er.Err == nil ||
		er.Err.Code != CodeTenantDraining || !er.Err.Retryable {
		t.Fatalf("drained ingest envelope: %s", ebody)
	}
	code, body = putBody(t, ts.URL+"/v1/tenants/web/model", swapBytes)
	if code != http.StatusServiceUnavailable || !strings.Contains(body, CodeTenantDraining) {
		t.Fatalf("drained swap = %d: %s", code, body)
	}
}
