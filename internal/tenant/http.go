package tenant

import (
	"encoding/json"
	"errors"
	"net/http"
	"strings"

	"github.com/ucad/ucad/internal/core"
	"github.com/ucad/ucad/internal/serve"
)

// Tenant-layer error codes, extending the serve envelope taxonomy
// (see internal/serve/envelope.go).
const (
	// CodeUnknownTenant is the machine-readable error code a routing
	// miss answers with — distinguishable from a bad payload (plain 400)
	// so a misconfigured frontend shows up as exactly that.
	CodeUnknownTenant = "unknown_tenant"
	// CodeTenantExists rejects creating an id that is already live.
	CodeTenantExists = "tenant_exists"
	// CodeTenantDraining rejects writes to a quiesced tenant (it may
	// come back or be deleted — retry and find out).
	CodeTenantDraining = "tenant_draining"
	// CodeInvalidModel rejects a model upload that fails validation.
	CodeInvalidModel = "invalid_model"
	// CodeNotReplica rejects promoting a process with no unpromoted
	// replica tenants — a refused state change (409), not a retryable
	// fault.
	CodeNotReplica = "not_replica"
)

// TenantHeader routes events whose body carries no tenant field.
const TenantHeader = "X-UCAD-Tenant"

// maxModelUpload bounds a PUT model body (the serialized detector).
const maxModelUpload = 256 << 20

// Handler returns the multi-tenant HTTP surface:
//
//	POST   /v1/events                  ingest, routed per event: body "tenant"
//	                                   field → X-UCAD-Tenant header → ?tenant= → default
//	GET    /v1/tenants                 list tenants (id, model source, stats)
//	POST   /v1/tenants                 create a tenant from a JSON Spec
//	DELETE /v1/tenants/{id}            delete a tenant and its data dir
//	POST   /v1/tenants/{id}/drain      quiesce a tenant (keeps it queryable)
//	PUT    /v1/tenants/{id}/model      hot-replace the tenant's serving model
//	GET    /v1/tenants/{id}/stats      that tenant's serving counters
//	GET    /v1/tenants/{id}/sessions   that tenant's open sessions (/v1/sessions?tenant= works too)
//	GET    /v1/tenants/{id}/alerts     that tenant's alerts (and .../alerts/{aid}/resolve)
//	GET    /v1/alerts, /stats          default-tenant views (?tenant= overrides) —
//	                                   the single-tenant API, unchanged
//	GET    /healthz                    liveness
//	GET    /metrics                    shared Prometheus exposition, tenant-labelled
//
// Every non-2xx response carries the unified error envelope
// {"error":{"code","message","retryable"}}; the tenant layer extends
// the serve taxonomy with unknown_tenant, tenant_exists,
// tenant_draining and invalid_model. The legacy top-level "code" string
// is still mirrored one release behind the migration.
func (r *Registry) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/events", r.handleEvents)
	mux.HandleFunc("GET /v1/tenants", r.handleList)
	mux.HandleFunc("POST /v1/tenants", r.handleCreate)
	mux.HandleFunc("DELETE /v1/tenants/{id}", r.handleDelete)
	mux.HandleFunc("POST /v1/tenants/{id}/drain", r.handleDrain)
	mux.HandleFunc("PUT /v1/tenants/{id}/model", r.handleModelSwap)
	mux.HandleFunc("GET /v1/tenants/{id}/stats", r.handleTenantStats)
	mux.HandleFunc("GET /v1/tenants/{id}/sessions", func(w http.ResponseWriter, req *http.Request) {
		r.handleSessions(w, req.PathValue("id"))
	})
	mux.HandleFunc("GET /v1/sessions", func(w http.ResponseWriter, req *http.Request) {
		r.handleSessions(w, req.URL.Query().Get("tenant"))
	})
	mux.HandleFunc("POST /v1/promote", r.handlePromote)
	mux.Handle("/v1/tenants/{id}/alerts", http.HandlerFunc(r.handleTenantScoped))
	mux.Handle("/v1/tenants/{id}/alerts/", http.HandlerFunc(r.handleTenantScoped))
	mux.HandleFunc("GET /v1/alerts", r.delegate)
	mux.HandleFunc("POST /v1/alerts/{aid}/resolve", r.delegate)
	mux.HandleFunc("GET /stats", func(w http.ResponseWriter, req *http.Request) {
		t, err := r.Get(req.URL.Query().Get("tenant"))
		if err != nil {
			writeTenantErr(w, err)
			return
		}
		writeJSON(w, http.StatusOK, r.tenantStats(t))
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, req *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	mux.Handle("GET /metrics", r.hub.Registry.Handler())
	return mux
}

// eventStatus mirrors serve's per-event batch status: the legacy Error
// string plus the envelope's code/retryable pair.
type eventStatus struct {
	Status string `json:"status"` // "accepted" or "rejected"
	// Error is the legacy rejection-reason string.
	//
	// Deprecated: read Code/Retryable instead.
	Error string `json:"error,omitempty"`
	// Code is the envelope taxonomy code of the rejection.
	Code string `json:"code,omitempty"`
	// Retryable reports whether resending this exact event can succeed.
	Retryable bool `json:"retryable,omitempty"`
}

// eventsResponse mirrors serve's response shape. The top-level "error"
// key carries the unified envelope object; "code" mirrors its code for
// clients of the pre-envelope API.
type eventsResponse struct {
	Accepted int              `json:"accepted"`
	Err      *serve.ErrorInfo `json:"error,omitempty"`
	// Deprecated: Code mirrors Err.Code one release behind the envelope
	// migration.
	Code   string        `json:"code,omitempty"`
	Events []eventStatus `json:"events,omitempty"`
}

// handleEvents is the routed ingest path. Batches may mix tenants; each
// event resolves independently so one bad tenant id rejects only its
// own events.
func (r *Registry) handleEvents(w http.ResponseWriter, req *http.Request) {
	events, isArray, err := serve.DecodeEvents(req)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, eventsResponse{
			Err:  serve.Errf(serve.CodeInvalidBody, err.Error(), false),
			Code: serve.CodeInvalidBody,
		})
		return
	}
	// Request-level fallback for events without a body tenant field.
	fallback := req.Header.Get(TenantHeader)
	if fallback == "" {
		fallback = req.URL.Query().Get("tenant")
	}
	route := func(ev serve.Event) error {
		if ev.Tenant == "" {
			ev.Tenant = fallback
		}
		return r.Ingest(ev)
	}
	if !isArray {
		if err := route(events[0]); err != nil {
			info := tenantErrorInfo(err)
			writeJSON(w, routedStatusCode(w, err), eventsResponse{Err: info, Code: info.Code})
			return
		}
		writeJSON(w, http.StatusAccepted, eventsResponse{Accepted: 1})
		return
	}
	statuses := make([]eventStatus, len(events))
	accepted := 0
	var firstErr error
	for i, ev := range events {
		err := route(ev)
		if err == nil {
			statuses[i] = eventStatus{Status: "accepted"}
			accepted++
			continue
		}
		info := tenantErrorInfo(err)
		statuses[i] = eventStatus{
			Status: "rejected", Error: err.Error(),
			Code: info.Code, Retryable: info.Retryable,
		}
		// Backpressure outranks validation errors for the batch status
		// code (same contract as the single-tenant handler): a 503 tells
		// the client the rejected events are retryable.
		if firstErr == nil || (errors.Is(err, serve.ErrBusy) || errors.Is(err, serve.ErrStopped)) &&
			!(errors.Is(firstErr, serve.ErrBusy) || errors.Is(firstErr, serve.ErrStopped)) {
			firstErr = err
		}
	}
	resp := eventsResponse{Accepted: accepted, Events: statuses}
	code := http.StatusAccepted
	if firstErr != nil {
		code = routedStatusCode(w, firstErr)
		resp.Err = tenantErrorInfo(firstErr)
		resp.Code = resp.Err.Code
	}
	writeJSON(w, code, resp)
}

// tenantErrorInfo extends serve's envelope classification with the
// tenant lifecycle/routing errors.
func tenantErrorInfo(err error) *serve.ErrorInfo {
	if err == nil {
		return nil
	}
	switch {
	case errors.Is(err, ErrUnknownTenant), errors.Is(err, ErrInvalidID):
		return serve.Errf(CodeUnknownTenant, err.Error(), false)
	case errors.Is(err, ErrDraining):
		return serve.Errf(CodeTenantDraining, err.Error(), true)
	case errors.Is(err, ErrRegistryClosed):
		return serve.Errf(serve.CodeShuttingDown, err.Error(), true)
	case errors.Is(err, ErrTenantExists):
		return serve.Errf(CodeTenantExists, err.Error(), false)
	case errors.Is(err, ErrInvalidModel):
		return serve.Errf(CodeInvalidModel, err.Error(), false)
	case errors.Is(err, serve.ErrNotReplica):
		return serve.Errf(CodeNotReplica, err.Error(), false)
	default:
		return serve.ErrorInfoFor(err)
	}
}

// routedStatusCode extends serve.IngestStatusCode with the routing
// errors: unknown tenant is a structured 404, draining a 503 (the
// tenant may come back or be deleted — retry and find out).
func routedStatusCode(w http.ResponseWriter, err error) int {
	switch {
	case errors.Is(err, ErrUnknownTenant), errors.Is(err, ErrInvalidID):
		return http.StatusNotFound
	case errors.Is(err, ErrDraining), errors.Is(err, ErrRegistryClosed):
		return http.StatusServiceUnavailable
	case errors.Is(err, ErrTenantExists), errors.Is(err, serve.ErrNotReplica):
		return http.StatusConflict
	case errors.Is(err, ErrInvalidModel):
		return http.StatusBadRequest
	default:
		return serve.IngestStatusCode(w, err)
	}
}

// Info is the admin-API view of one tenant.
type Info struct {
	ID          string      `json:"id"`
	Model       string      `json:"model,omitempty"` // what the model loaded from
	Dir         string      `json:"dir,omitempty"`
	Draining    bool        `json:"draining,omitempty"`
	Replica     bool        `json:"replica,omitempty"`
	Recovered   int         `json:"recovered_sessions"`
	CleanSeal   bool        `json:"clean_seal"`
	WALReplayed int         `json:"wal_records_replayed"`
	Stats       serve.Stats `json:"stats"`
}

func (t *Tenant) info() Info {
	return Info{
		ID:          t.id,
		Model:       t.modelFrom,
		Dir:         t.dir,
		Draining:    t.Draining(),
		Replica:     t.Replica(),
		Recovered:   t.restore.Sessions,
		CleanSeal:   t.restore.CleanSeal,
		WALReplayed: t.restore.Records,
		Stats:       t.Stats(),
	}
}

func (r *Registry) handleList(w http.ResponseWriter, req *http.Request) {
	ts := r.List()
	out := make([]Info, len(ts))
	for i, t := range ts {
		out[i] = t.info()
	}
	writeJSON(w, http.StatusOK, out)
}

func (r *Registry) handleCreate(w http.ResponseWriter, req *http.Request) {
	var spec Spec
	if err := json.NewDecoder(http.MaxBytesReader(w, req.Body, 1<<20)).Decode(&spec); err != nil {
		writeJSON(w, http.StatusBadRequest, tenantErrBody{
			Error: serve.Errf(serve.CodeInvalidBody, "invalid tenant spec", false),
			Code:  serve.CodeInvalidBody,
		})
		return
	}
	// The admin API never accepts a directory override: Spec.Dir exists
	// for the CLI's legacy single-tenant layout, and honoring it here
	// would let a request point a tenant at an arbitrary path.
	spec.Dir = ""
	t, err := r.Create(spec)
	if err != nil {
		writeTenantErr(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, t.info())
}

func (r *Registry) handleDelete(w http.ResponseWriter, req *http.Request) {
	if err := r.Delete(req.PathValue("id")); err != nil {
		writeTenantErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "deleted"})
}

func (r *Registry) handleDrain(w http.ResponseWriter, req *http.Request) {
	t, err := r.Drain(req.PathValue("id"))
	if err != nil {
		writeTenantErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, t.info())
}

// handleModelSwap is the hot model replacement path: the uploaded model
// is staged and validated off the ingest path (core.Load proves it
// decodes into a working detector), tuned like any other loaded model,
// then atomically swapped into the tenant's serving pipeline and
// checkpointed. Ingest keeps flowing throughout; a model that fails
// validation answers 400 invalid_model and changes nothing.
func (r *Registry) handleModelSwap(w http.ResponseWriter, req *http.Request) {
	t, err := r.Get(req.PathValue("id"))
	if err != nil {
		writeTenantErr(w, err)
		return
	}
	u, err := core.Load(http.MaxBytesReader(w, req.Body, maxModelUpload))
	if err != nil {
		writeTenantErr(w, errors.Join(ErrInvalidModel, err))
		return
	}
	if r.opts.Tune != nil {
		r.opts.Tune(u)
	}
	if err := t.SwapModel(u); err != nil {
		writeTenantErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, t.info())
}

// tenantStats wraps the serving counters with registry-level context:
// where the tenant sits in the shared fine-tune queue.
type tenantStats struct {
	serve.Stats
	// RetrainQueuePosition is the tenant's place in the weighted-fair
	// retrain queue (0 = idle or retraining now, 1 = next).
	RetrainQueuePosition int `json:"retrain_queue_position"`
}

func (r *Registry) tenantStats(t *Tenant) tenantStats {
	return tenantStats{Stats: t.Stats(), RetrainQueuePosition: r.gate.Position(t.id)}
}

func (r *Registry) handleTenantStats(w http.ResponseWriter, req *http.Request) {
	t, err := r.Get(req.PathValue("id"))
	if err != nil {
		writeTenantErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, r.tenantStats(t))
}

// handleSessions exposes the tenant's open sessions — the observable
// state the failover contract promises is identical on a promoted
// standby and an uninterrupted primary, and the surface the e2e suite
// compares across the two.
func (r *Registry) handleSessions(w http.ResponseWriter, id string) {
	t, err := r.Get(id)
	if err != nil {
		writeTenantErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, t.Service().ExportSessions())
}

// handlePromote flips every replica tenant to serving — the failover
// switch. 409 not_replica when there is nothing to promote (already
// promoted, or this process is a primary).
func (r *Registry) handlePromote(w http.ResponseWriter, req *http.Request) {
	promoted, err := r.Promote()
	if err != nil {
		writeTenantErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"promoted": promoted})
}

// handleTenantScoped rewrites /v1/tenants/{id}/alerts... onto the
// tenant's own cached single-tenant handler, so the per-tenant alert
// surface is exactly the single-tenant one.
func (r *Registry) handleTenantScoped(w http.ResponseWriter, req *http.Request) {
	id := req.PathValue("id")
	t, err := r.Get(id)
	if err != nil {
		writeTenantErr(w, err)
		return
	}
	rest := strings.TrimPrefix(req.URL.Path, "/v1/tenants/"+id)
	r2 := req.Clone(req.Context())
	r2.URL.Path = "/v1" + rest
	t.handler.Load().h.ServeHTTP(w, r2)
}

// delegate forwards a top-level single-tenant endpoint (alerts) to the
// ?tenant= tenant, defaulting to the default tenant — the unchanged
// single-tenant API.
func (r *Registry) delegate(w http.ResponseWriter, req *http.Request) {
	t, err := r.Get(req.URL.Query().Get("tenant"))
	if err != nil {
		writeTenantErr(w, err)
		return
	}
	t.handler.Load().h.ServeHTTP(w, req)
}

// tenantErrBody is the non-2xx response shape: the unified envelope
// plus the legacy top-level code mirror.
type tenantErrBody struct {
	Error *serve.ErrorInfo `json:"error"`
	// Deprecated: Code mirrors Error.Code one release behind the
	// envelope migration.
	Code string `json:"code,omitempty"`
}

// writeTenantErr renders a lifecycle/routing error as the unified
// envelope with its mapped HTTP status.
func writeTenantErr(w http.ResponseWriter, err error) {
	info := tenantErrorInfo(err)
	writeJSON(w, routedStatusCode(w, err), tenantErrBody{Error: info, Code: info.Code})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}
