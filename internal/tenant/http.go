package tenant

import (
	"encoding/json"
	"errors"
	"net/http"
	"strings"

	"github.com/ucad/ucad/internal/serve"
)

// CodeUnknownTenant is the machine-readable error code a routing miss
// answers with — distinguishable from a bad payload (plain 400) so a
// misconfigured frontend shows up as exactly that.
const CodeUnknownTenant = "unknown_tenant"

// TenantHeader routes events whose body carries no tenant field.
const TenantHeader = "X-UCAD-Tenant"

// Handler returns the multi-tenant HTTP surface:
//
//	POST   /v1/events                  ingest, routed per event: body "tenant"
//	                                   field → X-UCAD-Tenant header → ?tenant= → default
//	GET    /v1/tenants                 list tenants (id, model source, stats)
//	POST   /v1/tenants                 create a tenant from a JSON Spec
//	DELETE /v1/tenants/{id}            delete a tenant and its data dir
//	POST   /v1/tenants/{id}/drain      quiesce a tenant (keeps it queryable)
//	GET    /v1/tenants/{id}/stats      that tenant's serving counters
//	GET    /v1/tenants/{id}/alerts     that tenant's alerts (and .../alerts/{aid}/resolve)
//	GET    /v1/alerts, /stats          default-tenant views (?tenant= overrides) —
//	                                   the single-tenant API, unchanged
//	GET    /healthz                    liveness
//	GET    /metrics                    shared Prometheus exposition, tenant-labelled
//
// Events routed to a nonexistent tenant answer a structured 404 with
// code "unknown_tenant"; per-event statuses carry the same code inside
// batch responses.
func (r *Registry) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/events", r.handleEvents)
	mux.HandleFunc("GET /v1/tenants", r.handleList)
	mux.HandleFunc("POST /v1/tenants", r.handleCreate)
	mux.HandleFunc("DELETE /v1/tenants/{id}", r.handleDelete)
	mux.HandleFunc("POST /v1/tenants/{id}/drain", r.handleDrain)
	mux.HandleFunc("GET /v1/tenants/{id}/stats", r.handleTenantStats)
	mux.Handle("/v1/tenants/{id}/alerts", http.HandlerFunc(r.handleTenantScoped))
	mux.Handle("/v1/tenants/{id}/alerts/", http.HandlerFunc(r.handleTenantScoped))
	mux.HandleFunc("GET /v1/alerts", r.delegate)
	mux.HandleFunc("POST /v1/alerts/{aid}/resolve", r.delegate)
	mux.HandleFunc("GET /stats", func(w http.ResponseWriter, req *http.Request) {
		t, err := r.Get(req.URL.Query().Get("tenant"))
		if err != nil {
			writeTenantErr(w, err)
			return
		}
		writeJSON(w, http.StatusOK, t.Stats())
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, req *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	mux.Handle("GET /metrics", r.hub.Registry.Handler())
	return mux
}

// eventStatus mirrors serve's per-event batch status, plus the
// machine-readable code for routing misses.
type eventStatus struct {
	Status string `json:"status"`          // "accepted" or "rejected"
	Error  string `json:"error,omitempty"` // rejection reason
	Code   string `json:"code,omitempty"`  // "unknown_tenant" on a routing miss
}

// eventsResponse mirrors serve's response shape with the added Code.
type eventsResponse struct {
	Accepted int           `json:"accepted"`
	Error    string        `json:"error,omitempty"`
	Code     string        `json:"code,omitempty"`
	Events   []eventStatus `json:"events,omitempty"`
}

// handleEvents is the routed ingest path. Batches may mix tenants; each
// event resolves independently so one bad tenant id rejects only its
// own events.
func (r *Registry) handleEvents(w http.ResponseWriter, req *http.Request) {
	events, isArray, err := serve.DecodeEvents(req)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, eventsResponse{Error: err.Error()})
		return
	}
	// Request-level fallback for events without a body tenant field.
	fallback := req.Header.Get(TenantHeader)
	if fallback == "" {
		fallback = req.URL.Query().Get("tenant")
	}
	route := func(ev serve.Event) error {
		if ev.Tenant == "" {
			ev.Tenant = fallback
		}
		return r.Ingest(ev)
	}
	if !isArray {
		if err := route(events[0]); err != nil {
			code, ecode := routedStatusCode(w, err)
			writeJSON(w, code, eventsResponse{Error: err.Error(), Code: ecode})
			return
		}
		writeJSON(w, http.StatusAccepted, eventsResponse{Accepted: 1})
		return
	}
	statuses := make([]eventStatus, len(events))
	accepted := 0
	var firstErr error
	for i, ev := range events {
		err := route(ev)
		if err == nil {
			statuses[i] = eventStatus{Status: "accepted"}
			accepted++
			continue
		}
		statuses[i] = eventStatus{Status: "rejected", Error: err.Error()}
		if errors.Is(err, ErrUnknownTenant) {
			statuses[i].Code = CodeUnknownTenant
		}
		// Backpressure outranks validation errors for the batch status
		// code (same contract as the single-tenant handler): a 503 tells
		// the client the rejected events are retryable.
		if firstErr == nil || (errors.Is(err, serve.ErrBusy) || errors.Is(err, serve.ErrStopped)) &&
			!(errors.Is(firstErr, serve.ErrBusy) || errors.Is(firstErr, serve.ErrStopped)) {
			firstErr = err
		}
	}
	code, ecode := http.StatusAccepted, ""
	if firstErr != nil {
		code, ecode = routedStatusCode(w, firstErr)
	}
	writeJSON(w, code, eventsResponse{Accepted: accepted, Events: statuses, Code: ecode})
}

// routedStatusCode extends serve.IngestStatusCode with the routing
// errors: unknown tenant is a structured 404, draining a 503 (the
// tenant may come back or be deleted — retry and find out).
func routedStatusCode(w http.ResponseWriter, err error) (httpCode int, errCode string) {
	switch {
	case errors.Is(err, ErrUnknownTenant):
		return http.StatusNotFound, CodeUnknownTenant
	case errors.Is(err, ErrInvalidID):
		return http.StatusNotFound, CodeUnknownTenant
	case errors.Is(err, ErrDraining), errors.Is(err, ErrRegistryClosed):
		return http.StatusServiceUnavailable, ""
	default:
		return serve.IngestStatusCode(w, err), ""
	}
}

// Info is the admin-API view of one tenant.
type Info struct {
	ID          string      `json:"id"`
	Model       string      `json:"model,omitempty"` // what the model loaded from
	Dir         string      `json:"dir,omitempty"`
	Draining    bool        `json:"draining,omitempty"`
	Recovered   int         `json:"recovered_sessions"`
	CleanSeal   bool        `json:"clean_seal"`
	WALReplayed int         `json:"wal_records_replayed"`
	Stats       serve.Stats `json:"stats"`
}

func (t *Tenant) info() Info {
	return Info{
		ID:          t.id,
		Model:       t.modelFrom,
		Dir:         t.dir,
		Draining:    t.Draining(),
		Recovered:   t.restore.Sessions,
		CleanSeal:   t.restore.CleanSeal,
		WALReplayed: t.restore.Records,
		Stats:       t.Stats(),
	}
}

func (r *Registry) handleList(w http.ResponseWriter, req *http.Request) {
	ts := r.List()
	out := make([]Info, len(ts))
	for i, t := range ts {
		out[i] = t.info()
	}
	writeJSON(w, http.StatusOK, out)
}

func (r *Registry) handleCreate(w http.ResponseWriter, req *http.Request) {
	var spec Spec
	if err := json.NewDecoder(http.MaxBytesReader(w, req.Body, 1<<20)).Decode(&spec); err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "invalid tenant spec"})
		return
	}
	// The admin API never accepts a directory override: Spec.Dir exists
	// for the CLI's legacy single-tenant layout, and honoring it here
	// would let a request point a tenant at an arbitrary path.
	spec.Dir = ""
	t, err := r.Create(spec)
	if err != nil {
		code := http.StatusBadRequest
		if errors.Is(err, ErrTenantExists) {
			code = http.StatusConflict
		}
		writeJSON(w, code, map[string]string{"error": err.Error()})
		return
	}
	writeJSON(w, http.StatusCreated, t.info())
}

func (r *Registry) handleDelete(w http.ResponseWriter, req *http.Request) {
	if err := r.Delete(req.PathValue("id")); err != nil {
		writeTenantErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "deleted"})
}

func (r *Registry) handleDrain(w http.ResponseWriter, req *http.Request) {
	t, err := r.Drain(req.PathValue("id"))
	if err != nil {
		writeTenantErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, t.info())
}

func (r *Registry) handleTenantStats(w http.ResponseWriter, req *http.Request) {
	t, err := r.Get(req.PathValue("id"))
	if err != nil {
		writeTenantErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, t.Stats())
}

// handleTenantScoped rewrites /v1/tenants/{id}/alerts... onto the
// tenant's own cached single-tenant handler, so the per-tenant alert
// surface is exactly the single-tenant one.
func (r *Registry) handleTenantScoped(w http.ResponseWriter, req *http.Request) {
	id := req.PathValue("id")
	t, err := r.Get(id)
	if err != nil {
		writeTenantErr(w, err)
		return
	}
	rest := strings.TrimPrefix(req.URL.Path, "/v1/tenants/"+id)
	r2 := req.Clone(req.Context())
	r2.URL.Path = "/v1" + rest
	t.handler.Load().h.ServeHTTP(w, r2)
}

// delegate forwards a top-level single-tenant endpoint (alerts) to the
// ?tenant= tenant, defaulting to the default tenant — the unchanged
// single-tenant API.
func (r *Registry) delegate(w http.ResponseWriter, req *http.Request) {
	t, err := r.Get(req.URL.Query().Get("tenant"))
	if err != nil {
		writeTenantErr(w, err)
		return
	}
	t.handler.Load().h.ServeHTTP(w, req)
}

// writeTenantErr renders a lifecycle/routing error with the structured
// code where one applies.
func writeTenantErr(w http.ResponseWriter, err error) {
	body := map[string]string{"error": err.Error()}
	code := http.StatusBadRequest
	switch {
	case errors.Is(err, ErrUnknownTenant):
		code = http.StatusNotFound
		body["code"] = CodeUnknownTenant
	case errors.Is(err, ErrDraining), errors.Is(err, ErrRegistryClosed):
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, body)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}
