package tenant

import (
	"sync"
	"time"
)

// FairGate is the registry's weighted-fair admission gate for
// background fine-tune rounds. Every tenant's Service shares one
// process-wide training budget (the data-parallel TrainWorkers pool
// saturates the host's cores); without a gate, N tenants crossing their
// retrain thresholds together would run N fine-tunes concurrently and
// oversubscribe every core. The gate admits one round at a time and
// picks the next round by lowest weighted service time — the tenant
// that has consumed the least training wall-clock per unit of weight
// goes first — so a tenant retraining constantly cannot starve one that
// retrains rarely.
//
// It implements serve.RetrainGate.
type FairGate struct {
	mu   sync.Mutex
	cond *sync.Cond
	busy bool
	// running is the tenant currently holding the gate ("" when idle).
	running string
	// served is each tenant's accumulated training wall-clock.
	served map[string]time.Duration
	// weight scales a tenant's fair share (unset means 1; a weight of 2
	// lets a tenant consume twice the training time before yielding).
	weight map[string]float64
	seq    uint64
	queue  []*gateWaiter
}

type gateWaiter struct {
	tenant string
	seq    uint64
}

// NewFairGate returns an idle gate.
func NewFairGate() *FairGate {
	g := &FairGate{
		served: make(map[string]time.Duration),
		weight: make(map[string]float64),
	}
	g.cond = sync.NewCond(&g.mu)
	return g
}

// SetWeight scales tenant's fair share (values <= 0 reset to 1).
func (g *FairGate) SetWeight(tenant string, w float64) {
	g.mu.Lock()
	if w <= 0 {
		delete(g.weight, tenant)
	} else {
		g.weight[tenant] = w
	}
	g.mu.Unlock()
}

// vtimeLocked is the tenant's weighted service time — the fair-queueing
// priority key (lower runs first).
func (g *FairGate) vtimeLocked(tenant string) float64 {
	w := g.weight[tenant]
	if w <= 0 {
		w = 1
	}
	return float64(g.served[tenant]) / w
}

// pickLocked returns the waiter that should run next: minimum weighted
// service time, ties broken by arrival order. nil when nobody waits.
func (g *FairGate) pickLocked() *gateWaiter {
	var best *gateWaiter
	var bestV float64
	for _, w := range g.queue {
		v := g.vtimeLocked(w.tenant)
		if best == nil || v < bestV || (v == bestV && w.seq < best.seq) {
			best, bestV = w, v
		}
	}
	return best
}

// Acquire blocks until the caller's fine-tune round may start and
// returns the release to call when it ends. Safe for concurrent use
// from many tenants' retraining goroutines.
func (g *FairGate) Acquire(tenant string) func() {
	g.mu.Lock()
	g.seq++
	w := &gateWaiter{tenant: tenant, seq: g.seq}
	g.queue = append(g.queue, w)
	for g.busy || g.pickLocked() != w {
		g.cond.Wait()
	}
	for i, q := range g.queue {
		if q == w {
			g.queue = append(g.queue[:i], g.queue[i+1:]...)
			break
		}
	}
	g.busy = true
	g.running = tenant
	g.mu.Unlock()
	start := time.Now()
	var once sync.Once
	return func() {
		once.Do(func() {
			g.mu.Lock()
			g.served[tenant] += time.Since(start)
			g.busy = false
			g.running = ""
			g.mu.Unlock()
			g.cond.Broadcast()
		})
	}
}

// Position reports the tenant's place in the retrain queue: 0 when it
// is idle or running now, 1 when it runs next, and so on. Multiple
// queued rounds for one tenant report the best one's position.
func (g *FairGate) Position(tenant string) int {
	g.mu.Lock()
	defer g.mu.Unlock()
	var mine *gateWaiter
	for _, w := range g.queue {
		if w.tenant == tenant && (mine == nil || w.seq < mine.seq) {
			mine = w
		}
	}
	if mine == nil {
		return 0
	}
	myV := g.vtimeLocked(tenant)
	pos := 1
	seen := map[string]bool{tenant: true}
	for _, w := range g.queue {
		if seen[w.tenant] {
			continue
		}
		v := g.vtimeLocked(w.tenant)
		if v < myV || (v == myV && w.seq < mine.seq) {
			seen[w.tenant] = true
			pos++
		}
	}
	return pos
}
