package tenant

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"github.com/ucad/ucad/internal/serve"
	"github.com/ucad/ucad/internal/wal"
)

// Warm-standby lifecycle. A standby process boots an ordinary Registry
// over its own data root and creates each tenant with CreateReplica as
// the replication follower syncs its files in: the tenant's model loads
// from the shipped checkpoint manifest, its pipeline runs live but
// refuses traffic (serve.ErrNotReady), and the follower's replayer
// keeps its sessions tracking the primary. Promote flips every replica
// tenant to serving at once — the standby becomes the primary, same
// directories, same tenant ids, session-id floors intact.

// CreateReplica boots a warm-standby tenant over its synced directory
// (<Root>/tenants/<id>, populated by a replication follower). The
// shipped tenant.json provides the spec, the shipped checkpoint
// manifest the model; the shipped WAL manifest fixes the shard count so
// promotion can open the same streams. The tenant is registered for
// routing (stats, alerts) but Ingest answers ErrNotReady until Promote.
//
// Returning an error is non-fatal for the follower: it retries on the
// next sync round (e.g. the first checkpoint has not shipped yet).
func (r *Registry) CreateReplica(id string) (*Tenant, error) {
	if err := ValidateID(id); err != nil {
		return nil, err
	}
	if r.opts.Root == "" {
		return nil, errors.New("tenant: replica registry needs a data root")
	}
	r.adminMu.Lock()
	defer r.adminMu.Unlock()
	r.mu.RLock()
	_, exists := r.tenants[id]
	closed := r.closed
	r.mu.RUnlock()
	if closed {
		return nil, ErrRegistryClosed
	}
	if exists {
		return nil, fmt.Errorf("%w: %s", ErrTenantExists, id)
	}

	dir := filepath.Join(r.opts.Root, "tenants", id)
	spec, err := readSpec(dir)
	if err != nil {
		return nil, fmt.Errorf("tenant %s: %w", id, err)
	}
	if spec.ID != id {
		return nil, fmt.Errorf("tenant %s: shipped %s names %q", id, specFile, spec.ID)
	}
	t := &Tenant{id: id, spec: spec, dir: dir}
	fail := func(err error) (*Tenant, error) {
		r.hub.RemoveTenant(id)
		return nil, err
	}
	ckpts, err := wal.OpenCheckpoints(filepath.Join(dir, "checkpoints"), 0)
	if err != nil {
		return fail(err)
	}
	t.ckpts = ckpts
	u, from, err := loadModel(ckpts, spec.ModelPath)
	if err != nil {
		return fail(fmt.Errorf("tenant %s: no shipped model yet: %w", id, err))
	}
	t.modelFrom = from
	if r.opts.Tune != nil {
		r.opts.Tune(u)
	}

	cfg := r.opts.Serve
	cfg.Metrics = r.hub.Tenant(id)
	cfg.RetrainGate = r.gate
	cfg.Durability = nil // promotion wires the standby's own WAL
	cfg.Replica = true
	// The shipped stream layout dictates the shard count: the replayer
	// routes by the same hash, and PromoteToServing re-opens exactly
	// these streams.
	if man, ok, merr := wal.LoadManifest(filepath.Join(dir, "wal")); merr != nil {
		return fail(fmt.Errorf("tenant %s: %w", id, merr))
	} else if ok {
		cfg.Shards = man.Shards
	}
	t.svc = serve.NewService(u, cfg)
	h := tenantHandler{h: t.svc.Handler()}
	t.handler.Store(&h)

	r.mu.Lock()
	r.tenants[id] = t
	r.mu.Unlock()
	return t, nil
}

// readSpec loads a tenant's persisted identity record.
func readSpec(dir string) (Spec, error) {
	var sp Spec
	b, err := os.ReadFile(filepath.Join(dir, specFile))
	if err != nil {
		return sp, err
	}
	if err := json.Unmarshal(b, &sp); err != nil {
		return sp, fmt.Errorf("corrupt %s: %w", specFile, err)
	}
	return sp, nil
}

// Replica reports whether the tenant is an unpromoted warm standby.
func (t *Tenant) Replica() bool { return t.svc.IsReplica() }

// Promote flips every replica tenant in the registry to serving: each
// opens its own WAL streams on its synced directory (built from the
// registry's durability template), seals the replication era with a
// fresh snapshot, and starts accepting traffic. Returns the promoted
// tenant ids; with no replica tenants it returns serve.ErrNotReplica
// (the admin API's 409).
//
// Options.PrePromote — typically "stop the follower, drain the last
// shipped files" — runs first, outside the admin lock, so a follower
// mid-sync (which may itself be creating tenants) can finish cleanly.
func (r *Registry) Promote() ([]string, error) {
	if r.opts.PrePromote != nil {
		r.opts.PrePromote()
	}
	r.adminMu.Lock()
	defer r.adminMu.Unlock()
	r.mu.RLock()
	closed := r.closed
	var replicas []*Tenant
	for _, t := range r.tenants {
		if t.svc.IsReplica() {
			replicas = append(replicas, t)
		}
	}
	r.mu.RUnlock()
	if closed {
		return nil, ErrRegistryClosed
	}
	if len(replicas) == 0 {
		return nil, serve.ErrNotReplica
	}
	var promoted []string
	var firstErr error
	for _, t := range replicas {
		d := r.opts.Durability
		d.Dir = filepath.Join(t.dir, "wal")
		d.Checkpoints = t.ckpts
		if err := t.svc.PromoteToServing(&d); err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("tenant %s: %w", t.id, err)
			}
			continue
		}
		t.svc.Start()
		promoted = append(promoted, t.id)
	}
	sort.Strings(promoted)
	return promoted, firstErr
}
