package tenant

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
)

func postJSON(t *testing.T, url string, v any) (*http.Response, []byte) {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	return resp, body
}

// TestHTTPRoutingAndAdmin drives the full multi-tenant HTTP surface:
// admin CRUD, event routing by body field / header / query, the
// structured unknown_tenant 404, per-tenant stats, and tenant-labelled
// metrics (including label removal on delete).
func TestHTTPRoutingAndAdmin(t *testing.T) {
	clk := newFakeClock()
	root := t.TempDir()
	modelPath := filepath.Join(root, "m.model")
	saveModel(t, trainModel(t, "va"), modelPath)

	reg := New(durableOptions(clk, root))
	defer reg.Close(context.Background())
	// The default tenant backs the unchanged single-tenant API.
	if _, err := reg.CreateFromModel(Spec{}, trainModel(t, "vd")); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(reg.Handler())
	defer ts.Close()

	// Admin create over HTTP.
	resp, body := postJSON(t, ts.URL+"/v1/tenants", Spec{ID: "web", ModelPath: modelPath})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create = %d: %s", resp.StatusCode, body)
	}
	var created Info
	if err := json.Unmarshal(body, &created); err != nil {
		t.Fatal(err)
	}
	if created.ID != "web" || created.Model != modelPath {
		t.Fatalf("created info: %+v", created)
	}
	// Duplicate create answers 409.
	if resp, _ := postJSON(t, ts.URL+"/v1/tenants", Spec{ID: "web", ModelPath: modelPath}); resp.StatusCode != http.StatusConflict {
		t.Fatalf("duplicate create = %d, want 409", resp.StatusCode)
	}

	// Routing: body field, header, query — each lands in "web".
	ev := func(pos int) map[string]string {
		return map[string]string{"client_id": "c1", "user": "app", "sql": normalStatement("va", pos)}
	}
	withTenant := ev(0)
	withTenant["tenant"] = "web"
	if resp, body := postJSON(t, ts.URL+"/v1/events", withTenant); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("body-routed ingest = %d: %s", resp.StatusCode, body)
	}
	req, _ := http.NewRequest("POST", ts.URL+"/v1/events", strings.NewReader(mustJSON(t, ev(1))))
	req.Header.Set(TenantHeader, "web")
	hr, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, hr.Body)
	hr.Body.Close()
	if hr.StatusCode != http.StatusAccepted {
		t.Fatalf("header-routed ingest = %d", hr.StatusCode)
	}
	if resp, _ := postJSON(t, ts.URL+"/v1/events?tenant=web", ev(2)); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("query-routed ingest = %d", resp.StatusCode)
	}
	// No tenant anywhere → default tenant.
	if resp, _ := postJSON(t, ts.URL+"/v1/events", map[string]string{"client_id": "d1", "user": "app", "sql": normalStatement("vd", 0)}); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("default-routed ingest = %d", resp.StatusCode)
	}

	// Unknown tenant: structured 404 with the machine-readable code.
	ghost := ev(0)
	ghost["tenant"] = "ghost"
	resp, body = postJSON(t, ts.URL+"/v1/events", ghost)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown tenant = %d, want 404", resp.StatusCode)
	}
	var er eventsResponse
	if err := json.Unmarshal(body, &er); err != nil {
		t.Fatal(err)
	}
	if er.Code != CodeUnknownTenant || er.Err == nil ||
		er.Err.Code != CodeUnknownTenant || er.Err.Message == "" || er.Err.Retryable {
		t.Fatalf("unknown-tenant response: %+v", er)
	}

	// Mixed-tenant batch: the good event is absorbed, the bad one is
	// rejected with a per-event code, and the batch code surfaces it.
	good := ev(3)
	good["tenant"] = "web"
	resp, body = postJSON(t, ts.URL+"/v1/events", []map[string]string{good, ghost})
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("mixed batch = %d, want 404", resp.StatusCode)
	}
	if err := json.Unmarshal(body, &er); err != nil {
		t.Fatal(err)
	}
	if er.Accepted != 1 || len(er.Events) != 2 ||
		er.Events[0].Status != "accepted" ||
		er.Events[1].Status != "rejected" || er.Events[1].Code != CodeUnknownTenant {
		t.Fatalf("mixed batch response: %+v", er)
	}

	// Per-tenant stats see exactly web's events (3 routed + 1 batch).
	webT, _ := reg.Get("web")
	webT.Service().Drain()
	sresp, err := http.Get(ts.URL + "/v1/tenants/web/stats")
	if err != nil {
		t.Fatal(err)
	}
	sbody, _ := io.ReadAll(sresp.Body)
	sresp.Body.Close()
	var st struct {
		EventsAccepted int64 `json:"events_accepted"`
	}
	if err := json.Unmarshal(sbody, &st); err != nil {
		t.Fatal(err)
	}
	if st.EventsAccepted != 4 {
		t.Fatalf("web events_accepted = %d, want 4: %s", st.EventsAccepted, sbody)
	}

	// List shows both tenants sorted by id.
	lresp, err := http.Get(ts.URL + "/v1/tenants")
	if err != nil {
		t.Fatal(err)
	}
	lbody, _ := io.ReadAll(lresp.Body)
	lresp.Body.Close()
	var infos []Info
	if err := json.Unmarshal(lbody, &infos); err != nil {
		t.Fatal(err)
	}
	if len(infos) != 2 || infos[0].ID != "default" || infos[1].ID != "web" {
		t.Fatalf("list: %s", lbody)
	}

	// The shared exposition carries both tenants' labelled series.
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mbody, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	for _, series := range []string{
		`ucad_events_accepted_total{tenant="default"} 1`,
		`ucad_events_accepted_total{tenant="web"} 4`,
		`ucad_ingest_seconds_count{tenant="web"}`,
	} {
		if !strings.Contains(string(mbody), series) {
			t.Fatalf("/metrics missing %q", series)
		}
	}

	// Drain quiesces: further events answer 503.
	if dresp, _ := postJSON(t, ts.URL+"/v1/tenants/web/drain", struct{}{}); dresp.StatusCode != http.StatusOK {
		t.Fatalf("drain = %d", dresp.StatusCode)
	}
	if resp, _ := postJSON(t, ts.URL+"/v1/events", withTenant); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("drained ingest = %d, want 503", resp.StatusCode)
	}

	// Delete removes the tenant, its routing, and its metric series.
	dreq, _ := http.NewRequest("DELETE", ts.URL+"/v1/tenants/web", nil)
	dresp, err := http.DefaultClient.Do(dreq)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, dresp.Body)
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusOK {
		t.Fatalf("delete = %d", dresp.StatusCode)
	}
	if resp, _ := postJSON(t, ts.URL+"/v1/events", withTenant); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("post-delete ingest = %d, want 404", resp.StatusCode)
	}
	mresp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mbody, _ = io.ReadAll(mresp.Body)
	mresp.Body.Close()
	if strings.Contains(string(mbody), `tenant="web"`) {
		t.Fatal("deleted tenant's series still exported")
	}
	if !strings.Contains(string(mbody), `tenant="default"`) {
		t.Fatal("default tenant's series disappeared")
	}
}

// TestHTTPSingleTenantSurfaceUnchanged: the pre-multi-tenant endpoints
// (/v1/alerts, /stats, /healthz) keep working against the default
// tenant, and the per-tenant alert surface mirrors them.
func TestHTTPSingleTenantSurfaceUnchanged(t *testing.T) {
	clk := newFakeClock()
	reg := New(Options{Serve: testServeConfig(clk)})
	defer reg.Close(context.Background())
	if _, err := reg.CreateFromModel(Spec{}, trainModel(t, "va")); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(reg.Handler())
	defer ts.Close()

	// An anomaly mid-session raises an alert on the default tenant.
	for pos := 0; pos < 8; pos++ {
		sql := normalStatement("va", pos)
		if pos == 5 {
			sql = anomalySQL
		}
		resp, body := postJSON(t, ts.URL+"/v1/events", map[string]string{"client_id": "c1", "user": "app", "sql": sql})
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("ingest = %d: %s", resp.StatusCode, body)
		}
	}
	dflt, _ := reg.Get("")
	dflt.Service().Drain()

	for _, path := range []string{"/v1/alerts", "/v1/tenants/default/alerts"} {
		resp, err := http.Get(ts.URL + path + "?status=open")
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s = %d", path, resp.StatusCode)
		}
		var alerts struct {
			Alerts []map[string]any `json:"alerts"`
		}
		if err := json.Unmarshal(body, &alerts); err != nil {
			t.Fatal(err)
		}
		if len(alerts.Alerts) != 1 {
			t.Fatalf("GET %s alerts = %s", path, body)
		}
	}
	for _, path := range []string{"/healthz", "/stats", "/v1/tenants/default/stats"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s = %d", path, resp.StatusCode)
		}
	}
	// Unknown-tenant admin lookups answer the structured 404 too.
	resp, err := http.Get(ts.URL + "/v1/tenants/ghost/stats")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound || !strings.Contains(string(body), CodeUnknownTenant) {
		t.Fatalf("ghost stats = %d: %s", resp.StatusCode, body)
	}
}

func mustJSON(t *testing.T, v any) string {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}
