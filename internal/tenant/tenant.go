// Package tenant multiplexes many independent detection scenarios —
// the paper trains one detector per workload (Scenario-I commenting,
// Scenario-II location, syslog transfer) — into one serving process.
// Each tenant owns a full vertical slice: a trained model + vocabulary,
// an assembler/scoring pipeline (serve.Service), a WAL/snapshot
// directory, a fine-tune schedule, and its own checkpoint manifest.
// Tenants are the unit of horizontal scale (ROADMAP): nothing is shared
// between them but the process, the HTTP listener, and the metrics
// registry (where every family is partitioned by a tenant label).
//
// Locking model (see DESIGN.md): the registry is a read-mostly map
// under an RWMutex — the event hot path takes only the read lock for
// the id → *Tenant lookup, then runs entirely on the tenant's own
// pipeline. Creation and deletion serialize on a separate admin mutex
// and do their slow work (model load, WAL replay, directory removal)
// outside the map lock, so booting or deleting one tenant never stalls
// ingest into its siblings.
package tenant

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"

	"github.com/ucad/ucad/internal/core"
	"github.com/ucad/ucad/internal/serve"
	"github.com/ucad/ucad/internal/wal"
)

// Errors surfaced to API callers. ErrUnknownTenant maps to the
// structured HTTP 404 with code "unknown_tenant" — a routing mistake
// must be distinguishable from a bad payload.
var (
	ErrUnknownTenant  = errors.New("tenant: unknown tenant")
	ErrTenantExists   = errors.New("tenant: tenant already exists")
	ErrDraining       = errors.New("tenant: tenant is draining")
	ErrRegistryClosed = errors.New("tenant: registry closed")
	ErrInvalidID      = errors.New("tenant: invalid tenant id")
	ErrInvalidModel   = errors.New("tenant: model failed validation")
)

// Spec describes one tenant: its identity and where its trained model
// comes from. It is persisted as <dir>/tenant.json so admin-created
// tenants come back after a restart.
type Spec struct {
	// ID names the tenant; it becomes a path component and a metrics
	// label, so it is restricted to [a-zA-Z0-9][a-zA-Z0-9_-]{0,63}.
	// Empty means serve.DefaultTenant.
	ID string `json:"id"`
	// ModelPath is the trained model file (ucad train). Boot prefers the
	// newest loadable checkpoint from the tenant's manifest and falls
	// back to this path.
	ModelPath string `json:"model,omitempty"`
	// Dir overrides the tenant's data directory (default
	// <root>/tenants/<id>). The default tenant of a pre-multi-tenant
	// deployment uses this to keep the legacy <data-dir>/wal +
	// <data-dir>/checkpoints layout working unchanged.
	Dir string `json:"dir,omitempty"`
}

// Options configures a Registry.
type Options struct {
	// Root is the durability root; per-tenant state lives under
	// <Root>/tenants/<id>/ (unless Spec.Dir overrides). Empty disables
	// durability for every tenant.
	Root string
	// Serve is the per-tenant serving template: every tenant's Service
	// is built from a copy of it. Metrics and Durability are managed per
	// tenant and ignored here; Clock applies to all tenants.
	Serve serve.Config
	// Durability is the durability template (fsync policy, intervals,
	// segment cap). Dir and Checkpoints are derived per tenant and
	// ignored here. Only consulted when Root (or Spec.Dir) is set.
	Durability serve.DurabilityConfig
	// Hub receives every tenant's metrics; nil creates a private hub
	// (reachable via Registry.Hub).
	Hub *serve.MetricsHub
	// Tune, when set, is applied to every model the registry loads or is
	// handed, before its pipeline is built — the hook for host-local
	// settings a persisted model cannot know (fine-tune parallelism).
	Tune func(*core.UCAD)
	// PrePromote runs before Promote flips replica tenants live —
	// outside the admin lock, so a standby can stop its replication
	// follower and drain the last shipped files (which may itself still
	// be creating tenants) without deadlocking.
	PrePromote func()
}

// Registry is the concurrent tenant table: id → running pipeline.
type Registry struct {
	opts Options
	hub  *serve.MetricsHub
	// gate admits one background fine-tune round at a time across every
	// tenant (they share one TrainWorkers budget), weighted-fair so a
	// retrain-heavy tenant cannot starve its siblings.
	gate *FairGate

	// adminMu serializes create/delete/close (the slow, IO-heavy
	// lifecycle transitions); mu guards only the map itself so the
	// ingest hot path is a read-lock lookup.
	adminMu sync.Mutex
	mu      sync.RWMutex
	tenants map[string]*Tenant
	closed  bool
}

// Tenant is one running scenario pipeline.
type Tenant struct {
	id        string
	spec      Spec
	dir       string // "" when the tenant is not durable
	modelFrom string // what loaded: checkpoint path, model path, or "(in-memory)"
	svc       *serve.Service
	ckpts     *wal.Checkpoints
	restore   serve.RestoreStats
	handler   atomic.Pointer[tenantHandler]
	draining  atomic.Bool
}

// New returns an empty registry. Create or Boot tenants into it; Close
// shuts every tenant down.
func New(opts Options) *Registry {
	hub := opts.Hub
	if hub == nil {
		hub = serve.NewMetricsHub(nil)
	}
	return &Registry{opts: opts, hub: hub, gate: NewFairGate(), tenants: make(map[string]*Tenant)}
}

// Gate exposes the registry's fine-tune admission gate (weight tuning,
// queue-position queries).
func (r *Registry) Gate() *FairGate { return r.gate }

// Hub exposes the shared metrics hub (mount Hub().Registry.Handler() at
// GET /metrics; Registry.Handler already does).
func (r *Registry) Hub() *serve.MetricsHub { return r.hub }

// ValidateID enforces the tenant-id charset: ids become directory names
// and metric label values, so they must be path-safe and bounded.
func ValidateID(id string) error {
	if id == "" || len(id) > 64 {
		return fmt.Errorf("%w: %q (must be 1-64 chars)", ErrInvalidID, id)
	}
	for i, c := range id {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
		case (c == '_' || c == '-') && i > 0:
		default:
			return fmt.Errorf("%w: %q (allowed: [a-zA-Z0-9][a-zA-Z0-9_-]*)", ErrInvalidID, id)
		}
	}
	return nil
}

// Create boots a tenant from its spec: open its checkpoint manifest,
// load the newest loadable checkpoint (falling back to the spec's model
// file), build its serving pipeline, restore its open sessions from its
// own WAL, and publish it for routing. The spec is persisted to
// <dir>/tenant.json so a restart's Boot re-creates it.
func (r *Registry) Create(spec Spec) (*Tenant, error) {
	return r.create(spec, nil)
}

// CreateFromModel is Create with an already-loaded model — the test and
// embedding path, skipping checkpoint/model-file resolution (checkpoint
// writes still go through the tenant's manifest when durable).
func (r *Registry) CreateFromModel(spec Spec, u *core.UCAD) (*Tenant, error) {
	if u == nil {
		return nil, errors.New("tenant: CreateFromModel needs a model")
	}
	return r.create(spec, u)
}

func (r *Registry) create(spec Spec, u *core.UCAD) (*Tenant, error) {
	if spec.ID == "" {
		spec.ID = serve.DefaultTenant
	}
	if err := ValidateID(spec.ID); err != nil {
		return nil, err
	}
	id := spec.ID
	r.adminMu.Lock()
	defer r.adminMu.Unlock()
	r.mu.RLock()
	_, exists := r.tenants[id]
	closed := r.closed
	r.mu.RUnlock()
	if closed {
		return nil, ErrRegistryClosed
	}
	if exists {
		return nil, fmt.Errorf("%w: %s", ErrTenantExists, id)
	}

	t := &Tenant{id: id, spec: spec}
	fail := func(err error) (*Tenant, error) {
		// Release whatever the partial boot claimed so the id is fully
		// reusable (metric children included).
		r.hub.RemoveTenant(id)
		return nil, err
	}
	if r.opts.Root != "" || spec.Dir != "" {
		t.dir = spec.Dir
		if t.dir == "" {
			t.dir = filepath.Join(r.opts.Root, "tenants", id)
		}
		if err := os.MkdirAll(t.dir, 0o755); err != nil {
			return fail(err)
		}
		ckpts, err := wal.OpenCheckpoints(filepath.Join(t.dir, "checkpoints"), 0)
		if err != nil {
			return fail(err)
		}
		t.ckpts = ckpts
	}
	if u == nil {
		var err error
		u, t.modelFrom, err = loadModel(t.ckpts, spec.ModelPath)
		if err != nil {
			return fail(fmt.Errorf("tenant %s: %w", id, err))
		}
	} else {
		t.modelFrom = "(in-memory)"
	}
	if r.opts.Tune != nil {
		r.opts.Tune(u)
	}

	cfg := r.opts.Serve
	cfg.Metrics = r.hub.Tenant(id)
	cfg.RetrainGate = r.gate
	cfg.Durability = nil
	if t.dir != "" {
		d := r.opts.Durability
		d.Dir = filepath.Join(t.dir, "wal")
		d.Checkpoints = t.ckpts
		cfg.Durability = &d
	}
	t.svc = serve.NewService(u, cfg)
	if t.dir != "" {
		st, err := t.svc.Restore()
		if err != nil {
			t.svc.Stop()
			return fail(fmt.Errorf("tenant %s: restore: %w", id, err))
		}
		t.restore = st
		if err := writeSpec(t.dir, spec); err != nil {
			t.svc.Stop()
			return fail(fmt.Errorf("tenant %s: %w", id, err))
		}
		// Seed the checkpoint manifest so the tenant's directory is
		// self-contained from birth: a replication follower syncing it
		// gets a loadable model without access to the spec's model file
		// (which lives on this machine, maybe outside the data root).
		if t.ckpts.Count() == 0 {
			t.svc.CheckpointModel()
		}
	}
	t.svc.Start()
	h := tenantHandler{h: t.svc.Handler()}
	t.handler.Store(&h)

	r.mu.Lock()
	r.tenants[id] = t
	r.mu.Unlock()
	return t, nil
}

// loadModel prefers the newest loadable checkpoint, rolling the
// manifest back past any that a crash or bug left unloadable, and falls
// back to the trained model file.
func loadModel(ckpts *wal.Checkpoints, modelPath string) (*core.UCAD, string, error) {
	if ckpts != nil {
		for path := ckpts.Current(); path != ""; {
			u, err := loadModelFile(path)
			if err == nil {
				return u, path, nil
			}
			next, rerr := ckpts.Rollback()
			if rerr != nil {
				return nil, "", rerr
			}
			path = next
		}
	}
	if modelPath == "" {
		return nil, "", errors.New("no loadable checkpoint and no model path")
	}
	u, err := loadModelFile(modelPath)
	if err != nil {
		return nil, "", err
	}
	return u, modelPath, nil
}

func loadModelFile(path string) (*core.UCAD, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return core.Load(f)
}

// specFile is the persisted per-tenant identity record.
const specFile = "tenant.json"

func writeSpec(dir string, spec Spec) error {
	b, err := json.MarshalIndent(spec, "", "  ")
	if err != nil {
		return err
	}
	tmp := filepath.Join(dir, specFile+".tmp")
	if err := os.WriteFile(tmp, append(b, '\n'), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, filepath.Join(dir, specFile))
}

// Boot creates every spec, then scans <Root>/tenants for persisted
// tenant.json records the specs did not name — tenants created through
// the admin API before the restart — and re-creates those too, each
// restoring its own sessions from its own WAL.
func (r *Registry) Boot(specs []Spec) error {
	for _, sp := range specs {
		if _, err := r.Create(sp); err != nil {
			return err
		}
	}
	if r.opts.Root == "" {
		return nil
	}
	ents, err := os.ReadDir(filepath.Join(r.opts.Root, "tenants"))
	if errors.Is(err, fs.ErrNotExist) {
		return nil
	}
	if err != nil {
		return err
	}
	for _, e := range ents {
		if !e.IsDir() {
			continue
		}
		b, err := os.ReadFile(filepath.Join(r.opts.Root, "tenants", e.Name(), specFile))
		if errors.Is(err, fs.ErrNotExist) {
			continue // not a tenant dir (or a partially created one)
		}
		if err != nil {
			return err
		}
		var sp Spec
		if err := json.Unmarshal(b, &sp); err != nil {
			return fmt.Errorf("tenant %s: corrupt %s: %w", e.Name(), specFile, err)
		}
		if sp.ID != e.Name() {
			return fmt.Errorf("tenant %s: %s names %q", e.Name(), specFile, sp.ID)
		}
		if _, err := r.Get(sp.ID); err == nil {
			continue // already booted from specs
		}
		if _, err := r.Create(sp); err != nil {
			return err
		}
	}
	return nil
}

// Get resolves a tenant id (empty means the default tenant). The hot
// path: one read-lock map lookup.
func (r *Registry) Get(id string) (*Tenant, error) {
	if id == "" {
		id = serve.DefaultTenant
	}
	r.mu.RLock()
	t, ok := r.tenants[id]
	closed := r.closed
	r.mu.RUnlock()
	if closed {
		return nil, ErrRegistryClosed
	}
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownTenant, id)
	}
	return t, nil
}

// Ingest routes one event by its Tenant field (empty → default tenant)
// and absorbs it into that tenant's pipeline.
func (r *Registry) Ingest(ev serve.Event) error {
	t, err := r.Get(ev.Tenant)
	if err != nil {
		return err
	}
	return t.Ingest(ev)
}

// List returns the live tenants sorted by id.
func (r *Registry) List() []*Tenant {
	r.mu.RLock()
	out := make([]*Tenant, 0, len(r.tenants))
	for _, t := range r.tenants {
		out = append(out, t)
	}
	r.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].id < out[j].id })
	return out
}

// Drain stops accepting new events for the tenant (Ingest answers
// ErrDraining) and blocks until its queued scoring work finishes. The
// tenant stays queryable (alerts, stats) — the quiesce step before
// Delete or a model migration.
func (r *Registry) Drain(id string) (*Tenant, error) {
	t, err := r.Get(id)
	if err != nil {
		return nil, err
	}
	t.draining.Store(true)
	t.svc.Drain()
	return t, nil
}

// Delete unroutes the tenant, stops its pipeline (flushing open
// sessions through close-out detection — the data directory is about to
// be destroyed, so there is nothing to preserve them for), drops its
// metric children, and removes its data directory. Sibling tenants are
// untouched.
func (r *Registry) Delete(id string) error {
	if id == "" {
		id = serve.DefaultTenant
	}
	r.adminMu.Lock()
	defer r.adminMu.Unlock()
	r.mu.Lock()
	t, ok := r.tenants[id]
	if ok {
		delete(r.tenants, id)
	}
	closed := r.closed
	r.mu.Unlock()
	if closed {
		return ErrRegistryClosed
	}
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownTenant, id)
	}
	t.draining.Store(true)
	t.svc.Stop()
	r.hub.RemoveTenant(id)
	if t.dir != "" {
		return os.RemoveAll(t.dir)
	}
	return nil
}

// Close shuts every tenant down for a process exit: durable tenants
// snapshot their open sessions and seal their logs (they come back on
// the next Boot), non-durable ones flush through close-out detection.
// The registry refuses routing and lifecycle calls afterwards.
func (r *Registry) Close(ctx context.Context) error {
	r.adminMu.Lock()
	defer r.adminMu.Unlock()
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil
	}
	r.closed = true
	ts := make([]*Tenant, 0, len(r.tenants))
	for _, t := range r.tenants {
		ts = append(ts, t)
	}
	r.mu.Unlock()
	var first error
	for _, t := range ts {
		if err := t.svc.Close(ctx); err != nil && first == nil {
			first = fmt.Errorf("tenant %s: %w", t.id, err)
		}
	}
	return first
}

// ID returns the tenant's identity.
func (t *Tenant) ID() string { return t.id }

// Dir returns the tenant's data directory ("" when not durable).
func (t *Tenant) Dir() string { return t.dir }

// ModelSource reports what the tenant's model loaded from — a
// checkpoint path, the spec's model file, or "(in-memory)".
func (t *Tenant) ModelSource() string { return t.modelFrom }

// Service exposes the tenant's serving pipeline (tests, embedding).
func (t *Tenant) Service() *serve.Service { return t.svc }

// RestoreStats reports the tenant's last boot-time recovery.
func (t *Tenant) RestoreStats() serve.RestoreStats { return t.restore }

// Draining reports whether the tenant has been quiesced.
func (t *Tenant) Draining() bool { return t.draining.Load() }

// Stats snapshots the tenant's serving counters.
func (t *Tenant) Stats() serve.Stats { return t.svc.Stats() }

// SwapModel hot-replaces the tenant's serving model with an
// already-validated one: scoring switches atomically (in-flight batches
// finish on the old model), open sessions are re-tokenized against the
// new vocabulary, and the new model is checkpointed through the
// tenant's manifest so the replacement survives a restart. Ingest keeps
// flowing throughout — no drain, no dropped events.
func (t *Tenant) SwapModel(u *core.UCAD) error {
	if t.draining.Load() {
		return ErrDraining
	}
	if err := t.svc.SwapModel(u); err != nil {
		return err
	}
	t.svc.CheckpointModel()
	return nil
}

// Ingest absorbs one event into the tenant's pipeline unless it is
// draining. The event's Tenant field is not re-checked: routing already
// happened.
func (t *Tenant) Ingest(ev serve.Event) error {
	if t.draining.Load() {
		return ErrDraining
	}
	return t.svc.Ingest(ev)
}

// tenantHandler wraps the tenant's cached HTTP handler (built once at
// create time — serve.Service.Handler constructs a fresh mux per call).
type tenantHandler struct{ h http.Handler }
