package tenant

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"

	"github.com/ucad/ucad/internal/core"
	"github.com/ucad/ucad/internal/serve"
	"github.com/ucad/ucad/internal/session"
	"github.com/ucad/ucad/internal/wal"
)

// trainModel builds a deterministic tiny detector over an 8-template
// workload whose table names carry the given prefix — two prefixes give
// two genuinely different vocabularies, so cross-tenant leakage would
// be visible as wrong keys, not just wrong counters. TopP = Vocab-1
// makes only out-of-vocabulary statements flag (the serve test idiom).
func trainModel(tb testing.TB, prefix string) *core.UCAD {
	tb.Helper()
	var sessions []*session.Session
	for i := 0; i < 16; i++ {
		s := &session.Session{ID: fmt.Sprintf("train-%d", i), User: "app"}
		for p := 0; p < 12; p++ {
			s.Ops = append(s.Ops, session.Operation{SQL: normalStatement(prefix, i+p)})
		}
		sessions = append(sessions, s)
	}
	cfg := core.DefaultConfig()
	cfg.SkipClean = true
	cfg.Model.Hidden = 4
	cfg.Model.Heads = 2
	cfg.Model.Blocks = 1
	cfg.Model.Window = 8
	cfg.Model.Epochs = 2
	cfg.Model.Dropout = 0
	cfg.Model.MinContext = 2
	cfg.Model.TopP = 8 // = Vocab-1
	u, err := core.Train(cfg, sessions, nil)
	if err != nil {
		tb.Fatal(err)
	}
	return u
}

func normalStatement(prefix string, pos int) string {
	tmpl := []func(i int) string{
		func(i int) string { return fmt.Sprintf("SELECT * FROM %s_videos WHERE vid = %d", prefix, i) },
		func(i int) string { return fmt.Sprintf("SELECT * FROM %s_users WHERE uid = %d", prefix, i) },
		func(i int) string { return fmt.Sprintf("INSERT INTO %s_views (vid, uid) VALUES (%d, %d)", prefix, i, i+1) },
		func(i int) string { return fmt.Sprintf("UPDATE %s_stats SET views = %d WHERE vid = %d", prefix, i, i) },
		func(i int) string { return fmt.Sprintf("SELECT * FROM %s_comments WHERE vid = %d", prefix, i) },
		func(i int) string {
			return fmt.Sprintf("INSERT INTO %s_comments (vid, uid, text) VALUES (%d, %d, 'c%d')", prefix, i, i, i)
		},
		func(i int) string { return fmt.Sprintf("DELETE FROM %s_comments WHERE cid = %d", prefix, i) },
		func(i int) string { return fmt.Sprintf("SELECT * FROM %s_stats WHERE vid = %d", prefix, i) },
	}
	return tmpl[pos%len(tmpl)](pos)
}

// anomalySQL is out-of-vocabulary for every prefix, so it flags
// deterministically in any tenant.
const anomalySQL = "SELECT * FROM credit_cards WHERE uid = 7"

// cloneUCAD gob-roundtrips a model so a control service and a tenant
// hold byte-identical but independent detectors.
func cloneUCAD(tb testing.TB, u *core.UCAD) *core.UCAD {
	tb.Helper()
	var buf bytes.Buffer
	if err := u.Save(&buf); err != nil {
		tb.Fatal(err)
	}
	c, err := core.Load(&buf)
	if err != nil {
		tb.Fatal(err)
	}
	return c
}

// saveModel persists a model to disk for the Spec.ModelPath /
// tenant.json boot paths.
func saveModel(tb testing.TB, u *core.UCAD, path string) {
	tb.Helper()
	f, err := os.Create(path)
	if err != nil {
		tb.Fatal(err)
	}
	defer f.Close()
	if err := u.Save(f); err != nil {
		tb.Fatal(err)
	}
}

type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{now: time.Date(2026, 8, 6, 12, 0, 0, 0, time.UTC)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = c.now.Add(d)
}

func testServeConfig(clk *fakeClock) serve.Config {
	return serve.Config{
		Workers:     2,
		QueueSize:   256,
		Batch:       4,
		IdleTimeout: 10 * time.Minute,
		SweepEvery:  -1,
		Clock:       clk.Now,
	}
}

// stream is one tenant's deterministic workload: two clients, ten
// statements each, one anomaly at a tenant-specific position.
func stream(tenant, prefix string, anomalyClient, anomalyPos int) []serve.Event {
	var evs []serve.Event
	for pos := 0; pos < 10; pos++ {
		for c := 0; c < 2; c++ {
			sql := normalStatement(prefix, pos)
			if c == anomalyClient && pos == anomalyPos {
				sql = anomalySQL
			}
			evs = append(evs, serve.Event{
				Tenant:   tenant,
				ClientID: fmt.Sprintf("%s-c%d", tenant, c),
				User:     "app",
				SQL:      sql,
			})
		}
	}
	return evs
}

// comparable projects the observable per-tenant outcome: alerts modulo
// ids/timestamps, plus the deterministic counters.
type comparable struct {
	Alerts []serve.Alert
	Stats  serve.Stats
}

func observe(svc *serve.Service) comparable {
	alerts := svc.Alerts("")
	for i := range alerts {
		alerts[i].ID = 0
		alerts[i].CreatedAt = time.Time{}
		alerts[i].UpdatedAt = time.Time{}
	}
	st := svc.Stats()
	st.UptimeSeconds = 0
	st.QueueDepth = 0
	return comparable{Alerts: alerts, Stats: st}
}

// TestTenantIsolationBitIdentical: two tenants with different
// vocabularies ingesting concurrently must produce exactly the outcome
// of two isolated single-tenant services fed the same streams — same
// alerts (positions, statements, sessions), same counters.
func TestTenantIsolationBitIdentical(t *testing.T) {
	clk := newFakeClock()
	ua, ub := trainModel(t, "va"), trainModel(t, "vb")

	reg := New(Options{Serve: testServeConfig(clk)})
	ta, err := reg.CreateFromModel(Spec{ID: "alpha"}, cloneUCAD(t, ua))
	if err != nil {
		t.Fatal(err)
	}
	tb, err := reg.CreateFromModel(Spec{ID: "beta"}, cloneUCAD(t, ub))
	if err != nil {
		t.Fatal(err)
	}

	sa := stream("alpha", "va", 0, 6)
	sb := stream("beta", "vb", 1, 5)

	// Concurrent ingest through the routed path (-race guards the
	// registry lookup and the independent pipelines).
	var wg sync.WaitGroup
	for _, evs := range [][]serve.Event{sa, sb} {
		wg.Add(1)
		go func(evs []serve.Event) {
			defer wg.Done()
			for _, ev := range evs {
				if err := reg.Ingest(ev); err != nil {
					t.Error(err)
					return
				}
			}
		}(evs)
	}
	wg.Wait()
	ta.Service().Drain()
	tb.Service().Drain()

	// Controls: isolated single-tenant services over clones of the same
	// models, same config, same streams (Tenant field ignored there).
	ctlA := serve.NewService(cloneUCAD(t, ua), testServeConfig(clk))
	ctlB := serve.NewService(cloneUCAD(t, ub), testServeConfig(clk))
	defer ctlA.Stop()
	defer ctlB.Stop()
	for _, ev := range sa {
		if err := ctlA.Ingest(ev); err != nil {
			t.Fatal(err)
		}
	}
	for _, ev := range sb {
		if err := ctlB.Ingest(ev); err != nil {
			t.Fatal(err)
		}
	}
	ctlA.Drain()
	ctlB.Drain()

	// Close everything out on the shared fake clock and compare.
	clk.Advance(11 * time.Minute)
	ta.Service().CloseIdleNow()
	tb.Service().CloseIdleNow()
	ctlA.CloseIdleNow()
	ctlB.CloseIdleNow()

	if got, want := observe(ta.Service()), observe(ctlA); !reflect.DeepEqual(got, want) {
		t.Fatalf("tenant alpha diverges from isolated control:\n got %+v\nwant %+v", got, want)
	}
	if got, want := observe(tb.Service()), observe(ctlB); !reflect.DeepEqual(got, want) {
		t.Fatalf("tenant beta diverges from isolated control:\n got %+v\nwant %+v", got, want)
	}
	// Sanity: each tenant saw exactly its own anomaly.
	for _, tn := range []*Tenant{ta, tb} {
		alerts := tn.Service().Alerts("")
		if len(alerts) != 1 || len(alerts[0].Statements) == 0 || alerts[0].Statements[0] != anomalySQL {
			t.Fatalf("tenant %s alerts: %+v", tn.ID(), alerts)
		}
	}
	if err := reg.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
}

func durableOptions(clk *fakeClock, root string) Options {
	return Options{
		Root:  root,
		Serve: testServeConfig(clk),
		Durability: serve.DurabilityConfig{
			Fsync: wal.SyncAlways,
		},
	}
}

func ingestN(t *testing.T, reg *Registry, tenant, client, prefix string, n int) {
	t.Helper()
	for pos := 0; pos < n; pos++ {
		err := reg.Ingest(serve.Event{
			Tenant: tenant, ClientID: client, User: "app", SQL: normalStatement(prefix, pos),
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}

// TestTenantCrashRestartIndependent: abandoning the registry without
// Close (in-process kill -9 stand-in; fsync=always) and re-booting from
// the persisted tenant.json specs must restore each tenant's sessions
// from its own WAL, independently.
func TestTenantCrashRestartIndependent(t *testing.T) {
	clk := newFakeClock()
	root := t.TempDir()
	modelA := filepath.Join(root, "a.model")
	modelB := filepath.Join(root, "b.model")
	saveModel(t, trainModel(t, "va"), modelA)
	saveModel(t, trainModel(t, "vb"), modelB)

	reg1 := New(durableOptions(clk, root))
	if err := reg1.Boot([]Spec{
		{ID: "alpha", ModelPath: modelA},
		{ID: "beta", ModelPath: modelB},
	}); err != nil {
		t.Fatal(err)
	}
	ingestN(t, reg1, "alpha", "a-c1", "va", 5)
	ingestN(t, reg1, "alpha", "a-c2", "va", 3)
	ingestN(t, reg1, "beta", "b-c1", "vb", 4)
	for _, tn := range reg1.List() {
		tn.Service().Drain()
	}
	// No Close: the WAL handles just drop, like a kill -9.

	// The restart names no specs at all — Boot must rediscover both
	// tenants from their persisted tenant.json records.
	reg2 := New(durableOptions(clk, root))
	if err := reg2.Boot(nil); err != nil {
		t.Fatal(err)
	}
	defer reg2.Close(context.Background())
	ta, err := reg2.Get("alpha")
	if err != nil {
		t.Fatal(err)
	}
	tb, err := reg2.Get("beta")
	if err != nil {
		t.Fatal(err)
	}
	if rst := ta.RestoreStats(); rst.Sessions != 2 || rst.CleanSeal {
		t.Fatalf("alpha restore: %+v, want 2 sessions from a crash", rst)
	}
	if rst := tb.RestoreStats(); rst.Sessions != 1 || rst.CleanSeal {
		t.Fatalf("beta restore: %+v, want 1 session from a crash", rst)
	}
	// The restored context keeps scoring: an anomaly on alpha's
	// recovered session flags there and only there.
	if err := reg2.Ingest(serve.Event{Tenant: "alpha", ClientID: "a-c1", User: "app", SQL: anomalySQL}); err != nil {
		t.Fatal(err)
	}
	ta.Service().Drain()
	if st := ta.Stats(); st.MidSessionFlags != 1 {
		t.Fatalf("alpha flags = %d, want 1", st.MidSessionFlags)
	}
	if st := tb.Stats(); st.MidSessionFlags != 0 {
		t.Fatalf("beta flags = %d, want 0 (cross-tenant leakage)", st.MidSessionFlags)
	}
}

// TestTenantCleanShutdownRestart: Close seals every tenant's log; the
// next Boot reports clean seals and the preserved open sessions.
func TestTenantCleanShutdownRestart(t *testing.T) {
	clk := newFakeClock()
	root := t.TempDir()
	model := filepath.Join(root, "m.model")
	saveModel(t, trainModel(t, "va"), model)

	reg1 := New(durableOptions(clk, root))
	if _, err := reg1.Create(Spec{ID: "alpha", ModelPath: model}); err != nil {
		t.Fatal(err)
	}
	ingestN(t, reg1, "alpha", "c1", "va", 4)
	if err := reg1.Close(context.Background()); err != nil {
		t.Fatal(err)
	}

	reg2 := New(durableOptions(clk, root))
	if err := reg2.Boot(nil); err != nil {
		t.Fatal(err)
	}
	defer reg2.Close(context.Background())
	ta, err := reg2.Get("alpha")
	if err != nil {
		t.Fatal(err)
	}
	if rst := ta.RestoreStats(); rst.Sessions != 1 || !rst.CleanSeal {
		t.Fatalf("restore after clean shutdown: %+v", rst)
	}
}

// TestTenantDeleteIsolated: deleting one tenant removes its directory
// and metric series without disturbing its sibling, and frees the id
// for re-creation.
func TestTenantDeleteIsolated(t *testing.T) {
	clk := newFakeClock()
	root := t.TempDir()
	reg := New(durableOptions(clk, root))
	defer reg.Close(context.Background())
	ua, ub := trainModel(t, "va"), trainModel(t, "vb")
	if _, err := reg.CreateFromModel(Spec{ID: "alpha"}, cloneUCAD(t, ua)); err != nil {
		t.Fatal(err)
	}
	tb, err := reg.CreateFromModel(Spec{ID: "beta"}, ub)
	if err != nil {
		t.Fatal(err)
	}
	ingestN(t, reg, "alpha", "c1", "va", 3)
	ingestN(t, reg, "beta", "c1", "vb", 3)

	alphaDir := filepath.Join(root, "tenants", "alpha")
	betaDir := filepath.Join(root, "tenants", "beta")
	if _, err := os.Stat(alphaDir); err != nil {
		t.Fatal(err)
	}
	if err := reg.Delete("alpha"); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(alphaDir); !os.IsNotExist(err) {
		t.Fatalf("alpha dir still present: %v", err)
	}
	if _, err := os.Stat(betaDir); err != nil {
		t.Fatalf("beta dir disturbed: %v", err)
	}
	if err := reg.Ingest(serve.Event{Tenant: "alpha", ClientID: "c", SQL: "SELECT 1"}); !errorsIs(err, ErrUnknownTenant) {
		t.Fatalf("post-delete ingest: %v, want ErrUnknownTenant", err)
	}
	// The sibling keeps serving.
	if err := reg.Ingest(serve.Event{Tenant: "beta", ClientID: "c1", User: "app", SQL: normalStatement("vb", 3)}); err != nil {
		t.Fatal(err)
	}
	tb.Service().Drain()
	if st := tb.Stats(); st.EventsAccepted != 4 {
		t.Fatalf("beta accepted = %d, want 4", st.EventsAccepted)
	}
	// The id is fully reusable: metrics children were removed, so a
	// re-created tenant binds cleanly (a leak would panic in bind).
	if _, err := reg.CreateFromModel(Spec{ID: "alpha"}, cloneUCAD(t, ua)); err != nil {
		t.Fatal(err)
	}
}

// TestTenantLifecycleErrors covers the error surface: invalid ids,
// duplicates, unknown tenants, draining, closed registries.
func TestTenantLifecycleErrors(t *testing.T) {
	clk := newFakeClock()
	reg := New(Options{Serve: testServeConfig(clk)})
	u := trainModel(t, "va")
	for _, bad := range []string{"", "-lead", "has space", "a/b", "..", string(make([]byte, 65))} {
		if err := ValidateID(bad); err == nil {
			t.Fatalf("ValidateID(%q) accepted", bad)
		}
	}
	if _, err := reg.CreateFromModel(Spec{ID: "x!"}, u); !errorsIs(err, ErrInvalidID) {
		t.Fatalf("create invalid id: %v", err)
	}
	if _, err := reg.CreateFromModel(Spec{ID: "dup"}, cloneUCAD(t, u)); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.CreateFromModel(Spec{ID: "dup"}, cloneUCAD(t, u)); !errorsIs(err, ErrTenantExists) {
		t.Fatalf("duplicate create: %v", err)
	}
	if _, err := reg.Get("ghost"); !errorsIs(err, ErrUnknownTenant) {
		t.Fatalf("get ghost: %v", err)
	}
	if err := reg.Delete("ghost"); !errorsIs(err, ErrUnknownTenant) {
		t.Fatalf("delete ghost: %v", err)
	}
	if _, err := reg.Drain("dup"); err != nil {
		t.Fatal(err)
	}
	if err := reg.Ingest(serve.Event{Tenant: "dup", ClientID: "c", SQL: "SELECT 1"}); !errorsIs(err, ErrDraining) {
		t.Fatalf("drained ingest: %v", err)
	}
	if err := reg.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Get("dup"); !errorsIs(err, ErrRegistryClosed) {
		t.Fatalf("get after close: %v", err)
	}
	if _, err := reg.CreateFromModel(Spec{ID: "late"}, u); !errorsIs(err, ErrRegistryClosed) {
		t.Fatalf("create after close: %v", err)
	}
}

func errorsIs(err, target error) bool { return errors.Is(err, target) }
