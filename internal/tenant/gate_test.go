package tenant

import (
	"sync"
	"testing"
	"time"
)

// waitPosition spins until the tenant reports the given queue position
// (the waiter goroutine needs a moment to enqueue itself).
func waitPosition(t *testing.T, g *FairGate, tenant string, want int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for g.Position(tenant) != want {
		if time.Now().After(deadline) {
			t.Fatalf("Position(%s) = %d, want %d", tenant, g.Position(tenant), want)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestFairGateServesLeastServedFirst: with the gate held, the waiter
// with the lowest accumulated training time runs next regardless of
// arrival order.
func TestFairGateServesLeastServedFirst(t *testing.T) {
	g := NewFairGate()
	// Seed history: "hog" has consumed far more training wall-clock.
	g.served["hog"] = 10 * time.Second
	g.served["light"] = time.Second

	release := g.Acquire("holder")

	order := make(chan string, 2)
	var wg sync.WaitGroup
	enqueue := func(tenant string) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			r := g.Acquire(tenant)
			order <- tenant
			r()
		}()
		waitPosition(t, g, tenant, 1)
	}
	// Enqueue hog strictly first so arrival order alone would pick it;
	// light's arrival demotes it (positions rank by weighted service
	// time, not arrival).
	enqueue("hog")
	enqueue("light")
	waitPosition(t, g, "hog", 2)
	if p := g.Position("light"); p != 1 {
		t.Fatalf("Position(light) = %d, want 1", p)
	}
	if p := g.Position("idle"); p != 0 {
		t.Fatalf("Position(idle) = %d, want 0", p)
	}

	release()
	wg.Wait()
	close(order)
	var got []string
	for tenant := range order {
		got = append(got, tenant)
	}
	if len(got) != 2 || got[0] != "light" || got[1] != "hog" {
		t.Fatalf("service order = %v, want [light hog]", got)
	}
}

// TestFairGateWeights: a higher weight divides accumulated service
// time, so a weight-4 tenant with equal history outranks a weight-1 one.
func TestFairGateWeights(t *testing.T) {
	g := NewFairGate()
	g.served["a"] = 4 * time.Second
	g.served["b"] = 2 * time.Second
	g.SetWeight("a", 4) // vtime 1s < b's 2s despite more service

	release := g.Acquire("holder")
	order := make(chan string, 2)
	var wg sync.WaitGroup
	enqueue := func(tenant string) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			r := g.Acquire(tenant)
			order <- tenant
			r()
		}()
		waitPosition(t, g, tenant, 1)
	}
	enqueue("b")
	enqueue("a")
	waitPosition(t, g, "b", 2)
	release()
	wg.Wait()
	close(order)
	var got []string
	for tenant := range order {
		got = append(got, tenant)
	}
	if len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("service order = %v, want [a b]", got)
	}

	// Resetting the weight restores the default share.
	g.SetWeight("a", 0)
	if _, ok := g.weight["a"]; ok {
		t.Fatal("SetWeight(0) did not reset the weight")
	}
}

// TestFairGateReleaseIdempotentAndAccounting: release is once-only and
// accumulates the holder's wall-clock into its service history.
func TestFairGateReleaseIdempotentAndAccounting(t *testing.T) {
	g := NewFairGate()
	release := g.Acquire("a")
	release()
	release() // second call must be a no-op

	g.mu.Lock()
	busy, served := g.busy, g.served["a"]
	g.mu.Unlock()
	if busy {
		t.Fatal("gate still busy after release")
	}
	if served < 0 {
		t.Fatalf("served[a] = %v", served)
	}

	// The gate is reusable after release.
	done := make(chan struct{})
	go func() {
		r := g.Acquire("b")
		r()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("gate not reacquirable after release")
	}
}
