// Package baselines implements the five comparison methods of the
// paper's Table 2 — OneClassSVM [67], Isolation Forest [48], Mazzawi et
// al.'s behavioral patterning [52], DeepLog [21] and USAD [11] — plus
// LogCluster [46] for the transfer experiment (Table 6). All satisfy
// metrics.Detector so the experiment harness treats them uniformly.
package baselines

import "sort"

// MaxKey returns the largest statement key in the training sessions.
func MaxKey(train [][]int) int {
	max := 0
	for _, s := range train {
		for _, k := range s {
			if k > max {
				max = k
			}
		}
	}
	return max
}

// CountVector profiles a session as the per-key operation counts — the
// n-dimensional representation the paper feeds to OneClassSVM and
// iForest (§6.1). Index 0 buckets unknown keys (k0 or beyond the
// training vocabulary).
func CountVector(keys []int, vocab int) []float64 {
	v := make([]float64, vocab+1)
	for _, k := range keys {
		if k <= 0 || k > vocab {
			v[0]++
			continue
		}
		v[k]++
	}
	return v
}

// quantile returns the q-quantile (0..1) of xs by linear ranking.
func quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	idx := int(q * float64(len(sorted)-1))
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}
