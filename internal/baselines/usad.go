package baselines

import (
	"math/rand"

	"github.com/ucad/ucad/internal/nn"
	"github.com/ucad/ucad/internal/tensor"
)

// USAD is the adversarially trained autoencoder of Audibert et al. [11]
// adapted to statement-key streams: sliding windows of the session are
// profiled as count vectors, a shared encoder feeds two decoders trained
// in the paper's two-phase adversarial scheme, and the anomaly score is
// α‖x−AE₁(x)‖² + β‖x−AE₂(AE₁(x))‖². A session is anomalous when any of
// its windows scores above the calibrated training quantile.
type USAD struct {
	// Window is the number of operations per scored window (default 10).
	Window int
	// Latent and HiddenDim size the autoencoders.
	Latent, HiddenDim int
	// Epochs and LR control Adam training.
	Epochs int
	LR     float64
	// Alpha and Beta weight the two reconstruction terms (default 0.5
	// each).
	Alpha, Beta float64
	// ThresholdQ is the training-score quantile used as the anomaly
	// threshold (default 0.98).
	ThresholdQ float64
	// Seed drives initialization and shuffling.
	Seed int64

	vocab     int
	enc       *twoLayer
	dec1      *twoLayer
	dec2      *twoLayer
	params    []*tensor.Param
	threshold float64
	scale     float64 // input normalization
	rng       *rand.Rand
}

// NewUSAD returns a detector with the original paper's defaults.
func NewUSAD(seed int64) *USAD {
	return &USAD{
		Window: 10, Latent: 8, HiddenDim: 32,
		Epochs: 12, LR: 0.01, Alpha: 0.5, Beta: 0.5, ThresholdQ: 0.98, Seed: seed,
	}
}

// Name implements metrics.Detector.
func (u *USAD) Name() string { return "USAD" }

// twoLayer is a Linear-ReLU-Linear block; decoders add a sigmoid so
// reconstructions stay in the input's [0,1] range, which bounds the
// adversarial term of phase-2 training (inputs are count vectors scaled
// by 1/Window).
type twoLayer struct {
	l1, l2  *nn.Linear
	bounded bool
}

func newTwoLayer(name string, in, hidden, out int, bounded bool, rng *rand.Rand) *twoLayer {
	return &twoLayer{
		l1:      nn.NewLinear(name+".1", in, hidden, rng),
		l2:      nn.NewLinear(name+".2", hidden, out, rng),
		bounded: bounded,
	}
}

func (t2 *twoLayer) forward(tp *tensor.Tape, x *tensor.Node) *tensor.Node {
	out := t2.l2.Forward(tp, tp.ReLU(t2.l1.Forward(tp, x)))
	if t2.bounded {
		out = tp.Sigmoid(out)
	}
	return out
}

func (t2 *twoLayer) params() []*tensor.Param { return nn.CollectParams(t2.l1, t2.l2) }

// windowsOf slices a key sequence into count-vector windows.
func (u *USAD) windowsOf(keys []int) [][]float64 {
	var out [][]float64
	step := u.Window
	for s := 0; s < len(keys); s += step {
		e := s + u.Window
		if e > len(keys) {
			e = len(keys)
		}
		v := CountVector(keys[s:e], u.vocab)
		for i := range v {
			v[i] *= u.scale
		}
		out = append(out, v)
		if e == len(keys) {
			break
		}
	}
	return out
}

// Fit implements metrics.Detector.
func (u *USAD) Fit(train [][]int) {
	u.vocab = MaxKey(train)
	u.rng = rand.New(rand.NewSource(u.Seed))
	u.scale = 1 / float64(u.Window)
	dim := u.vocab + 1
	u.enc = newTwoLayer("usad.enc", dim, u.HiddenDim, u.Latent, false, u.rng)
	u.dec1 = newTwoLayer("usad.dec1", u.Latent, u.HiddenDim, dim, true, u.rng)
	u.dec2 = newTwoLayer("usad.dec2", u.Latent, u.HiddenDim, dim, true, u.rng)
	u.params = append(append(u.enc.params(), u.dec1.params()...), u.dec2.params()...)

	var xs [][]float64
	for _, s := range train {
		xs = append(xs, u.windowsOf(s)...)
	}
	if len(xs) == 0 {
		u.enc = nil // stay untrained: Flag reports nothing
		return
	}
	optAE1 := nn.NewAdam(u.LR)
	optAE2 := nn.NewAdam(u.LR)
	p1 := append(u.enc.params(), u.dec1.params()...)
	p2 := append(u.enc.params(), u.dec2.params()...)
	order := make([]int, len(xs))
	for i := range order {
		order[i] = i
	}
	for epoch := 1; epoch <= u.Epochs; epoch++ {
		w1 := 1 / float64(epoch)
		w2 := 1 - w1
		u.rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		for _, xi := range order {
			x := xs[xi]
			// Phase 1: train AE1 to reconstruct x and to fool AE2.
			tp := tensor.NewTape()
			in := tp.Const(tensor.FromSlice(1, len(x), append([]float64(nil), x...)))
			ae1 := u.dec1.forward(tp, u.enc.forward(tp, in))
			ae21 := u.dec2.forward(tp, u.enc.forward(tp, ae1))
			loss1 := tp.Add(
				tp.Scale(tp.Mean(tp.Square(tp.Sub(in, ae1))), w1),
				tp.Scale(tp.Mean(tp.Square(tp.Sub(in, ae21))), w2))
			tp.Backward(loss1)
			nn.ZeroGrads(u.dec2.params()) // phase 1 updates encoder+dec1 only
			nn.ClipGradNorm(p1, 1)
			optAE1.Step(p1)

			// Phase 2: train AE2 to reconstruct x but distinguish AE1's
			// reconstructions (adversarial minus term).
			tp2 := tensor.NewTape()
			in2 := tp2.Const(tensor.FromSlice(1, len(x), append([]float64(nil), x...)))
			ae1b := u.dec1.forward(tp2, u.enc.forward(tp2, in2))
			ae21b := u.dec2.forward(tp2, u.enc.forward(tp2, ae1b))
			ae2 := u.dec2.forward(tp2, u.enc.forward(tp2, in2))
			loss2 := tp2.Sub(
				tp2.Scale(tp2.Mean(tp2.Square(tp2.Sub(in2, ae2))), w1),
				tp2.Scale(tp2.Mean(tp2.Square(tp2.Sub(in2, ae21b))), w2))
			tp2.Backward(loss2)
			nn.ZeroGrads(u.dec1.params()) // phase 2 updates encoder+dec2 only
			// The adversarial minus-term has an unbounded incentive;
			// clipping keeps the two-player training stable (the original
			// relies on batch averaging for the same effect).
			nn.ClipGradNorm(p2, 1)
			optAE2.Step(p2)
		}
	}
	scores := make([]float64, len(xs))
	for i, x := range xs {
		scores[i] = u.windowScore(x)
	}
	u.threshold = quantile(scores, u.ThresholdQ)
}

// windowScore is α‖x−AE₁‖² + β‖x−AE₂(AE₁)‖² (mean squared).
func (u *USAD) windowScore(x []float64) float64 {
	tp := tensor.NewTape()
	in := tp.Const(tensor.FromSlice(1, len(x), append([]float64(nil), x...)))
	ae1 := u.dec1.forward(tp, u.enc.forward(tp, in))
	ae21 := u.dec2.forward(tp, u.enc.forward(tp, ae1))
	r1 := tp.Mean(tp.Square(tp.Sub(in, ae1))).Value.Data[0]
	r2 := tp.Mean(tp.Square(tp.Sub(in, ae21))).Value.Data[0]
	return u.Alpha*r1 + u.Beta*r2
}

// Flag implements metrics.Detector.
func (u *USAD) Flag(keys []int) bool {
	if u.enc == nil {
		return false
	}
	for _, w := range u.windowsOf(keys) {
		if u.windowScore(w) > u.threshold+1e-15 {
			return true
		}
	}
	return false
}
