package baselines

import (
	"math"
	"math/rand"
	"testing"

	"github.com/ucad/ucad/internal/metrics"
)

// Compile-time interface checks.
var (
	_ metrics.Detector = (*OneClassSVM)(nil)
	_ metrics.Detector = (*IForest)(nil)
	_ metrics.Detector = (*Mazzawi)(nil)
	_ metrics.Detector = (*DeepLog)(nil)
	_ metrics.Detector = (*USAD)(nil)
	_ metrics.Detector = (*LogCluster)(nil)
)

// grammarSessions builds normal sessions from two alternating task
// families (the same shape the transdas tests use).
func grammarSessions(n, length int, rng *rand.Rand) [][]int {
	tasksA := [][]int{{1, 2, 3}, {4, 5, 6}}
	tasksB := [][]int{{7, 8}, {9, 10}}
	var out [][]int
	for i := 0; i < n; i++ {
		tasks := tasksA
		if i%2 == 1 {
			tasks = tasksB
		}
		var s []int
		for len(s) < length {
			s = append(s, tasks[rng.Intn(len(tasks))]...)
		}
		out = append(out, s)
	}
	return out
}

// burstSession is a gross count anomaly: one key repeated many times.
func burstSession(length int) []int {
	s := make([]int, length)
	for i := range s {
		s[i] = 2
	}
	return s
}

func holdout(rng *rand.Rand, n int) ([][]int, [][]int) {
	return grammarSessions(n, 18, rng), grammarSessions(n/4, 18, rng)
}

func fprOn(d metrics.Detector, normals [][]int) float64 {
	fp := 0
	for _, s := range normals {
		if d.Flag(s) {
			fp++
		}
	}
	return float64(fp) / float64(len(normals))
}

func TestCountVector(t *testing.T) {
	v := CountVector([]int{1, 1, 3, 0, 99}, 5)
	if v[1] != 2 || v[3] != 1 {
		t.Fatalf("counts = %v", v)
	}
	if v[0] != 2 { // k0 and out-of-vocab both bucket to 0
		t.Fatalf("unknown bucket = %v", v[0])
	}
	if len(v) != 6 {
		t.Fatalf("len = %d", len(v))
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{5, 1, 3, 2, 4}
	if q := quantile(xs, 0); q != 1 {
		t.Fatalf("q0 = %v", q)
	}
	if q := quantile(xs, 1); q != 5 {
		t.Fatalf("q1 = %v", q)
	}
	if q := quantile(xs, 0.5); q != 3 {
		t.Fatalf("q0.5 = %v", q)
	}
	if q := quantile(nil, 0.5); q != 0 {
		t.Fatalf("empty quantile = %v", q)
	}
}

func TestCapSimplexVertex(t *testing.T) {
	grad := []float64{3, 1, 2}
	s := capSimplexVertex(grad, 0.6)
	// Mass fills ascending-gradient coords: idx1 gets 0.6, idx2 gets 0.4.
	if math.Abs(s[1]-0.6) > 1e-12 || math.Abs(s[2]-0.4) > 1e-12 || s[0] != 0 {
		t.Fatalf("vertex = %v", s)
	}
	var sum float64
	for _, v := range s {
		sum += v
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("mass = %v", sum)
	}
}

func TestAvgPathLen(t *testing.T) {
	if avgPathLen(1) != 0 || avgPathLen(0) != 0 {
		t.Fatal("degenerate path length must be 0")
	}
	// c(256) ≈ 10.24 (known value from the iForest paper).
	if c := avgPathLen(256); c < 9.5 || c < 0 || c > 11 {
		t.Fatalf("c(256) = %v", c)
	}
}

func TestOneClassSVMSeparatesBursts(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	train, test := holdout(rng, 60)
	d := NewOneClassSVM()
	d.Fit(train)
	if !d.Flag(burstSession(18)) {
		t.Fatal("OCSVM missed a gross count anomaly")
	}
	if fpr := fprOn(d, test); fpr > 0.35 {
		t.Fatalf("OCSVM FPR = %v too high", fpr)
	}
}

func TestIForestSeparatesVolumeAnomalies(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	train, test := holdout(rng, 60)
	d := NewIForest(7)
	d.Fit(train)
	// A privilege-abuse style anomaly: all activity counts far above the
	// training range. (A single out-of-range feature is iForest's known
	// blind spot — axis-parallel splits never extrapolate beyond the
	// training range — so the realistic multi-feature volume anomaly is
	// the right target here.)
	long := grammarSessions(1, 90, rng)[0]
	if !d.Flag(long) {
		t.Fatal("iForest missed a volume anomaly")
	}
	if fpr := fprOn(d, test); fpr > 0.35 {
		t.Fatalf("iForest FPR = %v too high", fpr)
	}
}

func TestMazzawiFlagsVolumeAnomalies(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	train, test := holdout(rng, 60)
	d := NewMazzawi()
	d.Fit(train)
	// A privilege-abuse style anomaly: 5x normal session length.
	long := grammarSessions(1, 90, rng)[0]
	if !d.Flag(long) {
		t.Fatal("Mazzawi missed a volume anomaly")
	}
	if fpr := fprOn(d, test); fpr > 0.2 {
		t.Fatalf("Mazzawi FPR = %v too high", fpr)
	}
	// A stealthy single-op injection should typically pass (its known
	// blind spot, Table 2's FNR on A2).
	stealthy := append([]int(nil), test[0]...)
	stealthy[len(stealthy)/2] = 9
	if d.Flag(stealthy) {
		t.Log("Mazzawi flagged a stealthy anomaly (unusual but possible)")
	}
}

func TestDeepLogLearnsOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	// Strictly ordered grammar: 1 2 3 repeated.
	var train [][]int
	for i := 0; i < 40; i++ {
		var s []int
		for j := 0; j < 6; j++ {
			s = append(s, 1, 2, 3)
		}
		train = append(train, s)
	}
	_ = rng
	d := NewDeepLog(5)
	d.TopG = 1
	d.Epochs = 6
	d.Fit(train)
	if d.Flag([]int{1, 2, 3, 1, 2, 3}) {
		t.Fatal("DeepLog flagged an in-grammar session")
	}
	if !d.Flag([]int{1, 2, 3, 2, 1, 3}) {
		t.Fatal("DeepLog missed an order violation")
	}
	if !d.Flag([]int{1, 2, 3, 7, 1, 2}) {
		t.Fatal("DeepLog missed an unseen key")
	}
}

func TestUSADSeparatesBursts(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	train, test := holdout(rng, 40)
	d := NewUSAD(8)
	d.Epochs = 8
	d.Fit(train)
	if !d.Flag(burstSession(20)) {
		t.Fatal("USAD missed a gross count anomaly")
	}
	if fpr := fprOn(d, test); fpr > 0.4 {
		t.Fatalf("USAD FPR = %v too high", fpr)
	}
}

func TestLogClusterFlagsForeignPatterns(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	train, test := holdout(rng, 60)
	d := NewLogCluster()
	d.Fit(train)
	foreign := []int{20, 21, 22, 20, 21, 22, 20, 21, 22, 20, 21, 22}
	if !d.Flag(foreign) {
		t.Fatal("LogCluster missed a foreign pattern")
	}
	if fpr := fprOn(d, test); fpr > 0.25 {
		t.Fatalf("LogCluster FPR = %v too high", fpr)
	}
}

func TestDetectorsHandleEmptyTraining(t *testing.T) {
	for _, d := range []metrics.Detector{
		NewOneClassSVM(), NewIForest(1), NewMazzawi(), NewDeepLog(1), NewUSAD(1), NewLogCluster(),
	} {
		d.Fit(nil)
		if d.Flag([]int{1, 2, 3}) {
			t.Errorf("%s flags sessions with no training data", d.Name())
		}
	}
}

func TestMaxKey(t *testing.T) {
	if MaxKey([][]int{{1, 5}, {3}}) != 5 {
		t.Fatal("MaxKey wrong")
	}
	if MaxKey(nil) != 0 {
		t.Fatal("MaxKey of empty must be 0")
	}
}
