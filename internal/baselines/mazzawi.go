package baselines

import "math"

// Mazzawi is the behavioral-patterning detector of Mazzawi et al. [52]:
// each session is profiled by statistical features of its activity
// volume and statement mix, and a session is anomalous when any feature
// deviates by more than Threshold robust standard deviations from the
// user population's normal profile. As the paper observes (§6.2), this
// point-anomaly view yields low FPR but misses stealthy in-pattern
// anomalies (high FNR on A2).
type Mazzawi struct {
	// Threshold is the z-score cut (default 3).
	Threshold float64
	// RareQuantile marks keys below this training-frequency quantile as
	// rare (default 0.1).
	RareQuantile float64

	vocab    int
	keyFreq  []float64 // relative frequency per key
	rareKey  []bool
	mean     []float64
	std      []float64
	nFeature int
}

// NewMazzawi returns a detector with the paper-tuned defaults.
func NewMazzawi() *Mazzawi { return &Mazzawi{Threshold: 3, RareQuantile: 0.1} }

// Name implements metrics.Detector.
func (m *Mazzawi) Name() string { return "Mazzawi" }

// features: [length, distinct keys, max single-key count, rare-key
// fraction, unknown-key count, repetition ratio].
func (m *Mazzawi) features(keys []int) []float64 {
	counts := map[int]int{}
	rare, unknown := 0, 0
	maxCount := 0
	for _, k := range keys {
		counts[k]++
		if counts[k] > maxCount {
			maxCount = counts[k]
		}
		switch {
		case k <= 0 || k > m.vocab:
			unknown++
		case m.rareKey[k]:
			rare++
		}
	}
	n := float64(len(keys))
	if n == 0 {
		n = 1
	}
	return []float64{
		float64(len(keys)),
		float64(len(counts)),
		float64(maxCount),
		float64(rare) / n,
		float64(unknown),
		1 - float64(len(counts))/n,
	}
}

// Fit implements metrics.Detector.
func (m *Mazzawi) Fit(train [][]int) {
	m.vocab = MaxKey(train)
	total := 0
	freq := make([]float64, m.vocab+1)
	for _, s := range train {
		for _, k := range s {
			if k > 0 && k <= m.vocab {
				freq[k]++
			}
			total++
		}
	}
	if total > 0 {
		for k := range freq {
			freq[k] /= float64(total)
		}
	}
	m.keyFreq = freq
	// Rare keys: nonzero frequencies below the RareQuantile quantile.
	var nonzero []float64
	for k := 1; k <= m.vocab; k++ {
		if freq[k] > 0 {
			nonzero = append(nonzero, freq[k])
		}
	}
	cut := quantile(nonzero, m.RareQuantile)
	m.rareKey = make([]bool, m.vocab+1)
	for k := 1; k <= m.vocab; k++ {
		m.rareKey[k] = freq[k] > 0 && freq[k] <= cut
	}
	// Feature moments over the training population.
	var fs [][]float64
	for _, s := range train {
		fs = append(fs, m.features(s))
	}
	if len(fs) == 0 {
		return
	}
	m.nFeature = len(fs[0])
	m.mean = make([]float64, m.nFeature)
	m.std = make([]float64, m.nFeature)
	for _, f := range fs {
		for i, v := range f {
			m.mean[i] += v
		}
	}
	for i := range m.mean {
		m.mean[i] /= float64(len(fs))
	}
	for _, f := range fs {
		for i, v := range f {
			d := v - m.mean[i]
			m.std[i] += d * d
		}
	}
	for i := range m.std {
		m.std[i] = math.Sqrt(m.std[i] / float64(len(fs)))
		if m.std[i] < 1e-9 {
			m.std[i] = 1e-9
		}
	}
}

// Flag implements metrics.Detector.
func (m *Mazzawi) Flag(keys []int) bool {
	if m.nFeature == 0 {
		return false
	}
	f := m.features(keys)
	for i, v := range f {
		if math.Abs(v-m.mean[i])/m.std[i] > m.Threshold {
			return true
		}
	}
	return false
}
