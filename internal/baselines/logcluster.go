package baselines

import (
	"github.com/ucad/ucad/internal/preprocess"
)

// LogCluster is the clustering-based detector of Lin et al. [46] used
// in the transfer experiment (Table 6): normal sessions are clustered
// into a knowledge base of representative patterns; a new session whose
// distance to every representative exceeds the calibrated threshold is
// anomalous. It achieves high precision but low recall on anomalies that
// still resemble a known cluster.
type LogCluster struct {
	// NGram sizes the session profile (default 2).
	NGram int
	// Eps and MinPts configure DBSCAN over Jaccard distance.
	Eps    float64
	MinPts int
	// Slack widens the acceptance radius beyond the worst training
	// distance quantile (default 0.05).
	Slack float64

	medoids   []map[string]struct{}
	threshold float64
}

// NewLogCluster returns a detector with library defaults.
func NewLogCluster() *LogCluster {
	return &LogCluster{NGram: 2, Eps: 0.4, MinPts: 3, Slack: 0.02}
}

// Name implements metrics.Detector.
func (l *LogCluster) Name() string { return "LogCluster" }

// Fit implements metrics.Detector.
func (l *LogCluster) Fit(train [][]int) {
	profiles := make([]map[string]struct{}, len(train))
	for i, s := range train {
		profiles[i] = preprocess.NGramSet(s, l.NGram)
	}
	labels := preprocess.DBSCAN(len(train), func(i, j int) float64 {
		return preprocess.JaccardDistance(profiles[i], profiles[j])
	}, l.Eps, l.MinPts)

	clusters := map[int][]int{}
	for i, lab := range labels {
		if lab == preprocess.Noise {
			continue
		}
		clusters[lab] = append(clusters[lab], i)
	}
	l.medoids = l.medoids[:0]
	for _, members := range clusters {
		best, bestSum := members[0], 1e18
		for _, i := range members {
			var sum float64
			for _, j := range members {
				sum += preprocess.JaccardDistance(profiles[i], profiles[j])
			}
			if sum < bestSum {
				best, bestSum = i, sum
			}
		}
		l.medoids = append(l.medoids, profiles[best])
	}
	if len(l.medoids) == 0 {
		// Degenerate training set: every profile is its own pattern.
		l.medoids = profiles
	}
	// Acceptance threshold: the 98th percentile of training distances to
	// the nearest medoid, plus slack.
	dists := make([]float64, len(train))
	for i := range profiles {
		dists[i] = l.nearest(profiles[i])
	}
	l.threshold = quantile(dists, 0.95) + l.Slack
}

func (l *LogCluster) nearest(p map[string]struct{}) float64 {
	best := 1.0
	for _, m := range l.medoids {
		if d := preprocess.JaccardDistance(p, m); d < best {
			best = d
		}
	}
	return best
}

// Flag implements metrics.Detector.
func (l *LogCluster) Flag(keys []int) bool {
	if len(l.medoids) == 0 {
		return false
	}
	return l.nearest(preprocess.NGramSet(keys, l.NGram)) > l.threshold+1e-12
}
