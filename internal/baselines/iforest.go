package baselines

import (
	"math"
	"math/rand"
	"sort"
)

// sortByGrad orders idx by ascending grad value (shared helper).
func sortByGrad(idx []int, grad []float64) {
	sort.Slice(idx, func(a, b int) bool { return grad[idx[a]] < grad[idx[b]] })
}

// IForest is the Isolation Forest of Liu et al. [48] over session count
// vectors.
type IForest struct {
	// Trees is the ensemble size (default 100).
	Trees int
	// SampleSize ψ is the sub-sample per tree (default 256).
	SampleSize int
	// Contamination sets the score threshold at the (1-c) training
	// quantile (default 0.05).
	Contamination float64
	// Seed drives sampling and split choices.
	Seed int64

	vocab     int
	trees     []*iNode
	threshold float64
}

// NewIForest returns a detector with library defaults.
func NewIForest(seed int64) *IForest {
	return &IForest{Trees: 100, SampleSize: 256, Contamination: 0.05, Seed: seed}
}

// Name implements metrics.Detector.
func (f *IForest) Name() string { return "iForest" }

type iNode struct {
	feature     int
	split       float64
	size        int // leaf: sample count for path-length correction
	left, right *iNode
}

// c is the average unsuccessful-search path length in a BST of n nodes.
func avgPathLen(n int) float64 {
	if n <= 1 {
		return 0
	}
	h := math.Log(float64(n-1)) + 0.5772156649
	return 2*h - 2*float64(n-1)/float64(n)
}

func buildTree(rng *rand.Rand, data [][]float64, depth, maxDepth int) *iNode {
	if len(data) <= 1 || depth >= maxDepth {
		return &iNode{size: len(data)}
	}
	dim := len(data[0])
	// Choose a feature with spread; give up after a few attempts.
	for attempt := 0; attempt < 8; attempt++ {
		feat := rng.Intn(dim)
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, x := range data {
			if x[feat] < lo {
				lo = x[feat]
			}
			if x[feat] > hi {
				hi = x[feat]
			}
		}
		if hi <= lo {
			continue
		}
		split := lo + rng.Float64()*(hi-lo)
		var left, right [][]float64
		for _, x := range data {
			if x[feat] < split {
				left = append(left, x)
			} else {
				right = append(right, x)
			}
		}
		if len(left) == 0 || len(right) == 0 {
			continue
		}
		return &iNode{
			feature: feat,
			split:   split,
			left:    buildTree(rng, left, depth+1, maxDepth),
			right:   buildTree(rng, right, depth+1, maxDepth),
		}
	}
	return &iNode{size: len(data)}
}

func pathLength(n *iNode, x []float64, depth float64) float64 {
	if n.left == nil {
		return depth + avgPathLen(n.size)
	}
	if x[n.feature] < n.split {
		return pathLength(n.left, x, depth+1)
	}
	return pathLength(n.right, x, depth+1)
}

// Fit implements metrics.Detector.
func (f *IForest) Fit(train [][]int) {
	f.vocab = MaxKey(train)
	if len(train) == 0 {
		return
	}
	xs := make([][]float64, len(train))
	for i, s := range train {
		xs[i] = CountVector(s, f.vocab)
	}
	rng := rand.New(rand.NewSource(f.Seed))
	psi := f.SampleSize
	if psi > len(xs) {
		psi = len(xs)
	}
	maxDepth := int(math.Ceil(math.Log2(float64(psi)))) + 1
	f.trees = f.trees[:0]
	for t := 0; t < f.Trees; t++ {
		sample := make([][]float64, psi)
		perm := rng.Perm(len(xs))
		for i := 0; i < psi; i++ {
			sample[i] = xs[perm[i]]
		}
		f.trees = append(f.trees, buildTree(rng, sample, 0, maxDepth))
	}
	scores := make([]float64, len(xs))
	for i, x := range xs {
		scores[i] = f.score(x)
	}
	f.threshold = quantile(scores, 1-f.Contamination)
}

// score is the anomaly score s(x) = 2^{-E[h(x)]/c(ψ)} ∈ (0, 1].
func (f *IForest) score(x []float64) float64 {
	if len(f.trees) == 0 {
		return 0
	}
	var total float64
	for _, t := range f.trees {
		total += pathLength(t, x, 0)
	}
	mean := total / float64(len(f.trees))
	psi := f.SampleSize
	return math.Pow(2, -mean/avgPathLen(psi))
}

// Flag implements metrics.Detector.
func (f *IForest) Flag(keys []int) bool {
	if len(f.trees) == 0 {
		return false
	}
	return f.score(CountVector(keys, f.vocab)) > f.threshold+1e-12
}
