package baselines

import (
	"math/rand"
	"sort"

	"github.com/ucad/ucad/internal/nn"
	"github.com/ucad/ucad/internal/tensor"
)

// DeepLog is the LSTM log-anomaly detector of Du et al. [21]: a
// next-key language model over statement keys; an operation whose key is
// not among the model's top-g predictions makes the session anomalous.
// DeepLog depends on strict operation ordering, which is exactly what
// heterogeneous database access patterns violate — the source of its
// high FPR in Table 2.
type DeepLog struct {
	// Window is the history length h fed to the LSTM (default 10).
	Window int
	// Hidden is the LSTM width (default 32); Embed the key embedding
	// size (default 24 — the original uses one-hot, an embedding is the
	// standard efficient equivalent).
	Hidden, Embed int
	// TopG is the number of candidate next keys considered normal
	// (default 9, the DeepLog paper's g).
	TopG int
	// Epochs and LR control Adam training.
	Epochs int
	LR     float64
	// MaxWindows caps training windows per epoch (0 = all).
	MaxWindows int
	// Seed drives initialization and shuffling.
	Seed int64

	vocab  int
	emb    *nn.Embedding
	cell   *nn.LSTMCell
	head   *nn.Linear
	params []*tensor.Param
	rng    *rand.Rand
}

// NewDeepLog returns a detector with the original paper's defaults.
func NewDeepLog(seed int64) *DeepLog {
	return &DeepLog{Window: 10, Hidden: 32, Embed: 24, TopG: 9, Epochs: 5, LR: 0.01, Seed: seed}
}

// Name implements metrics.Detector.
func (d *DeepLog) Name() string { return "DeepLog" }

type dlWindow struct {
	ctx  []int
	next int
}

// Fit implements metrics.Detector.
func (d *DeepLog) Fit(train [][]int) {
	var windows []dlWindow
	for _, s := range train {
		for t := 1; t < len(s); t++ {
			start := t - d.Window
			if start < 0 {
				start = 0
			}
			windows = append(windows, dlWindow{ctx: s[start:t], next: s[t]})
		}
	}
	if len(windows) == 0 {
		d.emb = nil // stay untrained: Flag reports nothing
		return
	}
	d.vocab = MaxKey(train) + 1
	d.rng = rand.New(rand.NewSource(d.Seed))
	d.emb = nn.NewEmbedding("deeplog.emb", d.vocab, d.Embed, d.rng)
	d.cell = nn.NewLSTMCell("deeplog.lstm", d.Embed, d.Hidden, d.rng)
	d.head = nn.NewLinear("deeplog.head", d.Hidden, d.vocab, d.rng)
	d.params = nn.CollectParams(d.emb, d.cell, d.head)
	opt := nn.NewAdam(d.LR)
	order := make([]int, len(windows))
	for i := range order {
		order[i] = i
	}
	for epoch := 0; epoch < d.Epochs; epoch++ {
		d.rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		limit := len(order)
		if d.MaxWindows > 0 && d.MaxWindows < limit {
			limit = d.MaxWindows
		}
		for _, wi := range order[:limit] {
			w := windows[wi]
			tp := tensor.NewTape()
			logits := d.logits(tp, w.ctx)
			loss := tp.CrossEntropyMean(logits, []int{w.next})
			tp.Backward(loss)
			opt.Step(d.params)
		}
	}
}

// logits runs the LSTM over ctx and returns the 1 x vocab next-key
// scores.
func (d *DeepLog) logits(tp *tensor.Tape, ctx []int) *tensor.Node {
	var h, c *tensor.Node
	for _, k := range ctx {
		x := d.emb.Lookup(tp, []int{k})
		h, c = d.cell.Step(tp, x, h, c)
	}
	if h == nil {
		h = tp.Const(tensor.NewMatrix(1, d.Hidden))
	}
	return d.head.Forward(tp, h)
}

// rankOf returns the 1-based rank of key in the next-key prediction.
func (d *DeepLog) rankOf(ctx []int, key int) int {
	tp := tensor.NewTape()
	logits := d.logits(tp, ctx).Value.Row(0)
	if key < 0 || key >= len(logits) {
		return len(logits) + 1
	}
	order := make([]int, len(logits))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return logits[order[a]] > logits[order[b]] })
	for rank, k := range order {
		if k == key {
			return rank + 1
		}
	}
	return len(logits) + 1
}

// Flag implements metrics.Detector.
func (d *DeepLog) Flag(keys []int) bool {
	if d.emb == nil {
		return false
	}
	for t := 1; t < len(keys); t++ {
		start := t - d.Window
		if start < 0 {
			start = 0
		}
		if keys[t] <= 0 || keys[t] >= d.vocab {
			return true // unseen statement key
		}
		if d.rankOf(keys[start:t], keys[t]) > d.TopG {
			return true
		}
	}
	return false
}
