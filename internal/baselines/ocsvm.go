package baselines

import "math"

// OneClassSVM is the kernel one-class classifier of Schölkopf et al.
// [67], implemented as support vector data description (SVDD) with an
// RBF kernel — for RBF kernels the two formulations are equivalent. The
// dual quadratic program
//
//	min αᵀKα   s.t.  Σα = 1,  0 ≤ αᵢ ≤ 1/(ν·n)
//
// is solved by Frank–Wolfe with exact line search, which needs no
// external QP solver and converges quickly at these problem sizes.
type OneClassSVM struct {
	// Nu bounds the fraction of training outliers (default 0.05).
	Nu float64
	// Gamma is the RBF width; 0 means 1/dim ("scale"-style heuristic).
	Gamma float64
	// Iterations of Frank–Wolfe (default 200).
	Iterations int

	vocab   int
	support [][]float64 // training vectors with α > 0
	alpha   []float64
	radius2 float64 // squared SVDD radius
	wNorm2  float64 // αᵀKα of the solution
}

// NewOneClassSVM returns a detector with library defaults.
func NewOneClassSVM() *OneClassSVM { return &OneClassSVM{Nu: 0.05} }

// Name implements metrics.Detector.
func (m *OneClassSVM) Name() string { return "OneClassSVM" }

func (m *OneClassSVM) rbf(a, b []float64) float64 {
	var d2 float64
	for i := range a {
		diff := a[i] - b[i]
		d2 += diff * diff
	}
	return math.Exp(-m.Gamma * d2)
}

// Fit implements metrics.Detector.
func (m *OneClassSVM) Fit(train [][]int) {
	m.vocab = MaxKey(train)
	n := len(train)
	if n == 0 {
		return
	}
	if m.Nu <= 0 || m.Nu > 1 {
		m.Nu = 0.05
	}
	if m.Iterations <= 0 {
		m.Iterations = 200
	}
	xs := make([][]float64, n)
	for i, s := range train {
		xs[i] = CountVector(s, m.vocab)
	}
	if m.Gamma <= 0 {
		m.Gamma = 1 / float64(len(xs[0]))
	}
	// Kernel matrix.
	K := make([][]float64, n)
	for i := range K {
		K[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			k := m.rbf(xs[i], xs[j])
			K[i][j], K[j][i] = k, k
		}
	}
	cap := 1 / (m.Nu * float64(n))
	if cap < 1.0/float64(n) {
		cap = 1.0 / float64(n)
	}
	// Feasible start: uniform.
	alpha := make([]float64, n)
	for i := range alpha {
		alpha[i] = 1 / float64(n)
	}
	kAlpha := matVec(K, alpha) // K·α maintained incrementally
	for iter := 0; iter < m.Iterations; iter++ {
		// Gradient of αᵀKα is 2Kα; the Frank–Wolfe vertex puts mass cap
		// on the coordinates with the smallest gradient.
		s := capSimplexVertex(kAlpha, cap)
		// Exact line search on f(α + γ(s-α)) = quadratic in γ.
		d := make([]float64, n)
		for i := range d {
			d[i] = s[i] - alpha[i]
		}
		kd := matVec(K, d)
		num, den := 0.0, 0.0
		for i := range d {
			num -= 2 * kAlpha[i] * d[i]
			den += 2 * d[i] * kd[i]
		}
		if den <= 1e-15 {
			break
		}
		gamma := num / den
		if gamma <= 0 {
			break
		}
		if gamma > 1 {
			gamma = 1
		}
		for i := range alpha {
			alpha[i] += gamma * d[i]
			kAlpha[i] += gamma * kd[i]
		}
	}
	// Keep support vectors, compute ‖center‖² and the radius from a
	// margin support vector (0 < α < cap).
	m.wNorm2 = 0
	for i := range alpha {
		m.wNorm2 += alpha[i] * kAlpha[i]
	}
	var sv [][]float64
	var svAlpha []float64
	for i, a := range alpha {
		if a > 1e-10 {
			sv = append(sv, xs[i])
			svAlpha = append(svAlpha, a)
		}
	}
	m.support, m.alpha = sv, svAlpha
	// Radius: use the ν-quantile of training distances so roughly ν of
	// training points fall outside — the standard OC-SVM semantics.
	dists := make([]float64, n)
	for i := range xs {
		dists[i] = m.dist2(xs[i])
	}
	m.radius2 = quantile(dists, 1-m.Nu)
}

// dist2 is the squared distance of x to the SVDD center in feature
// space: K(x,x) - 2Σ αᵢK(x,xᵢ) + ‖center‖², with K(x,x)=1 for RBF.
func (m *OneClassSVM) dist2(x []float64) float64 {
	var cross float64
	for i, sv := range m.support {
		cross += m.alpha[i] * m.rbf(x, sv)
	}
	return 1 - 2*cross + m.wNorm2
}

// Flag implements metrics.Detector.
func (m *OneClassSVM) Flag(keys []int) bool {
	if len(m.support) == 0 {
		return false
	}
	return m.dist2(CountVector(keys, m.vocab)) > m.radius2+1e-12
}

func matVec(K [][]float64, v []float64) []float64 {
	out := make([]float64, len(K))
	for i, row := range K {
		var s float64
		for j, k := range row {
			s += k * v[j]
		}
		out[i] = s
	}
	return out
}

// capSimplexVertex returns the capped-simplex vertex minimizing ⟨g, s⟩:
// mass cap on coordinates in increasing gradient order until Σ = 1.
func capSimplexVertex(grad []float64, cap float64) []float64 {
	n := len(grad)
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	// Selection by gradient ascending (insertion sort is fine for the
	// sizes involved; use sort.Slice for clarity).
	sortByGrad(order, grad)
	s := make([]float64, n)
	remaining := 1.0
	for _, i := range order {
		if remaining <= 0 {
			break
		}
		m := cap
		if m > remaining {
			m = remaining
		}
		s[i] = m
		remaining -= m
	}
	return s
}
