package experiments

import (
	"github.com/ucad/ucad/internal/session"
	"github.com/ucad/ucad/internal/sqlnorm"
	"github.com/ucad/ucad/internal/transdas"
	"github.com/ucad/ucad/internal/workload"
)

// ScenarioData is a fully prepared scenario: raw sessions for
// preprocessing experiments plus tokenized key sequences for detectors.
type ScenarioData struct {
	Name  string
	Gen   *workload.Generator
	Suite *workload.Suite
	Vocab *sqlnorm.Vocabulary
	Cfg   transdas.Config

	Train    [][]int
	Normal   map[string][][]int
	Abnormal map[string][][]int
}

// prepare builds a scenario's suite and tokenizes it: the vocabulary is
// learned from the training split only (detection-stage semantics for
// every test set, exactly as in deployment).
func prepare(name string, spec workload.Spec, p scenarioParams, seed int64) *ScenarioData {
	if p.avgLen > 0 {
		spec.AvgLen = p.avgLen
	}
	gen := workload.NewGenerator(spec, seed)
	suite := gen.BuildSuite(p.sessions)

	vocab := sqlnorm.NewVocabulary()
	session.TokenizeLearn(vocab, suite.Train)

	cfg := p.cfg
	cfg.Vocab = vocab.Size()

	d := &ScenarioData{
		Name:     name,
		Gen:      gen,
		Suite:    suite,
		Vocab:    vocab,
		Cfg:      cfg,
		Train:    workload.Keyed(vocab, suite.Train),
		Normal:   map[string][][]int{},
		Abnormal: map[string][][]int{},
	}
	for set, ss := range suite.Normal {
		d.Normal[set] = workload.Keyed(vocab, ss)
	}
	for set, ss := range suite.Abnormal {
		d.Abnormal[set] = workload.Keyed(vocab, ss)
	}
	return d
}

// PrepareScenarioI builds the commenting-application data at the
// option's scale.
func PrepareScenarioI(opt Options) *ScenarioData {
	p := opt.paramsI()
	return prepare("Scenario-I", workload.ScenarioI(), p, opt.Seed)
}

// PrepareScenarioII builds the location-service data at the option's
// scale.
func PrepareScenarioII(opt Options) *ScenarioData {
	p := opt.paramsII()
	return prepare("Scenario-II", workload.ScenarioII(p.richness), p, opt.Seed)
}

// Scenarios prepares both scenarios.
func Scenarios(opt Options) []*ScenarioData {
	return []*ScenarioData{PrepareScenarioI(opt), PrepareScenarioII(opt)}
}
