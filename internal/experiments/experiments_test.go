package experiments

import (
	"bytes"
	"runtime"
	"strings"
	"testing"
)

// skipSweep gates the two pure sensitivity sweeps: the full package
// fits go test's default 10m budget only when t.Parallel can spread
// the model training across cores. On a single-core box the sweeps
// alone push the serial wall clock past the budget, so they defer to
// cmd/ucad-experiments (which has no timeout) instead of failing the
// whole package by timeout.
func skipSweep(t *testing.T, why string) {
	t.Helper()
	if testing.Short() {
		t.Skip(why)
	}
	if runtime.GOMAXPROCS(0) == 1 {
		t.Skip(why + " (single core: no parallel headroom inside the test timeout)")
	}
	t.Parallel()
}

func quickOpt() Options { return Options{Scale: ScaleQuick, Seed: 1} }

func TestTable1Shapes(t *testing.T) {
	var buf bytes.Buffer
	res := Table1(quickOpt(), &buf)
	if len(res) != 2 {
		t.Fatalf("scenarios = %d", len(res))
	}
	if res[0].Stats.Keys != 20 {
		t.Fatalf("Scenario-I keys = %d, want 20", res[0].Stats.Keys)
	}
	if res[1].Stats.Keys <= res[0].Stats.Keys {
		t.Fatal("Scenario-II must have a much richer key space")
	}
	for _, r := range res {
		for _, set := range []string{"V1", "V2", "V3", "A1", "A2", "A3"} {
			if r.Testing[set] == 0 {
				t.Fatalf("%s missing test set %s", r.Scenario, set)
			}
		}
		if r.Testing["A1"] != r.Testing["V1"] {
			t.Fatal("abnormal sets must match V1's size (§6.1)")
		}
	}
	if !strings.Contains(buf.String(), "Table 1") {
		t.Fatal("missing printed table")
	}
}

func TestTable2Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("full comparison is slow")
	}
	t.Parallel()
	res := Table2(quickOpt(), nil)
	if len(res) != 2 {
		t.Fatalf("scenarios = %d", len(res))
	}
	for _, sc := range res {
		if len(sc.Rows) != 6 {
			t.Fatalf("%s methods = %d, want 6", sc.Scenario, len(sc.Rows))
		}
		var ucadF1, bestF1, ucadA2 float64
		bestOther := ""
		for _, row := range sc.Rows {
			if row.Method == "UCAD" {
				ucadF1 = row.F1
				ucadA2 = row.FNR["A2"]
				continue
			}
			if row.F1 > bestF1 {
				bestF1, bestOther = row.F1, row.Method
			}
		}
		// Shape: UCAD is competitive with the best baseline (winning at
		// paper scale; quick scale allows small seed noise) and detects
		// the stealthy A2 anomalies.
		if ucadF1 < 0.72 {
			t.Errorf("%s: UCAD F1 = %.3f too low", sc.Scenario, ucadF1)
		}
		if ucadF1 < bestF1-0.08 {
			t.Errorf("%s: UCAD F1 %.3f far behind %s (%.3f)", sc.Scenario, ucadF1, bestOther, bestF1)
		}
		if ucadA2 > 0.25 {
			t.Errorf("%s: UCAD FNR(A2) = %.3f; stealthy anomalies must be caught", sc.Scenario, ucadA2)
		}
		// Shape: non-sequence baselines miss stealthy A2 anomalies far
		// more often than UCAD (the paper's central claim).
		for _, row := range sc.Rows {
			switch row.Method {
			case "iForest", "Mazzawi":
				if row.FNR["A2"] < ucadA2 {
					t.Errorf("%s: %s FNR(A2)=%.3f beats UCAD %.3f — point methods should miss stealthy anomalies",
						sc.Scenario, row.Method, row.FNR["A2"], ucadA2)
				}
			}
		}
	}
}

func TestTableAttacksShape(t *testing.T) {
	if testing.Short() {
		t.Skip("attack-taxonomy evaluation is slow")
	}
	t.Parallel()
	rows := TableAttacks(quickOpt(), nil)
	if len(rows) != 12 {
		t.Fatalf("rows = %d, want 12 (2 scenarios x A1-A6)", len(rows))
	}
	byFam := map[string]map[string]AttackRow{}
	for _, r := range rows {
		if r.Precision < 0 || r.Precision > 1 || r.Recall < 0 || r.Recall > 1 {
			t.Fatalf("%s/%s out of range: %+v", r.Scenario, r.Family, r)
		}
		if r.Sessions == 0 {
			t.Fatalf("%s/%s has no sessions", r.Scenario, r.Family)
		}
		if byFam[r.Scenario] == nil {
			byFam[r.Scenario] = map[string]AttackRow{}
		}
		byFam[r.Scenario][r.Family] = r
	}
	for sc, fams := range byFam {
		for _, f := range []string{"A1", "A2", "A3", "A4", "A5", "A6"} {
			if _, ok := fams[f]; !ok {
				t.Fatalf("%s missing family %s", sc, f)
			}
		}
		// Shape: volume anomalies (A1 privilege abuse, A6 mass-delete
		// bursts) are caught reliably; the pure-ordering A5 attacks are
		// the hardest family — its recall must not beat the burst
		// families'.
		if r := fams["A1"].Recall; r < 0.7 {
			t.Errorf("%s: A1 recall %.3f too low", sc, r)
		}
		if r := fams["A6"].Recall; r < 0.7 {
			t.Errorf("%s: A6 recall %.3f too low", sc, r)
		}
		if fams["A5"].Recall > fams["A6"].Recall {
			t.Errorf("%s: A5 (pure ordering) recall %.3f beats A6 %.3f — unexpected ordering sensitivity",
				sc, fams["A5"].Recall, fams["A6"].Recall)
		}
	}
}

func TestTable3AblationShape(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation sweep is slow")
	}
	t.Parallel()
	res := Table3(quickOpt(), nil)
	for _, sc := range res {
		if len(sc.Rows) != len(ablationOrder) {
			t.Fatalf("%s rows = %d", sc.Scenario, len(sc.Rows))
		}
		base := sc.Rows[0]
		full := sc.Rows[len(sc.Rows)-1]
		if base.Method != "Base Transformer" || full.Method != "Trans-DAS" {
			t.Fatalf("row order wrong: %s .. %s", base.Method, full.Method)
		}
		if full.F1 < base.F1-0.05 {
			t.Errorf("%s: full model F1 %.3f below base %.3f", sc.Scenario, full.F1, base.F1)
		}
	}
}

func TestTables4And5TimeScaling(t *testing.T) {
	if testing.Short() {
		t.Skip("sweeps are slow")
	}
	for _, tc := range []struct {
		name string
		run  func(Options, *bytes.Buffer) []SweepPoint
	}{
		{"table4", func(o Options, b *bytes.Buffer) []SweepPoint { return Table4(o, b) }},
		{"table5", func(o Options, b *bytes.Buffer) []SweepPoint { return Table5(o, b) }},
	} {
		var buf bytes.Buffer
		pts := tc.run(quickOpt(), &buf)
		if len(pts) < 2 {
			t.Fatalf("%s: %d points", tc.name, len(pts))
		}
		// Shape: training time grows with the parameter.
		if pts[len(pts)-1].EpochTime <= pts[0].EpochTime {
			t.Errorf("%s: time/epoch did not grow: %v -> %v",
				tc.name, pts[0].EpochTime, pts[len(pts)-1].EpochTime)
		}
		for _, p := range pts {
			if p.F1 <= 0.3 {
				t.Errorf("%s: F1 at %d collapsed to %.3f", tc.name, p.Value, p.F1)
			}
		}
	}
}

func TestTable6TransferShape(t *testing.T) {
	if testing.Short() {
		t.Skip("transfer sweep is slow")
	}
	t.Parallel()
	res := Table6(quickOpt(), nil)
	if len(res) != 3 {
		t.Fatalf("datasets = %d", len(res))
	}
	for _, ds := range res {
		if len(ds.Rows) != 3 {
			t.Fatalf("%s methods = %d", ds.Dataset, len(ds.Rows))
		}
		var ucad, logCluster, deeplog float64
		for _, row := range ds.Rows {
			switch row.Method {
			case "UCAD":
				ucad = row.Recall
			case "LogCluster":
				logCluster = row.Recall
			case "DeepLog":
				deeplog = row.Recall
			}
		}
		// Shape: UCAD's recall is the highest (or tied) on every log
		// dataset (§6.6), and clearly above LogCluster's.
		if ucad < deeplog-0.05 || ucad < logCluster {
			t.Errorf("%s: recall UCAD=%.3f DeepLog=%.3f LogCluster=%.3f",
				ds.Dataset, ucad, deeplog, logCluster)
		}
	}
}

func TestFigure6AttentionStructure(t *testing.T) {
	if testing.Short() {
		t.Skip("training is slow")
	}
	t.Parallel()
	var buf bytes.Buffer
	res := Figure6(quickOpt(), &buf)
	if res.Weights == nil || res.Weights.Rows != len(res.Keys) {
		t.Fatal("missing attention weights")
	}
	for i := 0; i < res.Weights.Rows; i++ {
		var sum float64
		for j := 0; j < res.Weights.Cols; j++ {
			sum += res.Weights.At(i, j)
		}
		if sum < 0.99 || sum > 1.01 {
			t.Fatalf("attention row %d sums to %v", i, sum)
		}
	}
	if len(res.Templates) != len(res.Keys) {
		t.Fatal("template listing incomplete")
	}
	if !strings.Contains(buf.String(), "Statement template") {
		t.Fatal("missing template table in output")
	}
}

func TestFigure7Sensitivity(t *testing.T) {
	skipSweep(t, "sweeps are slow")
	res := Figure7(quickOpt(), nil)
	if len(res) != 2 {
		t.Fatalf("scenarios = %d", len(res))
	}
	for _, sc := range res {
		if len(sc.P) < 3 || len(sc.L) < 2 || len(sc.G) < 3 || len(sc.H) < 2 {
			t.Fatalf("%s curves incomplete: %d %d %d %d", sc.Scenario, len(sc.P), len(sc.L), len(sc.G), len(sc.H))
		}
		// Shape: tiny p over-flags (lower F1 than the best p).
		bestP, firstP := 0.0, sc.P[0].F1
		for _, pt := range sc.P {
			if pt.F1 > bestP {
				bestP = pt.F1
			}
		}
		if firstP > bestP-0.01 {
			t.Logf("%s: p=1 already near-optimal (%.3f vs %.3f)", sc.Scenario, firstP, bestP)
		}
		// Shape: the margin g barely matters.
		minG, maxG := 1.0, 0.0
		for _, pt := range sc.G {
			if pt.F1 < minG {
				minG = pt.F1
			}
			if pt.F1 > maxG {
				maxG = pt.F1
			}
		}
		if maxG-minG > 0.25 {
			t.Errorf("%s: F1 varies %.3f across g — paper reports insensitivity", sc.Scenario, maxG-minG)
		}
	}
}

func TestFigure8Robustness(t *testing.T) {
	skipSweep(t, "contamination sweep is slow")
	res := Figure8(quickOpt(), nil)
	if len(res) != 2 {
		t.Fatalf("scenarios = %d", len(res))
	}
	for _, sc := range res {
		var ucad *Figure8Row
		for i := range sc.Rows {
			if sc.Rows[i].Method == "UCAD" {
				ucad = &sc.Rows[i]
			}
		}
		if ucad == nil || len(ucad.F1) != len(sc.Ratios) {
			t.Fatalf("%s: missing UCAD curve", sc.Scenario)
		}
		clean0 := ucad.F1[0].F1
		dirty20 := ucad.F1[len(ucad.F1)-1].F1
		// Shape: graceful decline — 20% contamination costs well under
		// half the clean F1 (the paper reports ~0.08-0.13 absolute).
		if dirty20 < clean0-0.35 {
			t.Errorf("%s: F1 fell %.3f -> %.3f under contamination", sc.Scenario, clean0, dirty20)
		}
	}
}
