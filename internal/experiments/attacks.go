package experiments

import (
	"fmt"
	"io"
	"sort"

	"github.com/ucad/ucad/internal/workload"
)

// extendAttackSets appends the extended taxonomy (A4 low-and-slow
// exfiltration, A5 privilege-escalation orderings, A6 mass-delete
// bursts) to a prepared scenario, tokenized with the already-learned
// vocabulary — detection-stage semantics, same as every other test set.
func extendAttackSets(d *ScenarioData) {
	d.Gen.ExtendAttacks(d.Suite)
	for _, fam := range []string{"A4", "A5", "A6"} {
		d.Abnormal[fam] = workload.Keyed(d.Vocab, d.Suite.Abnormal[fam])
	}
}

// AttackRow is one (scenario, family) cell of the per-family
// precision/recall table.
type AttackRow struct {
	Scenario  string
	Family    string
	Sessions  int
	Precision float64
	Recall    float64
	F1        float64
}

// TableAttacks evaluates UCAD per attack family across the full A1–A6
// taxonomy. Recall is per family (1 − FNR on that family's set);
// precision charges each family the detector's full false-alarm count
// on the normal sets V1–V3 — the operator's view, where every alert
// from the shared stream competes with the same false positives.
func TableAttacks(opt Options, w io.Writer) []AttackRow {
	var out []AttackRow
	for _, data := range Scenarios(opt) {
		extendAttackSets(data)
		ev := evaluate(opt.newDetector(data.Cfg), data)
		fp := ev.Confusion.FP

		var fams []string
		for fam := range data.Abnormal {
			fams = append(fams, fam)
		}
		sort.Strings(fams)

		var rows []AttackRow
		for _, fam := range fams {
			n := len(data.Abnormal[fam])
			recall := 1 - ev.FNR[fam]
			tp := int(recall*float64(n) + 0.5)
			prec := 0.0
			if tp+fp > 0 {
				prec = float64(tp) / float64(tp+fp)
			}
			f1 := 0.0
			if prec+recall > 0 {
				f1 = 2 * prec * recall / (prec + recall)
			}
			rows = append(rows, AttackRow{
				Scenario: data.Name, Family: fam, Sessions: n,
				Precision: prec, Recall: recall, F1: f1,
			})
		}
		out = append(out, rows...)

		if w != nil {
			fmt.Fprintf(w, "Attack taxonomy A1-A6: UCAD per-family detection (%s, scale=%s, FP on V1-V3 = %d)\n",
				data.Name, opt.Scale, fp)
			fmt.Fprintf(w, "%-8s %10s %10s %10s %10s\n", "Family", "Sessions", "P", "R", "F1")
			for _, r := range rows {
				fmt.Fprintf(w, "%-8s %10d %10.5f %10.5f %10.5f\n",
					r.Family, r.Sessions, r.Precision, r.Recall, r.F1)
			}
			fmt.Fprintln(w)
		}
	}
	return out
}
