package experiments

import (
	"fmt"
	"io"
	"math/rand"

	"github.com/ucad/ucad/internal/baselines"
	"github.com/ucad/ucad/internal/core"
	"github.com/ucad/ucad/internal/metrics"
	"github.com/ucad/ucad/internal/preprocess"
	"github.com/ucad/ucad/internal/tensor"
	"github.com/ucad/ucad/internal/workload"
)

// Figure6Result is the attention-weight introspection of one session.
type Figure6Result struct {
	Keys      []int
	Templates []string
	// Weights is the head-averaged attention of the first block.
	Weights *tensor.Matrix
	// MostRelevant[i] is the context position with the highest weight
	// for output position i (the paper's red squares).
	MostRelevant []int
}

// Figure6 trains Trans-DAS on Scenario-II and visualizes the first
// attention block's weights for a normal session, reproducing the
// paper's observation that semantically related operations (same table,
// consecutive related queries) attend to each other.
func Figure6(opt Options, w io.Writer) Figure6Result {
	data := PrepareScenarioII(opt)
	d := opt.newDetector(data.Cfg)
	d.Fit(data.Train)

	// Pick the most template-diverse session for a readable heatmap
	// (the paper's example has ~12 distinct statements).
	best, bestDistinct := data.Normal["V1"][0], 0
	for _, s := range data.Normal["V1"] {
		distinct := map[int]bool{}
		limit := len(s)
		if limit > 13 {
			limit = 13
		}
		for _, k := range s[:limit] {
			distinct[k] = true
		}
		if len(distinct) > bestDistinct {
			best, bestDistinct = s, len(distinct)
		}
	}
	keys := best
	if len(keys) > 13 {
		keys = keys[:13]
	}
	heads := d.Model().AttentionWeights(keys, 0)
	avg := tensor.NewMatrix(len(keys), len(keys))
	for _, h := range heads {
		for i := range avg.Data {
			avg.Data[i] += h.Data[i] / float64(len(heads))
		}
	}
	res := Figure6Result{Keys: keys, Weights: avg}
	for _, k := range keys {
		res.Templates = append(res.Templates, data.Vocab.Template(k))
	}
	for i := 0; i < avg.Rows; i++ {
		best, bestW := 0, -1.0
		for j := 0; j < avg.Cols; j++ {
			if wgt := avg.At(i, j); wgt > bestW {
				best, bestW = j, wgt
			}
		}
		res.MostRelevant = append(res.MostRelevant, best)
	}
	if w != nil {
		fmt.Fprintf(w, "Figure 6: first-block attention weights (scale=%s)\n", opt.Scale)
		fmt.Fprint(w, "      ")
		for _, k := range keys {
			fmt.Fprintf(w, "%5d", k)
		}
		fmt.Fprintln(w)
		for i := 0; i < avg.Rows; i++ {
			fmt.Fprintf(w, "%5d ", keys[i])
			for j := 0; j < avg.Cols; j++ {
				mark := " "
				if j == res.MostRelevant[i] {
					mark = "*"
				}
				fmt.Fprintf(w, "%s%.2f", mark, avg.At(i, j))
			}
			fmt.Fprintln(w)
		}
		fmt.Fprintln(w, "\nKey  Statement template")
		for i, k := range keys {
			tpl := res.Templates[i]
			if len(tpl) > 72 {
				tpl = tpl[:69] + "..."
			}
			fmt.Fprintf(w, "%4d %s\n", k, tpl)
		}
		fmt.Fprintln(w)
	}
	return res
}

// FigurePoint is one (x, F1) measurement of a sensitivity curve.
type FigurePoint struct {
	X  float64
	F1 float64
}

// Figure7Result holds the four sensitivity curves for one scenario.
type Figure7Result struct {
	Scenario string
	P        []FigurePoint
	L        []FigurePoint
	G        []FigurePoint
	H        []FigurePoint
}

// Figure7 regenerates the hyper-parameter sensitivity study: F1 versus
// top-p, input size L, margin g and latent dimension h.
func Figure7(opt Options, w io.Writer) []Figure7Result {
	var out []Figure7Result
	for _, scenario := range []int{1, 2} {
		prepareFn := PrepareScenarioI
		if scenario == 2 {
			prepareFn = PrepareScenarioII
		}
		res := Figure7Result{Scenario: fmt.Sprintf("Scenario-%d", scenario)}

		// p varies at detection time only: train once, sweep the rank
		// threshold.
		data := prepareFn(opt)
		base := opt.newDetector(data.Cfg)
		base.Fit(data.Train)
		pGrid := []int{1, 2, 3, 5, 8, 10, 12}
		if opt.Scale == ScaleQuick {
			pGrid = []int{1, 3, 6, 8, 10, 12} // p is detection-only: no retraining
		}
		for _, p := range pGrid {
			d := detectorWithTopP(base, p)
			ev := metrics.EvaluateParallel(d, data.Normal, data.Abnormal, 0)
			res.P = append(res.P, FigurePoint{X: float64(p), F1: ev.F1})
		}

		retrain := func(mutate func(d *ScenarioData)) float64 {
			data := prepareFn(opt)
			mutate(data)
			d := opt.newDetector(data.Cfg)
			d.Fit(data.Train)
			return metrics.EvaluateParallel(d, data.Normal, data.Abnormal, 0).F1
		}

		lGrid := opt.lGrid()
		for _, l := range lGrid {
			f1 := retrain(func(d *ScenarioData) { d.Cfg.Window = l })
			res.L = append(res.L, FigurePoint{X: float64(l), F1: f1})
		}
		gGrid := []float64{0.1, 0.5, 1.0}
		if opt.Scale != ScaleQuick {
			gGrid = []float64{0.1, 0.25, 0.5, 0.75, 1.0}
		}
		for _, g := range gGrid {
			f1 := retrain(func(d *ScenarioData) { d.Cfg.Margin = g })
			res.G = append(res.G, FigurePoint{X: g, F1: f1})
		}
		for _, h := range opt.hGrid() {
			f1 := retrain(func(d *ScenarioData) {
				d.Cfg.Hidden = h
				for h%d.Cfg.Heads != 0 {
					d.Cfg.Heads--
				}
			})
			res.H = append(res.H, FigurePoint{X: float64(h), F1: f1})
		}
		out = append(out, res)
		if w != nil {
			fmt.Fprintf(w, "Figure 7 (%s, scale=%s)\n", res.Scenario, opt.Scale)
			printCurve(w, "top-p", res.P)
			printCurve(w, "input size L", res.L)
			printCurve(w, "margin g", res.G)
			printCurve(w, "latent dim h", res.H)
			fmt.Fprintln(w)
		}
	}
	return out
}

// topPOverride wraps a fitted UCAD detector with a different top-p.
type topPOverride struct {
	inner *core.Detector
	p     int
}

func detectorWithTopP(d *core.Detector, p int) metrics.Detector {
	return &topPOverride{inner: d, p: p}
}

// Name implements metrics.Detector.
func (t *topPOverride) Name() string { return fmt.Sprintf("UCAD(p=%d)", t.p) }

// Fit implements metrics.Detector (the inner detector is already fit).
func (t *topPOverride) Fit(train [][]int) {}

// Flag implements metrics.Detector using the rank directly.
func (t *topPOverride) Flag(keys []int) bool {
	m := t.inner.Model()
	if m == nil {
		return false
	}
	cfg := m.Config()
	for pos := cfg.MinContext; pos < len(keys); pos++ {
		if m.RankOf(keys[:pos], keys[pos]) > t.p {
			return true
		}
	}
	return false
}

func printCurve(w io.Writer, name string, pts []FigurePoint) {
	fmt.Fprintf(w, "  %-14s", name)
	for _, p := range pts {
		fmt.Fprintf(w, " (%g, %.3f)", p.X, p.F1)
	}
	fmt.Fprintln(w)
}

// Figure8Row is one detector's F1 across contamination ratios.
type Figure8Row struct {
	Method string
	F1     []FigurePoint
}

// Figure8Result holds the robustness study for one scenario.
type Figure8Result struct {
	Scenario string
	Ratios   []float64
	Rows     []Figure8Row
}

// Figure8 regenerates the robustness-to-hybrid-data study: every method
// is trained on a training set containing the given ratio of abnormal
// sessions. A "UCAD+clean" row additionally runs the preprocessing
// module's noise removal first — the ablation DESIGN.md calls out.
func Figure8(opt Options, w io.Writer) []Figure8Result {
	ratios := []float64{0, 0.1, 0.2}
	if opt.Scale != ScaleQuick {
		ratios = []float64{0, 0.05, 0.10, 0.15, 0.20}
	}
	var out []Figure8Result
	for _, scenario := range []int{1, 2} {
		prepareFn := PrepareScenarioI
		if scenario == 2 {
			prepareFn = PrepareScenarioII
		}
		res := Figure8Result{Scenario: fmt.Sprintf("Scenario-%d", scenario), Ratios: ratios}
		rows := map[string]*Figure8Row{}
		order := []string{}
		record := func(method string, ratio, f1 float64) {
			row, ok := rows[method]
			if !ok {
				row = &Figure8Row{Method: method}
				rows[method] = row
				order = append(order, method)
			}
			row.F1 = append(row.F1, FigurePoint{X: ratio, F1: f1})
		}
		for _, ratio := range ratios {
			data := prepareFn(opt)
			dirty := data.Gen.Contaminate(data.Suite.Train, ratio)
			dirtyKeys := workload.Keyed(data.Vocab, dirty)

			detectors := append(baselineSet(opt), opt.newDetector(data.Cfg))
			for _, d := range detectors {
				d.Fit(dirtyKeys)
				ev := metrics.EvaluateParallel(d, data.Normal, data.Abnormal, 0)
				record(d.Name(), ratio, ev.F1)
			}
			// UCAD with the preprocessing module's noise removal.
			cleaned, _ := preprocess.Clean(dirty, cleanConfigFor(opt), rand.New(rand.NewSource(opt.Seed)))
			cleanDet := opt.newDetector(data.Cfg)
			cleanDet.DisplayName = "UCAD+clean"
			cleanDet.Fit(workload.Keyed(data.Vocab, cleaned))
			record(cleanDet.Name(), ratio, metrics.EvaluateParallel(cleanDet, data.Normal, data.Abnormal, 0).F1)
		}
		for _, name := range order {
			res.Rows = append(res.Rows, *rows[name])
		}
		out = append(out, res)
		if w != nil {
			fmt.Fprintf(w, "Figure 8 (%s, scale=%s): F1 vs training contamination\n", res.Scenario, opt.Scale)
			fmt.Fprintf(w, "%-24s", "Method")
			for _, r := range ratios {
				fmt.Fprintf(w, " %6.0f%%", r*100)
			}
			fmt.Fprintln(w)
			for _, row := range res.Rows {
				fmt.Fprintf(w, "%-24s", row.Method)
				for _, p := range row.F1 {
					fmt.Fprintf(w, " %7.4f", p.F1)
				}
				fmt.Fprintln(w)
			}
			fmt.Fprintln(w)
		}
	}
	return out
}

// cleanConfigFor relaxes DBSCAN for small training sets.
func cleanConfigFor(opt Options) preprocess.CleanConfig {
	cfg := preprocess.DefaultCleanConfig()
	// Contamination removal only needs the noise/rare-cluster rules; the
	// balancing and length pruning would discard legitimate sessions the
	// small training sets cannot spare.
	cfg.SmallClusterRatio = 0.15
	cfg.ShortSessionRatio = 0.1
	if opt.Scale == ScaleQuick {
		cfg.MinPts = 2
		cfg.Eps = 0.75
	}
	return cfg
}

// Ensure baselines import is used even if scales change.
var _ = baselines.MaxKey
