package experiments

import (
	"fmt"
	"io"
	"sort"
	"time"

	"github.com/ucad/ucad/internal/baselines"
	"github.com/ucad/ucad/internal/metrics"
	"github.com/ucad/ucad/internal/transdas"
	"github.com/ucad/ucad/internal/workload"
)

// baselineSet builds the five comparison methods sized for the scale.
func baselineSet(opt Options) []metrics.Detector {
	dl := baselines.NewDeepLog(opt.Seed)
	us := baselines.NewUSAD(opt.Seed)
	switch opt.Scale {
	case ScaleQuick:
		dl.Epochs, dl.MaxWindows = 3, 1500
		us.Epochs = 6
	case ScaleDemo:
		dl.Epochs, dl.MaxWindows = 4, 6000
		us.Epochs = 10
	}
	return []metrics.Detector{
		baselines.NewOneClassSVM(),
		baselines.NewIForest(opt.Seed),
		baselines.NewMazzawi(),
		dl,
		us,
	}
}

// evaluate fits the detector on the scenario's training split and runs
// the full §6.1 protocol; session flagging fans out across CPUs (every
// detector's inference is read-only after Fit).
func evaluate(d metrics.Detector, data *ScenarioData) metrics.Evaluation {
	d.Fit(data.Train)
	return metrics.EvaluateParallel(d, data.Normal, data.Abnormal, 0)
}

// Table1Result reproduces one row of Table 1.
type Table1Result struct {
	Scenario string
	Stats    workload.Stats
	Testing  map[string]int
}

// Table1 regenerates the dataset-statistics table. Generation is cheap
// (no training), so this table always uses the paper's dataset sizes
// and full template richness regardless of scale.
func Table1(opt Options, w io.Writer) []Table1Result {
	paper := opt
	paper.Scale = ScalePaper
	var out []Table1Result
	for _, data := range Scenarios(paper) {
		st := workload.ComputeStats(data.Suite.Train)
		res := Table1Result{Scenario: data.Name, Stats: st, Testing: map[string]int{}}
		for name, ss := range data.Suite.Normal {
			res.Testing[name] = len(ss)
		}
		for name, ss := range data.Suite.Abnormal {
			res.Testing[name] = len(ss)
		}
		out = append(out, res)
	}
	if w != nil {
		fmt.Fprintf(w, "Table 1: dataset statistics (scale=%s)\n", opt.Scale)
		fmt.Fprintf(w, "%-12s %9s %7s %25s %7s %9s %8s\n",
			"Scenario", "#Train", "AvgLen", "#Keys (sel,ins,upd,del)", "#Table", "#Abnormal", "#Normal")
		for _, r := range out {
			k := r.Stats.KeysByCommand
			fmt.Fprintf(w, "%-12s %9d %7.0f %9d (%d, %d, %d, %d)     %7d %6dx3 %6dx3\n",
				r.Scenario, r.Stats.Sessions, r.Stats.AvgLen, r.Stats.Keys,
				k["SELECT"], k["INSERT"], k["UPDATE"], k["DELETE"],
				r.Stats.Tables, r.Testing["A1"], r.Testing["V1"])
		}
		fmt.Fprintln(w)
	}
	return out
}

// Table2Result is one scenario's comparison block.
type Table2Result struct {
	Scenario string
	Rows     []metrics.Evaluation
}

// Table2 regenerates the main detection-performance comparison: five
// baselines plus UCAD per scenario.
func Table2(opt Options, w io.Writer) []Table2Result {
	var out []Table2Result
	for _, data := range Scenarios(opt) {
		detectors := append(baselineSet(opt), opt.newDetector(data.Cfg))
		res := Table2Result{Scenario: data.Name}
		for _, d := range detectors {
			res.Rows = append(res.Rows, evaluate(d, data))
		}
		out = append(out, res)
		if w != nil {
			printEvalTable(w, fmt.Sprintf("Table 2 (%s, scale=%s)", data.Name, opt.Scale), res.Rows)
		}
	}
	return out
}

// Table3Result is one scenario's ablation block.
type Table3Result struct {
	Scenario string
	Rows     []metrics.Evaluation
}

// Table3 regenerates the design ablation: the base transformer, each
// Trans-DAS design alone, and the full model.
func Table3(opt Options, w io.Writer) []Table3Result {
	var out []Table3Result
	for _, data := range Scenarios(opt) {
		res := Table3Result{Scenario: data.Name}
		for _, name := range ablationOrder {
			d := opt.newDetector(ablationVariant(data.Cfg, name))
			d.DisplayName = name
			res.Rows = append(res.Rows, evaluate(d, data))
		}
		out = append(out, res)
		if w != nil {
			printEvalTable(w, fmt.Sprintf("Table 3 (%s, scale=%s)", data.Name, opt.Scale), res.Rows)
		}
	}
	return out
}

// SweepPoint is one (parameter value, training time, F1) measurement.
type SweepPoint struct {
	Value     int
	EpochTime time.Duration
	F1        float64
}

// hGrid returns the Table 4 / Figure 7 latent-dimension grid by scale.
func (o Options) hGrid() []int {
	switch o.Scale {
	case ScaleQuick:
		return []int{8, 16}
	case ScaleDemo:
		return []int{16, 32, 64}
	default:
		return []int{16, 32, 64, 128, 256}
	}
}

func (o Options) lGrid() []int {
	switch o.Scale {
	case ScaleQuick:
		return []int{10, 20}
	case ScaleDemo:
		return []int{30, 60, 90}
	default:
		return []int{50, 75, 100, 125, 150}
	}
}

// runSweepPoint trains a UCAD variant with the mutated config and
// measures per-epoch training time and F1 on Scenario-II data.
func runSweepPoint(opt Options, data *ScenarioData, mutate func(cfg *ScenarioData) (label int)) SweepPoint {
	label := mutate(data)
	d := opt.newDetector(data.Cfg)
	start := time.Now()
	d.Fit(data.Train)
	perEpoch := time.Duration(int64(time.Since(start)) / int64(data.Cfg.Epochs))
	ev := metrics.Evaluate(d, data.Normal, data.Abnormal)
	return SweepPoint{Value: label, EpochTime: perEpoch, F1: ev.F1}
}

// Table4 regenerates the latent-dimension sweep (training time per
// epoch and F1 versus h) on Scenario-II.
func Table4(opt Options, w io.Writer) []SweepPoint {
	var out []SweepPoint
	for _, h := range opt.hGrid() {
		data := PrepareScenarioII(opt)
		data.Cfg.Hidden = h
		if data.Cfg.Heads > h {
			data.Cfg.Heads = 1
		}
		for h%data.Cfg.Heads != 0 {
			data.Cfg.Heads--
		}
		out = append(out, runSweepPoint(opt, data, func(d *ScenarioData) int { return h }))
	}
	if w != nil {
		printSweep(w, fmt.Sprintf("Table 4: latent dimension h (Scenario-II, scale=%s)", opt.Scale), "h", out)
	}
	return out
}

// Table5 regenerates the input-size sweep (training time per epoch and
// F1 versus L) on Scenario-II.
func Table5(opt Options, w io.Writer) []SweepPoint {
	var out []SweepPoint
	for _, l := range opt.lGrid() {
		data := PrepareScenarioII(opt)
		data.Cfg.Window = l
		out = append(out, runSweepPoint(opt, data, func(d *ScenarioData) int { return l }))
	}
	if w != nil {
		printSweep(w, fmt.Sprintf("Table 5: input size L (Scenario-II, scale=%s)", opt.Scale), "L", out)
	}
	return out
}

// Table6Result is one transfer dataset's comparison.
type Table6Result struct {
	Dataset string
	Rows    []metrics.Evaluation
}

// Table6 regenerates the transferability comparison on the HDFS-, BGL-
// and Thunderbird-like log datasets: LogCluster vs DeepLog vs UCAD.
func Table6(opt Options, w io.Writer) []Table6Result {
	nTrain, nTest := 80, 40
	if opt.Scale == ScaleDemo {
		nTrain, nTest = 200, 100
	}
	if opt.Scale == ScalePaper {
		nTrain, nTest = 1000, 400
	}
	sets := []*workload.LogDataset{
		workload.HDFSLike(nTrain, nTest, nTest, opt.Seed),
		workload.BGLLike(nTrain, nTest, nTest, opt.Seed+1),
		workload.ThunderbirdLike(nTrain, nTest, nTest, opt.Seed+2),
	}
	var out []Table6Result
	for _, ds := range sets {
		// The real corpora have 28-380 templates where DeepLog's default
		// g=9 covers under a third of the vocabulary; on the simulators'
		// ~14-template vocabularies both rank cutoffs scale to the same
		// fraction to stay comparable.
		cutoff := ds.Vocab * 3 / 10
		if cutoff < 3 {
			cutoff = 3
		}
		cfg := logTaskConfig(opt)
		cfg.TopP = cutoff + 1
		ucad := opt.newDetector(cfg)
		dl := baselines.NewDeepLog(opt.Seed)
		dl.TopG = cutoff
		if opt.Scale == ScaleQuick {
			dl.Epochs, dl.MaxWindows = 3, 1500
		}
		detectors := []metrics.Detector{baselines.NewLogCluster(), dl, ucad}
		res := Table6Result{Dataset: ds.Name}
		for _, d := range detectors {
			d.Fit(ds.Train)
			ev := metrics.Evaluate(d,
				map[string][][]int{"normal": ds.TestNormal},
				map[string][][]int{"abnormal": ds.TestAbnormal})
			res.Rows = append(res.Rows, ev)
		}
		out = append(out, res)
		if w != nil {
			fmt.Fprintf(w, "Table 6 (%s, scale=%s)\n", ds.Name, opt.Scale)
			fmt.Fprintf(w, "%-12s %10s %10s %10s\n", "Method", "Precision", "Recall", "F1")
			for _, row := range res.Rows {
				fmt.Fprintf(w, "%-12s %10.5f %10.5f %10.5f\n", row.Method, row.Precision, row.Recall, row.F1)
			}
			fmt.Fprintln(w)
		}
	}
	return out
}

// logTaskConfig builds the Trans-DAS configuration used for the
// system-log transfer task (§6.6: L=10, g=0.5, h=64, scaled down on
// quick runs).
func logTaskConfig(opt Options) transdas.Config {
	c := opt.paramsI().cfg
	c.Window = 10
	c.Margin = 0.5
	c.TopP = 4
	c.MinContext = 2
	if opt.Scale == ScalePaper {
		c.Hidden, c.Heads = 64, 8
	}
	return c
}

// printEvalTable renders a Table 2/3 style block.
func printEvalTable(w io.Writer, title string, rows []metrics.Evaluation) {
	fmt.Fprintln(w, title)
	normSets, abSets := collectSets(rows)
	fmt.Fprintf(w, "%-24s", "Method")
	for _, s := range normSets {
		fmt.Fprintf(w, " FPR(%s)", s)
	}
	for _, s := range abSets {
		fmt.Fprintf(w, " FNR(%s)", s)
	}
	fmt.Fprintf(w, " %8s %8s %8s\n", "P", "R", "F1")
	for _, row := range rows {
		fmt.Fprintf(w, "%-24s", row.Method)
		for _, s := range normSets {
			fmt.Fprintf(w, " %7.5f", row.FPR[s])
		}
		for _, s := range abSets {
			fmt.Fprintf(w, " %7.5f", row.FNR[s])
		}
		fmt.Fprintf(w, " %8.5f %8.5f %8.5f\n", row.Precision, row.Recall, row.F1)
	}
	fmt.Fprintln(w)
}

func collectSets(rows []metrics.Evaluation) (norm, ab []string) {
	if len(rows) == 0 {
		return nil, nil
	}
	for s := range rows[0].FPR {
		norm = append(norm, s)
	}
	for s := range rows[0].FNR {
		ab = append(ab, s)
	}
	sort.Strings(norm)
	sort.Strings(ab)
	return norm, ab
}

func printSweep(w io.Writer, title, param string, points []SweepPoint) {
	fmt.Fprintln(w, title)
	fmt.Fprintf(w, "%-6s %14s %10s\n", param, "Time/epoch", "F1")
	for _, p := range points {
		fmt.Fprintf(w, "%-6d %14s %10.5f\n", p.Value, p.EpochTime.Round(time.Millisecond), p.F1)
	}
	fmt.Fprintln(w)
}
