// Package experiments regenerates every table and figure of the paper's
// evaluation (§6) on the synthetic workloads. Each experiment prints
// rows in the paper's layout and returns the structured results so
// benchmarks and tests can assert the qualitative shape (who wins, by
// roughly what factor, where crossovers fall).
package experiments

import (
	"github.com/ucad/ucad/internal/core"
	"github.com/ucad/ucad/internal/nn"
	"github.com/ucad/ucad/internal/transdas"
)

// Scale selects the experiment size. Absolute numbers change with
// scale; the comparative shape is stable.
type Scale int

const (
	// ScaleQuick fits in unit-test and benchmark budgets (seconds).
	ScaleQuick Scale = iota
	// ScaleDemo is the CLI default (minutes).
	ScaleDemo
	// ScalePaper reproduces Table 1's dataset sizes (hours on a laptop,
	// as in the paper's no-GPU setup).
	ScalePaper
)

// String implements fmt.Stringer.
func (s Scale) String() string {
	switch s {
	case ScaleQuick:
		return "quick"
	case ScaleDemo:
		return "demo"
	case ScalePaper:
		return "paper"
	default:
		return "unknown"
	}
}

// Options parameterizes an experiment run.
type Options struct {
	Scale Scale
	Seed  int64

	// ScorePrecision selects the inference kernel every UCAD detector
	// scores with (training is always float64); the zero value is the
	// float64 reference path. ScoreCacheSize, when positive, attaches a
	// similarity-row cache of that capacity to each fitted detector.
	// Both exist to rerun the evaluation over the serving fast path and
	// confirm the paper's numbers are precision- and cache-insensitive.
	ScorePrecision transdas.Precision
	ScoreCacheSize int
}

// DefaultOptions returns the demo scale.
func DefaultOptions() Options { return Options{Scale: ScaleDemo, Seed: 1} }

// newDetector builds a UCAD detector with the run's scoring options
// applied — the single construction funnel for every table and figure.
func (o Options) newDetector(cfg transdas.Config) *core.Detector {
	d := core.NewDetector(cfg)
	d.ScorePrecision = o.ScorePrecision
	d.ScoreCacheSize = o.ScoreCacheSize
	return d
}

// scenarioParams holds the per-scenario workload and model sizes for a
// scale.
type scenarioParams struct {
	sessions int
	avgLen   int     // 0 keeps the spec's Table 1 value
	richness float64 // Scenario-II template richness
	cfg      transdas.Config
}

// paramsI returns Scenario-I parameters for the scale.
func (o Options) paramsI() scenarioParams {
	cfg := transdas.DefaultConfig(2) // paper: L=30 p=5 g=.5 h=10 m=2 B=6
	cfg.Seed = o.Seed
	cfg.Dropout = 0
	cfg.MinContext = 3
	// Our synthetic Scenario-I has more task-start entropy than the
	// paper's trace; its interior-optimal p is 8 rather than 5 (the
	// Figure 7a sweep reproduces the interior peak).
	cfg.TopP = 8
	p := scenarioParams{sessions: 354, cfg: cfg}
	switch o.Scale {
	case ScaleQuick:
		p.sessions = 100
		p.cfg.Blocks = 2
		p.cfg.Epochs = 12
	case ScaleDemo:
		p.sessions = 200
		// Deeper stacks over-smooth at h=10 on our synthetic traces
		// (bag-averaging erodes the final-position query specificity the
		// top-p ranking needs); B=2 keeps demo-scale detection sharp.
		// See EXPERIMENTS.md for the measured depth ablation.
		p.cfg.Blocks = 2
		p.cfg.Epochs = 14
	case ScalePaper:
		p.cfg.Epochs = 30
	}
	return p
}

// paramsII returns Scenario-II parameters for the scale. The paper uses
// L=100, p=10, g=0.5, h=64, m=8, B=6 on 3722 sessions of average length
// 129; smaller scales shrink the sessions, template richness and model
// proportionally so the run stays CPU-tractable.
func (o Options) paramsII() scenarioParams {
	cfg := transdas.DefaultConfig(2)
	cfg.Seed = o.Seed
	cfg.Dropout = 0
	cfg.MinContext = 3
	cfg.Margin = 0.5
	switch o.Scale {
	case ScaleQuick:
		cfg.Hidden, cfg.Heads, cfg.Blocks = 16, 2, 2
		cfg.Window, cfg.TopP = 30, 10
		cfg.Epochs = 10
		return scenarioParams{sessions: 90, avgLen: 30, richness: 0.06, cfg: cfg}
	case ScaleDemo:
		cfg.Hidden, cfg.Heads, cfg.Blocks = 32, 4, 2
		cfg.Window, cfg.TopP = 60, 10
		cfg.Epochs = 10
		return scenarioParams{sessions: 160, avgLen: 60, richness: 0.12, cfg: cfg}
	default: // ScalePaper
		cfg.Hidden, cfg.Heads, cfg.Blocks = 64, 8, 6
		cfg.Window, cfg.TopP = 100, 10
		cfg.Epochs = 20
		return scenarioParams{sessions: 3722, avgLen: 0, richness: 1.0, cfg: cfg}
	}
}

// ablationVariant builds the Table 3 model variants from a full
// Trans-DAS configuration.
func ablationVariant(full transdas.Config, name string) transdas.Config {
	cfg := full
	switch name {
	case "Base Transformer":
		cfg.Positional = true
		cfg.Mask = nn.MaskFuture
		cfg.Objective = transdas.ObjectiveCEOnly
	case "Our embedding layer":
		cfg.Positional = false
		cfg.Mask = nn.MaskFuture
		cfg.Objective = transdas.ObjectiveCEOnly
	case "Our masking mechanism":
		cfg.Positional = true
		cfg.Mask = nn.MaskBidirectionalExceptSelf
		cfg.Objective = transdas.ObjectiveCEOnly
	case "Our training objective":
		cfg.Positional = true
		cfg.Mask = nn.MaskFuture
		cfg.Objective = transdas.ObjectiveTripletCE
	case "Trans-DAS":
		// the full model
	}
	return cfg
}

// ablationOrder is the Table 3 row order.
var ablationOrder = []string{
	"Base Transformer",
	"Our embedding layer",
	"Our masking mechanism",
	"Our training objective",
	"Trans-DAS",
}
