// Package session defines the data model UCAD operates on: individual
// data-access operations (SQL statements with execution context) grouped
// into user sessions, plus audit-log (de)serialization and
// sessionization.
package session

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"

	"github.com/ucad/ucad/internal/sqlnorm"
)

// Operation is one data-access operation as recorded in the database
// audit log (§2's trusted log).
type Operation struct {
	// Time is the statement execution timestamp.
	Time time.Time `json:"ts"`
	// User is the authenticated database account.
	User string `json:"user"`
	// Addr is the client network address.
	Addr string `json:"addr"`
	// SessionID groups operations of one database access; may be empty
	// for logs that only carry user/addr, in which case sessionization
	// falls back to idle-gap splitting.
	SessionID string `json:"session_id,omitempty"`
	// SQL is the raw statement text.
	SQL string `json:"sql"`
	// Key is the statement key assigned by the vocabulary; zero until
	// tokenized.
	Key int `json:"-"`
}

// Table returns the primary table the operation touches.
func (o Operation) Table() string { return sqlnorm.TableOf(sqlnorm.Abstract(o.SQL)) }

// Command returns the leading SQL command (SELECT, INSERT, …).
func (o Operation) Command() string { return sqlnorm.CommandOf(o.SQL) }

// Session is a sequence of operations executed by one user during one
// database access (the paper's detection granularity for reporting).
type Session struct {
	ID   string
	User string
	Addr string
	Ops  []Operation
}

// Keys returns the statement-key sequence of the session. It requires
// the operations to have been tokenized (Tokenize or TokenizeLearn).
func (s *Session) Keys() []int {
	keys := make([]int, len(s.Ops))
	for i, op := range s.Ops {
		keys[i] = op.Key
	}
	return keys
}

// Start returns the timestamp of the first operation (zero if empty).
func (s *Session) Start() time.Time {
	if len(s.Ops) == 0 {
		return time.Time{}
	}
	return s.Ops[0].Time
}

// Clone returns a deep copy of the session.
func (s *Session) Clone() *Session {
	c := &Session{ID: s.ID, User: s.User, Addr: s.Addr, Ops: append([]Operation(nil), s.Ops...)}
	return c
}

// TokenizeLearn assigns statement keys to every operation, growing the
// vocabulary for unseen templates (training stage).
func TokenizeLearn(v *sqlnorm.Vocabulary, sessions []*Session) {
	for _, s := range sessions {
		for i := range s.Ops {
			s.Ops[i].Key = v.Learn(s.Ops[i].SQL)
		}
	}
}

// Tokenize assigns statement keys using the fixed vocabulary; unseen
// templates get sqlnorm.PadKey (detection stage).
func Tokenize(v *sqlnorm.Vocabulary, sessions []*Session) {
	for _, s := range sessions {
		for i := range s.Ops {
			s.Ops[i].Key = v.Key(s.Ops[i].SQL)
		}
	}
}

// WriteLog serializes operations as JSON lines, the audit-log format the
// CLI tools exchange.
func WriteLog(w io.Writer, ops []Operation) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i := range ops {
		if err := enc.Encode(&ops[i]); err != nil {
			return fmt.Errorf("session: encode op %d: %w", i, err)
		}
	}
	return bw.Flush()
}

// ReadLog parses a JSON-lines audit log.
func ReadLog(r io.Reader) ([]Operation, error) {
	var ops []Operation
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var op Operation
		if err := json.Unmarshal(sc.Bytes(), &op); err != nil {
			return nil, fmt.Errorf("session: log line %d: %w", line, err)
		}
		ops = append(ops, op)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("session: read log: %w", err)
	}
	return ops, nil
}

// Sessionize groups operations into sessions. Operations carrying a
// SessionID are grouped by it; the rest are grouped per (user, addr) and
// split whenever consecutive operations are more than idleGap apart.
// Sessions are returned ordered by start time; operations within a
// session are ordered chronologically.
func Sessionize(ops []Operation, idleGap time.Duration) []*Session {
	sorted := append([]Operation(nil), ops...)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].Time.Before(sorted[j].Time) })

	byID := make(map[string]*Session)
	type flowKey struct{ user, addr string }
	open := make(map[flowKey]*Session)
	var out []*Session
	seq := 0

	newSession := func(op Operation, id string) *Session {
		seq++
		if id == "" {
			id = fmt.Sprintf("%s@%s#%d", op.User, op.Addr, seq)
		}
		s := &Session{ID: id, User: op.User, Addr: op.Addr}
		out = append(out, s)
		return s
	}

	for _, op := range sorted {
		if op.SessionID != "" {
			s := byID[op.SessionID]
			if s == nil {
				s = newSession(op, op.SessionID)
				byID[op.SessionID] = s
			}
			s.Ops = append(s.Ops, op)
			continue
		}
		k := flowKey{op.User, op.Addr}
		s := open[k]
		if s == nil || (len(s.Ops) > 0 && op.Time.Sub(s.Ops[len(s.Ops)-1].Time) > idleGap) {
			s = newSession(op, "")
			open[k] = s
		}
		s.Ops = append(s.Ops, op)
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Start().Before(out[j].Start()) })
	return out
}

// Flatten concatenates the operations of the sessions in order, e.g. to
// write a combined audit log.
func Flatten(sessions []*Session) []Operation {
	var ops []Operation
	for _, s := range sessions {
		ops = append(ops, s.Ops...)
	}
	return ops
}
