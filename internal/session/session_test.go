package session

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"github.com/ucad/ucad/internal/sqlnorm"
)

func ts(sec int) time.Time {
	return time.Date(2022, 6, 12, 10, 0, 0, 0, time.UTC).Add(time.Duration(sec) * time.Second)
}

func TestOperationAccessors(t *testing.T) {
	op := Operation{SQL: "delete from t_rm_mac where mac='aa'"}
	if got := op.Command(); got != "DELETE" {
		t.Fatalf("Command = %q", got)
	}
	if got := op.Table(); got != "t_rm_mac" {
		t.Fatalf("Table = %q", got)
	}
}

func TestSessionizeByID(t *testing.T) {
	ops := []Operation{
		{Time: ts(0), User: "u1", Addr: "a", SessionID: "s1", SQL: "SELECT 1"},
		{Time: ts(5), User: "u1", Addr: "a", SessionID: "s2", SQL: "SELECT 2"},
		{Time: ts(3), User: "u1", Addr: "a", SessionID: "s1", SQL: "SELECT 3"},
	}
	sessions := Sessionize(ops, time.Minute)
	if len(sessions) != 2 {
		t.Fatalf("got %d sessions, want 2", len(sessions))
	}
	if sessions[0].ID != "s1" || len(sessions[0].Ops) != 2 {
		t.Fatalf("s1 = %+v", sessions[0])
	}
	if !sessions[0].Ops[0].Time.Before(sessions[0].Ops[1].Time) {
		t.Fatal("ops must be chronological within a session")
	}
}

func TestSessionizeIdleGapSplitting(t *testing.T) {
	ops := []Operation{
		{Time: ts(0), User: "u1", Addr: "a", SQL: "SELECT 1"},
		{Time: ts(10), User: "u1", Addr: "a", SQL: "SELECT 2"},
		{Time: ts(200), User: "u1", Addr: "a", SQL: "SELECT 3"}, // > gap
		{Time: ts(5), User: "u2", Addr: "b", SQL: "SELECT 4"},   // other flow
	}
	sessions := Sessionize(ops, time.Minute)
	if len(sessions) != 3 {
		t.Fatalf("got %d sessions, want 3", len(sessions))
	}
	counts := map[string]int{}
	for _, s := range sessions {
		counts[s.User] += len(s.Ops)
	}
	if counts["u1"] != 3 || counts["u2"] != 1 {
		t.Fatalf("op counts %v", counts)
	}
}

func TestSessionizeOrdersByStart(t *testing.T) {
	ops := []Operation{
		{Time: ts(100), User: "late", Addr: "a", SessionID: "b", SQL: "SELECT 1"},
		{Time: ts(1), User: "early", Addr: "a", SessionID: "a", SQL: "SELECT 1"},
	}
	sessions := Sessionize(ops, time.Minute)
	if sessions[0].User != "early" {
		t.Fatal("sessions must be ordered by start time")
	}
}

func TestTokenizeLearnAndDetect(t *testing.T) {
	v := sqlnorm.NewVocabulary()
	train := []*Session{{Ops: []Operation{
		{SQL: "SELECT * FROM a WHERE x=1"},
		{SQL: "SELECT * FROM a WHERE x=2"},
		{SQL: "DELETE FROM a WHERE x=3"},
	}}}
	TokenizeLearn(v, train)
	keys := train[0].Keys()
	if keys[0] != keys[1] || keys[0] == keys[2] {
		t.Fatalf("keys = %v", keys)
	}
	test := []*Session{{Ops: []Operation{
		{SQL: "SELECT * FROM a WHERE x=99"},
		{SQL: "DROP TABLE a"},
	}}}
	Tokenize(v, test)
	got := test[0].Keys()
	if got[0] != keys[0] {
		t.Fatalf("known template key = %d, want %d", got[0], keys[0])
	}
	if got[1] != sqlnorm.PadKey {
		t.Fatalf("unknown template key = %d, want PadKey", got[1])
	}
}

func TestLogRoundtrip(t *testing.T) {
	ops := []Operation{
		{Time: ts(0), User: "u1", Addr: "10.0.0.1", SessionID: "s1", SQL: "SELECT * FROM t WHERE a='x'"},
		{Time: ts(1), User: "u2", Addr: "10.0.0.2", SQL: "INSERT INTO t VALUES (1)"},
	}
	var buf bytes.Buffer
	if err := WriteLog(&buf, ops); err != nil {
		t.Fatal(err)
	}
	got, err := ReadLog(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].SQL != ops[0].SQL || !got[0].Time.Equal(ops[0].Time) {
		t.Fatalf("roundtrip mismatch: %+v", got)
	}
	if got[1].SessionID != "" {
		t.Fatal("empty session id must stay empty")
	}
}

func TestReadLogSkipsBlankAndRejectsGarbage(t *testing.T) {
	ops, err := ReadLog(strings.NewReader("\n{\"user\":\"u\",\"addr\":\"a\",\"sql\":\"SELECT 1\",\"ts\":\"2022-01-01T00:00:00Z\"}\n\n"))
	if err != nil || len(ops) != 1 {
		t.Fatalf("ops=%v err=%v", ops, err)
	}
	if _, err := ReadLog(strings.NewReader("{bad json")); err == nil {
		t.Fatal("expected parse error")
	}
}

func TestCloneIsDeep(t *testing.T) {
	s := &Session{ID: "x", Ops: []Operation{{SQL: "SELECT 1"}}}
	c := s.Clone()
	c.Ops[0].SQL = "changed"
	if s.Ops[0].SQL != "SELECT 1" {
		t.Fatal("Clone must not alias Ops")
	}
}

func TestFlatten(t *testing.T) {
	ss := []*Session{
		{Ops: []Operation{{SQL: "a"}, {SQL: "b"}}},
		{Ops: []Operation{{SQL: "c"}}},
	}
	ops := Flatten(ss)
	if len(ops) != 3 || ops[2].SQL != "c" {
		t.Fatalf("Flatten = %+v", ops)
	}
}

func TestStartEmptySession(t *testing.T) {
	var s Session
	if !s.Start().IsZero() {
		t.Fatal("empty session start must be zero time")
	}
}
