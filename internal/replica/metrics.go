package replica

import (
	"sync/atomic"
	"time"

	"github.com/ucad/ucad/internal/obs"
)

// Metrics is the replication instrumentation surface. One instance
// serves both roles — a primary only moves the shipper families, a
// standby only the follower ones — so a process that is shipper on one
// port and follower of another primary (chained standbys) shares a
// registry without collisions.
type Metrics struct {
	Registry *obs.Registry

	// Shipper side.
	shippedBytes *obs.CounterVec // by tenant
	shippedFiles *obs.CounterVec
	listRequests *obs.Counter
	shipErrors   *obs.Counter

	// Follower side.
	fetchedBytes   *obs.CounterVec
	fetchedFiles   *obs.CounterVec
	verifyFailures *obs.CounterVec
	appliedRecords *obs.CounterVec
	rebuilds       *obs.CounterVec
	syncRounds     *obs.Counter
	syncErrors     *obs.Counter

	// lastSync is the unix-nano wall time of the last fully successful
	// sync round; the lag gauge derives from it so it keeps rising while
	// the primary is unreachable.
	lastSync atomic.Int64
	clock    func() time.Time
}

// NewMetrics registers the replication families on reg (a fresh
// registry when nil) and returns the handle the Shipper and Follower
// share.
func NewMetrics(reg *obs.Registry) *Metrics {
	if reg == nil {
		reg = obs.NewRegistry()
	}
	m := &Metrics{Registry: reg, clock: time.Now}
	m.shippedBytes = reg.CounterVec("ucad_replica_shipped_bytes_total",
		"Bytes of replicable files served to followers.", "tenant")
	m.shippedFiles = reg.CounterVec("ucad_replica_shipped_files_total",
		"Replicable files served to followers.", "tenant")
	m.listRequests = reg.Counter("ucad_replica_list_requests_total",
		"Tenant and file listing requests served to followers.")
	m.shipErrors = reg.Counter("ucad_replica_ship_errors_total",
		"Replication requests refused (bad path, unknown tenant, active segment).")
	m.fetchedBytes = reg.CounterVec("ucad_replica_fetched_bytes_total",
		"Bytes of shipped files fetched from the primary.", "tenant")
	m.fetchedFiles = reg.CounterVec("ucad_replica_fetched_files_total",
		"Shipped files fetched from the primary.", "tenant")
	m.verifyFailures = reg.CounterVec("ucad_replica_verify_failures_total",
		"Shipped files that failed CRC/framing verification and were discarded.", "tenant")
	m.appliedRecords = reg.CounterVec("ucad_replica_applied_records_total",
		"Shipped WAL records replayed into the warm standby.", "tenant")
	m.rebuilds = reg.CounterVec("ucad_replica_rebuilds_total",
		"Full standby rebuilds (replication gap or shard-layout change).", "tenant")
	m.syncRounds = reg.Counter("ucad_replica_sync_rounds_total",
		"Completed follower sync rounds.")
	m.syncErrors = reg.Counter("ucad_replica_sync_errors_total",
		"Follower sync rounds that ended in an error.")
	reg.GaugeFunc("ucad_replica_lag_seconds",
		"Seconds since the follower last completed a successful sync round.",
		func() float64 {
			ns := m.lastSync.Load()
			if ns == 0 {
				return 0
			}
			return m.clock().Sub(time.Unix(0, ns)).Seconds()
		})
	return m
}

// markSynced stamps a fully successful sync round.
func (m *Metrics) markSynced(now time.Time) { m.lastSync.Store(now.UnixNano()) }

// Lag returns the current replication lag (time since the last fully
// successful sync round), or 0 if no round has completed yet.
func (m *Metrics) Lag(now time.Time) time.Duration {
	ns := m.lastSync.Load()
	if ns == 0 {
		return 0
	}
	return now.Sub(time.Unix(0, ns))
}
