// Package replica implements warm-standby replication for the serving
// layer: a primary-side Shipper that exports each tenant's durable
// state over HTTP — sealed WAL segments, snapshots, the layout
// manifest, model checkpoints, the tenant spec — and a standby-side
// Follower that pulls continuously, verifies the CRC32C record framing
// of everything it receives, persists an identical on-disk layout, and
// replays the shipped history into live but non-serving serve.Services
// (sessions warm, model current, caches optionally pre-warmed).
//
// The correctness contract is ship-sealed-only: the active WAL segment
// — the only file the primary ever mutates in place — never ships, so
// every shipped byte is immutable and the standby's state is always
// "newest valid snapshot + idempotent sealed-segment replay", exactly
// what a restart of the primary itself would rebuild. The tail the
// standby is missing at failover (events acknowledged into the
// primary's active segment) is recovered by the feeder redelivering
// from its failover checkpoint: deterministic re-sessionization
// reproduces the same (epoch, seq) dedupe coordinates, the promoted
// standby absorbs the overlap as duplicates, and the missing tail
// appends fresh — exactly-once sessions across the switch.
package replica

import (
	"path"
	"strings"
)

// Shipped-path grammar. A tenant's replicable files are addressed by
// forward-slash relative paths within its data directory:
//
//	tenant.json
//	wal/<name>
//	checkpoints/<name>
//
// with <name> a clean base name (no separators, no leading dot). The
// shipper refuses anything else, so a crafted path can never escape the
// tenant directory.

// specFile is the tenant spec's file name within a tenant directory
// (mirrors internal/tenant).
const specFile = "tenant.json"

// walSubdir and ckptSubdir are the shipped subdirectories.
const (
	walSubdir  = "wal"
	ckptSubdir = "checkpoints"
)

// validRelPath reports whether p is a well-formed shipped path.
func validRelPath(p string) bool {
	if p == specFile {
		return true
	}
	dir, base, found := strings.Cut(p, "/")
	if !found || (dir != walSubdir && dir != ckptSubdir) {
		return false
	}
	return validBaseName(base)
}

// validBaseName accepts clean single-component file names.
func validBaseName(name string) bool {
	if name == "" || name == "." || name == ".." ||
		strings.HasPrefix(name, ".") || path.Base(name) != name ||
		strings.ContainsAny(name, `/\`) {
		return false
	}
	return true
}

// validTenantID mirrors the tenant registry's conservative id charset;
// the shipper and follower both refuse anything that could be a path
// component trick.
func validTenantID(id string) bool {
	if id == "" || len(id) > 128 {
		return false
	}
	for _, r := range id {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '-', r == '_', r == '.':
		default:
			return false
		}
	}
	return !strings.HasPrefix(id, ".")
}

// FileInfo is one replicable file in a tenant's directory.
type FileInfo struct {
	// Path is the file's relative path (see the grammar above).
	Path string `json:"path"`
	Size int64  `json:"size"`
	// Mutable marks files whose bytes may change in place (manifests,
	// the tenant spec): the follower re-fetches them every round.
	Mutable bool `json:"mutable,omitempty"`
}

// tenantsReply is the shipper's tenant-listing payload.
type tenantsReply struct {
	Tenants []string `json:"tenants"`
}

// filesReply is the shipper's per-tenant file-listing payload.
type filesReply struct {
	Files []FileInfo `json:"files"`
}
