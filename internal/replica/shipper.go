package replica

import (
	"encoding/json"
	"errors"
	"io"
	"io/fs"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"github.com/ucad/ucad/internal/wal"
)

// Shipper is the primary-side replication endpoint. It reads straight
// from the tenants root on disk — no coupling to the serving layer —
// because everything a standby needs is, by the ship-sealed-only
// invariant, already durable and immutable there: sealed WAL segments,
// snapshots, the stream manifest, model checkpoints, and the tenant
// spec. The active segment of every stream is recomputed per request
// and never served.
//
// Endpoints (mount under /v1/replica/):
//
//	GET {prefix}/tenants            -> {"tenants":[...]}
//	GET {prefix}/files?tenant=ID    -> {"files":[{path,size,mutable}]}
//	GET {prefix}/file?tenant=ID&path=REL -> raw bytes
type Shipper struct {
	// Root is the tenants root (<data-dir>/tenants): one subdirectory
	// per tenant, each holding tenant.json, wal/, checkpoints/.
	Root string
	// Flat maps tenant ids to directories living outside Root. The
	// legacy single-tenant flat layout keeps the default tenant's
	// tenant.json/wal/checkpoints at the data-dir root rather than
	// under tenants/<id>/; the internal structure is identical, so an
	// alias is all it takes to replicate it. Flat entries shadow Root
	// subdirectories of the same id.
	Flat map[string]string
	// Metrics is optional.
	Metrics *Metrics
}

// Handler returns the shipper's mux. Paths are rooted at prefix
// (default "/v1/replica").
func (sh *Shipper) Handler(prefix string) http.Handler {
	if prefix == "" {
		prefix = "/v1/replica"
	}
	prefix = strings.TrimSuffix(prefix, "/")
	mux := http.NewServeMux()
	mux.HandleFunc(prefix+"/tenants", sh.handleTenants)
	mux.HandleFunc(prefix+"/files", sh.handleFiles)
	mux.HandleFunc(prefix+"/file", sh.handleFile)
	return mux
}

func (sh *Shipper) refuse(w http.ResponseWriter, msg string, code int) {
	if sh.Metrics != nil {
		sh.Metrics.shipErrors.Inc()
	}
	http.Error(w, msg, code)
}

// handleTenants lists the tenant ids with a persisted spec.
func (sh *Shipper) handleTenants(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		sh.refuse(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	ents, err := os.ReadDir(sh.Root)
	if err != nil && !errors.Is(err, fs.ErrNotExist) {
		sh.refuse(w, err.Error(), http.StatusInternalServerError)
		return
	}
	ids := []string{}
	for _, e := range ents {
		if !e.IsDir() || !validTenantID(e.Name()) {
			continue
		}
		if _, ok := sh.Flat[e.Name()]; ok {
			continue // shadowed by the alias, listed below
		}
		if _, err := os.Stat(filepath.Join(sh.Root, e.Name(), specFile)); err == nil {
			ids = append(ids, e.Name())
		}
	}
	for id, dir := range sh.Flat {
		if !validTenantID(id) {
			continue
		}
		if _, err := os.Stat(filepath.Join(dir, specFile)); err == nil {
			ids = append(ids, id)
		}
	}
	sort.Strings(ids)
	if sh.Metrics != nil {
		sh.Metrics.listRequests.Inc()
	}
	writeJSON(w, tenantsReply{Tenants: ids})
}

// tenantDir validates the id and resolves its directory, or writes an
// error and returns "".
func (sh *Shipper) tenantDir(w http.ResponseWriter, r *http.Request) string {
	id := r.URL.Query().Get("tenant")
	if !validTenantID(id) {
		sh.refuse(w, "bad tenant id", http.StatusBadRequest)
		return ""
	}
	dir, ok := sh.Flat[id]
	if !ok {
		dir = filepath.Join(sh.Root, id)
	}
	if _, err := os.Stat(filepath.Join(dir, specFile)); err != nil {
		sh.refuse(w, "unknown tenant", http.StatusNotFound)
		return ""
	}
	return dir
}

// handleFiles lists one tenant's replicable files: the spec, every
// sealed WAL stream file (wal.SealedStreamFiles — snapshots, sealed
// segments, the manifest, the remap staging file), and the checkpoint
// directory (immutable ckpt-* payloads plus its mutable MANIFEST).
func (sh *Shipper) handleFiles(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		sh.refuse(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	dir := sh.tenantDir(w, r)
	if dir == "" {
		return
	}
	var files []FileInfo
	if fi, err := os.Stat(filepath.Join(dir, specFile)); err == nil {
		files = append(files, FileInfo{Path: specFile, Size: fi.Size(), Mutable: true})
	}
	sealed, err := wal.SealedStreamFiles(filepath.Join(dir, walSubdir))
	if err != nil && !errors.Is(err, fs.ErrNotExist) {
		sh.refuse(w, err.Error(), http.StatusInternalServerError)
		return
	}
	for _, f := range sealed {
		files = append(files, FileInfo{Path: walSubdir + "/" + f.Name, Size: f.Size, Mutable: f.Mutable})
	}
	ents, err := os.ReadDir(filepath.Join(dir, ckptSubdir))
	if err != nil && !errors.Is(err, fs.ErrNotExist) {
		sh.refuse(w, err.Error(), http.StatusInternalServerError)
		return
	}
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !validBaseName(name) || strings.HasSuffix(name, ".tmp") {
			continue
		}
		fi, err := e.Info()
		if err != nil {
			continue
		}
		// Checkpoint payloads are written once and only ever deleted;
		// the checkpoint MANIFEST flips atomically but changes content.
		files = append(files, FileInfo{
			Path:    ckptSubdir + "/" + name,
			Size:    fi.Size(),
			Mutable: name == "MANIFEST",
		})
	}
	if sh.Metrics != nil {
		sh.Metrics.listRequests.Inc()
	}
	writeJSON(w, filesReply{Files: files})
}

// handleFile streams one replicable file. The path grammar is enforced
// and WAL segments are re-checked against the current active set, so a
// follower (or anyone else) can never read the mutable segment tail or
// escape the tenant directory.
func (sh *Shipper) handleFile(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		sh.refuse(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	dir := sh.tenantDir(w, r)
	if dir == "" {
		return
	}
	rel := r.URL.Query().Get("path")
	if !validRelPath(rel) {
		sh.refuse(w, "bad path", http.StatusBadRequest)
		return
	}
	base := filepath.Base(rel)
	if strings.HasPrefix(rel, walSubdir+"/") {
		if prefix, seq, ok := wal.SplitSegmentName(base); ok {
			active, err := activeSegment(filepath.Join(dir, walSubdir), prefix)
			if err != nil {
				sh.refuse(w, err.Error(), http.StatusInternalServerError)
				return
			}
			if seq >= active {
				sh.refuse(w, "segment is active", http.StatusConflict)
				return
			}
		}
	}
	f, err := os.Open(filepath.Join(dir, filepath.FromSlash(rel)))
	if err != nil {
		sh.refuse(w, "not found", http.StatusNotFound)
		return
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		sh.refuse(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", strconv.FormatInt(fi.Size(), 10))
	n, _ := io.Copy(w, f)
	if sh.Metrics != nil {
		id := r.URL.Query().Get("tenant")
		sh.Metrics.shippedFiles.With(id).Inc()
		sh.Metrics.shippedBytes.With(id).Add(n)
	}
}

// activeSegment returns the highest segment seq of prefix's stream (the
// one still being appended to), or 0 when the stream has no segments.
func activeSegment(walDir, prefix string) (uint64, error) {
	seqs, err := wal.ListSegmentSeqs(walDir, prefix)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return 0, nil
		}
		return 0, err
	}
	if len(seqs) == 0 {
		return 0, nil
	}
	return seqs[len(seqs)-1], nil
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}
