package replica

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"

	"github.com/ucad/ucad/internal/core"
	"github.com/ucad/ucad/internal/serve"
	"github.com/ucad/ucad/internal/wal"
)

// Target is one tenant's warm standby: the surface the replayer drives.
// serve.Service implements it through ServiceTarget; tests substitute
// recorders.
type Target interface {
	// Reset drops all session state ahead of a full rebuild (id
	// counters survive so promoted ids never move backwards).
	Reset() error
	// RestoreSnapshot applies one shipped snapshot payload.
	RestoreSnapshot(payload []byte) error
	// ApplyRecord replays one shipped WAL record.
	ApplyRecord(payload []byte) error
	// SwapModel hot-replaces the scoring model (a newer shipped
	// checkpoint became current).
	SwapModel(u *core.UCAD) error
	// WarmScoreCache pre-computes similarity rows for the open
	// sessions' scoring windows; returns rows actually computed.
	WarmScoreCache(limit int) int
}

// ServiceTarget adapts a replica-mode serve.Service to Target.
type ServiceTarget struct{ Svc *serve.Service }

func (t ServiceTarget) Reset() error                          { return t.Svc.ReplicaReset() }
func (t ServiceTarget) RestoreSnapshot(payload []byte) error  { return t.Svc.ReplicaRestoreSnapshot(payload) }
func (t ServiceTarget) ApplyRecord(payload []byte) error      { return t.Svc.ReplicaApplyRecord(payload) }
func (t ServiceTarget) SwapModel(u *core.UCAD) error          { return t.Svc.SwapModel(u) }
func (t ServiceTarget) WarmScoreCache(limit int) int          { return t.Svc.WarmScoreCache(limit) }

// Replayer incrementally folds one tenant's synced directory into its
// Target. Each Apply round replays exactly the sealed segments that
// arrived since the last round, in per-stream seq order; because every
// client's records live in a single stream and application is
// idempotent, per-client order — the only order session assembly
// depends on — is preserved even though streams replay independently.
//
// Two conditions force a full rebuild (Reset, then newest snapshot +
// replay, i.e. a restart recovery against the shipped files): a seq gap
// in a stream (the primary pruned a segment before we fetched it — we
// fell behind by more than the primary's retention), and a shard-layout
// change in the manifest.
type Replayer struct {
	dir    string // tenant directory (holds wal/, checkpoints/)
	target Target
	warm   bool

	booted  bool
	shards  int
	next    []uint64 // per-stream next segment seq to replay
	ckpt    string   // checkpoint file name last swapped in
	applied int64
}

// Applied summarizes one Apply round.
type Applied struct {
	Records int
	Rebuilt bool
	Swapped bool // a newer model checkpoint was installed
	Warmed  int
}

// NewReplayer returns a replayer over a synced tenant directory. warm
// pre-populates the target's score cache after rounds that changed
// state.
func NewReplayer(dir string, target Target, warm bool) *Replayer {
	return &Replayer{dir: dir, target: target, warm: warm}
}

// AppliedRecords reports the lifetime count of replayed WAL records.
func (rp *Replayer) AppliedRecords() int64 { return rp.applied }

// Apply folds everything new in the synced directory into the target.
// Safe to call repeatedly; an error leaves the replayer consistent
// (replay is idempotent) and the next round retries.
func (rp *Replayer) Apply() (Applied, error) {
	var out Applied
	walDir := filepath.Join(rp.dir, walSubdir)
	man, ok, err := wal.LoadManifest(walDir)
	if err != nil {
		return out, err
	}
	if !ok {
		// Nothing shipped yet (or a legacy layout we don't replicate).
		return out, nil
	}
	if man.Remap {
		// The primary is mid shard-migration; its stream set is being
		// rewritten underneath the listing. Skip this round — the next
		// manifest flip lands a stable layout and triggers a rebuild.
		return out, nil
	}
	if err := rp.swapCheckpoint(&out); err != nil {
		return out, err
	}
	if !rp.booted || man.Shards != rp.shards {
		if err := rp.rebuild(man.Shards, &out); err != nil {
			return out, err
		}
	} else if err := rp.catchUp(&out); err != nil {
		return out, err
	}
	if rp.warm && (out.Records > 0 || out.Rebuilt || out.Swapped) {
		out.Warmed = rp.target.WarmScoreCache(0)
	}
	return out, nil
}

// swapCheckpoint installs the newest shipped model checkpoint when it
// differs from the one the target is scoring with.
func (rp *Replayer) swapCheckpoint(out *Applied) error {
	ck, err := wal.OpenCheckpoints(filepath.Join(rp.dir, ckptSubdir), 0)
	if err != nil {
		return err
	}
	cur := ck.Current()
	if cur == "" || filepath.Base(cur) == rp.ckpt {
		return nil
	}
	f, err := os.Open(cur)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			// Manifest ahead of the payload fetch; next round.
			return nil
		}
		return err
	}
	u, err := core.Load(f)
	f.Close()
	if err != nil {
		return fmt.Errorf("replica: shipped checkpoint %s: %w", filepath.Base(cur), err)
	}
	if err := rp.target.SwapModel(u); err != nil {
		return err
	}
	rp.ckpt = filepath.Base(cur)
	out.Swapped = true
	return nil
}

// rebuild drops the target and re-restores from the shipped files.
func (rp *Replayer) rebuild(shards int, out *Applied) error {
	if rp.booted {
		if err := rp.target.Reset(); err != nil {
			return err
		}
	}
	walDir := filepath.Join(rp.dir, walSubdir)
	next := make([]uint64, shards)
	for i := 0; i < shards; i++ {
		// List before restoring: a segment shipping in between is then
		// merely re-replayed next round (idempotent), never skipped.
		seqs, err := wal.ListSegmentSeqs(walDir, wal.ShardSegmentPrefix(i))
		if err != nil && !errors.Is(err, fs.ErrNotExist) {
			return err
		}
		st, err := wal.RestoreStream(walDir, wal.ShardSegmentPrefix(i), wal.ShardSnapshotPrefix(i),
			rp.target.RestoreSnapshot, func(payload []byte) error {
				out.Records++
				rp.applied++
				return rp.target.ApplyRecord(payload)
			})
		if err != nil {
			return err
		}
		// Resume after the highest sealed segment shipped; when only a
		// snapshot shipped so far, the segments >= its anchor are still
		// active upstream and replay once they seal and arrive.
		switch {
		case len(seqs) > 0:
			next[i] = seqs[len(seqs)-1] + 1
		case st.SnapshotSeq > 0:
			next[i] = st.SnapshotSeq
		default:
			next[i] = 1
		}
	}
	rp.booted, rp.shards, rp.next = true, shards, next
	out.Rebuilt = true
	return nil
}

// catchUp replays segments that sealed (and shipped) since last round.
func (rp *Replayer) catchUp(out *Applied) error {
	walDir := filepath.Join(rp.dir, walSubdir)
	for i := 0; i < rp.shards; i++ {
		prefix := wal.ShardSegmentPrefix(i)
		seqs, err := wal.ListSegmentSeqs(walDir, prefix)
		if err != nil && !errors.Is(err, fs.ErrNotExist) {
			return err
		}
		for _, seq := range seqs {
			if seq < rp.next[i] {
				continue
			}
			if seq > rp.next[i] {
				// The segment we need next is gone: the primary pruned
				// past our position. Start over from the newest
				// snapshot.
				return rp.rebuild(rp.shards, out)
			}
			path := filepath.Join(walDir, wal.SegmentFileName(prefix, seq))
			n, err := wal.ReplaySegmentFile(path, rp.target.ApplyRecord)
			if err != nil {
				return err
			}
			out.Records += n
			rp.applied += int64(n)
			rp.next[i] = seq + 1
		}
	}
	return nil
}
