package replica

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"path"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"github.com/ucad/ucad/internal/wal"
)

// FollowerConfig wires a standby's pull loop.
type FollowerConfig struct {
	// PrimaryURL is the primary's base URL (the shipper mounts under
	// {PrimaryURL}/v1/replica/).
	PrimaryURL string
	// Root is the standby's data directory; tenants sync into
	// <Root>/tenants/<id>/ — the exact layout a promoted standby then
	// serves from.
	Root string
	// Interval is the poll cadence (default 2s).
	Interval time.Duration
	// OpenTarget builds the warm standby for a tenant the first time
	// its files land, from its synced directory (the shipped checkpoint
	// provides the model, the WAL manifest the shard count). Returning
	// an error defers the tenant to the next round.
	OpenTarget func(id, dir string) (Target, error)
	// WarmScoreCache pre-warms each target's score cache after replay
	// rounds that changed state.
	WarmScoreCache bool
	// AutoPromoteAfter invokes OnPrimaryDown once the primary has been
	// continuously unreachable for this long (0 disables the probe).
	AutoPromoteAfter time.Duration
	// OnPrimaryDown fires at most once, from the sync loop.
	OnPrimaryDown func()
	// Client is the HTTP client (default http.DefaultClient with a 30s
	// timeout clone).
	Client *http.Client
	// Metrics is optional.
	Metrics *Metrics
	// Clock overrides time.Now (tests).
	Clock func() time.Time
}

// TenantStatus is one tenant's replication position.
type TenantStatus struct {
	ID             string `json:"id"`
	AppliedRecords int64  `json:"applied_records"`
	Rebuilds       int64  `json:"rebuilds"`
}

// Status is the follower's observable state (the standby's
// /v1/replication admin payload).
type Status struct {
	PrimaryURL     string         `json:"primary_url"`
	PrimaryHealthy bool           `json:"primary_healthy"`
	LastSync       time.Time      `json:"last_sync"`
	LagSeconds     float64        `json:"lag_seconds"`
	Rounds         int64          `json:"rounds"`
	Errors         int64          `json:"errors"`
	Tenants        []TenantStatus `json:"tenants,omitempty"`
}

// Follower pulls a primary's replicable files into Root and replays
// them into per-tenant Targets. Run drives the loop; SyncOnce is one
// round (exported so promotion can drain the last shipped files and
// tests can step deterministically).
type Follower struct {
	cfg FollowerConfig

	mu        sync.Mutex
	tenants   map[string]*tenantSync
	lastSync  time.Time
	downSince time.Time
	healthy   bool
	rounds    int64
	errs      int64
	autoFired bool
	running   bool

	stop chan struct{}
	done chan struct{}
}

type tenantSync struct {
	dir      string
	target   Target
	replayer *Replayer
	rebuilds int64
}

// NewFollower validates the config and returns a stopped follower.
func NewFollower(cfg FollowerConfig) (*Follower, error) {
	if cfg.PrimaryURL == "" {
		return nil, errors.New("replica: follower needs a primary URL")
	}
	if _, err := url.Parse(cfg.PrimaryURL); err != nil {
		return nil, fmt.Errorf("replica: bad primary URL: %w", err)
	}
	if cfg.Root == "" {
		return nil, errors.New("replica: follower needs a data root")
	}
	if cfg.OpenTarget == nil {
		return nil, errors.New("replica: follower needs an OpenTarget")
	}
	if cfg.Interval <= 0 {
		cfg.Interval = 2 * time.Second
	}
	if cfg.Client == nil {
		cfg.Client = &http.Client{Timeout: 30 * time.Second}
	}
	if cfg.Clock == nil {
		cfg.Clock = time.Now
	}
	if cfg.Metrics != nil {
		cfg.Metrics.clock = cfg.Clock
	}
	return &Follower{
		cfg:     cfg,
		tenants: make(map[string]*tenantSync),
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
	}, nil
}

// Run polls until Stop or ctx cancellation. Sync errors are absorbed
// (counted, surfaced via Status) — a dead primary is the expected
// condition this subsystem exists for.
func (f *Follower) Run(ctx context.Context) {
	f.mu.Lock()
	f.running = true
	f.mu.Unlock()
	defer close(f.done)
	t := time.NewTicker(f.cfg.Interval)
	defer t.Stop()
	f.SyncOnce(ctx)
	for {
		select {
		case <-ctx.Done():
			return
		case <-f.stop:
			return
		case <-t.C:
			f.SyncOnce(ctx)
		}
	}
}

// Stop halts Run and waits for it to exit (a no-op wait when Run was
// never started — SyncOnce-driven tests and promotion drains).
func (f *Follower) Stop() {
	select {
	case <-f.stop:
	default:
		close(f.stop)
	}
	f.mu.Lock()
	started := f.running
	f.mu.Unlock()
	if started {
		<-f.done
	}
}

// Status reports the follower's position.
func (f *Follower) Status() Status {
	f.mu.Lock()
	defer f.mu.Unlock()
	st := Status{
		PrimaryURL:     f.cfg.PrimaryURL,
		PrimaryHealthy: f.healthy,
		LastSync:       f.lastSync,
		Rounds:         f.rounds,
		Errors:         f.errs,
	}
	if !f.lastSync.IsZero() {
		st.LagSeconds = f.cfg.Clock().Sub(f.lastSync).Seconds()
	}
	for id, ts := range f.tenants {
		rec := int64(0)
		if ts.replayer != nil {
			rec = ts.replayer.AppliedRecords()
		}
		st.Tenants = append(st.Tenants, TenantStatus{ID: id, AppliedRecords: rec, Rebuilds: ts.rebuilds})
	}
	sort.Slice(st.Tenants, func(i, j int) bool { return st.Tenants[i].ID < st.Tenants[j].ID })
	return st
}

// Targets snapshots the per-tenant targets built so far (promotion
// iterates them).
func (f *Follower) Targets() map[string]Target {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make(map[string]Target, len(f.tenants))
	for id, ts := range f.tenants {
		if ts.target != nil {
			out[id] = ts.target
		}
	}
	return out
}

// SyncOnce runs one full round: list tenants, sync each tenant's files,
// replay. Returns the first error (the round may have partially
// progressed — every step is idempotent).
func (f *Follower) SyncOnce(ctx context.Context) error {
	err := f.syncOnce(ctx)
	now := f.cfg.Clock()
	f.mu.Lock()
	f.rounds++
	if err != nil {
		f.errs++
		if f.healthy || f.downSince.IsZero() {
			f.downSince = now
		}
		f.healthy = false
		fire := f.cfg.AutoPromoteAfter > 0 && !f.autoFired &&
			now.Sub(f.downSince) >= f.cfg.AutoPromoteAfter && f.cfg.OnPrimaryDown != nil
		if fire {
			f.autoFired = true
		}
		f.mu.Unlock()
		if f.cfg.Metrics != nil {
			f.cfg.Metrics.syncErrors.Inc()
		}
		if fire {
			f.cfg.OnPrimaryDown()
		}
		return err
	}
	f.healthy = true
	f.downSince = time.Time{}
	f.lastSync = now
	f.mu.Unlock()
	if f.cfg.Metrics != nil {
		f.cfg.Metrics.syncRounds.Inc()
		f.cfg.Metrics.markSynced(now)
	}
	return nil
}

func (f *Follower) syncOnce(ctx context.Context) error {
	var tl tenantsReply
	if err := f.getJSON(ctx, "/v1/replica/tenants", &tl); err != nil {
		return err
	}
	var firstErr error
	for _, id := range tl.Tenants {
		if !validTenantID(id) {
			continue
		}
		if err := f.syncTenant(ctx, id); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("tenant %s: %w", id, err)
		}
	}
	return firstErr
}

// syncTenant mirrors one tenant's files and replays what changed.
func (f *Follower) syncTenant(ctx context.Context, id string) error {
	dir := filepath.Join(f.cfg.Root, "tenants", id)
	for _, sub := range []string{walSubdir, ckptSubdir} {
		if err := os.MkdirAll(filepath.Join(dir, sub), 0o755); err != nil {
			return err
		}
	}
	var fl filesReply
	if err := f.getJSON(ctx, "/v1/replica/files?tenant="+url.QueryEscape(id), &fl); err != nil {
		return err
	}
	listed := make(map[string]bool, len(fl.Files))
	for _, info := range fl.Files {
		if !validRelPath(info.Path) {
			return fmt.Errorf("replica: primary listed invalid path %q", info.Path)
		}
		listed[info.Path] = true
		local := filepath.Join(dir, filepath.FromSlash(info.Path))
		if !info.Mutable {
			if fi, err := os.Stat(local); err == nil && fi.Size() == info.Size {
				continue // immutable and already here: done forever
			}
		}
		if err := f.fetch(ctx, id, info, local); err != nil {
			return err
		}
	}
	f.deleteUnlisted(dir, listed)

	f.mu.Lock()
	ts := f.tenants[id]
	f.mu.Unlock()
	if ts == nil {
		target, err := f.cfg.OpenTarget(id, dir)
		if err != nil {
			return err
		}
		ts = &tenantSync{dir: dir, target: target, replayer: NewReplayer(dir, target, f.cfg.WarmScoreCache)}
		f.mu.Lock()
		f.tenants[id] = ts
		f.mu.Unlock()
	}
	ap, err := ts.replayer.Apply()
	if err != nil {
		return err
	}
	f.mu.Lock()
	if ap.Rebuilt {
		ts.rebuilds++
	}
	f.mu.Unlock()
	if f.cfg.Metrics != nil {
		if ap.Records > 0 {
			f.cfg.Metrics.appliedRecords.With(id).Add(int64(ap.Records))
		}
		if ap.Rebuilt {
			f.cfg.Metrics.rebuilds.With(id).Inc()
		}
	}
	return nil
}

// fetch downloads one shipped file into place: temp file, framing
// verification under its final name's rules, atomic rename.
func (f *Follower) fetch(ctx context.Context, id string, info FileInfo, local string) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		f.cfg.PrimaryURL+"/v1/replica/file?tenant="+url.QueryEscape(id)+"&path="+url.QueryEscape(info.Path), nil)
	if err != nil {
		return err
	}
	res, err := f.cfg.Client.Do(req)
	if err != nil {
		return err
	}
	defer res.Body.Close()
	if res.StatusCode != http.StatusOK {
		io.Copy(io.Discard, io.LimitReader(res.Body, 4<<10))
		return fmt.Errorf("replica: fetch %s: %s", info.Path, res.Status)
	}
	tmp := local + ".fetch.tmp"
	out, err := os.Create(tmp)
	if err != nil {
		return err
	}
	n, err := io.Copy(out, res.Body)
	if cerr := out.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return err
	}
	if err := verifyShipped(info.Path, tmp); err != nil {
		os.Remove(tmp)
		if f.cfg.Metrics != nil {
			f.cfg.Metrics.verifyFailures.With(id).Inc()
		}
		return fmt.Errorf("replica: shipped %s failed verification: %w", info.Path, err)
	}
	if err := os.Rename(tmp, local); err != nil {
		os.Remove(tmp)
		return err
	}
	if f.cfg.Metrics != nil {
		f.cfg.Metrics.fetchedFiles.With(id).Inc()
		f.cfg.Metrics.fetchedBytes.With(id).Add(n)
	}
	return nil
}

// verifyShipped checks a fetched temp file against the framing rules of
// the name it is about to assume. WAL segments must hold an intact
// record chain (a torn shipped segment is a transfer fault, not a crash
// artifact — reject it), snapshots and the remap file a framed state
// payload, manifests valid JSON. Checkpoint payloads have no framing of
// their own; the replayer's core.Load is their gate.
func verifyShipped(rel, tmp string) error {
	base := path.Base(rel)
	switch {
	case strings.HasPrefix(rel, walSubdir+"/"):
		if _, _, ok := wal.SplitSegmentName(base); ok {
			return wal.VerifySegmentFile(tmp)
		}
		if _, _, ok := wal.SplitSnapshotName(base); ok {
			return wal.VerifySnapshotFile(tmp)
		}
		if base == wal.RemapFile {
			return wal.VerifySnapshotFile(tmp)
		}
		if base == wal.ManifestName {
			return verifyJSONFile(tmp)
		}
	case rel == specFile, base == "MANIFEST":
		return verifyJSONFile(tmp)
	}
	return nil
}

func verifyJSONFile(path string) error {
	b, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if !json.Valid(b) {
		return errors.New("invalid JSON")
	}
	return nil
}

// deleteUnlisted removes local immutable stream files the primary no
// longer lists (it pruned them past a newer snapshot). Mutable names
// and unknown files are left alone; stray fetch temps are swept.
func (f *Follower) deleteUnlisted(dir string, listed map[string]bool) {
	for _, sub := range []string{walSubdir, ckptSubdir} {
		ents, err := os.ReadDir(filepath.Join(dir, sub))
		if err != nil {
			continue
		}
		for _, e := range ents {
			name := e.Name()
			if e.IsDir() {
				continue
			}
			if strings.HasSuffix(name, ".fetch.tmp") {
				os.Remove(filepath.Join(dir, sub, name))
				continue
			}
			rel := sub + "/" + name
			if listed[rel] || !immutableName(sub, name) {
				continue
			}
			os.Remove(filepath.Join(dir, sub, name))
		}
	}
}

// immutableName reports whether a local file is one we mirror with
// delete-on-prune semantics: WAL segments and snapshots, and checkpoint
// payloads.
func immutableName(sub, name string) bool {
	switch sub {
	case walSubdir:
		if _, _, ok := wal.SplitSegmentName(name); ok {
			return true
		}
		_, _, ok := wal.SplitSnapshotName(name)
		return ok
	case ckptSubdir:
		return strings.HasPrefix(name, "ckpt-") && strings.HasSuffix(name, ".model")
	}
	return false
}

func (f *Follower) getJSON(ctx context.Context, p string, v any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, f.cfg.PrimaryURL+p, nil)
	if err != nil {
		return err
	}
	res, err := f.cfg.Client.Do(req)
	if err != nil {
		return err
	}
	defer res.Body.Close()
	if res.StatusCode != http.StatusOK {
		io.Copy(io.Discard, io.LimitReader(res.Body, 4<<10))
		return fmt.Errorf("replica: GET %s: %s", p, res.Status)
	}
	return json.NewDecoder(res.Body).Decode(v)
}
