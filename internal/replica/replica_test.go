package replica

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"testing"
	"time"

	"github.com/ucad/ucad/internal/core"
	"github.com/ucad/ucad/internal/session"
	"github.com/ucad/ucad/internal/wal"
)

// fakeTarget records everything the replayer feeds it.
type fakeTarget struct {
	resets    int
	snapshots []string
	records   []string
	swaps     int
	warms     int
}

func (t *fakeTarget) Reset() error {
	t.resets++
	t.snapshots, t.records = nil, nil
	return nil
}
func (t *fakeTarget) RestoreSnapshot(p []byte) error { t.snapshots = append(t.snapshots, string(p)); return nil }
func (t *fakeTarget) ApplyRecord(p []byte) error     { t.records = append(t.records, string(p)); return nil }
func (t *fakeTarget) SwapModel(u *core.UCAD) error   { t.swaps++; return nil }
func (t *fakeTarget) WarmScoreCache(limit int) int   { t.warms++; return 0 }

// writeTenant builds a primary-side tenant directory under root: a
// spec, a one-shard WAL stream with n records (snapshot at snapAt, tiny
// segments so several seal), and a checkpoint directory.
func writeTenant(t *testing.T, root, id string, n, snapAt int) {
	t.Helper()
	dir := filepath.Join(root, id)
	if err := os.MkdirAll(filepath.Join(dir, walSubdir), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, specFile), []byte(`{"id":"`+id+`"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	walDir := filepath.Join(dir, walSubdir)
	if err := wal.SaveManifest(walDir, wal.Manifest{Version: wal.ManifestVersion, Shards: 1}); err != nil {
		t.Fatal(err)
	}
	appendTenant(t, root, id, 0, n, snapAt)
}

// appendTenant appends records [from, from+n) to the tenant's stream,
// snapshotting when crossing snapAt (absolute index; <0 disables).
func appendTenant(t *testing.T, root, id string, from, n, snapAt int) {
	t.Helper()
	walDir := filepath.Join(root, id, walSubdir)
	s, err := wal.OpenStore(walDir, wal.Options{
		SegmentBytes:   64,
		Sync:           wal.SyncNever,
		SegmentPrefix:  wal.ShardSegmentPrefix(0),
		SnapshotPrefix: wal.ShardSnapshotPrefix(0),
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := from; i < from+n; i++ {
		if err := s.Append([]byte(fmt.Sprintf("rec-%03d", i))); err != nil {
			t.Fatal(err)
		}
		if i == snapAt {
			if err := s.Snapshot([]byte(fmt.Sprintf("snap-after-%03d", i))); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

// sealedExpectation replays the primary's currently sealed files the
// way a correct follower must: newest valid snapshot plus sealed
// segments from its anchor.
func sealedExpectation(t *testing.T, root, id string) (snaps, recs []string) {
	t.Helper()
	walDir := filepath.Join(root, id, walSubdir)
	seqs, err := wal.ListSegmentSeqs(walDir, wal.ShardSegmentPrefix(0))
	if err != nil {
		t.Fatal(err)
	}
	active := uint64(0)
	if len(seqs) > 0 {
		active = seqs[len(seqs)-1]
	}
	snapSeqs, err := wal.ListSnapshotSeqs(walDir, wal.ShardSnapshotPrefix(0))
	if err != nil {
		t.Fatal(err)
	}
	start := uint64(0)
	if len(snapSeqs) > 0 {
		newest := snapSeqs[len(snapSeqs)-1]
		b, err := wal.ReadSnapshotFile(filepath.Join(walDir, wal.SnapshotFileName(wal.ShardSnapshotPrefix(0), newest)))
		if err != nil {
			t.Fatal(err)
		}
		snaps = append(snaps, string(b))
		start = newest
	}
	for _, seq := range seqs {
		if seq >= active || seq < start {
			continue
		}
		_, err := wal.ReplaySegmentFile(filepath.Join(walDir, wal.SegmentFileName(wal.ShardSegmentPrefix(0), seq)),
			func(p []byte) error { recs = append(recs, string(p)); return nil })
		if err != nil {
			t.Fatal(err)
		}
	}
	return snaps, recs
}

func newTestFollower(t *testing.T, primaryURL, root string, targets map[string]*fakeTarget) *Follower {
	t.Helper()
	f, err := NewFollower(FollowerConfig{
		PrimaryURL: primaryURL,
		Root:       root,
		Metrics:    NewMetrics(nil),
		OpenTarget: func(id, dir string) (Target, error) {
			ft := &fakeTarget{}
			targets[id] = ft
			return ft, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// TestShipperEndpoints: the listing carries only durable immutable
// state (plus mutable manifests), and the fetch endpoint refuses
// traversal, unknown tenants, and the active segment.
func TestShipperEndpoints(t *testing.T) {
	root := t.TempDir()
	writeTenant(t, root, "t1", 12, 5)
	sh := &Shipper{Root: root, Metrics: NewMetrics(nil)}
	srv := httptest.NewServer(sh.Handler(""))
	defer srv.Close()

	get := func(p string) (int, string) {
		res, err := http.Get(srv.URL + p)
		if err != nil {
			t.Fatal(err)
		}
		defer res.Body.Close()
		b, _ := io.ReadAll(res.Body)
		return res.StatusCode, string(b)
	}

	if code, body := get("/v1/replica/tenants"); code != 200 || !strings.Contains(body, `"t1"`) {
		t.Fatalf("tenants: %d %q", code, body)
	}
	code, body := get("/v1/replica/files?tenant=t1")
	if code != 200 {
		t.Fatalf("files: %d %q", code, body)
	}
	seqs, err := wal.ListSegmentSeqs(filepath.Join(root, "t1", walSubdir), wal.ShardSegmentPrefix(0))
	if err != nil || len(seqs) < 2 {
		t.Fatalf("want several segments, got %v (%v)", seqs, err)
	}
	activeName := wal.SegmentFileName(wal.ShardSegmentPrefix(0), seqs[len(seqs)-1])
	if strings.Contains(body, activeName) {
		t.Fatalf("listing ships the active segment %s: %s", activeName, body)
	}
	sealedName := wal.SegmentFileName(wal.ShardSegmentPrefix(0), seqs[0])
	if !strings.Contains(body, "wal/"+sealedName) {
		t.Fatalf("listing misses sealed segment %s: %s", sealedName, body)
	}
	if !strings.Contains(body, specFile) || !strings.Contains(body, wal.ManifestName) {
		t.Fatalf("listing misses spec/manifest: %s", body)
	}

	if code, _ := get("/v1/replica/file?tenant=t1&path=wal/" + activeName); code != http.StatusConflict {
		t.Fatalf("active segment fetch: %d, want 409", code)
	}
	if code, _ := get("/v1/replica/file?tenant=t1&path=wal/" + sealedName); code != 200 {
		t.Fatalf("sealed segment fetch: %d", code)
	}
	for _, bad := range []string{
		"/v1/replica/file?tenant=t1&path=../t1/tenant.json",
		"/v1/replica/file?tenant=t1&path=wal/../../secret",
		"/v1/replica/file?tenant=t1&path=/etc/passwd",
		"/v1/replica/file?tenant=..&path=tenant.json",
	} {
		if code, _ := get(bad); code != http.StatusBadRequest {
			t.Fatalf("%s: %d, want 400", bad, code)
		}
	}
	if code, _ := get("/v1/replica/files?tenant=nope"); code != http.StatusNotFound {
		t.Fatalf("unknown tenant: %d, want 404", code)
	}
}

// TestShipperFlatAlias: a legacy flat single-tenant data dir (spec and
// streams at the data-dir root, no tenants/ subtree) ships through a
// Flat alias exactly like a tenants-layout tenant, and a follower
// mirrors it under the aliased id.
func TestShipperFlatAlias(t *testing.T) {
	parent := t.TempDir()
	writeTenant(t, parent, "flatdata", 12, 5)
	flatDir := filepath.Join(parent, "flatdata")
	sh := &Shipper{
		Root: filepath.Join(parent, "tenants"), // does not exist
		Flat: map[string]string{"default": flatDir},
	}
	srv := httptest.NewServer(sh.Handler(""))
	defer srv.Close()

	res, err := http.Get(srv.URL + "/v1/replica/tenants")
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(res.Body)
	res.Body.Close()
	if !strings.Contains(string(b), `"default"`) {
		t.Fatalf("flat tenant not listed: %s", b)
	}

	targets := map[string]*fakeTarget{}
	f := newTestFollower(t, srv.URL, t.TempDir(), targets)
	if err := f.SyncOnce(context.Background()); err != nil {
		t.Fatal(err)
	}
	ft := targets["default"]
	if ft == nil {
		t.Fatal("default target never opened")
	}
	wantSnaps, wantRecs := sealedExpectation(t, parent, "flatdata")
	if !reflect.DeepEqual(ft.snapshots, wantSnaps) || !reflect.DeepEqual(ft.records, wantRecs) {
		t.Fatalf("replayed state diverges:\n got %v %v\nwant %v %v", ft.snapshots, ft.records, wantSnaps, wantRecs)
	}
}

// TestFollowerSyncReplayCatchUp: a full round mirrors exactly the
// sealed state, and later rounds replay only what sealed since —
// incremental catch-up, no duplicate application.
func TestFollowerSyncReplayCatchUp(t *testing.T) {
	root, standby := t.TempDir(), t.TempDir()
	writeTenant(t, root, "t1", 12, 5)
	sh := &Shipper{Root: root}
	srv := httptest.NewServer(sh.Handler(""))
	defer srv.Close()

	targets := map[string]*fakeTarget{}
	f := newTestFollower(t, srv.URL, standby, targets)
	if err := f.SyncOnce(context.Background()); err != nil {
		t.Fatal(err)
	}
	ft := targets["t1"]
	if ft == nil {
		t.Fatal("tenant target never opened")
	}
	wantSnaps, wantRecs := sealedExpectation(t, root, "t1")
	if !reflect.DeepEqual(ft.snapshots, wantSnaps) || !reflect.DeepEqual(ft.records, wantRecs) {
		t.Fatalf("replayed state diverges:\n got %v %v\nwant %v %v", ft.snapshots, ft.records, wantSnaps, wantRecs)
	}
	firstCount := len(ft.records)

	// The primary moves on: more records, some of which seal.
	appendTenant(t, root, "t1", 12, 8, -1)
	if err := f.SyncOnce(context.Background()); err != nil {
		t.Fatal(err)
	}
	_, wantRecs2 := sealedExpectation(t, root, "t1")
	if got := ft.records; !reflect.DeepEqual(got, wantRecs2) {
		t.Fatalf("after catch-up:\n got %v\nwant %v", got, wantRecs2)
	}
	if len(ft.records) <= firstCount {
		t.Fatalf("catch-up applied nothing (still %d records)", firstCount)
	}
	sorted := append([]string(nil), ft.records...)
	sort.Strings(sorted)
	for i := 1; i < len(sorted); i++ {
		if sorted[i] == sorted[i-1] {
			t.Fatalf("record %q applied twice", sorted[i])
		}
	}
	if ft.resets != 0 {
		t.Fatalf("catch-up forced %d rebuilds", ft.resets)
	}

	st := f.Status()
	if !st.PrimaryHealthy || st.Rounds != 2 || st.Errors != 0 {
		t.Fatalf("status: %+v", st)
	}
	if len(st.Tenants) != 1 || st.Tenants[0].AppliedRecords != int64(len(ft.records)) {
		t.Fatalf("tenant status: %+v", st.Tenants)
	}
}

// TestFollowerRejectsCorruptShippedSegment: a segment mangled in flight
// fails CRC verification, is never installed, and the next clean round
// converges anyway.
func TestFollowerRejectsCorruptShippedSegment(t *testing.T) {
	root, standby := t.TempDir(), t.TempDir()
	writeTenant(t, root, "t1", 12, 5)
	sh := &Shipper{Root: root}

	corrupt := true
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if corrupt && r.URL.Path == "/v1/replica/file" && strings.HasSuffix(r.URL.Query().Get("path"), ".log") {
			rec := httptest.NewRecorder()
			sh.Handler("").ServeHTTP(rec, r)
			b := rec.Body.Bytes()
			if len(b) > 5 {
				b = b[:len(b)-5] // torn in transfer
			}
			b[len(b)-1] ^= 0xff
			w.Write(b)
			return
		}
		sh.Handler("").ServeHTTP(w, r)
	}))
	defer srv.Close()

	targets := map[string]*fakeTarget{}
	f := newTestFollower(t, srv.URL, standby, targets)
	if err := f.SyncOnce(context.Background()); err == nil {
		t.Fatal("corrupt segment accepted")
	}
	ents, _ := os.ReadDir(filepath.Join(standby, "tenants", "t1", walSubdir))
	for _, e := range ents {
		if strings.HasSuffix(e.Name(), ".log") {
			t.Fatalf("corrupt segment %s installed locally", e.Name())
		}
	}
	if f.cfg.Metrics.verifyFailures.With("t1").Value() == 0 {
		t.Fatal("verify failure not counted")
	}

	corrupt = false
	if err := f.SyncOnce(context.Background()); err != nil {
		t.Fatal(err)
	}
	wantSnaps, wantRecs := sealedExpectation(t, root, "t1")
	ft := targets["t1"]
	if !reflect.DeepEqual(ft.snapshots, wantSnaps) || !reflect.DeepEqual(ft.records, wantRecs) {
		t.Fatalf("post-recovery state diverges:\n got %v %v\nwant %v %v", ft.snapshots, ft.records, wantSnaps, wantRecs)
	}
}

// TestReplayerGapRebuild: when the primary prunes past the follower's
// position, the next Apply detects the seq gap and rebuilds from the
// newest snapshot instead of silently skipping history.
func TestReplayerGapRebuild(t *testing.T) {
	root := t.TempDir()
	writeTenant(t, root, "t1", 12, 5)
	dir := filepath.Join(root, "t1")
	ft := &fakeTarget{}
	rp := NewReplayer(dir, ft, false)
	if _, err := rp.Apply(); err != nil {
		t.Fatal(err)
	}
	if ft.resets != 0 || len(ft.records) == 0 {
		t.Fatalf("bootstrap: resets=%d records=%d", ft.resets, len(ft.records))
	}

	// The primary races ahead with two snapshot cycles, pruning the
	// segments the replayer would have needed next.
	appendTenant(t, root, "t1", 12, 10, 16)
	appendTenant(t, root, "t1", 22, 10, 26)
	seqs, err := wal.ListSegmentSeqs(filepath.Join(dir, walSubdir), wal.ShardSegmentPrefix(0))
	if err != nil {
		t.Fatal(err)
	}
	if seqs[0] <= rp.next[0] {
		t.Fatalf("prune did not open a gap: oldest %d, next %d", seqs[0], rp.next[0])
	}
	ap, err := rp.Apply()
	if err != nil {
		t.Fatal(err)
	}
	if !ap.Rebuilt || ft.resets != 1 {
		t.Fatalf("gap not rebuilt: %+v resets=%d", ap, ft.resets)
	}
	wantSnaps, wantRecs := sealedExpectation(t, root, "t1")
	if !reflect.DeepEqual(ft.snapshots, wantSnaps) || !reflect.DeepEqual(ft.records, wantRecs) {
		t.Fatalf("rebuild diverges:\n got %v %v\nwant %v %v", ft.snapshots, ft.records, wantSnaps, wantRecs)
	}
}

// TestReplayerSwapsCheckpoint: a new current checkpoint swaps the model
// exactly once; an unchanged manifest swaps nothing.
func TestReplayerSwapsCheckpoint(t *testing.T) {
	root := t.TempDir()
	writeTenant(t, root, "t1", 4, -1)
	dir := filepath.Join(root, "t1")
	u := trainTinyModel(t)
	ck, err := wal.OpenCheckpoints(filepath.Join(dir, ckptSubdir), 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ck.Save(u.Save); err != nil {
		t.Fatal(err)
	}

	ft := &fakeTarget{}
	rp := NewReplayer(dir, ft, false)
	ap, err := rp.Apply()
	if err != nil {
		t.Fatal(err)
	}
	if !ap.Swapped || ft.swaps != 1 {
		t.Fatalf("first apply: %+v swaps=%d", ap, ft.swaps)
	}
	if ap, err = rp.Apply(); err != nil || ap.Swapped || ft.swaps != 1 {
		t.Fatalf("unchanged checkpoint swapped again: %+v swaps=%d err=%v", ap, ft.swaps, err)
	}
	if _, err := ck.Save(u.Save); err != nil {
		t.Fatal(err)
	}
	if ap, err = rp.Apply(); err != nil || !ap.Swapped || ft.swaps != 2 {
		t.Fatalf("new checkpoint not swapped: %+v swaps=%d err=%v", ap, ft.swaps, err)
	}
}

// TestFollowerAutoPromote: a continuously unreachable primary fires
// OnPrimaryDown exactly once after the configured outage.
func TestFollowerAutoPromote(t *testing.T) {
	srv := httptest.NewServer(http.NotFoundHandler())
	srv.Close() // dead from the start

	now := time.Unix(1754000000, 0)
	fired := 0
	f, err := NewFollower(FollowerConfig{
		PrimaryURL:       srv.URL,
		Root:             t.TempDir(),
		OpenTarget:       func(id, dir string) (Target, error) { return &fakeTarget{}, nil },
		AutoPromoteAfter: 10 * time.Second,
		OnPrimaryDown:    func() { fired++ },
		Clock:            func() time.Time { return now },
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.SyncOnce(context.Background()); err == nil {
		t.Fatal("sync against dead primary succeeded")
	}
	if fired != 0 {
		t.Fatal("fired before the outage window elapsed")
	}
	now = now.Add(11 * time.Second)
	f.SyncOnce(context.Background())
	if fired != 1 {
		t.Fatalf("fired %d times, want 1", fired)
	}
	now = now.Add(time.Minute)
	f.SyncOnce(context.Background())
	if fired != 1 {
		t.Fatalf("fired again: %d", fired)
	}
	if st := f.Status(); st.PrimaryHealthy || st.Errors != 3 {
		t.Fatalf("status: %+v", st)
	}
}

// trainTinyModel builds the smallest deterministic detector (the serve
// test idiom) for checkpoint-swap tests.
func trainTinyModel(tb testing.TB) *core.UCAD {
	tb.Helper()
	var sessions []*session.Session
	for i := 0; i < 8; i++ {
		s := &session.Session{ID: fmt.Sprintf("train-%d", i), User: "app"}
		for p := 0; p < 10; p++ {
			s.Ops = append(s.Ops, session.Operation{SQL: fmt.Sprintf("SELECT * FROM t%d WHERE id = %d", (i+p)%4, p)})
		}
		sessions = append(sessions, s)
	}
	cfg := core.DefaultConfig()
	cfg.SkipClean = true
	cfg.Model.Hidden = 4
	cfg.Model.Heads = 2
	cfg.Model.Blocks = 1
	cfg.Model.Window = 6
	cfg.Model.Epochs = 1
	cfg.Model.Dropout = 0
	cfg.Model.MinContext = 2
	u, err := core.Train(cfg, sessions, nil)
	if err != nil {
		tb.Fatal(err)
	}
	return u
}
