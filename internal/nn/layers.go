package nn

import (
	"fmt"
	"math/rand"

	"github.com/ucad/ucad/internal/tensor"
)

// Linear is a fully-connected layer y = x·W + b.
type Linear struct {
	W, B *tensor.Param
}

// NewLinear creates a Linear layer with Xavier-initialized weights.
func NewLinear(name string, in, out int, rng *rand.Rand) *Linear {
	return &Linear{
		W: tensor.NewParam(name+".W", tensor.NewXavier(in, out, rng)),
		B: tensor.NewParam(name+".B", tensor.NewMatrix(1, out)),
	}
}

// Forward applies the layer to x (rows are positions).
func (l *Linear) Forward(tp *tensor.Tape, x *tensor.Node) *tensor.Node {
	return tp.AddRowVec(tp.MatMul(x, tp.Param(l.W)), tp.Param(l.B))
}

// Params implements Module.
func (l *Linear) Params() []*tensor.Param { return []*tensor.Param{l.W, l.B} }

// Embedding is the paper's order-free embedding layer (§4.2, Eq. 1): a
// learnable matrix M ∈ R^{n×h} indexed by operation key. Key PadKey (k0)
// maps to a constant zero vector for padding and unseen operations.
type Embedding struct {
	Table *tensor.Param
	// PadKey is the reserved key whose embedding is the constant zero
	// vector (the paper's k0).
	PadKey int
}

// NewEmbedding creates an embedding for vocab keys of dimension dim.
func NewEmbedding(name string, vocab, dim int, rng *rand.Rand) *Embedding {
	return &Embedding{
		Table:  tensor.NewParam(name+".M", tensor.NewRandN(vocab, dim, 0.1, rng)),
		PadKey: 0,
	}
}

// Lookup embeds a key sequence into an L x dim matrix. Keys equal to
// PadKey or outside the vocabulary embed to the zero vector (no
// gradient), matching the paper's treatment of new operations appearing
// during detection.
func (e *Embedding) Lookup(tp *tensor.Tape, keys []int) *tensor.Node {
	idx := make([]int, len(keys))
	for i, k := range keys {
		if k == e.PadKey || k < 0 || k >= e.Table.Value.Rows {
			idx[i] = -1
		} else {
			idx[i] = k
		}
	}
	return tp.GatherRows(tp.Param(e.Table), idx)
}

// Vocab returns the number of keys the table can embed.
func (e *Embedding) Vocab() int { return e.Table.Value.Rows }

// Dim returns the embedding dimension h.
func (e *Embedding) Dim() int { return e.Table.Value.Cols }

// Params implements Module.
func (e *Embedding) Params() []*tensor.Param { return []*tensor.Param{e.Table} }

// LayerNorm implements Eq. 6: LN(x) = g/√(σ²+ε) ⊙ (x-μ) + b per row.
type LayerNorm struct {
	Gain, Bias *tensor.Param
	Eps        float64
}

// NewLayerNorm creates a LayerNorm over rows of width dim.
func NewLayerNorm(name string, dim int) *LayerNorm {
	g := tensor.NewMatrix(1, dim)
	g.Fill(1)
	return &LayerNorm{
		Gain: tensor.NewParam(name+".g", g),
		Bias: tensor.NewParam(name+".b", tensor.NewMatrix(1, dim)),
		Eps:  1e-5,
	}
}

// Forward normalizes each row of x.
func (l *LayerNorm) Forward(tp *tensor.Tape, x *tensor.Node) *tensor.Node {
	return tp.AddRowVec(tp.MulRowVec(tp.NormalizeRows(x, l.Eps), tp.Param(l.Gain)), tp.Param(l.Bias))
}

// Params implements Module.
func (l *LayerNorm) Params() []*tensor.Param { return []*tensor.Param{l.Gain, l.Bias} }

// FeedForward is Eq. 7: FFN(x) = max(0, x·W1 + b1)·W2 + b2, applied
// point-wise to every position.
type FeedForward struct {
	L1, L2 *Linear
}

// NewFeedForward creates the two-layer point-wise MLP with hidden width
// inner (the paper uses inner = h).
func NewFeedForward(name string, dim, inner int, rng *rand.Rand) *FeedForward {
	return &FeedForward{
		L1: NewLinear(name+".l1", dim, inner, rng),
		L2: NewLinear(name+".l2", inner, dim, rng),
	}
}

// Forward applies the MLP to every row of x.
func (f *FeedForward) Forward(tp *tensor.Tape, x *tensor.Node) *tensor.Node {
	return f.L2.Forward(tp, tp.ReLU(f.L1.Forward(tp, x)))
}

// Params implements Module.
func (f *FeedForward) Params() []*tensor.Param { return CollectParams(f.L1, f.L2) }

// Residual applies Eq. 5's regularization around a sub-layer output:
// Reg(x) = LN(x + Dropout(f(x))).
func Residual(tp *tensor.Tape, ln *LayerNorm, x, fx *tensor.Node, dropout float64, train bool, rng *rand.Rand) *tensor.Node {
	return ln.Forward(tp, tp.Add(x, tp.Dropout(fx, dropout, train, rng)))
}

func mustDivide(h, m int) int {
	if m <= 0 || h%m != 0 {
		panic(fmt.Sprintf("nn: hidden dim %d not divisible by %d heads", h, m))
	}
	return h / m
}
