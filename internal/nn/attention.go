package nn

import (
	"math"
	"math/rand"

	"github.com/ucad/ucad/internal/tensor"
)

// MaskKind selects which attention mask a MultiHeadAttention layer uses.
// The choice is the central architectural ablation of the paper (§4.3,
// Table 3).
type MaskKind int

const (
	// MaskBidirectionalExceptSelf is the paper's design: output position
	// i attends to every input except input i+1 (the training target
	// itself), using bidirectional context. Eq. 3 with Q_i ⊥ K_{i+1}.
	MaskBidirectionalExceptSelf MaskKind = iota
	// MaskFull is the original transformer encoder: every position
	// attends to every position including itself.
	MaskFull
	// MaskFuture is the original transformer decoder: output position i
	// attends only to inputs 1..i (no future context).
	MaskFuture
)

// String implements fmt.Stringer for diagnostics.
func (k MaskKind) String() string {
	switch k {
	case MaskBidirectionalExceptSelf:
		return "bidirectional-except-self"
	case MaskFull:
		return "full"
	case MaskFuture:
		return "future"
	default:
		return "unknown"
	}
}

const maskNegInf = -1e9

// MaskedScore is the additive score for forbidden attention pairs: low
// enough that its softmax term underflows to exactly 0.0 in float64.
// Exported for tape-free inference kernels that apply masks inline.
const MaskedScore = maskNegInf

// BuildMask returns the L x L additive attention mask for the kind:
// 0 where attention is allowed, -1e9 where it is forbidden. Row = output
// (query) position, column = input (key) position.
func BuildMask(kind MaskKind, L int) *tensor.Matrix {
	m := tensor.NewMatrix(L, L)
	switch kind {
	case MaskFull:
		// all zeros
	case MaskFuture:
		for i := 0; i < L; i++ {
			for j := i + 1; j < L; j++ {
				m.Set(i, j, maskNegInf)
			}
		}
	case MaskBidirectionalExceptSelf:
		// The target for output i is input i+1; disconnect Q_i from
		// K_{i+1} so the prediction cannot peek at the answer. The last
		// position's target lies outside the window, so its row is
		// unmasked.
		for i := 0; i < L-1; i++ {
			m.Set(i, i+1, maskNegInf)
		}
	}
	return m
}

// MultiHeadAttention implements Eqs. 2–4 with a pluggable mask. The m
// heads project into h/m-dimensional subspaces; outputs are concatenated
// and projected by W^O.
type MultiHeadAttention struct {
	WQ, WK, WV, WO *tensor.Param
	Heads          int
	Mask           MaskKind

	// Capture enables recording of post-softmax attention weights on
	// each forward pass (the paper's Figure 6 introspection). It is off
	// by default so concurrent inference shares the layer safely.
	Capture bool
	// lastWeights stores the captured weights, one (batch·L) x L matrix
	// per head (L x L for unbatched Forward).
	lastWeights []*tensor.Matrix
}

// NewMultiHeadAttention creates an attention layer of width dim with the
// given number of heads and mask kind.
func NewMultiHeadAttention(name string, dim, heads int, mask MaskKind, rng *rand.Rand) *MultiHeadAttention {
	mustDivide(dim, heads)
	return &MultiHeadAttention{
		WQ:    tensor.NewParam(name+".WQ", tensor.NewXavier(dim, dim, rng)),
		WK:    tensor.NewParam(name+".WK", tensor.NewXavier(dim, dim, rng)),
		WV:    tensor.NewParam(name+".WV", tensor.NewXavier(dim, dim, rng)),
		WO:    tensor.NewParam(name+".WO", tensor.NewXavier(dim, dim, rng)),
		Heads: heads,
		Mask:  mask,
	}
}

// BuildBatchMask returns the (batch·L) x L additive attention mask for a
// stack of batch right-padded sequences: block b holds the kind's L x L
// pattern with every column j >= lengths[b] additionally forbidden, so
// padded key positions receive exactly zero attention weight (their
// softmax terms underflow to 0). lengths == nil means no padding (every
// sequence fills all L positions); with batch == 1 and nil lengths the
// result equals BuildMask.
func BuildBatchMask(kind MaskKind, batch, L int, lengths []int) *tensor.Matrix {
	base := BuildMask(kind, L)
	if batch == 1 && lengths == nil {
		return base
	}
	m := tensor.NewMatrix(batch*L, L)
	for b := 0; b < batch; b++ {
		copy(m.Data[b*L*L:(b+1)*L*L], base.Data)
		if lengths == nil {
			continue
		}
		for i := 0; i < L; i++ {
			row := m.Row(b*L + i)
			for j := lengths[b]; j < L; j++ {
				row[j] = maskNegInf
			}
		}
	}
	return m
}

// Forward computes MH(E) for an L x dim input. The mask is rebuilt for
// the actual sequence length, so shorter-than-L sequences work.
func (a *MultiHeadAttention) Forward(tp *tensor.Tape, e *tensor.Node) *tensor.Node {
	return a.ForwardBatch(tp, e, 1, nil)
}

// ForwardBatch computes MH(E) independently for batch stacked L x dim
// sequences in one pass over stacked matrices. e holds the sequences
// concatenated along the row axis ((batch·L) x dim); mask is a
// (batch·L) x L additive mask from BuildBatchMask, or nil to build the
// layer's kind mask with no padding. Attention never crosses sequence
// boundaries: scores and read-outs use block-diagonal batched products.
func (a *MultiHeadAttention) ForwardBatch(tp *tensor.Tape, e *tensor.Node, batch int, mask *tensor.Matrix) *tensor.Node {
	dim := a.WQ.Value.Rows
	L := e.Value.Rows / batch
	dk := dim / a.Heads
	if mask == nil {
		mask = BuildBatchMask(a.Mask, batch, L, nil)
	}
	maskN := tp.Const(mask)

	q := tp.MatMul(e, tp.Param(a.WQ))
	k := tp.MatMul(e, tp.Param(a.WK))
	v := tp.MatMul(e, tp.Param(a.WV))

	// Eq. 3 scales by √h (the full hidden dimension), per the paper.
	scale := 1 / math.Sqrt(float64(dim))

	if a.Capture {
		a.lastWeights = a.lastWeights[:0]
	}
	headsOut := make([]*tensor.Node, a.Heads)
	for hIdx := 0; hIdx < a.Heads; hIdx++ {
		lo, hi := hIdx*dk, (hIdx+1)*dk
		qh := tp.SliceCols(q, lo, hi)
		kh := tp.SliceCols(k, lo, hi)
		vh := tp.SliceCols(v, lo, hi)
		scores := tp.Add(tp.Scale(tp.BatchMatMulNT(qh, kh, batch), scale), maskN)
		weights := tp.SoftmaxRows(scores)
		if a.Capture {
			a.lastWeights = append(a.lastWeights, weights.Value.Clone())
		}
		headsOut[hIdx] = tp.BatchMatMulNN(weights, vh, batch)
	}
	return tp.MatMul(tp.ConcatCols(headsOut...), tp.Param(a.WO))
}

// LastWeights returns the attention weights (one L x L matrix per head)
// from the most recent Forward call with Capture enabled; nil otherwise.
func (a *MultiHeadAttention) LastWeights() []*tensor.Matrix { return a.lastWeights }

// Params implements Module.
func (a *MultiHeadAttention) Params() []*tensor.Param {
	return []*tensor.Param{a.WQ, a.WK, a.WV, a.WO}
}
