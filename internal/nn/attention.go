package nn

import (
	"math"
	"math/rand"

	"github.com/ucad/ucad/internal/tensor"
)

// MaskKind selects which attention mask a MultiHeadAttention layer uses.
// The choice is the central architectural ablation of the paper (§4.3,
// Table 3).
type MaskKind int

const (
	// MaskBidirectionalExceptSelf is the paper's design: output position
	// i attends to every input except input i+1 (the training target
	// itself), using bidirectional context. Eq. 3 with Q_i ⊥ K_{i+1}.
	MaskBidirectionalExceptSelf MaskKind = iota
	// MaskFull is the original transformer encoder: every position
	// attends to every position including itself.
	MaskFull
	// MaskFuture is the original transformer decoder: output position i
	// attends only to inputs 1..i (no future context).
	MaskFuture
)

// String implements fmt.Stringer for diagnostics.
func (k MaskKind) String() string {
	switch k {
	case MaskBidirectionalExceptSelf:
		return "bidirectional-except-self"
	case MaskFull:
		return "full"
	case MaskFuture:
		return "future"
	default:
		return "unknown"
	}
}

const maskNegInf = -1e9

// BuildMask returns the L x L additive attention mask for the kind:
// 0 where attention is allowed, -1e9 where it is forbidden. Row = output
// (query) position, column = input (key) position.
func BuildMask(kind MaskKind, L int) *tensor.Matrix {
	m := tensor.NewMatrix(L, L)
	switch kind {
	case MaskFull:
		// all zeros
	case MaskFuture:
		for i := 0; i < L; i++ {
			for j := i + 1; j < L; j++ {
				m.Set(i, j, maskNegInf)
			}
		}
	case MaskBidirectionalExceptSelf:
		// The target for output i is input i+1; disconnect Q_i from
		// K_{i+1} so the prediction cannot peek at the answer. The last
		// position's target lies outside the window, so its row is
		// unmasked.
		for i := 0; i < L-1; i++ {
			m.Set(i, i+1, maskNegInf)
		}
	}
	return m
}

// MultiHeadAttention implements Eqs. 2–4 with a pluggable mask. The m
// heads project into h/m-dimensional subspaces; outputs are concatenated
// and projected by W^O.
type MultiHeadAttention struct {
	WQ, WK, WV, WO *tensor.Param
	Heads          int
	Mask           MaskKind

	// Capture enables recording of post-softmax attention weights on
	// each forward pass (the paper's Figure 6 introspection). It is off
	// by default so concurrent inference shares the layer safely.
	Capture bool
	// lastWeights stores the captured weights, one L x L matrix per
	// head.
	lastWeights []*tensor.Matrix
}

// NewMultiHeadAttention creates an attention layer of width dim with the
// given number of heads and mask kind.
func NewMultiHeadAttention(name string, dim, heads int, mask MaskKind, rng *rand.Rand) *MultiHeadAttention {
	mustDivide(dim, heads)
	return &MultiHeadAttention{
		WQ:    tensor.NewParam(name+".WQ", tensor.NewXavier(dim, dim, rng)),
		WK:    tensor.NewParam(name+".WK", tensor.NewXavier(dim, dim, rng)),
		WV:    tensor.NewParam(name+".WV", tensor.NewXavier(dim, dim, rng)),
		WO:    tensor.NewParam(name+".WO", tensor.NewXavier(dim, dim, rng)),
		Heads: heads,
		Mask:  mask,
	}
}

// Forward computes MH(E) for an L x dim input. The mask is rebuilt for
// the actual sequence length, so shorter-than-L sequences work.
func (a *MultiHeadAttention) Forward(tp *tensor.Tape, e *tensor.Node) *tensor.Node {
	dim := a.WQ.Value.Rows
	L := e.Value.Rows
	dk := dim / a.Heads
	mask := tp.Const(BuildMask(a.Mask, L))

	q := tp.MatMul(e, tp.Param(a.WQ))
	k := tp.MatMul(e, tp.Param(a.WK))
	v := tp.MatMul(e, tp.Param(a.WV))

	// Eq. 3 scales by √h (the full hidden dimension), per the paper.
	scale := 1 / math.Sqrt(float64(dim))

	if a.Capture {
		a.lastWeights = a.lastWeights[:0]
	}
	headsOut := make([]*tensor.Node, a.Heads)
	for hIdx := 0; hIdx < a.Heads; hIdx++ {
		lo, hi := hIdx*dk, (hIdx+1)*dk
		qh := tp.SliceCols(q, lo, hi)
		kh := tp.SliceCols(k, lo, hi)
		vh := tp.SliceCols(v, lo, hi)
		scores := tp.Add(tp.Scale(tp.MatMul(qh, tp.Transpose(kh)), scale), mask)
		weights := tp.SoftmaxRows(scores)
		if a.Capture {
			a.lastWeights = append(a.lastWeights, weights.Value.Clone())
		}
		headsOut[hIdx] = tp.MatMul(weights, vh)
	}
	return tp.MatMul(tp.ConcatCols(headsOut...), tp.Param(a.WO))
}

// LastWeights returns the attention weights (one L x L matrix per head)
// from the most recent Forward call with Capture enabled; nil otherwise.
func (a *MultiHeadAttention) LastWeights() []*tensor.Matrix { return a.lastWeights }

// Params implements Module.
func (a *MultiHeadAttention) Params() []*tensor.Param {
	return []*tensor.Param{a.WQ, a.WK, a.WV, a.WO}
}
