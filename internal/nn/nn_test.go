package nn

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"github.com/ucad/ucad/internal/tensor"
)

func TestLinearForwardShape(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	l := NewLinear("lin", 4, 3, rng)
	tp := tensor.NewTape()
	x := tp.Const(tensor.NewRandN(5, 4, 1, rng))
	out := l.Forward(tp, x)
	if out.Value.Rows != 5 || out.Value.Cols != 3 {
		t.Fatalf("shape = %dx%d, want 5x3", out.Value.Rows, out.Value.Cols)
	}
}

func TestEmbeddingPadIsZeroAndUngradded(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	e := NewEmbedding("emb", 5, 3, rng)
	tp := tensor.NewTape()
	out := e.Lookup(tp, []int{0, 2, 99, -3}) // pad, valid, out-of-vocab, negative
	for _, r := range []int{0, 2, 3} {
		for c := 0; c < 3; c++ {
			if out.Value.At(r, c) != 0 {
				t.Fatalf("row %d should be zero (pad/unknown), got %v", r, out.Value)
			}
		}
	}
	loss := tp.SumSquares(out)
	tp.Backward(loss)
	for c := 0; c < 3; c++ {
		if e.Table.Grad.At(0, c) != 0 {
			t.Fatal("pad row must not receive gradient")
		}
		if e.Table.Grad.At(2, c) == 0 {
			t.Fatal("looked-up row must receive gradient")
		}
	}
}

func TestBuildMaskShapes(t *testing.T) {
	const L = 4
	full := BuildMask(MaskFull, L)
	for _, v := range full.Data {
		if v != 0 {
			t.Fatal("full mask must be all zeros")
		}
	}
	fut := BuildMask(MaskFuture, L)
	for i := 0; i < L; i++ {
		for j := 0; j < L; j++ {
			blocked := fut.At(i, j) != 0
			if blocked != (j > i) {
				t.Fatalf("future mask (%d,%d) blocked=%v", i, j, blocked)
			}
		}
	}
	bid := BuildMask(MaskBidirectionalExceptSelf, L)
	for i := 0; i < L; i++ {
		for j := 0; j < L; j++ {
			blocked := bid.At(i, j) != 0
			if blocked != (j == i+1) {
				t.Fatalf("bidirectional mask (%d,%d) blocked=%v", i, j, blocked)
			}
		}
	}
}

// The paper's core claim about the mask: position i's output must not be
// influenced by input i+1 (its own training target). Verify by zeroing
// gradient flow: perturbing input row i+1 must not change output row i.
func TestMaskBlocksTargetLeakage(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	att := NewMultiHeadAttention("att", 8, 2, MaskBidirectionalExceptSelf, rng)
	const L = 5
	base := tensor.NewRandN(L, 8, 1, rng)

	outAt := func(m *tensor.Matrix, r int) []float64 {
		tp := tensor.NewTape()
		out := att.Forward(tp, tp.Const(m))
		return append([]float64(nil), out.Value.Row(r)...)
	}
	for i := 0; i < L-1; i++ {
		perturbed := base.Clone()
		for c := 0; c < 8; c++ {
			perturbed.Set(i+1, c, perturbed.At(i+1, c)+10)
		}
		a, b := outAt(base, i), outAt(perturbed, i)
		for c := range a {
			if math.Abs(a[c]-b[c]) > 1e-9 {
				t.Fatalf("output %d leaked information from input %d", i, i+1)
			}
		}
	}
	// Sanity: a non-target input change must affect the output.
	perturbed := base.Clone()
	perturbed.Set(0, 0, perturbed.At(0, 0)+10)
	a, b := outAt(base, 2), outAt(perturbed, 2)
	same := true
	for c := range a {
		if math.Abs(a[c]-b[c]) > 1e-9 {
			same = false
		}
	}
	if same {
		t.Fatal("attention appears to ignore its context entirely")
	}
}

func TestFutureMaskBlocksFuture(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	att := NewMultiHeadAttention("att", 4, 1, MaskFuture, rng)
	const L = 4
	base := tensor.NewRandN(L, 4, 1, rng)
	outRow := func(m *tensor.Matrix, r int) []float64 {
		tp := tensor.NewTape()
		out := att.Forward(tp, tp.Const(m))
		return append([]float64(nil), out.Value.Row(r)...)
	}
	perturbed := base.Clone()
	perturbed.Set(3, 0, perturbed.At(3, 0)+5) // change the last input
	a, b := outRow(base, 1), outRow(perturbed, 1)
	for c := range a {
		if math.Abs(a[c]-b[c]) > 1e-9 {
			t.Fatal("future mask leaked future input")
		}
	}
}

func TestAttentionGradCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	att := NewMultiHeadAttention("att", 6, 2, MaskBidirectionalExceptSelf, rng)
	x := tensor.NewParam("x", tensor.NewRandN(4, 6, 1, rng))
	params := append(att.Params(), x)
	run := func() float64 {
		ZeroGrads(params)
		tp := tensor.NewTape()
		out := att.Forward(tp, tp.Param(x))
		loss := tp.SumSquares(out)
		tp.Backward(loss)
		return loss.Value.Data[0]
	}
	run()
	for _, p := range params {
		analytic := p.Grad.Clone()
		const h = 1e-5
		for i := 0; i < len(p.Value.Data); i += 3 { // sample every 3rd entry
			orig := p.Value.Data[i]
			p.Value.Data[i] = orig + h
			up := run()
			p.Value.Data[i] = orig - h
			down := run()
			p.Value.Data[i] = orig
			want := (up - down) / (2 * h)
			if math.Abs(want-analytic.Data[i]) > 1e-3*(1+math.Abs(want)) {
				t.Fatalf("%s grad[%d]=%g want %g", p.Name, i, analytic.Data[i], want)
			}
		}
	}
}

func TestLayerNormFFNGradCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	ln := NewLayerNorm("ln", 5)
	ffn := NewFeedForward("ffn", 5, 5, rng)
	x := tensor.NewParam("x", tensor.NewRandN(3, 5, 1, rng))
	params := append(CollectParams(ln, ffn), x)
	run := func() float64 {
		ZeroGrads(params)
		tp := tensor.NewTape()
		xn := tp.Param(x)
		out := Residual(tp, ln, xn, ffn.Forward(tp, xn), 0, false, rng)
		loss := tp.SumSquares(out)
		tp.Backward(loss)
		return loss.Value.Data[0]
	}
	run()
	for _, p := range params {
		analytic := p.Grad.Clone()
		const h = 1e-5
		for i := 0; i < len(p.Value.Data); i += 2 {
			orig := p.Value.Data[i]
			p.Value.Data[i] = orig + h
			up := run()
			p.Value.Data[i] = orig - h
			down := run()
			p.Value.Data[i] = orig
			want := (up - down) / (2 * h)
			if math.Abs(want-analytic.Data[i]) > 1e-3*(1+math.Abs(want)) {
				t.Fatalf("%s grad[%d]=%g want %g", p.Name, i, analytic.Data[i], want)
			}
		}
	}
}

func TestLSTMLearnsAlternation(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const vocab, hidden = 2, 8
	cell := NewLSTMCell("lstm", vocab, hidden, rng)
	head := NewLinear("head", hidden, vocab, rng)
	params := CollectParams(cell, head)
	opt := NewAdam(0.05)

	seq := []int{0, 1, 0, 1, 0, 1, 0, 1}
	oneHot := func(tp *tensor.Tape, k int) *tensor.Node {
		m := tensor.NewMatrix(1, vocab)
		m.Data[k] = 1
		return tp.Const(m)
	}
	var last float64
	for epoch := 0; epoch < 150; epoch++ {
		tp2 := tensor.NewTape()
		var h2, c2 *tensor.Node
		var loss *tensor.Node
		for i, k := range seq[:len(seq)-1] {
			h2, c2 = cell.Step(tp2, oneHot(tp2, k), h2, c2)
			lg := head.Forward(tp2, h2)
			l := tp2.CrossEntropyMean(lg, []int{seq[i+1]})
			if loss == nil {
				loss = l
			} else {
				loss = tp2.Add(loss, l)
			}
		}
		tp2.Backward(loss)
		opt.Step(params)
		last = loss.Value.Data[0]
	}
	if last > 0.5 {
		t.Fatalf("LSTM failed to learn alternation, loss=%v", last)
	}
}

func TestSGDAndAdamConverge(t *testing.T) {
	for _, tc := range []struct {
		name string
		mk   func() Optimizer
	}{
		{"sgd", func() Optimizer { return NewSGD(0.1, 0) }},
		{"sgd-momentum", func() Optimizer { return NewSGD(0.05, 0.9) }},
		{"adam", func() Optimizer { return NewAdam(0.1) }},
	} {
		p := tensor.NewParam("p", tensor.FromSlice(1, 2, []float64{5, -3}))
		opt := tc.mk()
		for i := 0; i < 300; i++ {
			tp := tensor.NewTape()
			loss := tp.SumSquares(tp.Param(p))
			tp.Backward(loss)
			opt.Step([]*tensor.Param{p})
		}
		for _, v := range p.Value.Data {
			if math.Abs(v) > 1e-2 {
				t.Fatalf("%s did not converge: %v", tc.name, p.Value.Data)
			}
		}
	}
}

func TestClipGradNorm(t *testing.T) {
	p := tensor.NewParam("p", tensor.NewMatrix(1, 2))
	p.Grad.Data[0], p.Grad.Data[1] = 3, 4 // norm 5
	norm := ClipGradNorm([]*tensor.Param{p}, 1)
	if math.Abs(norm-5) > 1e-12 {
		t.Fatalf("pre-clip norm = %v, want 5", norm)
	}
	var after float64
	for _, g := range p.Grad.Data {
		after += g * g
	}
	if math.Abs(math.Sqrt(after)-1) > 1e-9 {
		t.Fatalf("post-clip norm = %v, want 1", math.Sqrt(after))
	}
}

func TestSaveLoadRoundtrip(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	l1 := NewLinear("a", 3, 4, rng)
	l2 := NewLinear("b", 4, 2, rng)
	params := CollectParams(l1, l2)
	var buf bytes.Buffer
	if err := SaveParams(&buf, params); err != nil {
		t.Fatal(err)
	}
	// Perturb, then restore.
	want := make([][]float64, len(params))
	for i, p := range params {
		want[i] = append([]float64(nil), p.Value.Data...)
		p.Value.Fill(99)
	}
	if err := LoadParams(&buf, params); err != nil {
		t.Fatal(err)
	}
	for i, p := range params {
		for j, v := range p.Value.Data {
			if v != want[i][j] {
				t.Fatalf("param %s not restored", p.Name)
			}
		}
	}
}

func TestLoadParamsRejectsMismatch(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	src := NewLinear("a", 3, 4, rng)
	var buf bytes.Buffer
	if err := SaveParams(&buf, src.Params()); err != nil {
		t.Fatal(err)
	}
	other := NewLinear("zz", 3, 4, rng)
	if err := LoadParams(&buf, other.Params()); err == nil {
		t.Fatal("expected name-mismatch error")
	}
	var buf2 bytes.Buffer
	if err := SaveParams(&buf2, src.Params()); err != nil {
		t.Fatal(err)
	}
	wrongShape := NewLinear("a", 4, 4, rng)
	if err := LoadParams(&buf2, wrongShape.Params()); err == nil {
		t.Fatal("expected shape-mismatch error")
	}
}

func TestMultiHeadRejectsIndivisibleHeads(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for 7 dims / 2 heads")
		}
	}()
	NewMultiHeadAttention("att", 7, 2, MaskFull, rng)
}

func TestAttentionWeightsCaptured(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	att := NewMultiHeadAttention("att", 4, 2, MaskBidirectionalExceptSelf, rng)
	input := tensor.NewRandN(3, 4, 1, rng)
	tp := tensor.NewTape()
	att.Forward(tp, tp.Const(input))
	if att.LastWeights() != nil {
		t.Fatal("weights captured without Capture enabled")
	}
	att.Capture = true
	tp = tensor.NewTape()
	att.Forward(tp, tp.Const(input))
	ws := att.LastWeights()
	if len(ws) != 2 {
		t.Fatalf("weights for %d heads, want 2", len(ws))
	}
	for _, w := range ws {
		if w.Rows != 3 || w.Cols != 3 {
			t.Fatalf("weight shape %dx%d, want 3x3", w.Rows, w.Cols)
		}
		for r := 0; r < 3; r++ {
			var sum float64
			for _, v := range w.Row(r) {
				sum += v
			}
			if math.Abs(sum-1) > 1e-9 {
				t.Fatalf("attention row %d sums to %v", r, sum)
			}
		}
		// Masked cell (0,1) must carry ~zero weight.
		if w.At(0, 1) > 1e-6 {
			t.Fatalf("masked cell has weight %v", w.At(0, 1))
		}
	}
}
