package nn

import (
	"math"

	"github.com/ucad/ucad/internal/tensor"
)

// Optimizer updates parameters from their accumulated gradients.
//
// Step is agnostic to how p.Grad was produced: a single tape backward
// pass (sequential SGD) or an externally reduced sum over data-parallel
// workers (see AccumulateGrads) — it consumes whatever gradient is
// accumulated and zeroes it. Callers that shard a mini-batch across
// workers therefore reduce first and call Step exactly once per batch.
type Optimizer interface {
	// Step applies one update and zeroes the gradients.
	Step(params []*tensor.Param)
}

// SGD is stochastic gradient descent with optional momentum, the
// optimizer the paper names for training Trans-DAS (§5.2).
type SGD struct {
	LR       float64
	Momentum float64

	velocity map[*tensor.Param][]float64
}

// NewSGD returns an SGD optimizer with the given learning rate.
func NewSGD(lr, momentum float64) *SGD {
	return &SGD{LR: lr, Momentum: momentum, velocity: make(map[*tensor.Param][]float64)}
}

// Step implements Optimizer.
func (o *SGD) Step(params []*tensor.Param) {
	for _, p := range params {
		if o.Momentum == 0 {
			for i, g := range p.Grad.Data {
				p.Value.Data[i] -= o.LR * g
			}
		} else {
			v := o.velocity[p]
			if v == nil {
				v = make([]float64, len(p.Value.Data))
				o.velocity[p] = v
			}
			for i, g := range p.Grad.Data {
				v[i] = o.Momentum*v[i] + g
				p.Value.Data[i] -= o.LR * v[i]
			}
		}
		p.ZeroGrad()
	}
}

// Adam is the Adam optimizer (Kingma & Ba); used for the DeepLog and
// USAD baselines where plain SGD converges too slowly for CI budgets.
type Adam struct {
	LR, Beta1, Beta2, Eps float64

	t int
	m map[*tensor.Param][]float64
	v map[*tensor.Param][]float64
}

// NewAdam returns an Adam optimizer with standard moment coefficients.
func NewAdam(lr float64) *Adam {
	return &Adam{
		LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8,
		m: make(map[*tensor.Param][]float64),
		v: make(map[*tensor.Param][]float64),
	}
}

// Step implements Optimizer.
func (o *Adam) Step(params []*tensor.Param) {
	o.t++
	bc1 := 1 - math.Pow(o.Beta1, float64(o.t))
	bc2 := 1 - math.Pow(o.Beta2, float64(o.t))
	for _, p := range params {
		m := o.m[p]
		v := o.v[p]
		if m == nil {
			m = make([]float64, len(p.Value.Data))
			v = make([]float64, len(p.Value.Data))
			o.m[p], o.v[p] = m, v
		}
		for i, g := range p.Grad.Data {
			m[i] = o.Beta1*m[i] + (1-o.Beta1)*g
			v[i] = o.Beta2*v[i] + (1-o.Beta2)*g*g
			p.Value.Data[i] -= o.LR * (m[i] / bc1) / (math.Sqrt(v[i]/bc2) + o.Eps)
		}
		p.ZeroGrad()
	}
}
