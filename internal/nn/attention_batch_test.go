package nn

import (
	"math"
	"math/rand"
	"testing"

	"github.com/ucad/ucad/internal/tensor"
)

// TestForwardBatchMatchesSequential stacks several sequences, pads them
// to a common length, and checks that every real output row of one
// ForwardBatch pass equals the row produced by an independent Forward
// over that sequence alone. This is the core guarantee behind the
// batch-first scoring API: padding and batching change nothing about
// Eq. 2–4's per-sequence results.
func TestForwardBatchMatchesSequential(t *testing.T) {
	for _, kind := range []MaskKind{MaskBidirectionalExceptSelf, MaskFull, MaskFuture} {
		rng := rand.New(rand.NewSource(41))
		const dim, L = 8, 6
		att := NewMultiHeadAttention("att", dim, 2, kind, rng)
		lengths := []int{1, 3, 6, 4}
		batch := len(lengths)

		// One random embedding row per real position; padded rows zero,
		// mirroring the PadKey embedding.
		seqs := make([]*tensor.Matrix, batch)
		stacked := tensor.NewMatrix(batch*L, dim)
		for b, n := range lengths {
			seqs[b] = tensor.NewRandN(n, dim, 1, rng)
			for i := 0; i < n; i++ {
				copy(stacked.Row(b*L+i), seqs[b].Row(i))
			}
		}

		tp := tensor.NewTape()
		mask := BuildBatchMask(kind, batch, L, lengths)
		out := att.ForwardBatch(tp, tp.Const(stacked), batch, mask).Value

		for b, n := range lengths {
			tps := tensor.NewTape()
			want := att.Forward(tps, tps.Const(seqs[b])).Value
			for i := 0; i < n; i++ {
				got, ref := out.Row(b*L+i), want.Row(i)
				for c := range ref {
					if d := math.Abs(got[c] - ref[c]); d > 1e-12 {
						t.Fatalf("mask %v seq %d row %d col %d: batched %g vs sequential %g (diff %g)",
							kind, b, i, c, got[c], ref[c], d)
					}
				}
			}
		}
	}
}

// TestBatchMaskZeroesPaddedColumns checks the padding-mask mechanism
// directly: post-softmax attention weights on padded key positions are
// exactly zero, so padding cannot leak into real positions even at
// float64 round-off scale.
func TestBatchMaskZeroesPaddedColumns(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const dim, L, batch = 4, 5, 2
	att := NewMultiHeadAttention("att", dim, 1, MaskBidirectionalExceptSelf, rng)
	att.Capture = true
	lengths := []int{2, 4}

	stacked := tensor.NewRandN(batch*L, dim, 1, rng)
	tp := tensor.NewTape()
	att.ForwardBatch(tp, tp.Const(stacked), batch, BuildBatchMask(att.Mask, batch, L, lengths))

	for _, w := range att.LastWeights() {
		if w.Rows != batch*L || w.Cols != L {
			t.Fatalf("captured weights %dx%d, want %dx%d", w.Rows, w.Cols, batch*L, L)
		}
		for b, n := range lengths {
			for i := 0; i < L; i++ {
				row := w.Row(b*L + i)
				var sum float64
				for j, v := range row {
					if j >= n && v != 0 {
						t.Fatalf("seq %d row %d attends padded col %d with weight %g", b, i, j, v)
					}
					sum += v
				}
				if math.Abs(sum-1) > 1e-12 {
					t.Fatalf("seq %d row %d weights sum to %g", b, i, sum)
				}
			}
		}
	}
}
