package nn

import (
	"math/rand"

	"github.com/ucad/ucad/internal/tensor"
)

// LSTMCell is a standard long short-term memory cell. It exists to
// implement the DeepLog baseline faithfully (DeepLog stacks LSTM layers
// over log-key sequences and predicts the next key).
type LSTMCell struct {
	// Wx maps input (in) to the four gates (4*hidden); Wh maps the
	// previous hidden state; B is the gate bias. Gate order: i, f, g, o.
	Wx, Wh, B *tensor.Param
	Hidden    int
}

// NewLSTMCell creates a cell with the given input and hidden sizes. The
// forget-gate bias is initialized to 1, the usual trick for stable
// early training.
func NewLSTMCell(name string, in, hidden int, rng *rand.Rand) *LSTMCell {
	b := tensor.NewMatrix(1, 4*hidden)
	for i := hidden; i < 2*hidden; i++ {
		b.Data[i] = 1
	}
	return &LSTMCell{
		Wx:     tensor.NewParam(name+".Wx", tensor.NewXavier(in, 4*hidden, rng)),
		Wh:     tensor.NewParam(name+".Wh", tensor.NewXavier(hidden, 4*hidden, rng)),
		B:      tensor.NewParam(name+".B", b),
		Hidden: hidden,
	}
}

// Step advances the cell one timestep. x is 1 x in; h and c are 1 x
// hidden (pass nil for the zero initial state). It returns the new
// hidden and cell states.
func (l *LSTMCell) Step(tp *tensor.Tape, x, h, c *tensor.Node) (hNew, cNew *tensor.Node) {
	if h == nil {
		h = tp.Const(tensor.NewMatrix(1, l.Hidden))
	}
	if c == nil {
		c = tp.Const(tensor.NewMatrix(1, l.Hidden))
	}
	gates := tp.AddRowVec(
		tp.Add(tp.MatMul(x, tp.Param(l.Wx)), tp.MatMul(h, tp.Param(l.Wh))),
		tp.Param(l.B))
	hd := l.Hidden
	i := tp.Sigmoid(tp.SliceCols(gates, 0, hd))
	f := tp.Sigmoid(tp.SliceCols(gates, hd, 2*hd))
	g := tp.Tanh(tp.SliceCols(gates, 2*hd, 3*hd))
	o := tp.Sigmoid(tp.SliceCols(gates, 3*hd, 4*hd))
	cNew = tp.Add(tp.Mul(f, c), tp.Mul(i, g))
	hNew = tp.Mul(o, tp.Tanh(cNew))
	return hNew, cNew
}

// Params implements Module.
func (l *LSTMCell) Params() []*tensor.Param { return []*tensor.Param{l.Wx, l.Wh, l.B} }
