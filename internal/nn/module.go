// Package nn provides neural-network layers, optimizers and parameter
// persistence on top of the tensor autodiff engine.
//
// The layers implement exactly the components of the paper's §4:
// order-free embedding (Eq. 1), masked multi-head self-attention
// (Eqs. 2–4), the regularized residual sub-layer (Eqs. 5–6) and the
// point-wise feed-forward layer (Eq. 7). An LSTM cell is included for
// the DeepLog baseline.
package nn

import (
	"bufio"
	"encoding/gob"
	"fmt"
	"io"
	"math"

	"github.com/ucad/ucad/internal/tensor"
)

// Module is anything owning trainable parameters.
type Module interface {
	Params() []*tensor.Param
}

// CollectParams flattens the parameters of several modules.
func CollectParams(ms ...Module) []*tensor.Param {
	var out []*tensor.Param
	for _, m := range ms {
		out = append(out, m.Params()...)
	}
	return out
}

// ZeroGrads clears the gradient of every parameter.
func ZeroGrads(params []*tensor.Param) {
	for _, p := range params {
		p.ZeroGrad()
	}
}

// AccumulateGrads folds externally held gradient buffers into the
// parameters' shared gradients: params[i].Grad += grads[i]. Data-parallel
// trainers call it once per worker in a fixed worker order before the
// optimizer step, so the reduced mini-batch gradient is a reproducible
// floating-point sum. grads must align with params index-for-index.
func AccumulateGrads(params []*tensor.Param, grads []*tensor.Matrix) {
	if len(grads) != len(params) {
		panic(fmt.Sprintf("nn: %d gradient buffers for %d params", len(grads), len(params)))
	}
	for i, p := range params {
		tensor.AddInto(p.Grad, grads[i])
	}
}

// ClipGradNorm rescales all gradients so their global L2 norm is at most
// max. It returns the pre-clip norm.
func ClipGradNorm(params []*tensor.Param, max float64) float64 {
	var sq float64
	for _, p := range params {
		for _, g := range p.Grad.Data {
			sq += g * g
		}
	}
	norm := math.Sqrt(sq)
	if max > 0 && norm > max {
		scale := max / (norm + 1e-12)
		for _, p := range params {
			for i := range p.Grad.Data {
				p.Grad.Data[i] *= scale
			}
		}
	}
	return norm
}

// paramBlob is the on-disk representation of one parameter.
type paramBlob struct {
	Name       string
	Rows, Cols int
	Data       []float64
}

// SaveParams serializes parameters (by name) to w using gob.
func SaveParams(w io.Writer, params []*tensor.Param) error {
	blobs := make([]paramBlob, len(params))
	for i, p := range params {
		blobs[i] = paramBlob{Name: p.Name, Rows: p.Value.Rows, Cols: p.Value.Cols, Data: p.Value.Data}
	}
	return gob.NewEncoder(w).Encode(blobs)
}

// LoadParams restores parameter values saved by SaveParams. Every stored
// blob must match a parameter with the same name and shape.
func LoadParams(r io.Reader, params []*tensor.Param) error {
	// Keep reads byte-exact so this decoder cannot buffer past its own
	// gob messages when the stream continues after the parameters.
	if _, ok := r.(io.ByteReader); !ok {
		r = bufio.NewReader(r)
	}
	var blobs []paramBlob
	if err := gob.NewDecoder(r).Decode(&blobs); err != nil {
		return fmt.Errorf("nn: decode params: %w", err)
	}
	byName := make(map[string]*tensor.Param, len(params))
	for _, p := range params {
		if _, dup := byName[p.Name]; dup {
			return fmt.Errorf("nn: duplicate parameter name %q", p.Name)
		}
		byName[p.Name] = p
	}
	if len(blobs) != len(params) {
		return fmt.Errorf("nn: stored %d params, model has %d", len(blobs), len(params))
	}
	for _, b := range blobs {
		p, ok := byName[b.Name]
		if !ok {
			return fmt.Errorf("nn: stored parameter %q not in model", b.Name)
		}
		if p.Value.Rows != b.Rows || p.Value.Cols != b.Cols {
			return fmt.Errorf("nn: parameter %q shape %dx%d, stored %dx%d",
				b.Name, p.Value.Rows, p.Value.Cols, b.Rows, b.Cols)
		}
		copy(p.Value.Data, b.Data)
	}
	return nil
}
