package sqlnorm

import "strings"

// Abstract rewrites a SQL statement into its template form: every
// literal (number, quoted string, or pre-existing placeholder) becomes a
// sequentially numbered "$k" placeholder, comments are stripped and
// whitespace is normalized. Keywords are upper-cased and identifiers
// preserved, so templates are stable across formatting differences but
// still distinguish fine-grained statement variants.
//
//	Abstract("Update T_content set count=23 where danmuKey=94")
//	  == "UPDATE T_content SET count = $1 WHERE danmuKey = $2"
//
// Abstract keeps one placeholder per literal position, so IN lists of
// different lengths are distinct templates — the paper's Figure 6
// semantics, which Scenario-II's Table 1 key counts depend on. The
// streaming front door uses AbstractDynamic instead, which collapses
// those variants.
func Abstract(sql string) string {
	return render(lex(sql))
}

// AbstractDynamic is Abstract plus ADALog-style dynamic-template
// collapsing: a variable-length IN list of literals becomes the single
// form "IN (...)", so "x IN (1, 2)" and "x IN ('a', 'b', 'c')" share
// one template key regardless of list length or literal kind. Subquery
// and column-reference IN bodies are left alone — only pure
// literal/placeholder lists collapse.
func AbstractDynamic(sql string) string {
	return render(collapseInLists(lex(sql)))
}

// render emits the normalized template text for a token stream.
func render(toks []token) string {
	var b strings.Builder
	placeholder := 0
	for i, tok := range toks {
		text := tok.text
		switch tok.kind {
		case tokNumber, tokString, tokPlaceholder:
			placeholder++
			text = "$" + itoa(placeholder)
		case tokWord:
			if isKeyword(text) {
				text = strings.ToUpper(text)
			}
		}
		if i > 0 && needsSpace(toks[i-1], tok) {
			b.WriteByte(' ')
		}
		b.WriteString(text)
	}
	return b.String()
}

// collapseInLists rewrites every "IN ( lit [, lit]* )" token run into
// "IN (...)". The body must consist solely of literal-like tokens
// (numbers, strings, placeholders) separated by commas, with at least
// one literal — anything else (subqueries, column references, empty
// parens) is kept verbatim. The "..." marker lexes back to plain "."
// symbols with no literals, so re-abstraction is a no-op and templates
// stay idempotent.
func collapseInLists(toks []token) []token {
	out := toks[:0:0]
	for i := 0; i < len(toks); i++ {
		if !isInKeyword(toks[i]) || i+1 >= len(toks) || toks[i+1].text != "(" {
			out = append(out, toks[i])
			continue
		}
		j := i + 2 // first token inside the parens
		lits, ok := 0, true
		for ; j < len(toks) && toks[j].text != ")"; j++ {
			switch {
			case toks[j].kind == tokNumber || toks[j].kind == tokString || toks[j].kind == tokPlaceholder:
				lits++
			case toks[j].kind == tokSymbol && toks[j].text == ",":
			default:
				ok = false
			}
			if !ok {
				break
			}
		}
		if !ok || lits == 0 || j >= len(toks) {
			out = append(out, toks[i])
			continue
		}
		out = append(out,
			toks[i],
			token{tokSymbol, "("},
			token{tokSymbol, "..."},
			token{tokSymbol, ")"},
		)
		i = j // skip to the closing paren; loop increment moves past it
	}
	return out
}

// isInKeyword reports whether tok is the IN keyword (any case).
func isInKeyword(tok token) bool {
	return tok.kind == tokWord && strings.EqualFold(tok.text, "in")
}

// needsSpace decides whether to emit a separating space between two
// tokens in the normalized rendering.
func needsSpace(prev, cur token) bool {
	tight := func(t token) bool {
		switch t.text {
		case "(", ")", ",", ".", ";":
			return true
		}
		return false
	}
	if cur.text == "," || cur.text == ")" || cur.text == "." || cur.text == ";" {
		return false
	}
	if prev.text == "(" || prev.text == "." {
		return false
	}
	_ = tight
	return true
}

// itoa avoids pulling strconv into the hot path for tiny ints.
func itoa(n int) string {
	if n < 10 {
		return string([]byte{byte('0' + n)})
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// sqlKeywords is the subset of keywords we normalize; identifiers not in
// this set keep their original case so that look-alike table names stay
// distinct.
var sqlKeywords = map[string]bool{
	"select": true, "insert": true, "update": true, "delete": true,
	"create": true, "drop": true, "alter": true, "table": true,
	"from": true, "where": true, "into": true, "values": true,
	"set": true, "and": true, "or": true, "not": true, "in": true,
	"like": true, "between": true, "order": true, "by": true,
	"group": true, "having": true, "limit": true, "offset": true,
	"join": true, "inner": true, "left": true, "right": true,
	"outer": true, "on": true, "as": true, "distinct": true,
	"null": true, "is": true, "asc": true, "desc": true,
	"primary": true, "key": true, "int": true, "integer": true,
	"float": true, "real": true, "text": true, "varchar": true,
	"count": false, // common column name in the paper's examples
}

func isKeyword(w string) bool { return sqlKeywords[strings.ToLower(w)] }

// CommandOf returns the upper-cased leading command of a template
// ("SELECT", "INSERT", "UPDATE", "DELETE", …), or "" for an empty
// statement.
func CommandOf(template string) string {
	fields := strings.Fields(template)
	if len(fields) == 0 {
		return ""
	}
	return strings.ToUpper(fields[0])
}

// TableOf extracts the primary table a template operates on: the word
// after FROM (SELECT/DELETE), after INTO (INSERT), after UPDATE, or
// after TABLE (CREATE/DROP/ALTER). Returns "" when no table is found.
func TableOf(template string) string {
	fields := strings.Fields(template)
	anchor := ""
	switch CommandOf(template) {
	case "SELECT", "DELETE":
		anchor = "FROM"
	case "INSERT":
		anchor = "INTO"
	case "UPDATE":
		return wordAfter(fields, 0)
	case "CREATE", "DROP", "ALTER":
		anchor = "TABLE"
	default:
		return ""
	}
	for i, f := range fields {
		if strings.EqualFold(f, anchor) {
			return wordAfter(fields, i)
		}
	}
	return ""
}

// wordAfter returns fields[i+1] stripped of trailing punctuation such as
// "(" introduced by INSERT INTO t(cols…).
func wordAfter(fields []string, i int) string {
	if i+1 >= len(fields) {
		return ""
	}
	w := fields[i+1]
	if p := strings.IndexAny(w, "(,;"); p >= 0 {
		w = w[:p]
	}
	return w
}
