package sqlnorm

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
)

// PadKey is the reserved statement key k0: padding and statements never
// seen during training (§5.1).
const PadKey = 0

// UnknownKey is the reserved key that out-of-vocabulary statements map
// to at the serving boundary. It shares the k0 slot with PadKey by the
// paper's construction: the model scores k0 like any key but never
// ranks it in the top-p, so an unseen template is always flagged —
// scored, never top-ranked, never an ingest error.
const UnknownKey = PadKey

// dynamicMarker occupies the reserved k0 slot of a serialized dynamic
// vocabulary. The k0 template is never matched or returned to callers,
// so the slot doubles as the mode flag without a format break: classic
// saves carry "" there, dynamic saves carry this marker.
const dynamicMarker = "#dynamic"

// Vocabulary maps statement templates to unique integer keys starting at
// k1. It is safe for concurrent use: training builds it, online
// detection reads it from many sessions.
type Vocabulary struct {
	mu        sync.RWMutex
	keyOf     map[string]int
	templates []string // templates[0] is the k0 slot ("" or dynamicMarker)
}

// NewVocabulary returns an empty vocabulary with k0 reserved, using the
// paper's classic abstraction (one placeholder per literal position).
func NewVocabulary() *Vocabulary {
	return &Vocabulary{
		keyOf:     make(map[string]int),
		templates: []string{""},
	}
}

// NewDynamicVocabulary returns an empty vocabulary that abstracts with
// AbstractDynamic: variable-length IN lists collapse to one template,
// so the streaming front door keys them identically however many
// literals a client sends.
func NewDynamicVocabulary() *Vocabulary {
	return &Vocabulary{
		keyOf:     make(map[string]int),
		templates: []string{dynamicMarker},
	}
}

// Dynamic reports whether the vocabulary uses dynamic templates.
func (v *Vocabulary) Dynamic() bool {
	v.mu.RLock()
	defer v.mu.RUnlock()
	return v.templates[0] == dynamicMarker
}

// abstract applies the vocabulary's abstraction mode.
func (v *Vocabulary) abstract(sql string) string {
	if v.Dynamic() {
		return AbstractDynamic(sql)
	}
	return Abstract(sql)
}

// Learn abstracts the statement and returns its key, assigning the next
// free key if the template is new.
func (v *Vocabulary) Learn(sql string) int {
	template := v.abstract(sql)
	v.mu.Lock()
	defer v.mu.Unlock()
	if k, ok := v.keyOf[template]; ok {
		return k
	}
	k := len(v.templates)
	v.keyOf[template] = k
	v.templates = append(v.templates, template)
	return k
}

// Key abstracts the statement and returns its key, or PadKey if the
// template was never learned (a "newly appeared statement" in the
// paper's terms).
func (v *Vocabulary) Key(sql string) int {
	template := v.abstract(sql)
	v.mu.RLock()
	defer v.mu.RUnlock()
	return v.keyOf[template]
}

// Template returns the template text for a key ("" for PadKey or
// out-of-range keys).
func (v *Vocabulary) Template(key int) string {
	v.mu.RLock()
	defer v.mu.RUnlock()
	if key <= 0 || key >= len(v.templates) {
		return ""
	}
	return v.templates[key]
}

// Size returns the number of keys including the reserved k0 slot; valid
// statement keys are 1..Size()-1.
func (v *Vocabulary) Size() int {
	v.mu.RLock()
	defer v.mu.RUnlock()
	return len(v.templates)
}

// Templates returns a copy of all learned templates indexed by key
// (index 0 is the reserved k0 slot: "" classic, "#dynamic" dynamic).
func (v *Vocabulary) Templates() []string {
	v.mu.RLock()
	defer v.mu.RUnlock()
	return append([]string(nil), v.templates...)
}

// Save serializes the vocabulary as JSON.
func (v *Vocabulary) Save(w io.Writer) error {
	v.mu.RLock()
	defer v.mu.RUnlock()
	return json.NewEncoder(w).Encode(v.templates)
}

// LoadVocabulary reads a vocabulary saved by Save. The abstraction mode
// travels in the reserved k0 slot, so a dynamic vocabulary round-trips
// as dynamic.
func LoadVocabulary(r io.Reader) (*Vocabulary, error) {
	var templates []string
	if err := json.NewDecoder(r).Decode(&templates); err != nil {
		return nil, fmt.Errorf("sqlnorm: decode vocabulary: %w", err)
	}
	return FromTemplates(templates)
}

// FromTemplates rebuilds a vocabulary from a Templates() slice (as
// persisted by Save or a model checkpoint).
func FromTemplates(templates []string) (*Vocabulary, error) {
	if len(templates) == 0 || (templates[0] != "" && templates[0] != dynamicMarker) {
		return nil, fmt.Errorf("sqlnorm: vocabulary missing reserved k0 slot")
	}
	templates = append([]string(nil), templates...)
	v := &Vocabulary{keyOf: make(map[string]int, len(templates)), templates: templates}
	for k, tpl := range templates[1:] {
		v.keyOf[tpl] = k + 1
	}
	return v, nil
}
