package sqlnorm

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

func TestAbstractPaperExample(t *testing.T) {
	got := Abstract("Update T_content set count=23 where danmuKey=94")
	want := "UPDATE T_content SET count = $1 WHERE danmuKey = $2"
	if got != want {
		t.Fatalf("Abstract = %q, want %q", got, want)
	}
}

func TestAbstractDistinguishesColumnNames(t *testing.T) {
	a := Abstract("delete from t_mac where normal_mac=1")
	b := Abstract("delete from t_mac where abnormal_mac=1")
	if a == b {
		t.Fatalf("templates must differ: %q", a)
	}
}

func TestAbstractLiterals(t *testing.T) {
	cases := []struct{ in, want string }{
		{"SELECT * FROM t WHERE a=1 AND b='x'", "SELECT * FROM t WHERE a = $1 AND b = $2"},
		{"SELECT * FROM t WHERE s='it''s'", "SELECT * FROM t WHERE s = $1"},
		{`SELECT * FROM t WHERE s="dq"`, "SELECT * FROM t WHERE s = $1"},
		{"SELECT * FROM t WHERE x IN (1, 2, 3)", "SELECT * FROM t WHERE x IN ($1, $2, $3)"},
		{"SELECT * FROM t WHERE f=3.14 OR g=1e-3", "SELECT * FROM t WHERE f = $1 OR g = $2"},
		{"SELECT * FROM t WHERE a=? AND b=$5", "SELECT * FROM t WHERE a = $1 AND b = $2"},
		{"SELECT * FROM t -- trailing comment\nWHERE a=1", "SELECT * FROM t WHERE a = $1"},
		{"SELECT /* hi */ * FROM t", "SELECT * FROM t"},
		{"select a.b from t", "SELECT a.b FROM t"},
		{"INSERT INTO t(a, b) VALUES (1, 2)", "INSERT INTO t (a, b) VALUES ($1, $2)"},
		{"", ""},
	}
	for _, tc := range cases {
		if got := Abstract(tc.in); got != tc.want {
			t.Errorf("Abstract(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

func TestAbstractDynamicInListCollapse(t *testing.T) {
	cases := []struct {
		name, in, want string
	}{
		{"single", "SELECT * FROM t WHERE x IN (1)", "SELECT * FROM t WHERE x IN (...)"},
		{"many", "SELECT * FROM t WHERE x IN (1, 2, 3, 4, 5)", "SELECT * FROM t WHERE x IN (...)"},
		{"strings", "SELECT * FROM t WHERE x IN ('a', 'b')", "SELECT * FROM t WHERE x IN (...)"},
		{"mixed", "SELECT * FROM t WHERE x IN (1, 'a', 2.5)", "SELECT * FROM t WHERE x IN (...)"},
		{"placeholders", "SELECT * FROM t WHERE x IN (?, ?, $3)", "SELECT * FROM t WHERE x IN (...)"},
		{"not in", "DELETE FROM t WHERE x NOT IN (1, 2)", "DELETE FROM t WHERE x NOT IN (...)"},
		{"lowercase", "select * from t where x in (7, 8)", "SELECT * FROM t WHERE x IN (...)"},
		{"tail literal renumbers", "SELECT * FROM t WHERE x IN (1, 2) AND y = 9", "SELECT * FROM t WHERE x IN (...) AND y = $1"},
		{"subquery untouched", "SELECT * FROM t WHERE x IN (SELECT id FROM u)", "SELECT * FROM t WHERE x IN (SELECT id FROM u)"},
		{"column list untouched", "SELECT * FROM t WHERE x IN (a, b)", "SELECT * FROM t WHERE x IN (a, b)"},
		{"empty untouched", "SELECT * FROM t WHERE x IN ()", "SELECT * FROM t WHERE x IN ()"},
		{"unclosed untouched", "SELECT * FROM t WHERE x IN (1, 2", "SELECT * FROM t WHERE x IN ($1, $2"},
		{"in as column name", "SELECT in FROM t", "SELECT IN FROM t"},
	}
	for _, tc := range cases {
		if got := AbstractDynamic(tc.in); got != tc.want {
			t.Errorf("%s: AbstractDynamic(%q) = %q, want %q", tc.name, tc.in, got, tc.want)
		}
	}
}

// Dynamic abstraction must stay idempotent: the "(...)" marker re-lexes
// to plain symbols, so re-abstracting a collapsed template is a no-op.
func TestAbstractDynamicIdempotent(t *testing.T) {
	stmts := []string{
		"SELECT * FROM t WHERE x IN (1, 2, 3) AND y = 4",
		"DELETE FROM t WHERE x NOT IN ('a', 'b')",
		"SELECT * FROM t WHERE x IN (SELECT id FROM u WHERE v = 1)",
	}
	for _, s := range stmts {
		once := AbstractDynamic(s)
		twice := AbstractDynamic(once)
		if once != twice {
			t.Errorf("not idempotent: %q -> %q", once, twice)
		}
	}
}

// The ADALog-style dynamic-template property: list length and literal
// kind never split templates, so every variant keys identically.
func TestAbstractInListVariantsShareTemplate(t *testing.T) {
	variants := []string{
		"SELECT * FROM t WHERE x IN (1)",
		"SELECT * FROM t WHERE x IN (1, 2, 3)",
		"SELECT * FROM t WHERE x IN (1, 2, 3, 4, 5, 6, 7, 8)",
		"SELECT * FROM t WHERE x IN ('a', 'bb', 'ccc')",
		"SELECT * FROM t WHERE x IN (1, 'mixed', 2.71)",
		"select * from t where x in (?, ?)",
	}
	base := AbstractDynamic(variants[0])
	for _, v := range variants[1:] {
		if got := AbstractDynamic(v); got != base {
			t.Errorf("AbstractDynamic(%q) = %q, want shared template %q", v, got, base)
		}
	}
	v := NewDynamicVocabulary()
	k := v.Learn(variants[0])
	for _, s := range variants[1:] {
		if got := v.Key(s); got != k {
			t.Errorf("Key(%q) = %d, want %d", s, got, k)
		}
	}
}

// Numeric and quoted literal variants of the same statement shape must
// share one template key.
func TestAbstractNumericVsQuotedShareTemplate(t *testing.T) {
	pairs := [][2]string{
		{"SELECT * FROM t WHERE a = 1", "SELECT * FROM t WHERE a = 'one'"},
		{"UPDATE t SET c = 3.14 WHERE k = 9", `UPDATE t SET c = "pi" WHERE k = 'nine'`},
	}
	for _, p := range pairs {
		if a, b := Abstract(p[0]), Abstract(p[1]); a != b {
			t.Errorf("Abstract(%q) = %q but Abstract(%q) = %q; want identical", p[0], a, p[1], b)
		}
	}
	// Under dynamic templates even different-length IN lists unify.
	a := AbstractDynamic("DELETE FROM t WHERE x IN (1, 2)")
	b := AbstractDynamic("DELETE FROM t WHERE x IN ('a', 'b', 'c')")
	if a != b {
		t.Errorf("dynamic templates differ: %q vs %q", a, b)
	}
}

func TestAbstractWhitespaceInvariance(t *testing.T) {
	a := Abstract("SELECT  *\n FROM\tt WHERE a=1")
	b := Abstract("SELECT * FROM t WHERE a=2")
	if a != b {
		t.Fatalf("whitespace/literal variants should share a template: %q vs %q", a, b)
	}
}

// Property: abstraction is idempotent — abstracting a template yields
// the same template (placeholders renumber to themselves).
func TestAbstractIdempotent(t *testing.T) {
	stmts := []string{
		"SELECT * FROM t WHERE a=1 AND b='x'",
		"INSERT INTO danmu_display(vid, uid, text) VALUES (1, 2, 'hello')",
		"UPDATE t_cell_fp_9 SET fps=3 WHERE pnci=77",
		"DELETE FROM loc_rm WHERE dev='d' AND ts<100",
		"SELECT * FROM t WHERE x IN (1, 2, 3) AND y = 4",
	}
	for _, s := range stmts {
		once := Abstract(s)
		twice := Abstract(once)
		if once != twice {
			t.Errorf("not idempotent: %q -> %q", once, twice)
		}
	}
}

// Property: Abstract never panics on arbitrary input.
func TestAbstractTotal(t *testing.T) {
	f := func(s string) bool {
		_ = Abstract(s)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestAbstractUnterminatedString(t *testing.T) {
	got := Abstract("SELECT * FROM t WHERE s='unterminated")
	if !strings.Contains(got, "$1") {
		t.Fatalf("unterminated literal should still become a placeholder: %q", got)
	}
}

func TestCommandOf(t *testing.T) {
	cases := map[string]string{
		"SELECT * FROM t":         "SELECT",
		"insert into t values(1)": "INSERT",
		"Update t set a=1":        "UPDATE",
		"DELETE FROM t":           "DELETE",
		"":                        "",
	}
	for in, want := range cases {
		if got := CommandOf(in); got != want {
			t.Errorf("CommandOf(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestTableOf(t *testing.T) {
	cases := map[string]string{
		"SELECT * FROM t_rm_mac WHERE a = $1":             "t_rm_mac",
		"INSERT INTO danmu_display(a, b) VALUES ($1, $2)": "danmu_display",
		"UPDATE T_content SET count = $1":                 "T_content",
		"DELETE FROM loc_rm WHERE x = $1":                 "loc_rm",
		"CREATE TABLE users (id INT)":                     "users",
		"SELECT 1":                                        "",
	}
	for in, want := range cases {
		if got := TableOf(in); got != want {
			t.Errorf("TableOf(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestVocabularyAssignsStableKeys(t *testing.T) {
	v := NewVocabulary()
	k1 := v.Learn("SELECT * FROM a WHERE x=1")
	k2 := v.Learn("SELECT * FROM b WHERE x=1")
	k1again := v.Learn("SELECT * FROM a WHERE x=999") // same template
	if k1 != 1 || k2 != 2 {
		t.Fatalf("keys = %d, %d; want 1, 2", k1, k2)
	}
	if k1again != k1 {
		t.Fatalf("same template must reuse key: %d vs %d", k1again, k1)
	}
	if v.Size() != 3 { // k0 + two templates
		t.Fatalf("Size = %d, want 3", v.Size())
	}
}

func TestVocabularyUnknownIsPadKey(t *testing.T) {
	v := NewVocabulary()
	v.Learn("SELECT * FROM a")
	if k := v.Key("DROP TABLE a"); k != PadKey {
		t.Fatalf("unknown statement key = %d, want PadKey", k)
	}
	if k := v.Key("SELECT * FROM a"); k != 1 {
		t.Fatalf("known statement key = %d, want 1", k)
	}
}

func TestVocabularyTemplateLookup(t *testing.T) {
	v := NewVocabulary()
	k := v.Learn("SELECT * FROM a WHERE x=1")
	if tpl := v.Template(k); tpl != "SELECT * FROM a WHERE x = $1" {
		t.Fatalf("Template = %q", tpl)
	}
	if v.Template(0) != "" || v.Template(99) != "" || v.Template(-1) != "" {
		t.Fatal("invalid keys must return empty template")
	}
}

func TestVocabularySaveLoad(t *testing.T) {
	v := NewVocabulary()
	v.Learn("SELECT * FROM a WHERE x=1")
	v.Learn("DELETE FROM b WHERE y=2")
	var buf bytes.Buffer
	if err := v.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadVocabulary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Size() != v.Size() {
		t.Fatalf("size %d, want %d", loaded.Size(), v.Size())
	}
	if k := loaded.Key("SELECT * FROM a WHERE x=42"); k != 1 {
		t.Fatalf("loaded key = %d, want 1", k)
	}
}

func TestDynamicVocabularySaveLoadKeepsMode(t *testing.T) {
	v := NewDynamicVocabulary()
	if !v.Dynamic() {
		t.Fatal("NewDynamicVocabulary not dynamic")
	}
	k := v.Learn("SELECT * FROM t WHERE x IN (1, 2, 3)")
	var buf bytes.Buffer
	if err := v.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadVocabulary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !loaded.Dynamic() {
		t.Fatal("dynamic mode lost in round-trip")
	}
	if got := loaded.Key("SELECT * FROM t WHERE x IN (9, 8, 7, 6)"); got != k {
		t.Fatalf("loaded key = %d, want %d (IN lengths must unify)", got, k)
	}
	classic := NewVocabulary()
	if classic.Dynamic() {
		t.Fatal("classic vocabulary reports dynamic")
	}
}

func TestLoadVocabularyRejectsGarbage(t *testing.T) {
	if _, err := LoadVocabulary(strings.NewReader("not json")); err == nil {
		t.Fatal("expected decode error")
	}
	if _, err := LoadVocabulary(strings.NewReader(`["SELECT"]`)); err == nil {
		t.Fatal("expected missing-k0 error")
	}
}

func TestVocabularyConcurrentUse(t *testing.T) {
	v := NewVocabulary()
	done := make(chan struct{})
	for g := 0; g < 4; g++ {
		go func(g int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 200; i++ {
				v.Learn("SELECT * FROM t WHERE a=1")
				v.Key("SELECT * FROM t WHERE a=2")
				v.Template(1)
			}
		}(g)
	}
	for g := 0; g < 4; g++ {
		<-done
	}
	if v.Size() != 2 {
		t.Fatalf("Size = %d, want 2", v.Size())
	}
}
