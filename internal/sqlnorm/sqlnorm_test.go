package sqlnorm

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

func TestAbstractPaperExample(t *testing.T) {
	got := Abstract("Update T_content set count=23 where danmuKey=94")
	want := "UPDATE T_content SET count = $1 WHERE danmuKey = $2"
	if got != want {
		t.Fatalf("Abstract = %q, want %q", got, want)
	}
}

func TestAbstractDistinguishesColumnNames(t *testing.T) {
	a := Abstract("delete from t_mac where normal_mac=1")
	b := Abstract("delete from t_mac where abnormal_mac=1")
	if a == b {
		t.Fatalf("templates must differ: %q", a)
	}
}

func TestAbstractLiterals(t *testing.T) {
	cases := []struct{ in, want string }{
		{"SELECT * FROM t WHERE a=1 AND b='x'", "SELECT * FROM t WHERE a = $1 AND b = $2"},
		{"SELECT * FROM t WHERE s='it''s'", "SELECT * FROM t WHERE s = $1"},
		{`SELECT * FROM t WHERE s="dq"`, "SELECT * FROM t WHERE s = $1"},
		{"SELECT * FROM t WHERE x IN (1, 2, 3)", "SELECT * FROM t WHERE x IN ($1, $2, $3)"},
		{"SELECT * FROM t WHERE f=3.14 OR g=1e-3", "SELECT * FROM t WHERE f = $1 OR g = $2"},
		{"SELECT * FROM t WHERE a=? AND b=$5", "SELECT * FROM t WHERE a = $1 AND b = $2"},
		{"SELECT * FROM t -- trailing comment\nWHERE a=1", "SELECT * FROM t WHERE a = $1"},
		{"SELECT /* hi */ * FROM t", "SELECT * FROM t"},
		{"select a.b from t", "SELECT a.b FROM t"},
		{"INSERT INTO t(a, b) VALUES (1, 2)", "INSERT INTO t (a, b) VALUES ($1, $2)"},
		{"", ""},
	}
	for _, tc := range cases {
		if got := Abstract(tc.in); got != tc.want {
			t.Errorf("Abstract(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

func TestAbstractWhitespaceInvariance(t *testing.T) {
	a := Abstract("SELECT  *\n FROM\tt WHERE a=1")
	b := Abstract("SELECT * FROM t WHERE a=2")
	if a != b {
		t.Fatalf("whitespace/literal variants should share a template: %q vs %q", a, b)
	}
}

// Property: abstraction is idempotent — abstracting a template yields
// the same template (placeholders renumber to themselves).
func TestAbstractIdempotent(t *testing.T) {
	stmts := []string{
		"SELECT * FROM t WHERE a=1 AND b='x'",
		"INSERT INTO danmu_display(vid, uid, text) VALUES (1, 2, 'hello')",
		"UPDATE t_cell_fp_9 SET fps=3 WHERE pnci=77",
		"DELETE FROM loc_rm WHERE dev='d' AND ts<100",
	}
	for _, s := range stmts {
		once := Abstract(s)
		twice := Abstract(once)
		if once != twice {
			t.Errorf("not idempotent: %q -> %q", once, twice)
		}
	}
}

// Property: Abstract never panics on arbitrary input.
func TestAbstractTotal(t *testing.T) {
	f := func(s string) bool {
		_ = Abstract(s)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestAbstractUnterminatedString(t *testing.T) {
	got := Abstract("SELECT * FROM t WHERE s='unterminated")
	if !strings.Contains(got, "$1") {
		t.Fatalf("unterminated literal should still become a placeholder: %q", got)
	}
}

func TestCommandOf(t *testing.T) {
	cases := map[string]string{
		"SELECT * FROM t":         "SELECT",
		"insert into t values(1)": "INSERT",
		"Update t set a=1":        "UPDATE",
		"DELETE FROM t":           "DELETE",
		"":                        "",
	}
	for in, want := range cases {
		if got := CommandOf(in); got != want {
			t.Errorf("CommandOf(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestTableOf(t *testing.T) {
	cases := map[string]string{
		"SELECT * FROM t_rm_mac WHERE a = $1":             "t_rm_mac",
		"INSERT INTO danmu_display(a, b) VALUES ($1, $2)": "danmu_display",
		"UPDATE T_content SET count = $1":                 "T_content",
		"DELETE FROM loc_rm WHERE x = $1":                 "loc_rm",
		"CREATE TABLE users (id INT)":                     "users",
		"SELECT 1":                                        "",
	}
	for in, want := range cases {
		if got := TableOf(in); got != want {
			t.Errorf("TableOf(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestVocabularyAssignsStableKeys(t *testing.T) {
	v := NewVocabulary()
	k1 := v.Learn("SELECT * FROM a WHERE x=1")
	k2 := v.Learn("SELECT * FROM b WHERE x=1")
	k1again := v.Learn("SELECT * FROM a WHERE x=999") // same template
	if k1 != 1 || k2 != 2 {
		t.Fatalf("keys = %d, %d; want 1, 2", k1, k2)
	}
	if k1again != k1 {
		t.Fatalf("same template must reuse key: %d vs %d", k1again, k1)
	}
	if v.Size() != 3 { // k0 + two templates
		t.Fatalf("Size = %d, want 3", v.Size())
	}
}

func TestVocabularyUnknownIsPadKey(t *testing.T) {
	v := NewVocabulary()
	v.Learn("SELECT * FROM a")
	if k := v.Key("DROP TABLE a"); k != PadKey {
		t.Fatalf("unknown statement key = %d, want PadKey", k)
	}
	if k := v.Key("SELECT * FROM a"); k != 1 {
		t.Fatalf("known statement key = %d, want 1", k)
	}
}

func TestVocabularyTemplateLookup(t *testing.T) {
	v := NewVocabulary()
	k := v.Learn("SELECT * FROM a WHERE x=1")
	if tpl := v.Template(k); tpl != "SELECT * FROM a WHERE x = $1" {
		t.Fatalf("Template = %q", tpl)
	}
	if v.Template(0) != "" || v.Template(99) != "" || v.Template(-1) != "" {
		t.Fatal("invalid keys must return empty template")
	}
}

func TestVocabularySaveLoad(t *testing.T) {
	v := NewVocabulary()
	v.Learn("SELECT * FROM a WHERE x=1")
	v.Learn("DELETE FROM b WHERE y=2")
	var buf bytes.Buffer
	if err := v.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadVocabulary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Size() != v.Size() {
		t.Fatalf("size %d, want %d", loaded.Size(), v.Size())
	}
	if k := loaded.Key("SELECT * FROM a WHERE x=42"); k != 1 {
		t.Fatalf("loaded key = %d, want 1", k)
	}
}

func TestLoadVocabularyRejectsGarbage(t *testing.T) {
	if _, err := LoadVocabulary(strings.NewReader("not json")); err == nil {
		t.Fatal("expected decode error")
	}
	if _, err := LoadVocabulary(strings.NewReader(`["SELECT"]`)); err == nil {
		t.Fatal("expected missing-k0 error")
	}
}

func TestVocabularyConcurrentUse(t *testing.T) {
	v := NewVocabulary()
	done := make(chan struct{})
	for g := 0; g < 4; g++ {
		go func(g int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 200; i++ {
				v.Learn("SELECT * FROM t WHERE a=1")
				v.Key("SELECT * FROM t WHERE a=2")
				v.Template(1)
			}
		}(g)
	}
	for g := 0; g < 4; g++ {
		<-done
	}
	if v.Size() != 2 {
		t.Fatalf("Size = %d, want 2", v.Size())
	}
}
