// Package sqlnorm implements the paper's operation tokenization (§5.1):
// every SQL statement is abstracted by replacing each literal with a
// numbered placeholder ($1, $2, …) and mapped to a unique integer
// statement key. Unlike longest-common-subsequence log parsers, the
// abstraction preserves every non-literal token, so statements that
// differ in a single column name receive distinct keys — the property
// the paper relies on to separate "delete … where normal_mac=$1" from
// "delete … where abnormal_mac=$1".
package sqlnorm

import (
	"strings"
	"unicode"
)

// tokenKind classifies lexer output.
type tokenKind int

const (
	tokWord        tokenKind = iota // identifiers and keywords
	tokNumber                       // numeric literal
	tokString                       // quoted string literal
	tokSymbol                       // operators and punctuation
	tokPlaceholder                  // pre-existing ? or $n placeholder
)

type token struct {
	kind tokenKind
	text string
}

// lex splits a SQL statement into tokens, stripping comments. It is
// deliberately forgiving: malformed trailing quotes are consumed to the
// end of input rather than rejected, since audit logs may truncate.
func lex(sql string) []token {
	var toks []token
	i := 0
	n := len(sql)
	for i < n {
		c := sql[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '-' && i+1 < n && sql[i+1] == '-': // -- line comment
			for i < n && sql[i] != '\n' {
				i++
			}
		case c == '/' && i+1 < n && sql[i+1] == '*': // /* block comment */
			i += 2
			for i+1 < n && !(sql[i] == '*' && sql[i+1] == '/') {
				i++
			}
			i += 2
			if i > n {
				i = n
			}
		case c == '\'' || c == '"', c == '`':
			quote := c
			j := i + 1
			for j < n {
				if sql[j] == quote {
					if j+1 < n && sql[j+1] == quote { // doubled-quote escape
						j += 2
						continue
					}
					break
				}
				j++
			}
			if j < n {
				j++
			}
			kind := tokString
			if quote == '`' { // backquoted identifier, not a literal
				kind = tokWord
			}
			toks = append(toks, token{kind, sql[i:j]})
			i = j
		case c >= '0' && c <= '9', c == '.' && i+1 < n && sql[i+1] >= '0' && sql[i+1] <= '9':
			j := i
			seenDot, seenExp := false, false
			for j < n {
				d := sql[j]
				if d >= '0' && d <= '9' {
					j++
					continue
				}
				if d == '.' && !seenDot && !seenExp {
					seenDot = true
					j++
					continue
				}
				if (d == 'e' || d == 'E') && !seenExp && j > i {
					seenExp = true
					j++
					if j < n && (sql[j] == '+' || sql[j] == '-') {
						j++
					}
					continue
				}
				break
			}
			toks = append(toks, token{tokNumber, sql[i:j]})
			i = j
		case c == '?':
			toks = append(toks, token{tokPlaceholder, "?"})
			i++
		case c == '$':
			j := i + 1
			for j < n && sql[j] >= '0' && sql[j] <= '9' {
				j++
			}
			if j > i+1 {
				toks = append(toks, token{tokPlaceholder, sql[i:j]})
				i = j
			} else {
				toks = append(toks, token{tokSymbol, "$"})
				i++
			}
		case isWordStart(rune(c)):
			j := i
			for j < n && isWordPart(rune(sql[j])) {
				j++
			}
			toks = append(toks, token{tokWord, sql[i:j]})
			i = j
		default:
			// Multi-char operators worth keeping intact.
			for _, op := range []string{"<=", ">=", "<>", "!=", "||"} {
				if strings.HasPrefix(sql[i:], op) {
					toks = append(toks, token{tokSymbol, op})
					i += len(op)
					goto next
				}
			}
			toks = append(toks, token{tokSymbol, string(c)})
			i++
		next:
		}
	}
	return toks
}

func isWordStart(r rune) bool {
	return unicode.IsLetter(r) || r == '_'
}

func isWordPart(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_'
}
