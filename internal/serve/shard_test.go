package serve

import (
	"context"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/ucad/ucad/internal/wal"
)

// TestShardIndexStability: the client→shard route is a pure function of
// the id and the shard count — restore and replay depend on it.
func TestShardIndexStability(t *testing.T) {
	for _, n := range []int{1, 2, 4, 8} {
		for _, client := range []string{"", "c1", "client-7", "db-frontend-03"} {
			a, b := shardIndex(client, n), shardIndex(client, n)
			if a != b || a < 0 || a >= n {
				t.Fatalf("shardIndex(%q, %d) = %d then %d", client, n, a, b)
			}
		}
	}
	// With enough clients the hash must actually spread (not all-one-shard).
	used := map[int]bool{}
	for i := 0; i < 64; i++ {
		used[shardIndex(fmt.Sprintf("client-%d", i), 4)] = true
	}
	if len(used) < 2 {
		t.Fatalf("64 clients landed on %d of 4 shards", len(used))
	}
}

// TestShardRemapRestore: state written under one shard count restores
// byte-identically under another. Writes with N=4, then restores the
// same directory with N=2 (merge) and N=8 (split), comparing each
// against an uninterrupted non-durable control run.
func TestShardRemapRestore(t *testing.T) {
	u := testUCAD(t)
	dir := t.TempDir()
	clock := newFakeClock()

	clients := []string{"c1", "c2", "c3", "c4", "c5", "c6", "c7"}
	s1, _ := durableService(t, u, dir, clock.Now, func(c *Config) { c.Shards = 4 })
	for i, client := range clients {
		ingestN(t, s1, client, 3+i, 0)
	}
	s1.Drain()
	if err := s1.Close(context.Background()); err != nil {
		t.Fatal(err)
	}

	// The control mirrors the WRITER's layout (Shards=4): session ids
	// embed the owning shard's counter, and restore preserves the ids
	// assigned at assembly time regardless of the restore-side layout.
	ctl := NewService(testUCAD(t), Config{Workers: 2, Shards: 4, SweepEvery: -1, Clock: clock.Now})
	for i, client := range clients {
		ingestN(t, ctl, client, 3+i, 0)
	}
	ctl.Drain()
	defer ctl.Stop()
	wantSeq, want := exportedState(ctl)

	for _, n := range []int{2, 8} {
		s, rst := durableService(t, u, dir, clock.Now, func(c *Config) { c.Shards = n })
		if rst.Sessions != len(clients) {
			t.Fatalf("shards=%d restored %d sessions, want %d", n, rst.Sessions, len(clients))
		}
		gotSeq, got := exportedState(s)
		if gotSeq < wantSeq {
			t.Fatalf("shards=%d: session-id counter regressed: %d < %d", n, gotSeq, wantSeq)
		}
		if !reflect.DeepEqual(stripTimes(got), stripTimes(want)) {
			t.Fatalf("shards=%d restore diverges from control:\n got %+v\nwant %+v", n, got, want)
		}
		// The remap must settle: manifest at the new layout, no staged
		// merge file left behind.
		man, ok, err := wal.LoadManifest(dir)
		if err != nil || !ok || man.Shards != n || man.Remap {
			t.Fatalf("shards=%d manifest = %+v ok=%v err=%v", n, man, ok, err)
		}
		if _, err := os.Stat(filepath.Join(dir, wal.RemapFile)); !errors.Is(err, fs.ErrNotExist) {
			t.Fatalf("shards=%d left %s behind (err=%v)", n, wal.RemapFile, err)
		}
		if err := s.Close(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
}

// TestShardRemapHardKill: a shard-count change applied after a hard
// kill (no Close, no seal) still restores every acknowledged event —
// the remap runs on crash-recovered state, not only on sealed logs.
func TestShardRemapHardKill(t *testing.T) {
	u := testUCAD(t)
	dir := t.TempDir()
	clock := newFakeClock()

	s1, _ := durableService(t, u, dir, clock.Now, func(c *Config) { c.Shards = 4 })
	for i, client := range []string{"k1", "k2", "k3", "k4", "k5"} {
		ingestN(t, s1, client, 2+i, 0)
	}
	s1.Drain()
	// Abandon without Close: fsync=always made every ack durable.
	s1.engine.Stop()

	ctl := NewService(testUCAD(t), Config{Workers: 2, Shards: 4, SweepEvery: -1, Clock: clock.Now})
	for i, client := range []string{"k1", "k2", "k3", "k4", "k5"} {
		ingestN(t, ctl, client, 2+i, 0)
	}
	ctl.Drain()
	defer ctl.Stop()
	_, want := exportedState(ctl)

	s2, rst := durableService(t, u, dir, clock.Now, func(c *Config) { c.Shards = 2 })
	defer s2.Close(context.Background())
	if rst.CleanSeal {
		t.Fatal("hard kill cannot leave a clean seal")
	}
	_, got := exportedState(s2)
	if !reflect.DeepEqual(stripTimes(got), stripTimes(want)) {
		t.Fatalf("post-kill remap diverges:\n got %+v\nwant %+v", got, want)
	}
}

// TestShardV1UpgradeRestore: a pre-sharding data directory — one
// unprefixed stream, no MANIFEST.json — restores onto a sharded layout
// and is rewritten to manifest v2 in passing.
func TestShardV1UpgradeRestore(t *testing.T) {
	u := testUCAD(t)
	dir := t.TempDir()
	clock := newFakeClock()

	clients := []string{"v1", "v2", "v3", "v4"}
	s1, _ := durableService(t, u, dir, clock.Now, func(c *Config) { c.Shards = 1 })
	for i, client := range clients {
		ingestN(t, s1, client, 4+i, 0)
	}
	s1.Drain()
	if err := s1.Close(context.Background()); err != nil {
		t.Fatal(err)
	}

	// Transform the directory into the legacy single-stream layout the
	// pre-sharding releases wrote: drop the shard-00 prefix from every
	// stream file and remove the manifest. The framing is unchanged —
	// only naming and the manifest distinguish v1 from v2.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		name := e.Name()
		switch {
		case strings.HasPrefix(name, "wal-shard-00-"):
			legacy := "wal-" + strings.TrimPrefix(name, "wal-shard-00-")
			if err := os.Rename(filepath.Join(dir, name), filepath.Join(dir, legacy)); err != nil {
				t.Fatal(err)
			}
		case strings.HasPrefix(name, "snap-shard-00-"):
			legacy := "snap-" + strings.TrimPrefix(name, "snap-shard-00-")
			if err := os.Rename(filepath.Join(dir, name), filepath.Join(dir, legacy)); err != nil {
				t.Fatal(err)
			}
		case name == wal.ManifestName:
			if err := os.Remove(filepath.Join(dir, name)); err != nil {
				t.Fatal(err)
			}
		}
	}

	ctl := NewService(testUCAD(t), Config{Workers: 2, SweepEvery: -1, Clock: clock.Now})
	for i, client := range clients {
		ingestN(t, ctl, client, 4+i, 0)
	}
	ctl.Drain()
	defer ctl.Stop()
	_, want := exportedState(ctl)

	s2, rst := durableService(t, u, dir, clock.Now, func(c *Config) { c.Shards = 4 })
	defer s2.Close(context.Background())
	if rst.Sessions != len(clients) {
		t.Fatalf("v1 upgrade restored %d sessions, want %d", rst.Sessions, len(clients))
	}
	_, got := exportedState(s2)
	if !reflect.DeepEqual(stripTimes(got), stripTimes(want)) {
		t.Fatalf("v1 upgrade diverges from control:\n got %+v\nwant %+v", got, want)
	}
	man, ok, err := wal.LoadManifest(dir)
	if err != nil || !ok || man.Version != wal.ManifestVersion || man.Shards != 4 || man.Remap {
		t.Fatalf("post-upgrade manifest = %+v ok=%v err=%v", man, ok, err)
	}
	// No legacy stream files may survive the upgrade.
	entries, err = os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		name := e.Name()
		if (strings.HasPrefix(name, "wal-") && !strings.HasPrefix(name, "wal-shard-")) ||
			(strings.HasPrefix(name, "snap-") && !strings.HasPrefix(name, "snap-shard-")) {
			t.Fatalf("legacy stream file %s survived the upgrade", name)
		}
	}
}

// TestShardCrossShardIsolation hammers a sharded service from many
// concurrent clients (run under -race to catch cross-shard aliasing)
// and verifies every accepted event landed in exactly one session at
// its submission position.
func TestShardCrossShardIsolation(t *testing.T) {
	u := testUCAD(t)
	clk := newFakeClock()
	s := NewService(u, Config{Workers: 4, Shards: 4, QueueSize: 1024, SweepEvery: -1, Clock: clk.Now})
	s.Start()
	defer s.Stop()

	const goroutines, perClient = 16, 25
	var wg sync.WaitGroup
	errc := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			client := fmt.Sprintf("iso-%d", g)
			for p := 0; p < perClient; p++ {
				for {
					err := s.Ingest(Event{ClientID: client, User: "app", SQL: normalStatement(p)})
					if err == nil {
						break
					}
					if !errors.Is(err, ErrBusy) {
						errc <- fmt.Errorf("%s #%d: %v", client, p, err)
						return
					}
					time.Sleep(time.Millisecond)
				}
			}
		}(g)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
	s.Drain()

	st := s.Stats()
	if st.EventsAccepted != goroutines*perClient {
		t.Fatalf("accepted %d events, want %d", st.EventsAccepted, goroutines*perClient)
	}
	if st.Shards != 4 {
		t.Fatalf("stats shards = %d, want 4", st.Shards)
	}
	_, sessions := s.exportAll()
	if len(sessions) != goroutines {
		t.Fatalf("%d open sessions, want %d", len(sessions), goroutines)
	}
	for _, ss := range sessions {
		if len(ss.Ops) != perClient {
			t.Fatalf("client %s has %d ops, want %d", ss.Client, len(ss.Ops), perClient)
		}
		for p, op := range ss.Ops {
			if op.SQL != normalStatement(p) {
				t.Fatalf("client %s op %d = %q, want %q", ss.Client, p, op.SQL, normalStatement(p))
			}
		}
	}
	// Every op past MinContext was scored exactly once across shards.
	wantScored := int64(goroutines * (perClient - u.Model.Config().MinContext))
	if st.OpsScored+st.OpsRejected != wantScored {
		t.Fatalf("scored %d + rejected %d, want %d total", st.OpsScored, st.OpsRejected, wantScored)
	}
}

// TestShardHotSwapUnderIngest swaps the model repeatedly while events
// stream in: no event may be dropped, double-ingested, or scored
// against a half-swapped model (the conservation check below fails on
// a dropped or doubled scoring job).
func TestShardHotSwapUnderIngest(t *testing.T) {
	u := testUCAD(t)
	replacement := testUCAD(t)
	clk := newFakeClock()
	s := NewService(u, Config{Workers: 2, Shards: 4, QueueSize: 1024, SweepEvery: -1, Clock: clk.Now})
	s.Start()
	defer s.Stop()

	const goroutines, perClient, swaps = 8, 40, 5
	var wg sync.WaitGroup
	errc := make(chan error, goroutines+1)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			client := fmt.Sprintf("swap-%d", g)
			for p := 0; p < perClient; p++ {
				for {
					err := s.Ingest(Event{ClientID: client, User: "app", SQL: normalStatement(p)})
					if err == nil {
						break
					}
					if !errors.Is(err, ErrBusy) {
						errc <- fmt.Errorf("%s #%d: %v", client, p, err)
						return
					}
					time.Sleep(time.Millisecond)
				}
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		next := replacement
		for i := 0; i < swaps; i++ {
			if err := s.SwapModel(next); err != nil {
				errc <- fmt.Errorf("swap %d: %v", i, err)
				return
			}
			if next == replacement {
				next = u
			} else {
				next = replacement
			}
			time.Sleep(time.Millisecond)
		}
	}()
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
	s.Drain()

	st := s.Stats()
	if st.EventsAccepted != goroutines*perClient {
		t.Fatalf("accepted %d events, want %d (dropped under swap)", st.EventsAccepted, goroutines*perClient)
	}
	if st.ModelSwaps != swaps {
		t.Fatalf("model swaps = %d, want %d", st.ModelSwaps, swaps)
	}
	_, sessions := s.exportAll()
	for _, ss := range sessions {
		if len(ss.Ops) != perClient {
			t.Fatalf("client %s has %d ops, want %d", ss.Client, len(ss.Ops), perClient)
		}
	}
	// Conservation: both models share MinContext (same training recipe),
	// so every position past it produced exactly one scoring job.
	wantScored := int64(goroutines * (perClient - u.Model.Config().MinContext))
	if st.OpsScored+st.OpsRejected != wantScored {
		t.Fatalf("scored %d + rejected %d, want %d (lost or doubled a job mid-swap)", st.OpsScored, st.OpsRejected, wantScored)
	}
}

// TestShardSwapDurableBarrier: SwapModel on a durable service takes the
// all-shard barrier; a graceful restart afterwards restores the
// sessions assembled across the swap.
func TestShardSwapDurableBarrier(t *testing.T) {
	u := testUCAD(t)
	dir := t.TempDir()
	clock := newFakeClock()

	s1, _ := durableService(t, u, dir, clock.Now, func(c *Config) { c.Shards = 2 })
	ingestN(t, s1, "d1", 4, 0)
	if err := s1.SwapModel(testUCAD(t)); err != nil {
		t.Fatal(err)
	}
	ingestN(t, s1, "d1", 3, 4)
	ingestN(t, s1, "d2", 5, 0)
	s1.Drain()
	if err := s1.Close(context.Background()); err != nil {
		t.Fatal(err)
	}

	s2, rst := durableService(t, u, dir, clock.Now, func(c *Config) { c.Shards = 2 })
	defer s2.Close(context.Background())
	if rst.Sessions != 2 {
		t.Fatalf("restored %d sessions, want 2", rst.Sessions)
	}
	_, got := exportedState(s2)
	if len(got) != 2 || len(got[0].Ops) != 7 || len(got[1].Ops) != 5 {
		t.Fatalf("restored sessions after swap: %+v", got)
	}
}
