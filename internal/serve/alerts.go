package serve

import (
	"sort"
	"sync"
	"time"

	"github.com/ucad/ucad/internal/detect"
)

// Alert statuses.
const (
	StatusOpen       = "open"
	StatusFalseAlarm = "false_alarm"
	StatusConfirmed  = "confirmed"
)

// Alert is one flagged session as the serving layer reports it: created
// the moment the first mid-session flag fires (early warning, §5.3) and
// finalized when the session closes and full-session detection confirms
// the positions.
type Alert struct {
	ID        int64  `json:"id"`
	SessionID string `json:"session_id"`
	Client    string `json:"client"`
	User      string `json:"user"`
	Positions []int  `json:"positions"`
	// Statements holds the flagged statement texts aligned with
	// Positions (empty string when only known from close-out detection).
	Statements []string `json:"statements"`
	Status     string   `json:"status"`
	// Final reports whether the session has closed; only final alerts
	// can be resolved.
	Final     bool      `json:"final"`
	CreatedAt time.Time `json:"created_at"`
	UpdatedAt time.Time `json:"updated_at"`

	// da is the detection-loop alert to forward expert verdicts to;
	// nil when close-out detection judged the session normal.
	da *detect.Alert
}

// alertStore indexes alerts by id and by open session. It also
// remembers recently finalized sessions so late scoring results for a
// closed session do not spawn orphan alerts.
//
// Resolved alerts are retention-bounded: once an expert verdict lands,
// the alert joins a FIFO eviction queue and is dropped when the queue
// exceeds maxResolved entries or the alert outlives resolvedTTL —
// open (unresolved) alerts are never evicted, so nothing awaiting
// review can disappear.
type alertStore struct {
	mu        sync.Mutex
	nextID    int64
	byID      map[int64]*Alert
	bySession map[string]*Alert
	finalized *ringSet
	now       func() time.Time

	// maxResolved bounds retained resolved alerts (negative = unbounded);
	// resolvedTTL ages them out (0 disables).
	maxResolved int
	resolvedTTL time.Duration
	// resolvedIDs holds resolved alert ids in resolution order (FIFO
	// eviction); evicted counts lifetime evictions.
	resolvedIDs []int64
	evicted     int64
}

func newAlertStore(now func() time.Time, maxResolved int, resolvedTTL time.Duration) *alertStore {
	return &alertStore{
		byID:        make(map[int64]*Alert),
		bySession:   make(map[string]*Alert),
		finalized:   newRingSet(4096),
		now:         now,
		maxResolved: maxResolved,
		resolvedTTL: resolvedTTL,
	}
}

// flag records one mid-session anomalous operation, creating the
// session's alert on first flag. It reports whether the flag was
// absorbed (false for late results on already-finalized sessions).
func (st *alertStore) flag(r Result, user string) bool {
	st.mu.Lock()
	defer st.mu.Unlock()
	a := st.bySession[r.SessionID]
	if a == nil {
		if st.finalized.has(r.SessionID) {
			return false
		}
		st.nextID++
		a = &Alert{
			ID:        st.nextID,
			SessionID: r.SessionID,
			Client:    r.Client,
			User:      user,
			Status:    StatusOpen,
			CreatedAt: st.now(),
		}
		st.byID[a.ID] = a
		st.bySession[r.SessionID] = a
	}
	a.addPosition(r.Pos, r.SQL)
	a.UpdatedAt = st.now()
	return true
}

// finalize marks the session closed. da carries the close-out detection
// verdict (nil = session-level normal); when it flagged positions the
// alert absorbs them, creating the alert if mid-session scoring never
// fired (e.g. the flags raced the close-out).
func (st *alertStore) finalize(sessionID, client, user string, stmts []string, da *detect.Alert) *Alert {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.finalized.add(sessionID)
	a := st.bySession[sessionID]
	if a == nil && da == nil {
		return nil
	}
	if a == nil {
		st.nextID++
		a = &Alert{
			ID:        st.nextID,
			SessionID: sessionID,
			Client:    client,
			User:      user,
			Status:    StatusOpen,
			CreatedAt: st.now(),
		}
		st.byID[a.ID] = a
	}
	delete(st.bySession, sessionID)
	a.Final = true
	a.da = da
	if da != nil {
		for _, pos := range da.Positions {
			var sql string
			if pos < len(stmts) {
				sql = stmts[pos]
			}
			a.addPosition(pos, sql)
		}
	}
	a.UpdatedAt = st.now()
	return a
}

// resolve applies an expert verdict to a final alert and returns the
// detection-loop alert to forward the verdict to (nil when close-out
// detection had judged the session normal).
func (st *alertStore) resolve(id int64, status string) (*detect.Alert, error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	a := st.byID[id]
	if a == nil {
		return nil, ErrNoAlert
	}
	if !a.Final {
		return nil, ErrSessionOpen
	}
	if a.Status != StatusOpen {
		return nil, ErrNoAlert
	}
	a.Status = status
	a.UpdatedAt = st.now()
	da := a.da
	a.da = nil
	st.resolvedIDs = append(st.resolvedIDs, a.ID)
	st.evictLocked()
	return da, nil
}

// evictLocked enforces the resolved-alert retention bound: FIFO past
// maxResolved, then anything older than resolvedTTL (UpdatedAt is the
// resolution time, so the queue is in expiry order).
func (st *alertStore) evictLocked() {
	for st.maxResolved >= 0 && len(st.resolvedIDs) > st.maxResolved {
		st.evictFrontLocked()
	}
	if st.resolvedTTL <= 0 {
		return
	}
	cutoff := st.now().Add(-st.resolvedTTL)
	for len(st.resolvedIDs) > 0 {
		a := st.byID[st.resolvedIDs[0]]
		if a == nil || a.UpdatedAt.After(cutoff) {
			break
		}
		st.evictFrontLocked()
	}
}

func (st *alertStore) evictFrontLocked() {
	id := st.resolvedIDs[0]
	st.resolvedIDs = st.resolvedIDs[1:]
	if _, ok := st.byID[id]; ok {
		delete(st.byID, id)
		st.evicted++
	}
}

// evictExpired applies the TTL bound outside a resolve call (the idle
// sweeper drives it so resolved alerts age out even when no new
// verdicts arrive).
func (st *alertStore) evictExpired() {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.evictLocked()
}

// raisedCount is the lifetime number of alerts ever created.
func (st *alertStore) raisedCount() int64 {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.nextID
}

// evictedCount is the lifetime number of retention evictions.
func (st *alertStore) evictedCount() int64 {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.evicted
}

// list returns alerts sorted by id; status "" means all.
func (st *alertStore) list(status string) []Alert {
	st.mu.Lock()
	defer st.mu.Unlock()
	out := make([]Alert, 0, len(st.byID))
	for _, a := range st.byID {
		if status != "" && a.Status != status {
			continue
		}
		c := *a
		c.Positions = append([]int(nil), a.Positions...)
		c.Statements = append([]string(nil), a.Statements...)
		c.da = nil
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

func (st *alertStore) openCount() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	n := 0
	for _, a := range st.byID {
		if a.Status == StatusOpen {
			n++
		}
	}
	return n
}

// addPosition inserts pos keeping Positions sorted and deduplicated.
func (a *Alert) addPosition(pos int, sql string) {
	i := sort.SearchInts(a.Positions, pos)
	if i < len(a.Positions) && a.Positions[i] == pos {
		if a.Statements[i] == "" {
			a.Statements[i] = sql
		}
		return
	}
	a.Positions = append(a.Positions, 0)
	copy(a.Positions[i+1:], a.Positions[i:])
	a.Positions[i] = pos
	a.Statements = append(a.Statements, "")
	copy(a.Statements[i+1:], a.Statements[i:])
	a.Statements[i] = sql
}

// ringSet is a fixed-capacity set with FIFO eviction — enough memory to
// absorb late scoring results without growing without bound.
type ringSet struct {
	set  map[string]struct{}
	ring []string
	next int
}

func newRingSet(capacity int) *ringSet {
	return &ringSet{set: make(map[string]struct{}, capacity), ring: make([]string, 0, capacity)}
}

func (r *ringSet) add(k string) {
	if _, ok := r.set[k]; ok {
		return
	}
	if len(r.ring) < cap(r.ring) {
		r.ring = append(r.ring, k)
	} else {
		delete(r.set, r.ring[r.next])
		r.ring[r.next] = k
		r.next = (r.next + 1) % cap(r.ring)
	}
	r.set[k] = struct{}{}
}

func (r *ringSet) has(k string) bool {
	_, ok := r.set[k]
	return ok
}
