package serve

import (
	"context"
	"io"
	"net/http/httptest"
	"strings"
	"testing"

	"github.com/ucad/ucad/internal/scorecache"
)

// TestCachedServingVerdictsMatchUncached runs the same event stream
// through a cache-enabled service and an uncached control: identical
// clients replaying identical statement sequences produce repeated
// contexts (cache hits), and every verdict counter must still agree.
func TestCachedServingVerdictsMatchUncached(t *testing.T) {
	uc := testUCAD(t)
	cached := testUCAD(t)
	cached.Model.SetScoreCache(scorecache.New(512))

	ctl := NewService(uc, Config{Workers: 2, SweepEvery: -1})
	svc := NewService(cached, Config{Workers: 2, SweepEvery: -1})
	defer ctl.Close(context.Background())
	defer svc.Close(context.Background())

	feed := func(s *Service) {
		// Two clients replay the same sequence: the second client's
		// contexts are exact repeats of the first's, so the cached service
		// serves them from memory. The drain between clients keeps the
		// engine from fusing both replays into one micro-batch (duplicates
		// inside a single batch are all scored before any row is
		// inserted, which would leave nothing to hit).
		for _, client := range []string{"c1", "c2"} {
			ingestN(t, s, client, 6, 0)
			if err := s.Ingest(Event{ClientID: client, User: "app", SQL: anomalySQL}); err != nil {
				t.Fatal(err)
			}
			ingestN(t, s, client, 2, 6)
			s.Drain()
		}
	}
	feed(ctl)
	feed(svc)

	cs, ctls := svc.Stats(), ctl.Stats()
	if cs.MidSessionFlags != ctls.MidSessionFlags ||
		cs.AlertsRaised != ctls.AlertsRaised ||
		cs.OpsScored != ctls.OpsScored {
		t.Fatalf("cached verdicts diverge from control:\ncached  %+v\ncontrol %+v", cs, ctls)
	}
	if cs.MidSessionFlags == 0 {
		t.Fatal("anomaly was never flagged; equivalence check is vacuous")
	}
	if cs.ScoreCacheHits == 0 || cs.ScoreCacheMisses == 0 {
		t.Fatalf("cached service saw no cache traffic: %+v", cs)
	}
	if ctls.ScoreCacheHits != 0 || ctls.ScoreCacheEntries != 0 {
		t.Fatalf("uncached control reports cache traffic: %+v", ctls)
	}
	if cs.ScoreCacheHitRate <= 0 || cs.ScoreCacheHitRate >= 1 {
		t.Fatalf("hit rate %v, want in (0, 1)", cs.ScoreCacheHitRate)
	}

	// The cache must survive the /metrics path too, with the same
	// numbers /stats reports.
	srv := httptest.NewServer(svc.Metrics().Registry.Handler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, family := range []string{
		"ucad_score_cache_hits_total",
		"ucad_score_cache_misses_total",
		"ucad_score_cache_evictions_total",
		"ucad_score_cache_entries",
	} {
		if !strings.Contains(string(body), family+`{tenant="default"}`) {
			t.Fatalf("/metrics missing %s:\n%s", family, body)
		}
	}
}

// TestRestoreStartsWithColdCache pins the durability contract for the
// cache: it is volatile serving state, not persisted with the model or
// WAL. A restart restores sessions but comes up with an empty cache,
// and post-restart verdicts match an uncached, uninterrupted control.
func TestRestoreStartsWithColdCache(t *testing.T) {
	dir := t.TempDir()
	clock := newFakeClock()

	u1 := testUCAD(t)
	u1.Model.SetScoreCache(scorecache.New(512))
	s1, _ := durableService(t, u1, dir, clock.Now, nil)
	for _, client := range []string{"c1", "c2"} {
		ingestN(t, s1, client, 5, 0)
	}
	s1.Drain()
	if st := s1.Stats(); st.ScoreCacheMisses == 0 {
		t.Fatalf("warm service saw no cache traffic: %+v", st)
	}
	if err := s1.Close(context.Background()); err != nil {
		t.Fatal(err)
	}

	// Uninterrupted uncached control over the full stream.
	ctl := NewService(testUCAD(t), Config{Workers: 2, SweepEvery: -1, Clock: clock.Now})
	defer ctl.Close(context.Background())
	for _, client := range []string{"c1", "c2"} {
		ingestN(t, ctl, client, 5, 0)
	}

	// Restart: same model weights, fresh (cold) cache — the process
	// restarted, so the old cache is gone.
	u2 := testUCAD(t)
	u2.Model.SetScoreCache(scorecache.New(512))
	s2, rst := durableService(t, u2, dir, clock.Now, nil)
	defer s2.Close(context.Background())
	if rst.Sessions != 2 {
		t.Fatalf("restored %d sessions, want 2", rst.Sessions)
	}
	if st := s2.Stats(); st.ScoreCacheHits != 0 || st.ScoreCacheMisses != 0 || st.ScoreCacheEntries != 0 {
		t.Fatalf("cache not cold after restart: %+v", st)
	}

	// Post-restart traffic: continuation plus an anomaly per client; the
	// cold-cache service and the uncached control must agree on every
	// verdict.
	finish := func(s *Service) {
		for _, client := range []string{"c1", "c2"} {
			ingestN(t, s, client, 3, 5)
			if err := s.Ingest(Event{ClientID: client, User: "app", SQL: anomalySQL}); err != nil {
				t.Fatal(err)
			}
		}
		s.Drain()
	}
	finish(s2)
	finish(ctl)
	got, want := s2.Stats(), ctl.Stats()
	if got.MidSessionFlags != want.MidSessionFlags || got.AlertsRaised != want.AlertsRaised {
		t.Fatalf("post-restart verdicts diverge from uncached control:\n got %+v\nwant %+v", got, want)
	}
	if got.MidSessionFlags == 0 {
		t.Fatal("anomaly was never flagged; equivalence check is vacuous")
	}
}
