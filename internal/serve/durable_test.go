package serve

import (
	"context"
	"io"
	"net/http/httptest"
	"os"
	"reflect"
	"strings"
	"testing"
	"time"

	"github.com/ucad/ucad/internal/core"
	"github.com/ucad/ucad/internal/session"
	"github.com/ucad/ucad/internal/wal"
)

// durableService builds a Service with durability on dir and restores
// it. SweepEvery/SnapshotEvery are off so tests drive close-out and
// snapshots deterministically.
func durableService(t *testing.T, u *core.UCAD, dir string, clock func() time.Time, mutate func(*Config)) (*Service, RestoreStats) {
	t.Helper()
	cfg := Config{
		Workers:    2,
		SweepEvery: -1,
		Clock:      clock,
		Durability: &DurabilityConfig{
			Dir:   dir,
			Fsync: wal.SyncAlways,
		},
	}
	if mutate != nil {
		mutate(&cfg)
	}
	s := NewService(u, cfg)
	st, err := s.Restore()
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	return s, st
}

// exportedState strips the volatile LastSeen so restored state can be
// compared against an uninterrupted control run.
func exportedState(s *Service) (int, []SessionState) {
	seq, st := s.exportAll()
	for i := range st {
		st[i].LastSeen = time.Time{}
	}
	return seq, st
}

func ingestN(t *testing.T, s *Service, client string, n, from int) {
	t.Helper()
	for p := from; p < from+n; p++ {
		err := s.Ingest(Event{ClientID: client, User: "app", SQL: normalStatement(p)})
		if err != nil {
			t.Fatalf("ingest %s #%d: %v", client, p, err)
		}
	}
}

// TestDurableRestartGraceful: Close preserves open sessions; a fresh
// Service on the same dir restores them byte-exactly (positions + key
// windows) and subsequent scoring matches an uninterrupted run.
func TestDurableRestartGraceful(t *testing.T) {
	u := testUCAD(t)
	dir := t.TempDir()
	clock := newFakeClock()

	s1, rst := durableService(t, u, dir, clock.Now, nil)
	if rst.Sessions != 0 || rst.Records != 0 {
		t.Fatalf("fresh dir restored %+v", rst)
	}
	for i, client := range []string{"c1", "c2", "c3"} {
		ingestN(t, s1, client, 4+i, 0)
	}
	s1.Drain()
	if err := s1.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := s1.Ingest(Event{ClientID: "c1", SQL: "SELECT 1"}); err != ErrStopped {
		t.Fatalf("ingest after Close: %v, want ErrStopped", err)
	}

	// Control: the same stream into a non-durable service, never
	// interrupted.
	ctl := NewService(testUCAD(t), Config{Workers: 2, SweepEvery: -1, Clock: clock.Now})
	for i, client := range []string{"c1", "c2", "c3"} {
		ingestN(t, ctl, client, 4+i, 0)
	}
	ctl.Drain()

	s2, rst := durableService(t, u, dir, clock.Now, nil)
	defer s2.Close(context.Background())
	if !rst.CleanSeal {
		t.Fatal("graceful Close did not seal the log")
	}
	if rst.Sessions != 3 {
		t.Fatalf("restored %d sessions, want 3", rst.Sessions)
	}
	if got := s2.Stats().RecoveredSessions; got != 3 {
		t.Fatalf("stats recovered_sessions = %d, want 3", got)
	}

	wantSeq, want := exportedState(ctl)
	gotSeq, got := exportedState(s2)
	if gotSeq < wantSeq {
		t.Fatalf("session-id counter regressed: %d < %d", gotSeq, wantSeq)
	}
	if !reflect.DeepEqual(stripTimes(got), stripTimes(want)) {
		t.Fatalf("restored state diverges from uninterrupted run:\n got %+v\nwant %+v", got, want)
	}

	// Subsequent scoring must match: the anomaly statement flags in
	// both worlds, normal continuation flags in neither.
	ingestN(t, s2, "c1", 3, 4)
	ingestN(t, ctl, "c1", 3, 4)
	s2.Drain()
	ctl.Drain()
	if a, b := s2.midFlags.Load(), ctl.midFlags.Load(); a != b {
		t.Fatalf("normal continuation: restored flagged %d, control %d", a, b)
	}
	if err := s2.Ingest(Event{ClientID: "c1", User: "app", SQL: anomalySQL}); err != nil {
		t.Fatal(err)
	}
	if err := ctl.Ingest(Event{ClientID: "c1", User: "app", SQL: anomalySQL}); err != nil {
		t.Fatal(err)
	}
	s2.Drain()
	ctl.Drain()
	if a, b := s2.midFlags.Load(), ctl.midFlags.Load(); a != b || a == 0 {
		t.Fatalf("anomaly flags diverge after restart: restored %d, control %d", a, b)
	}
	ctl.Stop()
}

// stripTimes zeroes per-op timestamps (the control run and the durable
// run share the fake clock, but drop them anyway so the comparison pins
// ordering and content, not clock plumbing).
func stripTimes(st []SessionState) []SessionState {
	out := append([]SessionState(nil), st...)
	for i := range out {
		ops := append([]session.Operation(nil), out[i].Ops...)
		for j := range ops {
			ops[j].Time = time.Time{}
		}
		out[i].Ops = ops
	}
	return out
}

// TestDurableRestartHardKill: abandoning the service without Close
// (the in-process stand-in for kill -9; fsync=always made every ack
// durable) must restore every acknowledged event.
func TestDurableRestartHardKill(t *testing.T) {
	u := testUCAD(t)
	dir := t.TempDir()
	clock := newFakeClock()

	s1, _ := durableService(t, u, dir, clock.Now, nil)
	ingestN(t, s1, "c1", 5, 0)
	ingestN(t, s1, "c2", 3, 0)
	s1.Drain()
	_, want := exportedState(s1)
	// No Close, no Stop: the WAL file handle just drops. The log was
	// fsynced per append, so a fresh open sees every record.

	s2, rst := durableService(t, u, dir, clock.Now, nil)
	defer s2.Close(context.Background())
	if rst.CleanSeal {
		t.Fatal("hard kill reported a clean seal")
	}
	if rst.Sessions != 2 {
		t.Fatalf("restored %d sessions, want 2", rst.Sessions)
	}
	_, got := exportedState(s2)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("hard-kill restore diverges:\n got %+v\nwant %+v", got, want)
	}
	// The restored sessions keep scoring: an anomaly on the recovered
	// context must flag.
	if err := s2.Ingest(Event{ClientID: "c1", User: "app", SQL: anomalySQL}); err != nil {
		t.Fatal(err)
	}
	s2.Drain()
	if s2.midFlags.Load() == 0 {
		t.Fatal("restored session did not flag the anomaly")
	}
}

// TestDurableSnapshotCompactionRestart: snapshots + post-snapshot WAL
// suffix recover the same state, and close records replay so finalized
// sessions are not resurrected.
func TestDurableSnapshotCompactionRestart(t *testing.T) {
	u := testUCAD(t)
	dir := t.TempDir()
	clock := newFakeClock()

	s1, _ := durableService(t, u, dir, clock.Now, func(c *Config) {
		c.IdleTimeout = time.Minute
	})
	ingestN(t, s1, "c1", 4, 0)
	ingestN(t, s1, "c2", 4, 0)
	if err := s1.SnapshotNow(); err != nil {
		t.Fatal(err)
	}
	ingestN(t, s1, "c1", 2, 4) // post-snapshot suffix
	// c2 idles out: its close-out is logged after the snapshot that
	// still contains it.
	clock.Advance(2 * time.Minute)
	ingestN(t, s1, "c1", 1, 6) // keeps c1 fresh
	if n := s1.CloseIdleNow(); n != 1 {
		t.Fatalf("closed %d sessions, want 1 (c2)", n)
	}
	s1.Drain()
	_, want := exportedState(s1)

	s2, rst := durableService(t, u, dir, clock.Now, nil)
	defer s2.Close(context.Background())
	if rst.SnapshotSeq == 0 {
		t.Fatal("restart did not anchor to the snapshot")
	}
	if rst.Sessions != 1 {
		t.Fatalf("restored %d sessions, want 1 (c2 was finalized pre-restart)", rst.Sessions)
	}
	_, got := exportedState(s2)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("snapshot+suffix restore diverges:\n got %+v\nwant %+v", got, want)
	}
}

// TestDurableReplayIdempotence: replaying a WAL suffix that overlaps
// the snapshot state (the crash-between-capture-and-prune shape) must
// not duplicate operations.
func TestDurableReplayIdempotence(t *testing.T) {
	a := NewAssembler(time.Minute, nil)
	op := func(p int) session.Operation {
		return session.Operation{User: "app", SQL: normalStatement(p)}
	}
	if !a.ReplayAppend("c1", "c1#1", 0, op(0), 3, 0, 0) {
		t.Fatal("creation replay rejected")
	}
	if !a.ReplayAppend("c1", "c1#1", 1, op(1), 4, 0, 0) {
		t.Fatal("append replay rejected")
	}
	// Duplicates (already-applied positions) and gaps are dropped.
	if a.ReplayAppend("c1", "c1#1", 0, op(0), 3, 0, 0) {
		t.Fatal("duplicate replay applied twice")
	}
	if a.ReplayAppend("c1", "c1#1", 5, op(5), 4, 0, 0) {
		t.Fatal("gap replay applied")
	}
	// Mismatched session id (stale record) is dropped.
	if a.ReplayAppend("c1", "c1#0", 2, op(2), 4, 0, 0) {
		t.Fatal("stale-session replay applied")
	}
	if a.OpenCount() != 1 {
		t.Fatalf("open count %d, want 1", a.OpenCount())
	}
	_, st := a.Export()
	if len(st[0].Ops) != 2 {
		t.Fatalf("session has %d ops, want 2", len(st[0].Ops))
	}
	// Rollback replay undoes only the matching tail.
	if a.ReplayRollback("c1", "c1#1", 0) {
		t.Fatal("non-tail rollback applied")
	}
	if !a.ReplayRollback("c1", "c1#1", 1) {
		t.Fatal("tail rollback rejected")
	}
	// Close replay removes the session; a second close is a no-op.
	if !a.ReplayClose("c1", "c1#1") {
		t.Fatal("close replay rejected")
	}
	if a.ReplayClose("c1", "c1#1") {
		t.Fatal("double close applied")
	}
	if a.OpenCount() != 0 {
		t.Fatalf("open count %d after close, want 0", a.OpenCount())
	}
	// The restored id counter floor prevents reuse of pre-crash ids.
	a.SetSeqFloor(7)
	ap := a.Append(Event{ClientID: "c9", SQL: "SELECT 1"}, 1, 0)
	if ap.SessionID != "c9#8" {
		t.Fatalf("post-restore session id %q, want c9#8", ap.SessionID)
	}
}

// TestDurableNotReadyAndMetrics: a durability-configured service
// rejects events before Restore, and /metrics exports the WAL families
// after it.
func TestDurableNotReadyAndMetrics(t *testing.T) {
	u := testUCAD(t)
	dir := t.TempDir()
	s := NewService(u, Config{SweepEvery: -1, Durability: &DurabilityConfig{Dir: dir, Fsync: wal.SyncAlways}})
	if err := s.Ingest(Event{ClientID: "c1", SQL: "SELECT 1"}); err != ErrNotReady {
		t.Fatalf("pre-Restore ingest: %v, want ErrNotReady", err)
	}
	if _, err := s.Restore(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Restore(); err == nil {
		t.Fatal("second Restore accepted")
	}
	ingestN(t, s, "c1", 3, 0)
	s.Drain()

	rec := httptest.NewRecorder()
	req := httptest.NewRequest("GET", "/metrics", nil)
	s.Handler().ServeHTTP(rec, req)
	body := rec.Body.String()
	for _, family := range []string{
		`ucad_wal_appends_total{tenant="default"} 3`,
		`ucad_wal_fsync_seconds_count{tenant="default"}`,
		"ucad_wal_segment_bytes",
		`ucad_wal_recovered_sessions{tenant="default"} 0`,
		"ucad_snapshot_seconds",
	} {
		if !strings.Contains(body, family) {
			t.Fatalf("/metrics missing %q", family)
		}
	}
	if err := s.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestDurableCheckpointHotSwap: a fine-tune round writes a checkpoint
// that loads back; a checkpoint that fails validation is rolled back to
// the last good one.
func TestDurableCheckpointHotSwap(t *testing.T) {
	u := testUCAD(t)
	dir := t.TempDir()
	ck, err := wal.OpenCheckpoints(dir+"/checkpoints", 0)
	if err != nil {
		t.Fatal(err)
	}
	clock := newFakeClock()
	s, _ := durableService(t, u, dir+"/wal", clock.Now, func(c *Config) {
		c.RetrainAfter = 1
		c.RetrainEpochs = 1
		c.IdleTimeout = time.Minute
		c.Durability.Checkpoints = ck
	})
	ingestN(t, s, "c1", 8, 0)
	s.Drain()
	clock.Advance(2 * time.Minute)
	if n := s.CloseIdleNow(); n != 1 {
		t.Fatalf("closed %d sessions, want 1", n)
	}
	// CloseIdleNow kicked the retrain goroutine; wait for it.
	s.retrainWG.Wait()
	if s.retrains.Load() != 1 {
		t.Fatalf("retrains = %d, want 1", s.retrains.Load())
	}
	good := ck.Current()
	if good == "" {
		t.Fatal("fine-tune round left no checkpoint")
	}
	if err := verifyCheckpoint(good); err != nil {
		t.Fatalf("checkpoint does not load back: %v", err)
	}

	// A garbage checkpoint must be rolled back to the good one.
	if _, err := ck.Save(func(w io.Writer) error {
		_, err := io.WriteString(w, "not a model")
		return err
	}); err != nil {
		t.Fatal(err)
	}
	bad := ck.Current()
	if err := verifyCheckpoint(bad); err == nil {
		t.Fatal("garbage checkpoint loaded")
	} else if _, rerr := ck.Rollback(); rerr != nil {
		t.Fatal(rerr)
	}
	if ck.Current() != good {
		t.Fatalf("rollback landed on %q, want %q", ck.Current(), good)
	}
	if _, err := os.Stat(bad); !os.IsNotExist(err) {
		t.Fatal("bad checkpoint file survived rollback")
	}
	if err := s.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestDurableStopFlushesAndSeals: Stop (the flush-everything shutdown)
// logs the close-outs, so a restart restores an empty assembler.
func TestDurableStopFlushesAndSeals(t *testing.T) {
	u := testUCAD(t)
	dir := t.TempDir()
	clock := newFakeClock()
	s1, _ := durableService(t, u, dir, clock.Now, nil)
	ingestN(t, s1, "c1", 4, 0)
	s1.Drain()
	s1.Stop()

	s2, rst := durableService(t, u, dir, clock.Now, nil)
	defer s2.Close(context.Background())
	if !rst.CleanSeal {
		t.Fatal("Stop did not seal the log")
	}
	if rst.Sessions != 0 {
		t.Fatalf("restored %d sessions after flush-all Stop, want 0", rst.Sessions)
	}
}
