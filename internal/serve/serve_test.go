package serve

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/ucad/ucad/internal/core"
	"github.com/ucad/ucad/internal/detect"
	"github.com/ucad/ucad/internal/session"
)

// mockDetectAlert stands in for a close-out detection verdict flagging
// positions 6 and 10.
var mockDetectAlert = detect.Alert{Positions: []int{6, 10}}

// normalTemplates is a small application workload (8 statement
// templates); literals vary per call and normalize away.
var normalTemplates = []func(i int) string{
	func(i int) string { return fmt.Sprintf("SELECT * FROM videos WHERE vid = %d", i) },
	func(i int) string { return fmt.Sprintf("SELECT * FROM users WHERE uid = %d", i) },
	func(i int) string { return fmt.Sprintf("INSERT INTO views (vid, uid) VALUES (%d, %d)", i, i+1) },
	func(i int) string { return fmt.Sprintf("UPDATE stats SET views = %d WHERE vid = %d", i, i) },
	func(i int) string { return fmt.Sprintf("SELECT * FROM comments WHERE vid = %d", i) },
	func(i int) string {
		return fmt.Sprintf("INSERT INTO comments (vid, uid, text) VALUES (%d, %d, 'c%d')", i, i, i)
	},
	func(i int) string { return fmt.Sprintf("DELETE FROM comments WHERE cid = %d", i) },
	func(i int) string { return fmt.Sprintf("SELECT * FROM stats WHERE vid = %d", i) },
}

// anomalySQL is an A1-style privilege abuse: a confidential-table read
// no role ever issued during training, so it tokenizes to PadKey and
// must rank last.
const anomalySQL = "SELECT * FROM credit_cards WHERE uid = 7"

func normalStatement(pos int) string {
	return normalTemplates[pos%len(normalTemplates)](pos)
}

// testUCAD trains a deterministic detector over the 8-template
// workload. TopP is Vocab-1, so every in-vocabulary operation passes
// the top-p test and only out-of-vocabulary statements flag — the
// serving pipeline's behavior becomes exactly predictable regardless of
// how well the tiny model trained.
func testUCAD(tb testing.TB) *core.UCAD {
	tb.Helper()
	var sessions []*session.Session
	for i := 0; i < 16; i++ {
		s := &session.Session{ID: fmt.Sprintf("train-%d", i), User: "app"}
		for p := 0; p < 12; p++ {
			s.Ops = append(s.Ops, session.Operation{SQL: normalStatement(i + p)})
		}
		sessions = append(sessions, s)
	}
	cfg := core.DefaultConfig()
	cfg.SkipClean = true
	cfg.Model.Hidden = 4
	cfg.Model.Heads = 2
	cfg.Model.Blocks = 1
	cfg.Model.Window = 8
	cfg.Model.Epochs = 2
	cfg.Model.Dropout = 0
	cfg.Model.MinContext = 2
	cfg.Model.TopP = len(normalTemplates) // = Vocab-1
	u, err := core.Train(cfg, sessions, nil)
	if err != nil {
		tb.Fatal(err)
	}
	if u.Vocab.Size() != len(normalTemplates)+1 {
		tb.Fatalf("vocab size %d, want %d", u.Vocab.Size(), len(normalTemplates)+1)
	}
	return u
}

// fakeClock is a mutex-guarded settable clock.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{now: time.Date(2026, 8, 6, 12, 0, 0, 0, time.UTC)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = c.now.Add(d)
}

func TestAssemblerSessionsPerClientAndIdleCloseout(t *testing.T) {
	clk := newFakeClock()
	a := NewAssembler(10*time.Minute, clk.Now)

	apA := a.Append(Event{ClientID: "a", User: "ua", SQL: "s1"}, 1, 4)
	if apA.Pos != 0 || len(apA.Keys) != 1 || apA.Keys[0] != 1 {
		t.Fatalf("first append: %+v", apA)
	}
	a.Append(Event{ClientID: "b", User: "ub", SQL: "s1"}, 1, 4)
	if a.OpenCount() != 2 {
		t.Fatalf("open = %d, want 2", a.OpenCount())
	}

	clk.Advance(5 * time.Minute)
	apB := a.Append(Event{ClientID: "b", User: "ub", SQL: "s2"}, 2, 4)
	if apB.Pos != 1 || apB.SessionID == apA.SessionID {
		t.Fatalf("per-client assembly broken: %+v vs %+v", apB, apA)
	}

	// a idle 11 min (past timeout), b idle 6 min (refreshed).
	clk.Advance(6 * time.Minute)
	closed := a.CloseIdle()
	if len(closed) != 1 || closed[0].Client != "a" {
		t.Fatalf("CloseIdle closed %+v, want just client a", closed)
	}
	if got := closed[0].Session.Ops; len(got) != 1 || got[0].Key != 1 {
		t.Fatalf("closed session ops: %+v", got)
	}
	if a.OpenCount() != 1 {
		t.Fatalf("open = %d after close", a.OpenCount())
	}

	// A returning client starts a fresh session.
	ap2 := a.Append(Event{ClientID: "a", User: "ua", SQL: "s1"}, 1, 4)
	if ap2.SessionID == apA.SessionID || ap2.Pos != 0 {
		t.Fatalf("returning client reused closed session: %+v", ap2)
	}

	rest := a.CloseAll()
	if len(rest) != 2 || a.OpenCount() != 0 {
		t.Fatalf("CloseAll returned %d, open %d", len(rest), a.OpenCount())
	}
	opened, closedN := a.Counts()
	if opened != 3 || closedN != 3 {
		t.Fatalf("counts opened=%d closed=%d, want 3/3", opened, closedN)
	}
}

func TestAssemblerWindowSnapshot(t *testing.T) {
	a := NewAssembler(time.Minute, nil)
	var ap Appended
	for k := 1; k <= 6; k++ {
		ap = a.Append(Event{ClientID: "c", SQL: "s"}, k, 3)
	}
	if ap.Pos != 5 {
		t.Fatalf("pos = %d", ap.Pos)
	}
	want := []int{4, 5, 6}
	if len(ap.Keys) != 3 || ap.Keys[0] != want[0] || ap.Keys[1] != want[1] || ap.Keys[2] != want[2] {
		t.Fatalf("window snapshot %v, want %v", ap.Keys, want)
	}
}

func TestAssemblerRollback(t *testing.T) {
	a := NewAssembler(time.Minute, nil)
	a.Append(Event{ClientID: "c", SQL: "s"}, 1, 0)
	a.Append(Event{ClientID: "c", SQL: "s"}, 2, 0)
	ap := a.Append(Event{ClientID: "c", SQL: "s"}, 3, 0)

	if a.Rollback("c", ap.Pos-1) {
		t.Fatal("rollback of a non-last position must fail")
	}
	if !a.Rollback("c", ap.Pos) {
		t.Fatal("rollback of the last position must succeed")
	}
	if next := a.Append(Event{ClientID: "c", SQL: "s"}, 4, 0); next.Pos != 2 {
		t.Fatalf("after rollback next pos = %d, want 2", next.Pos)
	}

	// Rolling back the only operation removes the session entirely.
	first := a.Append(Event{ClientID: "d", SQL: "s"}, 1, 0)
	if !a.Rollback("d", first.Pos) {
		t.Fatal("rollback of sole op must succeed")
	}
	if a.OpenCount() != 1 {
		t.Fatalf("open = %d, want 1 (d removed)", a.OpenCount())
	}
}

// blockingRanker parks scoring until released, to fill the queue
// deterministically.
type blockingRanker struct {
	started chan struct{}
	release chan struct{}
}

func (r *blockingRanker) RankBatch(dst []int, contexts [][]int, keys []int) []int {
	r.started <- struct{}{}
	<-r.release
	for range keys {
		dst = append(dst, 1)
	}
	return dst
}

func TestEngineBackpressure(t *testing.T) {
	r := &blockingRanker{started: make(chan struct{}, 16), release: make(chan struct{})}
	var mu sync.Mutex
	var results []Result
	e := NewEngine(r, 1, 1, 2, 1, func(res Result) {
		mu.Lock()
		results = append(results, res)
		mu.Unlock()
	})
	job := func(pos int) Job { return Job{Client: "c", SessionID: "s", Keys: []int{1, 2}, Pos: pos} }

	if err := e.Submit(0, job(0)); err != nil {
		t.Fatal(err)
	}
	<-r.started // worker holds job 0
	if err := e.Submit(0, job(1)); err != nil {
		t.Fatal(err)
	}
	if err := e.Submit(0, job(2)); err != nil {
		t.Fatal(err)
	}
	if err := e.Submit(0, job(3)); err != ErrBusy {
		t.Fatalf("submit into full queue: %v, want ErrBusy", err)
	}

	close(r.release)
	e.Drain()
	scored, rejected := e.Counts()
	if scored != 3 || rejected != 1 {
		t.Fatalf("scored=%d rejected=%d, want 3/1", scored, rejected)
	}
	mu.Lock()
	n := len(results)
	mu.Unlock()
	if n != 3 {
		t.Fatalf("results = %d, want 3", n)
	}

	e.Stop()
	if err := e.Submit(0, job(4)); err != ErrStopped {
		t.Fatalf("submit after stop: %v, want ErrStopped", err)
	}
}

// countingRanker flags key 0 as anomalous and counts ranked operations
// (not fused calls), so micro-batching cannot hide dropped jobs.
type countingRanker struct{ calls atomic.Int64 }

func (r *countingRanker) RankBatch(dst []int, contexts [][]int, keys []int) []int {
	for _, key := range keys {
		r.calls.Add(1)
		if key == 0 {
			dst = append(dst, 99)
		} else {
			dst = append(dst, 1)
		}
	}
	return dst
}

func TestEngineMicroBatchScoresEverything(t *testing.T) {
	r := &countingRanker{}
	e := NewEngine(r, 1, 3, 64, 8, nil)
	for i := 0; i < 50; i++ {
		if err := e.Submit(0, Job{Keys: []int{1, 2, 3}, Pos: i}); err != nil {
			t.Fatal(err)
		}
	}
	e.Drain()
	if got := r.calls.Load(); got != 50 {
		t.Fatalf("ranked %d jobs, want 50", got)
	}
	e.Stop()
}

func TestAlertStoreLifecycle(t *testing.T) {
	clk := newFakeClock()
	st := newAlertStore(clk.Now, -1, 0)

	res := Result{Job: Job{Client: "c", User: "u", SessionID: "sess-1", Pos: 6, SQL: "BAD"}, Rank: 99}
	if !st.flag(res, "u") {
		t.Fatal("first flag must be absorbed")
	}
	res.Pos = 8
	st.flag(res, "u")
	res.Pos = 6 // duplicate
	st.flag(res, "u")

	alerts := st.list("")
	if len(alerts) != 1 {
		t.Fatalf("alerts = %d, want 1", len(alerts))
	}
	a := alerts[0]
	if a.Final || a.Status != StatusOpen {
		t.Fatalf("premature final/status: %+v", a)
	}
	if len(a.Positions) != 2 || a.Positions[0] != 6 || a.Positions[1] != 8 {
		t.Fatalf("positions %v, want [6 8]", a.Positions)
	}

	// Resolving an open-session alert is refused.
	if _, err := st.resolve(a.ID, StatusConfirmed); err != ErrSessionOpen {
		t.Fatalf("resolve before close: %v, want ErrSessionOpen", err)
	}

	// Close-out confirms position 6 and adds 10.
	fa := st.finalize("sess-1", "c", "u", []string{"", "", "", "", "", "", "BAD", "", "", "", "WORSE"}, &mockDetectAlert)
	if fa == nil || !fa.Final {
		t.Fatal("finalize did not finalize")
	}
	if _, err := st.resolve(fa.ID, StatusConfirmed); err != nil {
		t.Fatal(err)
	}
	if _, err := st.resolve(fa.ID, StatusConfirmed); err != ErrNoAlert {
		t.Fatalf("double resolve: %v, want ErrNoAlert", err)
	}

	// Late flags for a finalized session are dropped.
	if st.flag(Result{Job: Job{SessionID: "sess-1", Pos: 3}, Rank: 99}, "u") {
		t.Fatal("late flag on finalized session must be dropped")
	}

	// A session that closes clean without prior flags yields no alert.
	if a := st.finalize("sess-2", "c", "u", nil, nil); a != nil {
		t.Fatalf("clean close produced alert %+v", a)
	}
}

func TestRingSetEviction(t *testing.T) {
	r := newRingSet(2)
	r.add("a")
	r.add("b")
	r.add("c") // evicts a
	if r.has("a") || !r.has("b") || !r.has("c") {
		t.Fatal("FIFO eviction broken")
	}
	r.add("b") // already present, no eviction
	if !r.has("c") {
		t.Fatal("duplicate add must not evict")
	}
}

func TestServiceMidSessionFlagAndCloseout(t *testing.T) {
	u := testUCAD(t)
	clk := newFakeClock()
	svc := NewService(u, Config{
		Workers:     2,
		QueueSize:   64,
		Batch:       4,
		IdleTimeout: 10 * time.Minute,
		Clock:       clk.Now,
	})

	// Two clients stream; the attacker injects the A1-style read at
	// position 6 of a 12-op session.
	for pos := 0; pos < 12; pos++ {
		if err := svc.Ingest(Event{ClientID: "victim", User: "app", SQL: normalStatement(pos)}); err != nil {
			t.Fatal(err)
		}
		sql := normalStatement(pos)
		if pos == 6 {
			sql = anomalySQL
		}
		if err := svc.Ingest(Event{ClientID: "attacker", User: "eve", SQL: sql}); err != nil {
			t.Fatal(err)
		}
	}
	svc.Drain()

	// The flag fired while both sessions are still open.
	if n := svc.Stats().SessionsOpen; n != 2 {
		t.Fatalf("sessions open = %d, want 2", n)
	}
	alerts := svc.Alerts(StatusOpen)
	if len(alerts) != 1 {
		t.Fatalf("alerts = %+v, want exactly the attacker's", alerts)
	}
	a := alerts[0]
	if a.Client != "attacker" || a.Final || len(a.Positions) != 1 || a.Positions[0] != 6 {
		t.Fatalf("mid-session alert %+v, want open attacker alert at position 6", a)
	}
	if a.Statements[0] != anomalySQL {
		t.Fatalf("alert statement %q", a.Statements[0])
	}

	// Idle close-out: both sessions pass through full-session detection.
	clk.Advance(11 * time.Minute)
	if n := svc.CloseIdleNow(); n != 2 {
		t.Fatalf("closed %d, want 2", n)
	}
	st := svc.Stats()
	if st.SessionsOpen != 0 || st.SessionsProcessed != 2 || st.SessionsFlagged != 1 {
		t.Fatalf("post-close stats %+v", st)
	}
	if st.VerifiedPool != 1 {
		t.Fatalf("verified pool = %d, want 1 (victim only)", st.VerifiedPool)
	}

	alerts = svc.Alerts("")
	if len(alerts) != 1 || !alerts[0].Final {
		t.Fatalf("final alerts %+v", alerts)
	}

	// Expert confirms: the anomaly never joins the training pool.
	if err := svc.Resolve(alerts[0].ID, StatusConfirmed); err != nil {
		t.Fatal(err)
	}
	if len(svc.Online().Pending()) != 0 {
		t.Fatal("pending queue not drained after confirm")
	}
	svc.Stop()
}

func TestServiceAutoRetrainOnVerifiedPool(t *testing.T) {
	u := testUCAD(t)
	clk := newFakeClock()
	svc := NewService(u, Config{
		Workers:       1,
		QueueSize:     64,
		IdleTimeout:   time.Minute,
		RetrainAfter:  2,
		RetrainEpochs: 1,
		Clock:         clk.Now,
	})
	for c := 0; c < 3; c++ {
		for pos := 0; pos < 6; pos++ {
			if err := svc.Ingest(Event{ClientID: fmt.Sprintf("c%d", c), User: "app", SQL: normalStatement(pos)}); err != nil {
				t.Fatal(err)
			}
		}
	}
	svc.Drain()
	clk.Advance(2 * time.Minute)
	svc.CloseIdleNow()
	svc.Stop() // waits for the background fine-tune

	st := svc.Stats()
	if st.Retrains < 1 {
		t.Fatalf("retrains = %d, want >= 1", st.Retrains)
	}
	if st.VerifiedPool >= 3 {
		t.Fatalf("verified pool = %d, want drained by retrain", st.VerifiedPool)
	}
}

func TestServiceInvalidAndStopped(t *testing.T) {
	u := testUCAD(t)
	svc := NewService(u, Config{Workers: 1, QueueSize: 8})
	if err := svc.Ingest(Event{ClientID: "c"}); err != ErrInvalid {
		t.Fatalf("empty sql: %v, want ErrInvalid", err)
	}
	if err := svc.Resolve(1, "bogus"); err != ErrInvalid {
		t.Fatalf("bogus verdict: %v, want ErrInvalid", err)
	}
	svc.Stop()
	if err := svc.Ingest(Event{ClientID: "c", SQL: "SELECT 1"}); err != ErrStopped {
		t.Fatalf("ingest after stop: %v, want ErrStopped", err)
	}
	svc.Stop() // idempotent
}
