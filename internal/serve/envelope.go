package serve

import "errors"

// Error envelope. Every non-2xx response across the API carries one
// machine-readable envelope under the top-level "error" key:
//
//	{"error":{"code":"backpressure","message":"...","retryable":true}}
//
// code draws from the closed taxonomy below (internal/tenant adds its
// routing codes on top), message is human-readable and unstable, and
// retryable tells automated senders — the feed deliverer first among
// them — whether resending the identical request can ever succeed.
// Responses that previously carried a top-level "error" string now
// carry this object (per-event statuses inside batch responses keep
// their legacy "error" string one release longer, alongside the new
// code/retryable fields).
const (
	// CodeBackpressure: the shard's scoring queue is full; the event was
	// rolled back and is safe to resend (Retry-After is set).
	CodeBackpressure = "backpressure"
	// CodeShuttingDown: the service is stopping; resend to the
	// replacement instance.
	CodeShuttingDown = "shutting_down"
	// CodeNotReady: a durable service has not finished Restore yet.
	CodeNotReady = "not_ready"
	// CodeInvalidEvent: the event failed validation (e.g. missing sql).
	CodeInvalidEvent = "invalid_event"
	// CodeInvalidBody: the request body was not decodable.
	CodeInvalidBody = "invalid_body"
	// CodeSessionOpen: the alert's session is still open; resolve it
	// after close-out.
	CodeSessionOpen = "session_open"
	// CodeUnknownAlert: no open alert with that id.
	CodeUnknownAlert = "unknown_alert"
	// CodeUnknownVerdict: the resolve verdict was not false_alarm or
	// confirmed.
	CodeUnknownVerdict = "unknown_verdict"
	// CodeInternal: unclassified server-side failure.
	CodeInternal = "internal"
)

// ErrorInfo is the error envelope's payload.
type ErrorInfo struct {
	Code      string `json:"code"`
	Message   string `json:"message"`
	Retryable bool   `json:"retryable"`
}

// ErrorBody wraps an ErrorInfo under the top-level "error" key — the
// response shape of every non-2xx endpoint without a richer body.
type ErrorBody struct {
	Error *ErrorInfo `json:"error"`
}

// Errf builds an ErrorInfo in place for handler-local messages.
func Errf(code, message string, retryable bool) *ErrorInfo {
	return &ErrorInfo{Code: code, Message: message, Retryable: retryable}
}

// ErrorInfoFor classifies an ingest/resolve error into the envelope
// taxonomy. Exported for internal/tenant's router, which extends the
// taxonomy with its own routing codes.
func ErrorInfoFor(err error) *ErrorInfo {
	if err == nil {
		return nil
	}
	info := &ErrorInfo{Message: err.Error()}
	switch {
	case errors.Is(err, ErrBusy):
		info.Code, info.Retryable = CodeBackpressure, true
	case errors.Is(err, ErrStopped):
		info.Code, info.Retryable = CodeShuttingDown, true
	case errors.Is(err, ErrNotReady):
		info.Code, info.Retryable = CodeNotReady, true
	case errors.Is(err, ErrInvalid):
		info.Code = CodeInvalidEvent
	case errors.Is(err, ErrSessionOpen):
		info.Code = CodeSessionOpen
	case errors.Is(err, ErrNoAlert):
		info.Code = CodeUnknownAlert
	default:
		info.Code = CodeInternal
	}
	return info
}
