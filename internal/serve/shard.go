package serve

import (
	"sort"
	"sync"

	"github.com/ucad/ucad/internal/wal"
)

// shard is one partition of the ingest plane. Sessions are routed to a
// shard by consistent hash of their client id, and everything stateful
// about ingest — the session map, the Seq/epoch dedupe marks, idle
// close-out, and the log-before-ack WAL stream — lives shard-local, so
// two events for clients on different shards never contend on a lock
// or serialize on an fsync.
type shard struct {
	idx int
	asm *Assembler

	// durMu makes an assembler mutation and its WAL record atomic with
	// respect to snapshot capture on THIS shard. The cross-shard
	// snapshot barrier (Service.SnapshotNow) acquires every shard's
	// durMu in index order; no other path holds two at once.
	durMu sync.Mutex
	// store is the shard's own WAL segment stream (wal-shard-NN-*.log
	// under the tenant's WAL dir); nil without durability, written once
	// by Restore before the ready flag is published.
	store *wal.Store
}

// shardIndex hashes a client id onto one of n shards (FNV-1a). The
// tenant dimension is already partitioned — each tenant has its own
// Service — so the client id alone spreads that tenant's sessions.
func shardIndex(client string, n int) int {
	if n <= 1 {
		return 0
	}
	h := uint32(2166136261)
	for i := 0; i < len(client); i++ {
		h ^= uint32(client[i])
		h *= 16777619
	}
	return int(h % uint32(n))
}

// shardFor routes a client id to its owning shard.
func (s *Service) shardFor(client string) *shard {
	return s.shards[shardIndex(client, len(s.shards))]
}

// openCount sums open sessions across shards.
func (s *Service) openCount() int {
	n := 0
	for _, sh := range s.shards {
		n += sh.asm.OpenCount()
	}
	return n
}

// asmCounts sums lifetime opened/closed session counts across shards.
func (s *Service) asmCounts() (opened, closed int64) {
	for _, sh := range s.shards {
		o, c := sh.asm.Counts()
		opened += o
		closed += c
	}
	return opened, closed
}

// exportAll merges every shard's open-session export into one
// client-sorted state; the returned seq is the highest shard counter,
// so a SetSeqFloor on any layout keeps restored ids unique. It takes
// no cross-shard barrier — callers needing a consistent cut against
// concurrent ingest hold the shard durMus (see SnapshotNow) or have
// quiesced ingestion.
func (s *Service) exportAll() (seq int, out []SessionState) {
	for _, sh := range s.shards {
		sq, st := sh.asm.Export()
		if sq > seq {
			seq = sq
		}
		out = append(out, st...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Client < out[j].Client })
	return seq, out
}
