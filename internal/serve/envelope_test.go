package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// TestErrorInfoFor pins the sentinel-error → envelope taxonomy: every
// ingest/resolve failure mode maps to a stable machine-readable code,
// and only the transient ones are marked retryable.
func TestErrorInfoFor(t *testing.T) {
	for _, tc := range []struct {
		err       error
		code      string
		retryable bool
	}{
		{ErrBusy, CodeBackpressure, true},
		{ErrStopped, CodeShuttingDown, true},
		{ErrNotReady, CodeNotReady, true},
		{ErrInvalid, CodeInvalidEvent, false},
		{ErrSessionOpen, CodeSessionOpen, false},
		{ErrNoAlert, CodeUnknownAlert, false},
		{errors.New("disk on fire"), CodeInternal, false},
		{fmt.Errorf("wrapped: %w", ErrBusy), CodeBackpressure, true},
	} {
		info := ErrorInfoFor(tc.err)
		if info.Code != tc.code || info.Retryable != tc.retryable {
			t.Errorf("ErrorInfoFor(%v) = {%s retryable=%v}, want {%s retryable=%v}",
				tc.err, info.Code, info.Retryable, tc.code, tc.retryable)
		}
		if info.Message == "" {
			t.Errorf("ErrorInfoFor(%v): empty message", tc.err)
		}
	}
	// Backpressure additionally sets Retry-After on the wire.
	rec := httptest.NewRecorder()
	if code := IngestStatusCode(rec, ErrBusy); code != http.StatusServiceUnavailable {
		t.Fatalf("IngestStatusCode(ErrBusy) = %d", code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("backpressure response missing Retry-After")
	}
}

// envelopeOf decodes the unified {"error":{...}} envelope out of a
// response body, failing the test when it is absent or malformed.
func envelopeOf(t *testing.T, body string) ErrorInfo {
	t.Helper()
	var eb struct {
		Error *ErrorInfo `json:"error"`
	}
	if err := json.Unmarshal([]byte(body), &eb); err != nil || eb.Error == nil {
		t.Fatalf("response carries no error envelope: %q (err=%v)", body, err)
	}
	if eb.Error.Code == "" || eb.Error.Message == "" {
		t.Fatalf("incomplete envelope in %q", body)
	}
	return *eb.Error
}

// TestEnvelopeGoldenEndpoints walks every serve endpoint's failure
// modes and asserts each non-2xx response carries the unified envelope
// with the documented code and retryable bit.
func TestEnvelopeGoldenEndpoints(t *testing.T) {
	u := testUCAD(t)
	clk := newFakeClock()
	svc := NewService(u, Config{Workers: 2, QueueSize: 256, IdleTimeout: 10 * time.Minute, Clock: clk.Now})
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	check := func(method, path, body string, wantStatus int, wantCode string, wantRetryable bool) {
		t.Helper()
		req, err := http.NewRequest(method, ts.URL+path, strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		raw := new(strings.Builder)
		dec := json.NewDecoder(resp.Body)
		var v json.RawMessage
		if err := dec.Decode(&v); err == nil {
			raw.Write(v)
		}
		resp.Body.Close()
		if resp.StatusCode != wantStatus {
			t.Fatalf("%s %s: status %d, want %d (%s)", method, path, resp.StatusCode, wantStatus, raw)
		}
		env := envelopeOf(t, raw.String())
		if env.Code != wantCode || env.Retryable != wantRetryable {
			t.Fatalf("%s %s: envelope {%s retryable=%v}, want {%s retryable=%v}",
				method, path, env.Code, env.Retryable, wantCode, wantRetryable)
		}
	}

	// POST /v1/events — body-level and event-level rejections.
	check("POST", "/v1/events", `not json`, http.StatusBadRequest, CodeInvalidBody, false)
	check("POST", "/v1/events", `{"client_id":"x"}`, http.StatusBadRequest, CodeInvalidEvent, false)
	check("POST", "/v1/events", `[{"client_id":"x"}]`, http.StatusBadRequest, CodeInvalidEvent, false)

	// GET /v1/alerts — bad filter.
	check("GET", "/v1/alerts?status=bogus", "", http.StatusBadRequest, CodeInvalidBody, false)

	// POST /v1/alerts/{id}/resolve — malformed id, unknown id.
	check("POST", "/v1/alerts/abc/resolve", `{}`, http.StatusBadRequest, CodeInvalidBody, false)
	check("POST", "/v1/alerts/999/resolve", `{"verdict":"confirmed"}`, http.StatusNotFound, CodeUnknownAlert, false)

	// Raise a real alert to drive the session_open / unknown_verdict /
	// unknown_alert sequence.
	for pos := 0; pos < 12; pos++ {
		sql := normalStatement(pos)
		if pos == 6 {
			sql = anomalySQL
		}
		if err := svc.Ingest(Event{ClientID: "attacker", User: "app", SQL: sql}); err != nil {
			t.Fatal(err)
		}
	}
	svc.Drain()
	alerts := svc.Alerts(StatusOpen)
	if len(alerts) != 1 {
		t.Fatalf("open alerts = %d, want 1", len(alerts))
	}
	id := alerts[0].ID
	resolve := fmt.Sprintf("/v1/alerts/%d/resolve", id)

	check("POST", resolve, `{"verdict":"confirmed"}`, http.StatusConflict, CodeSessionOpen, false)
	clk.Advance(11 * time.Minute)
	svc.CloseIdleNow()
	check("POST", resolve, `{"verdict":"maybe"}`, http.StatusBadRequest, CodeUnknownVerdict, false)
	if code, _ := get(t, ts.URL+"/healthz"); code != http.StatusOK {
		t.Fatalf("healthz = %d", code)
	}
	resp, err := http.Post(ts.URL+resolve, "application/json", strings.NewReader(`{"verdict":"confirmed"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("resolve = %d", resp.StatusCode)
	}
	check("POST", resolve, `{"verdict":"confirmed"}`, http.StatusNotFound, CodeUnknownAlert, false)

	// Shutdown: every further ingest is a retryable shutting_down.
	svc.Stop()
	check("POST", "/v1/events", `{"client_id":"x","user":"u","sql":"SELECT 1"}`, http.StatusServiceUnavailable, CodeShuttingDown, true)
	// Batch shape: the envelope rides the batch response alongside the
	// per-event codes.
	req, _ := http.NewRequest("POST", ts.URL+"/v1/events", strings.NewReader(`[{"client_id":"x","user":"u","sql":"SELECT 1"}]`))
	req.Header.Set("Content-Type", "application/json")
	bresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var er eventsResponse
	json.NewDecoder(bresp.Body).Decode(&er)
	bresp.Body.Close()
	if bresp.StatusCode != http.StatusServiceUnavailable || er.Err == nil || er.Err.Code != CodeShuttingDown || !er.Err.Retryable {
		t.Fatalf("stopped batch envelope: %d %+v", bresp.StatusCode, er.Err)
	}
	if len(er.Events) != 1 || er.Events[0].Code != CodeShuttingDown || !er.Events[0].Retryable || er.Events[0].Error == "" {
		t.Fatalf("stopped batch per-event status: %+v", er.Events)
	}
}

// TestEnvelopeNotReady: a durable service answers retryable not_ready
// until Restore has replayed its WAL shards.
func TestEnvelopeNotReady(t *testing.T) {
	u := testUCAD(t)
	dir := t.TempDir()
	svc := NewService(u, Config{Workers: 1, Durability: &DurabilityConfig{Dir: dir}})
	defer svc.Stop()
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	resp, err := http.Post(ts.URL+"/v1/events", "application/json",
		strings.NewReader(`{"client_id":"x","user":"u","sql":"SELECT 1"}`))
	if err != nil {
		t.Fatal(err)
	}
	var er eventsResponse
	json.NewDecoder(resp.Body).Decode(&er)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || er.Err == nil ||
		er.Err.Code != CodeNotReady || !er.Err.Retryable {
		t.Fatalf("pre-Restore ingest: %d %+v", resp.StatusCode, er.Err)
	}
}
