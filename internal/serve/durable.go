package serve

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"github.com/ucad/ucad/internal/core"
	"github.com/ucad/ucad/internal/obs"
	"github.com/ucad/ucad/internal/session"
	"github.com/ucad/ucad/internal/wal"
)

// DurabilityConfig enables crash-safe serving: every accepted event is
// appended to a write-ahead log before the ingest call returns, open
// sessions are periodically snapshotted, and a restarted Service
// rebuilds the assembler from "newest snapshot + WAL suffix" — the
// long-lived streaming state the paper's whole-session detector depends
// on survives a deploy or a kill -9.
type DurabilityConfig struct {
	// Dir holds the WAL segments and snapshots.
	Dir string
	// Fsync selects when appended records reach stable storage (see
	// wal.SyncPolicy). Under SyncAlways an acknowledged event is
	// guaranteed to be restored after any crash.
	Fsync wal.SyncPolicy
	// FsyncInterval is the background flush period under SyncInterval
	// (0 means the wal default of 100ms).
	FsyncInterval time.Duration
	// SegmentBytes caps a WAL segment before rotation (0 means 64 MiB).
	SegmentBytes int64
	// SnapshotEvery is the background snapshot/compaction period
	// (0 disables the loop; SnapshotNow still works and Close always
	// takes a final snapshot).
	SnapshotEvery time.Duration
	// Checkpoints, if non-nil, receives an atomic model checkpoint after
	// every fine-tune round; a checkpoint that fails validation is
	// rolled back to the last good one.
	Checkpoints *wal.Checkpoints
}

// RestoreStats summarizes one Service.Restore.
type RestoreStats struct {
	// Sessions is the number of open sessions restored.
	Sessions int
	// Records is the number of WAL records replayed on the snapshot.
	Records int
	// SnapshotSeq anchors the restored snapshot (0 = none found).
	SnapshotSeq uint64
	// CleanSeal reports whether the log ended with a clean-shutdown seal
	// record; false means the previous process crashed.
	CleanSeal bool
	// TornTail reports whether a crash tail was truncated.
	TornTail bool
}

// WAL record types. Records are JSON with a one-letter type tag; the
// framing, checksumming and torn-tail handling live in internal/wal.
const (
	recEvent    = "ev"   // one accepted operation appended to a session
	recClose    = "cl"   // a session left the assembler (idle close-out or flush)
	recRollback = "rb"   // a backpressure rollback undid the tail operation
	recSeal     = "seal" // clean shutdown marker
)

type walRecord struct {
	T      string    `json:"t"`
	Client string    `json:"c,omitempty"`
	SID    string    `json:"s,omitempty"`
	Pos    int       `json:"p,omitempty"`
	User   string    `json:"u,omitempty"`
	Addr   string    `json:"a,omitempty"`
	SQL    string    `json:"q,omitempty"`
	TS     time.Time `json:"ts"`
	// Epoch/Seq are the event's sender-side dedupe coordinates
	// (Event.Epoch/Event.Seq), replayed so redelivery fencing survives
	// recovery. Absent on pre-epoch logs and on epoch-less events.
	Epoch int64 `json:"e,omitempty"`
	Seq   int64 `json:"n,omitempty"`
}

// snapState is the snapshot payload: the assembler's full open-session
// state plus the session-id counter.
type snapState struct {
	Seq      int            `json:"seq"`
	Sessions []SessionState `json:"sessions"`
}

// Restore opens the durability layer and rebuilds the assembler from
// the newest valid snapshot plus the WAL suffix. It must be called
// (once) before Start and before the first Ingest; without it a
// durability-configured Service rejects events with ErrNotReady so no
// accepted event can ever bypass the log. With Config.Durability nil it
// is a no-op.
func (s *Service) Restore() (RestoreStats, error) {
	var st RestoreStats
	d := s.cfg.Durability
	if d == nil {
		return st, nil
	}
	if s.store.Load() != nil {
		return st, fmt.Errorf("serve: Restore called twice")
	}
	m := s.metrics
	store, err := wal.OpenStore(d.Dir, wal.Options{
		SegmentBytes: d.SegmentBytes,
		Sync:         d.Fsync,
		SyncInterval: d.FsyncInterval,
		OnAppend:     func(int) { m.walAppends.Inc() },
		OnSync:       func(took time.Duration) { m.walFsyncSeconds.Observe(took.Seconds()) },
	})
	if err != nil {
		return st, err
	}
	rec, err := store.Recover(s.restoreSnapshot, func(b []byte) error {
		var r walRecord
		if err := json.Unmarshal(b, &r); err != nil {
			// An undecodable-but-checksummed record is a version skew
			// bug, not a torn tail; surface it.
			return fmt.Errorf("serve: undecodable wal record: %w", err)
		}
		s.replayRecord(r, &st)
		return nil
	})
	if err != nil {
		store.Close()
		return st, err
	}
	st.Records = rec.Records
	st.SnapshotSeq = rec.SnapshotSeq
	st.TornTail = rec.TornTail
	st.Sessions = s.asm.OpenCount()
	s.recovered.Store(int64(st.Sessions))
	s.ckpts = d.Checkpoints
	s.store.Store(store)
	if d.SnapshotEvery > 0 {
		s.snapStop = make(chan struct{})
		s.snapDone = make(chan struct{})
		go s.snapshotLoop(d.SnapshotEvery)
	}
	return st, nil
}

// restoreSnapshot rebuilds the assembler from a snapshot payload,
// re-tokenizing every statement with the trained vocabulary (the
// vocabulary is fixed after training, so the key windows come back
// byte-exact).
func (s *Service) restoreSnapshot(b []byte) error {
	var snap snapState
	if err := json.Unmarshal(b, &snap); err != nil {
		return fmt.Errorf("serve: undecodable snapshot: %w", err)
	}
	for _, ss := range snap.Sessions {
		keys := make([]int, len(ss.Ops))
		for i := range ss.Ops {
			keys[i] = s.ucad.Vocab.Key(ss.Ops[i].SQL)
			ss.Ops[i].Key = keys[i]
		}
		s.asm.Restore(ss, keys)
	}
	s.asm.SetSeqFloor(snap.Seq)
	return nil
}

// replayRecord applies one WAL record on top of the restored snapshot.
// Application is idempotent (see Assembler.ReplayAppend), so records
// the snapshot already covers are dropped, never duplicated.
func (s *Service) replayRecord(r walRecord, st *RestoreStats) {
	switch r.T {
	case recEvent:
		key := s.ucad.Vocab.Key(r.SQL)
		s.asm.ReplayAppend(r.Client, r.SID, r.Pos, session.Operation{
			Time: r.TS, User: r.User, Addr: r.Addr, SQL: r.SQL,
		}, key, r.Epoch, r.Seq)
	case recClose:
		s.asm.ReplayClose(r.Client, r.SID)
	case recRollback:
		s.asm.ReplayRollback(r.Client, r.SID, r.Pos)
	case recSeal:
		st.CleanSeal = true
	}
}

// appendWAL marshals and appends one record; the caller holds durMu
// when the record must stay ordered with an assembler mutation.
func (s *Service) appendWAL(store *wal.Store, r walRecord) error {
	b, err := json.Marshal(r)
	if err != nil {
		return err
	}
	return store.Append(b)
}

// ingestDurable is Ingest's assemble-and-log step when durability is
// on: the assembler mutation and its WAL record happen atomically with
// respect to snapshot capture (durMu), and the record is durable per
// the fsync policy before the event is acknowledged. A WAL write
// failure undoes the append and rejects the event — nothing enters a
// session that the log cannot replay.
func (s *Service) ingestDurable(store *wal.Store, ev Event, key int) (Appended, error) {
	client := ev.Client()
	s.durMu.Lock()
	ap := s.asm.Append(ev, key, s.window+1)
	if ap.Dup {
		// A redelivery mutated nothing, so there is nothing to log: the
		// original append's WAL record already covers this position.
		s.durMu.Unlock()
		return ap, nil
	}
	err := s.appendWAL(store, walRecord{
		T: recEvent, Client: client, SID: ap.SessionID, Pos: ap.Pos,
		User: ev.User, Addr: ev.Addr, SQL: ev.SQL, TS: ap.Time,
		Epoch: ev.Epoch, Seq: ev.Seq,
	})
	if err != nil {
		s.asm.Rollback(client, ap.Pos)
		s.durMu.Unlock()
		return ap, fmt.Errorf("serve: wal append: %w", err)
	}
	s.durMu.Unlock()
	return ap, nil
}

// rollbackLogged undoes the tail operation after a scoring-queue
// rejection, logging the rollback so recovery replays the undo too.
func (s *Service) rollbackLogged(client, sessionID string, pos int) {
	store := s.store.Load()
	if store == nil {
		s.asm.Rollback(client, pos)
		return
	}
	s.durMu.Lock()
	if s.asm.Rollback(client, pos) {
		s.appendWAL(store, walRecord{T: recRollback, Client: client, SID: sessionID, Pos: pos})
	}
	s.durMu.Unlock()
}

// closeLogged runs the given assembler close-out under durMu and logs
// one close record per closed session, so recovery never resurrects a
// session that already received its authoritative verdict.
func (s *Service) closeLogged(close func() []Closed) []Closed {
	store := s.store.Load()
	if store == nil {
		return close()
	}
	s.durMu.Lock()
	closed := close()
	for _, c := range closed {
		s.appendWAL(store, walRecord{T: recClose, Client: c.Client, SID: c.Session.ID})
	}
	s.durMu.Unlock()
	return closed
}

// SnapshotNow captures the assembler's open sessions and commits them
// as a durable snapshot, pruning WAL segments the snapshot supersedes.
// No-op without durability.
func (s *Service) SnapshotNow() error {
	store := s.store.Load()
	if store == nil {
		return nil
	}
	t := obs.StartTimer(s.metrics.snapshotSeconds)
	defer t.Stop()
	// State capture and segment rotation are atomic with respect to
	// appends (durMu), pinning the snapshot to an exact log position;
	// the serialization and commit fsync happen off the ingest path.
	s.durMu.Lock()
	seq, sessions := s.asm.Export()
	anchor, err := store.BeginSnapshot()
	s.durMu.Unlock()
	if err != nil {
		return err
	}
	b, err := json.Marshal(snapState{Seq: seq, Sessions: sessions})
	if err != nil {
		return err
	}
	return store.CommitSnapshot(anchor, b)
}

func (s *Service) snapshotLoop(every time.Duration) {
	defer close(s.snapDone)
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			s.SnapshotNow()
		case <-s.snapStop:
			return
		}
	}
}

// sealAndCloseStore takes the final snapshot, appends the clean-seal
// record and closes the log (shutdown tail of Close/Stop).
func (s *Service) sealAndCloseStore() error {
	store := s.store.Load()
	if store == nil {
		return nil
	}
	err := s.SnapshotNow()
	if serr := s.appendWAL(store, walRecord{T: recSeal}); err == nil {
		err = serr
	}
	if cerr := store.Close(); err == nil {
		err = cerr
	}
	return err
}

// checkpointModel writes an atomic model checkpoint after a fine-tune
// round and validates it by loading it back; a checkpoint core.Load
// rejects is rolled back so the manifest always points at a loadable
// model. Runs on the retraining goroutine.
func (s *Service) checkpointModel() {
	if s.ckpts == nil {
		return
	}
	path, err := s.ckpts.Save(s.online.Save)
	if err != nil {
		s.ckptErrors.Add(1)
		return
	}
	if err := verifyCheckpoint(path); err != nil {
		s.ckptErrors.Add(1)
		s.ckpts.Rollback()
	}
}

// verifyCheckpoint proves a checkpoint file loads back into a detector.
func verifyCheckpoint(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	_, err = core.Load(f)
	return err
}
