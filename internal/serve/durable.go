package serve

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"github.com/ucad/ucad/internal/core"
	"github.com/ucad/ucad/internal/obs"
	"github.com/ucad/ucad/internal/session"
	"github.com/ucad/ucad/internal/wal"
)

// DurabilityConfig enables crash-safe serving: every accepted event is
// appended to a write-ahead log before the ingest call returns, open
// sessions are periodically snapshotted, and a restarted Service
// rebuilds the assemblers from "newest snapshot + WAL suffix" — the
// long-lived streaming state the paper's whole-session detector depends
// on survives a deploy or a kill -9.
//
// The WAL directory holds one stream per ingest shard
// (wal-shard-NN-*.log / snap-shard-NN-*.snap) named by a layout
// manifest (wal.Manifest). Restore replays the streams in parallel and,
// when the on-disk shard count differs from the configured one —
// including the pre-sharding v1 single-stream layout — migrates through
// the crash-safe remap protocol documented in internal/wal.
type DurabilityConfig struct {
	// Dir holds the WAL segments, snapshots and the layout manifest.
	Dir string
	// Fsync selects when appended records reach stable storage (see
	// wal.SyncPolicy). Under SyncAlways an acknowledged event is
	// guaranteed to be restored after any crash.
	Fsync wal.SyncPolicy
	// FsyncInterval is the background flush period under SyncInterval
	// (0 means the wal default of 100ms).
	FsyncInterval time.Duration
	// SegmentBytes caps a WAL segment before rotation (0 means 64 MiB).
	SegmentBytes int64
	// SnapshotEvery is the background snapshot/compaction period
	// (0 disables the loop; SnapshotNow still works and Close always
	// takes a final snapshot).
	SnapshotEvery time.Duration
	// Checkpoints, if non-nil, receives an atomic model checkpoint after
	// every fine-tune round; a checkpoint that fails validation is
	// rolled back to the last good one.
	Checkpoints *wal.Checkpoints
	// WarmScoreCache pre-populates the model's score cache from the
	// restored sessions at the end of Restore (see
	// Service.WarmScoreCache), so a restarted node's first scoring
	// passes hit instead of recomputing. No-op without a score cache.
	WarmScoreCache bool
}

// RestoreStats summarizes one Service.Restore.
type RestoreStats struct {
	// Sessions is the number of open sessions restored.
	Sessions int
	// Records is the number of WAL records replayed, summed over every
	// shard stream.
	Records int
	// SnapshotSeq is the highest snapshot anchor across the restored
	// streams (0 = none found).
	SnapshotSeq uint64
	// CleanSeal reports whether every stream ended with a
	// clean-shutdown seal record; false means the previous process
	// crashed (or the layout was just migrated).
	CleanSeal bool
	// TornTail reports whether a crash tail was truncated on any stream.
	TornTail bool
	// CacheWarmed is the number of score-cache rows pre-populated from
	// the restored sessions (0 unless DurabilityConfig.WarmScoreCache).
	CacheWarmed int
}

// WAL record types. Records are JSON with a one-letter type tag; the
// framing, checksumming and torn-tail handling live in internal/wal.
const (
	recEvent    = "ev"   // one accepted operation appended to a session
	recClose    = "cl"   // a session left the assembler (idle close-out or flush)
	recRollback = "rb"   // a backpressure rollback undid the tail operation
	recSeal     = "seal" // clean shutdown marker
)

type walRecord struct {
	T      string    `json:"t"`
	Client string    `json:"c,omitempty"`
	SID    string    `json:"s,omitempty"`
	Pos    int       `json:"p,omitempty"`
	User   string    `json:"u,omitempty"`
	Addr   string    `json:"a,omitempty"`
	SQL    string    `json:"q,omitempty"`
	TS     time.Time `json:"ts"`
	// Epoch/Seq are the event's sender-side dedupe coordinates
	// (Event.Epoch/Event.Seq), replayed so redelivery fencing survives
	// recovery. Absent on pre-epoch logs and on epoch-less events.
	Epoch int64 `json:"e,omitempty"`
	Seq   int64 `json:"n,omitempty"`
}

// snapState is a snapshot payload: open-session state plus the
// session-id counter. A shard stream's snapshot holds that shard's
// sessions; the remap staging file holds the merged state of every
// shard. Both decode identically — the payload is layout-independent,
// sessions re-route by client hash on restore.
type snapState struct {
	Seq      int            `json:"seq"`
	Sessions []SessionState `json:"sessions"`
}

// Restore opens the durability layer and rebuilds the assemblers from
// each shard stream's newest valid snapshot plus its WAL suffix,
// replaying the streams in parallel. It must be called (once) before
// Start and before the first Ingest; without it a durability-configured
// Service rejects events with ErrNotReady so no accepted event can ever
// bypass the log. With Config.Durability nil it is a no-op.
//
// When the directory's layout differs from the configured shard count —
// a resize, or a v1 single-stream directory from before sharding —
// Restore recovers the old layout first, then migrates it with the
// staged remap protocol: the merged state is durably written to
// wal.RemapFile, the manifest flips to remap:true (the commit point),
// the old stream files are deleted and fresh per-shard streams are
// seeded. A crash at any step either recovers the old layout untouched
// or resumes from the staging file.
func (s *Service) Restore() (RestoreStats, error) {
	var st RestoreStats
	d := s.cfg.Durability
	if d == nil {
		return st, nil
	}
	if !s.restoreOnce.CompareAndSwap(false, true) {
		return st, fmt.Errorf("serve: Restore called twice")
	}
	if err := os.MkdirAll(d.Dir, 0o755); err != nil {
		return st, err
	}
	n := len(s.shards)
	man, ok, err := wal.LoadManifest(d.Dir)
	if err != nil {
		return st, err
	}
	switch {
	case !ok:
		legacy, lerr := wal.HasLegacyStream(d.Dir)
		if lerr != nil {
			return st, lerr
		}
		if legacy {
			// v1 upgrade: read the single unprefixed stream, then migrate
			// it onto the sharded layout.
			if err := s.recoverStreams(d, 1, true, false, &st); err != nil {
				return st, err
			}
			if err := s.remapTo(d, 0); err != nil {
				return st, err
			}
		} else {
			// Fresh directory: name the layout, then open empty streams.
			if err := wal.SaveManifest(d.Dir, wal.Manifest{Version: wal.ManifestVersion, Shards: n}); err != nil {
				return st, err
			}
			if err := s.recoverStreams(d, n, false, true, &st); err != nil {
				return st, err
			}
		}
	case man.Remap:
		if err := s.resumeRemap(d, man); err != nil {
			return st, err
		}
	case man.Shards == n:
		if err := s.recoverStreams(d, n, false, true, &st); err != nil {
			return st, err
		}
		// A remap that crashed before its manifest flip may have left a
		// staging file behind; the old layout is authoritative.
		os.Remove(filepath.Join(d.Dir, wal.RemapFile))
	default:
		// Shard-count resize: recover the old layout into the (new)
		// hash-routed shards, then migrate the streams.
		if err := s.recoverStreams(d, man.Shards, false, false, &st); err != nil {
			return st, err
		}
		if err := s.remapTo(d, man.Shards); err != nil {
			return st, err
		}
	}
	st.Sessions = s.openCount()
	s.recovered.Store(int64(st.Sessions))
	s.ckpts = d.Checkpoints
	if d.WarmScoreCache {
		st.CacheWarmed = s.WarmScoreCache(0)
	}
	s.ready.Store(true)
	if d.SnapshotEvery > 0 {
		s.snapStop = make(chan struct{})
		s.snapDone = make(chan struct{})
		go s.snapshotLoop(d.SnapshotEvery)
	}
	return st, nil
}

// walOptions builds one stream's open options (shard prefixes are set
// by the caller; the zero value names the legacy v1 stream).
func (s *Service) walOptions(d *DurabilityConfig) wal.Options {
	m := s.metrics
	return wal.Options{
		SegmentBytes: d.SegmentBytes,
		Sync:         d.Fsync,
		SyncInterval: d.FsyncInterval,
		OnAppend:     func(int) { m.walAppends.Inc() },
		OnSync:       func(took time.Duration) { m.walFsyncSeconds.Observe(took.Seconds()) },
	}
}

// recoverStreams opens and recovers m streams concurrently, routing
// every restored session and replayed record to the shard its client
// hashes to (a client's records live entirely within one stream — the
// writer hashed with the same function — so per-client replay order is
// preserved; the assemblers serialize concurrent mutation internally).
// With keep the stores are installed as the shards' streams (valid only
// when m equals the shard count and the prefixes match); otherwise they
// are closed after recovery — the remap path reopens fresh ones.
func (s *Service) recoverStreams(d *DurabilityConfig, m int, legacy, keep bool, st *RestoreStats) error {
	stores := make([]*wal.Store, m)
	stats := make([]RestoreStats, m)
	recs := make([]wal.RecoverStats, m)
	errs := make([]error, m)
	var wg sync.WaitGroup
	for i := 0; i < m; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			opt := s.walOptions(d)
			if !legacy {
				opt.SegmentPrefix = wal.ShardSegmentPrefix(i)
				opt.SnapshotPrefix = wal.ShardSnapshotPrefix(i)
			}
			store, err := wal.OpenStore(d.Dir, opt)
			if err != nil {
				errs[i] = err
				return
			}
			stores[i] = store
			recs[i], errs[i] = store.Recover(s.restoreSnapshot, func(b []byte) error {
				var r walRecord
				if err := json.Unmarshal(b, &r); err != nil {
					// An undecodable-but-checksummed record is a version
					// skew bug, not a torn tail; surface it.
					return fmt.Errorf("serve: undecodable wal record: %w", err)
				}
				s.replayRecord(r, &stats[i])
				return nil
			})
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			for _, store := range stores {
				if store != nil {
					store.Close()
				}
			}
			return err
		}
	}
	st.CleanSeal = true
	for i := range recs {
		st.Records += recs[i].Records
		if recs[i].SnapshotSeq > st.SnapshotSeq {
			st.SnapshotSeq = recs[i].SnapshotSeq
		}
		st.TornTail = st.TornTail || recs[i].TornTail
		st.CleanSeal = st.CleanSeal && stats[i].CleanSeal
	}
	if keep {
		for i, sh := range s.shards {
			sh.store = stores[i]
		}
		return nil
	}
	for _, store := range stores {
		store.Close()
	}
	return nil
}

// remapTo migrates the in-memory state (just recovered from an old
// layout of `from` streams; 0 = v1) onto the configured shard count.
// The staged state file plus the remap-flagged manifest form the commit
// point; see the protocol notes in internal/wal/manifest.go.
func (s *Service) remapTo(d *DurabilityConfig, from int) error {
	seq, sessions := s.exportAll()
	b, err := json.Marshal(snapState{Seq: seq, Sessions: sessions})
	if err != nil {
		return err
	}
	if err := wal.WriteStateFile(filepath.Join(d.Dir, wal.RemapFile), b); err != nil {
		return err
	}
	if err := wal.SaveManifest(d.Dir, wal.Manifest{
		Version: wal.ManifestVersion, Shards: len(s.shards), Remap: true, From: from,
	}); err != nil {
		return err
	}
	return s.finishRemap(d)
}

// resumeRemap finishes a migration a crash interrupted past its commit
// point: the staging file is authoritative (the old streams may be
// partially deleted). A boot configured for a different shard count
// than the interrupted migration targeted simply retargets — the staged
// payload is layout-independent.
func (s *Service) resumeRemap(d *DurabilityConfig, man wal.Manifest) error {
	b, err := wal.ReadStateFile(filepath.Join(d.Dir, wal.RemapFile))
	if err != nil {
		return fmt.Errorf("serve: remap staging file unreadable: %w", err)
	}
	if err := s.restoreSnapshot(b); err != nil {
		return err
	}
	if n := len(s.shards); n != man.Shards {
		if err := wal.SaveManifest(d.Dir, wal.Manifest{
			Version: wal.ManifestVersion, Shards: n, Remap: true, From: man.From,
		}); err != nil {
			return err
		}
	}
	return s.finishRemap(d)
}

// finishRemap runs the post-commit steps of a migration: delete every
// old stream file, open fresh per-shard streams, seed each with its
// shard's snapshot, clear the manifest's remap flag and drop the
// staging file. Idempotent — a crash anywhere here re-runs it from the
// staging file on the next boot.
func (s *Service) finishRemap(d *DurabilityConfig) error {
	closeOpened := func() {
		for _, sh := range s.shards {
			if sh.store != nil {
				sh.store.Close()
				sh.store = nil
			}
		}
	}
	if err := wal.RemoveAllStreams(d.Dir); err != nil {
		return err
	}
	for i, sh := range s.shards {
		opt := s.walOptions(d)
		opt.SegmentPrefix = wal.ShardSegmentPrefix(i)
		opt.SnapshotPrefix = wal.ShardSnapshotPrefix(i)
		store, err := wal.OpenStore(d.Dir, opt)
		if err != nil {
			closeOpened()
			return err
		}
		sh.store = store
	}
	for _, sh := range s.shards {
		seq, sessions := sh.asm.Export()
		b, err := json.Marshal(snapState{Seq: seq, Sessions: sessions})
		if err != nil {
			closeOpened()
			return err
		}
		if err := sh.store.Snapshot(b); err != nil {
			closeOpened()
			return err
		}
	}
	if err := wal.SaveManifest(d.Dir, wal.Manifest{Version: wal.ManifestVersion, Shards: len(s.shards)}); err != nil {
		closeOpened()
		return err
	}
	os.Remove(filepath.Join(d.Dir, wal.RemapFile))
	return nil
}

// restoreSnapshot rebuilds assembler state from a snapshot payload,
// routing each session to the shard its client hashes to and
// re-tokenizing every statement with the trained vocabulary (the
// vocabulary is fixed after training, so the key windows come back
// byte-exact). The session-id floor applies to every shard — ids must
// stay unique across any past or future layout.
func (s *Service) restoreSnapshot(b []byte) error {
	var snap snapState
	if err := json.Unmarshal(b, &snap); err != nil {
		return fmt.Errorf("serve: undecodable snapshot: %w", err)
	}
	key := s.model.Load().ucad.Vocab.Key
	for _, ss := range snap.Sessions {
		keys := make([]int, len(ss.Ops))
		for i := range ss.Ops {
			keys[i] = key(ss.Ops[i].SQL)
			ss.Ops[i].Key = keys[i]
		}
		s.shardFor(ss.Client).asm.Restore(ss, keys)
	}
	for _, sh := range s.shards {
		sh.asm.SetSeqFloor(snap.Seq)
	}
	return nil
}

// replayRecord applies one WAL record on top of the restored snapshot,
// routed by client hash. Application is idempotent (see
// Assembler.ReplayAppend), so records the snapshot already covers are
// dropped, never duplicated.
func (s *Service) replayRecord(r walRecord, st *RestoreStats) {
	switch r.T {
	case recEvent:
		key := s.model.Load().ucad.Vocab.Key(r.SQL)
		s.shardFor(r.Client).asm.ReplayAppend(r.Client, r.SID, r.Pos, session.Operation{
			Time: r.TS, User: r.User, Addr: r.Addr, SQL: r.SQL,
		}, key, r.Epoch, r.Seq)
	case recClose:
		s.shardFor(r.Client).asm.ReplayClose(r.Client, r.SID)
	case recRollback:
		s.shardFor(r.Client).asm.ReplayRollback(r.Client, r.SID, r.Pos)
	case recSeal:
		st.CleanSeal = true
	}
}

// appendWAL marshals and appends one record; the caller holds the
// shard's durMu when the record must stay ordered with an assembler
// mutation.
func (s *Service) appendWAL(store *wal.Store, r walRecord) error {
	b, err := json.Marshal(r)
	if err != nil {
		return err
	}
	return store.Append(b)
}

// ingestDurable is Ingest's assemble-and-log step when durability is
// on: the assembler mutation and its WAL record happen atomically with
// respect to snapshot capture (the shard's durMu), and the record is
// durable per the fsync policy before the event is acknowledged. A WAL
// write failure undoes the append and rejects the event — nothing
// enters a session that the log cannot replay.
func (s *Service) ingestDurable(sh *shard, ev Event, key, window int) (Appended, error) {
	client := ev.Client()
	sh.durMu.Lock()
	ap := sh.asm.Append(ev, key, window+1)
	if ap.Dup {
		// A redelivery mutated nothing, so there is nothing to log: the
		// original append's WAL record already covers this position.
		sh.durMu.Unlock()
		return ap, nil
	}
	err := s.appendWAL(sh.store, walRecord{
		T: recEvent, Client: client, SID: ap.SessionID, Pos: ap.Pos,
		User: ev.User, Addr: ev.Addr, SQL: ev.SQL, TS: ap.Time,
		Epoch: ev.Epoch, Seq: ev.Seq,
	})
	if err != nil {
		sh.asm.Rollback(client, ap.Pos)
		sh.durMu.Unlock()
		return ap, fmt.Errorf("serve: wal append: %w", err)
	}
	sh.durMu.Unlock()
	return ap, nil
}

// rollbackLogged undoes the tail operation after a scoring-queue
// rejection, logging the rollback so recovery replays the undo too.
func (s *Service) rollbackLogged(sh *shard, client, sessionID string, pos int) {
	if sh.store == nil {
		sh.asm.Rollback(client, pos)
		return
	}
	sh.durMu.Lock()
	if sh.asm.Rollback(client, pos) {
		s.appendWAL(sh.store, walRecord{T: recRollback, Client: client, SID: sessionID, Pos: pos})
	}
	sh.durMu.Unlock()
}

// closeAllLogged closes sessions shard by shard — all of them, or only
// those idle past the timeout — logging one close record per closed
// session under the shard's durMu, so recovery never resurrects a
// session that already received its authoritative verdict.
func (s *Service) closeAllLogged(idleOnly bool) []Closed {
	var all []Closed
	for _, sh := range s.shards {
		sh.durMu.Lock()
		var closed []Closed
		if idleOnly {
			closed = sh.asm.CloseIdle()
		} else {
			closed = sh.asm.CloseAll()
		}
		if sh.store != nil {
			for _, c := range closed {
				s.appendWAL(sh.store, walRecord{T: recClose, Client: c.Client, SID: c.Session.ID})
			}
		}
		sh.durMu.Unlock()
		all = append(all, closed...)
	}
	return all
}

// SnapshotNow captures every shard's open sessions under a
// stop-the-world barrier (all shard durMus, acquired in index order)
// and commits one durable snapshot per stream, pruning the WAL segments
// each snapshot supersedes. Only the capture and segment rotation
// happen inside the barrier; serialization and the commit fsyncs run
// off the ingest path. No-op without durability.
func (s *Service) SnapshotNow() error {
	if !s.ready.Load() {
		return nil
	}
	t := obs.StartTimer(s.metrics.snapshotSeconds)
	defer t.Stop()
	type cut struct {
		anchor uint64
		state  snapState
	}
	cuts := make([]cut, len(s.shards))
	var err error
	for _, sh := range s.shards {
		sh.durMu.Lock()
	}
	for i, sh := range s.shards {
		seq, sessions := sh.asm.Export()
		var anchor uint64
		if anchor, err = sh.store.BeginSnapshot(); err != nil {
			break
		}
		cuts[i] = cut{anchor: anchor, state: snapState{Seq: seq, Sessions: sessions}}
	}
	for i := len(s.shards) - 1; i >= 0; i-- {
		s.shards[i].durMu.Unlock()
	}
	if err != nil {
		return err
	}
	for i, sh := range s.shards {
		b, merr := json.Marshal(cuts[i].state)
		if merr != nil {
			return merr
		}
		if cerr := sh.store.CommitSnapshot(cuts[i].anchor, b); cerr != nil {
			return cerr
		}
	}
	return nil
}

func (s *Service) snapshotLoop(every time.Duration) {
	defer close(s.snapDone)
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			s.SnapshotNow()
		case <-s.snapStop:
			return
		}
	}
}

// sealAndCloseStore takes the final snapshot, appends each stream's
// clean-seal record and closes the logs (shutdown tail of Close/Stop).
func (s *Service) sealAndCloseStore() error {
	if !s.ready.Load() {
		return nil
	}
	err := s.SnapshotNow()
	for _, sh := range s.shards {
		if serr := s.appendWAL(sh.store, walRecord{T: recSeal}); err == nil {
			err = serr
		}
		if cerr := sh.store.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// CheckpointModel writes an atomic model checkpoint and validates it by
// loading it back; a checkpoint core.Load rejects is rolled back so the
// manifest always points at a loadable model. Called after fine-tune
// rounds and after an admin hot model swap. No-op without a configured
// Checkpoints store.
func (s *Service) CheckpointModel() { s.checkpointModel() }

func (s *Service) checkpointModel() {
	if s.ckpts == nil {
		return
	}
	path, err := s.ckpts.Save(s.online.Save)
	if err != nil {
		s.ckptErrors.Add(1)
		return
	}
	if err := verifyCheckpoint(path); err != nil {
		s.ckptErrors.Add(1)
		s.ckpts.Rollback()
	}
}

// verifyCheckpoint proves a checkpoint file loads back into a detector.
func verifyCheckpoint(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	_, err = core.Load(f)
	return err
}
