package serve

import (
	"sync"
	"sync/atomic"
	"time"

	"github.com/ucad/ucad/internal/obs"
)

// Ranker scores a micro-batch of operations in one stacked forward
// pass: dst[b] receives the 1-based rank of keys[b] given contexts[b],
// and the returned slice is dst grown as needed. The production
// implementation is detect.Online.RankBatch (read-locked against
// retraining as one unit).
type Ranker interface {
	RankBatch(dst []int, contexts [][]int, keys []int) []int
}

// Job is one operation awaiting scoring: the key window ending at the
// scored operation, plus enough identity to route the result.
type Job struct {
	Client    string
	User      string
	SessionID string
	// Keys is the context window; the last entry is the scored key.
	Keys []int
	// Pos is the operation's index within its session.
	Pos int
	// SQL is the scored statement text (carried into alerts).
	SQL string

	// enqueuedAt is stamped by Submit; workers derive the queue-wait
	// latency from it.
	enqueuedAt time.Time
}

// Result is a scored job.
type Result struct {
	Job
	// Rank is the 1-based similarity rank of the operation's key (§5.3);
	// ranks beyond top-p are anomalies.
	Rank int
}

// Engine is a bounded worker pool scoring jobs against a Ranker.
// Submit never blocks: when the queue is full it fails fast with
// ErrBusy so the ingestion layer can push backpressure to clients.
// Workers drain the queue in micro-batches and score each one with a
// single fused RankBatch call — one stacked forward pass per drain —
// reusing per-worker batch scratch so the hot path does not allocate
// per operation.
type Engine struct {
	ranker   Ranker
	batch    int
	queue    chan Job
	onResult func(Result)

	mu     sync.RWMutex // guards closed vs Submit
	closed bool

	workers  sync.WaitGroup
	inflight sync.WaitGroup

	scored   atomic.Int64
	rejected atomic.Int64

	// Optional stage instrumentation (nil when uninstrumented); set via
	// instrument before any Submit.
	queueWait *obs.Histogram
	scoreLat  *obs.Histogram
	batchSize *obs.Histogram
}

// NewEngine builds an engine with the given worker count, queue
// capacity and micro-batch size (values < 1 are raised to 1). onResult
// is invoked from worker goroutines for every scored job and must be
// safe for concurrent use.
func NewEngine(r Ranker, workers, queueSize, batch int, onResult func(Result)) *Engine {
	if workers < 1 {
		workers = 1
	}
	if queueSize < 1 {
		queueSize = 1
	}
	if batch < 1 {
		batch = 1
	}
	if onResult == nil {
		onResult = func(Result) {}
	}
	e := &Engine{
		ranker:   r,
		batch:    batch,
		queue:    make(chan Job, queueSize),
		onResult: onResult,
	}
	for i := 0; i < workers; i++ {
		e.workers.Add(1)
		go e.worker()
	}
	return e
}

// instrument attaches the per-stage latency histograms (queue wait,
// score latency, micro-batch size). Call before the first Submit.
func (e *Engine) instrument(queueWait, scoreLat, batchSize *obs.Histogram) {
	e.queueWait = queueWait
	e.scoreLat = scoreLat
	e.batchSize = batchSize
}

// Submit enqueues a job, failing fast with ErrBusy when the queue is
// full or ErrStopped after Stop.
func (e *Engine) Submit(j Job) error {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if e.closed {
		return ErrStopped
	}
	j.enqueuedAt = time.Now()
	e.inflight.Add(1)
	select {
	case e.queue <- j:
		return nil
	default:
		e.inflight.Done()
		e.rejected.Add(1)
		return ErrBusy
	}
}

// Drain blocks until every accepted job has been scored. Callers must
// quiesce submission first (it is a shutdown/test aid, not a barrier
// for concurrent submitters).
func (e *Engine) Drain() { e.inflight.Wait() }

// Stop rejects further submissions and waits for the workers to finish
// the jobs already queued.
func (e *Engine) Stop() {
	e.mu.Lock()
	if !e.closed {
		e.closed = true
		close(e.queue)
	}
	e.mu.Unlock()
	e.workers.Wait()
}

// QueueDepth reports the number of queued-but-unstarted jobs.
func (e *Engine) QueueDepth() int { return len(e.queue) }

// Counts reports lifetime scored and rejected job counts.
func (e *Engine) Counts() (scored, rejected int64) {
	return e.scored.Load(), e.rejected.Load()
}

func (e *Engine) worker() {
	defer e.workers.Done()
	batch := make([]Job, 0, e.batch)
	ctxs := make([][]int, 0, e.batch)
	keys := make([]int, 0, e.batch)
	ranks := make([]int, 0, e.batch)
	for j := range e.queue {
		batch = append(batch[:0], j)
	fill:
		// Micro-batch: opportunistically drain more queued jobs so a
		// burst is fused into one stacked forward pass.
		for len(batch) < e.batch {
			select {
			case j2, ok := <-e.queue:
				if !ok {
					break fill
				}
				batch = append(batch, j2)
			default:
				break fill
			}
		}
		if e.batchSize != nil {
			e.batchSize.Observe(float64(len(batch)))
		}
		if e.queueWait != nil {
			now := time.Now()
			for _, job := range batch {
				e.queueWait.Observe(now.Sub(job.enqueuedAt).Seconds())
			}
		}
		ctxs, keys = ctxs[:0], keys[:0]
		for _, job := range batch {
			n := len(job.Keys)
			ctxs = append(ctxs, job.Keys[:n-1])
			keys = append(keys, job.Keys[n-1])
		}
		var t obs.Timer
		if e.scoreLat != nil {
			t = obs.StartTimer(e.scoreLat)
		}
		ranks = e.ranker.RankBatch(ranks[:0], ctxs, keys)
		if e.scoreLat != nil {
			t.Stop()
		}
		for i, job := range batch {
			e.scored.Add(1)
			e.onResult(Result{Job: job, Rank: ranks[i]})
			e.inflight.Done()
		}
	}
}
