package serve

import (
	"sync"
	"sync/atomic"
	"time"

	"github.com/ucad/ucad/internal/obs"
)

// Ranker scores a micro-batch of operations in one stacked forward
// pass: dst[b] receives the 1-based rank of keys[b] given contexts[b],
// and the returned slice is dst grown as needed. The production
// implementation is detect.Online.RankBatch (read-locked against
// retraining as one unit).
type Ranker interface {
	RankBatch(dst []int, contexts [][]int, keys []int) []int
}

// Job is one operation awaiting scoring: the key window ending at the
// scored operation, plus enough identity to route the result.
type Job struct {
	Client    string
	User      string
	SessionID string
	// Keys is the context window; the last entry is the scored key.
	Keys []int
	// Pos is the operation's index within its session.
	Pos int
	// SQL is the scored statement text (carried into alerts).
	SQL string

	// enqueuedAt is stamped by Submit; workers derive the queue-wait
	// latency from it.
	enqueuedAt time.Time
}

// Result is a scored job.
type Result struct {
	Job
	// Rank is the 1-based similarity rank of the operation's key (§5.3);
	// ranks beyond top-p are anomalies.
	Rank int
}

// Engine is a sharded worker pool scoring jobs against a Ranker. Each
// ingest shard owns its own bounded queue, so submitters on different
// shards never contend on one channel; Submit never blocks — a full
// shard queue fails fast with ErrBusy so the ingestion layer can push
// backpressure to clients. Workers are distributed across the shard
// queues (at least one per queue) and drain them in micro-batches,
// scoring each batch with a single fused RankBatch call; a semaphore
// caps concurrent scoring at the configured worker count even when
// shards outnumber workers.
type Engine struct {
	ranker   Ranker
	batch    int
	queues   []chan Job
	sem      chan struct{} // caps concurrent RankBatch passes at Workers
	onResult func(Result)
	nworkers int

	mu     sync.RWMutex // guards closed vs Submit
	closed bool

	// start defers worker spawning to the first Submit so the
	// instrument/instrumentShards writes (which workers read without a
	// lock) happen-before any worker goroutine exists.
	start    sync.Once
	workers  sync.WaitGroup
	inflight sync.WaitGroup

	scored   atomic.Int64
	rejected atomic.Int64

	// Optional stage instrumentation (nil when uninstrumented); set via
	// instrument/instrumentShards before any Submit.
	queueWait *obs.Histogram
	scoreLat  *obs.Histogram
	batchSize *obs.Histogram
	shardWait []*obs.Histogram // per-shard queue wait, index-aligned with queues
}

// NewEngine builds an engine with the given shard, worker, total queue
// capacity and micro-batch sizes (values < 1 are raised to 1; the
// capacity is split evenly across shard queues). onResult is invoked
// from worker goroutines for every scored job and must be safe for
// concurrent use.
func NewEngine(r Ranker, shards, workers, queueSize, batch int, onResult func(Result)) *Engine {
	if shards < 1 {
		shards = 1
	}
	if workers < 1 {
		workers = 1
	}
	if queueSize < 1 {
		queueSize = 1
	}
	if batch < 1 {
		batch = 1
	}
	if onResult == nil {
		onResult = func(Result) {}
	}
	perQueue := queueSize / shards
	if perQueue < 1 {
		perQueue = 1
	}
	e := &Engine{
		ranker:   r,
		batch:    batch,
		queues:   make([]chan Job, shards),
		sem:      make(chan struct{}, workers),
		onResult: onResult,
	}
	for i := range e.queues {
		e.queues[i] = make(chan Job, perQueue)
	}
	e.nworkers = workers
	return e
}

// spawn starts the worker pool, distributing workers across the shard
// queues (at least one drainer per queue).
func (e *Engine) spawn() {
	shards, workers := len(e.queues), e.nworkers
	for i := 0; i < shards; i++ {
		nw := workers / shards
		if i < workers%shards {
			nw++
		}
		if nw < 1 {
			nw = 1
		}
		for w := 0; w < nw; w++ {
			e.workers.Add(1)
			go e.worker(i)
		}
	}
}

// instrument attaches the per-stage latency histograms (queue wait,
// score latency, micro-batch size). Call before the first Submit.
func (e *Engine) instrument(queueWait, scoreLat, batchSize *obs.Histogram) {
	e.queueWait = queueWait
	e.scoreLat = scoreLat
	e.batchSize = batchSize
}

// instrumentShards attaches per-shard queue-wait histograms
// (index-aligned with the shard queues). Call before the first Submit.
func (e *Engine) instrumentShards(waits []*obs.Histogram) {
	e.shardWait = waits
}

// Submit enqueues a job on its shard's queue, failing fast with ErrBusy
// when that queue is full or ErrStopped after Stop.
func (e *Engine) Submit(shard int, j Job) error {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if e.closed {
		return ErrStopped
	}
	e.start.Do(e.spawn)
	j.enqueuedAt = time.Now()
	e.inflight.Add(1)
	select {
	case e.queues[shard%len(e.queues)] <- j:
		return nil
	default:
		e.inflight.Done()
		e.rejected.Add(1)
		return ErrBusy
	}
}

// Drain blocks until every accepted job has been scored. Callers must
// quiesce submission first (it is a shutdown/test aid, not a barrier
// for concurrent submitters).
func (e *Engine) Drain() { e.inflight.Wait() }

// Stop rejects further submissions and waits for the workers to finish
// the jobs already queued.
func (e *Engine) Stop() {
	e.mu.Lock()
	if !e.closed {
		e.closed = true
		for _, q := range e.queues {
			close(q)
		}
	}
	e.mu.Unlock()
	e.workers.Wait()
}

// QueueDepth reports the number of queued-but-unstarted jobs across
// every shard queue.
func (e *Engine) QueueDepth() int {
	n := 0
	for _, q := range e.queues {
		n += len(q)
	}
	return n
}

// ShardQueueDepth reports one shard queue's queued-but-unstarted jobs.
func (e *Engine) ShardQueueDepth(shard int) int { return len(e.queues[shard%len(e.queues)]) }

// Shards reports the number of shard queues.
func (e *Engine) Shards() int { return len(e.queues) }

// Counts reports lifetime scored and rejected job counts.
func (e *Engine) Counts() (scored, rejected int64) {
	return e.scored.Load(), e.rejected.Load()
}

func (e *Engine) worker(shard int) {
	defer e.workers.Done()
	queue := e.queues[shard]
	var wait *obs.Histogram
	if e.shardWait != nil {
		wait = e.shardWait[shard]
	}
	batch := make([]Job, 0, e.batch)
	ctxs := make([][]int, 0, e.batch)
	keys := make([]int, 0, e.batch)
	ranks := make([]int, 0, e.batch)
	for j := range queue {
		batch = append(batch[:0], j)
	fill:
		// Micro-batch: opportunistically drain more queued jobs so a
		// burst is fused into one stacked forward pass.
		for len(batch) < e.batch {
			select {
			case j2, ok := <-queue:
				if !ok {
					break fill
				}
				batch = append(batch, j2)
			default:
				break fill
			}
		}
		if e.batchSize != nil {
			e.batchSize.Observe(float64(len(batch)))
		}
		if e.queueWait != nil || wait != nil {
			now := time.Now()
			for _, job := range batch {
				took := now.Sub(job.enqueuedAt).Seconds()
				if e.queueWait != nil {
					e.queueWait.Observe(took)
				}
				if wait != nil {
					wait.Observe(took)
				}
			}
		}
		ctxs, keys = ctxs[:0], keys[:0]
		for _, job := range batch {
			n := len(job.Keys)
			ctxs = append(ctxs, job.Keys[:n-1])
			keys = append(keys, job.Keys[n-1])
		}
		// The semaphore bounds concurrent scoring at the worker count:
		// with more shard queues than workers, drainers beyond the cap
		// wait here instead of oversubscribing the cores.
		e.sem <- struct{}{}
		var t obs.Timer
		if e.scoreLat != nil {
			t = obs.StartTimer(e.scoreLat)
		}
		ranks = e.ranker.RankBatch(ranks[:0], ctxs, keys)
		if e.scoreLat != nil {
			t.Stop()
		}
		<-e.sem
		for i, job := range batch {
			e.scored.Add(1)
			e.onResult(Result{Job: job, Rank: ranks[i]})
			e.inflight.Done()
		}
	}
}
