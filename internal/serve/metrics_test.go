package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"github.com/ucad/ucad/internal/obs"
)

// scrapeMetrics GETs a /metrics endpoint and parses every sample line
// into series → value ("name{labels}" keys keep their label string).
func scrapeMetrics(t *testing.T, url string) (map[string]float64, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s = %d", url, resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != obs.ContentType {
		t.Fatalf("Content-Type = %q, want %q", ct, obs.ContentType)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)
	out := make(map[string]float64)
	for _, line := range strings.Split(body, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			t.Fatalf("malformed sample line %q", line)
		}
		v, err := strconv.ParseFloat(line[i+1:], 64)
		if err != nil {
			t.Fatalf("unparseable value in %q: %v", line, err)
		}
		out[line[:i]] = v
	}
	return out, body
}

// dt labels a series with the default tenant — the form every serve
// family exports under since the MetricsHub refactor (a single-tenant
// deployment is the default tenant of a one-tenant hub).
func dt(name string) string { return name + `{tenant="default"}` }

// TestServiceMetricsScrapeEndToEnd is the observability acceptance
// path: events stream in over HTTP, the worker pool scores them, and a
// /metrics scrape must show the stage-latency histograms populated with
// counts matching the pipeline's own accounting — and agree with
// /stats, since both read the same counters.
func TestServiceMetricsScrapeEndToEnd(t *testing.T) {
	u := testUCAD(t)
	clk := newFakeClock()
	svc := NewService(u, Config{
		Workers:     2,
		QueueSize:   256,
		Batch:       4,
		IdleTimeout: 10 * time.Minute,
		Clock:       clk.Now,
	})
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	const clients, opsPerClient = 4, 12
	for pos := 0; pos < opsPerClient; pos++ {
		for c := 0; c < clients; c++ {
			sql := normalStatement(pos)
			if c == 0 && pos == 6 {
				sql = anomalySQL
			}
			body, _ := json.Marshal(Event{ClientID: fmt.Sprintf("c%d", c), User: "app", SQL: sql})
			resp, err := http.Post(ts.URL+"/v1/events", "application/json", bytes.NewReader(body))
			if err != nil {
				t.Fatal(err)
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusAccepted {
				t.Fatalf("ingest status %d", resp.StatusCode)
			}
		}
	}
	svc.Drain()

	m, body := scrapeMetrics(t, ts.URL+"/metrics")

	// The exposition must carry all three family types.
	for _, want := range []string{
		"# TYPE ucad_events_accepted_total counter",
		"# TYPE ucad_sessions_open gauge",
		"# TYPE ucad_score_seconds histogram",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("exposition missing %q:\n%s", want, body)
		}
	}

	events := float64(clients * opsPerClient)
	scored := float64(clients * (opsPerClient - u.Model.Config().MinContext))
	checks := map[string]float64{
		dt("ucad_events_accepted_total"):    events,
		dt("ucad_ingest_seconds_count"):     events,
		dt("ucad_ops_scored_total"):         scored,
		dt("ucad_queue_wait_seconds_count"): scored,
		dt("ucad_score_batch_size_sum"):     scored, // batch sizes sum to jobs drained
		dt("ucad_sessions_open"):            clients,
		dt("ucad_sessions_opened_total"):    clients,
		dt("ucad_flags_mid_session_total"):  1,
		dt("ucad_alerts_open"):              1,
		dt("ucad_alerts_raised_total"):      1,
		dt("ucad_events_rejected_total"):    0,
		dt("ucad_ops_rejected_total"):       0,
		dt("ucad_retrains_total"):           0,
	}
	for series, want := range checks {
		got, ok := m[series]
		if !ok {
			t.Fatalf("series %s missing from scrape", series)
		}
		if got != want {
			t.Fatalf("%s = %v, want %v", series, got, want)
		}
	}
	// The score histogram observes fused micro-batches, not jobs: one
	// sample per drain, between 1 (everything fused) and scored (no
	// fusion), and exactly one batch-size sample per timed pass.
	passes := m[dt("ucad_score_seconds_count")]
	if passes < 1 || passes > scored {
		t.Fatalf("score_seconds_count = %v, want in [1, %v]", passes, scored)
	}
	if got := m[dt("ucad_score_batch_size_count")]; got != passes {
		t.Fatalf("score_batch_size_count = %v, want %v (one per fused pass)", got, passes)
	}
	// Latency histograms carry real (positive) time.
	for _, series := range []string{dt("ucad_ingest_seconds_sum"), dt("ucad_score_seconds_sum")} {
		if m[series] <= 0 {
			t.Fatalf("%s = %v, want > 0", series, m[series])
		}
	}
	// Cumulative bucket counts must reach the +Inf bucket.
	if m[`ucad_score_seconds_bucket{tenant="default",le="+Inf"}`] != passes {
		t.Fatalf("score +Inf bucket = %v, want %v", m[`ucad_score_seconds_bucket{tenant="default",le="+Inf"}`], passes)
	}

	// Close out every session and confirm the alert: the close-out
	// histogram and the verdict-labelled counter populate.
	clk.Advance(11 * time.Minute)
	if n := svc.CloseIdleNow(); n != clients {
		t.Fatalf("closed %d, want %d", n, clients)
	}
	alerts := svc.Alerts(StatusOpen)
	if len(alerts) != 1 {
		t.Fatalf("alerts = %+v", alerts)
	}
	if err := svc.Resolve(alerts[0].ID, StatusConfirmed); err != nil {
		t.Fatal(err)
	}

	m, _ = scrapeMetrics(t, ts.URL+"/metrics")
	if m[dt("ucad_closeout_seconds_count")] != clients {
		t.Fatalf("closeout count = %v, want %d", m[dt("ucad_closeout_seconds_count")], clients)
	}
	if m[`ucad_alerts_resolved_total{tenant="default",verdict="confirmed"}`] != 1 {
		t.Fatal("confirmed verdict not counted")
	}
	if m[dt("ucad_sessions_closed_total")] != clients || m[dt("ucad_sessions_processed_total")] != clients {
		t.Fatalf("session close-out counters: closed=%v processed=%v",
			m[dt("ucad_sessions_closed_total")], m[dt("ucad_sessions_processed_total")])
	}
	if m[dt("ucad_verified_pool")] != clients-1 {
		t.Fatalf("verified pool = %v, want %d", m[dt("ucad_verified_pool")], clients-1)
	}

	// /stats and /metrics read the same counters — spot-check the pairs.
	st := svc.Stats()
	pairs := []struct {
		series string
		stat   float64
	}{
		{dt("ucad_events_accepted_total"), float64(st.EventsAccepted)},
		{dt("ucad_ops_scored_total"), float64(st.OpsScored)},
		{dt("ucad_ops_rejected_total"), float64(st.OpsRejected)},
		{dt("ucad_sessions_open"), float64(st.SessionsOpen)},
		{dt("ucad_alerts_raised_total"), float64(st.AlertsRaised)},
		{dt("ucad_alerts_evicted_total"), float64(st.AlertsEvicted)},
		{dt("ucad_uptime_seconds"), st.UptimeSeconds},
	}
	for _, p := range pairs {
		if m[p.series] != p.stat {
			t.Fatalf("%s = %v but Stats reports %v", p.series, m[p.series], p.stat)
		}
	}
	if st.UptimeSeconds != (11 * time.Minute).Seconds() {
		t.Fatalf("uptime = %v, want %v (fake clock advanced 11m)", st.UptimeSeconds, (11 * time.Minute).Seconds())
	}
	svc.Stop()
}

// TestAlertRetentionBounds exercises the resolved-alert eviction policy
// at the store level: FIFO count bound, TTL aging, open alerts immune.
func TestAlertRetentionBounds(t *testing.T) {
	clk := newFakeClock()
	st := newAlertStore(clk.Now, 2, time.Hour)

	mk := func(i int) int64 {
		sid := fmt.Sprintf("s%d", i)
		st.flag(Result{Job: Job{Client: "c", User: "u", SessionID: sid, Pos: 3, SQL: "BAD"}, Rank: 99}, "u")
		a := st.finalize(sid, "c", "u", nil, &mockDetectAlert)
		return a.ID
	}

	// Three resolved alerts against a max of 2: the first resolved is
	// evicted, FIFO.
	var ids []int64
	for i := 0; i < 3; i++ {
		ids = append(ids, mk(i))
		if _, err := st.resolve(ids[i], StatusConfirmed); err != nil {
			t.Fatal(err)
		}
	}
	if st.evictedCount() != 1 {
		t.Fatalf("evicted = %d, want 1", st.evictedCount())
	}
	if got := st.list(""); len(got) != 2 || got[0].ID != ids[1] {
		t.Fatalf("retained %+v, want ids %v", got, ids[1:])
	}

	// TTL aging: advance past the hour; a sweep evicts the remainder.
	clk.Advance(2 * time.Hour)
	st.evictExpired()
	if st.evictedCount() != 3 {
		t.Fatalf("evicted = %d, want 3 after TTL sweep", st.evictedCount())
	}
	if got := st.list(""); len(got) != 0 {
		t.Fatalf("retained %+v, want none", got)
	}

	// Open (unresolved) alerts are never evicted, no matter their age.
	openID := mk(99)
	clk.Advance(48 * time.Hour)
	st.evictExpired()
	if got := st.list(""); len(got) != 1 || got[0].ID != openID {
		t.Fatalf("open alert evicted: %+v", got)
	}
	if st.raisedCount() != 4 {
		t.Fatalf("raised = %d, want 4", st.raisedCount())
	}
}

// TestServiceAlertRetention drives retention through the Service: the
// sweep path ages resolved alerts out and the stats/counters agree.
func TestServiceAlertRetention(t *testing.T) {
	u := testUCAD(t)
	clk := newFakeClock()
	svc := NewService(u, Config{
		Workers:           1,
		QueueSize:         64,
		IdleTimeout:       time.Minute,
		MaxResolvedAlerts: -1, // unbounded count; TTL only
		ResolvedAlertTTL:  30 * time.Minute,
		Clock:             clk.Now,
	})
	defer svc.Stop()

	// One session with an anomaly, closed out and confirmed.
	for pos := 0; pos < 8; pos++ {
		sql := normalStatement(pos)
		if pos == 5 {
			sql = anomalySQL
		}
		if err := svc.Ingest(Event{ClientID: "c", User: "app", SQL: sql}); err != nil {
			t.Fatal(err)
		}
	}
	svc.Drain()
	clk.Advance(2 * time.Minute)
	svc.CloseIdleNow()
	alerts := svc.Alerts("")
	if len(alerts) != 1 || !alerts[0].Final {
		t.Fatalf("alerts %+v, want one final", alerts)
	}
	if err := svc.Resolve(alerts[0].ID, StatusConfirmed); err != nil {
		t.Fatal(err)
	}
	if st := svc.Stats(); st.AlertsEvicted != 0 {
		t.Fatalf("premature eviction: %+v", st)
	}

	// Past the TTL, the idle sweep evicts the resolved alert.
	clk.Advance(31 * time.Minute)
	svc.CloseIdleNow()
	st := svc.Stats()
	if st.AlertsEvicted != 1 {
		t.Fatalf("evicted = %d, want 1", st.AlertsEvicted)
	}
	if got := svc.Alerts(""); len(got) != 0 {
		t.Fatalf("alerts after eviction %+v, want none", got)
	}
}

// TestServiceRetrainMetrics confirms the training instrumentation path:
// a background fine-tune populates the retrain histogram and epoch
// gauges via detect.Online's hooks.
func TestServiceRetrainMetrics(t *testing.T) {
	u := testUCAD(t)
	clk := newFakeClock()
	svc := NewService(u, Config{
		Workers:       1,
		QueueSize:     64,
		IdleTimeout:   time.Minute,
		RetrainAfter:  2,
		RetrainEpochs: 2,
		Clock:         clk.Now,
	})
	for c := 0; c < 3; c++ {
		for pos := 0; pos < 6; pos++ {
			if err := svc.Ingest(Event{ClientID: fmt.Sprintf("c%d", c), User: "app", SQL: normalStatement(pos)}); err != nil {
				t.Fatal(err)
			}
		}
	}
	svc.Drain()
	clk.Advance(2 * time.Minute)
	svc.CloseIdleNow()
	svc.Stop() // waits for the background fine-tune

	m := svc.Metrics()
	if got := m.retrainSeconds.Count(); got < 1 {
		t.Fatalf("retrain histogram count = %d, want >= 1", got)
	}
	if got := m.trainEpochs.Value(); got < 2 {
		t.Fatalf("train epochs = %d, want >= 2", got)
	}
	if m.trainWindowsPerSec.Value() <= 0 {
		t.Fatalf("windows/sec = %v, want > 0", m.trainWindowsPerSec.Value())
	}
	if st := svc.Stats(); st.Retrains < 1 {
		t.Fatalf("stats retrains = %d, want >= 1", st.Retrains)
	}
}
