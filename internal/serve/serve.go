// Package serve is the online half of the paper's deployment story
// (§5.2–§5.3, Figure 5) as a running system: a stream of raw
// (client, SQL, timestamp) events is assembled into per-client
// sessions, every operation is scored incrementally against the trained
// Trans-DAS model by a bounded worker pool, and flagged operations
// surface as alerts for expert review — all while sessions are still
// open, not only after they end.
//
// The package is layered as
//
//	Assembler  — per-client open-session state with idle-timeout close-out
//	Engine     — micro-batched concurrent scoring with backpressure
//	Service    — wires both to detect.Online's verified-pool/retrain loop
//	Handler    — the HTTP/JSON front (cmd/ucad-serve)
package serve

import (
	"errors"
	"time"
)

// Event is one raw audit-log record as it arrives from a database
// frontend: which client issued which statement when.
type Event struct {
	// Tenant routes the event to a named tenant's pipeline in
	// multi-tenant deployments (internal/tenant); empty means the
	// deployment's default tenant. A single-tenant Service ignores it.
	Tenant string `json:"tenant,omitempty"`
	// ClientID identifies the connection/session stream; events sharing
	// a ClientID are assembled into one session. Empty falls back to
	// user@addr.
	ClientID string `json:"client_id,omitempty"`
	// User is the authenticated database account.
	User string `json:"user"`
	// Addr is the client network address.
	Addr string `json:"addr,omitempty"`
	// SQL is the raw statement text.
	SQL string `json:"sql"`
	// Time is the statement execution timestamp; zero means "now".
	Time time.Time `json:"ts,omitempty"`
	// Seq, when positive, is the 1-based position of this statement
	// within its session as assigned by the sender. It makes redelivery
	// safe: an event whose position the open session already holds is
	// acknowledged without being appended or scored again, so an
	// at-least-once feeder (internal/feed replaying from an offset
	// checkpoint after a crash) yields exactly-once sessions. Zero means
	// "no sequence" and disables deduplication for the event.
	Seq int64 `json:"seq,omitempty"`
	// Epoch, when positive, identifies the sender-side session
	// generation that assigned Seq: a feeder sessionizing by event time
	// bumps the epoch (monotonically, persisted in its checkpoint) each
	// time a client's idle gap starts a new session, so Seq restarts at 1
	// under a fresh epoch. The assembler fences its deduplication on the
	// epoch — a replayed (epoch, seq) at or below the open session's
	// high-water mark is a duplicate, while a higher epoch is genuinely
	// new traffic even though its Seq restarted — which keeps a wall-clock
	// server from swallowing a backlogged feeder's post-gap sessions.
	// Zero means "no epoch" and falls back to comparing Seq against the
	// open session's length.
	Epoch int64 `json:"epoch,omitempty"`
}

// Client returns the assembly key for the event.
func (e Event) Client() string {
	if e.ClientID != "" {
		return e.ClientID
	}
	return e.User + "@" + e.Addr
}

// Errors surfaced to API callers. ErrBusy maps to HTTP 503 (the
// backpressure signal), ErrInvalid to 400, ErrSessionOpen to 409.
var (
	ErrBusy        = errors.New("serve: scoring queue full")
	ErrInvalid     = errors.New("serve: event missing sql")
	ErrStopped     = errors.New("serve: service stopped")
	ErrSessionOpen = errors.New("serve: session still open")
	ErrNoAlert     = errors.New("serve: no such alert")
	// ErrNotReady rejects events on a durability-configured Service
	// before Restore has opened the write-ahead log: an accepted event
	// must never bypass the log.
	ErrNotReady = errors.New("serve: durable service not restored (call Restore first)")
)
