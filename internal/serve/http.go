package serve

import (
	"encoding/json"
	"errors"
	"net/http"
	"strconv"
)

// Handler returns the HTTP/JSON API over the service:
//
//	POST /v1/events              ingest one event or an array of events
//	                             (arrays get per-event statuses back)
//	GET  /v1/alerts[?status=s]   list alerts (open|false_alarm|confirmed)
//	POST /v1/alerts/{id}/resolve apply an expert verdict
//	GET  /healthz                liveness probe
//	GET  /stats                  serving counters (JSON)
//	GET  /metrics                Prometheus text exposition
//
// Every non-2xx response carries the unified error envelope
// {"error":{"code","message","retryable"}} (see envelope.go). A full
// scoring queue answers 503 with Retry-After — the backpressure
// contract: the rejected events were rolled back and are safe to
// resend.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/events", s.handleEvents)
	mux.HandleFunc("GET /v1/alerts", s.handleAlerts)
	mux.HandleFunc("POST /v1/alerts/{id}/resolve", s.handleResolve)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	mux.HandleFunc("GET /stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.Stats())
	})
	mux.Handle("GET /metrics", s.metrics.Registry.Handler())
	return mux
}

// eventStatus is one event's outcome within a batched submission.
type eventStatus struct {
	Status string `json:"status"` // "accepted" or "rejected"
	// Error is the legacy rejection-reason string.
	//
	// Deprecated: read Code/Retryable instead; Error remains one release
	// behind the envelope migration and will be dropped.
	Error string `json:"error,omitempty"`
	// Code is the envelope taxonomy code of the rejection (empty when
	// accepted).
	Code string `json:"code,omitempty"`
	// Retryable reports whether resending this exact event can succeed.
	Retryable bool `json:"retryable,omitempty"`
}

// eventsResponse reports how much of a submission was absorbed. Array
// submissions carry one per-event status in submission order, so a
// partially rejected batch tells the client exactly which events to
// resend; single-object submissions keep the original shape (no Events
// list) for backward compatibility. The top-level "error" key carries
// the unified envelope object (it was a bare string before the
// envelope migration — the one intentional break).
type eventsResponse struct {
	Accepted int           `json:"accepted"`
	Err      *ErrorInfo    `json:"error,omitempty"`
	Events   []eventStatus `json:"events,omitempty"`
}

func (s *Service) handleEvents(w http.ResponseWriter, r *http.Request) {
	events, isArray, err := DecodeEvents(r)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, eventsResponse{
			Err: Errf(CodeInvalidBody, err.Error(), false),
		})
		return
	}
	if !isArray {
		if err := s.Ingest(events[0]); err != nil {
			writeJSON(w, IngestStatusCode(w, err), eventsResponse{Err: ErrorInfoFor(err)})
			return
		}
		writeJSON(w, http.StatusAccepted, eventsResponse{Accepted: 1})
		return
	}

	// Batched submission: every event is attempted (a rejection does not
	// shadow the events after it) and reported individually.
	statuses := make([]eventStatus, len(events))
	accepted := 0
	var firstErr error
	for i, ev := range events {
		err := s.Ingest(ev)
		if err == nil {
			statuses[i] = eventStatus{Status: "accepted"}
			accepted++
			continue
		}
		info := ErrorInfoFor(err)
		statuses[i] = eventStatus{
			Status: "rejected", Error: err.Error(),
			Code: info.Code, Retryable: info.Retryable,
		}
		if firstErr == nil || (errors.Is(err, ErrBusy) || errors.Is(err, ErrStopped)) &&
			!(errors.Is(firstErr, ErrBusy) || errors.Is(firstErr, ErrStopped)) {
			// Backpressure outranks validation errors for the status code:
			// a 503 tells the client the rejected events are retryable.
			firstErr = err
		}
	}
	code := http.StatusAccepted
	resp := eventsResponse{Accepted: accepted, Events: statuses}
	if firstErr != nil {
		code = IngestStatusCode(w, firstErr)
		resp.Err = ErrorInfoFor(firstErr)
	}
	writeJSON(w, code, resp)
}

// IngestStatusCode maps an Ingest error to its HTTP status, setting
// Retry-After on backpressure rejections (the rolled-back events are
// safe to resend). Exported for internal/tenant's router, which reuses
// the single-tenant error contract per routed event.
func IngestStatusCode(w http.ResponseWriter, err error) int {
	switch {
	case errors.Is(err, ErrBusy):
		w.Header().Set("Retry-After", "1")
		return http.StatusServiceUnavailable
	case errors.Is(err, ErrStopped), errors.Is(err, ErrNotReady):
		return http.StatusServiceUnavailable
	default:
		return http.StatusBadRequest
	}
}

// DecodeEvents accepts either a single JSON event object or an array,
// reporting which shape arrived so the response can mirror it.
// Exported for internal/tenant's router, which decodes once and then
// routes per event.
func DecodeEvents(r *http.Request) (events []Event, isArray bool, err error) {
	dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, 8<<20))
	var raw json.RawMessage
	if err := dec.Decode(&raw); err != nil {
		return nil, false, errors.New("invalid JSON body")
	}
	for _, c := range raw {
		switch c {
		case ' ', '\t', '\n', '\r':
			continue
		case '[':
			var events []Event
			if err := json.Unmarshal(raw, &events); err != nil {
				return nil, true, errors.New("invalid event array")
			}
			return events, true, nil
		default:
			var ev Event
			if err := json.Unmarshal(raw, &ev); err != nil {
				return nil, false, errors.New("invalid event object")
			}
			return []Event{ev}, false, nil
		}
	}
	return nil, false, errors.New("empty body")
}

func (s *Service) handleAlerts(w http.ResponseWriter, r *http.Request) {
	status := r.URL.Query().Get("status")
	switch status {
	case "", StatusOpen, StatusFalseAlarm, StatusConfirmed:
	default:
		writeJSON(w, http.StatusBadRequest, ErrorBody{
			Error: Errf(CodeInvalidBody, "unknown status filter", false),
		})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"alerts": s.Alerts(status)})
}

func (s *Service) handleResolve(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.ParseInt(r.PathValue("id"), 10, 64)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, ErrorBody{
			Error: Errf(CodeInvalidBody, "invalid alert id", false),
		})
		return
	}
	var body struct {
		Verdict string `json:"verdict"`
	}
	if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
		writeJSON(w, http.StatusBadRequest, ErrorBody{
			Error: Errf(CodeInvalidBody, "invalid JSON body", false),
		})
		return
	}
	switch err := s.Resolve(id, body.Verdict); {
	case err == nil:
		writeJSON(w, http.StatusOK, map[string]string{"status": "resolved"})
	case errors.Is(err, ErrNoAlert):
		writeJSON(w, http.StatusNotFound, ErrorBody{
			Error: Errf(CodeUnknownAlert, "no open alert with that id", false),
		})
	case errors.Is(err, ErrSessionOpen):
		writeJSON(w, http.StatusConflict, ErrorBody{
			Error: Errf(CodeSessionOpen, "session still open", false),
		})
	case errors.Is(err, ErrInvalid):
		writeJSON(w, http.StatusBadRequest, ErrorBody{
			Error: Errf(CodeUnknownVerdict, "unknown verdict (use false_alarm or confirmed)", false),
		})
	default:
		writeJSON(w, http.StatusBadRequest, ErrorBody{Error: ErrorInfoFor(err)})
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}
