package serve

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"github.com/ucad/ucad/internal/session"
)

// Assembler turns a stream of per-client events into sessions: each
// client has at most one open session, events append to it, and a
// session closes when the client has been idle past the timeout (the
// paper's idle-gap sessionization of §6.1 running online instead of as
// a batch sort). It is safe for concurrent use.
type Assembler struct {
	mu   sync.Mutex
	open map[string]*openSession
	idle time.Duration
	now  func() time.Time
	seq  int

	opened int64
	closed int64
}

type openSession struct {
	sess     *session.Session
	keys     []int
	lastSeen time.Time
	// epoch/lastSeq are the dedupe high-water mark for epoch-carrying
	// senders (Event.Epoch > 0): the newest sender session generation
	// absorbed and its last sequence number. Zero epoch means only
	// legacy (epoch-less) events have been appended.
	epoch   int64
	lastSeq int64
}

// NewAssembler builds an assembler closing sessions after idle of
// inactivity. now supplies the wall clock (nil means time.Now); tests
// inject a fake clock to drive close-out deterministically.
func NewAssembler(idle time.Duration, now func() time.Time) *Assembler {
	if now == nil {
		now = time.Now
	}
	return &Assembler{open: make(map[string]*openSession), idle: idle, now: now}
}

// Appended describes the assembly state right after one event was
// absorbed: which session it joined, at which position, and a snapshot
// of the statement-key window ending at that operation (safe to hand to
// a concurrent scorer — it does not alias the live session).
type Appended struct {
	SessionID string
	// Pos is the 0-based index of the operation within its session.
	Pos int
	// Keys holds the up-to-window most recent statement keys, the last
	// one being the appended operation's key.
	Keys []int
	// Time is the operation's stored timestamp (the event's, or the
	// assembler clock when the event carried none) — what the WAL record
	// persists so recovery rebuilds the operation byte-exactly.
	Time time.Time
	// Dup reports that the event carried a sequence number (Event.Seq)
	// the open session already covers: nothing was appended, and the
	// caller should acknowledge without scoring or logging. SessionID
	// still identifies the session that absorbed the original delivery.
	Dup bool
}

// Append absorbs one event whose statement was already tokenized to
// key. window bounds the length of the returned key snapshot (0 means
// the whole session).
//
// An event with a positive Seq is deduplicated against the client's
// open session. When both the event and the session carry an epoch
// (Event.Epoch > 0), the check is fenced on it: an older epoch, or the
// same epoch at or below the session's last absorbed Seq, is a
// redelivery; a newer epoch is fresh traffic (the sender started a new
// session, so its Seq restarting at 1 must not look like a replay).
// Epoch-less events fall back to comparing Seq against the session
// length. A duplicate returns Dup without mutating state. Dedup cannot
// reach across a close-out — once a session leaves the assembler, a
// late redelivery of its statements opens a fresh session — so feeders
// must keep their checkpoint lag well inside the idle timeout.
func (a *Assembler) Append(ev Event, key, window int) Appended {
	now := a.now()
	ts := ev.Time
	if ts.IsZero() {
		ts = now
	}
	client := ev.Client()

	a.mu.Lock()
	defer a.mu.Unlock()
	os := a.open[client]
	if os != nil && ev.Seq > 0 && os.isDupLocked(ev) {
		os.lastSeen = now // the client is clearly alive; keep the session open
		return Appended{SessionID: os.sess.ID, Pos: int(ev.Seq) - 1, Dup: true}
	}
	if os == nil {
		a.seq++
		a.opened++
		os = &openSession{sess: &session.Session{
			ID:   fmt.Sprintf("%s#%d", client, a.seq),
			User: ev.User,
			Addr: ev.Addr,
		}}
		a.open[client] = os
	}
	os.sess.Ops = append(os.sess.Ops, session.Operation{
		Time: ts, User: ev.User, Addr: ev.Addr, SessionID: os.sess.ID, SQL: ev.SQL, Key: key,
	})
	os.keys = append(os.keys, key)
	os.lastSeen = now
	if ev.Epoch > 0 {
		os.epoch, os.lastSeq = ev.Epoch, ev.Seq
	}

	lo := 0
	if window > 0 && len(os.keys) > window {
		lo = len(os.keys) - window
	}
	snap := append([]int(nil), os.keys[lo:]...)
	return Appended{SessionID: os.sess.ID, Pos: len(os.keys) - 1, Keys: snap, Time: ts}
}

// isDupLocked reports whether a sequenced event (ev.Seq > 0) is a
// redelivery the open session already absorbed. Sender epochs are
// monotonic and delivery is in order, so anything from an older epoch —
// or from the current one at or below its last Seq — was already seen.
// When exactly one side carries an epoch the mark is incomparable
// (e.g. a session restored from a pre-epoch snapshot) and the event is
// treated as new: a rare duplicate beats silently dropping live data.
func (os *openSession) isDupLocked(ev Event) bool {
	if ev.Epoch > 0 || os.epoch > 0 {
		return ev.Epoch > 0 && os.epoch > 0 &&
			(ev.Epoch < os.epoch || (ev.Epoch == os.epoch && ev.Seq <= os.lastSeq))
	}
	return int64(len(os.keys)) >= ev.Seq
}

// Rollback removes the operation at position pos from the client's open
// session, provided it is still the most recent one — the undo path
// when the scoring queue rejects an event and the caller bounces it
// back to the client for retry. It reports whether the operation was
// actually removed (a concurrent append for the same client after pos
// prevents the rollback; the event then simply stays unscored).
func (a *Assembler) Rollback(client string, pos int) bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	os := a.open[client]
	if os == nil || len(os.keys) != pos+1 {
		return false
	}
	os.sess.Ops = os.sess.Ops[:pos]
	os.keys = os.keys[:pos]
	if pos == 0 {
		delete(a.open, client)
		a.opened--
	}
	return true
}

// Closed is a closed-out session together with the client key that
// assembled it.
type Closed struct {
	Client  string
	Session *session.Session
}

// CloseIdle closes and returns every session idle past the timeout.
func (a *Assembler) CloseIdle() []Closed {
	cutoff := a.now().Add(-a.idle)
	a.mu.Lock()
	defer a.mu.Unlock()
	var out []Closed
	for client, os := range a.open {
		if !os.lastSeen.After(cutoff) {
			delete(a.open, client)
			a.closed++
			out = append(out, Closed{Client: client, Session: os.sess})
		}
	}
	return out
}

// CloseAll closes and returns every open session (shutdown flush).
func (a *Assembler) CloseAll() []Closed {
	a.mu.Lock()
	defer a.mu.Unlock()
	var out []Closed
	for client, os := range a.open {
		delete(a.open, client)
		a.closed++
		out = append(out, Closed{Client: client, Session: os.sess})
	}
	return out
}

// Reset drops every open session without closing it — the standby
// replayer's rebuild path after a replication gap (the state is about
// to be re-restored from a newer shipped snapshot). The session-id
// counter is kept: ids must never move backwards across a rebuild.
func (a *Assembler) Reset() {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.open = make(map[string]*openSession)
}

// OpenCount returns the number of currently open sessions.
func (a *Assembler) OpenCount() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.open)
}

// Counts reports lifetime opened/closed session counts.
func (a *Assembler) Counts() (opened, closed int64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.opened, a.closed
}

// SessionState is one open session's full assembly state, the unit the
// durability layer snapshots and restores. Ops are deep copies — safe
// to serialize while the assembler keeps running.
type SessionState struct {
	Client   string              `json:"client"`
	ID       string              `json:"id"`
	User     string              `json:"user,omitempty"`
	Addr     string              `json:"addr,omitempty"`
	LastSeen time.Time           `json:"last_seen"`
	Ops      []session.Operation `json:"ops"`
	// Epoch/LastSeq carry the sender-side dedupe high-water mark (see
	// openSession) so redelivery fencing survives a restart.
	Epoch   int64 `json:"epoch,omitempty"`
	LastSeq int64 `json:"last_seq,omitempty"`
}

// Export snapshots every open session plus the session-id counter,
// sorted by client for deterministic snapshots.
func (a *Assembler) Export() (seq int, out []SessionState) {
	a.mu.Lock()
	defer a.mu.Unlock()
	out = make([]SessionState, 0, len(a.open))
	for client, os := range a.open {
		out = append(out, SessionState{
			Client:   client,
			ID:       os.sess.ID,
			User:     os.sess.User,
			Addr:     os.sess.Addr,
			LastSeen: os.lastSeen,
			Ops:      append([]session.Operation(nil), os.sess.Ops...),
			Epoch:    os.epoch,
			LastSeq:  os.lastSeq,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Client < out[j].Client })
	return a.seq, out
}

// Restore installs an open session from a snapshot (recovery path).
// keys must be the tokenized statement keys of st.Ops, index-aligned.
func (a *Assembler) Restore(st SessionState, keys []int) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.open[st.Client] = &openSession{
		sess: &session.Session{
			ID:   st.ID,
			User: st.User,
			Addr: st.Addr,
			Ops:  append([]session.Operation(nil), st.Ops...),
		},
		keys:     append([]int(nil), keys...),
		lastSeen: st.LastSeen,
		epoch:    st.Epoch,
		lastSeq:  st.LastSeq,
	}
	a.opened++
	a.bumpSeqLocked(st.ID)
}

// SetSeqFloor raises the session-id counter to at least n, so sessions
// opened after a restore never reuse a pre-crash id.
func (a *Assembler) SetSeqFloor(n int) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if n > a.seq {
		a.seq = n
	}
}

// Rekey re-tokenizes every open session's statements with a new
// vocabulary (hot model swap): the key windows handed to scorers from
// now on must rank against the model that replaced the old one. Ops
// keep their stored SQL text, so the mapping is exact, not approximate.
func (a *Assembler) Rekey(key func(sql string) int) {
	a.mu.Lock()
	defer a.mu.Unlock()
	for _, os := range a.open {
		for i := range os.sess.Ops {
			k := key(os.sess.Ops[i].SQL)
			os.sess.Ops[i].Key = k
			os.keys[i] = k
		}
	}
}

// bumpSeqLocked parses the trailing "#<n>" of a restored session id and
// raises the counter past it.
func (a *Assembler) bumpSeqLocked(id string) {
	if i := strings.LastIndexByte(id, '#'); i >= 0 {
		if n, err := strconv.Atoi(id[i+1:]); err == nil && n > a.seq {
			a.seq = n
		}
	}
}

// ReplayAppend applies one WAL event record idempotently during
// recovery: the operation lands only if it is the next expected
// position of the identified session (creating the session at position
// 0). Duplicates — records whose effect the snapshot already captured —
// and gaps are dropped silently, so replaying any WAL suffix on top of
// any snapshot converges on the prefix state the log acknowledged.
// epoch/seq, when positive, restore the sender-side dedupe high-water
// mark the original Append recorded. It reports whether the operation
// was applied.
func (a *Assembler) ReplayAppend(client, sessionID string, pos int, op session.Operation, key int, epoch, seq int64) bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	os := a.open[client]
	if os == nil {
		if pos != 0 {
			return false // gap: the session's creation is lost
		}
		os = &openSession{sess: &session.Session{
			ID:   sessionID,
			User: op.User,
			Addr: op.Addr,
		}}
		a.open[client] = os
		a.opened++
		a.bumpSeqLocked(sessionID)
	}
	if os.sess.ID != sessionID || pos != len(os.keys) {
		return false // duplicate (pos < len) or gap — never a phantom
	}
	op.SessionID = sessionID
	op.Key = key
	os.sess.Ops = append(os.sess.Ops, op)
	os.keys = append(os.keys, key)
	if epoch > 0 {
		os.epoch, os.lastSeq = epoch, seq
	}
	if op.Time.After(os.lastSeen) {
		os.lastSeen = op.Time
	}
	return true
}

// ReplayClose removes the identified session during recovery (its
// close-out verdict already happened before the record was logged).
func (a *Assembler) ReplayClose(client, sessionID string) bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	os := a.open[client]
	if os == nil || os.sess.ID != sessionID {
		return false
	}
	delete(a.open, client)
	a.closed++
	return true
}

// ReplayRollback undoes the tail operation of the identified session
// during recovery — the logged image of a backpressure rollback.
func (a *Assembler) ReplayRollback(client, sessionID string, pos int) bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	os := a.open[client]
	if os == nil || os.sess.ID != sessionID || len(os.keys) != pos+1 {
		return false
	}
	os.sess.Ops = os.sess.Ops[:pos]
	os.keys = os.keys[:pos]
	if pos == 0 {
		delete(a.open, client)
		a.opened--
	}
	return true
}
