package serve

import (
	"fmt"
	"sync"
	"time"

	"github.com/ucad/ucad/internal/session"
)

// Assembler turns a stream of per-client events into sessions: each
// client has at most one open session, events append to it, and a
// session closes when the client has been idle past the timeout (the
// paper's idle-gap sessionization of §6.1 running online instead of as
// a batch sort). It is safe for concurrent use.
type Assembler struct {
	mu   sync.Mutex
	open map[string]*openSession
	idle time.Duration
	now  func() time.Time
	seq  int

	opened int64
	closed int64
}

type openSession struct {
	sess     *session.Session
	keys     []int
	lastSeen time.Time
}

// NewAssembler builds an assembler closing sessions after idle of
// inactivity. now supplies the wall clock (nil means time.Now); tests
// inject a fake clock to drive close-out deterministically.
func NewAssembler(idle time.Duration, now func() time.Time) *Assembler {
	if now == nil {
		now = time.Now
	}
	return &Assembler{open: make(map[string]*openSession), idle: idle, now: now}
}

// Appended describes the assembly state right after one event was
// absorbed: which session it joined, at which position, and a snapshot
// of the statement-key window ending at that operation (safe to hand to
// a concurrent scorer — it does not alias the live session).
type Appended struct {
	SessionID string
	// Pos is the 0-based index of the operation within its session.
	Pos int
	// Keys holds the up-to-window most recent statement keys, the last
	// one being the appended operation's key.
	Keys []int
}

// Append absorbs one event whose statement was already tokenized to
// key. window bounds the length of the returned key snapshot (0 means
// the whole session).
func (a *Assembler) Append(ev Event, key, window int) Appended {
	now := a.now()
	ts := ev.Time
	if ts.IsZero() {
		ts = now
	}
	client := ev.Client()

	a.mu.Lock()
	defer a.mu.Unlock()
	os := a.open[client]
	if os == nil {
		a.seq++
		a.opened++
		os = &openSession{sess: &session.Session{
			ID:   fmt.Sprintf("%s#%d", client, a.seq),
			User: ev.User,
			Addr: ev.Addr,
		}}
		a.open[client] = os
	}
	os.sess.Ops = append(os.sess.Ops, session.Operation{
		Time: ts, User: ev.User, Addr: ev.Addr, SessionID: os.sess.ID, SQL: ev.SQL, Key: key,
	})
	os.keys = append(os.keys, key)
	os.lastSeen = now

	lo := 0
	if window > 0 && len(os.keys) > window {
		lo = len(os.keys) - window
	}
	snap := append([]int(nil), os.keys[lo:]...)
	return Appended{SessionID: os.sess.ID, Pos: len(os.keys) - 1, Keys: snap}
}

// Rollback removes the operation at position pos from the client's open
// session, provided it is still the most recent one — the undo path
// when the scoring queue rejects an event and the caller bounces it
// back to the client for retry. It reports whether the operation was
// actually removed (a concurrent append for the same client after pos
// prevents the rollback; the event then simply stays unscored).
func (a *Assembler) Rollback(client string, pos int) bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	os := a.open[client]
	if os == nil || len(os.keys) != pos+1 {
		return false
	}
	os.sess.Ops = os.sess.Ops[:pos]
	os.keys = os.keys[:pos]
	if pos == 0 {
		delete(a.open, client)
		a.opened--
	}
	return true
}

// Closed is a closed-out session together with the client key that
// assembled it.
type Closed struct {
	Client  string
	Session *session.Session
}

// CloseIdle closes and returns every session idle past the timeout.
func (a *Assembler) CloseIdle() []Closed {
	cutoff := a.now().Add(-a.idle)
	a.mu.Lock()
	defer a.mu.Unlock()
	var out []Closed
	for client, os := range a.open {
		if !os.lastSeen.After(cutoff) {
			delete(a.open, client)
			a.closed++
			out = append(out, Closed{Client: client, Session: os.sess})
		}
	}
	return out
}

// CloseAll closes and returns every open session (shutdown flush).
func (a *Assembler) CloseAll() []Closed {
	a.mu.Lock()
	defer a.mu.Unlock()
	var out []Closed
	for client, os := range a.open {
		delete(a.open, client)
		a.closed++
		out = append(out, Closed{Client: client, Session: os.sess})
	}
	return out
}

// OpenCount returns the number of currently open sessions.
func (a *Assembler) OpenCount() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.open)
}

// Counts reports lifetime opened/closed session counts.
func (a *Assembler) Counts() (opened, closed int64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.opened, a.closed
}
