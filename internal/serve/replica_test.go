package serve

import (
	"context"
	"io"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"github.com/ucad/ucad/internal/scorecache"
	"github.com/ucad/ucad/internal/wal"
)

// shipSealed copies every sealed stream file from src to dst — the
// in-process stand-in for the HTTP shipper (same ship-sealed-only
// listing).
func shipSealed(t *testing.T, src, dst string) {
	t.Helper()
	if err := os.MkdirAll(dst, 0o755); err != nil {
		t.Fatal(err)
	}
	files, err := wal.SealedStreamFiles(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range files {
		b, err := os.ReadFile(filepath.Join(src, f.Name))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, f.Name), b, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// replayShipped replays a shipped directory into a replica service,
// stream by stream (the in-process stand-in for the follower).
func replayShipped(t *testing.T, r *Service, dir string, shards int) {
	t.Helper()
	for i := 0; i < shards; i++ {
		_, err := wal.RestoreStream(dir, wal.ShardSegmentPrefix(i), wal.ShardSnapshotPrefix(i),
			r.ReplicaRestoreSnapshot, r.ReplicaApplyRecord)
		if err != nil {
			t.Fatal(err)
		}
	}
}

// TestReplicaPromoteServesRestoredState: a warm standby fed the
// primary's shipped snapshot+segments holds the same sessions, rejects
// traffic until promotion, serves it afterwards, and its post-promotion
// WAL survives a restart.
func TestReplicaPromoteServesRestoredState(t *testing.T) {
	u := testUCAD(t)
	clock := newFakeClock()
	dirA, dirB := t.TempDir(), t.TempDir()

	s1, _ := durableService(t, u, dirA, clock.Now, func(c *Config) { c.Shards = 2 })
	for i, client := range []string{"c1", "c2", "c3", "c4"} {
		ingestN(t, s1, client, 4+i, 0)
	}
	s1.Drain()
	_, want := exportedState(s1)
	if err := s1.Close(context.Background()); err != nil {
		t.Fatal(err)
	}

	shipSealed(t, dirA, dirB)

	r := NewService(testUCAD(t), Config{Replica: true, Shards: 2, Workers: 2, SweepEvery: -1, Clock: clock.Now})
	if !r.IsReplica() {
		t.Fatal("not a replica")
	}
	if err := r.Ingest(Event{ClientID: "x", SQL: "SELECT 1"}); err != ErrNotReady {
		t.Fatalf("replica ingest: %v, want ErrNotReady", err)
	}
	replayShipped(t, r, dirB, 2)

	gotSeq, got := exportedState(r)
	if !reflect.DeepEqual(stripTimes(got), stripTimes(want)) {
		t.Fatalf("replica state diverges from primary:\n got %+v\nwant %+v", got, want)
	}
	wantSeq, _ := exportedState(s1)
	if gotSeq < wantSeq {
		t.Fatalf("replica session-id floor %d below primary %d", gotSeq, wantSeq)
	}

	if err := r.PromoteToServing(&DurabilityConfig{Dir: dirB, Fsync: wal.SyncAlways}); err != nil {
		t.Fatal(err)
	}
	r.Start()
	if r.IsReplica() {
		t.Fatal("still a replica after promotion")
	}
	if err := r.PromoteToServing(nil); err != ErrNotReplica {
		t.Fatalf("second promotion: %v, want ErrNotReplica", err)
	}
	if got := r.Stats().Promotions; got != 1 {
		t.Fatalf("promotions = %d, want 1", got)
	}
	// The promoted standby serves durably: new events append to its own
	// WAL streams in dirB.
	ingestN(t, r, "c1", 3, 4)
	ingestN(t, r, "c5", 2, 0)
	r.Drain()
	_, want2 := exportedState(r)
	if err := r.Close(context.Background()); err != nil {
		t.Fatal(err)
	}

	s2, rst := durableService(t, testUCAD(t), dirB, clock.Now, func(c *Config) { c.Shards = 2 })
	defer s2.Close(context.Background())
	if !rst.CleanSeal {
		t.Fatal("promoted standby's Close did not seal its streams")
	}
	_, got2 := exportedState(s2)
	if !reflect.DeepEqual(stripTimes(got2), stripTimes(want2)) {
		t.Fatalf("restart of promoted standby diverges:\n got %+v\nwant %+v", got2, want2)
	}
}

// TestReplicaResetRebuildConverges: dropping the replica's state and
// re-replaying the shipped files lands on the same sessions — the gap
// catch-up path is just a restart recovery.
func TestReplicaResetRebuildConverges(t *testing.T) {
	u := testUCAD(t)
	clock := newFakeClock()
	dirA, dirB := t.TempDir(), t.TempDir()

	s1, _ := durableService(t, u, dirA, clock.Now, func(c *Config) { c.Shards = 2 })
	for i, client := range []string{"c1", "c2", "c3"} {
		ingestN(t, s1, client, 5+i, 0)
	}
	s1.Drain()
	if err := s1.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
	shipSealed(t, dirA, dirB)

	r := NewService(testUCAD(t), Config{Replica: true, Shards: 2, Workers: 2, SweepEvery: -1, Clock: clock.Now})
	replayShipped(t, r, dirB, 2)
	_, first := exportedState(r)
	if len(first) != 3 {
		t.Fatalf("replayed %d sessions, want 3", len(first))
	}
	if err := r.ReplicaReset(); err != nil {
		t.Fatal(err)
	}
	if n := len(r.ExportSessions()); n != 0 {
		t.Fatalf("%d sessions open after reset", n)
	}
	replayShipped(t, r, dirB, 2)
	_, second := exportedState(r)
	if !reflect.DeepEqual(first, second) {
		t.Fatalf("rebuild diverged:\nfirst  %+v\nsecond %+v", first, second)
	}
}

// TestReplicaGuards: the replica entry points refuse a non-replica.
func TestReplicaGuards(t *testing.T) {
	s := NewService(testUCAD(t), Config{Workers: 1, SweepEvery: -1})
	defer s.Stop()
	if err := s.ReplicaReset(); err != ErrNotReplica {
		t.Fatalf("ReplicaReset on primary: %v", err)
	}
	if err := s.ReplicaApplyRecord([]byte(`{"t":"ev"}`)); err != ErrNotReplica {
		t.Fatalf("ReplicaApplyRecord on primary: %v", err)
	}
	if err := s.ReplicaRestoreSnapshot([]byte(`{}`)); err != ErrNotReplica {
		t.Fatalf("ReplicaRestoreSnapshot on primary: %v", err)
	}
	if err := s.PromoteToServing(nil); err != ErrNotReplica {
		t.Fatalf("PromoteToServing on primary: %v", err)
	}
}

// TestWarmScoreCacheFromRestore: a restart with WarmScoreCache
// pre-populates the score cache from the restored sessions and exports
// the count.
func TestWarmScoreCacheFromRestore(t *testing.T) {
	u := testUCAD(t)
	u.Model.SetScoreCache(scorecache.New(1024))
	dir := t.TempDir()
	clock := newFakeClock()

	s1, _ := durableService(t, u, dir, clock.Now, nil)
	for i, client := range []string{"c1", "c2"} {
		ingestN(t, s1, client, 6+i, 0)
	}
	s1.Drain()
	if err := s1.Close(context.Background()); err != nil {
		t.Fatal(err)
	}

	u2 := testUCAD(t)
	u2.Model.SetScoreCache(scorecache.New(1024))
	s2, rst := durableService(t, u2, dir, clock.Now, func(c *Config) {
		c.Durability.WarmScoreCache = true
	})
	defer s2.Close(context.Background())
	if rst.CacheWarmed == 0 {
		t.Fatal("restore warmed nothing")
	}
	if got := s2.Stats().ScoreCacheWarmed; got != int64(rst.CacheWarmed) {
		t.Fatalf("stats warmed %d, restore reported %d", got, rst.CacheWarmed)
	}
	// Warming again is self-limiting: every context is already cached.
	if again := s2.WarmScoreCache(0); again != 0 {
		t.Fatalf("second warm recomputed %d rows", again)
	}
	// The counter reaches the exposition.
	rec := httptestBody(t, s2)
	if !strings.Contains(rec, "ucad_score_cache_warmed_total") {
		t.Fatal("ucad_score_cache_warmed_total missing from /metrics")
	}
}

// httptestBody scrapes the service's metrics exposition.
func httptestBody(t *testing.T, s *Service) string {
	t.Helper()
	w := httptest.NewRecorder()
	s.Metrics().Registry.Handler().ServeHTTP(w, httptest.NewRequest("GET", "/metrics", nil))
	res := w.Result()
	defer res.Body.Close()
	b, err := io.ReadAll(res.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}
