package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestServeHTTPIntegration drives the full pipeline over the wire: 8
// concurrent clients stream 12-operation sessions through POST
// /v1/events, one of them hiding an A1-style confidential read
// mid-session. The alert must appear while that session is still open,
// survive close-out, and resolve through the expert endpoint.
func TestServeHTTPIntegration(t *testing.T) {
	u := testUCAD(t)
	clk := newFakeClock()
	svc := NewService(u, Config{
		Workers:     4,
		QueueSize:   256,
		Batch:       8,
		IdleTimeout: 10 * time.Minute,
		Clock:       clk.Now,
	})
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	const clients, opsPerClient, anomalyPos = 8, 12, 6
	attacker := "client-3"

	var wg sync.WaitGroup
	errc := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			client := fmt.Sprintf("client-%d", c)
			for pos := 0; pos < opsPerClient; pos++ {
				sql := normalStatement(pos)
				if client == attacker && pos == anomalyPos {
					sql = anomalySQL
				}
				body, _ := json.Marshal(Event{ClientID: client, User: "app", SQL: sql})
				resp, err := http.Post(ts.URL+"/v1/events", "application/json", bytes.NewReader(body))
				if err != nil {
					errc <- err
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusAccepted {
					errc <- fmt.Errorf("%s op %d: status %d", client, pos, resp.StatusCode)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
	svc.Drain()

	// Health and stats while all 8 sessions are open.
	if code, _ := get(t, ts.URL+"/healthz"); code != http.StatusOK {
		t.Fatalf("healthz = %d", code)
	}
	var st Stats
	getJSON(t, ts.URL+"/stats", &st)
	if st.SessionsOpen != clients {
		t.Fatalf("sessions open = %d, want %d", st.SessionsOpen, clients)
	}
	if st.EventsAccepted != clients*opsPerClient {
		t.Fatalf("events accepted = %d, want %d", st.EventsAccepted, clients*opsPerClient)
	}
	// Every op past MinContext was scored.
	wantScored := int64(clients * (opsPerClient - u.Model.Config().MinContext))
	if st.OpsScored != wantScored {
		t.Fatalf("ops scored = %d, want %d", st.OpsScored, wantScored)
	}

	// The anomaly was flagged MID-SESSION: the alert exists while the
	// attacker's session is still open.
	var alertsResp struct{ Alerts []Alert }
	getJSON(t, ts.URL+"/v1/alerts?status=open", &alertsResp)
	if len(alertsResp.Alerts) != 1 {
		t.Fatalf("open alerts = %+v, want exactly one", alertsResp.Alerts)
	}
	alert := alertsResp.Alerts[0]
	if alert.Client != attacker || alert.Final {
		t.Fatalf("mid-session alert %+v, want open alert for %s", alert, attacker)
	}
	if len(alert.Positions) != 1 || alert.Positions[0] != anomalyPos {
		t.Fatalf("alert positions %v, want [%d]", alert.Positions, anomalyPos)
	}
	if alert.Statements[0] != anomalySQL {
		t.Fatalf("alert statement %q, want %q", alert.Statements[0], anomalySQL)
	}

	// Resolving before the session closes is a conflict.
	if code, _ := post(t, ts.URL, alert.ID, `{"verdict":"confirmed"}`); code != http.StatusConflict {
		t.Fatalf("resolve while open = %d, want 409", code)
	}

	// Idle close-out finalizes the alert; the 7 clean sessions join the
	// verified pool.
	clk.Advance(11 * time.Minute)
	if n := svc.CloseIdleNow(); n != clients {
		t.Fatalf("closed %d sessions, want %d", n, clients)
	}
	getJSON(t, ts.URL+"/stats", &st)
	if st.SessionsFlagged != 1 || st.VerifiedPool != clients-1 {
		t.Fatalf("post-close stats %+v", st)
	}
	getJSON(t, ts.URL+"/v1/alerts", &alertsResp)
	if len(alertsResp.Alerts) != 1 || !alertsResp.Alerts[0].Final {
		t.Fatalf("final alerts %+v", alertsResp.Alerts)
	}

	// Expert confirms the anomaly; the pending queue drains.
	if code, body := post(t, ts.URL, alert.ID, `{"verdict":"confirmed"}`); code != http.StatusOK {
		t.Fatalf("resolve = %d (%s)", code, body)
	}
	if code, _ := post(t, ts.URL, alert.ID, `{"verdict":"confirmed"}`); code != http.StatusNotFound {
		t.Fatal("double resolve must 404")
	}
	if len(svc.Online().Pending()) != 0 {
		t.Fatal("pending queue not drained")
	}
	getJSON(t, ts.URL+"/v1/alerts?status=confirmed", &alertsResp)
	if len(alertsResp.Alerts) != 1 {
		t.Fatalf("confirmed alerts = %d, want 1", len(alertsResp.Alerts))
	}
	svc.Stop()
}

func TestServeHTTPEventArrayAndValidation(t *testing.T) {
	u := testUCAD(t)
	svc := NewService(u, Config{Workers: 1, QueueSize: 64})
	defer svc.Stop()
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	// A JSON array ingests as a batch.
	events := make([]Event, 5)
	for i := range events {
		events[i] = Event{ClientID: "batch", User: "app", SQL: normalStatement(i)}
	}
	body, _ := json.Marshal(events)
	resp, err := http.Post(ts.URL+"/v1/events", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var er eventsResponse
	json.NewDecoder(resp.Body).Decode(&er)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted || er.Accepted != 5 {
		t.Fatalf("batch ingest: %d accepted=%d", resp.StatusCode, er.Accepted)
	}

	for _, tc := range []struct {
		body string
		want int
	}{
		{`{"client_id":"x"}`, http.StatusBadRequest}, // missing sql
		{`not json`, http.StatusBadRequest},
		{``, http.StatusBadRequest},
		{`[{"client_id":"x","sql":"SELECT 1"}`, http.StatusBadRequest},
	} {
		resp, err := http.Post(ts.URL+"/v1/events", "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Fatalf("body %q: status %d, want %d", tc.body, resp.StatusCode, tc.want)
		}
	}

	if code, _ := get(t, ts.URL+"/v1/alerts?status=bogus"); code != http.StatusBadRequest {
		t.Fatal("bogus status filter must 400")
	}
	if code, _ := post(t, ts.URL, 999, `{"verdict":"confirmed"}`); code != http.StatusNotFound {
		t.Fatal("unknown alert id must 404")
	}
	resp, err = http.Post(ts.URL+"/v1/alerts/abc/resolve", "application/json", strings.NewReader(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("non-numeric alert id: %d, want 400", resp.StatusCode)
	}
}

// TestServeHTTPBatchPerEventStatuses checks the batched-submission
// contract: every event in an array is attempted, the response carries
// one status per event in submission order, and the valid events land
// even when the batch also carries rejected ones. Single-object
// submissions keep the legacy response shape.
func TestServeHTTPBatchPerEventStatuses(t *testing.T) {
	u := testUCAD(t)
	svc := NewService(u, Config{Workers: 1, QueueSize: 64})
	defer svc.Stop()
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	// A mixed batch: two valid events around one with no SQL.
	body := `[{"client_id":"c","user":"app","sql":"SELECT 1"},{"client_id":"c"},{"client_id":"c","user":"app","sql":"SELECT 2"}]`
	resp, err := http.Post(ts.URL+"/v1/events", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var er eventsResponse
	json.NewDecoder(resp.Body).Decode(&er)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("mixed batch status = %d, want 400", resp.StatusCode)
	}
	if er.Accepted != 2 || len(er.Events) != 3 {
		t.Fatalf("mixed batch response %+v, want accepted=2 with 3 statuses", er)
	}
	if er.Events[0].Status != "accepted" || er.Events[2].Status != "accepted" {
		t.Fatalf("valid events not accepted: %+v", er.Events)
	}
	if er.Events[1].Status != "rejected" || er.Events[1].Error == "" {
		t.Fatalf("invalid event not rejected with reason: %+v", er.Events[1])
	}
	if got := svc.Stats().EventsAccepted; got != 2 {
		t.Fatalf("events accepted = %d, want 2 (rejection must not shadow later events)", got)
	}

	// Single-object shape: legacy response, no per-event list.
	resp, err = http.Post(ts.URL+"/v1/events", "application/json",
		strings.NewReader(`{"client_id":"c","user":"app","sql":"SELECT 3"}`))
	if err != nil {
		t.Fatal(err)
	}
	var raw map[string]json.RawMessage
	json.NewDecoder(resp.Body).Decode(&raw)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted || string(raw["accepted"]) != "1" {
		t.Fatalf("single object: %d %v", resp.StatusCode, raw)
	}
	if _, ok := raw["events"]; ok {
		t.Fatal("single-object response must not carry a per-event status list")
	}

	// A stopped service rejects the whole batch as retryable: 503 with
	// every event rejected.
	svc.Stop()
	resp, err = http.Post(ts.URL+"/v1/events", "application/json",
		strings.NewReader(`[{"client_id":"c","user":"app","sql":"SELECT 4"}]`))
	if err != nil {
		t.Fatal(err)
	}
	er = eventsResponse{}
	json.NewDecoder(resp.Body).Decode(&er)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("stopped batch status = %d, want 503", resp.StatusCode)
	}
	if er.Accepted != 0 || len(er.Events) != 1 || er.Events[0].Status != "rejected" {
		t.Fatalf("stopped batch response %+v", er)
	}
}

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, string(b)
}

func getJSON(t *testing.T, url string, v any) {
	t.Helper()
	code, body := get(t, url)
	if code != http.StatusOK {
		t.Fatalf("GET %s = %d (%s)", url, code, body)
	}
	if err := json.Unmarshal([]byte(body), v); err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
}

func post(t *testing.T, base string, id int64, body string) (int, string) {
	t.Helper()
	resp, err := http.Post(fmt.Sprintf("%s/v1/alerts/%d/resolve", base, id), "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, string(b)
}
