package serve

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"github.com/ucad/ucad/internal/core"
	"github.com/ucad/ucad/internal/detect"
	"github.com/ucad/ucad/internal/obs"
	"github.com/ucad/ucad/internal/scorecache"
	"github.com/ucad/ucad/internal/sqlnorm"
	"github.com/ucad/ucad/internal/wal"
)

// RetrainGate schedules background fine-tune rounds across services
// sharing one training budget (multi-tenant deployments install a
// weighted-fair gate so a busy tenant cannot starve its siblings).
type RetrainGate interface {
	// Acquire blocks until the caller may start a fine-tune round; the
	// returned release must be called when the round ends.
	Acquire(tenant string) func()
	// Position reports how many rounds are queued ahead of tenant
	// (0 means idle or running now).
	Position(tenant string) int
}

// Config tunes the serving layer.
type Config struct {
	// Shards is the number of ingest-plane partitions: sessions are
	// routed to a shard by consistent hash of their client id, and each
	// shard owns its session map, its WAL stream and its scoring queue
	// (0 means GOMAXPROCS).
	Shards int
	// Workers is the scoring worker-pool size.
	Workers int
	// QueueSize bounds the total scoring queue capacity, split across
	// shard queues; a full shard queue rejects events with ErrBusy
	// (backpressure).
	QueueSize int
	// Batch is the micro-batch size a worker drains per pass.
	Batch int
	// IdleTimeout closes a client's session after this much inactivity.
	IdleTimeout time.Duration
	// SweepEvery is the close-out sweep period (0 disables the
	// background sweeper; CloseIdleNow still works).
	SweepEvery time.Duration
	// RetrainAfter triggers a background fine-tune once the verified
	// pool reaches this many sessions (0 disables auto-retraining).
	RetrainAfter int
	// RetrainEpochs is the fine-tune epoch count per retrain round.
	RetrainEpochs int
	// RetrainGate, when non-nil, gates background fine-tune rounds (see
	// RetrainGate); nil means rounds start immediately.
	RetrainGate RetrainGate
	// MaxResolvedAlerts bounds how many resolved alerts the in-memory
	// store retains (FIFO eviction; 0 means the default, negative means
	// unbounded). Open alerts are never evicted.
	MaxResolvedAlerts int
	// ResolvedAlertTTL ages resolved alerts out of the store (0 means
	// the default, negative disables the TTL).
	ResolvedAlertTTL time.Duration
	// Durability, when non-nil, makes the service crash-safe: accepted
	// events are WAL-logged before ack, open sessions are snapshotted,
	// and Restore rebuilds them after a restart (see DurabilityConfig).
	Durability *DurabilityConfig
	// Replica starts the service as a warm standby: it never serves —
	// Ingest rejects with ErrNotReady — while a replication follower
	// drives its state through ReplicaRestoreSnapshot/ReplicaApplyRecord
	// until PromoteToServing flips it live (see replica.go). Leave
	// Durability nil for a replica; promotion supplies it.
	Replica bool
	// Metrics receives the serving instrumentation; nil creates a
	// private registry (reachable via Service.Metrics). A Metrics value
	// binds to exactly one Service.
	Metrics *Metrics
	// Clock supplies the wall clock (nil means time.Now); tests inject
	// a fake clock to drive idle close-out deterministically.
	Clock func() time.Time
}

// DefaultConfig returns serving defaults sized for a single node.
func DefaultConfig() Config {
	return Config{
		Workers:           4,
		QueueSize:         1024,
		Batch:             16,
		IdleTimeout:       10 * time.Minute,
		SweepEvery:        15 * time.Second,
		RetrainEpochs:     2,
		MaxResolvedAlerts: 4096,
		ResolvedAlertTTL:  24 * time.Hour,
	}
}

// modelBundle is the serving model plus the scoring parameters derived
// from it, swapped as one unit so a hot model replacement can never be
// observed half-applied on the ingest path.
type modelBundle struct {
	ucad       *core.UCAD
	window     int
	minContext int
	topP       int
}

// Service is the full online detection loop of Figure 5 as a running
// system: events stream in, sessions assemble per client on the shard
// the client hashes to, every operation is scored concurrently against
// the trained model, flagged operations raise alerts mid-session,
// closed sessions feed the verified-pool/retrain cycle via
// detect.Online.
type Service struct {
	cfg     Config
	online  *detect.Online
	shards  []*shard
	engine  *Engine
	alerts  *alertStore
	metrics *Metrics
	start   time.Time

	// model is the active model bundle; read per ingest, replaced
	// atomically by SwapModel.
	model atomic.Pointer[modelBundle]

	accepted    atomic.Int64
	rejected    atomic.Int64
	midFlags    atomic.Int64
	lateFlags   atomic.Int64
	retrains    atomic.Int64
	unknownKeys atomic.Int64
	dupEvents   atomic.Int64
	modelSwaps  atomic.Int64

	stopped    atomic.Bool
	retraining atomic.Bool
	retrainWG  sync.WaitGroup

	// replica marks a warm standby (Config.Replica) that has not been
	// promoted yet; cacheWarmed counts score-cache rows pre-populated
	// from restored sessions (WarmScoreCache); promotions counts
	// PromoteToServing flips (0 or 1 per process today).
	replica     atomic.Bool
	cacheWarmed atomic.Int64
	promotions  atomic.Int64

	sweepStop chan struct{}
	sweepDone chan struct{}
	startOnce sync.Once

	// Durability state (zero without Config.Durability; see durable.go).
	// ready publishes the shard stores after Restore: a
	// durability-configured service rejects ingest with ErrNotReady
	// until it is set, so no accepted event can bypass the log.
	ready       atomic.Bool
	restoreOnce atomic.Bool
	ckpts       *wal.Checkpoints
	recovered   atomic.Int64
	ckptErrors  atomic.Int64
	snapStop    chan struct{}
	snapDone    chan struct{}
}

// NewService wires a trained detector into a serving loop. The scoring
// workers start immediately; call Start to launch the background
// close-out sweeper and Stop to flush and shut down.
func NewService(u *core.UCAD, cfg Config) *Service {
	def := DefaultConfig()
	if cfg.Shards <= 0 {
		cfg.Shards = runtime.GOMAXPROCS(0)
	}
	if cfg.Workers <= 0 {
		cfg.Workers = def.Workers
	}
	if cfg.QueueSize <= 0 {
		cfg.QueueSize = def.QueueSize
	}
	if cfg.Batch <= 0 {
		cfg.Batch = def.Batch
	}
	if cfg.IdleTimeout <= 0 {
		cfg.IdleTimeout = def.IdleTimeout
	}
	if cfg.RetrainEpochs <= 0 {
		cfg.RetrainEpochs = def.RetrainEpochs
	}
	if cfg.MaxResolvedAlerts == 0 {
		cfg.MaxResolvedAlerts = def.MaxResolvedAlerts
	}
	if cfg.ResolvedAlertTTL == 0 {
		cfg.ResolvedAlertTTL = def.ResolvedAlertTTL
	}
	if cfg.Metrics == nil {
		cfg.Metrics = NewMetrics(nil)
	}
	if cfg.Clock == nil {
		cfg.Clock = time.Now
	}
	mcfg := u.Model.Config()
	s := &Service{
		cfg:     cfg,
		online:  detect.NewOnline(u),
		alerts:  newAlertStore(cfg.Clock, cfg.MaxResolvedAlerts, cfg.ResolvedAlertTTL),
		metrics: cfg.Metrics,
		start:   cfg.Clock(),
	}
	s.model.Store(&modelBundle{
		ucad:       u,
		window:     mcfg.Window,
		minContext: mcfg.MinContext,
		topP:       mcfg.TopP,
	})
	s.replica.Store(cfg.Replica)
	s.shards = make([]*shard, cfg.Shards)
	for i := range s.shards {
		s.shards[i] = &shard{idx: i, asm: NewAssembler(cfg.IdleTimeout, cfg.Clock)}
	}
	s.engine = NewEngine(s.online, cfg.Shards, cfg.Workers, cfg.QueueSize, cfg.Batch, s.onResult)
	m := s.metrics
	s.engine.instrument(m.queueWaitSeconds, m.scoreSeconds, m.scoreBatchSize)
	s.online.SetTrainHooks(detect.TrainHooks{
		Epoch: func(epoch int, loss float64, took time.Duration) {
			m.trainEpochLoss.Set(loss)
			m.trainEpochs.Inc()
			m.trainEpochSeconds.Observe(took.Seconds())
		},
		Done: func(st detect.RetrainStats) {
			m.retrainSeconds.Observe(st.Duration.Seconds())
			m.trainWindowsPerSec.Set(st.WindowsPerSecond())
		},
	})
	m.bind(s)
	return s
}

// Start launches the background idle-session sweeper (no-op when
// Config.SweepEvery is zero).
func (s *Service) Start() {
	s.startOnce.Do(func() {
		if s.cfg.SweepEvery <= 0 {
			return
		}
		s.sweepStop = make(chan struct{})
		s.sweepDone = make(chan struct{})
		go func() {
			defer close(s.sweepDone)
			t := time.NewTicker(s.cfg.SweepEvery)
			defer t.Stop()
			for {
				select {
				case <-t.C:
					s.CloseIdleNow()
				case <-s.sweepStop:
					return
				}
			}
		}()
	})
}

// Stop flushes every open session through close-out detection and shuts
// the scoring pool down. Quiesce ingestion (shut the HTTP server down)
// before calling it; Ingest fails with ErrStopped afterwards. With
// durability enabled the flushed close-outs are WAL-logged and the logs
// are sealed, so a restart restores an empty assembler; use Close to
// preserve open sessions across a deploy instead.
func (s *Service) Stop() {
	if !s.stopped.CompareAndSwap(false, true) {
		return
	}
	s.stopBackground()
	s.engine.Drain()
	s.finalize(s.closeAllLogged(false))
	s.engine.Stop()
	s.retrainWG.Wait()
	s.sealAndCloseStore()
}

// Close is the durable graceful shutdown: ingestion must already be
// quiesced; Close stops the background loops, drains the scoring queue
// (bounded by ctx), runs close-out detection on sessions already idle
// past the timeout, then snapshots the still-open sessions shard by
// shard, appends each stream's clean-seal record and closes the logs —
// a following Restore on the same directory brings every open session
// back exactly where it was. Without durability it behaves like Stop
// (nothing would preserve the sessions, so they are flushed through
// detection instead).
func (s *Service) Close(ctx context.Context) error {
	if !s.ready.Load() {
		s.Stop()
		return nil
	}
	if !s.stopped.CompareAndSwap(false, true) {
		return nil
	}
	s.stopBackground()
	var err error
	drained := make(chan struct{})
	go func() { s.engine.Drain(); close(drained) }()
	select {
	case <-drained:
	case <-ctx.Done():
		err = ctx.Err() // proceed: shutdown must still seal the logs
	}
	s.finalize(s.closeAllLogged(true))
	s.engine.Stop()
	s.retrainWG.Wait()
	if serr := s.sealAndCloseStore(); err == nil {
		err = serr
	}
	return err
}

// stopBackground stops the idle sweeper and the snapshot loop.
func (s *Service) stopBackground() {
	if s.sweepStop != nil {
		close(s.sweepStop)
		<-s.sweepDone
	}
	if s.snapStop != nil {
		close(s.snapStop)
		<-s.snapDone
	}
}

// Ingest absorbs one event: the statement is tokenized with the trained
// vocabulary, appended to the client's open session on the shard the
// client hashes to, and queued for incremental scoring once the session
// has MinContext history. A full shard scoring queue rejects the event
// with ErrBusy — the operation is rolled back out of the session so a
// client retry is not a duplicate. With durability enabled the event is
// logged to the shard's own WAL stream (durable per the fsync policy)
// before Ingest returns nil — the write-ahead contract: nothing is
// acknowledged that a crash could forget.
//
// A statement whose template is absent from the trained vocabulary maps
// to the reserved UNK key (sqlnorm.UnknownKey): it is still assembled
// and scored — the model ranks UNK last, so such operations always flag
// — and counted in ucad_feed_unknown_keys_total rather than rejected.
// An event whose Seq the open session already covers is a redelivery:
// it is acknowledged without re-appending, re-logging or re-scoring
// (counted in ucad_feed_duplicate_events_total).
func (s *Service) Ingest(ev Event) error {
	if s.stopped.Load() {
		return ErrStopped
	}
	// A warm standby never serves: clients get the retryable not-ready
	// signal until promotion. (The atomic load also orders the config
	// writes PromoteToServing makes before it clears the flag.)
	if s.replica.Load() {
		return ErrNotReady
	}
	if ev.SQL == "" {
		return ErrInvalid
	}
	durable := s.cfg.Durability != nil
	if durable && !s.ready.Load() {
		return ErrNotReady
	}
	t := obs.StartTimer(s.metrics.ingestSeconds)
	defer t.Stop()
	mb := s.model.Load()
	key := mb.ucad.Vocab.Key(ev.SQL)
	if key == sqlnorm.UnknownKey {
		s.unknownKeys.Add(1)
	}
	client := ev.Client()
	sh := s.shardFor(client)
	var ap Appended
	if durable {
		var err error
		if ap, err = s.ingestDurable(sh, ev, key, mb.window); err != nil {
			s.rejected.Add(1)
			return err
		}
	} else {
		ap = sh.asm.Append(ev, key, mb.window+1)
	}
	if ap.Dup {
		s.dupEvents.Add(1)
		return nil
	}
	if ap.Pos >= mb.minContext {
		job := Job{
			Client:    client,
			User:      ev.User,
			SessionID: ap.SessionID,
			Keys:      ap.Keys,
			Pos:       ap.Pos,
			SQL:       ev.SQL,
		}
		if err := s.engine.Submit(sh.idx, job); err != nil {
			s.rollbackLogged(sh, client, ap.SessionID, ap.Pos)
			s.rejected.Add(1)
			return err
		}
	}
	s.accepted.Add(1)
	return nil
}

// onResult runs on scoring workers: ranks beyond top-p raise (or
// extend) the session's mid-session alert.
func (s *Service) onResult(r Result) {
	if r.Rank <= s.model.Load().topP {
		return
	}
	s.midFlags.Add(1)
	if !s.alerts.flag(r, r.User) {
		s.lateFlags.Add(1)
	}
}

// CloseIdleNow sweeps idle sessions through close-out detection
// immediately and returns how many closed. It also ages resolved alerts
// past their retention TTL out of the store.
func (s *Service) CloseIdleNow() int {
	closed := s.closeAllLogged(true)
	s.finalize(closed)
	s.alerts.evictExpired()
	return len(closed)
}

// finalize runs full-session detection on closed sessions — the
// authoritative verdict of Figure 5: normal sessions join the verified
// pool, anomalous ones become (or complete) pending alerts.
func (s *Service) finalize(closed []Closed) {
	for _, c := range closed {
		t := obs.StartTimer(s.metrics.closeoutSeconds)
		da := s.online.Process(c.Session)
		t.Stop()
		stmts := make([]string, len(c.Session.Ops))
		for i := range c.Session.Ops {
			stmts[i] = c.Session.Ops[i].SQL
		}
		s.alerts.finalize(c.Session.ID, c.Client, c.Session.User, stmts, da)
	}
	s.maybeRetrain()
}

// maybeRetrain kicks one background fine-tune round when the verified
// pool is large enough; scoring keeps running and blocks only for the
// model-swap critical section inside detect.Online. A configured
// RetrainGate is acquired first, so overlapping tenant rounds share the
// training workers fairly instead of piling up.
func (s *Service) maybeRetrain() {
	if s.cfg.RetrainAfter <= 0 || s.online.VerifiedCount() < s.cfg.RetrainAfter {
		return
	}
	if !s.retraining.CompareAndSwap(false, true) {
		return
	}
	s.retrainWG.Add(1)
	go func() {
		defer s.retrainWG.Done()
		defer s.retraining.Store(false)
		if g := s.cfg.RetrainGate; g != nil {
			release := g.Acquire(s.metrics.TenantID())
			defer release()
		}
		if s.online.Retrain(s.cfg.RetrainEpochs) > 0 {
			s.retrains.Add(1)
			s.checkpointModel()
		}
	}()
}

// SwapModel hot-replaces the serving model without draining the
// service: a brief stop-the-world barrier over every ingest shard swaps
// the detector inside detect.Online (under its model write-lock),
// publishes the new scoring parameters, and re-tokenizes every open
// session with the new vocabulary so the key windows handed to scorers
// stay consistent with the model ranking them. Scoring jobs already in
// flight complete against whichever model version their batch locks —
// at most one micro-batch per worker spans the swap. The caller has
// already validated that the model loads.
func (s *Service) SwapModel(u *core.UCAD) error {
	if s.stopped.Load() {
		return ErrStopped
	}
	mcfg := u.Model.Config()
	for _, sh := range s.shards {
		sh.durMu.Lock()
	}
	s.online.SwapModel(u)
	s.model.Store(&modelBundle{
		ucad:       u,
		window:     mcfg.Window,
		minContext: mcfg.MinContext,
		topP:       mcfg.TopP,
	})
	for _, sh := range s.shards {
		sh.asm.Rekey(u.Vocab.Key)
	}
	for i := len(s.shards) - 1; i >= 0; i-- {
		s.shards[i].durMu.Unlock()
	}
	s.modelSwaps.Add(1)
	return nil
}

// ModelSwaps reports how many hot model replacements have been applied.
func (s *Service) ModelSwaps() int64 { return s.modelSwaps.Load() }

// Resolve applies an expert verdict to a final alert: false alarms
// rejoin the training pool (§5.2), confirmed anomalies never do.
func (s *Service) Resolve(id int64, verdict string) error {
	var status string
	switch verdict {
	case StatusFalseAlarm, "false-alarm":
		status = StatusFalseAlarm
	case StatusConfirmed:
		status = StatusConfirmed
	default:
		return ErrInvalid
	}
	da, err := s.alerts.resolve(id, status)
	if err != nil {
		return err
	}
	s.metrics.alertsResolved.With(status).Inc()
	if da != nil {
		if status == StatusFalseAlarm {
			s.online.ResolveFalseAlarm(da)
		} else {
			s.online.ResolveConfirmed(da)
		}
	}
	s.maybeRetrain()
	return nil
}

// Alerts lists alerts, optionally filtered by status.
func (s *Service) Alerts(status string) []Alert { return s.alerts.list(status) }

// Drain blocks until every accepted scoring job has completed (test and
// benchmark aid; quiesce ingestion first).
func (s *Service) Drain() { s.engine.Drain() }

// Online exposes the wrapped detection loop (expert tooling, tests).
func (s *Service) Online() *detect.Online { return s.online }

// Metrics exposes the serving instrumentation (scrape it with
// Metrics().Registry.Handler(), already mounted at GET /metrics).
func (s *Service) Metrics() *Metrics { return s.metrics }

// Stats is a point-in-time snapshot of the serving counters. Every
// field reads the same underlying counter the /metrics exposition
// exports, so the two views cannot disagree.
type Stats struct {
	UptimeSeconds     float64 `json:"uptime_seconds"`
	EventsAccepted    int64   `json:"events_accepted"`
	EventsRejected    int64   `json:"events_rejected"`
	OpsScored         int64   `json:"ops_scored"`
	OpsRejected       int64   `json:"ops_rejected"`
	MidSessionFlags   int64   `json:"mid_session_flags"`
	SessionsOpen      int     `json:"sessions_open"`
	SessionsClosed    int64   `json:"sessions_closed"`
	SessionsProcessed int     `json:"sessions_processed"`
	SessionsFlagged   int     `json:"sessions_flagged"`
	AlertsOpen        int     `json:"alerts_open"`
	AlertsRaised      int64   `json:"alerts_raised"`
	AlertsEvicted     int64   `json:"alerts_evicted"`
	VerifiedPool      int     `json:"verified_pool"`
	Retrains          int64   `json:"retrains"`
	QueueDepth        int     `json:"queue_depth"`
	Workers           int     `json:"workers"`
	Shards            int     `json:"shards"`
	ModelSwaps        int64   `json:"model_swaps"`
	RecoveredSessions int64   `json:"recovered_sessions"`
	UnknownKeys       int64   `json:"unknown_keys"`
	DuplicateEvents   int64   `json:"duplicate_events"`
	Replica           bool    `json:"replica,omitempty"`
	Promotions        int64   `json:"promotions,omitempty"`

	// Score-cache counters (all zero when no cache is attached). HitRate
	// is hits/(hits+misses) over the service lifetime — the cache object
	// survives hot model swaps, so the ratio never resets mid-flight.
	ScoreCacheHits      int64   `json:"score_cache_hits"`
	ScoreCacheMisses    int64   `json:"score_cache_misses"`
	ScoreCacheEvictions int64   `json:"score_cache_evictions"`
	ScoreCacheEntries   int64   `json:"score_cache_entries"`
	ScoreCacheHitRate   float64 `json:"score_cache_hit_rate"`
	// ScoreCacheWarmed counts rows pre-populated from restored sessions
	// (restart warm-up or standby replay; see WarmScoreCache).
	ScoreCacheWarmed int64 `json:"score_cache_warmed"`
}

// Stats snapshots the serving counters.
func (s *Service) Stats() Stats {
	scored, opsRejected := s.engine.Counts()
	_, closed := s.asmCounts()
	processed, flagged := s.online.Stats()
	var cs scorecache.Stats
	if c := s.online.Detector().Model.ScoreCache(); c != nil {
		cs = c.Stats()
	}
	return Stats{
		UptimeSeconds:     s.cfg.Clock().Sub(s.start).Seconds(),
		EventsAccepted:    s.accepted.Load(),
		EventsRejected:    s.rejected.Load(),
		OpsScored:         scored,
		OpsRejected:       opsRejected,
		MidSessionFlags:   s.midFlags.Load(),
		SessionsOpen:      s.openCount(),
		SessionsClosed:    closed,
		SessionsProcessed: processed,
		SessionsFlagged:   flagged,
		AlertsOpen:        s.alerts.openCount(),
		AlertsRaised:      s.alerts.raisedCount(),
		AlertsEvicted:     s.alerts.evictedCount(),
		VerifiedPool:      s.online.VerifiedCount(),
		Retrains:          s.retrains.Load(),
		QueueDepth:        s.engine.QueueDepth(),
		Workers:           s.cfg.Workers,
		Shards:            len(s.shards),
		ModelSwaps:        s.modelSwaps.Load(),
		RecoveredSessions: s.recovered.Load(),
		UnknownKeys:       s.unknownKeys.Load(),
		DuplicateEvents:   s.dupEvents.Load(),
		Replica:           s.replica.Load(),
		Promotions:        s.promotions.Load(),

		ScoreCacheHits:      int64(cs.Hits),
		ScoreCacheMisses:    int64(cs.Misses),
		ScoreCacheEvictions: int64(cs.Evictions),
		ScoreCacheEntries:   cs.Entries,
		ScoreCacheHitRate:   cs.HitRate(),
		ScoreCacheWarmed:    s.cacheWarmed.Load(),
	}
}
