package serve

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"github.com/ucad/ucad/internal/core"
	"github.com/ucad/ucad/internal/detect"
	"github.com/ucad/ucad/internal/obs"
	"github.com/ucad/ucad/internal/sqlnorm"
	"github.com/ucad/ucad/internal/wal"
)

// Config tunes the serving layer.
type Config struct {
	// Workers is the scoring worker-pool size.
	Workers int
	// QueueSize bounds the scoring queue; a full queue rejects events
	// with ErrBusy (backpressure).
	QueueSize int
	// Batch is the micro-batch size a worker drains per pass.
	Batch int
	// IdleTimeout closes a client's session after this much inactivity.
	IdleTimeout time.Duration
	// SweepEvery is the close-out sweep period (0 disables the
	// background sweeper; CloseIdleNow still works).
	SweepEvery time.Duration
	// RetrainAfter triggers a background fine-tune once the verified
	// pool reaches this many sessions (0 disables auto-retraining).
	RetrainAfter int
	// RetrainEpochs is the fine-tune epoch count per retrain round.
	RetrainEpochs int
	// MaxResolvedAlerts bounds how many resolved alerts the in-memory
	// store retains (FIFO eviction; 0 means the default, negative means
	// unbounded). Open alerts are never evicted.
	MaxResolvedAlerts int
	// ResolvedAlertTTL ages resolved alerts out of the store (0 means
	// the default, negative disables the TTL).
	ResolvedAlertTTL time.Duration
	// Durability, when non-nil, makes the service crash-safe: accepted
	// events are WAL-logged before ack, open sessions are snapshotted,
	// and Restore rebuilds them after a restart (see DurabilityConfig).
	Durability *DurabilityConfig
	// Metrics receives the serving instrumentation; nil creates a
	// private registry (reachable via Service.Metrics). A Metrics value
	// binds to exactly one Service.
	Metrics *Metrics
	// Clock supplies the wall clock (nil means time.Now); tests inject
	// a fake clock to drive idle close-out deterministically.
	Clock func() time.Time
}

// DefaultConfig returns serving defaults sized for a single node.
func DefaultConfig() Config {
	return Config{
		Workers:           4,
		QueueSize:         1024,
		Batch:             16,
		IdleTimeout:       10 * time.Minute,
		SweepEvery:        15 * time.Second,
		RetrainEpochs:     2,
		MaxResolvedAlerts: 4096,
		ResolvedAlertTTL:  24 * time.Hour,
	}
}

// Service is the full online detection loop of Figure 5 as a running
// system: events stream in, sessions assemble per client, every
// operation is scored concurrently against the trained model, flagged
// operations raise alerts mid-session, closed sessions feed the
// verified-pool/retrain cycle via detect.Online.
type Service struct {
	cfg     Config
	ucad    *core.UCAD
	online  *detect.Online
	asm     *Assembler
	engine  *Engine
	alerts  *alertStore
	metrics *Metrics
	start   time.Time

	window     int
	minContext int
	topP       int

	accepted    atomic.Int64
	rejected    atomic.Int64
	midFlags    atomic.Int64
	lateFlags   atomic.Int64
	retrains    atomic.Int64
	unknownKeys atomic.Int64
	dupEvents   atomic.Int64

	stopped    atomic.Bool
	retraining atomic.Bool
	retrainWG  sync.WaitGroup

	sweepStop chan struct{}
	sweepDone chan struct{}
	startOnce sync.Once

	// Durability state (nil/zero without Config.Durability; see
	// durable.go). durMu makes an assembler mutation and its WAL record
	// atomic with respect to snapshot capture, pinning every snapshot to
	// an exact log position.
	store      atomic.Pointer[wal.Store]
	ckpts      *wal.Checkpoints
	durMu      sync.Mutex
	recovered  atomic.Int64
	ckptErrors atomic.Int64
	snapStop   chan struct{}
	snapDone   chan struct{}
}

// NewService wires a trained detector into a serving loop. The scoring
// workers start immediately; call Start to launch the background
// close-out sweeper and Stop to flush and shut down.
func NewService(u *core.UCAD, cfg Config) *Service {
	def := DefaultConfig()
	if cfg.Workers <= 0 {
		cfg.Workers = def.Workers
	}
	if cfg.QueueSize <= 0 {
		cfg.QueueSize = def.QueueSize
	}
	if cfg.Batch <= 0 {
		cfg.Batch = def.Batch
	}
	if cfg.IdleTimeout <= 0 {
		cfg.IdleTimeout = def.IdleTimeout
	}
	if cfg.RetrainEpochs <= 0 {
		cfg.RetrainEpochs = def.RetrainEpochs
	}
	if cfg.MaxResolvedAlerts == 0 {
		cfg.MaxResolvedAlerts = def.MaxResolvedAlerts
	}
	if cfg.ResolvedAlertTTL == 0 {
		cfg.ResolvedAlertTTL = def.ResolvedAlertTTL
	}
	if cfg.Metrics == nil {
		cfg.Metrics = NewMetrics(nil)
	}
	if cfg.Clock == nil {
		cfg.Clock = time.Now
	}
	mcfg := u.Model.Config()
	s := &Service{
		cfg:        cfg,
		ucad:       u,
		online:     detect.NewOnline(u),
		asm:        NewAssembler(cfg.IdleTimeout, cfg.Clock),
		alerts:     newAlertStore(cfg.Clock, cfg.MaxResolvedAlerts, cfg.ResolvedAlertTTL),
		metrics:    cfg.Metrics,
		start:      cfg.Clock(),
		window:     mcfg.Window,
		minContext: mcfg.MinContext,
		topP:       mcfg.TopP,
	}
	s.engine = NewEngine(s.online, cfg.Workers, cfg.QueueSize, cfg.Batch, s.onResult)
	m := s.metrics
	s.engine.instrument(m.queueWaitSeconds, m.scoreSeconds, m.scoreBatchSize)
	s.online.SetTrainHooks(detect.TrainHooks{
		Epoch: func(epoch int, loss float64, took time.Duration) {
			m.trainEpochLoss.Set(loss)
			m.trainEpochs.Inc()
			m.trainEpochSeconds.Observe(took.Seconds())
		},
		Done: func(st detect.RetrainStats) {
			m.retrainSeconds.Observe(st.Duration.Seconds())
			m.trainWindowsPerSec.Set(st.WindowsPerSecond())
		},
	})
	m.bind(s)
	return s
}

// Start launches the background idle-session sweeper (no-op when
// Config.SweepEvery is zero).
func (s *Service) Start() {
	s.startOnce.Do(func() {
		if s.cfg.SweepEvery <= 0 {
			return
		}
		s.sweepStop = make(chan struct{})
		s.sweepDone = make(chan struct{})
		go func() {
			defer close(s.sweepDone)
			t := time.NewTicker(s.cfg.SweepEvery)
			defer t.Stop()
			for {
				select {
				case <-t.C:
					s.CloseIdleNow()
				case <-s.sweepStop:
					return
				}
			}
		}()
	})
}

// Stop flushes every open session through close-out detection and shuts
// the scoring pool down. Quiesce ingestion (shut the HTTP server down)
// before calling it; Ingest fails with ErrStopped afterwards. With
// durability enabled the flushed close-outs are WAL-logged and the log
// is sealed, so a restart restores an empty assembler; use Close to
// preserve open sessions across a deploy instead.
func (s *Service) Stop() {
	if !s.stopped.CompareAndSwap(false, true) {
		return
	}
	s.stopBackground()
	s.engine.Drain()
	s.finalize(s.closeLogged(s.asm.CloseAll))
	s.engine.Stop()
	s.retrainWG.Wait()
	s.sealAndCloseStore()
}

// Close is the durable graceful shutdown: ingestion must already be
// quiesced; Close stops the background loops, drains the scoring queue
// (bounded by ctx), runs close-out detection on sessions already idle
// past the timeout, then snapshots the still-open sessions, appends the
// clean-seal record and closes the log — a following Restore on the
// same directory brings every open session back exactly where it was.
// Without durability it behaves like Stop (nothing would preserve the
// sessions, so they are flushed through detection instead).
func (s *Service) Close(ctx context.Context) error {
	if s.store.Load() == nil {
		s.Stop()
		return nil
	}
	if !s.stopped.CompareAndSwap(false, true) {
		return nil
	}
	s.stopBackground()
	var err error
	drained := make(chan struct{})
	go func() { s.engine.Drain(); close(drained) }()
	select {
	case <-drained:
	case <-ctx.Done():
		err = ctx.Err() // proceed: shutdown must still seal the log
	}
	s.finalize(s.closeLogged(s.asm.CloseIdle))
	s.engine.Stop()
	s.retrainWG.Wait()
	if serr := s.sealAndCloseStore(); err == nil {
		err = serr
	}
	return err
}

// stopBackground stops the idle sweeper and the snapshot loop.
func (s *Service) stopBackground() {
	if s.sweepStop != nil {
		close(s.sweepStop)
		<-s.sweepDone
	}
	if s.snapStop != nil {
		close(s.snapStop)
		<-s.snapDone
	}
}

// Ingest absorbs one event: the statement is tokenized with the trained
// vocabulary, appended to the client's open session, and queued for
// incremental scoring once the session has MinContext history. A full
// scoring queue rejects the event with ErrBusy — the operation is
// rolled back out of the session so a client retry is not a duplicate.
// With durability enabled the event is WAL-logged (durable per the
// fsync policy) before Ingest returns nil — the write-ahead contract:
// nothing is acknowledged that a crash could forget.
//
// A statement whose template is absent from the trained vocabulary maps
// to the reserved UNK key (sqlnorm.UnknownKey): it is still assembled
// and scored — the model ranks UNK last, so such operations always flag
// — and counted in ucad_feed_unknown_keys_total rather than rejected.
// An event whose Seq the open session already covers is a redelivery:
// it is acknowledged without re-appending, re-logging or re-scoring
// (counted in ucad_feed_duplicate_events_total).
func (s *Service) Ingest(ev Event) error {
	if s.stopped.Load() {
		return ErrStopped
	}
	if ev.SQL == "" {
		return ErrInvalid
	}
	store := s.store.Load()
	if store == nil && s.cfg.Durability != nil {
		return ErrNotReady
	}
	t := obs.StartTimer(s.metrics.ingestSeconds)
	defer t.Stop()
	key := s.ucad.Vocab.Key(ev.SQL)
	if key == sqlnorm.UnknownKey {
		s.unknownKeys.Add(1)
	}
	var ap Appended
	if store != nil {
		var err error
		if ap, err = s.ingestDurable(store, ev, key); err != nil {
			s.rejected.Add(1)
			return err
		}
	} else {
		ap = s.asm.Append(ev, key, s.window+1)
	}
	if ap.Dup {
		s.dupEvents.Add(1)
		return nil
	}
	if ap.Pos >= s.minContext {
		job := Job{
			Client:    ev.Client(),
			User:      ev.User,
			SessionID: ap.SessionID,
			Keys:      ap.Keys,
			Pos:       ap.Pos,
			SQL:       ev.SQL,
		}
		if err := s.engine.Submit(job); err != nil {
			s.rollbackLogged(ev.Client(), ap.SessionID, ap.Pos)
			s.rejected.Add(1)
			return err
		}
	}
	s.accepted.Add(1)
	return nil
}

// onResult runs on scoring workers: ranks beyond top-p raise (or
// extend) the session's mid-session alert.
func (s *Service) onResult(r Result) {
	if r.Rank <= s.topP {
		return
	}
	s.midFlags.Add(1)
	if !s.alerts.flag(r, r.User) {
		s.lateFlags.Add(1)
	}
}

// CloseIdleNow sweeps idle sessions through close-out detection
// immediately and returns how many closed. It also ages resolved alerts
// past their retention TTL out of the store.
func (s *Service) CloseIdleNow() int {
	closed := s.closeLogged(s.asm.CloseIdle)
	s.finalize(closed)
	s.alerts.evictExpired()
	return len(closed)
}

// finalize runs full-session detection on closed sessions — the
// authoritative verdict of Figure 5: normal sessions join the verified
// pool, anomalous ones become (or complete) pending alerts.
func (s *Service) finalize(closed []Closed) {
	for _, c := range closed {
		t := obs.StartTimer(s.metrics.closeoutSeconds)
		da := s.online.Process(c.Session)
		t.Stop()
		stmts := make([]string, len(c.Session.Ops))
		for i := range c.Session.Ops {
			stmts[i] = c.Session.Ops[i].SQL
		}
		s.alerts.finalize(c.Session.ID, c.Client, c.Session.User, stmts, da)
	}
	s.maybeRetrain()
}

// maybeRetrain kicks one background fine-tune round when the verified
// pool is large enough; scoring keeps running and blocks only for the
// model-swap critical section inside detect.Online.
func (s *Service) maybeRetrain() {
	if s.cfg.RetrainAfter <= 0 || s.online.VerifiedCount() < s.cfg.RetrainAfter {
		return
	}
	if !s.retraining.CompareAndSwap(false, true) {
		return
	}
	s.retrainWG.Add(1)
	go func() {
		defer s.retrainWG.Done()
		defer s.retraining.Store(false)
		if s.online.Retrain(s.cfg.RetrainEpochs) > 0 {
			s.retrains.Add(1)
			s.checkpointModel()
		}
	}()
}

// Resolve applies an expert verdict to a final alert: false alarms
// rejoin the training pool (§5.2), confirmed anomalies never do.
func (s *Service) Resolve(id int64, verdict string) error {
	var status string
	switch verdict {
	case StatusFalseAlarm, "false-alarm":
		status = StatusFalseAlarm
	case StatusConfirmed:
		status = StatusConfirmed
	default:
		return ErrInvalid
	}
	da, err := s.alerts.resolve(id, status)
	if err != nil {
		return err
	}
	s.metrics.alertsResolved.With(status).Inc()
	if da != nil {
		if status == StatusFalseAlarm {
			s.online.ResolveFalseAlarm(da)
		} else {
			s.online.ResolveConfirmed(da)
		}
	}
	s.maybeRetrain()
	return nil
}

// Alerts lists alerts, optionally filtered by status.
func (s *Service) Alerts(status string) []Alert { return s.alerts.list(status) }

// Drain blocks until every accepted scoring job has completed (test and
// benchmark aid; quiesce ingestion first).
func (s *Service) Drain() { s.engine.Drain() }

// Online exposes the wrapped detection loop (expert tooling, tests).
func (s *Service) Online() *detect.Online { return s.online }

// Metrics exposes the serving instrumentation (scrape it with
// Metrics().Registry.Handler(), already mounted at GET /metrics).
func (s *Service) Metrics() *Metrics { return s.metrics }

// Stats is a point-in-time snapshot of the serving counters. Every
// field reads the same underlying counter the /metrics exposition
// exports, so the two views cannot disagree.
type Stats struct {
	UptimeSeconds     float64 `json:"uptime_seconds"`
	EventsAccepted    int64   `json:"events_accepted"`
	EventsRejected    int64   `json:"events_rejected"`
	OpsScored         int64   `json:"ops_scored"`
	OpsRejected       int64   `json:"ops_rejected"`
	MidSessionFlags   int64   `json:"mid_session_flags"`
	SessionsOpen      int     `json:"sessions_open"`
	SessionsClosed    int64   `json:"sessions_closed"`
	SessionsProcessed int     `json:"sessions_processed"`
	SessionsFlagged   int     `json:"sessions_flagged"`
	AlertsOpen        int     `json:"alerts_open"`
	AlertsRaised      int64   `json:"alerts_raised"`
	AlertsEvicted     int64   `json:"alerts_evicted"`
	VerifiedPool      int     `json:"verified_pool"`
	Retrains          int64   `json:"retrains"`
	QueueDepth        int     `json:"queue_depth"`
	Workers           int     `json:"workers"`
	RecoveredSessions int64   `json:"recovered_sessions"`
	UnknownKeys       int64   `json:"unknown_keys"`
	DuplicateEvents   int64   `json:"duplicate_events"`
}

// Stats snapshots the serving counters.
func (s *Service) Stats() Stats {
	scored, opsRejected := s.engine.Counts()
	_, closed := s.asm.Counts()
	processed, flagged := s.online.Stats()
	return Stats{
		UptimeSeconds:     s.cfg.Clock().Sub(s.start).Seconds(),
		EventsAccepted:    s.accepted.Load(),
		EventsRejected:    s.rejected.Load(),
		OpsScored:         scored,
		OpsRejected:       opsRejected,
		MidSessionFlags:   s.midFlags.Load(),
		SessionsOpen:      s.asm.OpenCount(),
		SessionsClosed:    closed,
		SessionsProcessed: processed,
		SessionsFlagged:   flagged,
		AlertsOpen:        s.alerts.openCount(),
		AlertsRaised:      s.alerts.raisedCount(),
		AlertsEvicted:     s.alerts.evictedCount(),
		VerifiedPool:      s.online.VerifiedCount(),
		Retrains:          s.retrains.Load(),
		QueueDepth:        s.engine.QueueDepth(),
		Workers:           s.cfg.Workers,
		RecoveredSessions: s.recovered.Load(),
		UnknownKeys:       s.unknownKeys.Load(),
		DuplicateEvents:   s.dupEvents.Load(),
	}
}
