package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"

	"github.com/ucad/ucad/internal/wal"
)

// Warm-standby support. A Service built with Config.Replica is a live
// scoring pipeline that never serves: a replication follower
// (internal/replica) feeds it the primary's shipped snapshots and WAL
// records through the Replica* entry points below, so its assemblers
// track the primary with sealed-segment granularity and its model stays
// current via shipped checkpoints. PromoteToServing is the failover
// flip: it opens the standby's own WAL streams on the replicated
// directory, seals the replication stream with a fresh snapshot, and
// starts accepting traffic — the same "newest snapshot + idempotent
// replay" contract a restart relies on, applied across machines.

// Replica-mode errors. ErrNotReplica maps to HTTP 409 in the admin API:
// promoting twice (or promoting a primary) is a refused state change,
// not a retryable fault.
var (
	ErrNotReplica = errors.New("serve: not an unpromoted replica")
)

// IsReplica reports whether the service is a warm standby that has not
// been promoted yet.
func (s *Service) IsReplica() bool { return s.replica.Load() }

// replicaGuard rejects replica-only operations on a non-replica.
func (s *Service) replicaGuard() error {
	if s.stopped.Load() {
		return ErrStopped
	}
	if !s.replica.Load() {
		return ErrNotReplica
	}
	return nil
}

// ReplicaReset drops every open session — the rebuild path after a
// replication gap (the follower fell behind far enough that the primary
// pruned the next segment it needed): the caller re-restores from the
// newest shipped snapshot and replays the remaining segments, exactly
// like a restart recovery. Session-id counters are kept so ids never
// move backwards across the rebuild.
func (s *Service) ReplicaReset() error {
	if err := s.replicaGuard(); err != nil {
		return err
	}
	for _, sh := range s.shards {
		sh.asm.Reset()
	}
	return nil
}

// ReplicaRestoreSnapshot applies one shipped snapshot payload (a shard
// stream's snap-*.snap, or the remap staging file): sessions re-route
// by client hash and re-tokenize against the current model, and the
// session-id floor rises. Idempotent on top of replayed state — restore
// and replay converge regardless of which shipped files arrive first
// within one stream's snapshot+suffix order.
func (s *Service) ReplicaRestoreSnapshot(payload []byte) error {
	if err := s.replicaGuard(); err != nil {
		return err
	}
	return s.restoreSnapshot(payload)
}

// ReplicaApplyRecord replays one shipped WAL record. Application is
// idempotent (Assembler.ReplayAppend), so overlap between a shipped
// snapshot and the sealed segments around it is absorbed, never
// duplicated.
func (s *Service) ReplicaApplyRecord(payload []byte) error {
	if err := s.replicaGuard(); err != nil {
		return err
	}
	var r walRecord
	if err := json.Unmarshal(payload, &r); err != nil {
		return fmt.Errorf("serve: undecodable wal record: %w", err)
	}
	s.replayRecord(r, &RestoreStats{})
	return nil
}

// PromoteToServing flips a warm standby live. Under the all-shard durMu
// barrier it opens one WAL stream per shard on the replicated directory
// (whose manifest must name the same shard count the replica was built
// with), installs the durability config, and clears the replica flag;
// then it seals the replication era with a fresh snapshot of the
// replayed state, so the standby's own WAL anchors on everything it
// absorbed and the shipped history it rode in on becomes prunable.
// Session-id floors were maintained throughout replay, so sessions
// opened after promotion never reuse a pre-failover id.
//
// d may be nil for a non-durable promotion (tests, throwaway standbys).
// The caller starts the idle sweeper afterwards (Service.Start) and
// re-routes traffic; a second promotion fails with ErrNotReplica.
func (s *Service) PromoteToServing(d *DurabilityConfig) error {
	if err := s.replicaGuard(); err != nil {
		return err
	}
	if d == nil {
		s.cfg.Durability = nil
		s.promotions.Add(1)
		s.replica.Store(false)
		return nil
	}
	if err := os.MkdirAll(d.Dir, 0o755); err != nil {
		return err
	}
	n := len(s.shards)
	man, ok, err := wal.LoadManifest(d.Dir)
	if err != nil {
		return err
	}
	if ok && man.Shards != n {
		return fmt.Errorf("serve: promote: replicated layout has %d shards, replica was built with %d", man.Shards, n)
	}
	if !ok {
		if err := wal.SaveManifest(d.Dir, wal.Manifest{Version: wal.ManifestVersion, Shards: n}); err != nil {
			return err
		}
	}
	for _, sh := range s.shards {
		sh.durMu.Lock()
	}
	for i, sh := range s.shards {
		opt := s.walOptions(d)
		opt.SegmentPrefix = wal.ShardSegmentPrefix(i)
		opt.SnapshotPrefix = wal.ShardSnapshotPrefix(i)
		store, oerr := wal.OpenStore(d.Dir, opt)
		if oerr != nil {
			err = oerr
			break
		}
		sh.store = store
	}
	if err != nil {
		for _, sh := range s.shards {
			if sh.store != nil {
				sh.store.Close()
				sh.store = nil
			}
		}
		for i := n - 1; i >= 0; i-- {
			s.shards[i].durMu.Unlock()
		}
		return err
	}
	s.cfg.Durability = d
	s.ckpts = d.Checkpoints
	s.restoreOnce.Store(true) // the replicated state IS the restore
	s.ready.Store(true)
	s.promotions.Add(1)
	// The replica-flag store publishes the config writes above: an
	// Ingest that observes replica==false also observes the durability
	// wiring (see the load in Ingest).
	s.replica.Store(false)
	for i := n - 1; i >= 0; i-- {
		s.shards[i].durMu.Unlock()
	}
	// Seal the replication era: anchor every stream on the state just
	// replayed. New appends land after this snapshot's cut.
	if err := s.SnapshotNow(); err != nil {
		return err
	}
	if d.SnapshotEvery > 0 {
		s.snapStop = make(chan struct{})
		s.snapDone = make(chan struct{})
		go s.snapshotLoop(d.SnapshotEvery)
	}
	return nil
}

// WarmScoreCache pre-populates the model's score cache with the
// similarity rows live traffic will ask for first: every scoring-window
// context of the currently open sessions (the same windows the engine
// scores on the next append). It returns how many rows were actually
// computed — contexts already cached count as hits, so warming after an
// incremental replay round is cheap and self-limiting. limit bounds the
// contexts scored (<= 0 means all). Call it while quiesced (after
// Restore, or on a standby between replay rounds); a nil score cache
// returns 0.
func (s *Service) WarmScoreCache(limit int) int {
	cache := s.online.Detector().Model.ScoreCache()
	if cache == nil {
		return 0
	}
	mb := s.model.Load()
	_, sessions := s.exportAll()
	before := cache.Stats().Misses
	var (
		ctxs [][]int
		keys []int
		dst  []int
	)
	flush := func() {
		if len(ctxs) > 0 {
			dst = s.online.RankBatch(dst[:0], ctxs, keys)
			ctxs, keys = ctxs[:0], keys[:0]
		}
	}
	total := 0
warm:
	for _, ss := range sessions {
		ks := make([]int, len(ss.Ops))
		for i := range ss.Ops {
			ks[i] = ss.Ops[i].Key
		}
		for i := mb.minContext; i < len(ks); i++ {
			if limit > 0 && total >= limit {
				break warm
			}
			lo := i - mb.window
			if lo < 0 {
				lo = 0
			}
			ctxs = append(ctxs, ks[lo:i])
			keys = append(keys, ks[i])
			total++
			if len(ctxs) >= 256 {
				flush()
			}
		}
	}
	flush()
	warmed := int(cache.Stats().Misses - before)
	s.cacheWarmed.Add(int64(warmed))
	return warmed
}

// ExportSessions snapshots every open session across shards, sorted by
// client — the status surface replicas report and the failover tests
// compare. Each shard's view is internally consistent; the merge is not
// an atomic cross-shard cut (quiesce first when exactness matters).
func (s *Service) ExportSessions() []SessionState {
	_, sessions := s.exportAll()
	return sessions
}
