package serve

import (
	"strconv"
	"sync"

	"github.com/ucad/ucad/internal/obs"
	"github.com/ucad/ucad/internal/scorecache"
)

// DefaultTenant is the tenant label under which a single-tenant
// deployment's metrics are exported, and the tenant that events without
// an explicit tenant id route to. Keeping the label present even with
// one tenant means dashboards and alerts written against the labelled
// series survive the move to multi-tenancy unchanged.
const DefaultTenant = "default"

// MetricsHub owns the serving layer's metric families, every one
// partitioned by a "tenant" label, on one shared registry scraped from
// GET /metrics. Each Service binds to one per-tenant view (Metrics), so
// N tenants in one process export N children per family — never N
// copies of the family — and the scrape answers "which tenant is
// slow/anomalous" directly.
//
// Cardinality is bounded by construction: children exist only for
// tenants a Service was bound to (tenant ids are validated, registered
// entities — never request-supplied strings), and RemoveTenant drops a
// decommissioned tenant's children from every family, so tenant churn
// cannot grow the exposition without bound.
//
// It splits along the two obs registration styles: per-stage latency
// histograms and training gauges are owned children updated on the hot
// paths, while the lifetime counters (events, scored ops, sessions,
// alerts, retrains) are func-backed children reading the same atomics
// that Service.Stats snapshots — /stats and /metrics cannot disagree
// because they share one source of truth.
type MetricsHub struct {
	// Registry carries every family; expose it with Registry.Handler().
	Registry *obs.Registry

	mu      sync.Mutex
	tenants map[string]*Metrics

	// Owned families (hot-path instruments).
	ingestSeconds      *obs.HistogramVec
	queueWaitSeconds   *obs.HistogramVec
	scoreSeconds       *obs.HistogramVec
	closeoutSeconds    *obs.HistogramVec
	retrainSeconds     *obs.HistogramVec
	scoreBatchSize     *obs.HistogramVec
	alertsResolved     *obs.CounterVec // labels: tenant, verdict
	trainEpochLoss     *obs.GaugeVec
	trainWindowsPerSec *obs.GaugeVec
	trainEpochs        *obs.CounterVec
	trainEpochSeconds  *obs.HistogramVec
	walAppends         *obs.CounterVec
	walFsyncSeconds    *obs.HistogramVec
	snapshotSeconds    *obs.HistogramVec

	// Per-shard families, labelled {tenant, shard}. Kept out of the
	// single-label cfuncs/gfuncs maps — RemoveTenant walks those with
	// one label value, which would never match a two-label child.
	shardQueueWait  *obs.HistogramVec
	shardQueueDepth *obs.GaugeFuncVec

	// Func-backed families, bound per tenant by Metrics.bind.
	cfuncs map[string]*obs.CounterFuncVec
	gfuncs map[string]*obs.GaugeFuncVec
}

// NewMetricsHub registers the serving layer's tenant-labelled families
// on reg (nil means a fresh private registry). Call Tenant to carve
// per-tenant views; a registry accepts exactly one hub (a second
// registration panics on the duplicate family names).
func NewMetricsHub(reg *obs.Registry) *MetricsHub {
	if reg == nil {
		reg = obs.NewRegistry()
	}
	h := &MetricsHub{
		Registry: reg,
		tenants:  make(map[string]*Metrics),
		cfuncs:   make(map[string]*obs.CounterFuncVec),
		gfuncs:   make(map[string]*obs.GaugeFuncVec),
		ingestSeconds: reg.HistogramVec("ucad_ingest_seconds",
			"Latency of Service.Ingest: tokenize, assemble, enqueue for scoring.", obs.LatencyBuckets, "tenant"),
		queueWaitSeconds: reg.HistogramVec("ucad_queue_wait_seconds",
			"Time a scoring job waited in the queue before a worker picked it up.", obs.LatencyBuckets, "tenant"),
		scoreSeconds: reg.HistogramVec("ucad_score_seconds",
			"Latency of one fused micro-batch scoring pass (stacked model forward).", obs.LatencyBuckets, "tenant"),
		closeoutSeconds: reg.HistogramVec("ucad_closeout_seconds",
			"Latency of full-session close-out detection per closed session.", obs.LatencyBuckets, "tenant"),
		retrainSeconds: reg.HistogramVec("ucad_retrain_seconds",
			"Wall-clock duration of one background fine-tune round.",
			obs.ExponentialBuckets(0.01, 4, 8), "tenant"),
		scoreBatchSize: reg.HistogramVec("ucad_score_batch_size",
			"Jobs fused into one stacked forward pass per scoring-worker drain.",
			obs.ExponentialBuckets(1, 2, 8), "tenant"),
		alertsResolved: reg.CounterVec("ucad_alerts_resolved_total",
			"Expert verdicts applied to final alerts, by outcome.", "tenant", "verdict"),
		trainEpochLoss: reg.GaugeVec("ucad_train_epoch_loss",
			"Mean per-position loss of the most recent fine-tune epoch.", "tenant"),
		trainWindowsPerSec: reg.GaugeVec("ucad_train_windows_per_second",
			"Training throughput of the most recent fine-tune round.", "tenant"),
		trainEpochs: reg.CounterVec("ucad_train_epochs_total",
			"Fine-tune epochs completed since start.", "tenant"),
		trainEpochSeconds: reg.HistogramVec("ucad_train_epoch_seconds",
			"Wall-clock duration per fine-tune epoch.",
			obs.ExponentialBuckets(0.01, 4, 8), "tenant"),
		walAppends: reg.CounterVec("ucad_wal_appends_total",
			"Records appended to the write-ahead log.", "tenant"),
		walFsyncSeconds: reg.HistogramVec("ucad_wal_fsync_seconds",
			"Latency of one WAL fsync (every append under -fsync=always).", obs.LatencyBuckets, "tenant"),
		snapshotSeconds: reg.HistogramVec("ucad_snapshot_seconds",
			"Wall-clock duration of one open-session snapshot (capture, serialize, commit, prune).",
			obs.ExponentialBuckets(0.001, 4, 8), "tenant"),
		shardQueueWait: reg.HistogramVec("ucad_shard_queue_wait_seconds",
			"Time a scoring job waited in its shard's queue before a worker picked it up.",
			obs.LatencyBuckets, "tenant", "shard"),
		shardQueueDepth: reg.GaugeFuncVec("ucad_shard_queue_depth",
			"Scoring jobs queued but not yet picked up, per ingest shard.", "tenant", "shard"),
	}
	cfv := func(name, help string) { h.cfuncs[name] = reg.CounterFuncVec(name, help, "tenant") }
	gfv := func(name, help string) { h.gfuncs[name] = reg.GaugeFuncVec(name, help, "tenant") }
	cfv("ucad_events_accepted_total", "Events absorbed into open sessions.")
	cfv("ucad_events_rejected_total", "Events rejected with backpressure (scoring queue full).")
	cfv("ucad_ops_scored_total", "Operations scored by the worker pool.")
	cfv("ucad_ops_rejected_total", "Scoring jobs refused by a full queue.")
	cfv("ucad_flags_mid_session_total", "Operations flagged while their session was still open.")
	cfv("ucad_flags_late_total", "Flags that arrived after their session was finalized (dropped).")
	cfv("ucad_sessions_opened_total", "Sessions opened by the assembler.")
	cfv("ucad_sessions_closed_total", "Sessions closed by idle timeout or shutdown flush.")
	cfv("ucad_sessions_processed_total", "Closed sessions run through full-session detection.")
	cfv("ucad_sessions_flagged_total", "Closed sessions judged anomalous by close-out detection.")
	cfv("ucad_alerts_raised_total", "Alerts ever created (mid-session or at close-out).")
	cfv("ucad_alerts_evicted_total", "Resolved alerts evicted by the retention bound (max count or TTL).")
	cfv("ucad_retrains_total", "Background fine-tune rounds completed.")
	cfv("ucad_model_swaps_total", "Hot model replacements applied via the admin API.")
	cfv("ucad_checkpoint_errors_total", "Model checkpoints that failed to write or validate (rolled back).")
	cfv("ucad_feed_unknown_keys_total", "Ingested statements whose template is absent from the trained vocabulary (mapped to the reserved UNK key and always flagged).")
	cfv("ucad_feed_duplicate_events_total", "Redelivered events acknowledged without re-scoring (sequence number already covered by the open session).")
	cfv("ucad_score_cache_hits_total", "Similarity-row lookups served from the score cache (forward pass skipped).")
	cfv("ucad_score_cache_misses_total", "Similarity-row lookups that fell through to the scoring kernel.")
	cfv("ucad_score_cache_evictions_total", "Live score-cache entries displaced by LRU capacity pressure.")
	cfv("ucad_score_cache_warmed_total", "Score-cache rows pre-populated from restored sessions (restart warm-up or standby replay).")
	cfv("ucad_promotions_total", "Warm-standby promotions applied (replica flipped to serving).")
	gfv("ucad_sessions_open", "Currently open sessions.")
	gfv("ucad_alerts_open", "Alerts awaiting an expert verdict.")
	gfv("ucad_verified_pool", "Verified-normal sessions awaiting the next fine-tune round.")
	gfv("ucad_queue_depth", "Scoring jobs queued but not yet picked up.")
	gfv("ucad_scoring_workers", "Size of the scoring worker pool.")
	gfv("ucad_ingest_shards", "Number of ingest-plane shards (session partitions).")
	gfv("ucad_train_workers", "Data-parallel training workers used by fine-tune rounds.")
	gfv("ucad_uptime_seconds", "Seconds since the service was constructed.")
	gfv("ucad_wal_recovered_sessions", "Open sessions rebuilt from the WAL/snapshot at the last Restore.")
	gfv("ucad_wal_segment_bytes", "Size of the active WAL segment (rotates at the configured cap).")
	gfv("ucad_score_cache_entries", "Similarity rows currently resident in the score cache.")
	return h
}

// Tenant returns the per-tenant metrics view for id, creating its owned
// children on first use. The view binds to exactly one Service
// (NewService panics via the hub on a second bind, since the
// func-backed children would collide).
func (h *MetricsHub) Tenant(id string) *Metrics {
	h.mu.Lock()
	defer h.mu.Unlock()
	if m, ok := h.tenants[id]; ok {
		return m
	}
	m := &Metrics{
		Registry:           h.Registry,
		hub:                h,
		tenant:             id,
		ingestSeconds:      h.ingestSeconds.With(id),
		queueWaitSeconds:   h.queueWaitSeconds.With(id),
		scoreSeconds:       h.scoreSeconds.With(id),
		closeoutSeconds:    h.closeoutSeconds.With(id),
		retrainSeconds:     h.retrainSeconds.With(id),
		scoreBatchSize:     h.scoreBatchSize.With(id),
		alertsResolved:     tenantCounterVec{cv: h.alertsResolved, tenant: id},
		trainEpochLoss:     h.trainEpochLoss.With(id),
		trainWindowsPerSec: h.trainWindowsPerSec.With(id),
		trainEpochs:        h.trainEpochs.With(id),
		trainEpochSeconds:  h.trainEpochSeconds.With(id),
		walAppends:         h.walAppends.With(id),
		walFsyncSeconds:    h.walFsyncSeconds.With(id),
		snapshotSeconds:    h.snapshotSeconds.With(id),
	}
	h.tenants[id] = m
	return m
}

// RemoveTenant drops every metric child labelled with the tenant id —
// owned and func-backed — releasing the tenant's cardinality. Call it
// only after the tenant's Service has stopped (a stopped Service no
// longer touches its instruments); the id becomes bindable again, so a
// recreated tenant starts from zero.
func (h *MetricsHub) RemoveTenant(id string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if m, ok := h.tenants[id]; ok {
		for i := 0; i < m.shardCount; i++ {
			shard := strconv.Itoa(i)
			h.shardQueueWait.Remove(id, shard)
			h.shardQueueDepth.Remove(id, shard)
		}
	}
	delete(h.tenants, id)
	h.ingestSeconds.Remove(id)
	h.queueWaitSeconds.Remove(id)
	h.scoreSeconds.Remove(id)
	h.closeoutSeconds.Remove(id)
	h.retrainSeconds.Remove(id)
	h.scoreBatchSize.Remove(id)
	h.trainEpochLoss.Remove(id)
	h.trainWindowsPerSec.Remove(id)
	h.trainEpochs.Remove(id)
	h.trainEpochSeconds.Remove(id)
	h.walAppends.Remove(id)
	h.walFsyncSeconds.Remove(id)
	h.snapshotSeconds.Remove(id)
	for _, v := range h.cfuncs {
		v.Remove(id)
	}
	for _, v := range h.gfuncs {
		v.Remove(id)
	}
	for _, verdict := range []string{StatusFalseAlarm, StatusConfirmed} {
		h.alertsResolved.Remove(id, verdict)
	}
}

// tenantCounterVec narrows a (tenant, verdict) counter family to one
// tenant, so hot-path call sites keep the single-label With shape.
type tenantCounterVec struct {
	cv     *obs.CounterVec
	tenant string
}

// With returns the child counter for the verdict under the bound
// tenant.
func (t tenantCounterVec) With(values ...string) *obs.Counter {
	return t.cv.With(append([]string{t.tenant}, values...)...)
}

// Metrics is one tenant's view of the serving instrumentation: the
// owned children of the hub's tenant-labelled families, resolved once
// at wiring time so hot-path observes cost exactly what the unlabelled
// instruments did (a pointer dereference and an atomic add).
type Metrics struct {
	// Registry is the hub's shared registry (scrape it with
	// Registry.Handler(), already mounted at GET /metrics).
	Registry *obs.Registry

	hub    *MetricsHub
	tenant string
	// shardCount records how many {tenant, shard} children bind created,
	// so RemoveTenant can drop exactly those.
	shardCount int

	// Stage-latency histograms (seconds).
	ingestSeconds    *obs.Histogram
	queueWaitSeconds *obs.Histogram
	scoreSeconds     *obs.Histogram
	closeoutSeconds  *obs.Histogram
	retrainSeconds   *obs.Histogram
	// scoreBatchSize distributes jobs drained per worker pass.
	scoreBatchSize *obs.Histogram

	// alertsResolved counts expert verdicts by outcome.
	alertsResolved tenantCounterVec

	// Training instrumentation, fed from detect.Online's hooks.
	trainEpochLoss     *obs.Gauge
	trainWindowsPerSec *obs.Gauge
	trainEpochs        *obs.Counter
	// trainEpochSeconds distributes per-epoch fine-tune wall time — the
	// direct readout of data-parallel training speedup in production.
	trainEpochSeconds *obs.Histogram

	// Durability instrumentation (all zero when Config.Durability is
	// off). walAppends/walFsyncSeconds are fed by internal/wal's hooks;
	// snapshotSeconds times SnapshotNow end to end.
	walAppends      *obs.Counter
	walFsyncSeconds *obs.Histogram
	snapshotSeconds *obs.Histogram
}

// NewMetrics returns the default-tenant view of a fresh hub on reg (nil
// means a private registry) — the single-tenant wiring path, unchanged
// for existing callers. Multi-tenant deployments construct one
// MetricsHub and call Tenant per tenant instead.
func NewMetrics(reg *obs.Registry) *Metrics {
	return NewMetricsHub(reg).Tenant(DefaultTenant)
}

// Hub returns the hub this view belongs to.
func (m *Metrics) Hub() *MetricsHub { return m.hub }

// TenantID returns the tenant label this view exports under.
func (m *Metrics) TenantID() string { return m.tenant }

// bind attaches the func-backed children that read the service's live
// counters at scrape time — the single-source-of-truth bridge between
// /stats and /metrics, one labelled child per (family, tenant).
func (m *Metrics) bind(s *Service) {
	h, id := m.hub, m.tenant
	cf := func(name string, fn func() int64) { h.cfuncs[name].Bind(fn, id) }
	gf := func(name string, fn func() float64) { h.gfuncs[name].Bind(fn, id) }
	cf("ucad_events_accepted_total", s.accepted.Load)
	cf("ucad_events_rejected_total", s.rejected.Load)
	cf("ucad_ops_scored_total",
		func() int64 { scored, _ := s.engine.Counts(); return scored })
	cf("ucad_ops_rejected_total",
		func() int64 { _, rejected := s.engine.Counts(); return rejected })
	cf("ucad_flags_mid_session_total", s.midFlags.Load)
	cf("ucad_flags_late_total", s.lateFlags.Load)
	cf("ucad_sessions_opened_total",
		func() int64 { opened, _ := s.asmCounts(); return opened })
	cf("ucad_sessions_closed_total",
		func() int64 { _, closed := s.asmCounts(); return closed })
	cf("ucad_sessions_processed_total",
		func() int64 { processed, _ := s.online.Stats(); return int64(processed) })
	cf("ucad_sessions_flagged_total",
		func() int64 { _, flagged := s.online.Stats(); return int64(flagged) })
	cf("ucad_alerts_raised_total", s.alerts.raisedCount)
	cf("ucad_alerts_evicted_total", s.alerts.evictedCount)
	cf("ucad_retrains_total", s.retrains.Load)
	cf("ucad_model_swaps_total", s.modelSwaps.Load)
	cf("ucad_checkpoint_errors_total", s.ckptErrors.Load)
	cf("ucad_feed_unknown_keys_total", s.unknownKeys.Load)
	cf("ucad_feed_duplicate_events_total", s.dupEvents.Load)
	// Score-cache families read through the online loop, which owns the
	// cache hand-off across hot swaps (counters stay monotonic: SwapModel
	// carries the cache object onto the replacement model).
	cacheStats := func() scorecache.Stats {
		if c := s.online.Detector().Model.ScoreCache(); c != nil {
			return c.Stats()
		}
		return scorecache.Stats{}
	}
	cf("ucad_score_cache_hits_total",
		func() int64 { return int64(cacheStats().Hits) })
	cf("ucad_score_cache_misses_total",
		func() int64 { return int64(cacheStats().Misses) })
	cf("ucad_score_cache_evictions_total",
		func() int64 { return int64(cacheStats().Evictions) })
	cf("ucad_score_cache_warmed_total", s.cacheWarmed.Load)
	cf("ucad_promotions_total", s.promotions.Load)
	gf("ucad_sessions_open", func() float64 { return float64(s.openCount()) })
	gf("ucad_alerts_open", func() float64 { return float64(s.alerts.openCount()) })
	gf("ucad_verified_pool",
		func() float64 { return float64(s.online.VerifiedCount()) })
	gf("ucad_queue_depth",
		func() float64 { return float64(s.engine.QueueDepth()) })
	gf("ucad_scoring_workers", func() float64 { return float64(s.cfg.Workers) })
	gf("ucad_ingest_shards", func() float64 { return float64(len(s.shards)) })
	gf("ucad_train_workers",
		func() float64 { return float64(s.model.Load().ucad.Model.Config().EffectiveTrainWorkers()) })
	gf("ucad_uptime_seconds",
		func() float64 { return s.cfg.Clock().Sub(s.start).Seconds() })
	gf("ucad_wal_recovered_sessions",
		func() float64 { return float64(s.recovered.Load()) })
	gf("ucad_score_cache_entries",
		func() float64 { return float64(cacheStats().Entries) })
	gf("ucad_wal_segment_bytes",
		func() float64 {
			if !s.ready.Load() {
				return 0
			}
			var n int64
			for _, sh := range s.shards {
				n += sh.store.SegmentBytes()
			}
			return float64(n)
		})
	// Per-shard children, labelled {tenant, shard}.
	m.shardCount = len(s.shards)
	waits := make([]*obs.Histogram, len(s.shards))
	for i := range s.shards {
		i := i
		shard := strconv.Itoa(i)
		waits[i] = h.shardQueueWait.With(id, shard)
		h.shardQueueDepth.Bind(
			func() float64 { return float64(s.engine.ShardQueueDepth(i)) }, id, shard)
	}
	s.engine.instrumentShards(waits)
}
