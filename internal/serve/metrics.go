package serve

import (
	"github.com/ucad/ucad/internal/obs"
)

// Metrics is the serving layer's instrumentation, scraped from
// GET /metrics in Prometheus text format.
//
// It splits along the two obs registration styles: per-stage latency
// histograms and training gauges are owned instruments updated on the
// hot paths, while the lifetime counters (events, scored ops, sessions,
// alerts, retrains) are func-backed reads of the same atomics that
// Service.Stats snapshots — /stats and /metrics cannot disagree because
// they share one source of truth.
//
// A Metrics binds to exactly one Service (NewService panics via the
// registry on a second bind, since the func-backed names would
// collide).
type Metrics struct {
	// Registry carries every family; expose it with Registry.Handler().
	Registry *obs.Registry

	// Stage-latency histograms (seconds).
	ingestSeconds    *obs.Histogram
	queueWaitSeconds *obs.Histogram
	scoreSeconds     *obs.Histogram
	closeoutSeconds  *obs.Histogram
	retrainSeconds   *obs.Histogram
	// scoreBatchSize distributes jobs drained per worker pass.
	scoreBatchSize *obs.Histogram

	// alertsResolved counts expert verdicts by outcome.
	alertsResolved *obs.CounterVec

	// Training instrumentation, fed from detect.Online's hooks.
	trainEpochLoss     *obs.Gauge
	trainWindowsPerSec *obs.Gauge
	trainEpochs        *obs.Counter
	// trainEpochSeconds distributes per-epoch fine-tune wall time — the
	// direct readout of data-parallel training speedup in production.
	trainEpochSeconds *obs.Histogram

	// Durability instrumentation (all zero when Config.Durability is
	// off). walAppends/walFsyncSeconds are fed by internal/wal's hooks;
	// snapshotSeconds times SnapshotNow end to end.
	walAppends      *obs.Counter
	walFsyncSeconds *obs.Histogram
	snapshotSeconds *obs.Histogram
}

// NewMetrics registers the serving layer's owned instruments on reg
// (nil means a fresh private registry). The func-backed families that
// mirror a Service's live counters are added when the Metrics is handed
// to NewService.
func NewMetrics(reg *obs.Registry) *Metrics {
	if reg == nil {
		reg = obs.NewRegistry()
	}
	return &Metrics{
		Registry: reg,
		ingestSeconds: reg.Histogram("ucad_ingest_seconds",
			"Latency of Service.Ingest: tokenize, assemble, enqueue for scoring.", obs.LatencyBuckets),
		queueWaitSeconds: reg.Histogram("ucad_queue_wait_seconds",
			"Time a scoring job waited in the queue before a worker picked it up.", obs.LatencyBuckets),
		scoreSeconds: reg.Histogram("ucad_score_seconds",
			"Latency of one fused micro-batch scoring pass (stacked model forward).", obs.LatencyBuckets),
		closeoutSeconds: reg.Histogram("ucad_closeout_seconds",
			"Latency of full-session close-out detection per closed session.", obs.LatencyBuckets),
		retrainSeconds: reg.Histogram("ucad_retrain_seconds",
			"Wall-clock duration of one background fine-tune round.",
			obs.ExponentialBuckets(0.01, 4, 8)),
		scoreBatchSize: reg.Histogram("ucad_score_batch_size",
			"Jobs fused into one stacked forward pass per scoring-worker drain.",
			obs.ExponentialBuckets(1, 2, 8)),
		alertsResolved: reg.CounterVec("ucad_alerts_resolved_total",
			"Expert verdicts applied to final alerts, by outcome.", "verdict"),
		trainEpochLoss: reg.Gauge("ucad_train_epoch_loss",
			"Mean per-position loss of the most recent fine-tune epoch."),
		trainWindowsPerSec: reg.Gauge("ucad_train_windows_per_second",
			"Training throughput of the most recent fine-tune round."),
		trainEpochs: reg.Counter("ucad_train_epochs_total",
			"Fine-tune epochs completed since start."),
		trainEpochSeconds: reg.Histogram("ucad_train_epoch_seconds",
			"Wall-clock duration per fine-tune epoch.",
			obs.ExponentialBuckets(0.01, 4, 8)),
		walAppends: reg.Counter("ucad_wal_appends_total",
			"Records appended to the write-ahead log."),
		walFsyncSeconds: reg.Histogram("ucad_wal_fsync_seconds",
			"Latency of one WAL fsync (every append under -fsync=always).", obs.LatencyBuckets),
		snapshotSeconds: reg.Histogram("ucad_snapshot_seconds",
			"Wall-clock duration of one open-session snapshot (capture, serialize, commit, prune).",
			obs.ExponentialBuckets(0.001, 4, 8)),
	}
}

// bind registers the func-backed families that read the service's live
// counters at scrape time — the single-source-of-truth bridge between
// /stats and /metrics.
func (m *Metrics) bind(s *Service) {
	reg := m.Registry
	reg.CounterFunc("ucad_events_accepted_total",
		"Events absorbed into open sessions.", s.accepted.Load)
	reg.CounterFunc("ucad_events_rejected_total",
		"Events rejected with backpressure (scoring queue full).", s.rejected.Load)
	reg.CounterFunc("ucad_ops_scored_total",
		"Operations scored by the worker pool.",
		func() int64 { scored, _ := s.engine.Counts(); return scored })
	reg.CounterFunc("ucad_ops_rejected_total",
		"Scoring jobs refused by a full queue.",
		func() int64 { _, rejected := s.engine.Counts(); return rejected })
	reg.CounterFunc("ucad_flags_mid_session_total",
		"Operations flagged while their session was still open.", s.midFlags.Load)
	reg.CounterFunc("ucad_flags_late_total",
		"Flags that arrived after their session was finalized (dropped).", s.lateFlags.Load)
	reg.CounterFunc("ucad_sessions_opened_total",
		"Sessions opened by the assembler.",
		func() int64 { opened, _ := s.asm.Counts(); return opened })
	reg.CounterFunc("ucad_sessions_closed_total",
		"Sessions closed by idle timeout or shutdown flush.",
		func() int64 { _, closed := s.asm.Counts(); return closed })
	reg.CounterFunc("ucad_sessions_processed_total",
		"Closed sessions run through full-session detection.",
		func() int64 { processed, _ := s.online.Stats(); return int64(processed) })
	reg.CounterFunc("ucad_sessions_flagged_total",
		"Closed sessions judged anomalous by close-out detection.",
		func() int64 { _, flagged := s.online.Stats(); return int64(flagged) })
	reg.CounterFunc("ucad_alerts_raised_total",
		"Alerts ever created (mid-session or at close-out).",
		s.alerts.raisedCount)
	reg.CounterFunc("ucad_alerts_evicted_total",
		"Resolved alerts evicted by the retention bound (max count or TTL).",
		s.alerts.evictedCount)
	reg.CounterFunc("ucad_retrains_total",
		"Background fine-tune rounds completed.", s.retrains.Load)
	reg.GaugeFunc("ucad_sessions_open",
		"Currently open sessions.", func() float64 { return float64(s.asm.OpenCount()) })
	reg.GaugeFunc("ucad_alerts_open",
		"Alerts awaiting an expert verdict.", func() float64 { return float64(s.alerts.openCount()) })
	reg.GaugeFunc("ucad_verified_pool",
		"Verified-normal sessions awaiting the next fine-tune round.",
		func() float64 { return float64(s.online.VerifiedCount()) })
	reg.GaugeFunc("ucad_queue_depth",
		"Scoring jobs queued but not yet picked up.",
		func() float64 { return float64(s.engine.QueueDepth()) })
	reg.GaugeFunc("ucad_scoring_workers",
		"Size of the scoring worker pool.", func() float64 { return float64(s.cfg.Workers) })
	reg.GaugeFunc("ucad_train_workers",
		"Data-parallel training workers used by fine-tune rounds.",
		func() float64 { return float64(s.ucad.Model.Config().EffectiveTrainWorkers()) })
	reg.GaugeFunc("ucad_uptime_seconds",
		"Seconds since the service was constructed.",
		func() float64 { return s.cfg.Clock().Sub(s.start).Seconds() })
	reg.GaugeFunc("ucad_wal_recovered_sessions",
		"Open sessions rebuilt from the WAL/snapshot at the last Restore.",
		func() float64 { return float64(s.recovered.Load()) })
	reg.GaugeFunc("ucad_wal_segment_bytes",
		"Size of the active WAL segment (rotates at the configured cap).",
		func() float64 {
			if st := s.store.Load(); st != nil {
				return float64(st.SegmentBytes())
			}
			return 0
		})
	reg.CounterFunc("ucad_checkpoint_errors_total",
		"Model checkpoints that failed to write or validate (rolled back).",
		s.ckptErrors.Load)
}
