package serve

// Tests for the streaming front-door boundary: sequence-number
// deduplication (exactly-once sessions over an at-least-once feeder)
// and the UNK path for out-of-vocabulary templates.

import (
	"path/filepath"
	"testing"
	"time"

	"github.com/ucad/ucad/internal/session"
)

func TestAssemblerSeqDedupe(t *testing.T) {
	clk := newFakeClock()
	a := NewAssembler(10*time.Minute, clk.Now)

	ev := func(seq int64, sql string) Event {
		return Event{ClientID: "c", User: "u", SQL: sql, Seq: seq}
	}
	ap1 := a.Append(ev(1, "s1"), 1, 4)
	if ap1.Dup || ap1.Pos != 0 {
		t.Fatalf("first append: %+v", ap1)
	}
	ap2 := a.Append(ev(2, "s2"), 2, 4)
	if ap2.Dup || ap2.Pos != 1 {
		t.Fatalf("second append: %+v", ap2)
	}

	// Redelivery of both positions: acknowledged as duplicates, state
	// untouched.
	for seq := int64(1); seq <= 2; seq++ {
		ap := a.Append(ev(seq, "s-replayed"), 9, 4)
		if !ap.Dup {
			t.Fatalf("seq %d not deduplicated: %+v", seq, ap)
		}
		if ap.SessionID != ap1.SessionID {
			t.Fatalf("dup names session %q, want %q", ap.SessionID, ap1.SessionID)
		}
	}
	ap3 := a.Append(ev(3, "s3"), 3, 4)
	if ap3.Dup || ap3.Pos != 2 {
		t.Fatalf("post-replay append: %+v", ap3)
	}
	if got := a.OpenCount(); got != 1 {
		t.Fatalf("open sessions = %d, want 1", got)
	}

	// Seq zero means "no sequence": appends are never deduplicated.
	ap := a.Append(Event{ClientID: "c", User: "u", SQL: "s4"}, 4, 4)
	if ap.Dup || ap.Pos != 3 {
		t.Fatalf("unsequenced append: %+v", ap)
	}

	// A duplicate refreshes the idle clock — the client is alive.
	clk.Advance(9 * time.Minute)
	a.Append(ev(1, "s1"), 1, 4)
	clk.Advance(2 * time.Minute)
	if closed := a.CloseIdle(); len(closed) != 0 {
		t.Fatalf("session idled out despite dup refresh: %d closed", len(closed))
	}
}

// TestAssemblerEpochFencedDedupe pins the epoch fence: a feeder
// sessionizing by event time restarts Seq at 1 under a new epoch when
// the log has an idle gap, and the wall-clock assembler — whose session
// for that client may still be open — must treat those events as fresh
// traffic, not redeliveries, while still deduplicating true replays of
// either epoch.
func TestAssemblerEpochFencedDedupe(t *testing.T) {
	clk := newFakeClock()
	a := NewAssembler(10*time.Minute, clk.Now)
	ev := func(epoch, seq int64) Event {
		return Event{ClientID: "c", User: "u", SQL: "s", Seq: seq, Epoch: epoch}
	}

	for seq := int64(1); seq <= 3; seq++ {
		if ap := a.Append(ev(1, seq), int(seq), 8); ap.Dup {
			t.Fatalf("epoch 1 seq %d wrongly deduplicated", seq)
		}
	}
	if ap := a.Append(ev(1, 2), 9, 8); !ap.Dup {
		t.Fatalf("epoch 1 seq 2 replay not deduplicated: %+v", ap)
	}

	// The feeder's post-gap session: a higher epoch with Seq back at 1
	// is new traffic even though the open session already holds 3 ops.
	ap := a.Append(ev(2, 1), 4, 8)
	if ap.Dup || ap.Pos != 3 {
		t.Fatalf("epoch 2 seq 1 swallowed as duplicate: %+v", ap)
	}
	if ap := a.Append(ev(2, 2), 5, 8); ap.Dup || ap.Pos != 4 {
		t.Fatalf("epoch 2 seq 2: %+v", ap)
	}

	// Replays of either epoch are still duplicates.
	if ap := a.Append(ev(1, 3), 9, 8); !ap.Dup {
		t.Fatalf("older-epoch replay not deduplicated: %+v", ap)
	}
	if ap := a.Append(ev(2, 1), 9, 8); !ap.Dup {
		t.Fatalf("current-epoch replay not deduplicated: %+v", ap)
	}
	if got := a.OpenCount(); got != 1 {
		t.Fatalf("open sessions = %d, want 1", got)
	}

	// An epoch-less sequenced event cannot be compared against the
	// epoch mark; it appends (a rare duplicate beats dropped live data).
	if ap := a.Append(Event{ClientID: "c", User: "u", SQL: "s", Seq: 1}, 6, 8); ap.Dup {
		t.Fatalf("epoch-less event wrongly deduplicated: %+v", ap)
	}

	// The high-water mark survives Export/Restore (snapshot recovery).
	seqFloor, states := a.Export()
	b := NewAssembler(10*time.Minute, clk.Now)
	keys := make([]int, len(states[0].Ops))
	for i := range keys {
		keys[i] = i + 1
	}
	b.Restore(states[0], keys)
	b.SetSeqFloor(seqFloor)
	if ap := b.Append(ev(2, 2), 9, 8); !ap.Dup {
		t.Fatalf("restored assembler lost the epoch mark: %+v", ap)
	}
	if ap := b.Append(ev(3, 1), 7, 8); ap.Dup {
		t.Fatalf("restored assembler swallowed a new epoch: %+v", ap)
	}

	// ...and survives WAL replay (crash recovery).
	c := NewAssembler(10*time.Minute, clk.Now)
	if !c.ReplayAppend("c", "c#1", 0, session.Operation{User: "u", SQL: "s"}, 1, 2, 5) {
		t.Fatal("replay append refused")
	}
	if ap := c.Append(ev(2, 5), 9, 8); !ap.Dup {
		t.Fatalf("replayed assembler lost the epoch mark: %+v", ap)
	}
	if ap := c.Append(ev(2, 6), 2, 8); ap.Dup {
		t.Fatalf("replayed assembler swallowed fresh traffic: %+v", ap)
	}
}

func TestIngestSeqDedupeExactlyOnce(t *testing.T) {
	u := testUCAD(t)
	s := NewService(u, Config{Workers: 1, QueueSize: 64, SweepEvery: -1})
	defer s.Stop()

	deliver := func() {
		for i := 0; i < 6; i++ {
			ev := Event{ClientID: "conn-1", User: "app", SQL: normalStatement(i), Seq: int64(i + 1)}
			if err := s.Ingest(ev); err != nil {
				t.Fatal(err)
			}
		}
	}
	deliver()
	deliver() // full replay, as after a feeder crash before its offset commit
	s.Drain()

	st := s.Stats()
	if st.EventsAccepted != 6 {
		t.Fatalf("accepted = %d, want 6 (replay must not re-append)", st.EventsAccepted)
	}
	if st.DuplicateEvents != 6 {
		t.Fatalf("duplicates = %d, want 6", st.DuplicateEvents)
	}
	if st.SessionsOpen != 1 {
		t.Fatalf("open sessions = %d, want 1", st.SessionsOpen)
	}
	// The replay must not have scored anything twice: 6 ops, MinContext
	// 2 → positions 2..5 scored exactly once each.
	if st.OpsScored != 4 {
		t.Fatalf("ops scored = %d, want 4", st.OpsScored)
	}
}

func TestIngestDurableSeqDedupeSkipsWAL(t *testing.T) {
	u := testUCAD(t)
	dir := t.TempDir()
	s := NewService(u, Config{
		Workers: 1, QueueSize: 64, SweepEvery: -1,
		Durability: &DurabilityConfig{Dir: filepath.Join(dir, "wal")},
	})
	if _, err := s.Restore(); err != nil {
		t.Fatal(err)
	}
	defer s.Stop()

	for i := 0; i < 4; i++ {
		ev := Event{ClientID: "conn-1", User: "app", SQL: normalStatement(i), Seq: int64(i + 1)}
		if err := s.Ingest(ev); err != nil {
			t.Fatal(err)
		}
	}
	walBefore := s.metrics.walAppends.Value()
	for i := 0; i < 4; i++ {
		ev := Event{ClientID: "conn-1", User: "app", SQL: normalStatement(i), Seq: int64(i + 1)}
		if err := s.Ingest(ev); err != nil {
			t.Fatal(err)
		}
	}
	if got := s.metrics.walAppends.Value(); got != walBefore {
		t.Fatalf("wal appends grew %v -> %v on pure redelivery", walBefore, got)
	}
	if st := s.Stats(); st.DuplicateEvents != 4 {
		t.Fatalf("duplicates = %d, want 4", st.DuplicateEvents)
	}
}

func TestIngestUnknownKeyCountedAndFlagged(t *testing.T) {
	u := testUCAD(t)
	s := NewService(u, Config{Workers: 1, QueueSize: 64, SweepEvery: -1})
	defer s.Stop()

	for i := 0; i < 4; i++ {
		if err := s.Ingest(Event{ClientID: "c", User: "app", SQL: normalStatement(i)}); err != nil {
			t.Fatal(err)
		}
	}
	// Out-of-vocabulary statement: absorbed (no error), counted, and —
	// because UNK never ranks in the top-p — flagged mid-session.
	if err := s.Ingest(Event{ClientID: "c", User: "app", SQL: anomalySQL}); err != nil {
		t.Fatalf("OOV statement must be accepted, got %v", err)
	}
	s.Drain()

	st := s.Stats()
	if st.UnknownKeys != 1 {
		t.Fatalf("unknown keys = %d, want 1", st.UnknownKeys)
	}
	if st.EventsAccepted != 5 {
		t.Fatalf("accepted = %d, want 5", st.EventsAccepted)
	}
	if st.MidSessionFlags == 0 {
		t.Fatal("OOV operation was not flagged")
	}
}
