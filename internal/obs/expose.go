package obs

import (
	"bufio"
	"io"
	"math"
	"net/http"
	"strconv"
	"strings"
)

// ContentType is the Prometheus text exposition format media type.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// WriteText renders every registered family in Prometheus text
// exposition format 0.0.4, families sorted by name and children by
// label values, so the output is deterministic for a given state.
func (r *Registry) WriteText(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, e := range r.snapshot() {
		if e.help != "" {
			bw.WriteString("# HELP ")
			bw.WriteString(e.name)
			bw.WriteByte(' ')
			bw.WriteString(escapeHelp(e.help))
			bw.WriteByte('\n')
		}
		bw.WriteString("# TYPE ")
		bw.WriteString(e.name)
		bw.WriteByte(' ')
		bw.WriteString(e.typ)
		bw.WriteByte('\n')
		e.m.writeTo(bw, e.name)
	}
	return bw.Flush()
}

// Handler serves the registry as a scrape endpoint (GET /metrics).
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", ContentType)
		r.WriteText(w)
	})
}

func escapeHelp(s string) string {
	if !strings.ContainsAny(s, "\\\n") {
		return s
	}
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	return r.Replace(s)
}

// formatFloat renders a sample value: shortest round-trip decimal, with
// the exposition spellings for infinities and NaN.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
