// Package obs is the operational observability substrate for the
// serving and training stack: a concurrent metric registry with
// Counter, Gauge and fixed-bucket Histogram types, label support, and a
// Prometheus text-exposition writer.
//
// It is deliberately hand-rolled rather than a client_golang dependency
// (see DESIGN.md): the repo is dependency-free by constraint, the hot
// paths need nothing beyond a handful of atomics, and the stable subset
// of the exposition format we emit (text format 0.0.4: HELP/TYPE
// headers, counter/gauge samples, histogram _bucket/_sum/_count series)
// fits in one small file that any Prometheus-compatible scraper
// ingests.
//
// Two registration styles cover the two kinds of instrumentation:
//
//   - Owned instruments (Counter, Gauge, Histogram and their *Vec
//     label variants) are incremented by the instrumented code itself —
//     use these for new measurements such as latency histograms.
//   - Func-backed metrics (CounterFunc, GaugeFunc) read an existing
//     value at scrape time — use these to export counters a subsystem
//     already maintains, so the scrape and the subsystem's own stats
//     report one source of truth.
//
// All instrument operations (Inc, Add, Set, Observe, With) are safe for
// concurrent use and allocation-free on the hot path; registration is
// expected at wiring time and panics on misuse (duplicate or invalid
// names), mirroring the fail-fast convention of metric libraries.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// metric is one registered family: it renders its samples (all children
// for vec types) in exposition order.
type metric interface {
	writeTo(w io.Writer, name string)
}

// entry pairs a family's metadata with its samples.
type entry struct {
	name, help, typ string
	m               metric
}

// Registry holds an independent set of metric families. The zero value
// is not usable; call NewRegistry.
type Registry struct {
	mu     sync.Mutex
	byName map[string]*entry
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*entry)}
}

// register adds a family, panicking on duplicate or invalid names —
// registration is wiring-time code where a silent collision would
// corrupt the scrape.
func (r *Registry) register(name, help, typ string, m metric) {
	if !validName(name) {
		panic("obs: invalid metric name " + name)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.byName[name]; ok {
		panic("obs: duplicate metric name " + name)
	}
	r.byName[name] = &entry{name: name, help: help, typ: typ, m: m}
}

// snapshot returns the registered families sorted by name (stable
// exposition order).
func (r *Registry) snapshot() []*entry {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*entry, 0, len(r.byName))
	for _, e := range r.byName {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// validName checks the Prometheus metric/label name charset
// [a-zA-Z_:][a-zA-Z0-9_:]*.
func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// Counter is a monotonically increasing integer metric.
type Counter struct {
	v atomic.Int64
}

// Counter registers and returns a new counter.
func (r *Registry) Counter(name, help string) *Counter {
	c := &Counter{}
	r.register(name, help, "counter", c)
	return c
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n; counters only go up, so negative deltas panic.
func (c *Counter) Add(n int64) {
	if n < 0 {
		panic("obs: counter decrement")
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

func (c *Counter) writeTo(w io.Writer, name string) {
	fmt.Fprintf(w, "%s %d\n", name, c.v.Load())
}

// counterFunc exports an externally maintained monotonic value, read at
// scrape time.
type counterFunc func() int64

func (f counterFunc) writeTo(w io.Writer, name string) {
	fmt.Fprintf(w, "%s %d\n", name, f())
}

// CounterFunc registers a counter whose value is read from fn at scrape
// time — the bridge for counters a subsystem already maintains.
func (r *Registry) CounterFunc(name, help string, fn func() int64) {
	r.register(name, help, "counter", counterFunc(fn))
}

// Gauge is a float metric that can go up and down.
type Gauge struct {
	bits atomic.Uint64
}

// Gauge registers and returns a new gauge (initially 0).
func (r *Registry) Gauge(name, help string) *Gauge {
	g := &Gauge{}
	r.register(name, help, "gauge", g)
	return g
}

// Set replaces the value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adjusts the value by d.
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Inc adds one.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

func (g *Gauge) writeTo(w io.Writer, name string) {
	fmt.Fprintf(w, "%s %s\n", name, formatFloat(g.Value()))
}

// gaugeFunc exports an externally maintained instantaneous value.
type gaugeFunc func() float64

func (f gaugeFunc) writeTo(w io.Writer, name string) {
	fmt.Fprintf(w, "%s %s\n", name, formatFloat(f()))
}

// GaugeFunc registers a gauge whose value is read from fn at scrape
// time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.register(name, help, "gauge", gaugeFunc(fn))
}

// vec is the shared child table behind the labelled metric variants:
// label values map to lazily created children, keyed by their rendered
// label string (which doubles as the exposition prefix).
type vec struct {
	labels []string
	mu     sync.RWMutex
	kids   map[string]any
}

func newVec(labels []string) *vec {
	for _, l := range labels {
		if !validName(l) {
			panic("obs: invalid label name " + l)
		}
	}
	return &vec{labels: labels, kids: make(map[string]any)}
}

// child returns the child for the label values, creating it with mk on
// first use. The common case (child exists) takes only the read lock.
func (v *vec) child(values []string, mk func() any) any {
	if len(values) != len(v.labels) {
		panic(fmt.Sprintf("obs: got %d label values, want %d", len(values), len(v.labels)))
	}
	key := renderLabels(v.labels, values)
	v.mu.RLock()
	c, ok := v.kids[key]
	v.mu.RUnlock()
	if ok {
		return c
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if c, ok := v.kids[key]; ok {
		return c
	}
	c = mk()
	v.kids[key] = c
	return c
}

// bind installs c as the child for the label values, panicking if the
// tuple already has one (func-backed children are exclusive bindings,
// unlike the lazily created owned instruments).
func (v *vec) bind(values []string, c any) {
	if len(values) != len(v.labels) {
		panic(fmt.Sprintf("obs: got %d label values, want %d", len(values), len(v.labels)))
	}
	key := renderLabels(v.labels, values)
	v.mu.Lock()
	defer v.mu.Unlock()
	if _, ok := v.kids[key]; ok {
		panic("obs: duplicate binding for {" + key + "}")
	}
	v.kids[key] = c
}

// Remove drops the child for the label values from every vec type
// (no-op when absent) — the cardinality release valve: when the entity
// a label value names is decommissioned, its series leave the
// exposition instead of lingering forever.
func (v *vec) Remove(values ...string) {
	if len(values) != len(v.labels) {
		panic(fmt.Sprintf("obs: got %d label values, want %d", len(values), len(v.labels)))
	}
	key := renderLabels(v.labels, values)
	v.mu.Lock()
	defer v.mu.Unlock()
	delete(v.kids, key)
}

// sortedKeys returns the child keys in exposition order.
func (v *vec) sortedKeys() []string {
	v.mu.RLock()
	defer v.mu.RUnlock()
	keys := make([]string, 0, len(v.kids))
	for k := range v.kids {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// renderLabels formats `l1="v1",l2="v2"` with exposition escaping.
func renderLabels(labels, values []string) string {
	var b strings.Builder
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(values[i]))
		b.WriteByte('"')
	}
	return b.String()
}

func escapeLabelValue(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(s)
}

// CounterVec is a counter family partitioned by label values.
type CounterVec struct {
	*vec
}

// CounterVec registers a labelled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	cv := &CounterVec{vec: newVec(labels)}
	r.register(name, help, "counter", cv)
	return cv
}

// With returns the child counter for the label values, creating it on
// first use.
func (cv *CounterVec) With(values ...string) *Counter {
	return cv.child(values, func() any { return &Counter{} }).(*Counter)
}

func (cv *CounterVec) writeTo(w io.Writer, name string) {
	for _, key := range cv.sortedKeys() {
		cv.mu.RLock()
		c := cv.kids[key].(*Counter)
		cv.mu.RUnlock()
		fmt.Fprintf(w, "%s{%s} %d\n", name, key, c.Value())
	}
}

// GaugeVec is a gauge family partitioned by label values.
type GaugeVec struct {
	*vec
}

// GaugeVec registers a labelled gauge family.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	gv := &GaugeVec{vec: newVec(labels)}
	r.register(name, help, "gauge", gv)
	return gv
}

// With returns the child gauge for the label values, creating it on
// first use.
func (gv *GaugeVec) With(values ...string) *Gauge {
	return gv.child(values, func() any { return &Gauge{} }).(*Gauge)
}

func (gv *GaugeVec) writeTo(w io.Writer, name string) {
	for _, key := range gv.sortedKeys() {
		gv.mu.RLock()
		g := gv.kids[key].(*Gauge)
		gv.mu.RUnlock()
		fmt.Fprintf(w, "%s{%s} %s\n", name, key, formatFloat(g.Value()))
	}
}
