package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterAndGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "a counter")
	c.Inc()
	c.Add(41)
	if c.Value() != 42 {
		t.Fatalf("counter = %d, want 42", c.Value())
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("negative counter Add must panic")
			}
		}()
		c.Add(-1)
	}()

	g := r.Gauge("g", "a gauge")
	g.Set(2.5)
	g.Add(1)
	g.Dec()
	if g.Value() != 2.5 {
		t.Fatalf("gauge = %v, want 2.5", g.Value())
	}
}

func TestRegistryRejectsDuplicatesAndBadNames(t *testing.T) {
	r := NewRegistry()
	r.Counter("ok_total", "")
	for _, fn := range []func(){
		func() { r.Gauge("ok_total", "") },        // duplicate, different type
		func() { r.Counter("1bad", "") },          // leading digit
		func() { r.Counter("bad-name", "") },      // dash
		func() { r.CounterVec("v_total", "", "bad label") }, // invalid label
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("registration must panic")
				}
			}()
			fn()
		}()
	}
}

func TestVecChildIdentity(t *testing.T) {
	r := NewRegistry()
	cv := r.CounterVec("req_total", "", "code", "method")
	a := cv.With("200", "GET")
	b := cv.With("200", "GET")
	if a != b {
		t.Fatal("same label values must return the same child")
	}
	if cv.With("500", "GET") == a {
		t.Fatal("different label values must return distinct children")
	}
	a.Add(3)
	if b.Value() != 3 {
		t.Fatal("shared child state lost")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("label arity mismatch must panic")
			}
		}()
		cv.With("200")
	}()
}

func TestHistogramBucketAssignment(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", "", []float64{1, 2, 5})
	for _, v := range []float64{0.5, 1, 1.5, 2, 3, 5, 7, 100} {
		h.Observe(v)
	}
	s := h.Snapshot()
	// le semantics are inclusive: 0.5 and 1 land in le="1"; 1.5 and 2 in
	// le="2"; 3 and 5 in le="5"; 7 and 100 overflow to +Inf.
	want := []uint64{2, 2, 2, 2}
	for i, w := range want {
		if s.Counts[i] != w {
			t.Fatalf("bucket %d = %d, want %d (all: %v)", i, s.Counts[i], w, s.Counts)
		}
	}
	if s.Count != 8 {
		t.Fatalf("count = %d, want 8", s.Count)
	}
	if math.Abs(s.Sum-120) > 1e-9 {
		t.Fatalf("sum = %v, want 120", s.Sum)
	}
}

func TestHistogramQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("q", "", LinearBuckets(10, 10, 10)) // 10,20,...,100
	// 1000 observations uniform over (0, 100]: quantiles interpolate to
	// q*100 exactly.
	for i := 1; i <= 1000; i++ {
		h.Observe(float64(i) / 10)
	}
	for _, tc := range []struct{ q, want float64 }{
		{0.5, 50}, {0.9, 90}, {0.99, 99}, {1, 100},
	} {
		got := h.Quantile(tc.q)
		if math.Abs(got-tc.want) > 0.2 {
			t.Fatalf("Quantile(%v) = %v, want ~%v", tc.q, got, tc.want)
		}
	}
	// Overflow observations clamp to the highest finite bound.
	h2 := r.Histogram("q2", "", []float64{1, 2})
	h2.Observe(50)
	if got := h2.Quantile(0.5); got != 2 {
		t.Fatalf("overflow quantile = %v, want 2 (clamped)", got)
	}
	h3 := r.Histogram("q3", "", []float64{1})
	if !math.IsNaN(h3.Quantile(0.5)) {
		t.Fatal("empty histogram quantile must be NaN")
	}
	if !math.IsNaN(h3.Quantile(1.5)) {
		t.Fatal("out-of-range q must be NaN")
	}
}

func TestConcurrentInstruments(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "")
	g := r.Gauge("g", "")
	h := r.Histogram("h", "", []float64{0.5, 1})
	cv := r.CounterVec("cv_total", "", "worker")

	const goroutines, perG = 8, 2000
	var wg sync.WaitGroup
	for w := 0; w < goroutines; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			lbl := string(rune('a' + w%2))
			for i := 0; i < perG; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i%2) + 0.25) // alternates buckets
				cv.With(lbl).Inc()
				if i%64 == 0 { // scrape concurrently with writes
					var sb strings.Builder
					r.WriteText(&sb)
				}
			}
		}(w)
	}
	wg.Wait()

	total := int64(goroutines * perG)
	if c.Value() != total {
		t.Fatalf("counter = %d, want %d", c.Value(), total)
	}
	if g.Value() != float64(total) {
		t.Fatalf("gauge = %v, want %d", g.Value(), total)
	}
	if h.Count() != uint64(total) {
		t.Fatalf("histogram count = %d, want %d", h.Count(), total)
	}
	s := h.Snapshot()
	// Observations alternate 0.25 (le="0.5" bucket) and 1.25 (+Inf
	// overflow bucket).
	if s.Counts[0] != uint64(total)/2 || s.Counts[2] != uint64(total)/2 {
		t.Fatalf("bucket split %v, want even halves in buckets 0 and +Inf", s.Counts)
	}
	if cv.With("a").Value()+cv.With("b").Value() != total {
		t.Fatal("vec children lost increments")
	}
}

func TestTimerObservesSeconds(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("t", "", []float64{0.001, 1})
	tm := StartTimer(h)
	time.Sleep(time.Millisecond)
	d := tm.Stop()
	if d < time.Millisecond {
		t.Fatalf("elapsed %v, want >= 1ms", d)
	}
	if h.Count() != 1 || h.Sum() < 0.001 {
		t.Fatalf("timer did not observe: count=%d sum=%v", h.Count(), h.Sum())
	}
	// nil-observer timers are pure stopwatches.
	if StartTimer(nil).Stop() < 0 {
		t.Fatal("stopwatch went backwards")
	}

	g := r.Gauge("last", "")
	GaugeObserver{G: g}.Observe(3.5)
	if g.Value() != 3.5 {
		t.Fatalf("gauge observer = %v", g.Value())
	}
}

func TestCounterAndGaugeFuncs(t *testing.T) {
	r := NewRegistry()
	n := int64(7)
	r.CounterFunc("ext_total", "", func() int64 { return n })
	r.GaugeFunc("ext", "", func() float64 { return float64(n) * 0.5 })
	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"ext_total 7\n", "ext 3.5\n"} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	n = 9 // funcs re-read at scrape time
	sb.Reset()
	r.WriteText(&sb)
	if !strings.Contains(sb.String(), "ext_total 9\n") {
		t.Fatal("CounterFunc not re-read at scrape time")
	}
}

func TestBucketHelpers(t *testing.T) {
	lin := LinearBuckets(1, 2, 3)
	if lin[0] != 1 || lin[1] != 3 || lin[2] != 5 {
		t.Fatalf("LinearBuckets = %v", lin)
	}
	exp := ExponentialBuckets(0.5, 4, 3)
	if exp[0] != 0.5 || exp[1] != 2 || exp[2] != 8 {
		t.Fatalf("ExponentialBuckets = %v", exp)
	}
	// Trailing +Inf is accepted and made implicit.
	h := newHistogram([]float64{1, math.Inf(1)})
	h.Observe(2)
	if got := h.Snapshot(); len(got.Buckets) != 1 || got.Counts[1] != 1 {
		t.Fatalf("explicit +Inf bucket mishandled: %+v", got)
	}
}

func TestFuncVecsBindAndRemove(t *testing.T) {
	r := NewRegistry()
	cv := r.CounterFuncVec("mt_events_total", "per-tenant events", "tenant")
	gv := r.GaugeFuncVec("mt_sessions_open", "per-tenant open sessions", "tenant")
	var a, b int64 = 3, 5
	cv.Bind(func() int64 { return a }, "t1")
	cv.Bind(func() int64 { return b }, "t2")
	gv.Bind(func() float64 { return float64(a) }, "t1")

	var sb strings.Builder
	r.WriteText(&sb)
	out := sb.String()
	for _, want := range []string{
		`mt_events_total{tenant="t1"} 3`,
		`mt_events_total{tenant="t2"} 5`,
		`mt_sessions_open{tenant="t1"} 3`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}

	// Children re-read at scrape time.
	a = 11
	sb.Reset()
	r.WriteText(&sb)
	if !strings.Contains(sb.String(), `mt_events_total{tenant="t1"} 11`) {
		t.Fatal("func child not re-read at scrape time")
	}

	// Double-binding a tuple is a wiring bug.
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("duplicate Bind did not panic")
			}
		}()
		cv.Bind(func() int64 { return 0 }, "t1")
	}()

	// Remove drops the series; the tuple becomes bindable again.
	cv.Remove("t1")
	gv.Remove("t1")
	sb.Reset()
	r.WriteText(&sb)
	if strings.Contains(sb.String(), `tenant="t1"`) {
		t.Fatalf("removed children still exposed:\n%s", sb.String())
	}
	if !strings.Contains(sb.String(), `mt_events_total{tenant="t2"} 5`) {
		t.Fatal("Remove disturbed a sibling child")
	}
	cv.Bind(func() int64 { return 1 }, "t1")
}

func TestOwnedVecRemove(t *testing.T) {
	r := NewRegistry()
	cv := r.CounterVec("owned_total", "", "tenant")
	hv := r.HistogramVec("owned_seconds", "", []float64{1}, "tenant")
	cv.With("t1").Inc()
	cv.With("t2").Add(2)
	hv.With("t1").Observe(0.5)
	cv.Remove("t1")
	hv.Remove("t1")
	var sb strings.Builder
	r.WriteText(&sb)
	out := sb.String()
	if strings.Contains(out, `tenant="t1"`) {
		t.Fatalf("removed owned children still exposed:\n%s", out)
	}
	if !strings.Contains(out, `owned_total{tenant="t2"} 2`) {
		t.Fatal("sibling child lost")
	}
	// A fresh With after Remove starts a new child from zero.
	if got := cv.With("t1").Value(); got != 0 {
		t.Fatalf("recreated child = %d, want 0", got)
	}
}
