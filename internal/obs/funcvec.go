package obs

import (
	"fmt"
	"io"
)

// Func-backed vec families: the labelled counterpart of CounterFunc and
// GaugeFunc. The family is registered once at wiring time; each child
// is a read-at-scrape-time callback bound to one label-value tuple.
// This is the multi-tenant bridge: a subsystem instantiated once per
// tenant exports its live counters under a shared family, one child per
// tenant, without per-tenant metric names.
//
// Cardinality is whatever the caller binds — the registry never invents
// children — so a bounded tenant set keeps the exposition bounded, and
// Remove drops a decommissioned tenant's series entirely.

// CounterFuncVec is a counter family whose children are int64 callbacks
// partitioned by label values.
type CounterFuncVec struct {
	*vec
}

// CounterFuncVec registers a labelled func-backed counter family.
func (r *Registry) CounterFuncVec(name, help string, labels ...string) *CounterFuncVec {
	v := &CounterFuncVec{vec: newVec(labels)}
	r.register(name, help, "counter", v)
	return v
}

// Bind attaches fn as the child for the label values, panicking if the
// tuple is already bound — a rebind would silently shadow another
// subsystem's series, the same failure registration-time panics guard
// against for family names.
func (cv *CounterFuncVec) Bind(fn func() int64, values ...string) {
	cv.bind(values, counterFunc(fn))
}

func (cv *CounterFuncVec) writeTo(w io.Writer, name string) {
	for _, key := range cv.sortedKeys() {
		cv.mu.RLock()
		f := cv.kids[key].(counterFunc)
		cv.mu.RUnlock()
		fmt.Fprintf(w, "%s{%s} %d\n", name, key, f())
	}
}

// GaugeFuncVec is a gauge family whose children are float64 callbacks
// partitioned by label values.
type GaugeFuncVec struct {
	*vec
}

// GaugeFuncVec registers a labelled func-backed gauge family.
func (r *Registry) GaugeFuncVec(name, help string, labels ...string) *GaugeFuncVec {
	v := &GaugeFuncVec{vec: newVec(labels)}
	r.register(name, help, "gauge", v)
	return v
}

// Bind attaches fn as the child for the label values, panicking on a
// duplicate tuple (see CounterFuncVec.Bind).
func (gv *GaugeFuncVec) Bind(fn func() float64, values ...string) {
	gv.bind(values, gaugeFunc(fn))
}

func (gv *GaugeFuncVec) writeTo(w io.Writer, name string) {
	for _, key := range gv.sortedKeys() {
		gv.mu.RLock()
		f := gv.kids[key].(gaugeFunc)
		gv.mu.RUnlock()
		fmt.Fprintf(w, "%s{%s} %s\n", name, key, formatFloat(f()))
	}
}
