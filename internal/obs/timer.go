package obs

import "time"

// Observer receives one measured value; *Histogram implements it, and a
// Gauge can be adapted with GaugeObserver.
type Observer interface {
	Observe(float64)
}

// Timer measures one duration and reports it, in seconds, to an
// Observer — the per-stage latency helper:
//
//	t := obs.StartTimer(m.ingestSeconds)
//	defer t.Stop()
type Timer struct {
	o     Observer
	start time.Time
}

// StartTimer starts timing against o (nil o makes Stop a pure
// stopwatch).
func StartTimer(o Observer) Timer {
	return Timer{o: o, start: time.Now()}
}

// Stop observes the elapsed time in seconds and returns it.
func (t Timer) Stop() time.Duration {
	d := time.Since(t.start)
	if t.o != nil {
		t.o.Observe(d.Seconds())
	}
	return d
}

// GaugeObserver adapts a Gauge to the Observer interface (each
// observation overwrites the value — "most recent measurement" gauges
// such as last epoch loss).
type GaugeObserver struct{ G *Gauge }

// Observe sets the wrapped gauge.
func (o GaugeObserver) Observe(v float64) { o.G.Set(v) }
