package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"sync/atomic"
)

// DefBuckets are general-purpose latency buckets in seconds (5ms–10s),
// matching the conventional Prometheus defaults.
var DefBuckets = []float64{.005, .01, .025, .05, .1, .25, .5, 1, 2.5, 5, 10}

// LatencyBuckets resolve sub-millisecond stage latencies (10µs–2.5s) —
// the scoring hot path sits well under DefBuckets' first bound.
var LatencyBuckets = []float64{
	10e-6, 25e-6, 50e-6, 100e-6, 250e-6, 500e-6,
	1e-3, 2.5e-3, 5e-3, 10e-3, 25e-3, 50e-3, 100e-3, 250e-3, 500e-3, 1, 2.5,
}

// LinearBuckets returns count buckets starting at start, each width
// apart.
func LinearBuckets(start, width float64, count int) []float64 {
	if count < 1 {
		panic("obs: LinearBuckets needs count >= 1")
	}
	out := make([]float64, count)
	for i := range out {
		out[i] = start + float64(i)*width
	}
	return out
}

// ExponentialBuckets returns count buckets starting at start (> 0),
// each factor (> 1) times the previous.
func ExponentialBuckets(start, factor float64, count int) []float64 {
	if count < 1 || start <= 0 || factor <= 1 {
		panic("obs: ExponentialBuckets needs count >= 1, start > 0, factor > 1")
	}
	out := make([]float64, count)
	for i := range out {
		out[i] = start
		start *= factor
	}
	return out
}

// Histogram counts observations into fixed buckets. Observations are
// lock-free (one atomic add into the matching bucket plus sum/count
// updates); a concurrent scrape may see a bucket increment slightly
// before the matching sum update, which is the standard exposition
// tolerance.
type Histogram struct {
	// upper holds the sorted finite bucket upper bounds; counts has one
	// extra slot for the +Inf overflow bucket.
	upper  []float64
	counts []atomic.Uint64
	sum    Gauge
	count  atomic.Uint64
}

func newHistogram(buckets []float64) *Histogram {
	if len(buckets) == 0 {
		panic("obs: histogram needs at least one bucket")
	}
	upper := append([]float64(nil), buckets...)
	for i := 1; i < len(upper); i++ {
		if upper[i] <= upper[i-1] {
			panic("obs: histogram buckets must be strictly increasing")
		}
	}
	if math.IsInf(upper[len(upper)-1], 1) {
		upper = upper[:len(upper)-1] // +Inf is implicit
	}
	return &Histogram{upper: upper, counts: make([]atomic.Uint64, len(upper)+1)}
}

// Histogram registers and returns a histogram with the given bucket
// upper bounds (strictly increasing; a trailing +Inf is implicit).
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	h := newHistogram(buckets)
	r.register(name, help, "histogram", h)
	return h
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.upper, v) // first bucket with v <= upper bound
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return h.sum.Value() }

// HistogramSnapshot is a point-in-time copy of a histogram's state.
type HistogramSnapshot struct {
	// Buckets holds the finite upper bounds; Counts the per-bucket
	// (non-cumulative) observation counts, with one extra trailing slot
	// for the +Inf overflow bucket.
	Buckets []float64
	Counts  []uint64
	Count   uint64
	Sum     float64
}

// Snapshot copies the current bucket counts.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Buckets: append([]float64(nil), h.upper...),
		Counts:  make([]uint64, len(h.counts)),
		Count:   h.count.Load(),
		Sum:     h.sum.Value(),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) by linear interpolation
// within the bucket containing the target rank — the same estimate
// PromQL's histogram_quantile computes server-side. Observations in the
// +Inf overflow bucket clamp to the highest finite bound. Returns NaN
// for an empty histogram or q outside [0, 1].
func (h *Histogram) Quantile(q float64) float64 {
	total := float64(h.count.Load())
	if total == 0 || q < 0 || q > 1 || math.IsNaN(q) {
		return math.NaN()
	}
	rank := q * total
	var cum float64
	for i := range h.counts {
		n := float64(h.counts[i].Load())
		cum += n
		if cum < rank {
			continue
		}
		if i == len(h.upper) { // +Inf bucket
			return h.upper[len(h.upper)-1]
		}
		lower := 0.0
		if i > 0 {
			lower = h.upper[i-1]
		}
		frac := 1.0
		if n > 0 {
			frac = (rank - (cum - n)) / n
		}
		return lower + (h.upper[i]-lower)*frac
	}
	return h.upper[len(h.upper)-1]
}

func (h *Histogram) writeTo(w io.Writer, name string) {
	h.writeLabelled(w, name, "")
}

// writeLabelled emits the _bucket/_sum/_count series, merging le into
// an optional rendered label prefix (HistogramVec children).
func (h *Histogram) writeLabelled(w io.Writer, name, labels string) {
	sep := ""
	if labels != "" {
		sep = ","
	}
	var cum uint64
	for i, ub := range h.upper {
		cum += h.counts[i].Load()
		fmt.Fprintf(w, "%s_bucket{%s%sle=%q} %d\n", name, labels, sep, formatFloat(ub), cum)
	}
	cum += h.counts[len(h.upper)].Load()
	fmt.Fprintf(w, "%s_bucket{%s%sle=\"+Inf\"} %d\n", name, labels, sep, cum)
	if labels == "" {
		fmt.Fprintf(w, "%s_sum %s\n", name, formatFloat(h.sum.Value()))
		fmt.Fprintf(w, "%s_count %d\n", name, h.count.Load())
	} else {
		fmt.Fprintf(w, "%s_sum{%s} %s\n", name, labels, formatFloat(h.sum.Value()))
		fmt.Fprintf(w, "%s_count{%s} %d\n", name, labels, h.count.Load())
	}
}

// HistogramVec is a histogram family partitioned by label values; all
// children share one bucket layout.
type HistogramVec struct {
	*vec
	buckets []float64
}

// HistogramVec registers a labelled histogram family.
func (r *Registry) HistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	newHistogram(buckets) // validate the layout once, up front
	hv := &HistogramVec{vec: newVec(labels), buckets: buckets}
	r.register(name, help, "histogram", hv)
	return hv
}

// With returns the child histogram for the label values, creating it on
// first use.
func (hv *HistogramVec) With(values ...string) *Histogram {
	return hv.child(values, func() any { return newHistogram(hv.buckets) }).(*Histogram)
}

func (hv *HistogramVec) writeTo(w io.Writer, name string) {
	for _, key := range hv.sortedKeys() {
		hv.mu.RLock()
		h := hv.kids[key].(*Histogram)
		hv.mu.RUnlock()
		h.writeLabelled(w, name, key)
	}
}
