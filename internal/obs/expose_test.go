package obs

import (
	"flag"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// goldenRegistry builds a registry covering every family type, label
// escaping, and float formatting corner the writer emits.
func goldenRegistry() *Registry {
	r := NewRegistry()

	c := r.Counter("app_requests_total", "Total requests handled.")
	c.Add(1234)

	cv := r.CounterVec("app_errors_total", "Errors by class.", "class")
	cv.With("timeout").Add(3)
	cv.With(`quote"back\slash`).Inc() // label-value escaping
	cv.With("multi\nline").Inc()

	g := r.Gauge("app_temperature_celsius", "Current temperature.")
	g.Set(36.6)

	gv := r.GaugeVec("app_pool_size", "Pool sizes.", "pool", "shard")
	gv.With("scoring", "0").Set(4)
	gv.With("scoring", "1").Set(8)

	r.CounterFunc("app_derived_total", "Externally maintained counter.", func() int64 { return 77 })
	r.GaugeFunc("app_uptime_seconds", "Seconds since start.", func() float64 { return 12.5 })

	h := r.Histogram("app_latency_seconds", "Latency with a backslash \\ and\nnewline in help.", []float64{0.025, 0.1, 0.5})
	for _, v := range []float64{0.01, 0.02, 0.09, 0.3, 2} {
		h.Observe(v)
	}

	hv := r.HistogramVec("app_stage_seconds", "Per-stage latency.", []float64{0.1, 1}, "stage")
	hv.With("ingest").Observe(0.05)
	hv.With("score").Observe(0.5)
	hv.With("score").Observe(3)

	r.Counter("app_unhelped_total", "") // no HELP line
	return r
}

func TestExpositionGolden(t *testing.T) {
	var sb strings.Builder
	if err := goldenRegistry().WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	got := sb.String()

	path := filepath.Join("testdata", "exposition.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got != string(want) {
		t.Fatalf("exposition drifted from golden file (run `go test ./internal/obs -update` after intentional changes)\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

func TestExpositionDeterministic(t *testing.T) {
	var a, b strings.Builder
	r := goldenRegistry()
	r.WriteText(&a)
	r.WriteText(&b)
	if a.String() != b.String() {
		t.Fatal("two scrapes of the same state differ")
	}
}

func TestHandlerContentType(t *testing.T) {
	srv := httptest.NewServer(goldenRegistry().Handler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != ContentType {
		t.Fatalf("Content-Type = %q, want %q", ct, ContentType)
	}
}
