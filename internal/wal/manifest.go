package wal

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
)

// Layout manifest (schema v2). A WAL directory holding sharded streams
// carries a MANIFEST.json naming the layout so recovery opens exactly
// the streams the writer used:
//
//	{"version":2,"shards":4}            — steady state, 4 streams
//	{"version":2,"shards":8,"remap":true,"from":4}
//	                                    — a 4→8 resize is in flight
//
// A directory with no manifest is either empty (fresh: the opener
// writes a v2 manifest for its configured shard count) or a v1
// single-stream layout from before sharding (unprefixed wal-*.log /
// snap-*.snap files): v1 is read once through the default prefixes and
// migrated to v2 via the same remap path a resize uses.
//
// The remap protocol is crash-safe by staging, not by in-place
// rewrite: the merged state of the old layout is first written to
// RemapFile (CRC-framed, fsynced), then the manifest flips to
// remap:true — the commit point — then every old stream file is
// deleted and the new streams are seeded. A crash before the flip
// recovers the old layout untouched; a crash after it resumes from the
// staging file, whose bytes no further step mutates.

// ManifestName is the layout manifest's filename within a WAL dir.
const ManifestName = "MANIFEST.json"

// RemapFile is the staged merged-state file of an in-flight shard
// remap (see the protocol above). CRC-framed via WriteStateFile.
const RemapFile = "remap.snap"

// ManifestVersion is the current layout schema version.
const ManifestVersion = 2

// Manifest names a WAL directory's stream layout.
type Manifest struct {
	Version int `json:"version"`
	// Shards is the number of streams (and, under remap, the migration
	// target).
	Shards int `json:"shards"`
	// Remap marks an in-flight shard-count migration: the old layout's
	// merged state is durably staged in RemapFile and the stream files
	// are being replaced. Recovery resumes from the staging file.
	Remap bool `json:"remap,omitempty"`
	// From is the shard count the migration started from (0 for a v1
	// single-stream upgrade; informational).
	From int `json:"from,omitempty"`
}

// ShardSegmentPrefix names shard i's segment files
// wal-shard-<i>-<seq>.log.
func ShardSegmentPrefix(shard int) string { return fmt.Sprintf("wal-shard-%02d-", shard) }

// ShardSnapshotPrefix names shard i's snapshot files
// snap-shard-<i>-<seq>.snap.
func ShardSnapshotPrefix(shard int) string { return fmt.Sprintf("snap-shard-%02d-", shard) }

// LoadManifest reads dir's layout manifest; ok=false means none exists
// (fresh or v1 directory).
func LoadManifest(dir string) (Manifest, bool, error) {
	var m Manifest
	b, err := os.ReadFile(filepath.Join(dir, ManifestName))
	if errors.Is(err, fs.ErrNotExist) {
		return m, false, nil
	}
	if err != nil {
		return m, false, err
	}
	if err := json.Unmarshal(b, &m); err != nil {
		return m, false, fmt.Errorf("wal: corrupt %s: %w", ManifestName, err)
	}
	if m.Version > ManifestVersion {
		return m, false, fmt.Errorf("wal: %s version %d is newer than this binary understands (%d)",
			ManifestName, m.Version, ManifestVersion)
	}
	if m.Shards < 1 {
		return m, false, fmt.Errorf("wal: %s names %d shards", ManifestName, m.Shards)
	}
	return m, true, nil
}

// SaveManifest atomically replaces dir's layout manifest (durable once
// it returns — WriteAtomic fsyncs the file and the directory).
func SaveManifest(dir string, m Manifest) error {
	b, err := json.Marshal(m)
	if err != nil {
		return err
	}
	return WriteAtomic(filepath.Join(dir, ManifestName), func(w io.Writer) error {
		_, werr := w.Write(append(b, '\n'))
		return werr
	})
}

// HasLegacyStream reports whether dir holds a v1 single-stream layout:
// default-prefixed segment or snapshot files with no manifest. (The
// default prefixes never match shard streams — "wal-shard-…" fails the
// numeric seq parse.)
func HasLegacyStream(dir string) (bool, error) {
	ents, err := os.ReadDir(dir)
	if errors.Is(err, fs.ErrNotExist) {
		return false, nil
	}
	if err != nil {
		return false, err
	}
	for _, e := range ents {
		if e.IsDir() {
			continue
		}
		if _, ok := parseSegmentSeq(e.Name(), defaultSegmentPrefix); ok {
			return true, nil
		}
		if _, ok := parseSnapshotSeq(e.Name(), defaultSnapshotPrefix); ok {
			return true, nil
		}
	}
	return false, nil
}

// RemoveAllStreams deletes every stream file in dir — any wal-*.log
// segment and snap-*.snap snapshot regardless of prefix — leaving the
// manifest and the remap staging file alone. The destructive step of
// the remap protocol, run only after the staged state is durable and
// the manifest has flipped.
func RemoveAllStreams(dir string) error {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return err
	}
	for _, e := range ents {
		if e.IsDir() {
			continue
		}
		name := e.Name()
		isSeg := len(name) > len(".log") && name[len(name)-len(".log"):] == ".log" &&
			len(name) >= len(defaultSegmentPrefix) && name[:len(defaultSegmentPrefix)] == defaultSegmentPrefix
		isSnap := len(name) > len(".snap") && name[len(name)-len(".snap"):] == ".snap" &&
			len(name) >= len(defaultSnapshotPrefix) && name[:len(defaultSnapshotPrefix)] == defaultSnapshotPrefix
		if !isSeg && !isSnap {
			continue
		}
		if err := os.Remove(filepath.Join(dir, name)); err != nil {
			return err
		}
	}
	return syncDir(dir)
}

// WriteStateFile atomically writes one CRC-framed state payload (the
// remap staging format; same framing as a snapshot file).
func WriteStateFile(path string, payload []byte) error {
	framed := appendRecord(make([]byte, 0, recordHeaderSize+len(payload)), payload)
	return WriteAtomic(path, func(w io.Writer) error {
		_, err := w.Write(framed)
		return err
	})
}

// ReadStateFile loads and checksum-validates a WriteStateFile payload.
func ReadStateFile(path string) ([]byte, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	payload, n, err := decodeRecord(b)
	if err != nil || n != len(b) {
		return nil, ErrTornRecord
	}
	return payload, nil
}
