package wal

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
)

// Checkpoints manages versioned model checkpoints in one directory:
// every Save writes ckpt-<n>.model through WriteAtomic and then flips a
// MANIFEST (also written atomically) whose last history entry is the
// current checkpoint. Because both writes are atomic, a crash at any
// point leaves the manifest pointing at a complete, previously verified
// file. Rollback drops the current checkpoint and re-points at the one
// before it — the escape hatch when a freshly written checkpoint fails
// validation (core.Load rejecting it).
type Checkpoints struct {
	dir    string
	retain int

	mu sync.Mutex
	m  manifest
}

// manifestName is the checkpoint directory's index file.
const manifestName = "MANIFEST"

type manifest struct {
	Version int `json:"version"`
	// History holds checkpoint filenames oldest-first; the last entry is
	// the current checkpoint.
	History []string `json:"history"`
}

// OpenCheckpoints opens (creating if needed) a checkpoint directory.
// retain bounds how many checkpoints are kept (minimum 2, so a rollback
// target always exists; 0 means the default of 2).
func OpenCheckpoints(dir string, retain int) (*Checkpoints, error) {
	if retain < 2 {
		retain = 2
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	c := &Checkpoints{dir: dir, retain: retain}
	b, err := os.ReadFile(filepath.Join(dir, manifestName))
	switch {
	case os.IsNotExist(err):
		return c, nil
	case err != nil:
		return nil, err
	}
	if err := json.Unmarshal(b, &c.m); err != nil {
		return nil, fmt.Errorf("wal: corrupt checkpoint manifest: %w", err)
	}
	return c, nil
}

// Current returns the absolute path of the current checkpoint, or ""
// when none exists.
func (c *Checkpoints) Current() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	if n := len(c.m.History); n > 0 {
		return filepath.Join(c.dir, c.m.History[n-1])
	}
	return ""
}

// Count reports how many checkpoints the manifest tracks.
func (c *Checkpoints) Count() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m.History)
}

func checkpointSeq(name string) uint64 {
	name = strings.TrimSuffix(strings.TrimPrefix(name, "ckpt-"), ".model")
	seq, _ := strconv.ParseUint(name, 10, 64)
	return seq
}

// Save writes a new checkpoint via the write callback and promotes it
// to current, pruning history beyond the retain bound. On error nothing
// is promoted and the previous current stays in effect.
func (c *Checkpoints) Save(write func(io.Writer) error) (string, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	var seq uint64
	for _, name := range c.m.History {
		if s := checkpointSeq(name); s > seq {
			seq = s
		}
	}
	name := fmt.Sprintf("ckpt-%08d.model", seq+1)
	path := filepath.Join(c.dir, name)
	if err := WriteAtomic(path, write); err != nil {
		return "", err
	}
	next := append(append([]string(nil), c.m.History...), name)
	var evict []string
	if len(next) > c.retain {
		evict = next[:len(next)-c.retain]
		next = next[len(next)-c.retain:]
	}
	if err := c.writeManifest(manifest{Version: 1, History: next}); err != nil {
		os.Remove(path)
		return "", err
	}
	c.m = manifest{Version: 1, History: next}
	for _, old := range evict {
		os.Remove(filepath.Join(c.dir, old))
	}
	return path, nil
}

// Rollback drops the current checkpoint (deleting its file) and returns
// the path of the newly current one, or "" when the history is empty —
// the caller then falls back to its original model file.
func (c *Checkpoints) Rollback() (string, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := len(c.m.History)
	if n == 0 {
		return "", nil
	}
	bad := c.m.History[n-1]
	next := append([]string(nil), c.m.History[:n-1]...)
	if err := c.writeManifest(manifest{Version: 1, History: next}); err != nil {
		return "", err
	}
	c.m = manifest{Version: 1, History: next}
	os.Remove(filepath.Join(c.dir, bad))
	if len(next) == 0 {
		return "", nil
	}
	return filepath.Join(c.dir, next[len(next)-1]), nil
}

func (c *Checkpoints) writeManifest(m manifest) error {
	return WriteAtomic(filepath.Join(c.dir, manifestName), func(w io.Writer) error {
		return json.NewEncoder(w).Encode(m)
	})
}
