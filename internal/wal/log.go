package wal

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Log is an append-only segmented write-ahead log. Segments are files
// named <prefix><seq>.log (Options.SegmentPrefix, default "wal-") with
// monotonically increasing sequence numbers;
// appends go to the highest segment and rotate to a fresh one past
// Options.SegmentBytes. Open truncates a torn tail left by a crash, so
// an opened log always ends on a record boundary. Log is safe for
// concurrent use.
type Log struct {
	dir string
	opt Options

	mu      sync.Mutex
	f       *os.File
	seq     uint64
	size    int64
	dirty   bool
	closed  bool
	scratch []byte

	// tornAtOpen records whether Open found and truncated a torn tail —
	// the evidence of a crash mid-append that recovery reports.
	tornAtOpen bool

	stopSync chan struct{}
	syncDone chan struct{}
}

// ErrClosed reports an operation on a closed log.
var ErrClosed = errors.New("wal: log closed")

func segmentName(prefix string, seq uint64) string { return fmt.Sprintf("%s%016d.log", prefix, seq) }

// parseSeq extracts the sequence number from a <prefix><seq><suffix>
// filename, reporting ok=false for files that do not match. A numeric
// parse failure rejects the file, so the default "wal-" prefix never
// claims a shard stream's "wal-shard-NN-…" segments.
func parseSeq(name, prefix, suffix string) (uint64, bool) {
	if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) ||
		len(name) <= len(prefix)+len(suffix) {
		return 0, false
	}
	seq, err := strconv.ParseUint(name[len(prefix):len(name)-len(suffix)], 10, 64)
	return seq, err == nil && seq > 0
}

// parseSegmentSeq extracts the sequence number from a segment filename,
// reporting ok=false for files that are not this stream's segments.
func parseSegmentSeq(name, prefix string) (uint64, bool) {
	return parseSeq(name, prefix, ".log")
}

// listSegments returns the directory's segment sequence numbers for one
// stream prefix in ascending order.
func listSegments(dir, prefix string) ([]uint64, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var seqs []uint64
	for _, e := range ents {
		if seq, ok := parseSegmentSeq(e.Name(), prefix); ok && !e.IsDir() {
			seqs = append(seqs, seq)
		}
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	return seqs, nil
}

// scanValidPrefix reads a segment and returns the byte offset where its
// valid record prefix ends (the start of the first torn record, or the
// file size when every record checks out).
func scanValidPrefix(path string) (int64, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return 0, err
	}
	off := 0
	for off < len(b) {
		_, n, err := decodeRecord(b[off:])
		if err != nil {
			break
		}
		off += n
	}
	return int64(off), nil
}

// Open opens (creating if needed) the log in dir. If the highest
// segment ends in a torn record — the signature of a crash mid-append —
// the tail is truncated back to the last whole record; earlier segments
// are never touched (they were sealed with a final fsync).
func Open(dir string, opt Options) (*Log, error) {
	opt = opt.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	seqs, err := listSegments(dir, opt.SegmentPrefix)
	if err != nil {
		return nil, err
	}
	l := &Log{dir: dir, opt: opt}
	if len(seqs) == 0 {
		if err := l.openSegment(1); err != nil {
			return nil, err
		}
	} else {
		seq := seqs[len(seqs)-1]
		path := filepath.Join(dir, segmentName(opt.SegmentPrefix, seq))
		valid, err := scanValidPrefix(path)
		if err != nil {
			return nil, err
		}
		if fi, err := os.Stat(path); err == nil && fi.Size() > valid {
			l.tornAtOpen = true
		}
		f, err := os.OpenFile(path, os.O_WRONLY, 0o644)
		if err != nil {
			return nil, err
		}
		if err := f.Truncate(valid); err != nil {
			f.Close()
			return nil, err
		}
		if _, err := f.Seek(valid, 0); err != nil {
			f.Close()
			return nil, err
		}
		l.f, l.seq, l.size = f, seq, valid
	}
	if opt.Sync == SyncInterval {
		l.stopSync = make(chan struct{})
		l.syncDone = make(chan struct{})
		go l.syncLoop()
	}
	return l, nil
}

// openSegment creates and switches to segment seq (caller holds mu or
// is constructing the log).
func (l *Log) openSegment(seq uint64) error {
	f, err := os.OpenFile(filepath.Join(l.dir, segmentName(l.opt.SegmentPrefix, seq)), os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return err
	}
	// Make the new segment's directory entry durable before anything is
	// appended to it, so recovery after a crash sees the same segment
	// chain the writer did.
	if l.opt.Sync != SyncNever {
		if err := syncDir(l.dir); err != nil {
			f.Close()
			return err
		}
	}
	l.f, l.seq, l.size, l.dirty = f, seq, 0, false
	return nil
}

func (l *Log) syncLoop() {
	defer close(l.syncDone)
	t := time.NewTicker(l.opt.SyncInterval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			l.mu.Lock()
			if !l.closed && l.dirty {
				l.syncLocked()
			}
			l.mu.Unlock()
		case <-l.stopSync:
			return
		}
	}
}

// Append frames payload and appends it to the active segment, fsyncing
// per the sync policy and rotating past the segment cap. The payload is
// durable per Options.Sync once Append returns nil.
func (l *Log) Append(payload []byte) error {
	if len(payload) > MaxRecordSize {
		return ErrRecordTooLarge
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	l.scratch = appendRecord(l.scratch[:0], payload)
	if _, err := l.f.Write(l.scratch); err != nil {
		return err
	}
	l.size += int64(len(l.scratch))
	l.dirty = true
	if l.opt.OnAppend != nil {
		l.opt.OnAppend(len(l.scratch))
	}
	if l.opt.Sync == SyncAlways {
		if err := l.syncLocked(); err != nil {
			return err
		}
	}
	if l.size >= l.opt.SegmentBytes {
		return l.rotateLocked()
	}
	return nil
}

func (l *Log) syncLocked() error {
	start := time.Now()
	if err := l.f.Sync(); err != nil {
		return err
	}
	if l.opt.OnSync != nil {
		l.opt.OnSync(time.Since(start))
	}
	l.dirty = false
	return nil
}

// rotateLocked seals the active segment (final fsync unless SyncNever)
// and opens the next one.
func (l *Log) rotateLocked() error {
	if l.opt.Sync != SyncNever && l.dirty {
		if err := l.syncLocked(); err != nil {
			return err
		}
	}
	if err := l.f.Close(); err != nil {
		return err
	}
	return l.openSegment(l.seq + 1)
}

// Rotate seals the active segment and starts a fresh one, returning the
// new segment's sequence number. Records appended after Rotate land in
// segments >= the returned sequence — the anchor the snapshot layer
// uses to split "covered by the snapshot" from "replay suffix".
func (l *Log) Rotate() (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, ErrClosed
	}
	if err := l.rotateLocked(); err != nil {
		return 0, err
	}
	return l.seq, nil
}

// SkipTo advances the log so the active segment's sequence is at least
// seq: the current segment is sealed and a fresh one created at seq
// (no-op when already there). Replication is the one place sequence
// numbers arrive from outside the log's own rotation chain: a shipped
// directory can hold a snapshot anchored ahead of every local segment
// (the primary's segments past the anchor were active, or pruned,
// and never shipped), and appending below that anchor would write
// records Recover ignores.
func (l *Log) SkipTo(seq uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if l.seq >= seq {
		return nil
	}
	if l.opt.Sync != SyncNever && l.dirty {
		if err := l.syncLocked(); err != nil {
			return err
		}
	}
	if err := l.f.Close(); err != nil {
		return err
	}
	return l.openSegment(seq)
}

// Sync forces buffered appends to stable storage regardless of policy.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	return l.syncLocked()
}

// Close seals the log: a final fsync (unless SyncNever) and file close.
// Further appends fail with ErrClosed.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	var err error
	if l.opt.Sync != SyncNever && l.dirty {
		err = l.syncLocked()
	}
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	l.mu.Unlock()
	if l.stopSync != nil {
		close(l.stopSync)
		<-l.syncDone
	}
	return err
}

// SegmentBytes reports the active segment's current size (gauge feed).
func (l *Log) SegmentBytes() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.size
}

// Seq reports the active segment's sequence number.
func (l *Log) Seq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.seq
}

// replaySegment streams a segment's valid records through fn. A torn
// record stops the scan: in the last segment it is the expected crash
// tail (torn=true); in an earlier segment the caller treats it as
// corruption. fn's payload is only valid during the call.
func replaySegment(path string, fn func(payload []byte) error) (records int, torn bool, err error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return 0, false, err
	}
	off := 0
	for off < len(b) {
		payload, n, derr := decodeRecord(b[off:])
		if derr != nil {
			return records, true, nil
		}
		if err := fn(payload); err != nil {
			return records, false, err
		}
		off += n
		records++
	}
	return records, false, nil
}
