package wal

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
)

// Store layers snapshot/compaction on a Log. A snapshot captures the
// caller's full state at a segment boundary: BeginSnapshot seals the
// active segment (records appended afterwards are the snapshot's replay
// suffix), CommitSnapshot durably writes the state as snap-<seq>.snap
// and only then prunes the WAL segments and snapshots it supersedes —
// the snapshot-then-truncate invariant: bytes leave the log only after
// the state they rebuilt is safely on disk.
//
// Recovery (Recover) is the inverse: load the newest snapshot that
// passes its checksum, replay every record in segments >= its sequence,
// and ignore anything older. With no valid snapshot, replay starts from
// the oldest segment and empty state.
type Store struct {
	dir string
	log *Log
}

// RecoverStats summarizes one recovery pass.
type RecoverStats struct {
	// SnapshotSeq is the segment sequence the restored snapshot anchors
	// to (0 when recovery started from empty state).
	SnapshotSeq uint64
	// Segments is the number of WAL segments replayed.
	Segments int
	// Records is the number of WAL records replayed.
	Records int
	// TornTail reports whether the last segment ended in a torn record
	// (evidence of a crash mid-append; the tail was dropped).
	TornTail bool
}

// OpenStore opens (creating if needed) a Store in dir. The underlying
// log has any torn tail truncated; call Recover before the first
// Append to rebuild state from the snapshot + WAL suffix.
func OpenStore(dir string, opt Options) (*Store, error) {
	l, err := Open(dir, opt)
	if err != nil {
		return nil, err
	}
	s := &Store{dir: dir, log: l}
	// Never append below the newest snapshot's anchor: a replicated
	// directory can carry a shipped snapshot ahead of every local
	// segment, and records written under it would be invisible to
	// Recover (and pruned with the history the snapshot replaced).
	snaps, err := s.listSnapshots()
	if err != nil {
		l.Close()
		return nil, err
	}
	if n := len(snaps); n > 0 && snaps[n-1] > l.Seq() {
		if err := l.SkipTo(snaps[n-1]); err != nil {
			l.Close()
			return nil, err
		}
	}
	return s, nil
}

func snapshotName(prefix string, seq uint64) string { return fmt.Sprintf("%s%016d.snap", prefix, seq) }

func parseSnapshotSeq(name, prefix string) (uint64, bool) {
	return parseSeq(name, prefix, ".snap")
}

// listSnapshots returns the stream's snapshot sequence numbers in
// ascending order.
func (s *Store) listSnapshots() ([]uint64, error) {
	ents, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, err
	}
	var seqs []uint64
	for _, e := range ents {
		if seq, ok := parseSnapshotSeq(e.Name(), s.log.opt.SnapshotPrefix); ok && !e.IsDir() {
			seqs = append(seqs, seq)
		}
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	return seqs, nil
}

// readSnapshot loads and checksum-validates one snapshot file.
func (s *Store) readSnapshot(seq uint64) ([]byte, error) {
	b, err := os.ReadFile(filepath.Join(s.dir, snapshotName(s.log.opt.SnapshotPrefix, seq)))
	if err != nil {
		return nil, err
	}
	payload, n, err := decodeRecord(b)
	if err != nil || n != len(b) {
		return nil, ErrTornRecord
	}
	return payload, nil
}

// Recover rebuilds state: restore is called at most once with the
// newest valid snapshot's payload, then replay is called for every WAL
// record after it, in append order. Snapshots that fail their checksum
// fall back to the next older one (replaying a longer WAL suffix).
// A torn record ends replay of the final segment silently — the torn
// tail was never acknowledged under SyncAlways — while a short segment
// anywhere earlier is real corruption and fails.
func (s *Store) Recover(restore func(snapshot []byte) error, replay func(record []byte) error) (RecoverStats, error) {
	var st RecoverStats
	snaps, err := s.listSnapshots()
	if err != nil {
		return st, err
	}
	for i := len(snaps) - 1; i >= 0; i-- {
		payload, err := s.readSnapshot(snaps[i])
		if err != nil {
			continue // corrupt or unreadable: fall back to an older one
		}
		if err := restore(payload); err != nil {
			return st, err
		}
		st.SnapshotSeq = snaps[i]
		break
	}
	seqs, err := listSegments(s.dir, s.log.opt.SegmentPrefix)
	if err != nil {
		return st, err
	}
	for i, seq := range seqs {
		if seq < st.SnapshotSeq {
			continue
		}
		n, torn, err := replaySegment(filepath.Join(s.dir, segmentName(s.log.opt.SegmentPrefix, seq)), replay)
		st.Records += n
		st.Segments++
		if err != nil {
			return st, err
		}
		if torn {
			if i != len(seqs)-1 {
				return st, fmt.Errorf("wal: segment %d corrupt before the log tail", seq)
			}
			st.TornTail = true
		}
	}
	// Open already truncated the crash tail before this replay ran;
	// surface it as the torn-tail signal.
	st.TornTail = st.TornTail || s.log.tornAtOpen
	// Crash leftovers: segments and snapshots whose pruning did not
	// complete.
	s.prune()
	return st, nil
}

// Append appends one record to the log (see Log.Append).
func (s *Store) Append(payload []byte) error { return s.log.Append(payload) }

// Sync forces the log to stable storage (see Log.Sync).
func (s *Store) Sync() error { return s.log.Sync() }

// SegmentBytes reports the active segment's size.
func (s *Store) SegmentBytes() int64 { return s.log.SegmentBytes() }

// BeginSnapshot seals the active segment and returns the snapshot
// anchor sequence. The caller must capture the state it will commit
// BEFORE any append that follows the rotation — in practice: hold the
// lock that serializes appends, capture state, call BeginSnapshot,
// release, then CommitSnapshot off the hot path.
func (s *Store) BeginSnapshot() (uint64, error) { return s.log.Rotate() }

// CommitSnapshot durably writes the state captured at anchor seq, then
// prunes the segments and snapshots it supersedes. A crash before the
// atomic rename leaves the previous snapshot and the full WAL intact.
func (s *Store) CommitSnapshot(seq uint64, state []byte) error {
	framed := appendRecord(make([]byte, 0, recordHeaderSize+len(state)), state)
	err := WriteAtomic(filepath.Join(s.dir, snapshotName(s.log.opt.SnapshotPrefix, seq)), func(w io.Writer) error {
		_, werr := w.Write(framed)
		return werr
	})
	if err != nil {
		return err
	}
	s.prune()
	return nil
}

// Snapshot is BeginSnapshot+CommitSnapshot for callers whose state
// capture needs no external serialization against appends.
func (s *Store) Snapshot(state []byte) error {
	seq, err := s.BeginSnapshot()
	if err != nil {
		return err
	}
	return s.CommitSnapshot(seq, state)
}

// prune removes WAL segments and snapshots no longer needed for
// recovery. The two newest snapshots are retained along with every
// segment at or after the OLDER one: if the newest snapshot's bytes
// ever rot, recovery falls back to the previous snapshot and replays
// the full suffix since it — landing on the same current state, not an
// older one. Best-effort: a failed remove is retried by the next
// snapshot or recovery.
func (s *Store) prune() {
	snaps, err := s.listSnapshots()
	if err != nil || len(snaps) == 0 {
		return
	}
	cutoff := snaps[len(snaps)-1]
	if len(snaps) >= 2 {
		cutoff = snaps[len(snaps)-2]
	}
	segs, err := listSegments(s.dir, s.log.opt.SegmentPrefix)
	if err != nil {
		return
	}
	for _, old := range segs {
		if old < cutoff {
			os.Remove(filepath.Join(s.dir, segmentName(s.log.opt.SegmentPrefix, old)))
		}
	}
	for _, old := range snaps {
		if old < cutoff {
			os.Remove(filepath.Join(s.dir, snapshotName(s.log.opt.SnapshotPrefix, old)))
		}
	}
}

// Close seals the log.
func (s *Store) Close() error { return s.log.Close() }
