package wal

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
)

// Record framing: every record is
//
//	[4B little-endian payload length][4B CRC32C of payload][payload]
//
// The checksum is CRC32 with the Castagnoli polynomial (the "CRC32C"
// used by iSCSI, ext4 and most storage formats — hardware-accelerated
// on amd64/arm64). A decoder treats ANY inconsistency — short header,
// impossible length, short payload, checksum mismatch — as a torn
// record: recovery stops there and, when the tear is the tail of the
// last segment, truncates it.

const recordHeaderSize = 8

// MaxRecordSize bounds a single payload. It exists for safety, not
// capacity: a torn header whose length field decodes to garbage must
// never make the reader reserve or skip gigabytes.
const MaxRecordSize = 16 << 20

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrTornRecord reports a record that cannot be decoded — the tail of a
// crashed write or flipped bits. Recovery treats it as end-of-log.
var ErrTornRecord = errors.New("wal: torn or corrupt record")

// ErrRecordTooLarge rejects appends beyond MaxRecordSize.
var ErrRecordTooLarge = errors.New("wal: record exceeds MaxRecordSize")

// appendRecord appends the framed payload to dst and returns it.
func appendRecord(dst, payload []byte) []byte {
	var hdr [recordHeaderSize]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, castagnoli))
	dst = append(dst, hdr[:]...)
	return append(dst, payload...)
}

// decodeRecord decodes one frame from the front of b, returning the
// payload (a view into b — copy before retaining) and the framed size
// consumed. A frame that does not fully check out is ErrTornRecord.
func decodeRecord(b []byte) (payload []byte, n int, err error) {
	if len(b) < recordHeaderSize {
		return nil, 0, ErrTornRecord
	}
	ln := binary.LittleEndian.Uint32(b[0:4])
	if ln > MaxRecordSize || uint64(ln) > uint64(len(b)-recordHeaderSize) {
		return nil, 0, ErrTornRecord
	}
	sum := binary.LittleEndian.Uint32(b[4:8])
	payload = b[recordHeaderSize : recordHeaderSize+int(ln)]
	if crc32.Checksum(payload, castagnoli) != sum {
		return nil, 0, ErrTornRecord
	}
	return payload, recordHeaderSize + int(ln), nil
}
